/**
 * @file
 * Microbenchmarks of the simulation kernel (google-benchmark).
 *
 * These quantify the host-side cost of the event engine, channels, and
 * streams — the substrate every reproduced experiment runs on.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"
#include "sim/tile_pool.hh"

// Global allocation counter so benchmarks can report allocs/event on the
// dispatch paths (the engine's allocation-free invariant, engine.hh).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// Aligned-allocation overloads: TilePool allocates its buffers with
// ::operator new(size, std::align_val_t{64}) (cache-line-aligned
// tiles), which does NOT route through the plain overload above — it
// must be intercepted separately or pooled-buffer traffic becomes
// invisible to the counter and the alloc-free pins go blind.
void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, std::size_t(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    operator delete(p, std::align_val_t{1});
}

void
operator delete[](void *p, std::align_val_t al) noexcept
{
    operator delete(p, al);
}

void
operator delete[](void *p, std::size_t, std::align_val_t al) noexcept
{
    operator delete(p, al);
}


namespace {

using rsn::Tick;
using rsn::sim::Channel;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::makeTileChunk;
using rsn::sim::Stream;
using rsn::sim::Task;
using rsn::sim::TilePool;
using rsn::sim::TileRef;

void
BM_EngineEventDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        for (int i = 0; i < state.range(0); ++i)
            e.schedule(i, [] {});
        e.run();
        benchmark::DoNotOptimize(e.eventsProcessed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000)->Arg(100000);

Task
delayLoop(Engine &e, int n)
{
    for (int i = 0; i < n; ++i)
        co_await e.delay(1);
}

/** Coroutine-resume-only dispatch: the engine fast path, nothing but a
 *  suspended coroutine hopping one tick at a time. Reports allocs/event
 *  after warmup (must be ~0, pinned by test_engine_alloc.cc). */
void
BM_CoroResumeDispatch(benchmark::State &state)
{
    std::uint64_t allocs = 0;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Engine e;
        Task t = delayLoop(e, int(state.range(0)));
        e.run(64);  // warmup: arena/wheel growth happens here
        std::uint64_t warm = e.eventsProcessed();
        std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        e.run();
        allocs += g_allocs.load(std::memory_order_relaxed) - before;
        events += e.eventsProcessed() - warm;
        benchmark::DoNotOptimize(t.done());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["allocs_per_event"] =
        events ? double(allocs) / double(events) : 0.0;
}
BENCHMARK(BM_CoroResumeDispatch)->Arg(1000)->Arg(100000);

/** Same-tick burst: n events on one tick, the per-tick FIFO batch path. */
void
BM_SameTickBurst(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        for (int i = 0; i < state.range(0); ++i)
            e.scheduleAt(1, [] {});
        e.run();
        benchmark::DoNotOptimize(e.eventsProcessed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SameTickBurst)->Arg(10000);

struct ZeroDelayChain {
    Engine *e;
    long *remaining;
    void
    operator()() const
    {
        if (--*remaining > 0)
            e->schedule(0, *this);
    }
};

/** Zero-delay self-rescheduling chain: every event appends to the batch
 *  being drained via the now-queue fast path. */
void
BM_ZeroDelayNowQueue(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        long remaining = state.range(0);
        e.schedule(0, ZeroDelayChain{&e, &remaining});
        e.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZeroDelayNowQueue)->Arg(10000);

Task
parkedCoro()
{
    struct Park {
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {}
        void await_resume() const noexcept {}
    };
    co_await Park{};
}

/** Same-tick burst of raw coroutine resumes enqueued via Task::handle(). */
void
BM_CoroSameTickBurst(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        std::vector<Task> tasks;
        tasks.reserve(state.range(0));
        for (int i = 0; i < state.range(0); ++i) {
            tasks.push_back(parkedCoro());
            e.resumeAt(1, tasks.back().handle());
        }
        e.run();
        benchmark::DoNotOptimize(e.eventsProcessed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroSameTickBurst)->Arg(10000);

Task
pingSender(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.send(i);
}

Task
pingReceiver(Channel<int> &ch, int n, long &sum)
{
    for (int i = 0; i < n; ++i)
        sum += co_await ch.recv();
}

void
BM_ChannelPingPong(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        Channel<int> ch(e, 2);
        long sum = 0;
        Task s = pingSender(ch, state.range(0));
        Task r = pingReceiver(ch, state.range(0), sum);
        e.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(10000);

Task
streamSender(Stream &s, int n)
{
    for (int i = 0; i < n; ++i)
        co_await s.send(makeChunk(32, 32, i));
}

Task
streamReceiver(Stream &s, int n, long &bytes)
{
    for (int i = 0; i < n; ++i)
        bytes += (co_await s.recv()).bytes();
}

/** Timing-only chunk stream: the coroutine-free link-scheduler path.
 *  Reports allocs/chunk after warmup (must be ~0, pinned by
 *  tests/sim/test_stream_alloc.cc). */
void
BM_StreamChunkTransfer(benchmark::State &state)
{
    std::uint64_t allocs = 0;
    std::uint64_t chunks = 0;
    for (auto _ : state) {
        Engine e;
        Stream s(e, 64.0, 4, "bench");
        long bytes = 0;
        Task snd = streamSender(s, state.range(0));
        Task rcv = streamReceiver(s, state.range(0), bytes);
        e.run(2000);  // warmup: ring/arena growth
        std::uint64_t warm = s.chunksTransferred();
        std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        e.run();
        allocs += g_allocs.load(std::memory_order_relaxed) - before;
        chunks += s.chunksTransferred() - warm;
        benchmark::DoNotOptimize(bytes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["allocs_per_chunk"] =
        chunks ? double(allocs) / double(chunks) : 0.0;
}
BENCHMARK(BM_StreamChunkTransfer)->Arg(1000)->Arg(10000);

Task
pooledStreamSender(Stream &s, int n)
{
    for (int i = 0; i < n; ++i) {
        TileRef t = TilePool::instance().acquire(32 * 32);
        t.mutableData()[0] = float(i);
        co_await s.send(makeTileChunk(32, 32, std::move(t), i));
    }
}

Task
pooledStreamReceiver(Stream &s, int n, double &sum)
{
    for (int i = 0; i < n; ++i)
        sum += (co_await s.recv()).at(0, 0);
}

/** Functional-payload stream: pooled FP32 tiles recycle through the
 *  TilePool free list instead of shared_ptr<vector> churn. */
void
BM_StreamPooledPayloadTransfer(benchmark::State &state)
{
    std::uint64_t allocs = 0;
    std::uint64_t chunks = 0;
    for (auto _ : state) {
        Engine e;
        Stream s(e, 64.0, 4, "bench-pooled");
        double sum = 0;
        Task snd = pooledStreamSender(s, state.range(0));
        Task rcv = pooledStreamReceiver(s, state.range(0), sum);
        e.run(2000);
        std::uint64_t warm = s.chunksTransferred();
        std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        e.run();
        allocs += g_allocs.load(std::memory_order_relaxed) - before;
        chunks += s.chunksTransferred() - warm;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["allocs_per_chunk"] =
        chunks ? double(allocs) / double(chunks) : 0.0;
}
BENCHMARK(BM_StreamPooledPayloadTransfer)->Arg(1000)->Arg(10000);

Task
stagedSliceSender(Stream &s, int n)
{
    // The MemA/B/C staging pattern (fu/mem_fus.cc): one tile staged in
    // the scratchpad, row-slices leaving as refcount-aliased views — no
    // acquire, no copy per chunk.
    TileRef staged = TilePool::instance().acquire(256 * 64);
    float *d = staged.mutableData();
    for (int i = 0; i < 256 * 64; ++i)
        d[i] = float(i & 1023);
    constexpr std::uint64_t kSliceElems = 2 * 64;
    for (int i = 0; i < n; ++i) {
        std::uint64_t off = (std::uint64_t(i) % 128) * kSliceElems;
        co_await s.send(
            makeTileChunk(2, 64, staged.slice(off, kSliceElems), i));
    }
}

Task
stagedAssemblingReceiver(Stream &s, int n, double &sum)
{
    // The MemC side: gather arriving slices into one pooled staging
    // tile held across the whole stream.
    TileRef staging = TilePool::instance().acquire(256 * 64);
    float *dst = staging.mutableData();
    for (int i = 0; i < n; ++i) {
        Chunk c = co_await s.recv();
        std::copy_n(c.data.data(), c.elems(),
                    dst + (std::uint64_t(i) % 128) * c.elems());
        sum += dst[std::uint64_t(i) % 128 * c.elems()];
    }
}

/** The Mem FU staging path in isolation: slice-view publish, stream
 *  transfer, receive-and-assemble. Reports allocs/tile after warmup
 *  (must be ~0, pinned by tests/fu/test_mem_fus_alloc.cc). */
void
BM_MemStagingTransfer(benchmark::State &state)
{
    std::uint64_t allocs = 0;
    std::uint64_t tiles = 0;
    for (auto _ : state) {
        Engine e;
        Stream s(e, 256.0, 4, "bench-staging");
        double sum = 0;
        Task snd = stagedSliceSender(s, state.range(0));
        Task rcv = stagedAssemblingReceiver(s, state.range(0), sum);
        // Each 2x64 chunk holds the 256 B/tick link for 2 ticks, so this
        // warms up over ~128 chunks and leaves the bulk of the workload
        // (even at Arg(1000)) inside the measured window.
        e.run(256);
        std::uint64_t warm = s.chunksTransferred();
        std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        e.run();
        allocs += g_allocs.load(std::memory_order_relaxed) - before;
        tiles += s.chunksTransferred() - warm;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["allocs_per_tile"] =
        tiles ? double(allocs) / double(tiles) : 0.0;
}
BENCHMARK(BM_MemStagingTransfer)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
