/**
 * @file
 * Microbenchmarks of the simulation kernel (google-benchmark).
 *
 * These quantify the host-side cost of the event engine, channels, and
 * streams — the substrate every reproduced experiment runs on.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace {

using rsn::sim::Channel;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::Stream;
using rsn::sim::Task;

void
BM_EngineEventDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        for (int i = 0; i < state.range(0); ++i)
            e.schedule(i, [] {});
        e.run();
        benchmark::DoNotOptimize(e.eventsProcessed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000)->Arg(100000);

Task
pingSender(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.send(i);
}

Task
pingReceiver(Channel<int> &ch, int n, long &sum)
{
    for (int i = 0; i < n; ++i)
        sum += co_await ch.recv();
}

void
BM_ChannelPingPong(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        Channel<int> ch(e, 2);
        long sum = 0;
        Task s = pingSender(ch, state.range(0));
        Task r = pingReceiver(ch, state.range(0), sum);
        e.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000)->Arg(10000);

Task
streamSender(Stream &s, int n)
{
    for (int i = 0; i < n; ++i)
        co_await s.send(makeChunk(32, 32, i));
}

Task
streamReceiver(Stream &s, int n, long &bytes)
{
    for (int i = 0; i < n; ++i)
        bytes += (co_await s.recv()).bytes;
}

void
BM_StreamChunkTransfer(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        Stream s(e, 64.0, 4, "bench");
        long bytes = 0;
        Task snd = streamSender(s, state.range(0));
        Task rcv = streamReceiver(s, state.range(0), bytes);
        e.run();
        benchmark::DoNotOptimize(bytes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamChunkTransfer)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
