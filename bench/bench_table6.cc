/**
 * @file
 * Table 6 reproduction: matrix-multiplication throughput.
 * (a) AIE-only throughput (PL generates data, no DRAM) for different
 *     per-tile kernel shapes — model vs the paper's measurements, plus
 *     the published CHARM / MaxEVA / AMA reference rows.
 * (b) End-to-end square-MM throughput with DRAM: simulated RSN-XNN vs
 *     the CHARM model (paper: +170%/+132%/+106% at 1024/3072/6144).
 */

#include <cstdio>

#include "baseline/charm.hh"
#include "bench/bench_util.hh"
#include "core/report.hh"
#include "fu/aie_model.hh"

using namespace rsn;
using rsn::bench::linearModel;
using rsn::core::Table;

int
main(int argc, char **argv)
{
    const lib::SweepExecutor executor(bench::benchJobs(argc, argv));
    core::banner("Table 6a: AIE MM throughput (no DRAM)");
    {
        Table t("Model vs paper (384 tiles, 6 MMEs); published "
                "baselines for reference");
        t.header({"Method", "Tile (MxKxN)", "AIEs", "GFLOPS", "paper",
                  "err"});
        t.row({"CHARM [FPGA'23] (published)", "32x32x32", "384",
               "4504.5", "4504.5", "-"});
        t.row({"MaxEVA (published)", "32x32x32", "390", "5442.1",
               "5442.1", "-"});
        t.row({"AMA (published)", "32x32x32", "342", "5867.3", "5867.3",
               "-"});

        struct Cfg {
            int m, k, n;
            double paper;
        };
        for (const Cfg &c : {Cfg{32, 16, 32, 6095.64},
                             Cfg{32, 32, 16, 6306.02},
                             Cfg{32, 32, 32, 6784.96}}) {
            fu::AieModelParams p;
            p.native_m = c.m;
            p.native_k = c.k;
            p.native_n = c.n;
            fu::AieModel model(p);
            // Large square MM in steady state.
            double g = model.steadyGflops(3072, 3072, 3072, 6);
            char tile[32];
            std::snprintf(tile, sizeof(tile), "%dx%dx%d", c.m, c.k, c.n);
            t.row({"RSN-XNN (this model)", tile, "384",
                   Table::num(g, 1), Table::num(c.paper, 1),
                   Table::pct(100.0 * (g - c.paper) / c.paper, 1)});
        }
        t.print();
    }

    core::banner("Table 6b: end-to-end square MM throughput (with DRAM)");
    {
        baseline::CharmModel charm;
        Table t("Simulated RSN-XNN vs CHARM model (paper gains: "
                "+170% / +132% / +106%)");
        t.header({"Square size", "CHARM GFLOPS", "RSN GFLOPS", "gain",
                  "paper RSN", "paper CHARM"});
        struct Row {
            std::uint32_t n;
            double paper_rsn, paper_charm;
        };
        const std::vector<Row> rows{Row{1024, 2982.62, 1103.46},
                                    Row{3072, 6600.12, 2850.13},
                                    Row{6144, 6750.93, 3277.99}};
        std::vector<bench::SweepJob> jobs;
        for (const Row &r : rows)
            jobs.push_back({linearModel("mm", r.n, r.n, r.n, false),
                            lib::ScheduleOptions::optimized()});
        const auto runs = bench::runSweepPoints(executor, jobs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            const auto &run = runs[i];
            double gflops = 2.0 * r.n * double(r.n) * r.n /
                            (run.result.ms / 1e3) / 1e9;
            double cg = charm.squareGemmGflops(r.n);
            t.row({std::to_string(r.n), Table::num(cg, 1),
                   Table::num(gflops, 1),
                   Table::pct(100.0 * (gflops - cg) / cg, 0),
                   Table::num(r.paper_rsn, 1),
                   Table::num(r.paper_charm, 1)});
        }
        t.print();
    }
    return 0;
}
