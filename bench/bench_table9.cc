/**
 * @file
 * Table 9 reproduction: execution details of BERT-Large 1st-encoder
 * model segments (SeqLen = 512, Batch = 6, FP32) under the paper's four
 * optimization levels, plus the end-to-end comparison against the
 * baseline-overlay style (Sec. 5.5).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::attentionModel;
using rsn::bench::linearModel;
using rsn::bench::runModel;
using rsn::core::Table;

namespace {

struct SegRow {
    const char *name;
    lib::Model model;
    double paper_noopt_ms;
    double paper_bw_ms;  ///< 0 when the paper column is empty.
};

} // namespace

int
main()
{
    core::banner("Table 9: BERT-Large 1st encoder segment breakdown "
                 "(S=512, B=6, FP32)");

    const std::uint32_t M = 3072;  // 6 x 512
    std::vector<SegRow> segs;
    segs.push_back({"Key 3072x1024x1024 (+bias)",
                    linearModel("key", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Query 3072x1024x1024 (+bias)",
                    linearModel("query", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Value 3072x1024x1024 (+bias)",
                    linearModel("value", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Attention MM1+MM2 512x64x512 x96 (+softmax)",
                    attentionModel(6, 512, 16, 64), 22.30, 0});
    segs.push_back({"Dense 3072x1024x1024 (+bias,res,LN)",
                    linearModel("dense", M, 1024, 1024, true, false, true,
                                true),
                    2.913, 2.035});
    segs.push_back({"FF1 3072x1024x4096 (+bias,GELU)",
                    linearModel("ff1", M, 1024, 4096, true, true), 8.492,
                    5.501});
    segs.push_back({"FF2 3072x4096x1024 (+bias,res,LN)",
                    linearModel("ff2", M, 4096, 1024, true, false, true,
                                false),
                    5.764, 4.811});

    Table t("Per-segment latency (ms): paper vs this simulator");
    t.header({"Segment", "paper no-opt", "sim no-opt", "paper BW-opt",
              "sim BW-opt", "speedup(sim)"});
    double sum_noopt = 0, sum_bw = 0;
    for (auto &s : segs) {
        auto no_opt = runModel(s.model, lib::ScheduleOptions::noOptimize());
        auto bw = runModel(s.model, lib::ScheduleOptions::bwOptimized());
        sum_noopt += no_opt.result.ms;
        sum_bw += bw.result.ms;
        t.row({s.name, s.paper_noopt_ms ? Table::num(s.paper_noopt_ms, 3)
                                        : "-",
               Table::num(no_opt.result.ms, 3),
               s.paper_bw_ms ? Table::num(s.paper_bw_ms, 3) : "-",
               Table::num(bw.result.ms, 3),
               Table::num(no_opt.result.ms / bw.result.ms, 2) + "x"});
    }
    t.print();

    core::banner("Attention: sequential (type A) vs pipelined (type D)");
    {
        auto seq = runModel(attentionModel(6, 512, 16, 64),
                            lib::ScheduleOptions::bwOptimized());
        auto pipe = runModel(attentionModel(6, 512, 16, 64),
                             lib::ScheduleOptions::optimized());
        Table a("Attention mapping comparison (paper: 22.30 -> 2.618 ms, "
                "8.52x)");
        a.header({"Mapping", "latency ms", "speedup"});
        a.row({"sequential, scores off-chip",
               Table::num(seq.result.ms, 3), "1.00x"});
        a.row({"pipelined MM1->softmax->MM2 (this work)",
               Table::num(pipe.result.ms, 3),
               Table::num(seq.result.ms / pipe.result.ms, 2) + "x"});
        a.print();
    }

    core::banner("QKV fusion (Multi MMs together)");
    {
        // Three separate 1024-wide GEMMs vs one fused 3072-wide GEMM.
        double three = 0;
        for (int i = 0; i < 3; ++i)
            three += runModel(linearModel("qkv", M, 1024, 1024, true),
                              lib::ScheduleOptions::bwOptimized())
                         .result.ms;
        auto fused = runModel(linearModel("qkv", M, 1024, 3072, true),
                              lib::ScheduleOptions::optimized());
        Table q("QKV mapping (paper: 3 x 1.276 = 3.83 -> 3.584 ms)");
        q.header({"Mapping", "latency ms"});
        q.row({"3 separate MMs (BW-opt)", Table::num(three, 3)});
        q.row({"fused QKV + overlap", Table::num(fused.result.ms, 3)});
        q.print();
    }

    core::banner("End-to-end: four optimization levels");
    {
        struct Level {
            const char *name;
            bool fuse;
            lib::ScheduleOptions opts;
            double paper_ms;
        };
        std::vector<Level> levels = {
            {"No optimize (baseline overlay style)", false,
             lib::ScheduleOptions::noOptimize(), 44.47},
            {"BW optimized", false, lib::ScheduleOptions::bwOptimized(),
             0},
            {"Multi MMs together (fused QKV)", true,
             lib::ScheduleOptions::bwOptimized(), 0},
            {"Final (pipeline + overlap)", true,
             lib::ScheduleOptions::optimized(), 17.98},
        };
        Table e("BERT-Large 1st encoder end-to-end (paper speedup: "
                "2.47x)");
        e.header({"Level", "paper ms", "sim ms", "sim TFLOPS",
                  "speedup vs no-opt"});
        double base = 0;
        for (auto &lv : levels) {
            auto r = runModel(lib::bertLargeEncoder(6, 512, lv.fuse, 1),
                              lv.opts);
            if (base == 0)
                base = r.result.ms;
            e.row({lv.name,
                   lv.paper_ms ? Table::num(lv.paper_ms, 2) : "-",
                   Table::num(r.result.ms, 2),
                   Table::num(r.achieved_tflops, 2),
                   Table::num(base / r.result.ms, 2) + "x"});
        }
        e.print();
    }
    return 0;
}
