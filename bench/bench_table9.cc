/**
 * @file
 * Table 9 reproduction: execution details of BERT-Large 1st-encoder
 * model segments (SeqLen = 512, Batch = 6, FP32) under the paper's four
 * optimization levels, plus the end-to-end comparison against the
 * baseline-overlay style (Sec. 5.5).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::attentionModel;
using rsn::bench::linearModel;
using rsn::core::Table;

namespace {

struct SegRow {
    const char *name;
    lib::Model model;
    double paper_noopt_ms;
    double paper_bw_ms;  ///< 0 when the paper column is empty.
};

} // namespace

int
main(int argc, char **argv)
{
    const lib::SweepExecutor executor(bench::benchJobs(argc, argv));
    core::banner("Table 9: BERT-Large 1st encoder segment breakdown "
                 "(S=512, B=6, FP32)");

    const std::uint32_t M = 3072;  // 6 x 512
    std::vector<SegRow> segs;
    segs.push_back({"Key 3072x1024x1024 (+bias)",
                    linearModel("key", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Query 3072x1024x1024 (+bias)",
                    linearModel("query", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Value 3072x1024x1024 (+bias)",
                    linearModel("value", M, 1024, 1024, true), 1.667,
                    1.276});
    segs.push_back({"Attention MM1+MM2 512x64x512 x96 (+softmax)",
                    attentionModel(6, 512, 16, 64), 22.30, 0});
    segs.push_back({"Dense 3072x1024x1024 (+bias,res,LN)",
                    linearModel("dense", M, 1024, 1024, true, false, true,
                                true),
                    2.913, 2.035});
    segs.push_back({"FF1 3072x1024x4096 (+bias,GELU)",
                    linearModel("ff1", M, 1024, 4096, true, true), 8.492,
                    5.501});
    segs.push_back({"FF2 3072x4096x1024 (+bias,res,LN)",
                    linearModel("ff2", M, 4096, 1024, true, false, true,
                                false),
                    5.764, 4.811});

    // Two option levels per segment, flattened into one sweep: job 2i
    // is segment i at no-opt, job 2i+1 the same segment BW-optimized.
    std::vector<bench::SweepJob> seg_jobs;
    for (auto &s : segs) {
        seg_jobs.push_back({s.model, lib::ScheduleOptions::noOptimize()});
        seg_jobs.push_back({s.model, lib::ScheduleOptions::bwOptimized()});
    }
    const auto seg_runs = bench::runSweepPoints(executor, seg_jobs);

    Table t("Per-segment latency (ms): paper vs this simulator");
    t.header({"Segment", "paper no-opt", "sim no-opt", "paper BW-opt",
              "sim BW-opt", "speedup(sim)"});
    double sum_noopt = 0, sum_bw = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
        auto &s = segs[i];
        const auto &no_opt = seg_runs[2 * i];
        const auto &bw = seg_runs[2 * i + 1];
        sum_noopt += no_opt.result.ms;
        sum_bw += bw.result.ms;
        t.row({s.name, s.paper_noopt_ms ? Table::num(s.paper_noopt_ms, 3)
                                        : "-",
               Table::num(no_opt.result.ms, 3),
               s.paper_bw_ms ? Table::num(s.paper_bw_ms, 3) : "-",
               Table::num(bw.result.ms, 3),
               Table::num(no_opt.result.ms / bw.result.ms, 2) + "x"});
    }
    t.print();

    core::banner("Attention: sequential (type A) vs pipelined (type D)");
    {
        const auto pair = bench::runSweepPoints(
            executor,
            {{attentionModel(6, 512, 16, 64),
              lib::ScheduleOptions::bwOptimized()},
             {attentionModel(6, 512, 16, 64),
              lib::ScheduleOptions::optimized()}});
        const auto &seq = pair[0];
        const auto &pipe = pair[1];
        Table a("Attention mapping comparison (paper: 22.30 -> 2.618 ms, "
                "8.52x)");
        a.header({"Mapping", "latency ms", "speedup"});
        a.row({"sequential, scores off-chip",
               Table::num(seq.result.ms, 3), "1.00x"});
        a.row({"pipelined MM1->softmax->MM2 (this work)",
               Table::num(pipe.result.ms, 3),
               Table::num(seq.result.ms / pipe.result.ms, 2) + "x"});
        a.print();
    }

    core::banner("QKV fusion (Multi MMs together)");
    {
        // Three separate 1024-wide GEMMs vs one fused 3072-wide GEMM.
        std::vector<bench::SweepJob> qkv_jobs(
            3, {linearModel("qkv", M, 1024, 1024, true),
                lib::ScheduleOptions::bwOptimized()});
        qkv_jobs.push_back({linearModel("qkv", M, 1024, 3072, true),
                            lib::ScheduleOptions::optimized()});
        const auto qkv_runs = bench::runSweepPoints(executor, qkv_jobs);
        double three = 0;
        for (int i = 0; i < 3; ++i)
            three += qkv_runs[i].result.ms;
        const auto &fused = qkv_runs[3];
        Table q("QKV mapping (paper: 3 x 1.276 = 3.83 -> 3.584 ms)");
        q.header({"Mapping", "latency ms"});
        q.row({"3 separate MMs (BW-opt)", Table::num(three, 3)});
        q.row({"fused QKV + overlap", Table::num(fused.result.ms, 3)});
        q.print();
    }

    core::banner("End-to-end: four optimization levels");
    {
        struct Level {
            const char *name;
            bool fuse;
            lib::ScheduleOptions opts;
            double paper_ms;
        };
        std::vector<Level> levels = {
            {"No optimize (baseline overlay style)", false,
             lib::ScheduleOptions::noOptimize(), 44.47},
            {"BW optimized", false, lib::ScheduleOptions::bwOptimized(),
             0},
            {"Multi MMs together (fused QKV)", true,
             lib::ScheduleOptions::bwOptimized(), 0},
            {"Final (pipeline + overlap)", true,
             lib::ScheduleOptions::optimized(), 17.98},
        };
        std::vector<bench::SweepJob> level_jobs;
        for (auto &lv : levels)
            level_jobs.push_back(
                {lib::bertLargeEncoder(6, 512, lv.fuse, 1), lv.opts});
        const auto level_runs = bench::runSweepPoints(executor,
                                                      level_jobs);

        Table e("BERT-Large 1st encoder end-to-end (paper speedup: "
                "2.47x)");
        e.header({"Level", "paper ms", "sim ms", "sim TFLOPS",
                  "speedup vs no-opt"});
        double base = 0;
        for (std::size_t i = 0; i < levels.size(); ++i) {
            auto &lv = levels[i];
            const auto &r = level_runs[i];
            if (base == 0)
                base = r.result.ms;
            e.row({lv.name,
                   lv.paper_ms ? Table::num(lv.paper_ms, 2) : "-",
                   Table::num(r.result.ms, 2),
                   Table::num(r.achieved_tflops, 2),
                   Table::num(base / r.result.ms, 2) + "x"});
        }
        e.print();
    }
    return 0;
}
