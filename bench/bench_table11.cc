/**
 * @file
 * Table 11 reproduction: BERT-Large latency vs off-chip bandwidth
 * (SeqLen = 384, Batch = 8, 24 encoders), with the 0.5x/1x/2x/3x sweep
 * plus the infinite-bandwidth and infinite-compute bounds.
 * Paper: 704 / 444 / 387 / 372 ms; inf-BW 349 ms; inf-compute 311 ms;
 * 78.6% of peak bandwidth utilized at 1x.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::runModel;
using rsn::core::Table;

namespace {

/** One full BERT-Large = 24 encoders; simulate one and scale. */
double
bertMs(double bw_factor, double compute_factor)
{
    auto cfg = core::MachineConfig::vck190();
    cfg.ddr.read_gbps *= bw_factor;
    cfg.ddr.write_gbps *= bw_factor;
    cfg.lpddr.read_gbps *= bw_factor;
    cfg.lpddr.write_gbps *= bw_factor;
    cfg.aie.macs_per_cycle *= compute_factor;
    auto r = runModel(lib::bertLargeEncoder(8, 384, true, 1),
                      lib::ScheduleOptions::optimized(), cfg);
    return r.result.ms * 24;
}

} // namespace

int
main()
{
    core::banner("Table 11: bandwidth sweep (BERT-Large, S=384, B=8)");

    struct Row {
        const char *name;
        double bw, compute;
        double paper_ms;
    };
    const Row rows[] = {
        {"Infinite BW", 1000.0, 1.0, 349},
        {"Infinite compute", 1.0, 1000.0, 311},
        {"0.5x BW", 0.5, 1.0, 704},
        {"1x BW", 1.0, 1.0, 444},
        {"2x BW", 2.0, 1.0, 387},
        {"3x BW", 3.0, 1.0, 372},
    };

    double base_ms = 0;
    Table t("Latency vs bandwidth scaling");
    t.header({"Scenario", "paper ms", "sim ms", "paper speedup",
              "sim speedup"});
    // Compute the 1x baseline first for speedup columns.
    for (const auto &r : rows)
        if (std::string(r.name) == "1x BW")
            base_ms = bertMs(r.bw, r.compute);
    for (const auto &r : rows) {
        double ms = std::string(r.name) == "1x BW" ? base_ms
                                                   : bertMs(r.bw,
                                                            r.compute);
        t.row({r.name, Table::num(r.paper_ms, 0), Table::num(ms, 0),
               Table::num(444.0 / r.paper_ms, 2),
               Table::num(base_ms / ms, 2)});
    }
    t.print();

    // Bandwidth utilization at 1x (paper: 78.6% of peak).
    {
        auto cfg = core::MachineConfig::vck190();
        core::RsnMachine mach(cfg);
        auto compiled = lib::compileModel(
            mach, lib::bertLargeEncoder(8, 384, true, 1),
            lib::ScheduleOptions::optimized());
        auto res = mach.run(compiled.program);
        double moved = mach.ddrChannel().bytesRead() +
                       mach.ddrChannel().bytesWritten() +
                       mach.lpddrChannel().bytesRead();
        double secs = res.ms / 1e3;
        double peak = (25.6 + 32.0) * 1e9;  // board peak, both channels
        std::printf("\nPeak-bandwidth utilization at 1x: %.1f%% "
                    "(paper: 78.6%% of peak)\n",
                    100.0 * moved / secs / peak);
    }
    return 0;
}
