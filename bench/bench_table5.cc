/**
 * @file
 * Table 5 reproduction: (a) instruction-decoder area overhead and
 * (b) computation-resource utilization of RSN-XNN vs published overlay
 * designs (DFX, DLA).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/area.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::runModel;
using rsn::core::Table;

int
main()
{
    core::banner("Table 5a: decoder area overhead");
    auto cfg = core::MachineConfig::vck190();
    auto a = core::AreaModel::decoderArea(cfg);
    core::DesignArea d;

    Table t("Decoder-unit footprint (model) vs paper");
    t.header({"Design", "Device", "LUT", "FF", "DSP", "BRAM",
              "LUT % of design"});
    t.row({"RSN-XNN (model)", "VCK190",
           std::to_string(a.lut), std::to_string(a.ff),
           std::to_string(a.dsp), std::to_string(a.bram),
           Table::pct(core::AreaModel::decoderLutPercent(cfg), 1)});
    t.row({"RSN-XNN (paper)", "VCK190", "11700", "8600", "5", "4",
           "3.0%"});
    t.row({"DFX (published)", "U280", "3000", "13000", "0", "24",
           "0.6%"});
    t.row({"DLA (published)", "Arria10", "2046 ALMs (7% of ALMs)", "-",
           "-", "-", "-"});
    t.print();

    core::banner("Table 5b: computation resource utilization");
    auto run = runModel(lib::bertLargeEncoder(6, 512, true, 1),
                        lib::ScheduleOptions::optimized());
    Table u("Achieved vs peak FP32 performance");
    u.header({"Design", "Precision", "Peak TFLOPS", "BW GB/s",
              "Achieved TFLOPS", "Util"});
    u.row({"RSN-XNN (sim)", "FP32", "8", "57.6",
           Table::num(run.achieved_tflops, 2),
           Table::pct(run.achieved_tflops / 8.0 * 100, 0)});
    u.row({"RSN-XNN (paper)", "FP32", "8", "57.6", "4.7", "59%"});
    u.row({"DFX (published)", "FP16", "1.2", "460", "0.19", "16%"});
    u.print();
    return 0;
}
