/**
 * @file
 * Table 10 reproduction: RSN-XNN on the VCK190 vs T4 / V100 / A100 / L4
 * GPUs on BERT-Large (SeqLen = 384): latency by batch, energy
 * efficiency, and DRAM traffic. GPU rows come from the roofline model
 * beside the paper's published measurements.
 */

#include <cstdio>

#include "baseline/gpu.hh"
#include "bench/bench_util.hh"
#include "core/power.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::runModel;
using rsn::core::Table;

int
main()
{
    core::banner("Table 10: BERT-Large (S=384) vs GPUs");

    const std::uint32_t batches[] = {1, 2, 4, 8};
    // Paper-reported VCK190 latencies for reference.
    const double paper_vck[] = {95, 122, 220, 444};

    // Simulate the encoder per batch; full model = 24 encoders.
    double vck_ms[4];
    double vck_tflops_b8 = 0;
    core::PowerModel power;
    double op_w = 0, dyn_w = 0, dram_gb = 0;
    for (int i = 0; i < 4; ++i) {
        core::RsnMachine mach(core::MachineConfig::vck190());
        auto compiled = lib::compileModel(
            mach, lib::bertLargeEncoder(batches[i], 384, true, 1),
            lib::ScheduleOptions::optimized());
        auto r = mach.run(compiled.program);
        vck_ms[i] = r.ms * 24;
        if (batches[i] == 8) {
            vck_tflops_b8 = mach.achievedTflops(r);
            op_w = power.operatingWatts(mach, r);
            dyn_w = power.dynamicWatts(mach, r);
            dram_gb = (mach.ddrChannel().bytesRead() +
                       mach.ddrChannel().bytesWritten() +
                       mach.lpddrChannel().bytesRead()) *
                      24 / 1e9;
        }
    }

    Table t("Latency (ms) by batch size: model/sim vs paper");
    t.header({"Device", "Peak TF", "BW GB/s", "B=1", "B=2", "B=4", "B=8",
              "B=8 paper"});
    for (const auto &spec : baseline::table10Gpus()) {
        baseline::GpuModel gpu(spec);
        std::vector<std::string> cells = {
            spec.name + " (" + spec.precision + ", model)",
            core::Table::num(spec.peak_tflops, 1),
            core::Table::num(spec.bw_gbs, 0)};
        for (std::uint32_t b : batches)
            cells.push_back(Table::num(gpu.bertLatencyMs(384, b), 0));
        cells.push_back(Table::num(spec.paper_latency_ms[3], 0));
        t.row(cells);
    }
    {
        std::vector<std::string> cells = {"VCK190 RSN-XNN (sim)", "8.0",
                                          "57.6"};
        for (int i = 0; i < 4; ++i)
            cells.push_back(Table::num(vck_ms[i], 0));
        cells.push_back(Table::num(444, 0));
        t.row(cells);
        t.row({"VCK190 RSN-XNN (paper)", "8.0", "57.6",
               Table::num(paper_vck[0], 0), Table::num(paper_vck[1], 0),
               Table::num(paper_vck[2], 0), Table::num(paper_vck[3], 0),
               "444"});
    }
    t.print();

    core::banner("Energy efficiency at B=8 (Seq/J)");
    Table e("Operating / dynamic efficiency");
    e.header({"Device", "Operating W", "Dynamic W", "Opt Seq/J",
              "Dyn Seq/J", "DRAM GB"});
    for (const auto &spec : baseline::table10Gpus()) {
        baseline::GpuModel gpu(spec);
        e.row({spec.name, Table::num(spec.operating_w, 0),
               Table::num(spec.dynamic_w, 0),
               Table::num(gpu.efficiencySeqPerJ(384, 8, false), 2),
               Table::num(gpu.efficiencySeqPerJ(384, 8, true), 2),
               spec.paper_dram_gb
                   ? Table::num(gpu.bertDramGb(384, 8), 0) + " (paper " +
                         Table::num(spec.paper_dram_gb, 0) + ")"
                   : "-"});
    }
    {
        double opt_eff = 8.0 / (vck_ms[3] / 1e3 * op_w);
        double dyn_eff = 8.0 / (vck_ms[3] / 1e3 * dyn_w);
        e.row({"VCK190 RSN-XNN (sim)", Table::num(op_w, 1),
               Table::num(dyn_w, 1), Table::num(opt_eff, 2),
               Table::num(dyn_eff, 2),
               Table::num(dram_gb, 0) + " (paper 12)"});
        e.row({"VCK190 RSN-XNN (paper)", "45.5", "18.2", "0.40", "0.99",
               "12"});
    }
    e.print();

    std::printf("\nAchieved FP32 at B=8: %.2f TFLOPS; paper highlights "
                "matching T4 latency with 18%% of its bandwidth and "
                "2.1x A100 FP32 operating efficiency.\n",
                vck_tflops_b8);
    return 0;
}
