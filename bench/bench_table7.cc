/**
 * @file
 * Table 7 reproduction: latency per task at maximum throughput for
 * BERT, ViT, NCF and MLP, RSN-XNN vs CHARM.
 * Paper: CHARM 57.2 / 57.7 / 40.4 / 119 ms; RSN-XNN 17.98 / 23.7 /
 * 16.1 / 42.6 ms -> gains 3.2x / 2.4x / 2.5x / 2.8x.
 */

#include <cstdio>

#include "baseline/charm.hh"
#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

int
main(int argc, char **argv)
{
    core::banner("Table 7: latency per task at max throughput "
                 "(RSN-XNN vs CHARM)");

    struct Workload {
        const char *name;
        lib::Model rsn_model;
        lib::Model charm_model;
        double paper_charm_ms, paper_rsn_ms;
    };

    std::vector<Workload> loads;
    loads.push_back({"BERT", lib::bertLargeEncoder(6, 512, true, 1),
                     lib::bertLargeEncoder(6, 512, false, 1), 57.2,
                     17.98});
    loads.push_back({"ViT", lib::vitEncoder(6, true, 2),
                     lib::vitEncoder(6, false, 2), 57.7, 23.7});
    loads.push_back({"NCF", lib::ncf(6), lib::ncf(6), 40.4, 16.1});
    loads.push_back({"MLP", lib::mlp(6), lib::mlp(6), 119, 42.6});

    std::vector<bench::SweepJob> jobs;
    for (auto &w : loads)
        jobs.push_back({w.rsn_model, lib::ScheduleOptions::optimized()});
    const auto runs = bench::runSweepPoints(
        lib::SweepExecutor(bench::benchJobs(argc, argv)), jobs);

    baseline::CharmModel charm;
    Table t("Latency per 6-batch task (ms)");
    t.header({"Model", "CHARM (model)", "RSN (sim)", "gain",
              "paper CHARM", "paper RSN", "paper gain"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        auto &w = loads[i];
        const auto &r = runs[i];
        auto c = charm.run(w.charm_model, 24);
        double charm_per_task = 6.0 / c.throughput_tasks * 1e3;
        t.row({w.name, Table::num(charm_per_task, 1),
               Table::num(r.result.ms, 1),
               Table::num(charm_per_task / r.result.ms, 2) + "x",
               Table::num(w.paper_charm_ms, 1),
               Table::num(w.paper_rsn_ms, 1),
               Table::num(w.paper_charm_ms / w.paper_rsn_ms, 2) + "x"});
    }
    t.print();
    std::printf("\nNote: the same simulated datapath and bitstream-"
                "equivalent configuration serves all four models; only "
                "the instruction stream changes (paper Sec. 5.4).\n");
    return 0;
}
