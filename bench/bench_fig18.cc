/**
 * @file
 * Fig. 18 reproduction: latency and throughput of the BERT-Large 1st
 * encoder vs batch size, RSN-XNN against the CHARM baseline.
 * Paper anchors: RSN best latency 5 ms at B=1 (22x vs CHARM's best
 * 110 ms at B=6); throughput ~97% of peak at B=3, peak 333.76 tasks/s
 * at B=6 (3.25x CHARM's best at B=24).
 */

#include <cstdio>

#include <vector>

#include "baseline/charm.hh"
#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

int
main(int argc, char **argv)
{
    core::banner("Fig. 18: latency / throughput vs batch size "
                 "(BERT-Large 1st encoder, S=512)");

    baseline::CharmModel charm;

    Table t("RSN-XNN (simulated) vs CHARM (model calibrated to "
            "published numbers)");
    t.header({"Batch", "RSN latency ms", "RSN tasks/s", "CHARM latency ms",
              "CHARM tasks/s", "latency gain", "thr gain"});

    const std::vector<std::uint32_t> batches{1, 2, 3, 6, 12, 24};
    std::vector<bench::SweepJob> jobs;
    for (std::uint32_t b : batches)
        jobs.push_back({lib::bertLargeEncoder(b, 512, true, 1),
                        lib::ScheduleOptions::optimized()});
    const auto runs = bench::runSweepPoints(
        lib::SweepExecutor(bench::benchJobs(argc, argv)), jobs);

    double rsn_peak_thr = 0, charm_peak_thr = 0;
    double rsn_best_lat = 1e9, charm_best_lat = 1e9;
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const std::uint32_t b = batches[i];
        const auto &r = runs[i];
        double rsn_thr = b / (r.result.ms / 1e3);
        auto c = charm.run(lib::bertLargeEncoder(6, 512, false, 1), b);
        rsn_peak_thr = std::max(rsn_peak_thr, rsn_thr);
        charm_peak_thr = std::max(charm_peak_thr, c.throughput_tasks);
        rsn_best_lat = std::min(rsn_best_lat, r.result.ms);
        charm_best_lat = std::min(charm_best_lat, c.latency_ms);
        t.row({std::to_string(b), Table::num(r.result.ms, 2),
               Table::num(rsn_thr, 1), Table::num(c.latency_ms, 1),
               Table::num(c.throughput_tasks, 1),
               Table::num(c.latency_ms / r.result.ms, 2) + "x",
               Table::num(rsn_thr / c.throughput_tasks, 2) + "x"});
    }
    t.print();

    std::printf("\nPaper anchors: best-latency gain 22x (5 ms vs 110 "
                "ms); peak-throughput gain 3.25x.\n");
    std::printf("Measured:     best-latency gain %.1fx (%.2f ms vs %.1f "
                "ms); peak-throughput gain %.2fx.\n",
                charm_best_lat / rsn_best_lat, rsn_best_lat,
                charm_best_lat, rsn_peak_thr / charm_peak_thr);
    return 0;
}
