/**
 * @file
 * Fig. 17 reproduction: PL<->AIE stream budget accounting for the AIE
 * grouping optimization. VCK190 allows 234 input / 156 output 64-bit
 * PL<->AIE streams; naive per-tile streaming would need 800/400. The
 * 4x4x4 grouping with 4x stream sharing and output cascading fits the
 * budget at 384 tiles.
 */

#include <cstdio>

#include "core/report.hh"
#include "fu/aie_model.hh"

using namespace rsn;
using rsn::core::Table;

namespace {

struct StreamPlan {
    const char *name;
    int tiles;
    int in_streams;
    int out_streams;
};

/** Streams used by a grouping of g^3-tile MMEs with sharing factor g. */
StreamPlan
groupedPlan(int grid, int mmes)
{
    int tiles = grid * grid * grid * mmes;
    // LHS and RHS stream bundles are shared `grid` ways; outputs cascade
    // down the K dimension so only one output stream per (m, n) lane.
    int in_streams = 2 * (tiles / grid) / grid;  // shared 4x, both inputs
    int out_streams = tiles / (grid * grid);
    return {"grouped 4x4x4 (this work)", tiles, in_streams, out_streams};
}

} // namespace

int
main()
{
    core::banner("Fig. 17: reuse of AIE-to/from-PL streams");

    const int budget_in = 234, budget_out = 156;

    StreamPlan naive{"naive (2 in + 1 out per tile)", 400, 800, 400};
    StreamPlan grouped = groupedPlan(4, 6);

    Table t("Stream budget (VCK190: 234 in / 156 out)");
    t.header({"Plan", "AIE tiles", "input streams", "output streams",
              "fits budget"});
    for (const auto &p : {naive, grouped}) {
        bool fits = p.in_streams <= budget_in &&
                    p.out_streams <= budget_out;
        t.row({p.name, std::to_string(p.tiles),
               std::to_string(p.in_streams),
               std::to_string(p.out_streams), fits ? "yes" : "NO"});
    }
    t.print();

    std::printf("\nPaper: 6 groups x 64 tiles = 384 tiles, 192 input + "
                "96 output streams, within budget. Grouped plan here: "
                "%d tiles, %d in, %d out.\n",
                grouped.tiles, grouped.in_streams, grouped.out_streams);

    // Throughput consequence (feeds Table 6a).
    fu::AieModel m;
    std::printf("Resulting steady GEMM throughput: %.0f GFLOPS "
                "(paper: 6785).\n",
                m.steadyGflops(3072, 3072, 3072, 6));
    return 0;
}
