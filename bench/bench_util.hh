/**
 * @file
 * Shared helpers for the benchmark harness: construct a VCK190 machine,
 * compile a model with given schedule options, run it, and return the
 * interesting aggregates. Every bench binary prints paper-reported
 * values alongside measured ones so the reproduction is auditable.
 */

#ifndef RSN_BENCH_BENCH_UTIL_HH
#define RSN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/schedule.hh"

namespace rsn::bench {

struct EncoderRun {
    core::RunResult result;
    double achieved_tflops = 0;
    double ddr_read_mb = 0;
    double ddr_write_mb = 0;
    double lpddr_read_mb = 0;
    std::size_t packets = 0;
    std::uint64_t mm_flops = 0;
};

/** Compile + run @p model on a fresh VCK190 machine (timing-only). */
inline EncoderRun
runModel(const lib::Model &model, lib::ScheduleOptions opts,
         core::MachineConfig cfg = core::MachineConfig::vck190())
{
    core::RsnMachine mach(cfg);
    auto compiled = lib::compileModel(mach, model, opts);
    EncoderRun out;
    out.result = mach.run(compiled.program);
    if (!out.result.completed) {
        std::fprintf(stderr, "run did not complete:\n%s\n",
                     out.result.diagnosis.c_str());
    }
    out.achieved_tflops = mach.achievedTflops(out.result);
    out.ddr_read_mb = mach.ddrChannel().bytesRead() / 1e6;
    out.ddr_write_mb = mach.ddrChannel().bytesWritten() / 1e6;
    out.lpddr_read_mb = mach.lpddrChannel().bytesRead() / 1e6;
    out.packets = compiled.program.size();
    out.mm_flops = compiled.mm_flops;
    return out;
}

/** A single linear-layer model (for per-segment experiments). */
inline lib::Model
linearModel(const std::string &name, std::uint32_t m, std::uint32_t k,
            std::uint32_t n, bool bias, bool gelu = false,
            bool layernorm = false, bool residual = false)
{
    lib::Model mod;
    mod.name = name;
    mod.input_rows = m;
    mod.input_cols = k;
    lib::LinearLayer l;
    l.name = name;
    l.m = m;
    l.k = k;
    l.n = n;
    l.bias = bias;
    l.gelu = gelu;
    l.layernorm = layernorm;
    l.residual = residual && k == n;
    l.in_src = "input";
    if (l.residual)
        l.residual_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

/** A standalone attention model reading fused Q/K/V from the input. */
inline lib::Model
attentionModel(std::uint32_t batch, std::uint32_t seq,
               std::uint32_t heads_per_batch, std::uint32_t dhead)
{
    lib::Model mod;
    mod.name = "attention";
    const std::uint32_t hidden = heads_per_batch * dhead;
    mod.input_rows = batch * seq;
    mod.input_cols = 3 * hidden;
    lib::AttentionBlock a;
    a.name = "attention";
    a.heads = batch * heads_per_batch;
    a.heads_per_batch = heads_per_batch;
    a.seq = seq;
    a.dhead = dhead;
    a.q_src = a.k_src = a.v_src = "input";
    a.q_col_off = 0;
    a.k_col_off = hidden;
    a.v_col_off = 2 * hidden;
    a.out_name = "out";
    mod.segments.emplace_back(a);
    return mod;
}

} // namespace rsn::bench

#endif // RSN_BENCH_BENCH_UTIL_HH
