/**
 * @file
 * Shared helpers for the benchmark harness: construct a VCK190 machine,
 * compile a model with given schedule options, run it, and return the
 * interesting aggregates. Every bench binary prints paper-reported
 * values alongside measured ones so the reproduction is auditable.
 *
 * Runs go through a BenchContext, which keeps one machine alive across
 * data points: as long as consecutive runs use an equal MachineConfig
 * (the common case — a figure sweeps batch size or schedule options on
 * one datapath), the machine is reset() between runs instead of being
 * rebuilt, so a sweep pays the datapath construction cost once.
 *
 * Sweep binaries run their data points through lib::SweepExecutor
 * (runSweepPoints below): each worker lane owns a machine, results land
 * in point order, and tick counts are bit-identical for every --jobs
 * value. Pass `--jobs N` (or RSN_JOBS=N; 0 = all hardware threads) to
 * any sweep bench; the default stays 1 so paper-reproduction output is
 * unchanged unless parallelism is asked for.
 */

#ifndef RSN_BENCH_BENCH_UTIL_HH
#define RSN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/schedule.hh"
#include "lib/sweep.hh"

namespace rsn::bench {

struct EncoderRun {
    core::RunResult result;
    double achieved_tflops = 0;
    double ddr_read_mb = 0;
    double ddr_write_mb = 0;
    double lpddr_read_mb = 0;
    std::size_t packets = 0;
    std::uint64_t mm_flops = 0;
};

/** Compile + run @p model (timing-only) on a pristine @p mach and
 *  gather the aggregates every figure/table bench reports. */
inline EncoderRun
runOnMachine(core::RsnMachine &mach, const lib::Model &model,
             lib::ScheduleOptions opts)
{
    auto compiled = lib::compileModel(mach, model, opts);
    EncoderRun out;
    out.result = mach.run(compiled.program);
    if (!out.result.completed) {
        std::fprintf(stderr, "run did not complete:\n%s\n",
                     out.result.diagnosis.c_str());
    }
    out.achieved_tflops = mach.achievedTflops(out.result);
    out.ddr_read_mb = mach.ddrChannel().bytesRead() / 1e6;
    out.ddr_write_mb = mach.ddrChannel().bytesWritten() / 1e6;
    out.lpddr_read_mb = mach.lpddrChannel().bytesRead() / 1e6;
    out.packets = compiled.program.size();
    out.mm_flops = compiled.mm_flops;
    return out;
}

/**
 * A reusable machine/run context for benchmark sweeps. machine() hands
 * back a pristine machine for @p cfg: the cached instance reset between
 * runs while the configuration stays the same, a freshly built one when
 * the configuration changes (or the previous run deadlocked / timed
 * out, which leaves a machine that cannot be reset).
 */
class BenchContext
{
  public:
    /** A pristine machine for @p cfg (cached or rebuilt; see above). */
    core::RsnMachine &
    machine(const core::MachineConfig &cfg)
    {
        if (mach_ && cfg_ == cfg && mach_->resettable())
            mach_->reset();
        else
            mach_ = std::make_unique<core::RsnMachine>(cfg_ = cfg);
        return *mach_;
    }

    /** Compile + run @p model (timing-only) and gather the aggregates. */
    EncoderRun
    run(const lib::Model &model, lib::ScheduleOptions opts,
        const core::MachineConfig &cfg = core::MachineConfig::vck190())
    {
        return runOnMachine(machine(cfg), model, opts);
    }

  private:
    core::MachineConfig cfg_;
    std::unique_ptr<core::RsnMachine> mach_;
};

/**
 * Compile + run @p model on this thread's bench context. Figure/table
 * binaries call this per data point; equal-config points share one
 * machine. The context is thread_local — one per sweep lane — so
 * parallel sweeps never share a machine, and sequential callers keep
 * the old single-context behavior (machine pinned across data points,
 * which also removes the rebuild jitter ROADMAP noted in
 * BM_FunctionalTinyEncoder).
 */
inline EncoderRun
runModel(const lib::Model &model, lib::ScheduleOptions opts,
         const core::MachineConfig &cfg = core::MachineConfig::vck190())
{
    thread_local BenchContext ctx;
    return ctx.run(model, opts, cfg);
}

/** Compile + run @p model on a sweep lane's cached machine. */
inline EncoderRun
runOnLane(lib::SweepLane &lane, const lib::Model &model,
          lib::ScheduleOptions opts,
          const core::MachineConfig &cfg = core::MachineConfig::vck190())
{
    return runOnMachine(lane.machine(cfg), model, opts);
}

/** One timing sweep point for runSweepPoints. */
struct SweepJob {
    lib::Model model;
    lib::ScheduleOptions opts;
    core::MachineConfig cfg = core::MachineConfig::vck190();
};

/**
 * Run every job on the executor; results are in job order regardless
 * of --jobs. This is the loop body every fig/table sweep binary uses.
 */
inline std::vector<EncoderRun>
runSweepPoints(const lib::SweepExecutor &ex,
               const std::vector<SweepJob> &jobs)
{
    return ex.map<EncoderRun>(
        jobs.size(), [&](lib::SweepLane &lane, std::size_t i) {
            return runOnLane(lane, jobs[i].model, jobs[i].opts,
                             jobs[i].cfg);
        });
}

/**
 * Parse the sweep-parallelism request for a bench binary: `--jobs N` or
 * `--jobs=N` on the command line wins, else the RSN_JOBS environment
 * variable, else 1 (sequential — the paper-reproduction default). 0
 * means every hardware thread. Unrelated arguments are ignored, so
 * benches can keep their existing flag handling.
 */
inline unsigned
benchJobs(int argc, char **argv)
{
    long requested = 1;
    if (const char *env = std::getenv("RSN_JOBS"))
        requested = std::strtol(env, nullptr, 10);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            requested = std::strtol(argv[i + 1], nullptr, 10);
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            requested = std::strtol(argv[i] + 7, nullptr, 10);
    }
    return lib::SweepExecutor::resolveJobs(requested);
}

/** A single linear-layer model (for per-segment experiments). */
inline lib::Model
linearModel(const std::string &name, std::uint32_t m, std::uint32_t k,
            std::uint32_t n, bool bias, bool gelu = false,
            bool layernorm = false, bool residual = false)
{
    lib::Model mod;
    mod.name = name;
    mod.input_rows = m;
    mod.input_cols = k;
    lib::LinearLayer l;
    l.name = name;
    l.m = m;
    l.k = k;
    l.n = n;
    l.bias = bias;
    l.gelu = gelu;
    l.layernorm = layernorm;
    l.residual = residual && k == n;
    l.in_src = "input";
    if (l.residual)
        l.residual_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

/** A standalone attention model reading fused Q/K/V from the input. */
inline lib::Model
attentionModel(std::uint32_t batch, std::uint32_t seq,
               std::uint32_t heads_per_batch, std::uint32_t dhead)
{
    lib::Model mod;
    mod.name = "attention";
    const std::uint32_t hidden = heads_per_batch * dhead;
    mod.input_rows = batch * seq;
    mod.input_cols = 3 * hidden;
    lib::AttentionBlock a;
    a.name = "attention";
    a.heads = batch * heads_per_batch;
    a.heads_per_batch = heads_per_batch;
    a.seq = seq;
    a.dhead = dhead;
    a.q_src = a.k_src = a.v_src = "input";
    a.q_col_off = 0;
    a.k_col_off = hidden;
    a.v_col_off = 2 * hidden;
    a.out_name = "out";
    mod.segments.emplace_back(a);
    return mod;
}

} // namespace rsn::bench

#endif // RSN_BENCH_BENCH_UTIL_HH
