/**
 * @file
 * Ablations of the design choices called out in DESIGN.md:
 *  - out-stationary tile shape (Sec. 5.3's 768x128 / 128x1024 choice),
 *  - blocked 128x64 off-chip layout vs row-major (strided bursts),
 *  - store-split granularity for load/store interleaving (Sec. 4.4,
 *    the "12 x 64K blocks" example).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::linearModel;
using rsn::core::Table;

int
main(int argc, char **argv)
{
    const lib::SweepExecutor executor(bench::benchJobs(argc, argv));
    core::banner("Ablation: out-stationary tile shape "
                 "(FF1 3072x1024x4096)");
    {
        const std::vector<std::uint32_t> tile_ms{384, 768, 1536};
        const std::vector<std::uint32_t> k_steps{64, 128, 256};
        std::vector<bench::SweepJob> jobs;
        for (std::uint32_t tm : tile_ms) {
            for (std::uint32_t ks : k_steps) {
                auto opts = lib::ScheduleOptions::optimized();
                opts.out_tile_m = tm;
                opts.k_step = ks;
                jobs.push_back({linearModel("ff1", 3072, 1024, 4096,
                                            true, true),
                                opts});
            }
        }
        const auto runs = bench::runSweepPoints(executor, jobs);

        Table t("Tile sweep (k_step x out_tile_m)");
        t.header({"out_tile_m", "k_step", "latency ms", "DDR read MB"});
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const auto &r = runs[i];
            t.row({std::to_string(tile_ms[i / k_steps.size()]),
                   std::to_string(k_steps[i % k_steps.size()]),
                   Table::num(r.result.ms, 3),
                   Table::num(r.ddr_read_mb, 1)});
        }
        t.print();
    }

    core::banner("Ablation: off-chip layout (blocked 128x64 vs "
                 "row-major)");
    {
        std::vector<bench::SweepJob> jobs;
        for (auto layout : {mem::LayoutKind::Blocked,
                            mem::LayoutKind::RowMajor}) {
            auto cfg = core::MachineConfig::vck190();
            cfg.offchip_layout = layout;
            jobs.push_back({linearModel("key", 3072, 1024, 1024, true),
                            lib::ScheduleOptions::optimized(), cfg});
        }
        const auto runs = bench::runSweepPoints(executor, jobs);

        Table t("Key MM 3072x1024x1024, optimized schedule");
        t.header({"layout", "latency ms", "note"});
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const bool blocked = jobs[i].cfg.offchip_layout ==
                                 mem::LayoutKind::Blocked;
            t.row({blocked ? "blocked 128x64" : "row-major",
                   Table::num(runs[i].result.ms, 3),
                   blocked ? "one burst per touched block"
                           : "one burst per partial row"});
        }
        t.print();
    }

    core::banner("Ablation: store-split granularity (Sec. 4.4)");
    {
        const std::vector<std::uint32_t> splits{1, 2, 4, 8};
        std::vector<bench::SweepJob> jobs;
        for (std::uint32_t split : splits) {
            auto opts = lib::ScheduleOptions::optimized();
            opts.store_split = split;
            jobs.push_back({linearModel("key", 3072, 1024, 1024, true),
                            opts});
        }
        const auto runs = bench::runSweepPoints(executor, jobs);

        Table t("Key MM with interleaved stores, varying split");
        t.header({"store pieces per slab", "latency ms"});
        for (std::size_t i = 0; i < splits.size(); ++i)
            t.row({std::to_string(splits[i]),
                   Table::num(runs[i].result.ms, 3)});
        t.print();
    }
    return 0;
}
