/**
 * @file
 * Ablations of the design choices called out in DESIGN.md:
 *  - out-stationary tile shape (Sec. 5.3's 768x128 / 128x1024 choice),
 *  - blocked 128x64 off-chip layout vs row-major (strided bursts),
 *  - store-split granularity for load/store interleaving (Sec. 4.4,
 *    the "12 x 64K blocks" example).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::linearModel;
using rsn::bench::runModel;
using rsn::core::Table;

int
main()
{
    core::banner("Ablation: out-stationary tile shape "
                 "(FF1 3072x1024x4096)");
    {
        Table t("Tile sweep (k_step x out_tile_m)");
        t.header({"out_tile_m", "k_step", "latency ms", "DDR read MB"});
        for (std::uint32_t tm : {384u, 768u, 1536u}) {
            for (std::uint32_t ks : {64u, 128u, 256u}) {
                auto opts = lib::ScheduleOptions::optimized();
                opts.out_tile_m = tm;
                opts.k_step = ks;
                auto r = runModel(linearModel("ff1", 3072, 1024, 4096,
                                              true, true),
                                  opts);
                t.row({std::to_string(tm), std::to_string(ks),
                       Table::num(r.result.ms, 3),
                       Table::num(r.ddr_read_mb, 1)});
            }
        }
        t.print();
    }

    core::banner("Ablation: off-chip layout (blocked 128x64 vs "
                 "row-major)");
    {
        Table t("Key MM 3072x1024x1024, optimized schedule");
        t.header({"layout", "latency ms", "note"});
        for (auto layout : {mem::LayoutKind::Blocked,
                            mem::LayoutKind::RowMajor}) {
            auto cfg = core::MachineConfig::vck190();
            cfg.offchip_layout = layout;
            auto r = runModel(linearModel("key", 3072, 1024, 1024, true),
                              lib::ScheduleOptions::optimized(), cfg);
            t.row({layout == mem::LayoutKind::Blocked ? "blocked 128x64"
                                                      : "row-major",
                   Table::num(r.result.ms, 3),
                   layout == mem::LayoutKind::Blocked
                       ? "one burst per touched block"
                       : "one burst per partial row"});
        }
        t.print();
    }

    core::banner("Ablation: store-split granularity (Sec. 4.4)");
    {
        Table t("Key MM with interleaved stores, varying split");
        t.header({"store pieces per slab", "latency ms"});
        for (std::uint32_t split : {1u, 2u, 4u, 8u}) {
            auto opts = lib::ScheduleOptions::optimized();
            opts.store_split = split;
            auto r = runModel(linearModel("key", 3072, 1024, 1024, true),
                              opts);
            t.row({std::to_string(split), Table::num(r.result.ms, 3)});
        }
        t.print();
    }
    return 0;
}
