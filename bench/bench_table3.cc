/**
 * @file
 * Table 3 reproduction: first-order latency estimates for the four
 * inter-layer mapping types (Fig. 3) on BERT-Large's attention layer
 * (B=6, S=512, 96 heads, MM1 512x64x512, MM2 512x512x64), and the
 * simulator's check of the estimator's decision.
 * Paper final latencies: A 2.43, B 10.9, C 10.9, D 2.24 ms.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"
#include "lib/mapping.hh"

using namespace rsn;
using rsn::core::Table;

int
main()
{
    core::banner("Table 3: mapping-type latency estimation "
                 "(BERT attention, B=6, S=512)");

    lib::AttentionWorkload w;       // 96 heads, 512 seq, 64 dhead
    lib::PlatformBudget budget;     // VCK190: 8 TFLOPS, 57.6 GB/s

    const double paper_final[] = {2.43, 10.9, 10.9, 2.24};
    Table t("Estimator output vs paper");
    t.header({"Mapping", "inf-FLOPS ms", "AIE util", "inf-BW ms",
              "final ms", "paper final", "traffic MB"});
    int i = 0;
    for (auto type : {lib::MappingType::LayerByLayer,
                      lib::MappingType::TaskByTask,
                      lib::MappingType::TaskParallel,
                      lib::MappingType::Pipeline}) {
        auto e = lib::estimateMapping(type, w, budget);
        t.row({lib::mappingName(type), Table::num(e.inf_flops_ms, 2),
               Table::pct(e.aie_util * 100, 0),
               Table::num(e.inf_bw_ms, 2), Table::num(e.final_ms, 2),
               Table::num(paper_final[i++], 2),
               Table::num(e.traffic_mb, 1)});
    }
    t.print();

    auto best = lib::bestMapping(w, budget);
    std::printf("\nEstimator picks: %s (paper picks type D pipeline)\n",
                lib::mappingName(best));

    // Simulator check: type-D (pipelined) vs type-A-style (sequential)
    // on the full attention block.
    auto seq = rsn::bench::runModel(rsn::bench::attentionModel(6, 512, 16,
                                                               64),
                                    lib::ScheduleOptions::bwOptimized());
    auto pipe = rsn::bench::runModel(rsn::bench::attentionModel(6, 512,
                                                                16, 64),
                                     lib::ScheduleOptions::optimized());
    std::printf("Simulated: sequential %.2f ms vs pipelined %.2f ms "
                "(%.1fx)\n",
                seq.result.ms, pipe.result.ms,
                seq.result.ms / pipe.result.ms);

    // Segmentation rules (Sec. 4.2) on the encoder's linear layers.
    std::printf("\nSegmentation decisions (compute-bound -> run alone):\n");
    struct L {
        const char *n;
        std::uint64_t m, k, nn;
    };
    for (const L &l : {L{"QKV (fused)", 3072, 1024, 3072},
                       L{"attention MM1 (one head)", 512, 64, 512},
                       L{"FF1", 3072, 1024, 4096}}) {
        bool cb = lib::linearIsComputeBound(l.m, l.k, l.nn, budget);
        std::printf("  %-26s %s\n", l.n,
                    cb ? "compute-bound (single-MM mapping)"
                       : "memory-bound (group into pipeline)");
    }
    return 0;
}
