/**
 * @file
 * Table 1 reproduction: inter-linear-layer execution and customization
 * flexibility comparison. The RSN-XNN column is *derived from the
 * implemented system* (each feature maps to a capability this
 * repository actually exercises); the other columns restate the paper's
 * literature survey.
 */

#include <cstdio>

#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

int
main()
{
    core::banner("Table 1: execution-flexibility feature matrix");

    struct Feature {
        const char *name;
        const char *npu;      // NPU-style overlays
        const char *dla;      // Intel DLA
        const char *hpipe;    // fully-pipelined fixed function
        const char *charm;    // CHARM-style multi-FU
        const char *tgpa;     // tile-grained pipeline
        const char *asic;     // ASIC dataflow accelerators
        const char *rsn;      // this work (implemented: see note)
        const char *evidence; // where this repo demonstrates it
    };

    const Feature rows[] = {
        {"Software programmable", "Y", "Y", "-", "-", "-", "Y", "Y",
         "RSN programs drive all workloads (bench_table7)"},
        {"Low instruction-level intervention", "Y", "Y", "n/a", "n/a",
         "n/a", "-", "Y", "~1 MB/s instr. rate (bench_fig9)"},
        {"Remove redundant circuits", "Y", "Y", "Y", "Y", "Y", "-", "Y",
         "union datapath, Sec. 4.2 (core/machine.cc)"},
        {"Bit-level FU customization", "-", "-", "Y", "-", "-", "-", "-",
         "not supported (overlay, like the paper)"},
        {"Allocate FUs by layer shape", "-", "-", "Y", "Y", "Y", "Y",
         "Y", "attention lanes vs single-MM (lib/codegen.cc)"},
        {"All FUs on same/fused layers (A,B,simplified C)", "Y", "Y",
         "-", "-", "-", "Y", "Y", "fused QKV (bench_table9)"},
        {"Interleave dependent layers tile-wise (enhanced A)", "-", "Y",
         "-", "-", "-", "Y", "-", "excluded to save circuits (Sec. 2.2)"},
        {"Spatially execute independent layers (C)", "-", "-", "Y", "Y",
         "Y", "Y", "Y", "parallel attention heads (lib/codegen.cc)"},
        {"Spatially pipeline dependent layers (D)", "-", "-", "Y", "-",
         "Y", "Y", "Y", "MM1->softmax->MM2 chain (bench_table9)"},
        {"Dynamic chain of pipelined FUs (A,B,C,D)", "-", "-", "-", "-",
         "-", "Y", "Y", "runtime mapping switch (bench_table9)"},
        {"Overlap prolog/epilog phases", "-", "Y", "-", "-", "-", "Y",
         "Y", "cross-segment store/load overlap (bench_table9)"},
        {"Fine off-chip load/store interleave", "-", "-", "-", "-", "-",
         "Y", "Y", "DDR uOP ordering (bench_table9, Sec. 4.4)"},
    };

    Table t("Supported execution features (Y = supported)");
    t.header({"Feature", "NPU", "DLA", "HPIPE", "CHARM", "TGPA", "ASIC",
              "RSN-XNN", "evidence in this repo"});
    for (const auto &r : rows)
        t.row({r.name, r.npu, r.dla, r.hpipe, r.charm, r.tgpa, r.asic,
               r.rsn, r.evidence});
    t.print();
    return 0;
}
