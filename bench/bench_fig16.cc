/**
 * @file
 * Fig. 16 reproduction: per-FU compute, memory, and aggregate stream
 * bandwidth of the RSN-XNN datapath — the heterogeneity/coarseness
 * visualization. Also emits the network as Graphviz DOT.
 */

#include <cstdio>

#include "core/machine.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

int
main()
{
    core::banner("Fig. 16: FU compute / memory / bandwidth properties");

    core::RsnMachine mach(core::MachineConfig::vck190());
    const double pl_hz = mach.config().clocks.plHz;

    Table t("Per-FU properties (bandwidth = sum of in+out edges)");
    t.header({"FU", "compute TFLOPS", "memory KB", "agg BW GB/s"});
    for (const auto &f : mach.fus()) {
        double bw_gbs =
            mach.topology().aggregateBandwidth(f->id()) * pl_hz / 1e9;
        t.row({f->name(),
               Table::num(mach.fuPeakTflops(f->id()), 3),
               Table::num(mach.fuMemoryBytes(f->id()) / 1024.0, 0),
               Table::num(bw_gbs, 0)});
    }
    t.print();

    std::printf("\nPaper reference: MME 1.1 TFLOPS / 590 KB each; MemC "
                "0.072 TFLOPS / 1 MB; meshes 0 TFLOPS / 0 MB (pure "
                "routers); MeshB routes up to 9 Kb per cycle (~300 "
                "GB/s).\n");

    std::printf("\nGraphviz DOT of the datapath:\n%s\n",
                mach.topology().toDot("rsn_xnn").c_str());
    return 0;
}
