/**
 * @file
 * Table 8 reproduction: maximum-throughput comparison of FPGA-based
 * transformer accelerators. RSN-XNN's row is measured from the
 * simulator; the others restate published numbers (different boards and
 * precisions, as in the paper).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::runModel;
using rsn::core::Table;

int
main()
{
    core::banner("Table 8: FPGA transformer accelerators at max "
                 "throughput");

    auto run = runModel(lib::bertLargeEncoder(6, 512, true, 1),
                        lib::ScheduleOptions::optimized());

    Table t("Peak vs achieved ops");
    t.header({"Design", "Board", "Precision", "Peak TOPS",
              "Achieved TOPS", "Util", "Model"});
    t.row({"RSN-XNN (sim)", "VCK190", "FP32", "8",
           Table::num(run.achieved_tflops, 2),
           Table::pct(run.achieved_tflops / 8.0 * 100, 0), "BERT-L"});
    t.row({"RSN-XNN (paper)", "VCK190", "FP32", "8", "4.7", "59%",
           "BERT-L"});
    t.row({"SSR (published)", "VCK190", "INT8", "102", "26.7", "26%",
           "DeiT-T"});
    t.row({"FET-OPU (published)", "U280", "INT8", "7.2", "1.64", "23%",
           "BERT-B"});
    t.row({"DFX (published)", "U280", "FP16", "1.2", "0.19", "15%",
           "GPT2 prefill"});
    t.row({"ViA (published)", "U50", "FP16", "1.2", "0.31", "26%",
           "Swin-T"});
    t.row({"FTRANS (published)", "VCU118", "INT16", "2.7", "1.05",
           "38%", "RoBERTa-B"});
    t.print();

    std::printf("\nThe point of the table (Sec. 5.4): RSN-XNN's "
                "utilization of peak performance is the highest, and "
                "its absolute FLOPS exceed pure-FPGA designs thanks to "
                "the AIE array.\n");
    return 0;
}
