/**
 * @file
 * Ablation: decoder FIFO depth vs deadlock (paper Sec. 3.3).
 *
 * "A deadlock may occur if the fetch unit stalls before fetching the
 * instruction that directs FU2 to consume the data from FU1... we report
 * that setting FIFO depths to six between uOP and mOP decoders is
 * deadlock-free in our implementation."
 *
 * This bench sweeps the uOP-queue and packet-FIFO depths on the
 * BERT-Large encoder program and reports completion and latency.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::bench::runModel;
using rsn::core::Table;

int
main()
{
    core::banner("Ablation: decoder FIFO depth (Sec. 3.3 deadlock "
                 "discussion)");

    Table t("BERT-Large encoder (S=512, B=6), optimized schedule");
    t.header({"uOP FIFO depth", "packet FIFO depth", "outcome",
              "latency ms"});
    for (std::size_t uop_depth : {2u, 3u, 4u, 6u, 8u, 16u}) {
        auto cfg = core::MachineConfig::vck190();
        cfg.uop_fifo_depth = uop_depth;
        // The generated code interleaves delivery in blocks of 4, so
        // depths below 5 starve sibling FUs behind the shared decoder.
        auto r = runModel(lib::bertLargeEncoder(6, 512, true, 1),
                          lib::ScheduleOptions::optimized(), cfg);
        t.row({std::to_string(uop_depth),
               std::to_string(cfg.fetch_fifo_depth),
               r.result.completed ? "completed"
               : r.result.deadlocked ? "DEADLOCK"
                                     : "timeout",
               r.result.completed ? Table::num(r.result.ms, 2) : "-"});
    }
    for (std::size_t pkt_depth : {1u, 2u, 6u, 12u}) {
        auto cfg = core::MachineConfig::vck190();
        cfg.fetch_fifo_depth = pkt_depth;
        auto r = runModel(lib::bertLargeEncoder(6, 512, true, 1),
                          lib::ScheduleOptions::optimized(), cfg);
        t.row({std::to_string(cfg.uop_fifo_depth),
               std::to_string(pkt_depth),
               r.result.completed ? "completed"
               : r.result.deadlocked ? "DEADLOCK"
                                     : "timeout",
               r.result.completed ? Table::num(r.result.ms, 2) : "-"});
    }
    t.print();

    // The deadlock is shape-dependent: the sequential-attention program
    // at B=2 needs more fetch slack than the paper's depth 6 provides
    // under this generator's packing.
    Table s("Shape sensitivity: B=2, S=128, BW-optimized schedule");
    s.header({"packet FIFO depth", "outcome", "latency ms"});
    for (std::size_t pkt_depth : {4u, 6u, 8u, 12u}) {
        auto cfg = core::MachineConfig::vck190();
        cfg.fetch_fifo_depth = pkt_depth;
        auto r = runModel(lib::bertLargeEncoder(2, 128, true, 1),
                          lib::ScheduleOptions::bwOptimized(), cfg);
        s.row({std::to_string(pkt_depth),
               r.result.completed ? "completed"
               : r.result.deadlocked ? "DEADLOCK"
                                     : "timeout",
               r.result.completed ? Table::num(r.result.ms, 2) : "-"});
    }
    s.print();

    std::printf("\nNote: a run that quiesces with blocked FUs is "
                "reported as DEADLOCK by the machine's stall detector "
                "rather than hanging, so the sweep is safe to "
                "automate.\n");
    return 0;
}
