/**
 * @file
 * Ablation: decoder FIFO depth vs deadlock (paper Sec. 3.3).
 *
 * "A deadlock may occur if the fetch unit stalls before fetching the
 * instruction that directs FU2 to consume the data from FU1... we report
 * that setting FIFO depths to six between uOP and mOP decoders is
 * deadlock-free in our implementation."
 *
 * This bench sweeps the uOP-queue and packet-FIFO depths on the
 * BERT-Large encoder program and reports completion and latency.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

namespace {

const char *
outcome(const core::RunResult &r)
{
    return r.completed      ? "completed"
           : r.deadlocked   ? "DEADLOCK"
                            : "timeout";
}

} // namespace

int
main(int argc, char **argv)
{
    const lib::SweepExecutor executor(bench::benchJobs(argc, argv));
    core::banner("Ablation: decoder FIFO depth (Sec. 3.3 deadlock "
                 "discussion)");

    // Deadlocked points leave non-resettable machines; the lane simply
    // rebuilds, so DEADLOCK rows are safe to sweep in parallel too.
    const std::vector<std::size_t> uop_depths{2, 3, 4, 6, 8, 16};
    const std::vector<std::size_t> pkt_depths{1, 2, 6, 12};
    std::vector<bench::SweepJob> jobs;
    for (std::size_t uop_depth : uop_depths) {
        auto cfg = core::MachineConfig::vck190();
        cfg.uop_fifo_depth = uop_depth;
        // The generated code interleaves delivery in blocks of 4, so
        // depths below 5 starve sibling FUs behind the shared decoder.
        jobs.push_back({lib::bertLargeEncoder(6, 512, true, 1),
                        lib::ScheduleOptions::optimized(), cfg});
    }
    for (std::size_t pkt_depth : pkt_depths) {
        auto cfg = core::MachineConfig::vck190();
        cfg.fetch_fifo_depth = pkt_depth;
        jobs.push_back({lib::bertLargeEncoder(6, 512, true, 1),
                        lib::ScheduleOptions::optimized(), cfg});
    }
    const auto runs = bench::runSweepPoints(executor, jobs);

    Table t("BERT-Large encoder (S=512, B=6), optimized schedule");
    t.header({"uOP FIFO depth", "packet FIFO depth", "outcome",
              "latency ms"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &cfg = jobs[i].cfg;
        const auto &r = runs[i];
        t.row({std::to_string(cfg.uop_fifo_depth),
               std::to_string(cfg.fetch_fifo_depth), outcome(r.result),
               r.result.completed ? Table::num(r.result.ms, 2) : "-"});
    }
    t.print();

    // The deadlock is shape-dependent: the sequential-attention program
    // at B=2 needs more fetch slack than the paper's depth 6 provides
    // under this generator's packing.
    const std::vector<std::size_t> shape_depths{4, 6, 8, 12};
    std::vector<bench::SweepJob> shape_jobs;
    for (std::size_t pkt_depth : shape_depths) {
        auto cfg = core::MachineConfig::vck190();
        cfg.fetch_fifo_depth = pkt_depth;
        shape_jobs.push_back({lib::bertLargeEncoder(2, 128, true, 1),
                              lib::ScheduleOptions::bwOptimized(), cfg});
    }
    const auto shape_runs = bench::runSweepPoints(executor, shape_jobs);

    Table s("Shape sensitivity: B=2, S=128, BW-optimized schedule");
    s.header({"packet FIFO depth", "outcome", "latency ms"});
    for (std::size_t i = 0; i < shape_jobs.size(); ++i) {
        const auto &r = shape_runs[i];
        s.row({std::to_string(shape_depths[i]), outcome(r.result),
               r.result.completed ? Table::num(r.result.ms, 2) : "-"});
    }
    s.print();

    std::printf("\nNote: a run that quiesces with blocked FUs is "
                "reported as DEADLOCK by the machine's stall detector "
                "rather than hanging, so the sweep is safe to "
                "automate.\n");
    return 0;
}
