/**
 * @file
 * Fig. 9 reproduction: RSN instruction bytes vs translated uOP bytes per
 * FU type for one BERT-Large encoder, plus the per-type instruction
 * counts of Sec. 5.1 (paper: 1685 PL instructions — 1404 DDR, 88 LPDDR,
 * 49 MemA, 58 MemB, 22 MemC, 38 MeshA, 26 MeshB) and the aggregate
 * overhead metrics (instruction rate ~1.4 MB/s; ~1.6 GFLOPs per
 * instruction byte).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/report.hh"
#include "isa/packet.hh"

using namespace rsn;
using rsn::core::Table;

int
main()
{
    core::banner("Fig. 9: RSN instruction vs expanded uOP size by FU "
                 "type (BERT-Large encoder, S=512, B=6)");

    core::RsnMachine mach(core::MachineConfig::vck190());
    auto compiled = lib::compileModel(
        mach, lib::bertLargeEncoder(6, 512, true, 1),
        lib::ScheduleOptions::optimized());
    const auto &prog = compiled.program;

    struct PaperCount {
        FuType t;
        int packets;
    };
    const PaperCount paper[] = {
        {FuType::Ddr, 1404},  {FuType::Lpddr, 88}, {FuType::MemA, 49},
        {FuType::MemB, 58},   {FuType::MemC, 22},  {FuType::MeshA, 38},
        {FuType::MeshB, 26},
    };

    Table t("Instruction footprint per FU type");
    t.header({"FU type", "packets", "paper pkts", "instr bytes",
              "uOP bytes", "compression"});
    Bytes total_instr = 0;
    for (const auto &p : paper) {
        Bytes ib = prog.instructionBytes(p.t);
        Bytes ub = prog.expandedUopBytes(p.t);
        total_instr += ib;
        t.row({fuTypeName(p.t), std::to_string(prog.packetCount(p.t)),
               std::to_string(p.packets),
               std::to_string((unsigned long long)ib),
               std::to_string((unsigned long long)ub),
               ib ? Table::num(double(ub) / ib, 1) + "x" : "-"});
    }
    // MME uOPs live in AIE local memory (17 x 4B per tile), not in the
    // PL instruction stream (paper Sec. 5.1).
    t.row({"MME (AIE-local)", std::to_string(prog.packetCount(
                                   FuType::Mme)),
           "0 (local)",
           std::to_string((unsigned long long)prog.instructionBytes(
               FuType::Mme)),
           std::to_string((unsigned long long)prog.expandedUopBytes(
               FuType::Mme)),
           "-"});
    t.print();

    // Aggregate overhead (Sec. 5.1).
    auto run = mach.run(compiled.program);
    double ms = run.ms;
    double instr_rate_mbs = total_instr / (ms / 1e3) / 1e6;
    std::printf("\nTotal PL packets: %llu (paper: 1685)\n",
                (unsigned long long)(prog.size() -
                                     prog.packetCount(FuType::Mme)));
    std::printf("Instruction processing rate: %.2f MB/s (paper: ~1.4 "
                "MB/s, 0.0024%% of off-chip BW)\n",
                instr_rate_mbs);
    // "1 byte of instruction can drive up to 1.6 GFLOPs": the best
    // single packet — an MME packet whose reps cover a whole GEMM.
    double best = 0;
    for (const auto &p : prog.packets()) {
        if (p.opcode != FuType::Mme || p.mops.empty())
            continue;
        for (const auto &m : p.mops) {
            if (const auto *u = std::get_if<isa::MmeUop>(&m)) {
                double flops = 2.0 * u->reps * u->k_steps * u->tile_m *
                               u->tile_k * u->tile_n * p.reuse * 6;
                best = std::max(best, flops / double(p.wireBytes()));
            }
        }
    }
    std::printf("Peak compute per instruction byte: %.2f GFLOP/B "
                "(paper: up to 1.6 GFLOP/B)\n",
                best / 1e9);
    return 0;
}
