/**
 * @file
 * Fig. 6 reproduction: the RSN three-FU datapath vs a RISC-like vector
 * overlay on the two example applications. The baseline stalls on WAR
 * hazards (no renaming); the RSN datapath streams through FUs with no
 * intermediate register pressure.
 */

#include <cstdio>

#include "baseline/vector_overlay.hh"
#include "core/report.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

using namespace rsn;
using rsn::core::Table;

namespace {

/**
 * The RSN datapath of Fig. 6: FU1 (source) -> FU2 (+1) -> FU3 (sink),
 * with a bypass stream FU1 -> FU3. Expressed directly on the simulation
 * kernel; elements stream in groups of 4 per cycle to match the
 * baseline's memory rate.
 */
struct Fig6Rsn {
    sim::Engine eng;
    sim::Stream s12{eng, 4 * 4.0, 2, "FU1->FU2"};
    sim::Stream s13{eng, 4 * 4.0, 2, "FU1->FU3"};
    sim::Stream s23{eng, 4 * 4.0, 2, "FU2->FU3"};

    /** (dest FU, count) pairs: FU1's uOP sequence. */
    using Route = std::pair<int, std::uint32_t>;

    sim::Task
    fu1(std::vector<Route> routes)
    {
        for (auto [dst, n] : routes) {
            sim::Chunk c = sim::makeChunk(1, n);
            if (dst == 2)
                co_await s12.send(c);
            else
                co_await s13.send(c);
        }
    }

    sim::Task
    fu2(std::uint32_t total)
    {
        std::uint32_t done = 0;
        while (done < total) {
            sim::Chunk c = co_await s12.recv();
            done += c.cols;
            // +1 transform: one extra cycle of latency per chunk.
            co_await eng.delay(1);
            co_await s23.send(c);
        }
    }

    sim::Task
    fu3(std::vector<Route> routes)
    {
        for (auto [src, n] : routes) {
            std::uint32_t got = 0;
            while (got < n) {
                sim::Chunk c = src == 2 ? co_await s23.recv()
                                        : co_await s13.recv();
                got += c.cols;
            }
        }
    }

    Tick
    run(std::vector<Route> fu1_routes, std::uint32_t fu2_total,
        std::vector<Route> fu3_routes)
    {
        sim::Task t1 = fu1(std::move(fu1_routes));
        sim::Task t2 = fu2(fu2_total);
        sim::Task t3 = fu3(std::move(fu3_routes));
        eng.run();
        return eng.now();
    }
};

} // namespace

int
main()
{
    core::banner("Fig. 6: RSN datapath vs RISC-like vector overlay");

    baseline::VectorOverlay overlay;

    // Application 1: out[i] = in[i] + 1 for 100 elements.
    auto b1 = overlay.run(baseline::fig6App1());
    Fig6Rsn r1;
    Tick rsn1 = r1.run({{2, 100}}, 100, {{2, 100}});

    // Application 2: +1 / copy / +1 over 300 elements.
    auto b2 = overlay.run(baseline::fig6App2());
    Fig6Rsn r2;
    Tick rsn2 = r2.run({{2, 100}, {3, 100}, {2, 100}}, 200,
                       {{2, 100}, {3, 100}, {2, 100}});

    Table t("Cycles to completion");
    t.header({"Application", "baseline cycles", "baseline stalls",
              "RSN cycles", "RSN gain"});
    t.row({"App1: 100x (+1)", std::to_string(b1.cycles),
           std::to_string(b1.stall_cycles), std::to_string(rsn1),
           Table::num(double(b1.cycles) / rsn1, 2) + "x"});
    t.row({"App2: +1 / copy / +1 (300)", std::to_string(b2.cycles),
           std::to_string(b2.stall_cycles), std::to_string(rsn2),
           Table::num(double(b2.cycles) / rsn2, 2) + "x"});
    t.print();

    std::printf("\nThe baseline's WAR hazards on v0 serialize App2 "
                "(%llu stall cycles); the RSN datapath re-targets FU "
                "paths with three uOPs and never buffers in registers "
                "(paper Sec. 3.1).\n",
                (unsigned long long)b2.stall_cycles);
    return 0;
}
