/**
 * @file
 * Table 4 / Fig. 15 reproduction: estimated power-consumption breakdown
 * for the decoder unit and the FU types while running the BERT-Large
 * encoder. Paper ratios: AIE 61.6%, MemC 23.2%, decoder 0.08%.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/power.hh"
#include "core/report.hh"

using namespace rsn;
using rsn::core::Table;

int
main()
{
    core::banner("Table 4: power breakdown (BERT-Large encoder, S=512, "
                 "B=6)");

    core::RsnMachine mach(core::MachineConfig::vck190());
    auto compiled = lib::compileModel(
        mach, lib::bertLargeEncoder(6, 512, true, 1),
        lib::ScheduleOptions::optimized());
    auto run = mach.run(compiled.program);

    core::PowerModel power;
    auto rows = power.breakdown(mach, run);

    struct PaperRow {
        const char *name;
        double watts, pct;
    };
    const PaperRow paper[] = {
        {"AIE", 60.8, 61.6},   {"MemC", 22.91, 23.22},
        {"MemB", 0.47, 0.48},  {"MemA", 0.25, 0.25},
        {"DDR", 0.33, 0.33},   {"LPDDR", 0.15, 0.15},
        {"MeshA", 0.10, 0.10}, {"MeshB", 0.09, 0.09},
        {"Decoder", 0.08, 0.08},
    };

    Table t("Component power (model) vs paper (Vivado estimate)");
    t.header({"Component", "model W", "model %", "paper W", "paper %"});
    for (const auto &p : paper) {
        double w = 0, pc = 0;
        for (const auto &r : rows) {
            if (r.component == p.name) {
                w = r.watts;
                pc = r.percent;
            }
        }
        t.row({p.name, Table::num(w, 2), Table::pct(pc, 2),
               Table::num(p.watts, 2), Table::pct(p.pct, 2)});
    }
    t.print();

    std::printf("\nOperating power: %.1f W (paper board measurement: "
                "45.5 W)\n",
                power.operatingWatts(mach, run));
    std::printf("Dynamic power:   %.1f W (paper: 18.2 W)\n",
                power.dynamicWatts(mach, run));
    return 0;
}
