/**
 * @file
 * Serving-tier benchmarks (google-benchmark): the ROADMAP item 5
 * headline. One item == one *request served* through the full serving
 * stack — Poisson arrivals, bucketed batching, the lane-cached fleet,
 * and the robustness machinery (deadlines/retries/shedding/breaker all
 * armed but idle on the faults-off path). The Arg is the offered load
 * in requests per simulated second; the recorded label carries it as
 * "load=N" so tools/bench_json.sh turns the series into a goodput /
 * tail-latency curve in BENCH_sim.json.
 *
 * Timing-only machines: these series measure the serving scheduler and
 * simulator, not FP32 payload math (bench_functional owns that).
 */

#include <benchmark/benchmark.h>

#include <string>

#include "common/dtype.hh"
#include "serve/scheduler.hh"

namespace {

rsn::serve::ServeSpec
timingSpec(double load, rsn::Dtype dtype = rsn::Dtype::F32)
{
    rsn::serve::ServeSpec spec;
    spec.cfg = rsn::core::MachineConfig::vck190(/*functional=*/false);
    // The precision policy moves timing even on timing-only machines:
    // chunk dtype is stamped by codegen, so a bf16 fleet serves with
    // half the wire/DRAM bytes per request (ISSUE 10).
    spec.cfg.precision.linear_weights = dtype;
    spec.cfg.precision.linear_activations = dtype;
    spec.cfg.precision.attention_activations = dtype;
    spec.classes = rsn::serve::defaultClasses();
    spec.policy.fleet = 2;
    spec.policy.max_batch = 4;
    spec.seed = 1;
    spec.offered_load = load;
    spec.num_requests = 48;
    return spec;
}

/** End-to-end serving throughput at Arg(0) offered load: items/s is
 *  requests served per wall second, the serving layer's cost figure. */
void
BM_ServingThroughput(benchmark::State &state)
{
    const auto spec = timingSpec(double(state.range(0)));
    std::uint64_t served = 0;
    for (auto _ : state) {
        const auto rep = rsn::serve::runServing(spec);
        if (rep.resolved() != rep.offered)
            state.SkipWithError("serving left requests unresolved");
        served += rep.served();
        benchmark::DoNotOptimize(rep.horizon);
    }
    state.SetItemsProcessed(served);
    state.SetLabel("load=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ServingThroughput)
    ->Arg(10000)
    ->Arg(40000)
    ->Unit(benchmark::kMillisecond);

/** Tail latency at Arg(0) offered load: the simulated p99 queue-to-
 *  completion ticks land in the counters, so BENCH_sim.json records
 *  the latency curve alongside the wall-clock cost of computing it. */
void
BM_ServingP99(benchmark::State &state)
{
    const auto spec = timingSpec(double(state.range(0)));
    rsn::Tick p99 = 0, p50 = 0;
    double goodput = 0;
    for (auto _ : state) {
        const auto rep = rsn::serve::runServing(spec);
        if (rep.resolved() != rep.offered)
            state.SkipWithError("serving left requests unresolved");
        p99 = rep.p99;
        p50 = rep.p50;
        goodput = rep.goodput;
        benchmark::DoNotOptimize(p99);
    }
    state.counters["p99_ticks"] = double(p99);
    state.counters["p50_ticks"] = double(p50);
    state.counters["goodput_rps"] = goodput;
    state.SetItemsProcessed(state.iterations() * spec.num_requests);
    state.SetLabel("load=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ServingP99)
    ->Arg(10000)
    ->Arg(40000)
    ->Unit(benchmark::kMillisecond);

/** The high-load latency point again on a bf16 fleet (ISSUE 10): the
 *  same scheduler and arrival process over machines whose wire and
 *  DRAM traffic is halved by the precision policy. The p99/p50/goodput
 *  counters quantify what mixed precision buys the serving tier; the
 *  dtype label keeps the series distinguishable in BENCH_sim.json. */
void
BM_ServingP99Bf16(benchmark::State &state)
{
    const auto spec =
        timingSpec(double(state.range(0)), rsn::Dtype::Bf16);
    rsn::Tick p99 = 0, p50 = 0;
    double goodput = 0;
    for (auto _ : state) {
        const auto rep = rsn::serve::runServing(spec);
        if (rep.resolved() != rep.offered)
            state.SkipWithError("serving left requests unresolved");
        p99 = rep.p99;
        p50 = rep.p50;
        goodput = rep.goodput;
        benchmark::DoNotOptimize(p99);
    }
    state.counters["p99_ticks"] = double(p99);
    state.counters["p50_ticks"] = double(p50);
    state.counters["goodput_rps"] = goodput;
    state.SetItemsProcessed(state.iterations() * spec.num_requests);
    state.SetLabel("load=" + std::to_string(state.range(0)) +
                   " dtype=bf16");
}
BENCHMARK(BM_ServingP99Bf16)
    ->Arg(40000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
