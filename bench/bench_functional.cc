/**
 * @file
 * End-to-end functional-mode benchmarks (google-benchmark).
 *
 * Separate binary from bench_micro_sim on purpose: linking the whole
 * machine/model/codegen stack into the micro-benchmark binary measurably
 * perturbs the tight sim-kernel loops (code layout / inlining), so the
 * kernel microbenches stay lean and the full-datapath numbers live here.
 * tools/bench_json.sh runs both binaries and merges their results into
 * one BENCH_sim.json.
 */

#include <benchmark/benchmark.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"

namespace {

/**
 * Functional tiny-encoder end-to-end (B=2, S=64, H=128, FF=256): the
 * ROADMAP headline number for the functional data plane — every lever
 * (GEMM microkernel, gather-view assembly, zero-copy staging, stream
 * fast path, decoder uOP cache) lands here. One item == one full
 * simulated run carrying FP32 payloads; compile/init are excluded from
 * the timed region. The machine is reset between runs, mirroring the
 * BenchContext sweep pattern.
 */
void
BM_FunctionalTinyEncoder(benchmark::State &state)
{
    auto model = rsn::lib::tinyEncoder(/*batch=*/2, /*seq=*/64,
                                       /*hidden=*/128, /*heads=*/4,
                                       /*ff=*/256, /*fuse_qkv=*/true);
    rsn::core::RsnMachine mach(
        rsn::core::MachineConfig::vck190(/*functional=*/true));
    bool first = true;
    for (auto _ : state) {
        state.PauseTiming();
        if (!first)
            mach.reset();
        first = false;
        auto compiled = rsn::lib::compileModel(
            mach, model, rsn::lib::ScheduleOptions::optimized());
        rsn::lib::initTensors(mach, compiled, 2025);
        state.ResumeTiming();
        auto r = mach.run(compiled.program);
        if (!r.completed)
            state.SkipWithError("functional run did not complete");
        benchmark::DoNotOptimize(r.ticks);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalTinyEncoder)->Unit(benchmark::kMillisecond);

/** Same workload timing-only: the sim-overhead floor under the number
 *  above (the gap between the two is pure functional-payload cost). */
void
BM_TimingOnlyTinyEncoder(benchmark::State &state)
{
    auto model = rsn::lib::tinyEncoder(2, 64, 128, 4, 256, true);
    rsn::core::RsnMachine mach(
        rsn::core::MachineConfig::vck190(/*functional=*/false));
    bool first = true;
    for (auto _ : state) {
        state.PauseTiming();
        if (!first)
            mach.reset();
        first = false;
        auto compiled = rsn::lib::compileModel(
            mach, model, rsn::lib::ScheduleOptions::optimized());
        state.ResumeTiming();
        auto r = mach.run(compiled.program);
        if (!r.completed)
            state.SkipWithError("timing run did not complete");
        benchmark::DoNotOptimize(r.ticks);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingOnlyTinyEncoder)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
