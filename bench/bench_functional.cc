/**
 * @file
 * End-to-end functional-mode and payload-math benchmarks
 * (google-benchmark).
 *
 * Separate binary from bench_micro_sim on purpose: linking the whole
 * machine/model/codegen stack into the micro-benchmark binary measurably
 * perturbs the tight sim-kernel loops (code layout / inlining), so the
 * kernel microbenches stay lean and the full-datapath numbers live here.
 * The nonlinear-operator and host-memory benches live here for the same
 * reason — measured on this machine, pulling fu/nonlinear and
 * mem/hostmem into bench_micro_sim cost BM_StreamChunkTransfer ~15%.
 * tools/bench_json.sh runs both binaries and merges their results into
 * one BENCH_sim.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "lib/sweep.hh"
#include "mem/hostmem.hh"

namespace {

/** The probed-best vectorized kernel table — what a production run on
 *  this machine would select (never the scalar reference). Benchmarks
 *  pin it explicitly so the recorded label names the ISA even when the
 *  bench process is launched with RSN_ISA set. */
const rsn::kernel::KernelTable &
bestTable()
{
    auto &reg = rsn::kernel::Registry::instance();
    std::vector<rsn::kernel::Isa> compiled_in;
    for (const auto *t : reg.tables())
        compiled_in.push_back(t->isa);
    const rsn::kernel::Isa best =
        rsn::kernel::chooseBest(reg.probe(), compiled_in);
    for (const auto *t : reg.tables())
        if (t->isa == best)
            return *t;
    return reg.active();
}

/**
 * Functional tiny-encoder end-to-end (B=2, S=64, H=128, FF=256): the
 * ROADMAP headline number for the functional data plane — every lever
 * (GEMM microkernel, vectorized nonlinear layer, hostmem block copies,
 * gather-view assembly, zero-copy staging, stream fast path, decoder
 * uOP cache) lands here. One item == one full simulated run carrying
 * FP32 payloads; compile/init are excluded from the timed region. The
 * machine comes from a SweepLane — the same reset()-on-equal-config
 * cache the sweep and serving tiers use — so every timed iteration
 * runs the one warm machine instead of paying an untimed-but-variance-
 * inducing rebuild, and the bench measures the production reuse path.
 * @p table picks the payload kernels: the runtime-selected best (the
 * headline) or the exact scalar reference (the A/B); @p dtype is the
 * precision policy for weights and activations (ISSUE 10). The series
 * label in BENCH_sim.json carries both the table's ISA name and the
 * dtype, and the simulated end-to-end tick count lands in the counters
 * — the bf16 series must sit strictly below the f32 series there
 * (byte-true wire traffic: 16-bit tiles halve link and DRAM time).
 */
void
functionalTinyEncoder(benchmark::State &state,
                      const rsn::kernel::KernelTable &table,
                      rsn::Dtype dtype)
{
    rsn::kernel::ScopedIsaOverride pin(table);
    auto model = rsn::lib::tinyEncoder(/*batch=*/2, /*seq=*/64,
                                       /*hidden=*/128, /*heads=*/4,
                                       /*ff=*/256, /*fuse_qkv=*/true);
    auto cfg = rsn::core::MachineConfig::vck190(/*functional=*/true);
    cfg.precision.linear_weights = dtype;
    cfg.precision.linear_activations = dtype;
    cfg.precision.attention_activations = dtype;
    rsn::lib::SweepLane lane(0);
    rsn::Tick ticks = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto &mach = lane.machine(cfg);
        auto compiled = rsn::lib::compileModel(
            mach, model, rsn::lib::ScheduleOptions::optimized());
        rsn::lib::initTensors(mach, compiled, 2025);
        state.ResumeTiming();
        auto r = mach.run(compiled.program);
        if (!r.completed)
            state.SkipWithError("functional run did not complete");
        ticks = r.ticks;
        benchmark::DoNotOptimize(r.ticks);
    }
    if (lane.machinesBuilt() > 1)
        state.SkipWithError("lane rebuilt a reusable machine");
    state.SetItemsProcessed(state.iterations());
    state.counters["ticks"] = double(ticks);
    state.SetLabel(std::string(table.name) + " dtype=" +
                   rsn::dtypeName(dtype));
}

void
BM_FunctionalTinyEncoder(benchmark::State &state)
{
    functionalTinyEncoder(state, bestTable(), rsn::Dtype::F32);
}
BENCHMARK(BM_FunctionalTinyEncoder)->Unit(benchmark::kMillisecond);

/** The same program under the all-bf16 precision policy: typed tiles
 *  on every wire, FP32 accumulation in the FUs. Wall-clock cost is the
 *  interesting delta vs the f32 series (conversion kernels on every
 *  load/store); the recorded simulated ticks must be strictly lower. */
void
BM_FunctionalTinyEncoderBf16(benchmark::State &state)
{
    functionalTinyEncoder(state, bestTable(), rsn::Dtype::Bf16);
}
BENCHMARK(BM_FunctionalTinyEncoderBf16)->Unit(benchmark::kMillisecond);

/** Same workload on the exact scalar kernel table (scalar GEMM loop,
 *  libm erf/exp): the accuracy-reference configuration the golden tier
 *  validates. */
void
BM_FunctionalTinyEncoderExact(benchmark::State &state)
{
    functionalTinyEncoder(state,
                          *rsn::kernel::Registry::instance().find("scalar"),
                          rsn::Dtype::F32);
}
BENCHMARK(BM_FunctionalTinyEncoderExact)->Unit(benchmark::kMillisecond);

/** Same workload timing-only: the sim-overhead floor under the number
 *  above (the gap between the two is pure functional-payload cost). */
void
BM_TimingOnlyTinyEncoder(benchmark::State &state)
{
    auto model = rsn::lib::tinyEncoder(2, 64, 128, 4, 256, true);
    const auto cfg =
        rsn::core::MachineConfig::vck190(/*functional=*/false);
    rsn::lib::SweepLane lane(0);
    for (auto _ : state) {
        state.PauseTiming();
        auto &mach = lane.machine(cfg);
        auto compiled = rsn::lib::compileModel(
            mach, model, rsn::lib::ScheduleOptions::optimized());
        state.ResumeTiming();
        auto r = mach.run(compiled.program);
        if (!r.completed)
            state.SkipWithError("timing run did not complete");
        benchmark::DoNotOptimize(r.ticks);
    }
    if (lane.machinesBuilt() > 1)
        state.SkipWithError("lane rebuilt a reusable machine");
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingOnlyTinyEncoder)->Unit(benchmark::kMillisecond);

/**
 * Sweep-executor throughput at Arg(0) lanes: one item == one complete
 * timing-only tiny-encoder sweep point (compile + run) pushed through
 * lib::SweepExecutor. The {1,4,8} series is the scaling headline for
 * the parallel sweep layer — jobs=1 is the sequential baseline the
 * parallel results are bit-identical to, and items_per_second at 4/8
 * over 1 is the measured speedup. The per-lane machine cache works at
 * full strength: every point shares one config, so each lane builds
 * one machine and reset()s it for the rest of the sweep. The batch is
 * sized at 4x jobs so each lane amortizes its build across ~4 points,
 * mirroring the fig/table sweep shape.
 */
void
BM_SweepThroughput(benchmark::State &state)
{
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    const std::size_t points = std::size_t(jobs) * 4;
    const rsn::lib::SweepExecutor executor(jobs);
    auto model = rsn::lib::tinyEncoder(2, 64, 128, 4, 256, true);
    const auto cfg =
        rsn::core::MachineConfig::vck190(/*functional=*/false);
    for (auto _ : state) {
        auto ticks = executor.map<rsn::Tick>(
            points, [&](rsn::lib::SweepLane &lane, std::size_t) {
                auto &mach = lane.machine(cfg);
                auto compiled = rsn::lib::compileModel(
                    mach, model, rsn::lib::ScheduleOptions::optimized());
                auto r = mach.run(compiled.program);
                if (!r.completed)
                    return rsn::Tick(0);
                return r.ticks;
            });
        for (rsn::Tick t : ticks)
            if (t == 0)
                state.SkipWithError("sweep point did not complete");
        benchmark::DoNotOptimize(ticks.data());
    }
    state.SetItemsProcessed(state.iterations() * points);
    state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** Deterministic logit-scale inputs for the nonlinear benches. The
 *  tile is re-seeded from the source every iteration (memcpy, dwarfed
 *  by the operator) — repeated in-place application would drive values
 *  into denormal territory and measure microcode assists, not the
 *  kernel. */
std::vector<float>
nonlinearInput(std::size_t n)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = float(i % 37) * 0.25f - 4.0f;
    return v;
}

/** Row-wise softmax through the runtime-selected best kernel table
 *  (what MemC dispatches to in production). One item == one element;
 *  rows are 64 wide tiles of Arg(0) columns, the datapath's
 *  attention-score shapes. */
void
BM_NonlinearSoftmax(benchmark::State &state)
{
    const auto &table = bestTable();
    const std::uint32_t rows = 64;
    const auto cols = static_cast<std::uint32_t>(state.range(0));
    const auto src = nonlinearInput(std::size_t(rows) * cols);
    auto tile = src;
    for (auto _ : state) {
        std::copy(src.begin(), src.end(), tile.begin());
        table.softmax_rows(tile.data(), rows, cols);
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * cols);
    state.SetLabel(table.name);
}
BENCHMARK(BM_NonlinearSoftmax)->Arg(64)->Arg(512);

/** Same shape through the exact scalar softmax (libm exp) — the A/B
 *  for the vectorized layer's headline win. */
void
BM_NonlinearSoftmaxExact(benchmark::State &state)
{
    const std::uint32_t rows = 64;
    const auto cols = static_cast<std::uint32_t>(state.range(0));
    const auto src = nonlinearInput(std::size_t(rows) * cols);
    auto tile = src;
    for (auto _ : state) {
        std::copy(src.begin(), src.end(), tile.begin());
        rsn::fu::softmaxRows(tile.data(), rows, cols);
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * cols);
    state.SetLabel("scalar");
}
BENCHMARK(BM_NonlinearSoftmaxExact)->Arg(512);

/** Element-wise GELU through the best table (tanh formula, polynomial
 *  exp). */
void
BM_NonlinearGelu(benchmark::State &state)
{
    const auto &table = bestTable();
    const auto src = nonlinearInput(state.range(0));
    auto tile = src;
    for (auto _ : state) {
        std::copy(src.begin(), src.end(), tile.begin());
        table.gelu_inplace(tile.data(), tile.size());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetLabel(table.name);
}
BENCHMARK(BM_NonlinearGelu)->Arg(32768);

/** Exact scalar GELU (libm erf) on the same shape. */
void
BM_NonlinearGeluExact(benchmark::State &state)
{
    const auto src = nonlinearInput(state.range(0));
    auto tile = src;
    for (auto _ : state) {
        std::copy(src.begin(), src.end(), tile.begin());
        rsn::fu::geluInplace(tile.data(), tile.size());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetLabel("scalar");
}
BENCHMARK(BM_NonlinearGeluExact)->Arg(32768);

/** HostMemory block moves, dense (pitch == cols: one block memcpy) vs
 *  strided (per-row memcpy) — the DDR/LPDDR load/store fast path. One
 *  item == one element moved (read + write counted once each). */
void
BM_HostMemBlockRoundTrip(benchmark::State &state)
{
    const std::uint32_t rows = 64, cols = 128;
    const bool strided = state.range(0) != 0;
    const std::uint64_t pitch = strided ? cols + 64 : cols;
    rsn::mem::HostMemory host(true);
    const rsn::Addr base = host.alloc(std::uint64_t(rows) * pitch, "b");
    std::vector<float> tile(std::size_t(rows) * cols, 1.5f);
    for (auto _ : state) {
        host.writeBlock(base, pitch, rows, cols, tile.data(),
                        tile.size());
        host.readBlockInto(base, pitch, rows, cols, tile.data());
        benchmark::DoNotOptimize(tile.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 *
                            std::uint64_t(rows) * cols);
    state.SetLabel(strided ? "strided" : "dense");
}
BENCHMARK(BM_HostMemBlockRoundTrip)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
