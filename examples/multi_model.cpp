/**
 * @file
 * One datapath, four applications: BERT, ViT, NCF and MLP on the same
 * simulated RSN-XNN configuration — "all experiments use the same
 * bitstream, varying the instructions passed to the datapath" (Sec. 5).
 * Also demonstrates sweeping the schedule options per model.
 *
 * Build & run:  ./build/examples/multi_model
 */

#include <cstdio>
#include <vector>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"

int
main()
{
    using namespace rsn;

    struct Entry {
        const char *name;
        lib::Model model;
    };
    std::vector<Entry> models;
    models.push_back({"BERT-Large encoder (B=6, S=512)",
                      lib::bertLargeEncoder(6, 512, true, 1)});
    models.push_back({"ViT encoder x2 (B=6)", lib::vitEncoder(6, true,
                                                              2)});
    models.push_back({"NCF tower (B=6)", lib::ncf(6)});
    models.push_back({"MLP stack (B=6)", lib::mlp(6)});

    std::printf("%-34s %10s %10s %12s %10s\n", "model", "latency ms",
                "TFLOPS", "instr bytes", "packets");
    for (auto &e : models) {
        for (auto opts : {lib::ScheduleOptions::noOptimize(),
                          lib::ScheduleOptions::optimized()}) {
            core::RsnMachine machine(core::MachineConfig::vck190());
            auto compiled = lib::compileModel(machine, e.model, opts);
            auto r = machine.run(compiled.program);
            if (!r.completed) {
                std::printf("%s failed:\n%s\n", e.name,
                            r.diagnosis.c_str());
                return 1;
            }
            std::printf("%-34s %10.2f %10.2f %12llu %10zu  (%s)\n",
                        e.name, r.ms, machine.achievedTflops(r),
                        (unsigned long long)compiled.program.totalBytes(),
                        compiled.program.size(),
                        opts.pipeline_attention ? "optimized"
                                                : "no-opt");
        }
    }
    std::printf("\nEvery run above used the identical simulated "
                "datapath; only the RSN instruction stream changed.\n");
    return 0;
}
