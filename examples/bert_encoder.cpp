/**
 * @file
 * BERT-Large first-encoder inference on the simulated RSN-XNN — the
 * paper's headline workload (Table 9 / artifact appendix).
 *
 * Runs the full-size encoder (S=512, B=6) in timing mode for latency,
 * then a reduced encoder functionally and validates every intermediate
 * tensor against the FP32 reference, mirroring the artifact's
 * "verify segment by segment against python_gold" flow.
 *
 * Build & run:  ./build/examples/bert_encoder
 */

#include <cstdio>

#include "core/machine.hh"
#include "core/power.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

int
main()
{
    using namespace rsn;

    // --- Timing: the paper's configuration. ---
    {
        core::RsnMachine machine(core::MachineConfig::vck190());
        auto model = lib::bertLargeEncoder(/*batch=*/6, /*seq=*/512,
                                           /*fuse_qkv=*/true);
        auto compiled = lib::compileModel(
            machine, model, lib::ScheduleOptions::optimized());
        auto r = machine.run(compiled.program);
        if (!r.completed) {
            std::printf("timing run failed:\n%s\n", r.diagnosis.c_str());
            return 1;
        }
        core::PowerModel power;
        std::printf("BERT-Large 1st encoder (S=512, B=6, FP32)\n");
        std::printf("  latency        : %.2f ms (paper: 17.98 ms)\n",
                    r.ms);
        std::printf("  achieved       : %.2f TFLOPS (paper: 4.7, 59%% "
                    "util)\n",
                    machine.achievedTflops(r));
        std::printf("  instructions   : %zu packets, %llu bytes\n",
                    compiled.program.size(),
                    (unsigned long long)compiled.program.totalBytes());
        std::printf("  operating power: %.1f W (paper: 45.5 W)\n",
                    power.operatingWatts(machine, r));
    }

    // --- Functional: reduced encoder, checked tensor by tensor. ---
    {
        core::RsnMachine machine(
            core::MachineConfig::vck190(/*functional=*/true));
        auto model = lib::tinyEncoder(/*batch=*/2, /*seq=*/32,
                                      /*hidden=*/64, /*heads=*/4,
                                      /*ff=*/128, /*fuse_qkv=*/true);
        auto compiled = lib::compileModel(
            machine, model, lib::ScheduleOptions::optimized());
        lib::initTensors(machine, compiled, 123);
        auto expected = lib::referenceForward(machine, model, compiled);
        auto r = machine.run(compiled.program);
        if (!r.completed) {
            std::printf("functional run failed:\n%s\n",
                        r.diagnosis.c_str());
            return 1;
        }
        std::printf("\nFunctional validation (batch 2, seq 32, hidden "
                    "64):\n");
        bool all_ok = true;
        for (const auto &[name, expect] : expected) {
            if (name == "input" || !compiled.hasTensor(name))
                continue;
            auto got = lib::readTensor(machine, compiled, name);
            std::string why;
            bool ok = ref::allclose(got, expect, 2e-3f, 2e-3f, &why);
            all_ok &= ok;
            std::printf("  %-18s %s%s%s\n", name.c_str(),
                        ok ? "ok" : "MISMATCH ", ok ? "" : "(",
                        ok ? "" : (why + ")").c_str());
        }
        if (!all_ok)
            return 1;
        std::printf("all intermediate tensors match the FP32 "
                    "reference.\n");
    }
    return 0;
}
