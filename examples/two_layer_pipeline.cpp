/**
 * @file
 * Fig. 7 demonstration: a flexible datapath that either executes one
 * GEMM at a time on all compute resources, or dynamically pipelines two
 * dependent GEMMs with the intermediate staying on chip — the same
 * machine, different instruction streams.
 *
 * Here the two dependent layers are an attention head's MM1 -> softmax
 * -> MM2 chain (the paper's production use of Fig. 7's pattern), run
 * both sequentially (scores spilled off-chip) and pipelined.
 *
 * Build & run:  ./build/examples/two_layer_pipeline
 */

#include <cstdio>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

namespace {

rsn::lib::Model
headModel(std::uint32_t seq, std::uint32_t dhead, std::uint32_t heads)
{
    rsn::lib::Model m;
    m.name = "two-layer";
    m.input_rows = seq;
    m.input_cols = 3 * heads * dhead;
    rsn::lib::AttentionBlock a;
    a.name = "attn";
    a.heads = heads;
    a.heads_per_batch = heads;
    a.seq = seq;
    a.dhead = dhead;
    a.q_src = a.k_src = a.v_src = "input";
    a.q_col_off = 0;
    a.k_col_off = heads * dhead;
    a.v_col_off = 2 * heads * dhead;
    a.out_name = "out";
    m.segments.emplace_back(a);
    return m;
}

} // namespace

int
main()
{
    using namespace rsn;

    const std::uint32_t seq = 64, dhead = 16, heads = 6;

    double ms_seq = 0, ms_pipe = 0;
    for (bool pipeline : {false, true}) {
        core::RsnMachine machine(
            core::MachineConfig::vck190(/*functional=*/true));
        auto opts = pipeline ? lib::ScheduleOptions::optimized()
                             : lib::ScheduleOptions::bwOptimized();
        auto model = headModel(seq, dhead, heads);
        auto compiled = lib::compileModel(machine, model, opts);
        lib::initTensors(machine, compiled, 7);
        auto expected = lib::referenceForward(machine, model, compiled);
        auto r = machine.run(compiled.program);
        if (!r.completed) {
            std::printf("%s run failed:\n%s\n",
                        pipeline ? "pipelined" : "sequential",
                        r.diagnosis.c_str());
            return 1;
        }
        auto got = lib::readTensor(machine, compiled, "out");
        bool ok = ref::allclose(got, expected.at("out"), 2e-3f, 2e-3f);

        std::printf("%-11s: %7.3f ms, DDR wrote %6.2f MB, results %s\n",
                    pipeline ? "pipelined" : "sequential", r.ms,
                    machine.ddrChannel().bytesWritten() / 1e6,
                    ok ? "correct" : "WRONG");
        (pipeline ? ms_pipe : ms_seq) = r.ms;
        if (!ok)
            return 1;
    }

    std::printf("\nDynamic layer pipelining kept the score matrices on "
                "chip: %.2fx faster, and the same bitstream-equivalent "
                "datapath served both mappings (paper Sec. 4.3).\n",
                ms_seq / ms_pipe);
    return 0;
}
