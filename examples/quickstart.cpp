/**
 * @file
 * Quickstart: compile and run one GEMM layer on the RSN-XNN machine.
 *
 * Demonstrates the whole public API surface in ~60 lines:
 *   1. construct a VCK190-configured machine (functional mode),
 *   2. describe a model in the RSNlib IR,
 *   3. compile it into an RSN instruction stream,
 *   4. initialize tensors, run, and validate against the reference.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

int
main()
{
    using namespace rsn;

    // 1. The machine: 6 MMEs, 3 MemA, 3 MemB, 6 MemC, meshes, DDR/LPDDR
    //    movers, wired per the paper's Fig. 10. Functional mode carries
    //    real FP32 data through the stream network.
    core::RsnMachine machine(core::MachineConfig::vck190(
        /*functional=*/true));

    // 2. The model: out = gelu(input x W + b), a 96x64x80 layer.
    lib::Model model;
    model.name = "quickstart";
    model.input_rows = 96;
    model.input_cols = 64;
    lib::LinearLayer layer;
    layer.name = "fc";
    layer.m = 96;
    layer.k = 64;
    layer.n = 80;
    layer.bias = true;
    layer.gelu = true;
    layer.in_src = "input";
    layer.out_name = "out";
    model.segments.emplace_back(layer);

    // 3. Compile: tiling, uOP emission, packet packing.
    auto compiled = lib::compileModel(machine, model,
                                      lib::ScheduleOptions::optimized());
    std::printf("compiled %zu RSN packets (%llu bytes) for %.3f MFLOP\n",
                compiled.program.size(),
                (unsigned long long)compiled.program.totalBytes(),
                compiled.mm_flops / 1e6);

    // 4. Run and validate.
    lib::initTensors(machine, compiled, /*seed=*/2024);
    auto expected = lib::referenceForward(machine, model, compiled);
    auto result = machine.run(compiled.program);
    if (!result.completed) {
        std::printf("run failed:\n%s\n", result.diagnosis.c_str());
        return 1;
    }

    auto got = lib::readTensor(machine, compiled, "out");
    std::string why;
    bool ok = ref::allclose(got, expected.at("out"), 1e-3f, 1e-3f, &why);
    std::printf("simulated %.3f ms on the modeled VCK190; output %s\n",
                result.ms, ok ? "matches the FP32 reference" : "WRONG");
    if (!ok)
        std::printf("  mismatch: %s\n", why.c_str());
    std::printf("achieved %.2f TFLOPS, DDR read %.2f MB, wrote %.2f MB\n",
                machine.achievedTflops(result),
                machine.ddrChannel().bytesRead() / 1e6,
                machine.ddrChannel().bytesWritten() / 1e6);
    return ok ? 0 : 1;
}
