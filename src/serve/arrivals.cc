#include "serve/arrivals.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace rsn::serve {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

lib::Model
RequestClass::build(std::uint32_t batch) const
{
    return lib::tinyEncoder(batch, seq, hidden, heads, ff, fuse_qkv);
}

std::vector<RequestClass>
defaultClasses()
{
    // Keep the seq=32 class's shape equal to the golden tiny-encoder
    // config (tests/lib/test_golden_e2e.cc): a faults-off batch of two
    // such requests must still cost exactly the pinned 11084 ticks.
    return {
        {"tiny-s32", 32, 64, 4, 128, true, 3},
        {"tiny-s64", 64, 64, 4, 128, true, 1},
    };
}

std::vector<Arrival>
poissonArrivals(std::uint64_t seed, Tick mean_gap, std::size_t count,
                const std::vector<RequestClass> &classes)
{
    rsn_assert(!classes.empty(), "arrival stream needs >= 1 class");
    if (mean_gap < 1)
        mean_gap = 1;
    std::uint64_t total_weight = 0;
    for (const RequestClass &c : classes)
        total_weight += c.weight ? c.weight : 1;

    std::vector<Arrival> out;
    out.reserve(count);
    Tick now = 0;
    for (std::size_t i = 0; i < count; ++i) {
        // Exponential gap via inverse transform; the +1 on the mantissa
        // keeps u in (0, 1] so log(u) is finite. Gaps round up to >= 1
        // tick so two draws never merge into one instant.
        const std::uint64_t bits = mix64(seed ^ (2 * i));
        const double u = double((bits >> 11) + 1) * 0x1.0p-53;
        const double gap = -std::log(u) * double(mean_gap);
        now += gap < 1 ? Tick(1) : Tick(gap);

        std::uint64_t r = mix64(seed ^ (2 * i + 1)) % total_weight;
        std::uint32_t cls = 0;
        for (std::size_t c = 0; c < classes.size(); ++c) {
            const std::uint64_t w =
                classes[c].weight ? classes[c].weight : 1;
            if (r < w) {
                cls = static_cast<std::uint32_t>(c);
                break;
            }
            r -= w;
        }
        out.push_back({now, cls});
    }
    return out;
}

std::vector<Arrival>
parseTrace(const std::string &text, std::size_t num_classes,
           Status *status)
{
    *status = Status::success();
    std::vector<Arrival> out;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    Tick prev = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        unsigned long long tick = 0;
        unsigned long cls = 0;
        if (!(fields >> tick)) {
            if (fields.eof())
                continue;  // blank / comment-only line
            *status = Status::error(StatusCode::InvalidConfig,
                "trace line " + std::to_string(lineno) + ": bad tick");
            return {};
        }
        if (!(fields >> cls) || cls >= num_classes) {
            *status = Status::error(StatusCode::InvalidConfig,
                "trace line " + std::to_string(lineno) +
                ": class index must be in [0, " +
                std::to_string(num_classes) + ")");
            return {};
        }
        if (tick < prev) {
            *status = Status::error(StatusCode::InvalidConfig,
                "trace line " + std::to_string(lineno) +
                ": ticks must be non-decreasing");
            return {};
        }
        prev = tick;
        out.push_back({Tick(tick), static_cast<std::uint32_t>(cls)});
    }
    return out;
}

} // namespace rsn::serve
