#include "serve/scheduler.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <queue>

#include "common/log.hh"
#include "lib/codegen.hh"
#include "lib/runner.hh"
#include "lib/schedule.hh"

namespace rsn::serve {

Status
ServePolicy::validate() const
{
    auto invalid = [](std::string msg) {
        return Status::error(StatusCode::InvalidConfig, std::move(msg));
    };
    if (fleet < 1)
        return invalid("serve fleet must be >= 1 machine");
    if (max_batch < 1)
        return invalid("serve max_batch must be >= 1");
    if (queue_capacity < 1)
        return invalid("serve queue_capacity must be >= 1");
    if (breaker_threshold < 1)
        return invalid("serve breaker_threshold must be >= 1");
    if (breaker_cooldown < 1)
        return invalid("serve breaker_cooldown must be >= 1 tick");
    if (backoff_base < 1)
        return invalid("serve backoff_base must be >= 1 tick");
    if (run_tick_budget < 1)
        return invalid("serve run_tick_budget must be >= 1 tick");
    return Status::success();
}

Tick
ServeSpec::meanGapTicks() const
{
    rsn_assert(offered_load > 0, "offered load must be positive");
    const double gap = cfg.clocks.plHz / offered_load;
    return gap < 1 ? Tick(1) : Tick(gap);
}

std::string
ServingReport::toString() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "serving load=%.6g req/s offered=%llu\n"
        "  outcomes: ok=%llu retried=%llu shed=%llu timeout=%llu "
        "faulted=%llu (resolved=%llu)\n"
        "  latency ticks: p50=%llu p95=%llu p99=%llu max=%llu\n"
        "  queue: max_depth=%llu horizon=%llu goodput=%.6g req/s\n"
        "  fleet: runs=%llu built=%llu reused=%llu retries=%llu "
        "faults_injected=%llu\n"
        "  breaker: opened=%llu half_opened=%llu closed=%llu "
        "pool_trimmed=%llu\n",
        offered_load, (unsigned long long)offered,
        (unsigned long long)ok, (unsigned long long)retried,
        (unsigned long long)shed, (unsigned long long)timeout,
        (unsigned long long)faulted, (unsigned long long)resolved(),
        (unsigned long long)p50, (unsigned long long)p95,
        (unsigned long long)p99, (unsigned long long)max_latency,
        (unsigned long long)max_queue_depth, (unsigned long long)horizon,
        goodput, (unsigned long long)runs,
        (unsigned long long)machines_built,
        (unsigned long long)machines_reused,
        (unsigned long long)retry_dispatches,
        (unsigned long long)faults_injected,
        (unsigned long long)breaker_opened,
        (unsigned long long)breaker_half_opened,
        (unsigned long long)breaker_closed,
        (unsigned long long)pool_trimmed);
    return buf;
}

namespace {

/**
 * The whole simulation state for one runServing call. Single-threaded
 * by construction: the fleet's SweepLanes (and so their machines and
 * this thread's TilePool) live and die on the calling thread, which is
 * what lets runServingSweep hand one simulation per executor lane.
 */
class ServingSim
{
  public:
    explicit ServingSim(const ServeSpec &spec) : spec_(spec)
    {
        const Status pv = spec_.policy.validate();
        rsn_assert(pv.ok(), "invalid serve policy: %s",
                   pv.toString().c_str());
        rsn_assert(!spec_.classes.empty(),
                   "serving needs >= 1 request class");
        for (std::size_t i = 0; i < spec_.policy.fleet; ++i)
            slots_.emplace_back(i);
        queues_.resize(spec_.classes.size());
        linger_pending_.assign(spec_.classes.size(), kTickMax);
    }

    ServingReport run();

  private:
    enum class EvKind : std::uint8_t {
        Arrival,     ///< a = request id.
        Expiry,      ///< a = request id (deadline).
        Linger,      ///< a = class index (batch head aged out).
        Retry,       ///< a = request id (backoff elapsed).
        Completion,  ///< a = flight index.
        HalfOpen,    ///< a = slot index (breaker cooldown elapsed).
    };

    struct Event {
        Tick tick = 0;
        std::uint64_t seq = 0;  ///< Push order: total, stable tie-break.
        EvKind kind = EvKind::Arrival;
        std::uint64_t a = 0;
    };
    struct EventAfter {
        bool
        operator()(const Event &x, const Event &y) const
        {
            return x.tick != y.tick ? x.tick > y.tick : x.seq > y.seq;
        }
    };

    struct Request {
        std::uint32_t cls = 0;
        Tick arrival = 0;
        std::uint32_t attempts = 0;  ///< Dispatches so far.
        bool ever_retried = false;
        enum class St : std::uint8_t {
            Pending,   ///< Not yet arrived.
            Queued,    ///< In its class queue.
            Waiting,   ///< Backing off before a retry.
            InFlight,  ///< In a dispatched batch.
            Resolved,
        } st = St::Pending;
    };

    struct Slot {
        explicit Slot(std::size_t i) : lane(i) {}
        lib::SweepLane lane;
        enum class St : std::uint8_t {
            Idle,
            Busy,
            Open,      ///< Breaker open: quarantined, machine discarded.
            HalfOpen,  ///< Cooldown over: next dispatch is a probe.
        } st = St::Idle;
        std::uint32_t consec_hard = 0;  ///< Consecutive hard-fault runs.
    };

    /** One dispatched batch awaiting its completion event. */
    struct Flight {
        std::uint32_t slot = 0;
        std::vector<std::uint64_t> reqs;
        bool ok = false;
        bool hard = false;  ///< FaultDiagnosed (or detected corruption).
        bool probe = false;
        Tick ticks = 1;
    };

    enum class Outcome : std::uint8_t { Ok, Shed, Timeout, Faulted };

    void
    push(Tick tick, EvKind kind, std::uint64_t a)
    {
        events_.push({tick, event_seq_++, kind, a});
    }

    void
    resolve(std::uint64_t rid, Outcome o, Tick now)
    {
        Request &r = reqs_[rid];
        rsn_assert(r.st != Request::St::Resolved,
                   "request resolved twice");
        r.st = Request::St::Resolved;
        ++resolved_;
        if (now > rep_.horizon)
            rep_.horizon = now;
        switch (o) {
          case Outcome::Ok:
            ++(r.ever_retried ? rep_.retried : rep_.ok);
            hist_.record(now - r.arrival);
            break;
          case Outcome::Shed: ++rep_.shed; break;
          case Outcome::Timeout: ++rep_.timeout; break;
          case Outcome::Faulted: ++rep_.faulted; break;
        }
    }

    void
    enqueue(std::uint64_t rid, Tick now)
    {
        Request &r = reqs_[rid];
        r.st = Request::St::Queued;
        queues_[r.cls].push_back(rid);
        ++queued_total_;
        if (queued_total_ > rep_.max_queue_depth)
            rep_.max_queue_depth = queued_total_;
        tryDispatch(now);
    }

    /** Admission control: full queue or projected wait over watermark. */
    bool
    shouldShed() const
    {
        const ServePolicy &p = spec_.policy;
        if (queued_total_ >= p.queue_capacity)
            return true;
        if (p.shed_wait_watermark == 0 || est_service_ == 0)
            return false;
        std::uint64_t active = 0;
        for (const Slot &s : slots_)
            if (s.st != Slot::St::Open)
                ++active;
        if (active == 0)
            active = 1;
        const std::uint64_t batches =
            queued_total_ / p.max_batch + 1;
        return est_service_ * batches / active > p.shed_wait_watermark;
    }

    void onArrival(std::uint64_t rid, Tick now);
    void onExpiry(std::uint64_t rid, Tick now);
    void onCompletion(std::uint64_t fid, Tick now);
    void onHalfOpen(std::uint64_t slot, Tick now);
    void tryDispatch(Tick now);
    void dispatch(Tick now, std::size_t slot, std::uint32_t cls,
                  std::uint32_t cap);
    void openBreaker(std::size_t slot, Tick now);

    const ServeSpec &spec_;
    ServingReport rep_;
    LatencyHistogram hist_;
    std::vector<Request> reqs_;
    std::deque<Slot> slots_;  ///< deque: SweepLane is immovable.
    std::vector<std::deque<std::uint64_t>> queues_;
    std::vector<Tick> linger_pending_;  ///< Earliest pending, per class.
    std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
    std::vector<Flight> flights_;
    std::uint64_t event_seq_ = 0;
    std::uint64_t dispatch_seq_ = 0;
    std::uint64_t queued_total_ = 0;
    std::uint64_t resolved_ = 0;
    Tick est_service_ = 0;  ///< Integer EWMA of observed run ticks.
};

void
ServingSim::onArrival(std::uint64_t rid, Tick now)
{
    if (shouldShed()) {
        resolve(rid, Outcome::Shed, now);
        return;
    }
    if (spec_.policy.deadline)
        push(now + spec_.policy.deadline, EvKind::Expiry, rid);
    enqueue(rid, now);
}

void
ServingSim::onExpiry(std::uint64_t rid, Tick now)
{
    Request &r = reqs_[rid];
    if (r.st != Request::St::Queued)
        return;  // In flight (judged at completion) or already resolved.
    auto &q = queues_[r.cls];
    q.erase(std::find(q.begin(), q.end(), rid));
    --queued_total_;
    resolve(rid, Outcome::Timeout, now);
}

void
ServingSim::openBreaker(std::size_t slot, Tick now)
{
    Slot &s = slots_[slot];
    ++rep_.breaker_opened;
    rep_.pool_trimmed += s.lane.discard();
    s.st = Slot::St::Open;
    s.consec_hard = 0;
    push(now + spec_.policy.breaker_cooldown, EvKind::HalfOpen, slot);
}

void
ServingSim::onHalfOpen(std::uint64_t slot, Tick now)
{
    Slot &s = slots_[slot];
    rsn_assert(s.st == Slot::St::Open, "half-open of a non-open slot");
    s.st = Slot::St::HalfOpen;
    ++rep_.breaker_half_opened;
    tryDispatch(now);
}

void
ServingSim::onCompletion(std::uint64_t fid, Tick now)
{
    const Flight &f = flights_[fid];
    Slot &s = slots_[f.slot];
    const ServePolicy &p = spec_.policy;
    est_service_ =
        est_service_ ? (est_service_ * 7 + f.ticks) / 8 : f.ticks;

    if (f.ok) {
        for (std::uint64_t rid : f.reqs) {
            const Request &r = reqs_[rid];
            if (p.deadline && now > r.arrival + p.deadline)
                resolve(rid, Outcome::Timeout, now);
            else
                resolve(rid, Outcome::Ok, now);
        }
        s.consec_hard = 0;
        if (f.probe)
            ++rep_.breaker_closed;
        s.st = Slot::St::Idle;
        tryDispatch(now);
        return;
    }

    // Failed run: bounded retry with exponential backoff + seeded
    // jitter per request; the machine is left non-resettable, so the
    // slot's next dispatch rebuilds it (or the breaker discards it).
    for (std::uint64_t rid : f.reqs) {
        Request &r = reqs_[rid];
        if (r.attempts > p.max_retries) {
            resolve(rid, Outcome::Faulted, now);
            continue;
        }
        const std::uint32_t k = r.attempts - 1;
        const Tick backoff = p.backoff_base << (k < 20 ? k : 20);
        const Tick jitter =
            p.retry_jitter
                ? mix64(spec_.seed ^ 0x5245545259ull ^
                        (rid << 20) ^ r.attempts) % p.retry_jitter
                : 0;
        const Tick at = now + backoff + jitter;
        if (p.deadline && at > r.arrival + p.deadline) {
            resolve(rid, Outcome::Timeout, now);
            continue;
        }
        r.st = Request::St::Waiting;
        r.ever_retried = true;
        ++rep_.retry_dispatches;
        push(at, EvKind::Retry, rid);
    }

    if (f.hard)
        ++s.consec_hard;
    if (f.probe || s.consec_hard >= p.breaker_threshold) {
        // A failed probe reopens immediately; a closed slot opens once
        // the consecutive hard-fault threshold trips.
        openBreaker(f.slot, now);
    } else {
        s.st = Slot::St::Idle;
    }
    tryDispatch(now);
}

void
ServingSim::tryDispatch(Tick now)
{
    const ServePolicy &p = spec_.policy;
    for (std::size_t si = 0; si < slots_.size(); ++si) {
        if (queued_total_ == 0)
            return;
        Slot &s = slots_[si];
        const bool probe = s.st == Slot::St::HalfOpen;
        if (s.st != Slot::St::Idle && !probe)
            continue;
        const std::uint32_t cap = probe ? 1 : p.max_batch;

        // Oldest-head class wins; readiness (a full batch, an aged
        // head, or a probe) beats age so a ready class is never held
        // behind a lingering one.
        std::size_t best = queues_.size();
        Tick best_arr = kTickMax;
        bool best_ready = false;
        for (std::size_t c = 0; c < queues_.size(); ++c) {
            if (queues_[c].empty())
                continue;
            const Tick head = reqs_[queues_[c].front()].arrival;
            const bool ready = probe || queues_[c].size() >= cap ||
                               now >= head + p.batch_linger;
            if (best == queues_.size() || (ready && !best_ready) ||
                (ready == best_ready && head < best_arr)) {
                best = c;
                best_arr = head;
                best_ready = ready;
            }
        }
        if (best == queues_.size())
            return;  // Nothing queued (can't happen: queued_total_ > 0).
        if (!best_ready) {
            // Give the head a chance to collect batchmates: wake when
            // its linger expires (deduped per class).
            const Tick at = best_arr + p.batch_linger;
            if (linger_pending_[best] > at) {
                linger_pending_[best] = at;
                push(at, EvKind::Linger, best);
            }
            continue;  // A later half-open slot may still probe.
        }
        dispatch(now, si, static_cast<std::uint32_t>(best), cap);
    }
}

void
ServingSim::dispatch(Tick now, std::size_t slot, std::uint32_t cls,
                     std::uint32_t cap)
{
    Slot &s = slots_[slot];
    auto &q = queues_[cls];
    const std::uint32_t n =
        static_cast<std::uint32_t>(std::min<std::size_t>(cap, q.size()));
    Flight f;
    f.slot = static_cast<std::uint32_t>(slot);
    f.probe = s.st == Slot::St::HalfOpen;
    f.reqs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t rid = q.front();
        q.pop_front();
        --queued_total_;
        reqs_[rid].st = Request::St::InFlight;
        ++reqs_[rid].attempts;
        f.reqs.push_back(rid);
    }
    s.st = Slot::St::Busy;

    // Per-dispatch fault-seed salting: one chaos seed drives the whole
    // fleet, each batch replaying its own schedule. The lane absorbs
    // the new seed on its reset() path (no rebuild).
    core::MachineConfig cfg = spec_.cfg;
    if (cfg.fault.enabled())
        cfg.fault.seed =
            mix64(spec_.cfg.fault.seed ^ (dispatch_seq_ + 1));
    ++dispatch_seq_;

    core::RsnMachine &mach = s.lane.machine(cfg);
    const lib::Model model = spec_.classes[cls].build(n);
    const lib::CompiledModel compiled =
        lib::compileModel(mach, model, lib::ScheduleOptions::optimized());
    const lib::CheckedRun cr =
        lib::runModelChecked(mach, model, compiled, 2025, 2e-3f, 2e-3f,
                             spec_.policy.run_tick_budget);
    ++rep_.runs;
    rep_.faults_injected += cr.report.faults_injected;
    f.ok = cr.ok();
    f.hard = cr.report.status.code == StatusCode::FaultDiagnosed ||
             (cr.report.ok() && !cr.outputs_ok);
    f.ticks = cr.report.result.ticks ? cr.report.result.ticks : 1;
    flights_.push_back(std::move(f));
    push(now + flights_.back().ticks, EvKind::Completion,
         flights_.size() - 1);
}

ServingReport
ServingSim::run()
{
    const std::vector<Arrival> arrivals =
        spec_.trace.empty()
            ? poissonArrivals(spec_.seed, spec_.meanGapTicks(),
                              spec_.num_requests, spec_.classes)
            : spec_.trace;
    rep_.offered_load = spec_.offered_load;
    rep_.offered = arrivals.size();

    reqs_.resize(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        reqs_[i].cls = arrivals[i].cls;
        reqs_[i].arrival = arrivals[i].tick;
        push(arrivals[i].tick, EvKind::Arrival, i);
    }

    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        switch (ev.kind) {
          case EvKind::Arrival: onArrival(ev.a, ev.tick); break;
          case EvKind::Expiry: onExpiry(ev.a, ev.tick); break;
          case EvKind::Linger:
            linger_pending_[ev.a] = kTickMax;
            tryDispatch(ev.tick);
            break;
          case EvKind::Retry: enqueue(ev.a, ev.tick); break;
          case EvKind::Completion: onCompletion(ev.a, ev.tick); break;
          case EvKind::HalfOpen: onHalfOpen(ev.a, ev.tick); break;
        }
    }

    // The no-hang invariant: the event loop drained, so every admitted
    // request must have resolved to exactly one outcome.
    rsn_assert(resolved_ == rep_.offered,
               "%llu of %llu requests left unresolved",
               (unsigned long long)(rep_.offered - resolved_),
               (unsigned long long)rep_.offered);
    rsn_assert(queued_total_ == 0, "queued requests after drain");

    rep_.p50 = hist_.p50();
    rep_.p95 = hist_.p95();
    rep_.p99 = hist_.p99();
    rep_.max_latency = hist_.max();
    for (const Slot &s : slots_) {
        rep_.machines_built += s.lane.machinesBuilt();
        rep_.machines_reused += s.lane.machinesReused();
    }
    if (rep_.horizon > 0)
        rep_.goodput = double(rep_.served()) * spec_.cfg.clocks.plHz /
                       double(rep_.horizon);
    return rep_;
}

} // namespace

ServingReport
runServing(const ServeSpec &spec)
{
    return ServingSim(spec).run();
}

std::vector<ServingReport>
runServingSweep(const lib::SweepExecutor &ex,
                const std::vector<ServeSpec> &specs)
{
    return ex.map<ServingReport>(
        specs.size(), [&](lib::SweepLane &, std::size_t i) {
            // The executor lane's machine cache is deliberately unused:
            // a serving simulation owns its whole fleet (and so this
            // worker thread's TilePool) for its duration, which is what
            // makes the report independent of the jobs value.
            return runServing(specs[i]);
        });
}

} // namespace rsn::serve
