/**
 * @file
 * Request classes and seeded arrival streams for the serving tier.
 *
 * The serving harness is *open-loop*: arrivals are generated up front
 * from a seed (Poisson) or a trace, independent of how the fleet keeps
 * up — so offered load is an input, not a feedback loop, and a serving
 * curve is a pure function of (seed, config, policy). A request class
 * names a model shape (the tiny-encoder family with a per-class
 * sequence length); arrivals draw a class from the mix weights, and the
 * scheduler batches same-class requests into one model run whose batch
 * dimension is the number of requests in the batch.
 *
 * All randomness is the SplitMix64 finalizer over (seed, index) — the
 * same mixer the fault injector uses — so a stream is bit-identical
 * across platforms and --jobs values.
 */

#ifndef RSN_SERVE_ARRIVALS_HH
#define RSN_SERVE_ARRIVALS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "lib/model.hh"

namespace rsn::serve {

/** SplitMix64 finalizer: the serving tier's one source of randomness
 *  (arrival gaps, class draws, retry jitter, per-request fault-seed
 *  salting). Pure, stateless, seedable. */
std::uint64_t mix64(std::uint64_t x);

/**
 * One request shape in the serving mix: a tiny-encoder configuration
 * whose batch dimension the scheduler fills with co-batched requests.
 * Classes differ in sequence length (and optionally width), modeling a
 * mixed-sequence-length production mix on one fleet.
 */
struct RequestClass {
    std::string name;
    std::uint32_t seq = 32;
    std::uint32_t hidden = 64;
    std::uint32_t heads = 4;
    std::uint32_t ff = 128;
    bool fuse_qkv = true;
    /** Relative arrival weight in the Poisson mix (>= 1). */
    std::uint32_t weight = 1;

    /** The model for a batch of @p batch co-scheduled requests. */
    lib::Model build(std::uint32_t batch) const;

    bool operator==(const RequestClass &) const = default;
};

/** One request arrival: when, and which class. */
struct Arrival {
    Tick tick = 0;
    std::uint32_t cls = 0;

    bool operator==(const Arrival &) const = default;
};

/**
 * Seeded Poisson arrival stream: @p count arrivals with exponential
 * inter-arrival gaps of mean @p mean_gap ticks (clamped to >= 1), class
 * drawn per-arrival from the @p classes weights. Deterministic for a
 * (seed, mean_gap, classes) triple.
 */
std::vector<Arrival> poissonArrivals(
    std::uint64_t seed, Tick mean_gap, std::size_t count,
    const std::vector<RequestClass> &classes);

/**
 * Parse a replay trace: one arrival per line, "<tick> <class-index>",
 * '#' comments and blank lines ignored. Ticks must be non-decreasing
 * and class indices < @p num_classes; on violation *status holds
 * InvalidConfig and the returned vector is empty.
 */
std::vector<Arrival> parseTrace(const std::string &text,
                                std::size_t num_classes, Status *status);

/** The default serving mix: tiny encoders at sequence lengths 32 and
 *  64 (3:1), the shape family the golden tier pins. */
std::vector<RequestClass> defaultClasses();

} // namespace rsn::serve

#endif // RSN_SERVE_ARRIVALS_HH
