#include "serve/latency.hh"

#include <bit>

#include "common/log.hh"

namespace rsn::serve {

unsigned
LatencyHistogram::bucketFor(Tick v)
{
    if (v < kSub)
        return static_cast<unsigned>(v);
    const unsigned top = std::bit_width(v) - 1;  // >= kSubBits
    const unsigned shift = top - kSubBits;
    return ((top - kSubBits + 1) << kSubBits) +
           static_cast<unsigned>((v >> shift) & (kSub - 1));
}

Tick
LatencyHistogram::bucketLowerBound(unsigned bucket)
{
    if (bucket < kSub)
        return bucket;
    const unsigned group = bucket >> kSubBits;
    const unsigned sub = bucket & (kSub - 1);
    const unsigned top = group + kSubBits - 1;
    return (Tick(1) << top) + (Tick(sub) << (top - kSubBits));
}

void
LatencyHistogram::record(Tick v)
{
    const unsigned b = bucketFor(v);
    rsn_assert(b < kBuckets, "latency bucket out of range");
    ++counts_[b];
    ++count_;
    if (v > max_)
        max_ = v;
    if (v < min_)
        min_ = v;
}

Tick
LatencyHistogram::quantilePermille(unsigned permille) const
{
    if (count_ == 0)
        return 0;
    if (permille < 1)
        permille = 1;
    if (permille > 1000)
        permille = 1000;
    const std::uint64_t rank =
        (count_ * permille + 999) / 1000;  // ceil, >= 1
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cum += counts_[b];
        if (cum >= rank)
            return bucketLowerBound(b);
    }
    return max_;  // unreachable: cum == count_ >= rank at the last bin
}

} // namespace rsn::serve
