/**
 * @file
 * Fault-tolerant serving scheduler over the sweep-executor substrate
 * (ROADMAP item 5: "simulate millions of users").
 *
 * An open-loop serving simulation: seeded Poisson (or trace-replay)
 * arrivals of mixed request classes flow through per-class FIFO queues
 * onto a fixed fleet of SweepLane-cached RsnMachines, entirely on a
 * simulated clock. One simulation is single-threaded and pure — its
 * ServingReport is a function of (spec, seed) only — and `--jobs`
 * parallelism happens *across* load points via runServingSweep, so
 * byte-identical reports at any jobs value are inherited from the sweep
 * executor's determinism contract rather than re-proven.
 *
 * ## Robustness model (docs/robustness.md, "Serving under faults")
 *
 * Every admitted request resolves to exactly one of five outcomes — ok,
 * retried (ok after >= 1 retry), shed, timeout, faulted — never a hang:
 *
 * - **Deadlines** cancel queued work: an expiry event removes a request
 *   still waiting in its class queue; a request whose batch completes
 *   past its deadline counts as timeout even though the run finished.
 * - **Retries**: a batch whose run ends FaultDiagnosed / Deadlock /
 *   Livelock / Timeout re-enqueues its requests after an exponential
 *   backoff (base << attempt) plus seed-derived jitter, up to
 *   max_retries per request; exhaustion resolves the request faulted.
 * - **Load shedding**: arrivals are refused (shed) when total queue
 *   depth reaches queue_capacity, or when the projected wait — an
 *   integer EWMA of observed service ticks times the queued batch
 *   count over the live fleet — crosses shed_wait_watermark.
 * - **Circuit breaker**, per machine slot: breaker_threshold
 *   consecutive hard-fault runs open the breaker — the slot's cached
 *   machine is discarded (SweepLane::discard, which also trims the
 *   lane's TilePool so quarantine cycles cannot leak pool growth) and
 *   the slot sits out breaker_cooldown ticks; it then half-opens and
 *   serves a single-request probe batch. A successful probe closes the
 *   breaker; a failed one reopens it.
 *
 * ## Fault salting
 *
 * One chaos seed (spec.cfg.fault.seed) drives the whole fleet: each
 * dispatch derives its machine's fault seed as
 * mix64(chaos_seed ^ dispatch-index), so different batches see
 * different fault schedules, yet the whole serving run replays exactly
 * from the one seed. Lane machines absorb the per-dispatch seed via
 * reset() + RsnMachine::setFaultSeed — no rebuild, so the machine cache
 * works at full strength under chaos (lib/sweep.hh).
 */

#ifndef RSN_SERVE_SCHEDULER_HH
#define RSN_SERVE_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "lib/sweep.hh"
#include "serve/arrivals.hh"
#include "serve/latency.hh"

namespace rsn::serve {

/** Scheduler knobs: fleet shape, batching, and every robustness lever.
 *  Defaults are a small-but-serving configuration the tests build on. */
struct ServePolicy {
    std::size_t fleet = 2;          ///< Machine slots (one lane each).
    std::uint32_t max_batch = 4;    ///< Requests co-batched per run.
    Tick batch_linger = 4096;       ///< Head-of-line wait for batchmates.
    Tick deadline = 0;              ///< Per-request, from arrival; 0 = off.
    std::size_t queue_capacity = 256;  ///< Total queued before shedding.
    Tick shed_wait_watermark = 0;   ///< Projected-wait shed bound; 0 = off.
    std::uint32_t max_retries = 2;  ///< Re-dispatches per request.
    Tick backoff_base = 1024;       ///< Retry k waits base << k ticks...
    Tick retry_jitter = 512;        ///< ...plus seeded jitter in [0, j).
    std::uint32_t breaker_threshold = 3;  ///< Consecutive hard faults.
    Tick breaker_cooldown = 65536;  ///< Open-state quarantine ticks.
    Tick run_tick_budget = 10'000'000;  ///< Inner-run max_ticks bound.

    Status validate() const;

    bool operator==(const ServePolicy &) const = default;
};

/** One serving simulation: machine + mix + policy + load. */
struct ServeSpec {
    core::MachineConfig cfg;        ///< Fleet config; cfg.fault arms chaos.
    std::vector<RequestClass> classes;  ///< Request mix (>= 1 class).
    ServePolicy policy;
    std::uint64_t seed = 1;         ///< Arrival stream + retry jitter.
    double offered_load = 20000;    ///< Requests per simulated second.
    std::size_t num_requests = 64;  ///< Poisson stream length.
    std::vector<Arrival> trace;     ///< Non-empty: replay instead.

    /** Mean Poisson inter-arrival gap in PL ticks (>= 1). */
    Tick meanGapTicks() const;
};

/**
 * The structured outcome of one serving simulation. Every counter is
 * integer and the quantiles come from the integer histogram, so two
 * runs of the same spec compare byte-identical via toString() — which
 * is exactly what the chaos-serving smoke diffs across --jobs values.
 */
struct ServingReport {
    double offered_load = 0;        ///< Echo of the spec (curve label).
    std::uint64_t offered = 0;      ///< Arrivals presented.

    /** @{ Outcome census; sums to offered (the no-hang invariant). */
    std::uint64_t ok = 0;           ///< Completed, no retries needed.
    std::uint64_t retried = 0;      ///< Completed after >= 1 retry.
    std::uint64_t shed = 0;         ///< Refused at admission.
    std::uint64_t timeout = 0;      ///< Deadline expired (queued or late).
    std::uint64_t faulted = 0;      ///< Retries exhausted.
    /** @} */

    std::uint64_t retry_dispatches = 0;  ///< Re-enqueues performed.
    std::uint64_t runs = 0;              ///< Inner simulations executed.
    std::uint64_t faults_injected = 0;   ///< Across all inner runs.
    std::uint64_t machines_built = 0;    ///< Fleet builds (incl. rebuilds).
    std::uint64_t machines_reused = 0;   ///< reset()-path dispatches.
    std::uint64_t breaker_opened = 0;
    std::uint64_t breaker_half_opened = 0;
    std::uint64_t breaker_closed = 0;
    std::uint64_t pool_trimmed = 0;      ///< Buffers freed at quarantine.
    std::uint64_t max_queue_depth = 0;
    Tick horizon = 0;               ///< Tick the last request resolved.

    /** @{ Queue-to-completion latency of ok + retried requests. */
    Tick p50 = 0, p95 = 0, p99 = 0, max_latency = 0;
    /** @} */

    double goodput = 0;  ///< (ok + retried) per simulated second.

    std::uint64_t
    resolved() const
    {
        return ok + retried + shed + timeout + faulted;
    }
    std::uint64_t served() const { return ok + retried; }

    /** Stable multi-line rendering (the byte-compared artifact). */
    std::string toString() const;

    bool operator==(const ServingReport &) const = default;
};

/** Run one serving simulation to completion on the calling thread. */
ServingReport runServing(const ServeSpec &spec);

/**
 * Run several serving simulations (typically one per offered-load
 * point) across the executor's lanes; results in spec order. Each
 * simulation owns its fleet on its worker thread, so any --jobs value
 * produces bit-identical reports.
 */
std::vector<ServingReport> runServingSweep(
    const lib::SweepExecutor &ex, const std::vector<ServeSpec> &specs);

} // namespace rsn::serve

#endif // RSN_SERVE_SCHEDULER_HH
