/**
 * @file
 * Deterministic log-bucketed latency histogram for the serving tier.
 *
 * Serving curves need quantiles over millions of per-request latencies
 * without storing them, and the serving determinism contract
 * (docs/robustness.md) needs the *reported* p50/p95/p99 to be
 * bit-identical for a given request stream — so the histogram is pure
 * integer arithmetic end to end. Buckets are octaves of the tick value
 * subdivided into 2^kSubBits linear sub-buckets (HDR-style), giving a
 * bounded relative error of 2^-kSubBits (12.5%) on quantiles; the exact
 * maximum and minimum are tracked separately, so golden pins can assert
 * precise tick counts (tests/serve/test_serving_chaos.cc pins the tiny
 * encoder's 11084).
 *
 * Quantiles take a rank in permille (p99 == 990) rather than a double:
 * rank selection is `ceil(count * permille / 1000)` in 64-bit integers,
 * and the returned value is the selected bucket's lower bound — no
 * floating point anywhere, so the report bytes cannot drift across
 * platforms, optimization levels, or --jobs values.
 */

#ifndef RSN_SERVE_LATENCY_HH
#define RSN_SERVE_LATENCY_HH

#include <cstdint>

#include "common/types.hh"

namespace rsn::serve {

class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^3 = 8 linear bins per octave. */
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSub = 1u << kSubBits;
    /** Values below 2^kSubBits map one-to-one; every octave above
     *  contributes kSub buckets, up to the top bit of a 64-bit tick. */
    static constexpr unsigned kBuckets = (64 - kSubBits + 1) * kSub;

    void record(Tick v);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Exact extremes (not bucket bounds). Zero / kTickMax when empty. */
    Tick max() const { return count_ ? max_ : 0; }
    Tick min() const { return count_ ? min_ : 0; }

    /**
     * Lower bound of the bucket holding the rank-`ceil(count*p/1000)`
     * sample (1-based, values ascending). permille is clamped to
     * [1, 1000]; returns 0 on an empty histogram.
     */
    Tick quantilePermille(unsigned permille) const;

    Tick p50() const { return quantilePermille(500); }
    Tick p95() const { return quantilePermille(950); }
    Tick p99() const { return quantilePermille(990); }

    bool operator==(const LatencyHistogram &) const = default;

    /** @{ Bucket mapping, exposed for the unit tests. */
    static unsigned bucketFor(Tick v);
    static Tick bucketLowerBound(unsigned bucket);
    /** @} */

  private:
    std::uint64_t counts_[kBuckets] = {};
    std::uint64_t count_ = 0;
    Tick max_ = 0;
    Tick min_ = kTickMax;
};

} // namespace rsn::serve

#endif // RSN_SERVE_LATENCY_HH
