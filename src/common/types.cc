#include "common/types.hh"

namespace rsn {

const char *
fuTypeName(FuType t)
{
    switch (t) {
      case FuType::Mme: return "MME";
      case FuType::MemA: return "MemA";
      case FuType::MemB: return "MemB";
      case FuType::MemC: return "MemC";
      case FuType::MeshA: return "MeshA";
      case FuType::MeshB: return "MeshB";
      case FuType::Ddr: return "DDR";
      case FuType::Lpddr: return "LPDDR";
      default: return "Invalid";
    }
}

std::string
FuId::toString() const
{
    if (!valid())
        return "none";
    std::string s = fuTypeName(type);
    // Mesh/DDR/LPDDR are singletons in RSN-XNN; only multi-instance types
    // carry an index suffix.
    if (type == FuType::Mme || type == FuType::MemA ||
        type == FuType::MemB || type == FuType::MemC) {
        s += std::to_string(index);
    }
    return s;
}

} // namespace rsn
