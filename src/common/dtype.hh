/**
 * @file
 * Element types carried by the typed-tile datapath (ISSUE 10).
 *
 * A Dtype tags tile payloads, chunks, and the load/store uOPs with the
 * on-wire element width, so `Chunk::bytes()` — and therefore stream
 * transfer time and DRAM traffic — is byte-true: a bf16 tile genuinely
 * halves link and memory time relative to FP32. Host memory stays FP32
 * "truth"; typed tiles exist only on the device side, converted at the
 * DDR/LPDDR boundary (docs/datapath.md, "Typed tiles & precision
 * policy").
 *
 * The scalar converters below are the single source of truth for every
 * kernel table: each per-ISA TU (src/fu/kernels/) inlines the same
 * bit-manipulation under its own -march flags, so conversion results
 * are bit-identical across tables by construction — pure integer
 * rounding, no FP environment dependence.
 *
 *  - f32 -> bf16 truncates the mantissa with round-to-nearest-even
 *    (the tie-away bias of plain truncation measurably drifts GEMM
 *    accumulations); NaNs are quieted so rounding cannot turn a NaN
 *    payload into infinity.
 *  - f32 -> f16 is full IEEE binary16 RNE including subnormal
 *    generation and overflow-to-infinity.
 *  - Upconversions (bf16/f16 -> f32) are exact.
 */

#ifndef RSN_COMMON_DTYPE_HH
#define RSN_COMMON_DTYPE_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <string_view>

namespace rsn {

/** Element type of a tile / chunk payload. I8 is reserved layout space
 *  (rejected by PrecisionPolicy::validate) until a quantized path
 *  exists. */
enum class Dtype : std::uint8_t {
    F32 = 0,  ///< IEEE binary32 (the host-truth format).
    Bf16,     ///< bfloat16: f32 with the low 16 mantissa bits dropped.
    F16,      ///< IEEE binary16.
    I8,       ///< Reserved for a future quantized path.
};

inline constexpr int kNumDtypes = 4;

/** Bytes per element on the wire / in DRAM. */
constexpr std::uint32_t
dtypeBytes(Dtype d)
{
    switch (d) {
    case Dtype::F32:
        return 4;
    case Dtype::Bf16:
    case Dtype::F16:
        return 2;
    case Dtype::I8:
        return 1;
    }
    return 4;
}

/** Stable lowercase name: "f32", "bf16", "f16", "i8" (the CLI / bench
 *  label vocabulary). */
constexpr const char *
dtypeName(Dtype d)
{
    switch (d) {
    case Dtype::F32:
        return "f32";
    case Dtype::Bf16:
        return "bf16";
    case Dtype::F16:
        return "f16";
    case Dtype::I8:
        return "i8";
    }
    return "f32";
}

/** Parse a dtype name; nullopt for anything not in the vocabulary. */
inline std::optional<Dtype>
dtypeFromName(std::string_view name)
{
    if (name == "f32")
        return Dtype::F32;
    if (name == "bf16")
        return Dtype::Bf16;
    if (name == "f16")
        return Dtype::F16;
    if (name == "i8")
        return Dtype::I8;
    return std::nullopt;
}

// ------------------------------------------------------- converters --
//
// All four are branch-light pure bit manipulation so the per-ISA kernel
// TUs auto-vectorize the conversion loops without any table-specific
// code — and so every table produces bit-identical conversions.

/** f32 -> bf16 with round-to-nearest-even; NaN quieted. */
inline std::uint16_t
f32ToBf16(float x)
{
    std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu)) {
        // NaN: keep it a NaN after truncation (set a high mantissa bit
        // instead of rounding, which could carry into the exponent).
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }
    bits += 0x7fffu + ((bits >> 16) & 1u);  // RNE on the dropped half
    return static_cast<std::uint16_t>(bits >> 16);
}

/** bf16 -> f32 (exact). */
inline float
bf16ToF32(std::uint16_t x)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(x) << 16);
}

/** f32 -> IEEE binary16 with RNE, subnormals, overflow -> inf. */
inline std::uint16_t
f32ToF16(float x)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
    const std::uint16_t sign =
        static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
    const std::uint32_t abs = bits & 0x7fffffffu;

    if (abs >= 0x7f800000u) {  // inf / NaN
        const std::uint16_t mant =
            (abs & 0x007fffffu) ? 0x0200u : 0u;  // quiet NaN payload
        return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
    }
    if (abs >= 0x477ff000u) {  // rounds to >= 2^16: overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (abs < 0x38800000u) {  // below the smallest f16 normal (2^-14)
        if (abs < 0x33000000u)  // below half the smallest subnormal
            return sign;
        // Subnormal: align the (implicit-1) mantissa to the f16
        // subnormal grid and round to nearest even.
        const std::uint32_t exp = abs >> 23;
        const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
        const std::uint32_t shift = 126u - exp;  // in [14, 24]
        const std::uint32_t lsb = 1u << shift;
        std::uint32_t rounded = mant + (lsb >> 1) - 1u + ((mant >> shift) & 1u);
        return static_cast<std::uint16_t>(sign | (rounded >> shift));
    }
    // Normal range: rebias exponent (127 -> 15), keep 10 mantissa bits,
    // RNE on the 13 dropped bits; mantissa carry naturally increments
    // the exponent.
    std::uint32_t rounded = abs + 0x00000fffu + ((abs >> 13) & 1u);
    rounded = (rounded - 0x38000000u) >> 13;
    return static_cast<std::uint16_t>(sign | rounded);
}

/** IEEE binary16 -> f32 (exact, including subnormals and inf/NaN). */
inline float
f16ToF32(std::uint16_t x)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(x & 0x8000u) << 16;
    std::uint32_t exp = (x >> 10) & 0x1fu;
    std::uint32_t mant = x & 0x03ffu;

    if (exp == 0x1fu) {  // inf / NaN
        return std::bit_cast<float>(sign | 0x7f800000u | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0)
            return std::bit_cast<float>(sign);  // signed zero
        // Subnormal: renormalize (every f16 subnormal is a f32 normal).
        const int lead = std::bit_width(mant);  // in [1, 10]
        const std::uint32_t shift = 11u - static_cast<std::uint32_t>(lead);
        mant = (mant << shift) & 0x03ffu;
        exp = 1u - shift;
    }
    return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

} // namespace rsn

#endif // RSN_COMMON_DTYPE_HH
