/**
 * @file
 * Fundamental types shared across the RSN simulator.
 */

#ifndef RSN_COMMON_TYPES_HH
#define RSN_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace rsn {

/** Simulated time, measured in PL (programmable-logic) clock cycles. */
using Tick = std::uint64_t;

/** A byte count. */
using Bytes = std::uint64_t;

/** A simulated off-chip address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick kTickMax = ~Tick(0);

/**
 * Functional-unit categories of the RSN-XNN datapath (paper Fig. 10).
 * Each category has its own uOP control plane (paper Table 2) and its own
 * second-level decoder.
 */
enum class FuType : std::uint8_t {
    Mme,    ///< Matrix-multiply engine (virtualized AIE group).
    MemA,   ///< LHS scratchpad.
    MemB,   ///< RHS scratchpad (transpose / bias load).
    MemC,   ///< Output scratchpad (softmax / GELU / LayerNorm).
    MeshA,  ///< LHS-side router.
    MeshB,  ///< RHS-side router.
    Ddr,    ///< Off-chip DDR mover (feature maps, load + store).
    Lpddr,  ///< Off-chip LPDDR mover (weights and bias, load only).
    NumTypes,
};

/** Number of distinct FU categories. */
inline constexpr int kNumFuTypes = static_cast<int>(FuType::NumTypes);

/** Human-readable FU type name. */
const char *fuTypeName(FuType t);

/**
 * Identifies one FU instance: a type plus an index within that type
 * (e.g. {Mme, 3} is MME3). Used in uOP source/destination fields.
 */
struct FuId {
    FuType type = FuType::NumTypes;
    std::uint8_t index = 0;

    bool valid() const { return type != FuType::NumTypes; }
    bool operator==(const FuId &o) const = default;
    std::string toString() const;
};

/** Invalid / unset FU id. */
inline constexpr FuId kNoFu{};

/** Clock frequencies of the modeled VCK190 platform. */
struct ClockSpec {
    double plHz = 260e6;    ///< PL fabric clock (simulation tick).
    double aieHz = 1.25e9;  ///< AIE array clock.

    bool operator==(const ClockSpec &) const = default;
};

/** Convert ticks (PL cycles) to milliseconds for a given PL frequency. */
inline double
ticksToMs(Tick t, double pl_hz = 260e6)
{
    return static_cast<double>(t) / pl_hz * 1e3;
}

/** Convert milliseconds to ticks for a given PL frequency. */
inline Tick
msToTicks(double ms, double pl_hz = 260e6)
{
    return static_cast<Tick>(ms * 1e-3 * pl_hz);
}

/** Convert a GB/s bandwidth into bytes per PL tick. */
inline double
gbpsToBytesPerTick(double gbps, double pl_hz = 260e6)
{
    return gbps * 1e9 / pl_hz;
}

} // namespace rsn

#endif // RSN_COMMON_TYPES_HH
