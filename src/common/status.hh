/**
 * @file
 * Structured error channel for run-level outcomes.
 *
 * The simulator distinguishes *simulator bugs* (rsn_panic / rsn_assert,
 * which throw std::logic_error) from *diagnosable run outcomes*: a config
 * that fails validation, a run that deadlocks, times out, livelocks, or
 * hits an unrecoverable injected fault. The latter must end the run, not
 * the process — a sweep executor or serving harness keeps going. Status
 * is that channel: a code plus a human-readable message, threaded through
 * MachineConfig::validate(), RsnMachine::runChecked(), and
 * lib::runModelChecked() (docs/robustness.md).
 */

#ifndef RSN_COMMON_STATUS_HH
#define RSN_COMMON_STATUS_HH

#include <string>
#include <utility>

namespace rsn {

enum class StatusCode : int {
    Ok = 0,
    InvalidConfig,   ///< MachineConfig / FaultSpec validation failed.
    Deadlock,        ///< Run quiesced with blocked FUs or parked waiters.
    Timeout,         ///< Run hit its tick limit.
    Livelock,        ///< Watchdog per-tick event budget tripped.
    FaultDiagnosed,  ///< Unrecoverable injected/detected fault ended the run.
};

/** Stable human-readable name of a status code. */
inline const char *
statusCodeName(StatusCode c)
{
    switch (c) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidConfig: return "INVALID_CONFIG";
      case StatusCode::Deadlock: return "DEADLOCK";
      case StatusCode::Timeout: return "TIMEOUT";
      case StatusCode::Livelock: return "LIVELOCK";
      case StatusCode::FaultDiagnosed: return "FAULT";
    }
    return "UNKNOWN";
}

struct Status {
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }
    explicit operator bool() const { return ok(); }

    std::string
    toString() const
    {
        if (ok())
            return "OK";
        std::string s = statusCodeName(code);
        if (!message.empty())
            s += ": " + message;
        return s;
    }

    static Status success() { return {}; }
    static Status
    error(StatusCode c, std::string msg)
    {
        return {c, std::move(msg)};
    }
};

} // namespace rsn

#endif // RSN_COMMON_STATUS_HH
