#include "common/log.hh"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <stdexcept>

namespace rsn {

namespace {
std::atomic<int> g_log_level{0};

/** Serializes warn/inform output so concurrent sweep lanes never
 *  interleave mid-line. The level itself is atomic (read on hot-ish
 *  paths); the mutex only guards the cold fprintf calls. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

int logLevel() { return g_log_level.load(std::memory_order_relaxed); }
void
setLogLevel(int level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

namespace detail {

std::string
formatv(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than abort) lets death-style unit tests observe
    // panics without killing the test binary.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= 1) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stdout, "info: %s\n", msg.c_str());
    }
}

} // namespace detail
} // namespace rsn
