/**
 * @file
 * Minimal logging / assertion helpers in the gem5 style: panic() for
 * simulator bugs, fatal() for user errors, warn()/inform() for status.
 *
 * Thread safety: every entry point may be called from sweep-executor
 * worker lanes (lib/sweep.hh). The log level is an atomic, warn/inform
 * serialize their writes through one process-wide mutex (messages never
 * interleave mid-line), and `rsn_warn_once` wraps a `std::once_flag`
 * per call site so deprecation nags fire exactly once no matter how
 * many lanes race through the site.
 */

#ifndef RSN_COMMON_LOG_HH
#define RSN_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace rsn {

/** Global verbosity: 0 = quiet, 1 = inform, 2 = debug trace.
 *  Atomic underneath: safe to read from worker lanes (set it from the
 *  main thread before spawning a sweep). */
int logLevel();
void setLogLevel(int level);

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
std::string formatv(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Abort: something happened that indicates a simulator bug. */
#define rsn_panic(...) \
    ::rsn::detail::panicImpl(__FILE__, __LINE__, \
                             ::rsn::detail::formatv(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user/config error. */
#define rsn_fatal(...) \
    ::rsn::detail::fatalImpl(__FILE__, __LINE__, \
                             ::rsn::detail::formatv(__VA_ARGS__))

/** Warning that does not stop the simulation. */
#define rsn_warn(...) \
    ::rsn::detail::warnImpl(::rsn::detail::formatv(__VA_ARGS__))

/**
 * Warning emitted at most once per call site, no matter how many
 * threads race through it (std::once_flag per expansion). Use for
 * deprecation nags and other advice that would otherwise spam a sweep.
 */
#define rsn_warn_once(...) \
    do { \
        static std::once_flag rsn_warn_once_flag_; \
        std::call_once(rsn_warn_once_flag_, \
                       [&] { rsn_warn(__VA_ARGS__); }); \
    } while (0)

/** Status message shown at logLevel() >= 1. */
#define rsn_inform(...) \
    ::rsn::detail::informImpl(::rsn::detail::formatv(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define rsn_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            rsn_panic("assertion failed: %s — %s", #cond, \
                      ::rsn::detail::formatv(__VA_ARGS__).c_str()); \
        } \
    } while (0)

} // namespace rsn

#endif // RSN_COMMON_LOG_HH
