/**
 * @file
 * Stream network topology: the static graph of FUs and edges.
 *
 * The RSN datapath is "a specialized circuit-switched network of stateful
 * FUs" (Sec. 3.1). The topology is decided at datapath-generation time
 * (Sec. 4.2: the "union" datapath over all model segments); programs then
 * trigger paths through it. This module owns the graph description, its
 * validation, path checking, and DOT export; the machine instantiates one
 * sim::Stream per edge.
 */

#ifndef RSN_NET_TOPOLOGY_HH
#define RSN_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rsn::net {

/** One directed stream edge. */
struct Edge {
    FuId src;
    FuId dst;
    double bytes_per_tick = 0;  ///< Link width.
    std::size_t depth = 2;      ///< FIFO depth in chunks.

    std::string name() const
    {
        return src.toString() + "->" + dst.toString();
    }
};

/** A triggered path: an ordered FU chain that must be edge-connected. */
using Path = std::vector<FuId>;

class Topology
{
  public:
    void addNode(FuId id);
    void addEdge(Edge e);

    const std::vector<FuId> &nodes() const { return nodes_; }
    const std::vector<Edge> &edges() const { return edges_; }

    bool hasNode(FuId id) const;
    bool hasEdge(FuId src, FuId dst) const;
    const Edge *findEdge(FuId src, FuId dst) const;

    /** Edges entering / leaving a node. */
    std::vector<const Edge *> inEdges(FuId id) const;
    std::vector<const Edge *> outEdges(FuId id) const;

    /** Aggregate bandwidth (in + out) of a node in bytes/tick. */
    double aggregateBandwidth(FuId id) const;

    /**
     * Structural validation: edges reference existing nodes, no duplicate
     * edges, no self-loops. Fatal on violation.
     */
    void validate() const;

    /** True when consecutive path hops are all connected by edges. */
    bool pathConnected(const Path &p, std::string *why = nullptr) const;

    /** Graphviz DOT rendering of the network. */
    std::string toDot(const std::string &graph_name = "rsn") const;

  private:
    std::vector<FuId> nodes_;
    std::vector<Edge> edges_;
};

} // namespace rsn::net

#endif // RSN_NET_TOPOLOGY_HH
