#include "net/topology.hh"

#include "common/log.hh"

namespace rsn::net {

void
Topology::addNode(FuId id)
{
    rsn_assert(!hasNode(id), "duplicate node %s", id.toString().c_str());
    nodes_.push_back(id);
}

void
Topology::addEdge(Edge e)
{
    edges_.push_back(std::move(e));
}

bool
Topology::hasNode(FuId id) const
{
    for (const auto &n : nodes_)
        if (n == id)
            return true;
    return false;
}

bool
Topology::hasEdge(FuId src, FuId dst) const
{
    return findEdge(src, dst) != nullptr;
}

const Edge *
Topology::findEdge(FuId src, FuId dst) const
{
    for (const auto &e : edges_)
        if (e.src == src && e.dst == dst)
            return &e;
    return nullptr;
}

std::vector<const Edge *>
Topology::inEdges(FuId id) const
{
    std::vector<const Edge *> out;
    for (const auto &e : edges_)
        if (e.dst == id)
            out.push_back(&e);
    return out;
}

std::vector<const Edge *>
Topology::outEdges(FuId id) const
{
    std::vector<const Edge *> out;
    for (const auto &e : edges_)
        if (e.src == id)
            out.push_back(&e);
    return out;
}

double
Topology::aggregateBandwidth(FuId id) const
{
    double bw = 0;
    for (const auto &e : edges_) {
        if (e.src == id)
            bw += e.bytes_per_tick;
        if (e.dst == id)
            bw += e.bytes_per_tick;
    }
    return bw;
}

void
Topology::validate() const
{
    for (const auto &e : edges_) {
        if (!hasNode(e.src))
            rsn_fatal("edge %s references missing source",
                      e.name().c_str());
        if (!hasNode(e.dst))
            rsn_fatal("edge %s references missing destination",
                      e.name().c_str());
        if (e.src == e.dst)
            rsn_fatal("self-loop on %s", e.src.toString().c_str());
        if (e.bytes_per_tick <= 0)
            rsn_fatal("edge %s has non-positive width", e.name().c_str());
    }
    for (std::size_t i = 0; i < edges_.size(); ++i)
        for (std::size_t j = i + 1; j < edges_.size(); ++j)
            if (edges_[i].src == edges_[j].src &&
                edges_[i].dst == edges_[j].dst)
                rsn_fatal("duplicate edge %s", edges_[i].name().c_str());
}

bool
Topology::pathConnected(const Path &p, std::string *why) const
{
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        if (!hasEdge(p[i], p[i + 1])) {
            if (why)
                *why = "no edge " + p[i].toString() + "->" +
                       p[i + 1].toString();
            return false;
        }
    }
    return true;
}

std::string
Topology::toDot(const std::string &graph_name) const
{
    std::string s = "digraph " + graph_name + " {\n  rankdir=LR;\n";
    for (const auto &n : nodes_)
        s += "  \"" + n.toString() + "\";\n";
    for (const auto &e : edges_) {
        s += "  \"" + e.src.toString() + "\" -> \"" + e.dst.toString() +
             "\" [label=\"" +
             detail::formatv("%.0fB/t", e.bytes_per_tick) + "\"];\n";
    }
    s += "}\n";
    return s;
}

} // namespace rsn::net
