/**
 * @file
 * RSN instruction packets and programs (paper Sec. 3.3, Fig. 8).
 *
 * A program is a single sequence of UDP-like instruction packets. Each
 * packet has a 32-bit header — opcode (FU type), mask (targeted FU
 * instances), last (FU exit), window size (mOPs in this packet), reuse
 * (replay count) — followed by a payload of mOPs. Second-level decoders
 * replay the mOP window @c reuse times; third-level decoders translate
 * mOPs into uOPs (e.g. a strided DDR mOP expands into stride_count
 * single-block uOPs).
 *
 * Instruction compression (Fig. 9) = assembled packet bytes vs. the bytes
 * of the fully-expanded uOP streams.
 */

#ifndef RSN_ISA_PACKET_HH
#define RSN_ISA_PACKET_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/uop.hh"

namespace rsn::isa {

/** Packet header field limits imposed by the 32-bit encoding. */
inline constexpr std::uint32_t kMaxWindow = 127;   ///< 7 bits.
inline constexpr std::uint32_t kMaxReuse = 4095;   ///< 12 bits.
inline constexpr std::uint32_t kMaxMaskBits = 8;   ///< 8 FU instances.

/** One RSN instruction packet. */
struct RsnPacket {
    FuType opcode = FuType::NumTypes;
    std::uint8_t mask = 0;      ///< Bit i selects FU instance i.
    bool last = false;          ///< Signals FU exit after this packet.
    std::uint16_t reuse = 1;    ///< Times the mOP window replays.
    std::vector<Uop> mops;      ///< The mOP window (size = "window size").

    /** Encoded 32-bit header: opcode:4 | mask:8 | last:1 | win:7 | reuse:12 */
    std::uint32_t headerWord() const;

    /** Decode header fields from a 32-bit word (payload not touched). */
    static RsnPacket fromHeaderWord(std::uint32_t w);

    /** Assembled size: 4-byte header + serialized mOPs. */
    Bytes wireBytes() const;

    /** Check structural validity (field ranges, uOP/opcode agreement). */
    bool valid(std::string *why = nullptr) const;
};

/**
 * Expand one mOP into its uOP sequence (third-level decoding). Strided
 * DDR/LPDDR mOPs unroll into per-block uOPs; everything else passes
 * through unchanged.
 */
std::vector<Uop> expandMop(const Uop &mop);

/** Append @p mop's expansion to @p out (the allocation-free form the
 *  decoder's uOP cache fills; expandMop wraps it). */
void expandMopInto(const Uop &mop, std::vector<Uop> &out);

/** A full RSN program: the packet sequence plus measurement helpers. */
class RsnProgram
{
  public:
    void append(RsnPacket p);
    const std::vector<RsnPacket> &packets() const { return packets_; }
    std::size_t size() const { return packets_.size(); }
    bool empty() const { return packets_.empty(); }

    /** Append `last` packets halting every FU instance in @p counts. */
    void appendHalts(const std::array<int, kNumFuTypes> &counts);

    /** Validate every packet; fatal on the first invalid one. */
    void validate() const;

    /** Number of packets targeting @p t. */
    std::uint64_t packetCount(FuType t) const;

    /** Assembled instruction bytes targeting @p t (incl. headers). */
    Bytes instructionBytes(FuType t) const;

    /** Total assembled program bytes. */
    Bytes totalBytes() const;

    /**
     * Bytes of the fully-expanded uOP streams for @p t: every reuse
     * iteration, every masked FU instance, every expanded uOP.
     */
    Bytes expandedUopBytes(FuType t) const;

    /** Expanded uOP count for one FU instance. */
    std::uint64_t uopCountFor(FuId fu) const;

  private:
    std::vector<RsnPacket> packets_;
};

/** Serialize a program to bytes (assembler). */
std::vector<std::uint8_t> assemble(const RsnProgram &prog);

/** Parse bytes back into packets (disassembler). */
RsnProgram disassemble(const std::vector<std::uint8_t> &bytes);

} // namespace rsn::isa

#endif // RSN_ISA_PACKET_HH
