/**
 * @file
 * The three-level instruction decoder (paper Sec. 3.3, Fig. 8).
 *
 * Level 1 (fetch / top-level): reads the single RSN packet stream and
 * forwards each packet to the second-level decoder selected by its opcode.
 * The fetch unit issues continuously until a downstream FIFO back-pressures
 * it — which is also how the paper's deadlock scenario arises when FIFOs
 * are too shallow (depth 6 is reported deadlock-free).
 *
 * Level 2 (per FU type): replays each packet's mOP window `reuse` times and
 * expands mOPs into uOPs (strided DDR/LPDDR mOPs unroll per block). Each
 * second-level decoder owns a per-mOP-window **uOP cache**: a packet's
 * window is expanded exactly once into a reusable buffer, and the
 * `reuse` replay passes issue straight from the cache instead of
 * re-expanding every pass (the buffer is recycled across packets, so
 * steady-state decoding allocates nothing). Issue order and per-uOP
 * decode delays are identical to the uncached path — the cache is a
 * host-side optimization with no simulated-timing footprint.
 *
 * Level 3 (per FU): the bounded uOP queue inside each Fu.
 */

#ifndef RSN_ISA_DECODER_HH
#define RSN_ISA_DECODER_HH

#include <array>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "fu/fu.hh"
#include "isa/packet.hh"
#include "sim/channel.hh"
#include "sim/task.hh"

namespace rsn::isa {

class DecoderUnit
{
  public:
    struct Config {
        /** Packet FIFO depth between fetch and each type decoder. */
        std::size_t fetch_fifo_depth = 6;
        /** Decode cost per packet header at the fetch unit. */
        Tick ticks_per_packet = 4;
        /** Decode cost per issued uOP at a second-level decoder. */
        Tick ticks_per_uop = 2;
    };

    DecoderUnit(sim::Engine &eng, Config cfg);

    /** Register an FU instance as a uOP sink. Call before start(). */
    void attach(fu::Fu *f);

    /**
     * Begin fetching @p prog (which must outlive the run) and issuing
     * uOPs. Spawns the fetch and second-level decoder coroutines.
     */
    void start(const RsnProgram &prog);

    /** All packets fetched, expanded, and delivered. */
    bool done() const;

    /**
     * Return to the pre-start state so a fresh program can be fetched
     * (RsnMachine::reset). Only legal before start() or once done():
     * the fetch/type coroutines must have finished before their frames
     * are destroyed.
     */
    void reset();

    /** @{ Stats for the overhead analysis (Sec. 5.1). */
    std::uint64_t packetsFetched() const { return packets_fetched_; }
    std::uint64_t uopsIssued() const { return uops_issued_; }
    Bytes instructionBytesFetched() const { return bytes_fetched_; }
    /** @} */

    /** @{ uOP cache stats: window expansions performed vs. expansions
     *  the replay passes reused from the cache. */
    std::uint64_t uopExpansions() const { return uop_expansions_; }
    std::uint64_t uopCacheReplays() const { return uop_cache_replays_; }
    /** @} */

    /** Describe stalled decoder stages (deadlock diagnostics). */
    std::string stateString() const;

  private:
    sim::Task fetchLoop();
    sim::Task typeLoop(FuType t);
    fu::Fu *lookup(FuId id) const;

    sim::Engine &eng_;
    Config cfg_;
    const RsnProgram *prog_ = nullptr;
    std::vector<fu::Fu *> fus_;

    /** nullptr packet = end-of-program sentinel. */
    using PktChannel = sim::Channel<const RsnPacket *>;
    std::array<std::unique_ptr<PktChannel>, kNumFuTypes> pkt_ch_;
    std::array<sim::Task, kNumFuTypes> type_tasks_;
    std::array<bool, kNumFuTypes> type_done_{};
    sim::Task fetch_task_;
    bool fetch_done_ = false;

    /** Per-type uOP cache: the current packet's expanded mOP window.
     *  Cleared (capacity kept) per packet, replayed per pass. */
    std::array<std::vector<Uop>, kNumFuTypes> uop_cache_;

    std::uint64_t packets_fetched_ = 0;
    std::uint64_t uops_issued_ = 0;
    Bytes bytes_fetched_ = 0;
    std::uint64_t uop_expansions_ = 0;
    std::uint64_t uop_cache_replays_ = 0;
};

} // namespace rsn::isa

#endif // RSN_ISA_DECODER_HH
