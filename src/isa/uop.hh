/**
 * @file
 * Micro-operation (uOP) control planes for every FU type.
 *
 * These transcribe paper Table 2 ("uOP Control Planes Managing FUs in
 * RSN-XNN"). A uOP carries *control information only* — never data — so
 * instructions stay off the critical path (Sec. 2.4). Each uOP launches a
 * single kernel execution on its FU.
 *
 * Every uOP type reports its wire size (the bytes a third-level decoder
 * consumes); Fig. 9's RSN-instruction-vs-uOP compression ratios are computed
 * from these sizes.
 */

#ifndef RSN_ISA_UOP_HH
#define RSN_ISA_UOP_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/dtype.hh"
#include "common/types.hh"

namespace rsn::isa {

/**
 * MME: "matrix size, tile size, add bias, add previous layer, calculate
 * scale and shift, accumulate along k".
 *
 * One uOP directs the computation of @c reps output slabs; each slab
 * accumulates @c k_steps pairs of (LHS, RHS) chunks. Sizes are the
 * *per-chunk* dimensions seen by this MME (after mesh slicing).
 */
struct MmeUop {
    std::uint16_t reps = 1;       ///< Output slabs to produce.
    std::uint16_t k_steps = 1;    ///< Accumulation chunks per slab.
    std::uint16_t tile_m = 0;     ///< Rows per LHS chunk / output slab.
    std::uint16_t tile_k = 0;     ///< Depth per chunk pair.
    std::uint16_t tile_n = 0;     ///< Cols per RHS chunk / output slab.
    bool add_bias = false;        ///< Consume a bias chunk first, add it.
    bool accum_k = true;          ///< Accumulate along k before emitting.
    /** Element type of the emitted output slabs. The accumulator is
     *  always FP32; the result is downconverted just before emit.
     *  Operand dtypes arrive on the chunks themselves. */
    Dtype out_dtype = Dtype::F32;

    bool operator==(const MmeUop &) const = default;
    // Wire size unchanged by the dtype tag: it packs into the 2 spare
    // bits of the existing flag byte (both of the paper's encodings
    // reserve them).
    static constexpr Bytes wireBytes() { return 11; }
    std::string toString() const;
};

/**
 * DDR: "addr, stride size, stride offset, stride count, load, destFU,
 * store, srcFU". Moves feature maps between off-chip DDR and on-chip FUs.
 *
 * A load uOP reads @c stride_count blocks (advancing @c addr by
 * @c stride_offset bytes each time) and streams each to @c dest. A store
 * uOP receives @c stride_count chunks from @c src and writes them back.
 */
struct DdrUop {
    Addr addr = 0;
    std::uint32_t stride_offset = 0;  ///< Byte advance between blocks.
    std::uint16_t stride_count = 1;   ///< Number of blocks.
    bool load = false;
    FuId dest = kNoFu;
    bool store = false;
    FuId src = kNoFu;
    /** Block geometry (rows x cols elements, row pitch in elements). */
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t pitch = 0;
    /** Device-side element type: loads emit chunks of this dtype (host
     *  truth is FP32; conversion happens at the DDR boundary) and DRAM
     *  traffic is rows*cols*dtypeBytes(dtype) per block. */
    Dtype dtype = Dtype::F32;

    bool operator==(const DdrUop &) const = default;
    // Dtype packs into the spare bits of the load/store flag byte; the
    // wire size is unchanged.
    static constexpr Bytes wireBytes() { return 25; }
    std::string toString() const;
};

/** LPDDR: "addr, stride size, stride offset, stride count, destFU,
 *  load bias". Loads read-only weights and bias. */
struct LpddrUop {
    Addr addr = 0;
    std::uint32_t stride_offset = 0;
    std::uint16_t stride_count = 1;
    FuId dest = kNoFu;
    bool load_bias = false;  ///< Block is a bias / LN-parameter vector.
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t pitch = 0;
    /** Device-side element type of the loaded block (weights). Bias /
     *  LN-parameter vectors must stay F32 (see docs/datapath.md). */
    Dtype dtype = Dtype::F32;

    bool operator==(const LpddrUop &) const = default;
    // Dtype packs into the spare bits of the load_bias flag byte.
    static constexpr Bytes wireBytes() { return 24; }
    std::string toString() const;
};

/** One mesh route: move chunks from FU @c src to FU @c dst. */
struct MeshRoute {
    FuId src;
    FuId dst;
    bool operator==(const MeshRoute &) const = default;
};

/** How a mesh kernel interprets its route list. */
enum class MeshMode : std::uint8_t {
    Parallel,    ///< Independent routes forward concurrently.
    Broadcast,   ///< One source replicated to every destination.
    Distribute,  ///< Round-robin: chunk i goes to route (i % routes).
};

/**
 * MeshA/B: "size, srcFUs, destFUs".
 *
 * Parallel mode serves pipelined mappings (distinct producer/consumer
 * pairs); Broadcast serves shared operands (one RHS tile to every MME);
 * Distribute deals consecutive chunks from one source across the MMEs
 * (M-split of an LHS tile). @c repeats iterations flow per kernel.
 */
struct MeshUop {
    std::uint32_t repeats = 1;
    MeshMode mode = MeshMode::Parallel;
    std::vector<MeshRoute> routes;

    bool operator==(const MeshUop &) const = default;
    Bytes wireBytes() const { return 6 + 2 * routes.size(); }
    std::string toString() const;
};

/**
 * MemA: "matrix size, tile size, srcFU, load data, send to MME".
 *
 * Holds one LHS tile in a ping-pong buffer pair. When both load and send
 * are set, the two run in parallel on opposite buffers (Fig. 7b).
 * Sending slices the buffered tile into @c slices row-slices, one per
 * destination MME.
 */
struct MemAUop {
    std::uint16_t rows = 0;
    std::uint16_t cols = 0;
    std::uint8_t slices = 1;
    FuId src = kNoFu;       ///< Producer of loaded data (DDR).
    bool load = false;
    bool send = false;

    bool operator==(const MemAUop &) const = default;
    static constexpr Bytes wireBytes() { return 7; }
    std::string toString() const;
};

/**
 * MemB: "matrix size, tile size, load data, send to MME, transpose input,
 * load bias". Holds one RHS tile; optionally transposes (attention K^T)
 * and forwards a bias vector ahead of the tile.
 */
struct MemBUop {
    std::uint16_t rows = 0;
    std::uint16_t cols = 0;
    FuId src = kNoFu;
    bool load = false;
    bool send = false;
    bool transpose = false;
    bool load_bias = false;  ///< Also receive + forward a bias chunk.

    bool operator==(const MemBUop &) const = default;
    static constexpr Bytes wireBytes() { return 6; }
    std::string toString() const;
};

/**
 * MemC: "matrix size from MME, matrix size to DDR, tile size from MME,
 * tile size to DDR, receive from MME, send to MME, softmax, gelu,
 * mean/variance/normalization". Plus residual add and LN scale&shift,
 * which this implementation hosts in MemC (see DESIGN.md deviations).
 *
 * Ping-pong buffered: a receive kernel fills one buffer while a
 * send/store kernel drains the other, enabling the paper's RCEV/SEND
 * overlap around Softmax (Fig. 11).
 */
struct MemCUop {
    std::uint16_t rows = 0;      ///< Buffered tile rows.
    std::uint16_t cols = 0;      ///< Buffered tile cols.
    std::uint16_t recv_chunks = 1;  ///< Chunks to receive from MME.
    std::uint16_t send_chunks = 1;  ///< Chunks to emit when sending.
    bool recv = false;           ///< Receive tile from the partner MME.
    bool store = false;          ///< Emit tile toward the DDR FU.
    bool send_mme = false;       ///< Emit tile toward a mesh (next MM).
    FuId send_dest = kNoFu;      ///< MeshA or MeshB when send_mme.
    bool softmax = false;
    bool gelu = false;
    bool layernorm = false;      ///< Mean/variance/normalize rows.
    bool scale_shift = false;    ///< Apply gamma/beta (recv params first).
    bool add_residual = false;   ///< Add a residual tile (recv it first).
    /** Element type of emitted chunks (store / send_mme). Fused
     *  operators always compute in FP32 — a typed buffered tile is
     *  upconverted once before the first fused op and downconverted to
     *  this dtype on the way out. */
    Dtype out_dtype = Dtype::F32;

    bool operator==(const MemCUop &) const = default;
    // Dtype packs into the spare bits of the flag bytes; wire size
    // unchanged.
    static constexpr Bytes wireBytes() { return 11; }
    std::string toString() const;
};

/** Decoder-injected uOP that terminates an FU's kernel loop ("last"). */
struct HaltUop {
    bool operator==(const HaltUop &) const = default;
    static constexpr Bytes wireBytes() { return 1; }
    std::string toString() const { return "halt"; }
};

/** A uOP for any FU type. */
using Uop = std::variant<MmeUop, DdrUop, LpddrUop, MeshUop, MemAUop,
                         MemBUop, MemCUop, HaltUop>;

/** Wire size of any uOP. */
Bytes uopWireBytes(const Uop &u);

/** Debug rendering of any uOP. */
std::string uopToString(const Uop &u);

/** FU type a uOP kind belongs to (Mesh uOPs fit both MeshA and MeshB). */
bool uopMatchesFuType(const Uop &u, FuType t);

} // namespace rsn::isa

#endif // RSN_ISA_UOP_HH
