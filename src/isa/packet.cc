#include "isa/packet.hh"

#include <bit>

#include "common/log.hh"

namespace rsn::isa {

namespace {

/** Little serializer used by the assembler. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) { u8(v & 0xff); u8(v >> 8); }
    void
    u32(std::uint32_t v)
    {
        u16(v & 0xffff);
        u16(v >> 16);
    }
    void
    u64(std::uint64_t v)
    {
        u32(v & 0xffffffff);
        u32(v >> 32);
    }
    void fuId(FuId f) { u8((static_cast<int>(f.type) << 4) | f.index); }
    void flag(bool b) { u8(b ? 1 : 0); }

  private:
    std::vector<std::uint8_t> &out_;
};

class ByteReader
{
  public:
    ByteReader(const std::vector<std::uint8_t> &in, std::size_t &pos)
        : in_(in), pos_(pos)
    {}

    std::uint8_t
    u8()
    {
        rsn_assert(pos_ < in_.size(), "disassembler ran past end");
        return in_[pos_++];
    }
    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8();
        return lo | (std::uint16_t(u8()) << 8);
    }
    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }
    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }
    FuId
    fuId()
    {
        std::uint8_t v = u8();
        return FuId{static_cast<FuType>(v >> 4),
                    static_cast<std::uint8_t>(v & 0xf)};
    }
    bool flag() { return u8() != 0; }

  private:
    const std::vector<std::uint8_t> &in_;
    std::size_t &pos_;
};

void
serializeUop(ByteWriter &w, const Uop &u)
{
    std::visit(
        [&](const auto &v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, MmeUop>) {
                w.u16(v.reps); w.u16(v.k_steps);
                w.u16(v.tile_m); w.u16(v.tile_k); w.u16(v.tile_n);
                w.u8((v.add_bias << 0) | (v.accum_k << 1));
            } else if constexpr (std::is_same_v<T, DdrUop>) {
                w.u32(static_cast<std::uint32_t>(v.addr));
                w.u32(v.stride_offset);
                w.u16(v.stride_count);
                w.u8((v.load << 0) | (v.store << 1));
                w.fuId(v.dest); w.fuId(v.src);
                w.u32(v.rows); w.u32(v.cols); w.u32(v.pitch);
            } else if constexpr (std::is_same_v<T, LpddrUop>) {
                w.u32(static_cast<std::uint32_t>(v.addr));
                w.u32(v.stride_offset);
                w.u16(v.stride_count);
                w.fuId(v.dest);
                w.flag(v.load_bias);
                w.u32(v.rows); w.u32(v.cols); w.u32(v.pitch);
            } else if constexpr (std::is_same_v<T, MeshUop>) {
                w.u32(v.repeats);
                w.u8(static_cast<std::uint8_t>(v.mode));
                w.u8(static_cast<std::uint8_t>(v.routes.size()));
                for (const auto &r : v.routes) {
                    w.fuId(r.src);
                    w.fuId(r.dst);
                }
            } else if constexpr (std::is_same_v<T, MemAUop>) {
                w.u16(v.rows); w.u16(v.cols);
                w.u8(v.slices); w.fuId(v.src);
                w.u8((v.load << 0) | (v.send << 1));
            } else if constexpr (std::is_same_v<T, MemBUop>) {
                w.u16(v.rows); w.u16(v.cols);
                w.fuId(v.src);
                w.u8((v.load << 0) | (v.send << 1) | (v.transpose << 2) |
                     (v.load_bias << 3));
            } else if constexpr (std::is_same_v<T, MemCUop>) {
                w.u16(v.rows); w.u16(v.cols);
                w.u16(v.recv_chunks); w.u16(v.send_chunks);
                w.fuId(v.send_dest);
                w.u16((v.recv << 0) | (v.store << 1) | (v.send_mme << 2) |
                      (v.softmax << 3) | (v.gelu << 4) |
                      (v.layernorm << 5) | (v.scale_shift << 6) |
                      (v.add_residual << 7));
            } else if constexpr (std::is_same_v<T, HaltUop>) {
                w.u8(0xff);
            }
        },
        u);
}

Uop
deserializeUop(ByteReader &r, FuType opcode)
{
    switch (opcode) {
      case FuType::Mme: {
        MmeUop v;
        v.reps = r.u16(); v.k_steps = r.u16();
        v.tile_m = r.u16(); v.tile_k = r.u16(); v.tile_n = r.u16();
        std::uint8_t f = r.u8();
        v.add_bias = f & 1; v.accum_k = f & 2;
        return v;
      }
      case FuType::Ddr: {
        DdrUop v;
        v.addr = r.u32(); v.stride_offset = r.u32();
        v.stride_count = r.u16();
        std::uint8_t f = r.u8();
        v.load = f & 1; v.store = f & 2;
        v.dest = r.fuId(); v.src = r.fuId();
        v.rows = r.u32(); v.cols = r.u32(); v.pitch = r.u32();
        return v;
      }
      case FuType::Lpddr: {
        LpddrUop v;
        v.addr = r.u32(); v.stride_offset = r.u32();
        v.stride_count = r.u16();
        v.dest = r.fuId(); v.load_bias = r.flag();
        v.rows = r.u32(); v.cols = r.u32(); v.pitch = r.u32();
        return v;
      }
      case FuType::MeshA:
      case FuType::MeshB: {
        MeshUop v;
        v.repeats = r.u32();
        v.mode = static_cast<MeshMode>(r.u8());
        std::uint8_t n = r.u8();
        for (int i = 0; i < n; ++i) {
            MeshRoute rt;
            rt.src = r.fuId();
            rt.dst = r.fuId();
            v.routes.push_back(rt);
        }
        return v;
      }
      case FuType::MemA: {
        MemAUop v;
        v.rows = r.u16(); v.cols = r.u16();
        v.slices = r.u8(); v.src = r.fuId();
        std::uint8_t f = r.u8();
        v.load = f & 1; v.send = f & 2;
        return v;
      }
      case FuType::MemB: {
        MemBUop v;
        v.rows = r.u16(); v.cols = r.u16();
        v.src = r.fuId();
        std::uint8_t f = r.u8();
        v.load = f & 1; v.send = f & 2; v.transpose = f & 4;
        v.load_bias = f & 8;
        return v;
      }
      case FuType::MemC: {
        MemCUop v;
        v.rows = r.u16(); v.cols = r.u16();
        v.recv_chunks = r.u16(); v.send_chunks = r.u16();
        v.send_dest = r.fuId();
        std::uint16_t f = r.u16();
        v.recv = f & 1; v.store = f & 2; v.send_mme = f & 4;
        v.softmax = f & 8; v.gelu = f & 16; v.layernorm = f & 32;
        v.scale_shift = f & 64; v.add_residual = f & 128;
        return v;
      }
      default:
        rsn_panic("cannot deserialize opcode %d", int(opcode));
    }
}

} // namespace

std::uint32_t
RsnPacket::headerWord() const
{
    std::uint32_t w = 0;
    w |= (static_cast<std::uint32_t>(opcode) & 0xf) << 28;
    w |= std::uint32_t(mask) << 20;
    w |= std::uint32_t(last ? 1 : 0) << 19;
    w |= (std::uint32_t(mops.size()) & 0x7f) << 12;
    w |= std::uint32_t(reuse) & 0xfff;
    return w;
}

RsnPacket
RsnPacket::fromHeaderWord(std::uint32_t w)
{
    RsnPacket p;
    p.opcode = static_cast<FuType>((w >> 28) & 0xf);
    p.mask = (w >> 20) & 0xff;
    p.last = (w >> 19) & 1;
    p.reuse = w & 0xfff;
    p.mops.resize((w >> 12) & 0x7f);  // placeholder slots for window size
    return p;
}

Bytes
RsnPacket::wireBytes() const
{
    Bytes b = 4;
    for (const auto &m : mops)
        b += uopWireBytes(m);
    return b;
}

bool
RsnPacket::valid(std::string *why) const
{
    auto fail = [&](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (opcode == FuType::NumTypes)
        return fail("invalid opcode");
    if (mask == 0)
        return fail("empty FU mask");
    if (mops.size() > kMaxWindow)
        return fail("window size exceeds 7-bit field");
    if (reuse == 0 || reuse > kMaxReuse)
        return fail("reuse outside [1, 4095]");
    if (!last && mops.empty())
        return fail("non-last packet with empty window");
    for (const auto &m : mops) {
        if (!uopMatchesFuType(m, opcode))
            return fail("uOP kind does not match packet opcode");
    }
    return true;
}

void
expandMopInto(const Uop &mop, std::vector<Uop> &out)
{
    if (const auto *d = std::get_if<DdrUop>(&mop)) {
        for (std::uint32_t i = 0; i < d->stride_count; ++i) {
            DdrUop u = *d;
            u.addr = d->addr + std::uint64_t(i) * d->stride_offset;
            u.stride_count = 1;
            u.stride_offset = 0;
            out.emplace_back(u);
        }
        return;
    }
    if (const auto *l = std::get_if<LpddrUop>(&mop)) {
        for (std::uint32_t i = 0; i < l->stride_count; ++i) {
            LpddrUop u = *l;
            u.addr = l->addr + std::uint64_t(i) * l->stride_offset;
            u.stride_count = 1;
            u.stride_offset = 0;
            out.emplace_back(u);
        }
        return;
    }
    out.push_back(mop);
}

std::vector<Uop>
expandMop(const Uop &mop)
{
    std::vector<Uop> out;
    expandMopInto(mop, out);
    return out;
}

void
RsnProgram::append(RsnPacket p)
{
    packets_.push_back(std::move(p));
}

void
RsnProgram::appendHalts(const std::array<int, kNumFuTypes> &counts)
{
    for (int t = 0; t < kNumFuTypes; ++t) {
        if (counts[t] <= 0)
            continue;
        RsnPacket p;
        p.opcode = static_cast<FuType>(t);
        p.mask = static_cast<std::uint8_t>((1u << counts[t]) - 1);
        p.last = true;
        p.reuse = 1;
        packets_.push_back(std::move(p));
    }
}

void
RsnProgram::validate() const
{
    for (std::size_t i = 0; i < packets_.size(); ++i) {
        std::string why;
        if (!packets_[i].valid(&why))
            rsn_fatal("packet %zu invalid: %s", i, why.c_str());
    }
}

std::uint64_t
RsnProgram::packetCount(FuType t) const
{
    std::uint64_t n = 0;
    for (const auto &p : packets_)
        n += p.opcode == t;
    return n;
}

Bytes
RsnProgram::instructionBytes(FuType t) const
{
    Bytes b = 0;
    for (const auto &p : packets_)
        if (p.opcode == t)
            b += p.wireBytes();
    return b;
}

Bytes
RsnProgram::totalBytes() const
{
    Bytes b = 0;
    for (const auto &p : packets_)
        b += p.wireBytes();
    return b;
}

Bytes
RsnProgram::expandedUopBytes(FuType t) const
{
    Bytes b = 0;
    for (const auto &p : packets_) {
        if (p.opcode != t)
            continue;
        int fanout = std::popcount(p.mask);
        Bytes per_pass = 0;
        for (const auto &m : p.mops)
            for (const auto &u : expandMop(m))
                per_pass += uopWireBytes(u);
        b += per_pass * p.reuse * fanout;
        if (p.last)
            b += HaltUop::wireBytes() * fanout;
    }
    return b;
}

std::uint64_t
RsnProgram::uopCountFor(FuId fu) const
{
    std::uint64_t n = 0;
    for (const auto &p : packets_) {
        if (p.opcode != fu.type || !(p.mask & (1u << fu.index)))
            continue;
        std::uint64_t per_pass = 0;
        for (const auto &m : p.mops)
            per_pass += expandMop(m).size();
        n += per_pass * p.reuse;
        if (p.last)
            ++n;
    }
    return n;
}

std::vector<std::uint8_t>
assemble(const RsnProgram &prog)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    for (const auto &p : prog.packets()) {
        w.u32(p.headerWord());
        for (const auto &m : p.mops)
            serializeUop(w, m);
    }
    return out;
}

RsnProgram
disassemble(const std::vector<std::uint8_t> &bytes)
{
    RsnProgram prog;
    std::size_t pos = 0;
    ByteReader r(bytes, pos);
    while (pos < bytes.size()) {
        RsnPacket p = RsnPacket::fromHeaderWord(r.u32());
        std::size_t window = p.mops.size();
        p.mops.clear();
        for (std::size_t i = 0; i < window; ++i)
            p.mops.push_back(deserializeUop(r, p.opcode));
        prog.append(std::move(p));
    }
    return prog;
}

} // namespace rsn::isa
