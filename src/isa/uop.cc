#include "isa/uop.hh"

#include "common/log.hh"

namespace rsn::isa {

namespace {

std::string
onOff(bool b, const char *name)
{
    return std::string(" ") + name + (b ? "+" : "-");
}

/** Render a dtype tag, empty for the F32 default (keeps pre-typed
 *  debug output byte-identical). */
std::string
dtypeTag(Dtype d)
{
    return d == Dtype::F32 ? std::string()
                           : std::string(" ") + dtypeName(d);
}

} // namespace

std::string
MmeUop::toString() const
{
    return detail::formatv("mme reps=%u k=%u tile=%ux%ux%u%s%s%s", reps,
                           k_steps, tile_m, tile_k, tile_n,
                           onOff(add_bias, "bias").c_str(),
                           onOff(accum_k, "accK").c_str(),
                           dtypeTag(out_dtype).c_str());
}

std::string
DdrUop::toString() const
{
    return detail::formatv(
        "ddr addr=0x%llx cnt=%u off=%u %s%s block=%ux%u/%u%s",
        static_cast<unsigned long long>(addr), stride_count, stride_offset,
        load ? ("ld->" + dest.toString()).c_str() : "",
        store ? ("st<-" + src.toString()).c_str() : "", rows, cols, pitch,
        dtypeTag(dtype).c_str());
}

std::string
LpddrUop::toString() const
{
    return detail::formatv("lpddr addr=0x%llx cnt=%u off=%u ->%s%s "
                           "block=%ux%u/%u%s",
                           static_cast<unsigned long long>(addr),
                           stride_count, stride_offset,
                           dest.toString().c_str(),
                           load_bias ? " bias" : "", rows, cols, pitch,
                           dtypeTag(dtype).c_str());
}

std::string
MeshUop::toString() const
{
    const char *m = mode == MeshMode::Broadcast ? "bcast"
                    : mode == MeshMode::Distribute ? "dist"
                                                   : "par";
    std::string s = detail::formatv("mesh rep=%u %s", repeats, m);
    for (const auto &r : routes)
        s += " " + r.src.toString() + "->" + r.dst.toString();
    return s;
}

std::string
MemAUop::toString() const
{
    return detail::formatv("memA %ux%u slices=%u src=%s%s%s", rows, cols,
                           slices, src.toString().c_str(),
                           onOff(load, "ld").c_str(),
                           onOff(send, "snd").c_str());
}

std::string
MemBUop::toString() const
{
    return detail::formatv("memB %ux%u src=%s%s%s%s%s", rows, cols,
                           src.toString().c_str(), onOff(load, "ld").c_str(),
                           onOff(send, "snd").c_str(),
                           onOff(transpose, "T").c_str(),
                           onOff(load_bias, "bias").c_str());
}

std::string
MemCUop::toString() const
{
    return detail::formatv("memC %ux%u rc=%u sc=%u%s%s%s%s%s%s%s%s%s", rows,
                           cols, recv_chunks, send_chunks,
                           onOff(recv, "rcv").c_str(),
                           onOff(store, "st").c_str(),
                           onOff(send_mme, "snd").c_str(),
                           onOff(softmax, "smax").c_str(),
                           onOff(gelu, "gelu").c_str(),
                           onOff(layernorm, "ln").c_str(),
                           onOff(scale_shift, "ss").c_str(),
                           onOff(add_residual, "res").c_str(),
                           dtypeTag(out_dtype).c_str());
}

Bytes
uopWireBytes(const Uop &u)
{
    return std::visit([](const auto &v) -> Bytes { return v.wireBytes(); },
                      u);
}

std::string
uopToString(const Uop &u)
{
    return std::visit([](const auto &v) { return v.toString(); }, u);
}

bool
uopMatchesFuType(const Uop &u, FuType t)
{
    switch (u.index()) {
      case 0: return t == FuType::Mme;
      case 1: return t == FuType::Ddr;
      case 2: return t == FuType::Lpddr;
      case 3: return t == FuType::MeshA || t == FuType::MeshB;
      case 4: return t == FuType::MemA;
      case 5: return t == FuType::MemB;
      case 6: return t == FuType::MemC;
      case 7: return true;  // Halt fits every FU.
      default: return false;
    }
}

} // namespace rsn::isa
