#include "isa/decoder.hh"

#include "common/log.hh"

namespace rsn::isa {

DecoderUnit::DecoderUnit(sim::Engine &eng, Config cfg)
    : eng_(eng), cfg_(cfg)
{
    rsn_assert(cfg.fetch_fifo_depth > 0, "bad fetch FIFO depth");
}

void
DecoderUnit::attach(fu::Fu *f)
{
    rsn_assert(lookup(f->id()) == nullptr, "duplicate FU %s",
               f->name().c_str());
    fus_.push_back(f);
}

fu::Fu *
DecoderUnit::lookup(FuId id) const
{
    for (auto *f : fus_)
        if (f->id() == id)
            return f;
    return nullptr;
}

void
DecoderUnit::start(const RsnProgram &prog)
{
    rsn_assert(prog_ == nullptr, "decoder started twice");
    prog_ = &prog;
    for (int t = 0; t < kNumFuTypes; ++t) {
        pkt_ch_[t] = std::make_unique<PktChannel>(
            eng_, cfg_.fetch_fifo_depth,
            std::string(fuTypeName(static_cast<FuType>(t))) + ".pktq");
        type_tasks_[t] = typeLoop(static_cast<FuType>(t));
    }
    fetch_task_ = fetchLoop();
}

void
DecoderUnit::reset()
{
    rsn_assert(prog_ == nullptr || done(),
               "decoder reset while still issuing");
    prog_ = nullptr;
    fetch_task_ = {};
    fetch_done_ = false;
    for (int t = 0; t < kNumFuTypes; ++t) {
        type_tasks_[t] = {};
        pkt_ch_[t].reset();
        type_done_[t] = false;
        uop_cache_[t].clear();
    }
    packets_fetched_ = 0;
    uops_issued_ = 0;
    bytes_fetched_ = 0;
    uop_expansions_ = 0;
    uop_cache_replays_ = 0;
}

sim::Task
DecoderUnit::fetchLoop()
{
    for (const RsnPacket &p : prog_->packets()) {
        co_await eng_.delay(cfg_.ticks_per_packet);
        ++packets_fetched_;
        bytes_fetched_ += p.wireBytes();
        co_await pkt_ch_[static_cast<int>(p.opcode)]->send(&p);
    }
    // End-of-program sentinels.
    for (int t = 0; t < kNumFuTypes; ++t)
        co_await pkt_ch_[t]->send(nullptr);
    fetch_done_ = true;
}

sim::Task
DecoderUnit::typeLoop(FuType t)
{
    PktChannel &ch = *pkt_ch_[static_cast<int>(t)];
    std::vector<Uop> &cache = uop_cache_[static_cast<int>(t)];
    while (true) {
        const RsnPacket *p = co_await ch.recv();
        if (!p)
            break;
        // Expand the packet's mOP window once into the per-type uOP
        // cache; the `reuse` replay passes (Fig. 8) then issue straight
        // from it. The buffer is recycled across packets, so the
        // expansion itself only allocates while a window grows beyond
        // anything seen before. Issue order matches the expand-per-pass
        // code exactly, so simulated timing is unchanged.
        cache.clear();
        for (const Uop &mop : p->mops)
            expandMopInto(mop, cache);
        uop_expansions_ += cache.size();
        for (std::uint32_t pass = 0; pass < p->reuse; ++pass) {
            if (pass > 0)
                uop_cache_replays_ += cache.size();
            for (const Uop &u : cache) {
                for (std::uint32_t i = 0; i < kMaxMaskBits; ++i) {
                    if (!(p->mask & (1u << i)))
                        continue;
                    fu::Fu *f = lookup(
                        FuId{t, static_cast<std::uint8_t>(i)});
                    rsn_assert(f, "packet targets missing %s%u",
                               fuTypeName(t), i);
                    co_await eng_.delay(cfg_.ticks_per_uop);
                    co_await f->uopQueue().send(u);
                    ++uops_issued_;
                }
            }
        }
        if (p->last) {
            for (std::uint32_t i = 0; i < kMaxMaskBits; ++i) {
                if (!(p->mask & (1u << i)))
                    continue;
                fu::Fu *f =
                    lookup(FuId{t, static_cast<std::uint8_t>(i)});
                rsn_assert(f, "halt targets missing %s%u", fuTypeName(t),
                           i);
                co_await f->uopQueue().send(Uop{HaltUop{}});
                ++uops_issued_;
            }
        }
    }
    type_done_[static_cast<int>(t)] = true;
}

bool
DecoderUnit::done() const
{
    if (!fetch_done_)
        return false;
    for (bool d : type_done_)
        if (!d)
            return false;
    return true;
}

std::string
DecoderUnit::stateString() const
{
    std::string s;
    if (!fetch_done_)
        s += "fetch unit stalled; ";
    for (int t = 0; t < kNumFuTypes; ++t) {
        if (!type_done_[t] && pkt_ch_[t]) {
            s += std::string(fuTypeName(static_cast<FuType>(t))) +
                 " decoder pending (fifo=" +
                 std::to_string(pkt_ch_[t]->size()) + "); ";
        }
    }
    return s.empty() ? "decoder drained" : s;
}

} // namespace rsn::isa
