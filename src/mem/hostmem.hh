/**
 * @file
 * Functional off-chip memory backing store.
 *
 * The RSN programs address off-chip tensors through plain addresses (uOP
 * "addr" fields, paper Table 2). HostMemory provides a flat simulated
 * address space with a bump allocator. In functional mode every region is
 * backed by an FP32 buffer so the datapath computes real results; in
 * timing-only mode regions are address ranges without storage.
 */

#ifndef RSN_MEM_HOSTMEM_HH
#define RSN_MEM_HOSTMEM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rsn::mem {

class HostMemory
{
  public:
    /** @param functional back all regions with FP32 storage. */
    explicit HostMemory(bool functional) : functional_(functional) {}

    bool functional() const { return functional_; }

    /**
     * Allocate a region of @p elems FP32 elements.
     * @return the base address (64-byte aligned).
     */
    Addr alloc(std::uint64_t elems, std::string name);

    /** Total allocated bytes. */
    Bytes allocatedBytes() const { return next_ - kBase; }

    /**
     * Drop every region and rewind the bump allocator (RsnMachine::reset):
     * the next compiled model starts from a pristine address space.
     * Addresses handed out before the reset become unmapped.
     */
    void
    reset()
    {
        regions_.clear();
        next_ = kBase;
    }

    /** Whether @p addr falls inside an allocated region. */
    bool contains(Addr addr) const;

    /** Name of the region containing @p addr ("" if none). */
    std::string regionName(Addr addr) const;

    /**
     * Read a row-major 2-D block: @p rows rows of @p cols floats, where
     * consecutive rows are @p pitch_elems apart, starting at @p addr.
     * Returns an empty vector in timing-only mode.
     */
    std::vector<float> readBlock(Addr addr, std::uint64_t pitch_elems,
                                 std::uint32_t rows,
                                 std::uint32_t cols) const;

    /**
     * Read a block straight into caller-owned storage of rows*cols
     * floats (e.g. a pooled tile) — the allocation-free load path used
     * by the DDR/LPDDR FUs.
     *
     * **Fast-path contract:** the whole window must lie inside one
     * region — bounds are asserted once against the furthest element,
     * not per row — and rows then move as raw `memcpy`s: one per row
     * for strided windows, a single block copy when the window is
     * dense (`pitch_elems == cols`). Degenerate shapes (zero rows or
     * cols) are no-ops. No-op in timing-only mode.
     */
    void readBlockInto(Addr addr, std::uint64_t pitch_elems,
                       std::uint32_t rows, std::uint32_t cols,
                       float *dst) const;

    /** Write a row-major 2-D block (no-op in timing-only mode). */
    void writeBlock(Addr addr, std::uint64_t pitch_elems,
                    std::uint32_t rows, std::uint32_t cols,
                    const std::vector<float> &data);

    /** Write a block from caller-owned storage of at least @p n floats.
     *  Same fast-path contract as readBlockInto (per-row memcpy,
     *  single block copy when `pitch_elems == cols`). */
    void writeBlock(Addr addr, std::uint64_t pitch_elems,
                    std::uint32_t rows, std::uint32_t cols,
                    const float *data, std::size_t n);

    /** Fill a whole region with values (functional initialization). */
    void fillRegion(Addr base, const std::vector<float> &values);

    /** Fill a whole region from raw storage of @p n floats. */
    void fillRegion(Addr base, const float *values, std::size_t n);

    /** Snapshot a whole region (functional verification). */
    std::vector<float> readRegion(Addr base) const;

  private:
    static constexpr Addr kBase = 0x1000;

    struct Region {
        Addr base;
        std::uint64_t elems;
        std::string name;
        std::vector<float> data;  ///< Empty in timing-only mode.
    };

    /** Region containing @p addr, or nullptr. */
    const Region *find(Addr addr) const;
    Region *find(Addr addr);

    bool functional_;
    Addr next_ = kBase;
    std::map<Addr, Region> regions_;  ///< Keyed by base address.
};

} // namespace rsn::mem

#endif // RSN_MEM_HOSTMEM_HH
