#include "mem/layout.hh"

#include "common/log.hh"

namespace rsn::mem {

namespace {

/** ceil(a / b) for positive integers. */
std::uint32_t
ceilDiv(std::uint32_t a, std::uint32_t b)
{
    return (a + b - 1) / b;
}

} // namespace

std::uint32_t
burstsFor(const TileAccess &a, LayoutKind kind, const BlockedLayout &bl)
{
    rsn_assert(a.row_off + a.rows <= a.mat_rows &&
                   a.col_off + a.cols <= a.mat_cols,
               "tile access out of matrix bounds");
    if (a.rows == 0 || a.cols == 0)
        return 0;

    switch (kind) {
      case LayoutKind::RowMajor:
        // Full-width row spans are contiguous across rows.
        if (a.col_off == 0 && a.cols == a.mat_cols)
            return 1;
        return a.rows;
      case LayoutKind::Blocked: {
        // One burst per touched block; blocks are contiguous internally.
        std::uint32_t rb = ceilDiv(a.row_off + a.rows, bl.block_rows) -
                           a.row_off / bl.block_rows;
        std::uint32_t cb = ceilDiv(a.col_off + a.cols, bl.block_cols) -
                           a.col_off / bl.block_cols;
        return rb * cb;
      }
    }
    return a.rows;
}

} // namespace rsn::mem
