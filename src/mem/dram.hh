/**
 * @file
 * Off-chip memory channel model.
 *
 * The VCK190 carries one 8 GB DDR4 channel (25.6 GB/s peak) and one 8 GB
 * LPDDR4 channel (32 GB/s peak). The paper reports *achieved* bandwidths of
 * 21 GB/s (DDR reads), 23.5 GB/s (DDR writes), and 20.5 GB/s (LPDDR reads)
 * (Sec. 5.3); this model uses the achieved numbers as its service rates.
 *
 * Requests are served strictly in arrival order: the paper's key bandwidth
 * optimization (Sec. 4.4) is that *software* chooses the load/store
 * interleaving by ordering DDR-FU uOPs, rather than trusting a hardware
 * arbiter. Arrival order here is the order in which FU coroutines call
 * access(), which is exactly uOP program order.
 *
 * Strided (non-contiguous) accesses pay a penalty factor; the blocked
 * 128x64 off-chip layout (Sec. 5.3, src/mem/layout.hh) exists to avoid it.
 */

#ifndef RSN_MEM_DRAM_HH
#define RSN_MEM_DRAM_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace rsn::sim {
class FaultInjector;
}

namespace rsn::mem {

/** Direction of an off-chip access. */
enum class Dir : std::uint8_t { Read, Write };

/** One off-chip request (a burst of contiguous or strided rows). */
struct DramRequest {
    Dir dir = Dir::Read;
    Bytes bytes = 0;
    /**
     * Number of separate row bursts the request touches. 1 means fully
     * contiguous; each extra burst pays the per-burst overhead, which is how
     * strided row-major access becomes slower than the blocked layout.
     */
    std::uint32_t bursts = 1;
};

/** Configuration of one DRAM channel. */
struct DramConfig {
    std::string name = "DRAM";
    double read_gbps = 21.0;        ///< Achieved read bandwidth.
    double write_gbps = 23.5;       ///< Achieved write bandwidth.
    Tick per_burst_overhead = 16;   ///< Row-activation / turnaround cost.
    double pl_hz = 260e6;

    bool operator==(const DramConfig &) const = default;
};

/**
 * A single serialized DRAM channel. Coroutines co_await access() and resume
 * when their request completes service.
 */
class DramChannel
{
  public:
    DramChannel(sim::Engine &eng, DramConfig cfg);

    const std::string &name() const { return cfg_.name; }
    const DramConfig &config() const { return cfg_; }

    /** Service time in ticks for @p req (excluding queueing). */
    Tick serviceTicks(const DramRequest &req) const;

    /** Perform @p req, blocking until service completes. */
    sim::Task access(DramRequest req);

    /** Scale both bandwidths by @p factor (Table 11 bandwidth sweep). */
    void scaleBandwidth(double factor);

    /**
     * Arm transaction-fault injection (docs/robustness.md). Transient
     * errors are retried with exponential backoff in simulated ticks —
     * the retry burst occupies the channel like real traffic — and a
     * request whose retries are exhausted flags an unrecoverable fault
     * (the injector stops the run; the access itself still completes so
     * the calling kernel stays well-formed).
     */
    void attachFaultInjector(sim::FaultInjector *fi);

    /**
     * Clear stats and queueing state for a fresh run on a rewound engine
     * (RsnMachine::reset). Bandwidth scaling is configuration, not run
     * state, and survives.
     */
    void
    reset()
    {
        busy_until_ = 0;
        busy_ticks_ = 0;
        bytes_read_ = 0;
        bytes_written_ = 0;
        requests_ = 0;
        retries_ = 0;
    }

    /** Stats. */
    Bytes bytesRead() const { return bytes_read_; }
    Bytes bytesWritten() const { return bytes_written_; }
    Tick busyTicks() const { return busy_ticks_; }
    std::uint64_t requests() const { return requests_; }
    /** Injected transient errors that were successfully retried. */
    std::uint64_t retries() const { return retries_; }

    /** Achieved utilization of the busier direction over @p total ticks. */
    double utilization(Tick total) const;

  private:
    sim::Engine &eng_;
    DramConfig cfg_;
    double read_bpt_;   ///< bytes per tick, reads
    double write_bpt_;  ///< bytes per tick, writes

    Tick busy_until_ = 0;
    Tick busy_ticks_ = 0;
    Bytes bytes_read_ = 0;
    Bytes bytes_written_ = 0;
    std::uint64_t requests_ = 0;

    sim::FaultInjector *fault_ = nullptr;  ///< Null unless chaos is armed.
    std::uint32_t fault_site_ = 0;
    std::uint64_t retries_ = 0;
};

} // namespace rsn::mem

#endif // RSN_MEM_DRAM_HH
