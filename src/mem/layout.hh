/**
 * @file
 * Off-chip data layout models.
 *
 * Sec. 5.3: "To reduce strided off-chip memory accesses, data is stored in a
 * 128x64 blocked layout off-chip, and MemA/B/C handle on-chip conversion from
 * blocked to row-major or transposed format."
 *
 * The layout determines how many distinct DRAM bursts a 2-D tile access
 * touches; each burst pays the channel's per-burst overhead. A row-major
 * matrix costs one burst per partial row, while the blocked layout costs one
 * burst per touched block — the difference is the paper's motivation for
 * blocking, and is measured by bench_ablation_tiles.
 */

#ifndef RSN_MEM_LAYOUT_HH
#define RSN_MEM_LAYOUT_HH

#include <cstdint>

#include "common/types.hh"

namespace rsn::mem {

/** How a matrix is arranged in off-chip memory. */
enum class LayoutKind : std::uint8_t {
    RowMajor,   ///< Standard row-major; partial-row tiles are strided.
    Blocked,    ///< 128x64 blocks, each block contiguous.
};

/** A rectangular tile access within a rows x cols matrix. */
struct TileAccess {
    std::uint32_t mat_rows = 0;
    std::uint32_t mat_cols = 0;
    std::uint32_t row_off = 0;
    std::uint32_t col_off = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
};

/** Parameters of the blocked layout (paper uses 128 x 64). */
struct BlockedLayout {
    std::uint32_t block_rows = 128;
    std::uint32_t block_cols = 64;
};

/**
 * Number of distinct contiguous bursts @p a touches under @p kind.
 * Used to fill DramRequest::bursts.
 */
std::uint32_t burstsFor(const TileAccess &a, LayoutKind kind,
                        const BlockedLayout &bl = {});

/** Bytes covered by the tile access (FP32 elements). */
inline Bytes
tileBytes(const TileAccess &a)
{
    return Bytes(a.rows) * a.cols * sizeof(float);
}

} // namespace rsn::mem

#endif // RSN_MEM_LAYOUT_HH
