#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "sim/fault.hh"

namespace rsn::mem {

DramChannel::DramChannel(sim::Engine &eng, DramConfig cfg)
    : eng_(eng), cfg_(std::move(cfg)),
      read_bpt_(gbpsToBytesPerTick(cfg_.read_gbps, cfg_.pl_hz)),
      write_bpt_(gbpsToBytesPerTick(cfg_.write_gbps, cfg_.pl_hz))
{
    rsn_assert(read_bpt_ > 0 && write_bpt_ > 0, "bad DRAM bandwidth");
}

Tick
DramChannel::serviceTicks(const DramRequest &req) const
{
    double bpt = req.dir == Dir::Read ? read_bpt_ : write_bpt_;
    double transfer = static_cast<double>(req.bytes) / bpt;
    Tick overhead = Tick(req.bursts ? req.bursts : 1) *
                    cfg_.per_burst_overhead;
    auto t = static_cast<Tick>(std::ceil(transfer)) + overhead;
    return t ? t : 1;
}

void
DramChannel::attachFaultInjector(sim::FaultInjector *fi)
{
    fault_ = fi;
    fault_site_ = fi ? fi->registerSite("dram " + cfg_.name) : 0;
}

sim::Task
DramChannel::access(DramRequest req)
{
    Tick start = std::max(eng_.now(), busy_until_);
    Tick dur = serviceTicks(req);
    if (fault_) [[unlikely]] {
        // Transient transaction errors: each failed attempt re-occupies
        // the channel for the full service time plus a deterministic
        // tick-domain backoff, so recovery is part of the timing model.
        // A dead request (retries exhausted) has already been recorded
        // and flagged by the injector; the access still completes so the
        // calling kernel suspends normally until the engine stops.
        sim::FaultInjector::Outcome o =
            fault_->onDramAccess(fault_site_, dur);
        dur += o.extra;
        retries_ += o.retries;
    }
    busy_until_ = start + dur;
    busy_ticks_ += dur;
    ++requests_;
    if (req.dir == Dir::Read)
        bytes_read_ += req.bytes;
    else
        bytes_written_ += req.bytes;
    co_await eng_.delayUntil(busy_until_);
}

void
DramChannel::scaleBandwidth(double factor)
{
    rsn_assert(factor > 0, "bandwidth factor must be positive");
    read_bpt_ = gbpsToBytesPerTick(cfg_.read_gbps * factor, cfg_.pl_hz);
    write_bpt_ = gbpsToBytesPerTick(cfg_.write_gbps * factor, cfg_.pl_hz);
    cfg_.read_gbps *= factor;
    cfg_.write_gbps *= factor;
}

double
DramChannel::utilization(Tick total) const
{
    if (total == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(busy_ticks_) / total);
}

} // namespace rsn::mem
