#include "mem/hostmem.hh"

#include <algorithm>

#include "common/log.hh"

namespace rsn::mem {

Addr
HostMemory::alloc(std::uint64_t elems, std::string name)
{
    rsn_assert(elems > 0, "empty allocation");
    Addr base = next_;
    Bytes bytes = elems * sizeof(float);
    // Keep regions 64-byte aligned like a real allocator would.
    next_ = (next_ + bytes + 63) & ~Addr(63);
    Region r{base, elems, std::move(name), {}};
    if (functional_)
        r.data.assign(elems, 0.0f);
    regions_.emplace(base, std::move(r));
    return base;
}

const HostMemory::Region *
HostMemory::find(Addr addr) const
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return nullptr;
    --it;
    const Region &r = it->second;
    if (addr >= r.base + r.elems * sizeof(float))
        return nullptr;
    return &r;
}

HostMemory::Region *
HostMemory::find(Addr addr)
{
    return const_cast<Region *>(
        static_cast<const HostMemory *>(this)->find(addr));
}

bool
HostMemory::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

std::string
HostMemory::regionName(Addr addr) const
{
    const Region *r = find(addr);
    return r ? r->name : "";
}

std::vector<float>
HostMemory::readBlock(Addr addr, std::uint64_t pitch_elems,
                      std::uint32_t rows, std::uint32_t cols) const
{
    if (!functional_)
        return {};
    const Region *r = find(addr);
    rsn_assert(r, "read from unmapped address 0x%llx (%ux%u pitch %llu)",
               static_cast<unsigned long long>(addr), rows, cols,
               static_cast<unsigned long long>(pitch_elems));
    std::uint64_t off = (addr - r->base) / sizeof(float);
    std::vector<float> out(std::uint64_t(rows) * cols);
    for (std::uint32_t i = 0; i < rows; ++i) {
        std::uint64_t src = off + std::uint64_t(i) * pitch_elems;
        rsn_assert(src + cols <= r->elems, "read past region end in '%s'",
                   r->name.c_str());
        std::copy_n(r->data.begin() + src, cols,
                    out.begin() + std::uint64_t(i) * cols);
    }
    return out;
}

void
HostMemory::writeBlock(Addr addr, std::uint64_t pitch_elems,
                       std::uint32_t rows, std::uint32_t cols,
                       const std::vector<float> &data)
{
    if (!functional_)
        return;
    Region *r = find(addr);
    rsn_assert(r, "write to unmapped address");
    rsn_assert(data.size() >= std::uint64_t(rows) * cols,
               "write payload too small");
    std::uint64_t off = (addr - r->base) / sizeof(float);
    for (std::uint32_t i = 0; i < rows; ++i) {
        std::uint64_t dst = off + std::uint64_t(i) * pitch_elems;
        rsn_assert(dst + cols <= r->elems, "write past region end in '%s'",
                   r->name.c_str());
        std::copy_n(data.begin() + std::uint64_t(i) * cols, cols,
                    r->data.begin() + dst);
    }
}

void
HostMemory::fillRegion(Addr base, const std::vector<float> &values)
{
    if (!functional_)
        return;
    auto it = regions_.find(base);
    rsn_assert(it != regions_.end(), "fill of unknown region");
    rsn_assert(values.size() == it->second.elems, "fill size mismatch");
    it->second.data = values;
}

std::vector<float>
HostMemory::readRegion(Addr base) const
{
    auto it = regions_.find(base);
    rsn_assert(it != regions_.end(), "read of unknown region");
    return it->second.data;
}

} // namespace rsn::mem
