#include "mem/hostmem.hh"

#include <cstring>

#include "common/log.hh"

namespace rsn::mem {

Addr
HostMemory::alloc(std::uint64_t elems, std::string name)
{
    rsn_assert(elems > 0, "empty allocation");
    Addr base = next_;
    Bytes bytes = elems * sizeof(float);
    // Keep regions 64-byte aligned like a real allocator would.
    next_ = (next_ + bytes + 63) & ~Addr(63);
    Region r{base, elems, std::move(name), {}};
    if (functional_)
        r.data.assign(elems, 0.0f);
    regions_.emplace(base, std::move(r));
    return base;
}

const HostMemory::Region *
HostMemory::find(Addr addr) const
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return nullptr;
    --it;
    const Region &r = it->second;
    if (addr >= r.base + r.elems * sizeof(float))
        return nullptr;
    return &r;
}

HostMemory::Region *
HostMemory::find(Addr addr)
{
    return const_cast<Region *>(
        static_cast<const HostMemory *>(this)->find(addr));
}

bool
HostMemory::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

std::string
HostMemory::regionName(Addr addr) const
{
    const Region *r = find(addr);
    return r ? r->name : "";
}

std::vector<float>
HostMemory::readBlock(Addr addr, std::uint64_t pitch_elems,
                      std::uint32_t rows, std::uint32_t cols) const
{
    if (!functional_)
        return {};
    std::vector<float> out(std::uint64_t(rows) * cols);
    readBlockInto(addr, pitch_elems, rows, cols, out.data());
    return out;
}

void
HostMemory::readBlockInto(Addr addr, std::uint64_t pitch_elems,
                          std::uint32_t rows, std::uint32_t cols,
                          float *dst) const
{
    if (!functional_ || rows == 0 || cols == 0)
        return;
    const Region *r = find(addr);
    rsn_assert(r, "read from unmapped address 0x%llx (%ux%u pitch %llu)",
               static_cast<unsigned long long>(addr), rows, cols,
               static_cast<unsigned long long>(pitch_elems));
    const std::uint64_t off = (addr - r->base) / sizeof(float);
    // Bounds are validated once for the whole window (the furthest
    // element is the last row's end), then rows move as raw memcpys:
    // one per row, or a single block copy when the window is dense
    // (pitch == cols). This is the DDR/LPDDR FUs' load fast path.
    rsn_assert(off + std::uint64_t(rows - 1) * pitch_elems + cols <=
                   r->elems,
               "read past region end in '%s'", r->name.c_str());
    const float *src = r->data.data() + off;
    if (pitch_elems == cols) {
        std::memcpy(dst, src,
                    std::uint64_t(rows) * cols * sizeof(float));
        return;
    }
    for (std::uint32_t i = 0; i < rows; ++i)
        std::memcpy(dst + std::uint64_t(i) * cols,
                    src + std::uint64_t(i) * pitch_elems,
                    std::uint64_t(cols) * sizeof(float));
}

void
HostMemory::writeBlock(Addr addr, std::uint64_t pitch_elems,
                       std::uint32_t rows, std::uint32_t cols,
                       const std::vector<float> &data)
{
    writeBlock(addr, pitch_elems, rows, cols, data.data(), data.size());
}

void
HostMemory::writeBlock(Addr addr, std::uint64_t pitch_elems,
                       std::uint32_t rows, std::uint32_t cols,
                       const float *data, std::size_t n)
{
    if (!functional_ || rows == 0 || cols == 0)
        return;
    Region *r = find(addr);
    rsn_assert(r, "write to unmapped address");
    rsn_assert(n >= std::uint64_t(rows) * cols,
               "write payload too small");
    const std::uint64_t off = (addr - r->base) / sizeof(float);
    // Mirror of readBlockInto: one bounds check for the window, then
    // per-row memcpy, collapsed to a single block copy when dense.
    rsn_assert(off + std::uint64_t(rows - 1) * pitch_elems + cols <=
                   r->elems,
               "write past region end in '%s'", r->name.c_str());
    float *dst = r->data.data() + off;
    if (pitch_elems == cols) {
        std::memcpy(dst, data,
                    std::uint64_t(rows) * cols * sizeof(float));
        return;
    }
    for (std::uint32_t i = 0; i < rows; ++i)
        std::memcpy(dst + std::uint64_t(i) * pitch_elems,
                    data + std::uint64_t(i) * cols,
                    std::uint64_t(cols) * sizeof(float));
}

void
HostMemory::fillRegion(Addr base, const std::vector<float> &values)
{
    fillRegion(base, values.data(), values.size());
}

void
HostMemory::fillRegion(Addr base, const float *values, std::size_t n)
{
    if (!functional_)
        return;
    auto it = regions_.find(base);
    rsn_assert(it != regions_.end(), "fill of unknown region");
    rsn_assert(n == it->second.elems, "fill size mismatch");
    it->second.data.assign(values, values + n);
}

std::vector<float>
HostMemory::readRegion(Addr base) const
{
    auto it = regions_.find(base);
    rsn_assert(it != regions_.end(), "read of unknown region");
    return it->second.data;
}

} // namespace rsn::mem
