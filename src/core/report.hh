/**
 * @file
 * Fixed-width table printer used by the benchmark harness so every
 * reproduced table/figure prints in a consistent, paper-like format.
 */

#ifndef RSN_CORE_REPORT_HH
#define RSN_CORE_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

namespace rsn::core {

class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> cols);

    /** Append one row (cells beyond the header count are dropped). */
    void row(std::vector<std::string> cells);

    /** Convenience formatting helpers. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double v, int precision = 1);

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner. */
void banner(const std::string &text);

} // namespace rsn::core

#endif // RSN_CORE_REPORT_HH
