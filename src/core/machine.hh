/**
 * @file
 * RsnMachine: the assembled RSN-XNN computer (paper Fig. 10).
 *
 * Instantiates the datapath — 6 MME, 3 MemA, 3 MemB, 6 MemC, MeshA/B,
 * DDR and LPDDR mover FUs — wires the stream network from the topology,
 * attaches the three-level instruction decoder, and runs RSN programs.
 *
 * A machine runs one program at a time (simulated time is monotonic
 * within a run). After a *completed* run, reset() rewinds the machine to
 * a pristine state — clock at 0, FU/stream/DRAM stats cleared, host
 * memory empty — so sweeps can reuse one machine per configuration
 * instead of rebuilding the full datapath per data point
 * (bench/bench_util.hh holds such a cached machine).
 */

#ifndef RSN_CORE_MACHINE_HH
#define RSN_CORE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "fu/fu.hh"
#include "isa/decoder.hh"
#include "isa/packet.hh"
#include "mem/dram.hh"
#include "mem/hostmem.hh"
#include "net/topology.hh"
#include "sim/engine.hh"

namespace rsn::core {

/** Build the RSN-XNN "union" datapath graph for @p cfg (Sec. 4.2). */
net::Topology buildRsnXnnTopology(const MachineConfig &cfg);

/** Outcome of executing one RSN program. */
struct RunResult {
    bool completed = false;    ///< Program drained, all FUs halted.
    bool deadlocked = false;   ///< Quiesced with blocked FUs/decoders.
    bool timed_out = false;    ///< Hit the tick limit.
    bool livelocked = false;   ///< Watchdog: a tick exceeded its budget.
    bool fault_aborted = false;  ///< Injector diagnosed a hard fault.
    Tick ticks = 0;
    double ms = 0;             ///< Wall-clock on the modeled platform.
    std::string diagnosis;     ///< Stall report when not completed.
};

/**
 * Structured outcome for callers that want a diagnosable error channel
 * instead of picking RunResult flags apart (lib/runner, tools/rsn_sim).
 * status.ok() iff the program completed; otherwise status carries the
 * classification (FaultDiagnosed / Deadlock / Livelock / Timeout) and a
 * message naming the first fault site or the stalled endpoints.
 */
struct RunReport {
    Status status;
    RunResult result;
    /** Injected-fault log (bounded; see FaultInjector::kMaxLogRecords). */
    std::vector<sim::FaultRecord> faults;
    std::uint64_t faults_injected = 0;  ///< Total, including beyond log.

    /** @{ Which payload kernels actually ran (fu/kernel_registry.hh),
     *  so a production artifact can log what it executed: the active
     *  table's name ("avx512" | ... | "scalar"), how it was chosen
     *  ("probe", "env:RSN_ISA", "cli:--isa", ...), and the cpuid/xgetbv
     *  probe summary. Kernel choice moves payload values only — tick
     *  counts are identical under every table. */
    std::string isa;
    std::string isa_source;
    std::string isa_probe;
    /** @} */

    bool ok() const { return status.ok(); }
    std::string toString() const;
};

class RsnMachine
{
  public:
    explicit RsnMachine(const MachineConfig &cfg);

    const MachineConfig &config() const { return cfg_; }
    sim::Engine &engine() { return eng_; }
    mem::HostMemory &host() { return host_; }
    mem::DramChannel &ddrChannel() { return *ddr_chan_; }
    mem::DramChannel &lpddrChannel() { return *lpddr_chan_; }
    const net::Topology &topology() const { return topo_; }
    isa::DecoderUnit &decoder() { return *decoder_; }

    fu::Fu *fu(FuId id);
    const std::vector<std::unique_ptr<fu::Fu>> &fus() const
    {
        return fus_;
    }
    sim::Stream *stream(FuId src, FuId dst);
    const std::vector<std::unique_ptr<sim::Stream>> &streams() const
    {
        return streams_;
    }

    /** Default run length: generous, but finite even for chaos runs. */
    static constexpr Tick kDefaultMaxTicks = Tick(200) * 1000 * 1000 * 1000;

    /** Execute @p prog until completion / quiesce / @p max_ticks. */
    RunResult run(const isa::RsnProgram &prog,
                  Tick max_ticks = kDefaultMaxTicks);

    /**
     * run() plus outcome classification: always returns (never throws on
     * a diagnosed fault), with status Ok / FaultDiagnosed / Deadlock /
     * Livelock / Timeout and the injector's fault log attached.
     */
    RunReport runChecked(const isa::RsnProgram &prog,
                         Tick max_ticks = kDefaultMaxTicks);

    /** Non-null iff cfg.fault.enabled() armed chaos at construction. */
    const sim::FaultInjector *faultInjector() const
    {
        return injector_.get();
    }

    /**
     * Rewind the machine for another program: engine clock to 0, FU /
     * stream / DRAM / decoder state and stats cleared, host memory
     * emptied (previously compiled models' tensor addresses become
     * invalid). Only legal before any run or after a run that
     * *completed* — a deadlocked or timed-out run leaves suspended
     * kernels whose frames must not be destroyed under a live engine;
     * rebuild the machine instead. resettable() reports which case
     * applies.
     */
    void reset();

    /** True when reset() may be called (no run yet, or it completed). */
    bool resettable() const { return !ran_ || ran_completed_; }

    /**
     * Re-arm the fault injector under a new seed without rebuilding the
     * datapath. Legal exactly when reset() is: the serving scheduler
     * (serve/scheduler.cc) salts one chaos seed per request, so a cached
     * lane machine replays request after request with only the fault
     * schedule changing. Rates, window, and policy must not change —
     * those select checksum arming and hook wiring at construction.
     * No-op (beyond recording the seed) when chaos is not armed.
     */
    void setFaultSeed(std::uint64_t seed);

    /** @{ Introspection for Fig. 16 / Table 5 / power model. */
    std::uint64_t totalFlops() const;
    double achievedTflops(const RunResult &r) const;
    double peakTflops() const;
    double fuPeakTflops(FuId id) const;
    Bytes fuMemoryBytes(FuId id) const;
    /** @} */

  private:
    void buildStreams();
    void buildFus();
    std::string stallReport() const;

    MachineConfig cfg_;
    sim::Engine eng_;
    std::unique_ptr<sim::FaultInjector> injector_;  ///< Before datapath.
    mem::HostMemory host_;
    std::unique_ptr<mem::DramChannel> ddr_chan_;
    std::unique_ptr<mem::DramChannel> lpddr_chan_;
    net::Topology topo_;
    std::vector<std::unique_ptr<fu::Fu>> fus_;
    std::vector<std::unique_ptr<sim::Stream>> streams_;
    /** Parallel to streams_: the edge each stream realizes. */
    std::vector<net::Edge> stream_edges_;
    std::unique_ptr<isa::DecoderUnit> decoder_;
    bool ran_ = false;
    bool ran_completed_ = false;
};

} // namespace rsn::core

#endif // RSN_CORE_MACHINE_HH
