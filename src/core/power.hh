/**
 * @file
 * Activity-based power/energy model (paper Table 4, Fig. 15, Table 10).
 *
 * Per component: P = P_idle + utilization-scaled dynamic power, where
 * utilization comes from the simulator's activity counters (busy ticks,
 * bytes moved, FLOPs executed). The per-type constants are calibrated so
 * a BERT-Large encoder run reproduces the Vivado-report ratios of
 * Table 4 (AIE ~62%, MemC ~23%, decoder < 0.1%) and the board-level
 * operating/dynamic split of Table 10 (45.5 W / 18.2 W).
 */

#ifndef RSN_CORE_POWER_HH
#define RSN_CORE_POWER_HH

#include <map>
#include <string>

#include "core/machine.hh"

namespace rsn::core {

/** Per-FU-type power constants (Watts at full activity). */
struct PowerParams {
    /** Dynamic W per MME at 100% compute utilization. Calibrated to the
     *  board-measured 18.2 W dynamic power at ~59%% utilization split by
     *  the Vivado-report ratios of Table 4 (the paper notes the Vivado
     *  absolute numbers are over-estimates). */
    double mme_dynamic = 3.2;
    /** Dynamic W per MemC; activity tracks the MM pipeline feeding it. */
    double memc_dynamic = 1.2;
    double memb_dynamic = 0.10;
    double mema_dynamic = 0.06;
    double ddr_dynamic = 0.10;
    double lpddr_dynamic = 0.06;
    double mesh_dynamic = 0.04;
    double decoder_dynamic = 0.03;
    /** Board static/idle power outside the datapath (PS, clocking,
     *  transceivers) for the operating-power figure. */
    double board_static = 27.3;
};

/** One row of the power breakdown. */
struct PowerRow {
    std::string component;
    double watts = 0;
    double percent = 0;
};

class PowerModel
{
  public:
    explicit PowerModel(PowerParams p = {}) : p_(p) {}

    /**
     * Estimated power breakdown by component for a finished run
     * (activity counters over r.ticks), Vivado-report style: datapath
     * components only, like Table 4.
     */
    std::vector<PowerRow> breakdown(RsnMachine &m,
                                    const RunResult &r) const;

    /** Total datapath (dynamic) power. */
    double dynamicWatts(RsnMachine &m, const RunResult &r) const;

    /** Operating power = dynamic + board static. */
    double operatingWatts(RsnMachine &m, const RunResult &r) const;

    /** Energy for the run in joules (operating or dynamic). */
    double energyJ(RsnMachine &m, const RunResult &r,
                   bool dynamic) const;

  private:
    PowerParams p_;
};

} // namespace rsn::core

#endif // RSN_CORE_POWER_HH
