/**
 * @file
 * Execution tracer: records per-FU kernel activity and DRAM transfers
 * during a run and exports them as Chrome trace-event JSON
 * (chrome://tracing / Perfetto), giving the simulator an equivalent of
 * the paper's device-level visualizations: one timeline row per FU,
 * one slice per kernel, with stall structure visible as gaps.
 *
 * Tracing hooks sample FU state on a fixed tick grid (cheap, bounded
 * memory) rather than instrumenting every kernel, so it can be attached
 * to any machine without touching the FU implementations.
 */

#ifndef RSN_CORE_TRACER_HH
#define RSN_CORE_TRACER_HH

#include <string>
#include <vector>

#include "core/machine.hh"

namespace rsn::core {

/** One recorded activity slice. */
struct TraceSlice {
    std::string track;   ///< FU name.
    std::string label;   ///< Kernel / state label.
    Tick begin = 0;
    Tick end = 0;
};

class Tracer
{
  public:
    /**
     * Attach to @p machine and sample every @p period ticks. Must be
     * constructed before RsnMachine::run (it schedules its own sampling
     * events on the machine's engine).
     */
    Tracer(RsnMachine &machine, Tick period = 256);

    /** Recorded slices (coalesced per FU). */
    const std::vector<TraceSlice> &slices() const { return slices_; }

    /** Samples taken. */
    std::uint64_t samples() const { return samples_; }

    /** Render as Chrome trace-event JSON (complete events, us scale). */
    std::string toChromeJson() const;

    /** Write the JSON to @p path; returns false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

  private:
    void sample();

    RsnMachine &mach_;
    Tick period_;
    std::uint64_t samples_ = 0;
    /** Open slice per FU index ("" = idle). */
    std::vector<std::string> open_label_;
    std::vector<Tick> open_since_;
    std::vector<TraceSlice> slices_;
};

} // namespace rsn::core

#endif // RSN_CORE_TRACER_HH
