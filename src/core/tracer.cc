#include "core/tracer.hh"

#include <cstdio>
#include <fstream>

namespace rsn::core {

Tracer::Tracer(RsnMachine &machine, Tick period)
    : mach_(machine), period_(period ? period : 1)
{
    open_label_.resize(mach_.fus().size());
    open_since_.resize(mach_.fus().size(), 0);
    // Seed the sampling loop; it reschedules itself while the machine
    // has pending events (i.e. until the run quiesces).
    mach_.engine().schedule(0, [this] { sample(); });
}

void
Tracer::sample()
{
    ++samples_;
    Tick now = mach_.engine().now();
    const auto &fus = mach_.fus();
    for (std::size_t i = 0; i < fus.size(); ++i) {
        const auto &f = *fus[i];
        std::string label;
        if (f.halted())
            label = "";
        else if (f.inKernel())
            label = "kernel";
        // Stalled-on-uop shows as idle (gap), matching how a hardware
        // timeline would look.
        if (label != open_label_[i]) {
            if (!open_label_[i].empty())
                slices_.push_back(TraceSlice{f.name(), open_label_[i],
                                             open_since_[i], now});
            open_label_[i] = label;
            open_since_[i] = now;
        }
    }
    if (!mach_.engine().idle())
        mach_.engine().schedule(period_, [this] { sample(); });
    else {
        // Close any open slices at quiesce.
        for (std::size_t i = 0; i < fus.size(); ++i) {
            if (!open_label_[i].empty()) {
                slices_.push_back(TraceSlice{fus[i]->name(),
                                             open_label_[i],
                                             open_since_[i], now});
                open_label_[i].clear();
            }
        }
    }
}

std::string
Tracer::toChromeJson() const
{
    // One process, one thread per FU track; durations in microseconds of
    // modeled time.
    const double us_per_tick = 1e6 / mach_.config().clocks.plHz;
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &s : slices_) {
        if (!first)
            out += ",\n";
        first = false;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                      s.label.c_str(), s.track.c_str(),
                      s.begin * us_per_tick,
                      (s.end - s.begin) * us_per_tick);
        out += buf;
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << toChromeJson();
    return bool(f);
}

} // namespace rsn::core
