#include "core/machine.hh"

#include "common/log.hh"
#include "fu/ddr_fus.hh"
#include "fu/kernel_registry.hh"
#include "fu/mem_fus.hh"
#include "fu/mesh.hh"
#include "fu/mme.hh"
#include "sim/tile_pool.hh"

namespace rsn::core {

namespace {

FuId
mme(int i)
{
    return {FuType::Mme, static_cast<std::uint8_t>(i)};
}
FuId
memA(int i)
{
    return {FuType::MemA, static_cast<std::uint8_t>(i)};
}
FuId
memB(int i)
{
    return {FuType::MemB, static_cast<std::uint8_t>(i)};
}
FuId
memC(int i)
{
    return {FuType::MemC, static_cast<std::uint8_t>(i)};
}

constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kMeshB{FuType::MeshB, 0};
constexpr FuId kDdr{FuType::Ddr, 0};
constexpr FuId kLpddr{FuType::Lpddr, 0};

/**
 * Gate on MachineConfig::validate() before any member that consumes the
 * configuration is built (DramChannel and the topology assert on bad
 * values mid-construction). cfg_ is the first member, so funneling the
 * copy through here turns every structural error into one catchable
 * std::runtime_error up front.
 */
const MachineConfig &
validatedOrFatal(const MachineConfig &cfg)
{
    if (Status s = cfg.validate(); !s.ok())
        rsn_fatal("invalid machine configuration: %s", s.message.c_str());
    return cfg;
}

} // namespace

net::Topology
buildRsnXnnTopology(const MachineConfig &cfg)
{
    net::Topology t;
    const auto &w = cfg.widths;
    const auto depth = cfg.stream_depth;

    t.addNode(kDdr);
    t.addNode(kLpddr);
    t.addNode(kMeshA);
    t.addNode(kMeshB);
    for (int i = 0; i < cfg.num_mme; ++i)
        t.addNode(mme(i));
    for (int i = 0; i < cfg.num_mem_a; ++i)
        t.addNode(memA(i));
    for (int i = 0; i < cfg.num_mem_b; ++i)
        t.addNode(memB(i));
    for (int i = 0; i < cfg.num_mem_c; ++i)
        t.addNode(memC(i));

    // DDR feature-map paths: LHS tiles into MemA, attention K/V into MemB,
    // residual tiles into MemC (union-datapath decisions, Sec. 4.2).
    for (int i = 0; i < cfg.num_mem_a; ++i)
        t.addEdge({kDdr, memA(i), w.ddr_to_mem, depth});
    for (int i = 0; i < cfg.num_mem_b; ++i)
        t.addEdge({kDdr, memB(i), w.ddr_to_mem, depth});
    for (int i = 0; i < cfg.num_mem_c; ++i)
        t.addEdge({kDdr, memC(i), w.ddr_to_mem, depth});

    // LPDDR weight/bias paths into MemB; LayerNorm parameters into MemC.
    for (int i = 0; i < cfg.num_mem_b; ++i)
        t.addEdge({kLpddr, memB(i), w.lpddr_to_mem, depth});
    for (int i = 0; i < cfg.num_mem_c; ++i)
        t.addEdge({kLpddr, memC(i), w.lpddr_to_mem, depth});

    // Scratchpads into the meshes.
    for (int i = 0; i < cfg.num_mem_a; ++i)
        t.addEdge({memA(i), kMeshA, w.mem_to_mesh, depth});
    for (int i = 0; i < cfg.num_mem_b; ++i)
        t.addEdge({memB(i), kMeshB, w.mem_to_mesh, depth});
    // MemC re-injection for dynamic layer pipelining (Table 1's "dynamic
    // chain of pipelined FUs").
    for (int i = 0; i < cfg.num_mem_c; ++i) {
        t.addEdge({memC(i), kMeshA, w.mem_to_mesh, depth});
        t.addEdge({memC(i), kMeshB, w.mem_to_mesh, depth});
    }

    // Meshes into the MMEs; each MME into its fixed MemC partner; MemC
    // store path back through the DDR FU.
    for (int i = 0; i < cfg.num_mme; ++i) {
        t.addEdge({kMeshA, mme(i), w.mesha_to_mme, depth});
        t.addEdge({kMeshB, mme(i), w.meshb_to_mme, depth});
        t.addEdge({mme(i), memC(i), w.mme_to_memc, depth});
    }
    for (int i = 0; i < cfg.num_mem_c; ++i)
        t.addEdge({memC(i), kDdr, w.memc_to_ddr, depth});

    t.validate();
    return t;
}

RsnMachine::RsnMachine(const MachineConfig &cfg)
    : cfg_(validatedOrFatal(cfg)), host_(cfg.functional),
      ddr_chan_(std::make_unique<mem::DramChannel>(eng_, cfg.ddr)),
      lpddr_chan_(std::make_unique<mem::DramChannel>(eng_, cfg.lpddr)),
      topo_(buildRsnXnnTopology(cfg))
{
    // Warm the thread-local tile pool and the kernel registry before
    // anything can hold tiles on this thread. Ordering matters at
    // thread exit: thread_local/static destruction is reverse order of
    // construction, so touching the pool here guarantees it outlives
    // every machine-holding object constructed later on this thread
    // (e.g. bench_util's cached BenchContext) — their destructors
    // retire tiles into a still-live pool. Registry warming keeps
    // sweep-lane first use off the startup-probe path entirely.
    sim::TilePool::instance();
    kernel::Registry::instance();
    eng_.setEventsPerTickBudget(cfg_.watchdog_events_per_tick);
    buildFus();
    buildStreams();
    decoder_ = std::make_unique<isa::DecoderUnit>(
        eng_, isa::DecoderUnit::Config{cfg.fetch_fifo_depth,
                                       cfg.decoder_ticks_per_packet,
                                       cfg.decoder_ticks_per_uop});
    for (auto &f : fus_)
        decoder_->attach(f.get());
    if (cfg_.fault.enabled()) {
        injector_ = std::make_unique<sim::FaultInjector>(cfg_.fault, eng_);
        for (auto &s : streams_)
            s->attachFaultInjector(injector_.get());
        ddr_chan_->attachFaultInjector(injector_.get());
        lpddr_chan_->attachFaultInjector(injector_.get());
        for (auto &f : fus_)
            f->setFaultInjector(injector_.get());
    }
}

void
RsnMachine::buildFus()
{
    fu::AieModel aie_model(cfg_.aie);
    for (int i = 0; i < cfg_.num_mme; ++i)
        fus_.push_back(std::make_unique<fu::MmeFu>(
            eng_, mme(i), aie_model, kMeshA, kMeshB, memC(i)));
    for (int i = 0; i < cfg_.num_mem_a; ++i)
        fus_.push_back(std::make_unique<fu::MemAFu>(eng_, memA(i),
                                                    kMeshA));
    for (int i = 0; i < cfg_.num_mem_b; ++i)
        fus_.push_back(std::make_unique<fu::MemBFu>(eng_, memB(i),
                                                    kMeshB));
    for (int i = 0; i < cfg_.num_mem_c; ++i)
        fus_.push_back(std::make_unique<fu::MemCFu>(
            eng_, memC(i), mme(i), kDdr, cfg_.memc_flops_per_tick));
    fus_.push_back(std::make_unique<fu::MeshFu>(eng_, kMeshA));
    fus_.push_back(std::make_unique<fu::MeshFu>(eng_, kMeshB));
    fus_.push_back(std::make_unique<fu::DdrFu>(
        eng_, kDdr, *ddr_chan_, host_, cfg_.offchip_layout));
    fus_.push_back(std::make_unique<fu::LpddrFu>(
        eng_, kLpddr, *lpddr_chan_, host_, cfg_.offchip_layout));
}

void
RsnMachine::buildStreams()
{
    for (const auto &e : topo_.edges()) {
        streams_.push_back(std::make_unique<sim::Stream>(
            eng_, e.bytes_per_tick, e.depth, e.name()));
        stream_edges_.push_back(e);
        sim::Stream *s = streams_.back().get();
        fu(e.src)->addOutput(e.dst, s);
        fu(e.dst)->addInput(e.src, s);
    }
}

fu::Fu *
RsnMachine::fu(FuId id)
{
    for (auto &f : fus_)
        if (f->id() == id)
            return f.get();
    rsn_panic("unknown FU %s", id.toString().c_str());
}

sim::Stream *
RsnMachine::stream(FuId src, FuId dst)
{
    for (std::size_t i = 0; i < streams_.size(); ++i)
        if (stream_edges_[i].src == src && stream_edges_[i].dst == dst)
            return streams_[i].get();
    return nullptr;
}

void
RsnMachine::reset()
{
    rsn_assert(resettable(),
               "reset of a machine whose run did not complete");
    rsn_assert(eng_.idle(), "reset with pending engine events");
    // FUs and the decoder first: their finished coroutine frames may
    // still hold chunk payloads that retire to the tile pool here.
    for (auto &f : fus_)
        f->reset();
    decoder_->reset();
    for (auto &s : streams_)
        s->reset();
    ddr_chan_->reset();
    lpddr_chan_->reset();
    host_.reset();
    if (injector_)
        injector_->reset();
    eng_.reset();
    ran_ = false;
    ran_completed_ = false;
}

void
RsnMachine::setFaultSeed(std::uint64_t seed)
{
    rsn_assert(resettable(),
               "setFaultSeed on a machine whose run did not complete");
    cfg_.fault.seed = seed;
    if (injector_)
        injector_->reseed(seed);
}

RunResult
RsnMachine::run(const isa::RsnProgram &prog, Tick max_ticks)
{
    rsn_assert(!ran_, "RsnMachine::run needs a fresh or reset() machine");
    ran_ = true;
    prog.validate();

    for (auto &f : fus_)
        f->start();
    decoder_->start(prog);

    bool quiesced = eng_.run(max_ticks);

    RunResult r;
    r.ticks = eng_.now();
    r.ms = ticksToMs(r.ticks, cfg_.clocks.plHz);
    bool all_halted = true;
    for (auto &f : fus_)
        all_halted &= f->halted();
    // A drained queue with coroutines still parked on a channel or
    // stream is a *silent* deadlock (nothing left to wake them); it must
    // not count as completion even when every FU happens to look done.
    bool drain_clean = quiesced && eng_.drainedClean();
    r.livelocked = eng_.watchdogTripped();
    r.fault_aborted = eng_.stopRequested();
    r.completed = quiesced && all_halted && decoder_->done() && drain_clean;
    r.deadlocked = quiesced && !r.completed && !r.fault_aborted;
    r.timed_out = !quiesced && !r.livelocked && !r.fault_aborted;
    ran_completed_ = r.completed;
    if (!r.completed) {
        r.diagnosis = stallReport();
        if (quiesced && !drain_clean)
            r.diagnosis += "parked waiters at drain (silent deadlock):\n" +
                           eng_.drainDiagnosis();
        else if (r.fault_aborted && !eng_.drainedClean())
            // The same waiter scan after a fault stop: names the dead
            // stream's lost chunks and the endpoints parked on them.
            r.diagnosis +=
                "parked waiters at fault stop:\n" + eng_.drainDiagnosis();
        if (r.livelocked)
            r.diagnosis +=
                "watchdog: tick " +
                std::to_string(static_cast<unsigned long long>(r.ticks)) +
                " exceeded the event budget without advancing time\n";
        if (r.fault_aborted && injector_ && injector_->firstHardFault())
            r.diagnosis += "hard fault: " +
                           injector_->firstHardFault()->toString() + "\n";
    }
    return r;
}

RunReport
RsnMachine::runChecked(const isa::RsnProgram &prog, Tick max_ticks)
{
    RunReport rep;
    {
        const kernel::Registry &reg = kernel::Registry::instance();
        rep.isa = reg.active().name;
        rep.isa_source = reg.selectionSource();
        rep.isa_probe = reg.probe().toString();
    }
    rep.result = run(prog, max_ticks);
    if (injector_) {
        rep.faults = injector_->log();
        rep.faults_injected = injector_->totalInjected();
    }
    const RunResult &r = rep.result;
    if (injector_ && injector_->hardFaulted())
        rep.status = Status::error(StatusCode::FaultDiagnosed,
                                   injector_->firstHardFault()->toString());
    else if (r.completed)
        rep.status = Status::success();
    else if (r.livelocked)
        rep.status = Status::error(StatusCode::Livelock, r.diagnosis);
    else if (r.timed_out)
        rep.status = Status::error(StatusCode::Timeout, r.diagnosis);
    else
        rep.status = Status::error(StatusCode::Deadlock, r.diagnosis);
    return rep;
}

std::string
RunReport::toString() const
{
    std::string s = status.toString();
    s += " after " +
         std::to_string(static_cast<unsigned long long>(result.ticks)) +
         " ticks";
    if (!isa.empty())
        s += "; kernels " + isa + " (" + isa_source + ")";
    if (faults_injected > 0) {
        s += "; " +
             std::to_string(static_cast<unsigned long long>(
                 faults_injected)) +
             " fault(s) injected";
        if (faults_injected > faults.size())
            s += " (log capped at " + std::to_string(faults.size()) + ")";
        for (const auto &f : faults)
            s += "\n  " + f.toString();
    }
    return s;
}

std::string
RsnMachine::stallReport() const
{
    std::string s = decoder_->stateString() + "\n";
    for (const auto &f : fus_)
        if (!f->halted())
            s += f->name() + ": " + f->stateString() + "\n";
    return s;
}

std::uint64_t
RsnMachine::totalFlops() const
{
    std::uint64_t total = 0;
    for (const auto &f : fus_)
        total += f->stats().flops;
    return total;
}

double
RsnMachine::achievedTflops(const RunResult &r) const
{
    if (r.ticks == 0)
        return 0;
    double secs = static_cast<double>(r.ticks) / cfg_.clocks.plHz;
    return totalFlops() / secs / 1e12;
}

double
RsnMachine::peakTflops() const
{
    fu::AieModel m(cfg_.aie);
    return m.peakFlopsPerMme() * cfg_.num_mme / 1e12;
}

double
RsnMachine::fuPeakTflops(FuId id) const
{
    if (id.type == FuType::Mme) {
        fu::AieModel m(cfg_.aie);
        return m.peakFlopsPerMme() / 1e12;
    }
    if (id.type == FuType::MemC)
        return cfg_.memc_flops_per_tick * cfg_.clocks.plHz / 1e12;
    return 0.0;
}

Bytes
RsnMachine::fuMemoryBytes(FuId id) const
{
    switch (id.type) {
      case FuType::Mme: return cfg_.memories.mme;
      case FuType::MemA: return cfg_.memories.mem_a;
      case FuType::MemB:
        return id.index < 2 ? cfg_.memories.mem_b01 : cfg_.memories.mem_b2;
      case FuType::MemC: return cfg_.memories.mem_c;
      default: return 0;
    }
}

} // namespace rsn::core
