#include "core/config.hh"

namespace rsn::core {

MachineConfig
MachineConfig::vck190(bool functional)
{
    MachineConfig cfg;
    // Off-chip channels: peak 25.6 GB/s DDR4 / 32 GB/s LPDDR4; the model
    // uses the achieved rates the paper measured (Sec. 5.3).
    cfg.ddr.name = "DDR";
    cfg.ddr.read_gbps = 21.0;
    cfg.ddr.write_gbps = 23.5;
    cfg.lpddr.name = "LPDDR";
    cfg.lpddr.read_gbps = 20.5;
    cfg.lpddr.write_gbps = 20.5;  // LPDDR is load-only in RSN-XNN.
    cfg.functional = functional;
    return cfg;
}

} // namespace rsn::core
