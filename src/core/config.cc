#include "core/config.hh"

#include <cmath>
#include <string>

namespace rsn::core {

namespace {

Status
invalid(const std::string &what)
{
    return Status::error(StatusCode::InvalidConfig, what);
}

bool
positiveFinite(double v)
{
    return std::isfinite(v) && v > 0;
}

} // namespace

Status
PrecisionPolicy::validate() const
{
    const struct {
        Dtype v;
        const char *name;
    } fields[] = {
        {linear_weights, "linear_weights"},
        {linear_activations, "linear_activations"},
        {attention_activations, "attention_activations"},
    };
    for (const auto &f : fields) {
        // I8 is reserved enum space: the datapath has no quantization
        // parameters (scale/zero-point plumbing) yet, so reject it up
        // front instead of failing in a kernel assert mid-run.
        if (f.v != Dtype::F32 && f.v != Dtype::Bf16 && f.v != Dtype::F16)
            return invalid(std::string("precision.") + f.name +
                           " must be one of f32|bf16|f16 (i8 is not "
                           "implemented by the datapath)");
    }
    return Status::success();
}

Status
MachineConfig::validate() const
{
    // FuId packs the per-type index into 8 bits, so counts are capped.
    auto checkCount = [](int n, const char *what) -> Status {
        if (n <= 0)
            return invalid(std::string(what) + " must be positive, got " +
                           std::to_string(n));
        if (n > 255)
            return invalid(std::string(what) + " exceeds FuId range (" +
                           std::to_string(n) + " > 255)");
        return Status::success();
    };
    if (Status s = checkCount(num_mme, "num_mme"); !s)
        return s;
    if (Status s = checkCount(num_mem_a, "num_mem_a"); !s)
        return s;
    if (Status s = checkCount(num_mem_b, "num_mem_b"); !s)
        return s;
    if (Status s = checkCount(num_mem_c, "num_mem_c"); !s)
        return s;
    // Each MME streams its accumulators to a dedicated partner MemC
    // (paper Fig. 4); the topology builder pairs them one-to-one.
    if (num_mem_c != num_mme)
        return invalid("num_mem_c must equal num_mme (each MME has a "
                       "partner MemC), got " + std::to_string(num_mem_c) +
                       " vs " + std::to_string(num_mme));

    if (!positiveFinite(clocks.plHz))
        return invalid("clocks.plHz must be positive and finite");
    if (!positiveFinite(clocks.aieHz))
        return invalid("clocks.aieHz must be positive and finite");

    auto checkDram = [](const mem::DramConfig &d) -> Status {
        if (!positiveFinite(d.read_gbps) || !positiveFinite(d.write_gbps))
            return invalid(d.name + " bandwidth must be positive and "
                           "finite");
        if (!positiveFinite(d.pl_hz))
            return invalid(d.name + " pl_hz must be positive and finite");
        return Status::success();
    };
    if (Status s = checkDram(ddr); !s)
        return s;
    if (Status s = checkDram(lpddr); !s)
        return s;

    const struct {
        double v;
        const char *name;
    } width_fields[] = {
        {widths.ddr_to_mem, "ddr_to_mem"},
        {widths.lpddr_to_mem, "lpddr_to_mem"},
        {widths.mem_to_mesh, "mem_to_mesh"},
        {widths.mesha_to_mme, "mesha_to_mme"},
        {widths.meshb_to_mme, "meshb_to_mme"},
        {widths.mme_to_memc, "mme_to_memc"},
        {widths.memc_to_ddr, "memc_to_ddr"},
    };
    for (const auto &w : width_fields)
        if (!positiveFinite(w.v))
            return invalid(std::string("stream width ") + w.name +
                           " must be positive and finite");

    if (!positiveFinite(memc_flops_per_tick))
        return invalid("memc_flops_per_tick must be positive and finite");

    if (stream_depth == 0)
        return invalid("stream_depth must be positive");
    if (uop_fifo_depth == 0)
        return invalid("uop_fifo_depth must be positive");
    if (fetch_fifo_depth == 0)
        return invalid("fetch_fifo_depth must be positive");
    if (decoder_ticks_per_packet == 0 || decoder_ticks_per_uop == 0)
        return invalid("decoder tick costs must be positive");
    if (watchdog_events_per_tick == 0)
        return invalid("watchdog_events_per_tick must be positive");

    if (Status s = precision.validate(); !s)
        return s;

    return fault.validate();
}

MachineConfig
MachineConfig::vck190(bool functional)
{
    MachineConfig cfg;
    // Off-chip channels: peak 25.6 GB/s DDR4 / 32 GB/s LPDDR4; the model
    // uses the achieved rates the paper measured (Sec. 5.3).
    cfg.ddr.name = "DDR";
    cfg.ddr.read_gbps = 21.0;
    cfg.ddr.write_gbps = 23.5;
    cfg.lpddr.name = "LPDDR";
    cfg.lpddr.read_gbps = 20.5;
    cfg.lpddr.write_gbps = 20.5;  // LPDDR is load-only in RSN-XNN.
    cfg.functional = functional;
    return cfg;
}

} // namespace rsn::core
