/**
 * @file
 * Structural area model for the overlay's control plane (paper Table 5a).
 *
 * The decoder unit's area scales with its structure: the fetch unit, one
 * second-level decoder per FU type, the per-FU uOP FIFOs, and the
 * packet FIFOs between levels. Constants are calibrated to the reported
 * RSN-XNN decoder footprint (11.7k LUT / 8.6k FF / 5 DSP / 4 BRAM,
 * roughly 3% of the design) and the model exposes how the overhead
 * scales when the datapath grows — something the paper's single data
 * point cannot show.
 */

#ifndef RSN_CORE_AREA_HH
#define RSN_CORE_AREA_HH

#include <cstdint>

#include "core/config.hh"

namespace rsn::core {

struct AreaBreakdown {
    std::uint32_t lut = 0;
    std::uint32_t ff = 0;
    std::uint32_t dsp = 0;
    std::uint32_t bram = 0;
};

/** Total RSN-XNN design footprint (Sec. 5, reported utilization). */
struct DesignArea {
    std::uint32_t lut = 494855;
    std::uint32_t ff = 598144;
    std::uint32_t dsp = 1073;
    std::uint32_t bram = 967;
    std::uint32_t uram = 463;
};

class AreaModel
{
  public:
    /** Decoder-unit area for a machine configuration. */
    static AreaBreakdown decoderArea(const MachineConfig &cfg);

    /** Decoder overhead as a percentage of the full design's LUTs. */
    static double decoderLutPercent(const MachineConfig &cfg,
                                    const DesignArea &design = {});
};

} // namespace rsn::core

#endif // RSN_CORE_AREA_HH
