#include "core/area.hh"

namespace rsn::core {

AreaBreakdown
AreaModel::decoderArea(const MachineConfig &cfg)
{
    AreaBreakdown a;

    // Fetch unit: header parse + dispatch mux over the FU types.
    a.lut += 1400;
    a.ff += 900;

    // Second-level decoders: window buffer + reuse counter + mOP-to-uOP
    // expansion; DDR/LPDDR expanders carry stride generators (the paper
    // notes the customized stride fields for off-chip FUs).
    const int types = kNumFuTypes;
    a.lut += 900 * types;
    a.ff += 600 * types;
    a.dsp += 2;  // stride address generators (DDR, LPDDR)

    // Per-FU third-level decoders + uOP FIFOs.
    const int fus = cfg.num_mme + cfg.num_mem_a + cfg.num_mem_b +
                    cfg.num_mem_c + 2 /*mesh*/ + 2 /*ddr, lpddr*/;
    a.lut += 140 * fus;
    a.ff += 120 * fus;

    // Packet FIFOs (BRAM when deep, LUTRAM when shallow).
    a.bram += static_cast<std::uint32_t>(
        (cfg.fetch_fifo_depth * types + 11) / 12);
    a.dsp += 3;  // decode-rate pacing counters

    return a;
}

double
AreaModel::decoderLutPercent(const MachineConfig &cfg,
                             const DesignArea &design)
{
    AreaBreakdown a = decoderArea(cfg);
    return 100.0 * a.lut / design.lut;
}

} // namespace rsn::core
