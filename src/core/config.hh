/**
 * @file
 * Machine configuration: clocks, DRAM rates, FU counts, link widths,
 * buffer capacities, and the AIE model — with a preset mirroring the
 * RSN-XNN prototype on the VCK190 (paper Secs. 4.1, 5, Fig. 16).
 */

#ifndef RSN_CORE_CONFIG_HH
#define RSN_CORE_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "common/dtype.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "fu/aie_model.hh"
#include "mem/dram.hh"
#include "mem/layout.hh"
#include "sim/fault.hh"

namespace rsn::core {

/** Link widths in bytes per PL tick (260 MHz: 1 GB/s = ~3.85 B/tick). */
struct StreamWidths {
    double ddr_to_mem = 127;     ///< DDR FU -> MemA/MemB/MemC (~33 GB/s).
    double lpddr_to_mem = 127;   ///< LPDDR FU -> MemB/MemC.
    double mem_to_mesh = 385;    ///< MemA/MemB/MemC -> mesh (~100 GB/s).
    double mesha_to_mme = 280;   ///< MeshA -> each MME (~73 GB/s).
    double meshb_to_mme = 192;   ///< MeshB -> each MME (~50 GB/s).
    double mme_to_memc = 385;    ///< MME -> partner MemC (~100 GB/s).
    double memc_to_ddr = 127;    ///< MemC -> DDR FU store path.

    bool operator==(const StreamWidths &) const = default;
};

/** Per-FU-type scratchpad capacities (Fig. 16), for reporting. */
struct FuMemories {
    Bytes mme = 590 * 1024;      ///< Per-MME AIE-local storage.
    Bytes mem_a = 256 * 1024;
    Bytes mem_b01 = 512 * 1024;  ///< MemB0/MemB1.
    Bytes mem_b2 = 256 * 1024;
    Bytes mem_c = 1024 * 1024;

    bool operator==(const FuMemories &) const = default;
};

/**
 * Per-operator-class element types for the typed-tile datapath
 * (docs/datapath.md "Typed tiles & precision policy"). Codegen stamps
 * these onto the load / MME / MemC uOPs, so a precision choice changes
 * wire and DRAM bytes (and therefore timing) end to end. Invariants
 * the datapath enforces regardless of policy: MME accumulators and
 * MemC's fused operators compute in FP32, and bias / LayerNorm
 * gamma-beta vectors are always loaded as FP32.
 *
 * The defaults are all-F32, which keeps the pre-typed golden tick
 * pins bit-exact: every uOP then carries the same dtype tags the
 * untyped datapath implicitly had.
 */
struct PrecisionPolicy {
    Dtype linear_weights = Dtype::F32;        ///< LPDDR weight tiles.
    Dtype linear_activations = Dtype::F32;    ///< Linear-layer acts.
    Dtype attention_activations = Dtype::F32; ///< Q/K/V, scores, ctx.

    bool operator==(const PrecisionPolicy &) const = default;

    Status validate() const;
};

struct MachineConfig {
    int num_mme = 6;
    int num_mem_a = 3;
    int num_mem_b = 3;
    int num_mem_c = 6;

    ClockSpec clocks;
    mem::DramConfig ddr;
    mem::DramConfig lpddr;
    fu::AieModelParams aie;
    StreamWidths widths;
    FuMemories memories;

    /** Non-MM processing rate of one MemC (0.072 TFLOPS / 260 MHz). */
    double memc_flops_per_tick = 277;

    std::size_t stream_depth = 2;      ///< Chunks per stream FIFO.
    std::size_t uop_fifo_depth = 6;    ///< Per-FU uOP queue (Sec. 3.3).
    /**
     * Fetch -> type-decoder FIFOs, in packets. The paper reports depth 6
     * deadlock-free for its instruction ordering; this generator's
     * window/reuse packing puts more uOPs in one packet, so equivalent
     * slack needs a slightly deeper packet FIFO (8 suffices across the
     * evaluated workloads; 12 adds margin). bench_ablation_fifo sweeps
     * this and reproduces the deadlock below the threshold.
     */
    std::size_t fetch_fifo_depth = 12;
    Tick decoder_ticks_per_packet = 4;
    Tick decoder_ticks_per_uop = 2;

    mem::LayoutKind offchip_layout = mem::LayoutKind::Blocked;
    bool functional = false;  ///< Carry typed payloads through the network.

    /** Per-op element types; all-F32 by default (see PrecisionPolicy). */
    PrecisionPolicy precision;

    /** Fault-injection plan; disabled (all rates zero) by default. */
    sim::FaultSpec fault;

    /**
     * Livelock watchdog: abort a run when one tick processes this many
     * events without time advancing (Engine::setEventsPerTickBudget).
     * The default is far above anything a legal program reaches — the
     * full BERT-Large run averages ~30 events/tick — so it only fires
     * on genuine zero-delay wakeup cycles.
     */
    std::uint64_t watchdog_events_per_tick = 50'000'000;

    /** Member-wise equality (bench_util reuses a machine across equal
     *  configurations instead of rebuilding the datapath). */
    bool operator==(const MachineConfig &) const = default;

    /**
     * Equality modulo fault.seed: true when the two configs build the
     * same datapath and arm the same fault sources, differing only in
     * the fault schedule. A cached machine can serve such a config via
     * reset() + setFaultSeed() instead of a rebuild (lib/sweep.hh lane
     * reuse; the serving scheduler salts the seed per request).
     */
    bool
    equalsIgnoringFaultSeed(const MachineConfig &o) const
    {
        MachineConfig a = *this;
        a.fault.seed = o.fault.seed;
        return a == o;
    }

    /**
     * Structural sanity check, run by RsnMachine before any topology is
     * built: FU counts, rates, widths and depths that used to fail as
     * mid-run asserts are rejected up front with a diagnosable Status.
     */
    Status validate() const;

    /** The RSN-XNN prototype configuration. */
    static MachineConfig vck190(bool functional = false);
};

} // namespace rsn::core

#endif // RSN_CORE_CONFIG_HH
