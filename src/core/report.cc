#include "core/report.hh"

#include <algorithm>

namespace rsn::core {

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

void
Table::print() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    std::printf("\n%s\n", title_.c_str());
    auto rule = [&] {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            std::printf("+");
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::printf("-");
        }
        std::printf("+\n");
    };
    rule();
    for (std::size_t c = 0; c < header_.size(); ++c)
        std::printf("| %-*s ", int(width[c]), header_[c].c_str());
    std::printf("|\n");
    rule();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < header_.size(); ++c)
            std::printf("| %-*s ", int(width[c]), r[c].c_str());
        std::printf("|\n");
    }
    rule();
}

void
banner(const std::string &text)
{
    std::printf("\n=== %s ===\n", text.c_str());
}

} // namespace rsn::core
