#include "core/power.hh"

#include <algorithm>

namespace rsn::core {

std::vector<PowerRow>
PowerModel::breakdown(RsnMachine &m, const RunResult &r) const
{
    if (r.ticks == 0)
        return {};
    const double secs = r.ticks / m.config().clocks.plHz;

    // Activity-based utilization: kernel-resident time includes stream
    // stalls, so compute FUs scale by FLOPs against their peak and
    // movers/scratchpads by bytes against their aggregate link rate.
    auto compute_util = [&](const fu::Fu &f) {
        double peak = m.fuPeakTflops(f.id()) * 1e12 * secs;
        return peak > 0 ? std::min(1.0, f.stats().flops / peak) : 0.0;
    };
    // MemC activity tracks the MM pipeline that feeds it: one slab per
    // MME tile, plus the fused non-MM operators.
    const double mm_util = std::min(
        1.0, m.totalFlops() / (m.peakTflops() * 1e12 * secs));
    auto stream_util = [&](const fu::Fu &f) {
        double link_bytes = m.topology().aggregateBandwidth(f.id()) *
                            double(r.ticks);
        double moved = double(f.stats().bytes_in) + f.stats().bytes_out;
        return link_bytes > 0 ? std::min(1.0, moved / link_bytes) : 0.0;
    };

    std::map<std::string, double> acc;
    for (const auto &f : m.fus()) {
        double w = 0;
        switch (f->id().type) {
          case FuType::Mme:
            w = p_.mme_dynamic * compute_util(*f);
            break;
          case FuType::MemC:
            w = p_.memc_dynamic *
                std::max({compute_util(*f), stream_util(*f), mm_util});
            break;
          case FuType::MemB: w = p_.memb_dynamic * stream_util(*f);
            break;
          case FuType::MemA: w = p_.mema_dynamic * stream_util(*f);
            break;
          case FuType::Ddr:
            w = p_.ddr_dynamic *
                m.ddrChannel().utilization(r.ticks);
            break;
          case FuType::Lpddr:
            w = p_.lpddr_dynamic *
                m.lpddrChannel().utilization(r.ticks);
            break;
          case FuType::MeshA:
          case FuType::MeshB:
            w = p_.mesh_dynamic * stream_util(*f);
            break;
          default: break;
        }
        std::string key = f->id().type == FuType::MeshA ? "MeshA"
                          : f->id().type == FuType::MeshB
                              ? "MeshB"
                              : fuTypeName(f->id().type);
        if (f->id().type == FuType::Mme)
            key = "AIE";
        acc[key] += w;
    }
    // Decoder activity scales with instruction processing.
    double dec_util =
        r.ticks ? std::min(1.0, double(m.decoder().uopsIssued()) *
                                    m.config().decoder_ticks_per_uop /
                                    r.ticks)
                : 0.0;
    acc["Decoder"] = p_.decoder_dynamic * dec_util;

    double total = 0;
    for (auto &[k, v] : acc)
        total += v;

    std::vector<PowerRow> rows;
    for (auto &[k, v] : acc)
        rows.push_back({k, v, total > 0 ? v / total * 100.0 : 0.0});
    std::sort(rows.begin(), rows.end(),
              [](const PowerRow &a, const PowerRow &b) {
                  return a.watts > b.watts;
              });
    return rows;
}

double
PowerModel::dynamicWatts(RsnMachine &m, const RunResult &r) const
{
    double total = 0;
    for (const auto &row : breakdown(m, r))
        total += row.watts;
    return total;
}

double
PowerModel::operatingWatts(RsnMachine &m, const RunResult &r) const
{
    return dynamicWatts(m, r) + p_.board_static;
}

double
PowerModel::energyJ(RsnMachine &m, const RunResult &r, bool dynamic) const
{
    double w = dynamic ? dynamicWatts(m, r) : operatingWatts(m, r);
    return w * r.ms / 1e3;
}

} // namespace rsn::core
