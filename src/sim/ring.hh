/**
 * @file
 * Ring: a power-of-two FIFO ring buffer with amortized O(1) push/pop.
 *
 * Replacement for std::deque on the sim hot paths (channel payloads,
 * blocked-waiter queues): a deque pays block-map indexing on every access,
 * while the ring is a single masked index into contiguous storage that is
 * recycled in place — after warmup, pushes and pops never allocate.
 *
 * T must be default-constructible and movable; slots hold moved-from
 * values after a pop, which for the sim's payload types (ints, coroutine
 * handles, Chunks) is free.
 */

#ifndef RSN_SIM_RING_HH
#define RSN_SIM_RING_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace rsn::sim {

template <typename T>
class Ring
{
  public:
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }

    // front/pop_front/drop_front are forced inline: they sit inside the
    // engine's per-event delivery loop, and under LTO the global inline
    // budget can otherwise evict them once unrelated code grows.
    [[gnu::always_inline]] T &front()
    {
        rsn_assert(!empty(), "ring underflow");
        return buf_[head_ & mask()];
    }

    void
    push_back(T v)
    {
        if (size() == buf_.size())
            grow();
        buf_[tail_++ & mask()] = std::move(v);
    }

    [[gnu::always_inline]] T
    pop_front()
    {
        rsn_assert(!empty(), "ring underflow");
        return std::move(buf_[head_++ & mask()]);
    }

    /**
     * Retire the front slot without moving it out. For callers that
     * already consumed the front through front() — the slot keeps its
     * moved-from value, exactly as after pop_front().
     */
    [[gnu::always_inline]] void
    drop_front()
    {
        rsn_assert(!empty(), "ring underflow");
        ++head_;
    }

  private:
    std::size_t mask() const { return buf_.size() - 1; }

    void
    grow()
    {
        std::vector<T> bigger(buf_.empty() ? kMinCapacity : buf_.size() * 2);
        std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = std::move(buf_[(head_ + i) & mask()]);
        buf_.swap(bigger);
        head_ = 0;
        tail_ = n;
    }

    static constexpr std::size_t kMinCapacity = 8;  // power of two

    std::vector<T> buf_;
    std::uint64_t head_ = 0;  ///< Free-running; index = head_ & mask().
    std::uint64_t tail_ = 0;
};

} // namespace rsn::sim

#endif // RSN_SIM_RING_HH
