#include "sim/fault.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"
#include "sim/chunk.hh"
#include "sim/engine.hh"

namespace rsn::sim {

namespace {

/** SplitMix64 finalizer: the bit mixer behind every fault decision. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Salt bases keeping the per-purpose decision streams independent. */
enum Salt : std::uint64_t {
    kSaltStallFire = 0x10,
    kSaltStallLen = 0x20,
    kSaltLinkDrop = 0x1000,    // + attempt
    kSaltDramFail = 0x2000,    // + attempt
    kSaltFlipFire = 0x30,
    kSaltFlipBit = 0x40,
};

std::string
formatTicks(Tick t)
{
    return std::to_string(static_cast<unsigned long long>(t));
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::LinkStall: return "link-stall";
      case FaultKind::LinkRetry: return "link-retry";
      case FaultKind::LinkDead: return "link-dead";
      case FaultKind::DramRetry: return "dram-retry";
      case FaultKind::DramDead: return "dram-dead";
      case FaultKind::BitFlip: return "bit-flip";
      case FaultKind::ChecksumMismatch: return "checksum-mismatch";
    }
    return "unknown";
}

std::string
FaultRecord::toString() const
{
    return "[tick " + formatTicks(tick) + "] " + faultKindName(kind) +
           " at " + site + " (decision #" +
           std::to_string(static_cast<unsigned long long>(seq)) + ")" +
           (detail.empty() ? "" : ": " + detail);
}

// ------------------------------------------------------------ FaultSpec --

Status
FaultSpec::validate() const
{
    auto err = [](std::string m) {
        return Status::error(StatusCode::InvalidConfig, std::move(m));
    };
    auto rate_ok = [](double r) {
        return std::isfinite(r) && r >= 0.0 && r <= 1.0;
    };
    if (!rate_ok(link_stall_rate) || !rate_ok(link_drop_rate) ||
        !rate_ok(dram_rate) || !rate_ok(flip_rate))
        return err("fault rates must be probabilities in [0, 1]");
    if (link_stall_rate > 0 && link_stall_max == 0)
        return err("link_stall_max must be >= 1 when stalls are armed");
    if (max_retries > 30)
        return err("max_retries must be <= 30");
    if (backoff_base > (Tick(1) << 40))
        return err("backoff_base is implausibly large");
    if (window_begin > window_end)
        return err("fault window is empty (begin > end)");
    return Status::success();
}

std::string
FaultSpec::toString() const
{
    std::string s = "seed=" + std::to_string(seed);
    auto add = [&s](const char *k, double v) {
        if (v > 0)
            s += std::string(",") + k + "=" + std::to_string(v);
    };
    add("link_stall", link_stall_rate);
    if (link_stall_rate > 0)
        s += ",stall_max=" + formatTicks(link_stall_max);
    add("link_drop", link_drop_rate);
    add("dram", dram_rate);
    add("flip", flip_rate);
    s += ",retries=" + std::to_string(max_retries);
    s += ",backoff=" + formatTicks(backoff_base);
    if (window_begin != 0 || window_end != kTickMax)
        s += ",window=" + formatTicks(window_begin) + ":" +
             formatTicks(window_end);
    if (checksums)
        s += ",checksums=1";
    return s;
}

FaultSpec
FaultSpec::chaosPreset(std::uint64_t seed)
{
    FaultSpec f;
    f.seed = seed;
    f.link_stall_rate = 0.02;
    f.link_stall_max = 64;
    f.link_drop_rate = 0.01;
    f.dram_rate = 0.02;
    f.flip_rate = 0.002;
    f.max_retries = 6;
    f.backoff_base = 32;
    return f;
}

FaultSpec
FaultSpec::parse(const std::string &text, Status *status)
{
    FaultSpec spec;
    auto fail = [&](const std::string &why) {
        if (status)
            *status = Status::error(StatusCode::InvalidConfig,
                                    "bad fault spec '" + text + "': " + why);
        return FaultSpec{};
    };
    if (status)
        *status = Status::success();
    if (text == "chaos")
        return chaosPreset(0);

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string kv = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (kv.empty())
            continue;
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got '" + kv + "'");
        std::string key = kv.substr(0, eq);
        std::string val = kv.substr(eq + 1);
        try {
            if (key == "seed")
                spec.seed = std::stoull(val);
            else if (key == "link_stall")
                spec.link_stall_rate = std::stod(val);
            else if (key == "stall_max")
                spec.link_stall_max = std::stoull(val);
            else if (key == "link_drop")
                spec.link_drop_rate = std::stod(val);
            else if (key == "dram")
                spec.dram_rate = std::stod(val);
            else if (key == "flip")
                spec.flip_rate = std::stod(val);
            else if (key == "retries")
                spec.max_retries =
                    static_cast<std::uint32_t>(std::stoul(val));
            else if (key == "backoff")
                spec.backoff_base = std::stoull(val);
            else if (key == "checksums")
                spec.checksums = std::stoul(val) != 0;
            else if (key == "window") {
                std::size_t colon = val.find(':');
                if (colon == std::string::npos)
                    return fail("window wants begin:end");
                spec.window_begin = std::stoull(val.substr(0, colon));
                spec.window_end = std::stoull(val.substr(colon + 1));
            } else {
                return fail("unknown key '" + key + "'");
            }
        } catch (const std::exception &) {
            return fail("unparsable value '" + val + "' for '" + key + "'");
        }
    }
    if (Status v = spec.validate(); !v.ok())
        return fail(v.message);
    return spec;
}

// -------------------------------------------------------- FaultInjector --

FaultInjector::FaultInjector(const FaultSpec &spec, Engine &eng)
    : spec_(spec), eng_(eng), checksums_on_(spec.checksumsOn())
{
    Status v = spec_.validate();
    rsn_assert(v.ok(), "FaultInjector built from invalid spec: %s",
               v.toString().c_str());
}

void
FaultInjector::reset()
{
    for (Site &s : sites_)
        s.seq = 0;
    protected_.clear();
    log_.clear();
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    hard_fault_ = {};
    hard_faulted_ = false;
}

void
FaultInjector::reseed(std::uint64_t seed)
{
    checkOwner("reseed");
    spec_.seed = seed;
    reset();
}

FaultInjector::SiteId
FaultInjector::registerSite(const std::string &name)
{
    checkOwner("registerSite");
    sites_.push_back(Site{name, fnv1a64(name), 0});
    return static_cast<SiteId>(sites_.size() - 1);
}

void
FaultInjector::checkOwner(const char *op) const
{
#if RSN_FAULT_OWNER_CHECKS
    rsn_assert(std::this_thread::get_id() == owner_,
               "FaultInjector::%s from a foreign thread — injectors are "
               "lane-owned, one per machine (docs/datapath.md, threading "
               "contract)", op);
#else
    (void)op;
#endif
}

std::uint64_t
FaultInjector::bits(const Site &site, std::uint64_t seq,
                    std::uint64_t salt) const
{
    // Pure function of (seed, site name, sequence, purpose): the schedule
    // is bit-identical for a seed regardless of registration order or
    // wall-clock anything.
    return mix64(spec_.seed ^ mix64(site.hash + seq * 0x9e3779b97f4a7c15ull +
                                    salt));
}

double
FaultInjector::draw(const Site &site, std::uint64_t seq,
                    std::uint64_t salt) const
{
    return static_cast<double>(bits(site, seq, salt) >> 11) * 0x1.0p-53;
}

void
FaultInjector::record(FaultKind kind, const Site &site, std::uint64_t seq,
                      std::string detail)
{
    ++counts_[static_cast<int>(kind)];
    ++total_;
    if (log_.size() < kMaxLogRecords)
        log_.push_back(FaultRecord{kind, eng_.now(), site.name, seq,
                                   std::move(detail)});
}

void
FaultInjector::hardFault(FaultKind kind, const Site &site, std::uint64_t seq,
                         std::string detail)
{
    record(kind, site, seq, detail);
    if (!hard_faulted_) {
        hard_faulted_ = true;
        hard_fault_ = FaultRecord{kind, eng_.now(), site.name, seq,
                                  std::move(detail)};
    }
    // End the *run*, not the process: the engine stops at the next batch
    // boundary and the machine reports a structured diagnosis.
    eng_.requestStop();
}

FaultInjector::Outcome
FaultInjector::retryOutcome(Site &site, std::uint64_t seq, double rate,
                            Tick attempt_ticks, std::uint64_t salt,
                            FaultKind transient, FaultKind dead)
{
    Outcome o;
    if (rate <= 0)
        return o;
    std::uint32_t fails = 0;
    while (fails <= spec_.max_retries &&
           draw(site, seq, salt + fails) < rate)
        ++fails;
    if (fails == 0)
        return o;
    if (fails > spec_.max_retries) {
        // Every attempt failed: the site burned all retries (occupancy
        // and backoff still accrue — failure costs time) and gave up.
        o.dead = true;
        o.retries = spec_.max_retries;
        for (std::uint32_t i = 0; i < spec_.max_retries; ++i)
            o.extra += attempt_ticks + backoff(i);
        hardFault(dead, site, seq,
                  "gave up after " + std::to_string(spec_.max_retries + 1) +
                      " attempts");
        return o;
    }
    o.retries = fails;
    for (std::uint32_t i = 0; i < fails; ++i)
        o.extra += attempt_ticks + backoff(i);
    record(transient, site, seq,
           std::to_string(fails) + " retr" + (fails == 1 ? "y" : "ies") +
               ", +" + formatTicks(o.extra) + " ticks");
    return o;
}

FaultInjector::Outcome
FaultInjector::onLinkAdmit(SiteId s, Tick xfer_ticks)
{
    checkOwner("onLinkAdmit");
    Site &site = sites_[s];
    std::uint64_t seq = site.seq++;
    if (!inWindow(eng_.now()))
        return {};
    Outcome o;
    if (spec_.link_stall_rate > 0 &&
        draw(site, seq, kSaltStallFire) < spec_.link_stall_rate) {
        Tick stall = 1 + bits(site, seq, kSaltStallLen) %
                             spec_.link_stall_max;
        o.extra += stall;
        record(FaultKind::LinkStall, site, seq,
               "+" + formatTicks(stall) + " ticks");
    }
    Outcome drops =
        retryOutcome(site, seq, spec_.link_drop_rate, xfer_ticks,
                     kSaltLinkDrop, FaultKind::LinkRetry,
                     FaultKind::LinkDead);
    o.extra += drops.extra;
    o.retries = drops.retries;
    o.dead = drops.dead;
    return o;
}

FaultInjector::Outcome
FaultInjector::onDramAccess(SiteId s, Tick service_ticks)
{
    checkOwner("onDramAccess");
    Site &site = sites_[s];
    std::uint64_t seq = site.seq++;
    if (!inWindow(eng_.now()))
        return {};
    return retryOutcome(site, seq, spec_.dram_rate, service_ticks,
                        kSaltDramFail, FaultKind::DramRetry,
                        FaultKind::DramDead);
}

void
FaultInjector::stampChecksum(SiteId s, Chunk &c)
{
    (void)s;
    checkOwner("stampChecksum");
    if (!checksums_on_ || !c.hasData())
        return;
    // The payload moves through the network by reference (pooled tile),
    // so its buffer pointer is its identity. Every stamped payload is
    // consumed by exactly one Mem-FU ingress (docs/robustness.md), which
    // erases the entry — the pool cannot recycle the buffer while the
    // in-flight chunk holds its reference, so keys never go stale. The
    // hash covers the tile's byte window, whatever its dtype.
    protected_[c.data.raw()] = payloadChecksum(c.data.raw(), c.bytes());
}

void
FaultInjector::ingressCheck(SiteId s, Chunk &c)
{
    checkOwner("ingressCheck");
    if (!checksums_on_ || !c.hasData())
        return;
    auto it = protected_.find(c.data.raw());
    if (it == protected_.end())
        return;
    const std::uint32_t expect = it->second;
    protected_.erase(it);

    Site &site = sites_[s];
    std::uint64_t seq = site.seq++;
    if (spec_.flip_rate > 0 && inWindow(eng_.now()) &&
        draw(site, seq, kSaltFlipFire) < spec_.flip_rate) {
        // Corrupt one bit of the payload (copy-on-write if shared), then
        // let the verification below catch it — flips are only injected
        // into protected chunks, so corruption is always detected. The
        // flip targets the byte window, so a typed tile's upper bytes
        // are just as exposed as a float's.
        const std::uint64_t nbytes = c.bytes();
        std::uint64_t target = bits(site, seq, kSaltFlipBit);
        std::uint64_t byte = target % nbytes;
        std::uint32_t bit = static_cast<std::uint32_t>(
            (target / nbytes) % 8);
        auto *p = static_cast<unsigned char *>(
            c.data.ensureUniqueRaw(c.elems()));
        p[byte] ^= static_cast<unsigned char>(1u << bit);
        record(FaultKind::BitFlip, site, seq,
               "byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit));
    }
    if (payloadChecksum(c.data.raw(), c.bytes()) != expect)
        hardFault(FaultKind::ChecksumMismatch, site, seq,
                  "payload corrupted in transit (" +
                      std::to_string(c.rows) + "x" +
                      std::to_string(c.cols) + " tile)");
}

std::uint32_t
payloadChecksum(const void *p, std::uint64_t bytes)
{
    const auto *b = static_cast<const unsigned char *>(p);
    std::uint32_t h = 0x811c9dc5u;
    for (std::uint64_t i = 0; i < bytes; ++i) {
        h ^= b[i];
        h *= 0x01000193u;
    }
    return h ? h : 1;
}

} // namespace rsn::sim
