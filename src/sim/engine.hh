/**
 * @file
 * Discrete-event simulation engine. Time is measured in PL clock ticks.
 *
 * ## Event slots
 *
 * Events live in POD slots inside a recycling arena. Each slot carries a
 * tagged union: a bare `std::coroutine_handle<>` (the fast path — resuming
 * a suspended coroutine is the dominant event in every simulation) or a
 * small-buffer-optimized callable (the `schedule()` fallback). Slots at
 * the same tick form an intrusive FIFO list through their `next` index.
 *
 * ## Two-level queue: hierarchical timing wheel + overflow heap
 *
 * Pending ticks are organized as a 4-level timing wheel (256 buckets per
 * level, so level L buckets span 256^L ticks) aligned to the wheel base.
 * Scheduling appends to the bucket whose level is the highest byte in
 * which the target tick differs from the base — O(1) with a bitmap of
 * occupied buckets per level. As time advances into a higher-level
 * bucket's segment, that bucket cascades its events one level down (each
 * event moves at most 3 times). A level-0 bucket holds exactly one tick,
 * so its intrusive list *is* the tick's FIFO batch. Ticks beyond the
 * base's 2^32-aligned super-segment (crossed once per ~16 simulated
 * seconds at 260 MHz, whatever the delta) overflow into a min-heap of
 * distinct ticks plus a flat hash index (TickIndex) and migrate into
 * the wheel segment-by-segment.
 * A "now-queue" fast path appends zero-delay events directly to the batch
 * currently being drained, which is how channel/stream wakeups
 * (`resumeNow`) bypass the wheel entirely.
 *
 * ## Allocation-free invariant
 *
 * In steady state the schedule/dispatch path performs **zero heap
 * allocations**: slots are recycled through a free list, the wheel is
 * fixed-size inline storage, and coroutine resumption stores nothing but
 * the handle. The only allocating paths are (a) one-time growth of the
 * arena / free list, amortized away after warmup, and (b) `schedule()`
 * callables that are too large or not trivially copyable for the inline
 * buffer, which fall back to the heap (`std::function` lands there).
 *
 * ## Ordering contract
 *
 * Events at the same tick run in FIFO order of scheduling — including
 * events scheduled *at the current tick during dispatch*, which run after
 * everything already queued for that tick. Cascades preserve intra-bucket
 * list order and segments are aligned, so an event can never be scheduled
 * into a same-tick bucket "ahead of" an earlier event still waiting at a
 * higher level. This makes simulations fully deterministic and is pinned
 * by tests/sim/test_engine_stress.cc against a reference
 * single-priority-queue engine with (tick, sequence) ordering.
 *
 * ## Tick-limit contract (run)
 *
 * `run(max_ticks)` executes batches whose tick is <= max_ticks. If the
 * next pending event lies beyond the limit, run() returns false and
 * leaves `now()` at max(now(), max_ticks): a limit in the past never
 * rewinds time. If the queue drains, run() returns true and `now()`
 * stays at the tick of the last executed event. Ticks must be < kTickMax,
 * which is reserved as the "no limit" sentinel.
 *
 * ## Watchdog and stop requests
 *
 * A drained queue is necessary but not *sufficient* for a healthy finish:
 * a coroutine parked on a channel or stream that nobody will ever wake
 * holds no pending event, so run() historically returned true on such a
 * silent deadlock. Primitives with parked parties now register as
 * Waitable; after a drain the caller asks `drainedClean()` /
 * `drainDiagnosis()` to detect and name stuck endpoints. Two run-loop
 * guards complete the contract: `requestStop()` (used by the fault
 * injector on an unrecoverable fault) aborts at the next batch boundary,
 * and a per-tick event budget (`setEventsPerTickBudget`) trips
 * `watchdogTripped()` when a single tick dispatches pathologically many
 * events — a zero-delay livelock that would otherwise hang forever.
 * Both guards make run() return false; see docs/robustness.md.
 */

#ifndef RSN_SIM_ENGINE_HH
#define RSN_SIM_ENGINE_HH

#include <array>
#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/tick_index.hh"

namespace rsn::sim {

/**
 * Registry record for a primitive that can hold parked coroutines
 * (Channel, Stream). The engine keeps these so that a drained event
 * queue can be checked for silent deadlocks: waiters that no pending
 * event will ever wake. Deliberately type-erased function pointers, not
 * a virtual base — a vtable pointer would shift every hot member of
 * Channel/Stream and cost measurable data-plane throughput for what is
 * a post-run-only query surface.
 */
struct WaitableRec {
    const void *obj;
    /** True when nothing is parked on (or lost in) the primitive. */
    bool (*quiet)(const void *);
    /** Name the stuck endpoints for a deadlock diagnosis. */
    std::string (*describe)(const void *);
};

/** Discrete-event engine; see file comment. */
class Engine
{
  public:
    /** Inline slot storage for schedule() callables; larger or
     *  non-trivially-copyable ones fall back to the heap. Sized so a Slot
     *  is exactly one cache line. */
    static constexpr std::size_t kInlineFnSize = 32;

    Engine() = default;
    ~Engine();
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&fn)
    {
        scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    template <typename F>
    void
    scheduleAt(Tick when, F &&fn)
    {
        using Fn = std::decay_t<F>;
        Slot &s = slotFor(when);
        if constexpr (sizeof(Fn) <= kInlineFnSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(s.u.fn)) Fn(std::forward<F>(fn));
            s.invoke = [](Slot &sl) {
                (*std::launder(reinterpret_cast<Fn *>(sl.u.fn)))();
            };
            s.kind = Kind::Inline;
        } else {
            s.u.heap = new Fn(std::forward<F>(fn));
            s.invoke = [](Slot &sl) { (*static_cast<Fn *>(sl.u.heap))(); };
            s.cleanup = [](Slot &sl) { delete static_cast<Fn *>(sl.u.heap); };
            s.kind = Kind::Heap;
        }
    }

    /** Schedule resumption of a coroutine at absolute tick @p when. */
    void
    resumeAt(Tick when, std::coroutine_handle<> h)
    {
        Slot &s = slotFor(when);
        s.u.coro = h;
        s.kind = Kind::Coro;
    }

    /**
     * Schedule a raw callback at absolute tick @p when. This is the
     * cheapest non-coroutine event: dispatch reads two pointers and
     * calls, with none of the slot-copy or cleanup bookkeeping of
     * schedule(). Used by the stream link scheduler's per-chunk
     * completion events.
     */
    void
    callAt(Tick when, void (*fn)(void *), void *arg)
    {
        Slot &s = slotFor(when);
        s.u.pair.fn = fn;
        s.u.pair.arg = arg;
        s.kind = Kind::Ptr;
    }

    /** Schedule resumption of a coroutine @p delay ticks from now. */
    void
    resumeAfter(Tick delay, std::coroutine_handle<> h)
    {
        resumeAt(now_ + delay, h);
    }

    /**
     * Resume @p h at the current tick, after all events already queued for
     * it (same-tick FIFO). This is the zero-delay now-queue fast path used
     * by channel/stream wakeups: during dispatch it is a single append to
     * the draining batch, with no wheel or heap traffic.
     */
    [[gnu::always_inline]] inline void
    resumeNow(std::coroutine_handle<> h)
    {
        // Cold branch out of line: the idle-engine case drags the whole
        // wheel-insertion path into this function's inline cost and can
        // push the per-delivery hot append out of callers (measured on
        // BM_StreamChunkTransfer; hence also the always_inline above —
        // once the translation unit nears gcc's inline-growth cap this
        // is the first hot function the heuristic abandons).
        if (!draining_) [[unlikely]] {
            resumeNowIdle(h);
            return;
        }
        std::uint32_t idx = grabSlot();
        Slot &s = arena_[idx];
        s.u.coro = h;
        s.when = now_;
        s.next = kNil;
        s.kind = Kind::Coro;
        ++pending_;
        arena_[active_tail_].next = idx;
        active_tail_ = idx;
    }

    /**
     * Run events until the queue is empty or @p max_ticks is reached.
     * See the tick-limit contract in the file comment.
     *
     * @return true if the queue drained (simulation quiesced), false if the
     *         tick limit stopped execution first.
     */
    bool run(Tick max_ticks = kTickMax);

    /**
     * Rewind simulated time to tick 0 for a fresh run. Only legal when
     * the queue is drained (a completed Engine::run): pending events
     * hold `when` stamps that a rewound clock would misorder. The slot
     * arena and free list survive, so a reset engine re-enters steady
     * state with zero warmup allocations — this is what lets one
     * machine serve many benchmark data points (bench/bench_util.hh).
     */
    void
    reset()
    {
        rsn_assert(pending_ == 0 && active_head_ == kNil,
                   "engine reset with %llu pending events",
                   static_cast<unsigned long long>(pending_));
        now_ = 0;
        base_ = 0;
        events_processed_ = 0;
        stop_requested_ = false;
        watchdog_tripped_ = false;
    }

    /** @{ Waitable registry for silent-deadlock detection (file comment).
     *  Channel and Stream register on construction; @p T provides
     *  `waitQuiet()` and `describeBlocked()`. */
    template <class T>
    [[gnu::cold]] void
    registerWaitable(const T *w)
    {
        waitables_.push_back(WaitableRec{
            w,
            [](const void *p) {
                return static_cast<const T *>(p)->waitQuiet();
            },
            [](const void *p) {
                return static_cast<const T *>(p)->describeBlocked();
            }});
    }
    [[gnu::cold]] void
    unregisterWaitable(const void *w)
    {
        for (auto it = waitables_.begin(); it != waitables_.end(); ++it) {
            if (it->obj == w) {
                *it = waitables_.back();
                waitables_.pop_back();
                return;
            }
        }
    }
    /** True iff no registered primitive holds a parked party. Meaningful
     *  after run() returned true: a drain that is not clean is a silent
     *  deadlock. */
    bool drainedClean() const;
    /** Name every blocked endpoint (one line per primitive). */
    std::string drainDiagnosis() const;
    /** @} */

    /**
     * Ask run() to stop at the next batch boundary (end of the current
     * tick's dispatch). Used by the fault injector when an unrecoverable
     * fault is diagnosed: the run ends with state intact for reporting.
     * Sticky until reset().
     */
    void requestStop() { stop_requested_ = true; }
    bool stopRequested() const { return stop_requested_; }

    /**
     * Watchdog: cap the events dispatched within one tick. Zero-delay
     * wakeup cycles extend the current batch forever without advancing
     * time; the budget turns that hang into a diagnosable stop
     * (watchdogTripped() true, run() returns false). 0 = unlimited.
     */
    void
    setEventsPerTickBudget(std::uint64_t n)
    {
        budget_ = n ? n : ~std::uint64_t(0);
    }
    bool watchdogTripped() const { return watchdog_tripped_; }

    /** Number of events processed so far (for stats / microbenchmarks). */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /** Number of events scheduled but not yet dispatched. */
    std::uint64_t pendingEvents() const { return pending_; }

    /** True if no events are pending. */
    bool idle() const { return pending_ == 0; }

    /**
     * Awaitable that suspends the current coroutine for @p delay ticks.
     * `co_await engine.delay(n);`
     */
    auto delay(Tick d);

    /** Awaitable that suspends until absolute tick @p when. */
    auto delayUntil(Tick when);

  private:
    enum class Kind : std::uint8_t {
        Coro,    ///< Resume u.coro; nothing to destroy.
        Ptr,     ///< Call u.pair.fn(u.pair.arg); nothing to destroy.
        Inline,  ///< Trivially-copyable callable constructed in u.fn.
        Heap,    ///< u.heap owns a callable; cleanup() deletes it.
    };

    /** POD event slot; see file comment. Trivially copyable so the arena
     *  can grow by memcpy and dispatch can fire a stack copy. */
    struct Slot {
        union Payload {
            // coroutine_handle's default ctor is non-trivial; leave the
            // union uninitialized until a schedule/resume call fills it.
            Payload() {}
            std::coroutine_handle<> coro;
            struct {
                void (*fn)(void *);
                void *arg;
            } pair;
            alignas(std::max_align_t) std::byte fn[kInlineFnSize];
            void *heap;
        } u;
        void (*invoke)(Slot &);   ///< Unused on the coroutine fast path.
        void (*cleanup)(Slot &);  ///< Valid only when kind == Kind::Heap.
        Tick when;                ///< Target tick (needed by cascades).
        std::uint32_t next;       ///< Next slot in the same-tick FIFO.
        Kind kind;
    };
    static_assert(std::is_trivially_copyable_v<Slot>);
    static_assert(sizeof(Slot) <= 64, "Slot must stay one cache line");

    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
    static constexpr int kLevels = 4;
    static constexpr int kLevelBits = 8;
    static constexpr std::uint32_t kBucketsPerLevel = 1u << kLevelBits;
    static constexpr Tick kBucketMask = kBucketsPerLevel - 1;

    struct Bucket {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };
    struct Level {
        std::array<Bucket, kBucketsPerLevel> b{};
        std::array<std::uint64_t, kBucketsPerLevel / 64> occupied{};
    };

    /** Wheel level holding tick @p when, given x = when ^ base_:
     *  the highest differing byte; >= kLevels means overflow. */
    static int
    levelFor(Tick x)
    {
        return (std::bit_width(x | 1) - 1) >> 3;
    }

    void
    appendBucket(int lvl, std::uint32_t bi, std::uint32_t idx)
    {
        Level &l = wheel_[lvl];
        Bucket &b = l.b[bi];
        if (b.head == kNil) {
            b.head = b.tail = idx;
            l.occupied[bi >> 6] |= std::uint64_t(1) << (bi & 63);
        } else {
            arena_[b.tail].next = idx;
            b.tail = idx;
        }
    }

    /** Out-of-line cold half of resumeNow(): the engine is idle, take
     *  the full wheel-insertion path. */
    [[gnu::noinline]] void
    resumeNowIdle(std::coroutine_handle<> h)
    {
        resumeAt(now_, h);
    }

    /** Arena growth, out of line: vector reallocation is steady-state
     *  cold and would otherwise bloat every scheduling call site's
     *  inline cost. */
    [[gnu::noinline]] std::uint32_t
    growArena()
    {
        arena_.emplace_back();
        return static_cast<std::uint32_t>(arena_.size() - 1);
    }

    /** Pop a slot off the intrusive free list, or grow the arena. */
    std::uint32_t
    grabSlot()
    {
        if (free_head_ != kNil) [[likely]] {
            std::uint32_t idx = free_head_;
            free_head_ = arena_[idx].next;
            return idx;
        }
        return growArena();
    }

    /** Pop a recycled slot (or grow the arena), link it into the batch for
     *  @p when, and return it for payload fill-in. */
    Slot &
    slotFor(Tick when)
    {
        rsn_assert(when >= now_, "scheduling into the past");
        std::uint32_t idx = grabSlot();
        Slot &s = arena_[idx];
        s.when = when;
        s.next = kNil;
        ++pending_;
        if (when == now_ && draining_) {
            // Now-queue fast path: extend the batch being dispatched.
            arena_[active_tail_].next = idx;
            active_tail_ = idx;
            return s;
        }
        int lvl = levelFor(when ^ base_);
        if (lvl < kLevels) {
            appendBucket(lvl, (when >> (kLevelBits * lvl)) & kBucketMask,
                         idx);
            return s;
        }
        // Overflow: distinct-tick min-heap + flat index.
        auto [entry, fresh] = batches_.findOrInsert(when);
        if (fresh) {
            tick_heap_.push_back(when);
            std::push_heap(tick_heap_.begin(), tick_heap_.end(),
                           std::greater<>{});
            entry.head = idx;
        } else {
            arena_[entry.tail].next = idx;
        }
        entry.tail = idx;
        return s;
    }

    /** Next occupied bucket index >= @p from, or -1. */
    static int
    findNextSet(const std::array<std::uint64_t, kBucketsPerLevel / 64> &bm,
                std::uint32_t from)
    {
        if (from >= kBucketsPerLevel)
            return -1;
        std::uint32_t w = from >> 6;
        std::uint64_t word = bm[w] & (~std::uint64_t(0) << (from & 63));
        for (;;) {
            if (word)
                return int(w * 64 + std::countr_zero(word));
            if (++w == bm.size())
                return -1;
            word = bm[w];
        }
    }

    Tick nextEventTick(Tick max_ticks);
    void cascade(int lvl, std::uint32_t bi);
    void releaseList(std::uint32_t head);

    std::vector<Slot> arena_;
    std::uint32_t free_head_ = kNil;  ///< Intrusive free list via Slot::next.
    std::array<Level, kLevels> wheel_{};
    std::vector<Tick> tick_heap_;  ///< Min-heap over distinct overflow ticks.
    TickIndex batches_;            ///< Overflow tick -> batch head/tail.
    std::uint32_t active_head_ = kNil;  ///< Batch being drained by run().
    std::uint32_t active_tail_ = kNil;
    // stop_requested_ and the watchdog state sit here, among the scalars
    // run() already touches every batch, so the per-batch checks read a
    // cache line that is hot anyway instead of a fresh one at the end of
    // the object.
    bool draining_ = false;
    bool stop_requested_ = false;
    bool watchdog_tripped_ = false;
    Tick now_ = 0;
    Tick base_ = 0;  ///< Wheel alignment base; base_ <= now() between runs.
    std::uint64_t budget_ = ~std::uint64_t(0);  ///< Events per tick.
    std::uint64_t pending_ = 0;
    std::uint64_t events_processed_ = 0;
    std::vector<WaitableRec> waitables_;
};

/** Awaitable suspending a coroutine until a given absolute tick. */
struct DelayAwaiter {
    Engine &eng;
    Tick when;

    bool await_ready() const noexcept { return when <= eng.now(); }
    void await_suspend(std::coroutine_handle<> h) { eng.resumeAt(when, h); }
    void await_resume() const noexcept {}
};

inline auto
Engine::delay(Tick d)
{
    return DelayAwaiter{*this, now_ + d};
}

inline auto
Engine::delayUntil(Tick when)
{
    return DelayAwaiter{*this, when};
}

} // namespace rsn::sim

#endif // RSN_SIM_ENGINE_HH
