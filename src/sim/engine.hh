/**
 * @file
 * Discrete-event simulation engine. Time is measured in PL clock ticks.
 *
 * The engine owns a priority queue of (tick, sequence, callback) events.
 * Coroutine awaitables (Delay, channels, streams) schedule their resumption
 * through it. Events at the same tick run in FIFO order of scheduling, which
 * makes simulations fully deterministic.
 */

#ifndef RSN_SIM_ENGINE_HH
#define RSN_SIM_ENGINE_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace rsn::sim {

/** Discrete-event engine; see file comment. */
class Engine
{
  public:
    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run @p delay ticks from now. */
    void schedule(Tick delay, std::function<void()> fn);

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, std::function<void()> fn);

    /** Schedule resumption of a coroutine at absolute tick @p when. */
    void resumeAt(Tick when, std::coroutine_handle<> h);

    /** Schedule resumption of a coroutine @p delay ticks from now. */
    void resumeAfter(Tick delay, std::coroutine_handle<> h);

    /**
     * Run events until the queue is empty or @p max_ticks is reached.
     *
     * @return true if the queue drained (simulation quiesced), false if the
     *         tick limit stopped execution first.
     */
    bool run(Tick max_ticks = kTickMax);

    /** Number of events processed so far (for stats / microbenchmarks). */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /** True if no events are pending. */
    bool idle() const { return queue_.empty(); }

    /**
     * Awaitable that suspends the current coroutine for @p delay ticks.
     * `co_await engine.delay(n);`
     */
    auto delay(Tick d);

    /** Awaitable that suspends until absolute tick @p when. */
    auto delayUntil(Tick when);

  private:
    struct Event {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
        bool operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_processed_ = 0;
};

/** Awaitable suspending a coroutine until a given absolute tick. */
struct DelayAwaiter {
    Engine &eng;
    Tick when;

    bool await_ready() const noexcept { return when <= eng.now(); }
    void await_suspend(std::coroutine_handle<> h) { eng.resumeAt(when, h); }
    void await_resume() const noexcept {}
};

inline auto
Engine::delay(Tick d)
{
    return DelayAwaiter{*this, now_ + d};
}

inline auto
Engine::delayUntil(Tick when)
{
    return DelayAwaiter{*this, when};
}

} // namespace rsn::sim

#endif // RSN_SIM_ENGINE_HH
