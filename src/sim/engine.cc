#include "sim/engine.hh"

#include <algorithm>

namespace rsn::sim {

/**
 * Redistribute every event of wheel bucket (lvl, bi) to its proper level
 * relative to the (just advanced) wheel base. Events near the base drop
 * several levels at once — e.g. the first 256 ticks of a level-2 segment
 * belong directly in level 0. List order is preserved, which preserves
 * same-tick FIFO order.
 */
void
Engine::cascade(int lvl, std::uint32_t bi)
{
    Level &l = wheel_[lvl];
    Bucket b = l.b[bi];
    l.b[bi] = Bucket{};
    l.occupied[bi >> 6] &= ~(std::uint64_t(1) << (bi & 63));
    for (std::uint32_t i = b.head; i != kNil;) {
        std::uint32_t nxt = arena_[i].next;
        arena_[i].next = kNil;
        Tick when = arena_[i].when;
        int lv = levelFor(when ^ base_);
        appendBucket(lv, (when >> (kLevelBits * lv)) & kBucketMask, i);
        i = nxt;
    }
}

/**
 * Find the tick of the next pending batch, cascading wheel levels and
 * migrating overflow segments as the search advances — but never past a
 * segment floor beyond @p max_ticks, so an aborted run leaves the wheel
 * base at or below the clamped now(). Returns kTickMax when no events are
 * pending; a return value > max_ticks may be a lower bound rather than an
 * exact tick.
 */
Tick
Engine::nextEventTick(Tick max_ticks)
{
    for (;;) {
        int i = findNextSet(wheel_[0].occupied,
                            std::uint32_t(base_ & kBucketMask));
        if (i >= 0)
            return (base_ & ~kBucketMask) | Tick(i);

        int lvl = 1;
        for (; lvl < kLevels; ++lvl) {
            int shift = kLevelBits * lvl;
            int j = findNextSet(
                wheel_[lvl].occupied,
                std::uint32_t((base_ >> shift) & kBucketMask) + 1);
            if (j < 0)
                continue;
            Tick seg = base_ >> (shift + kLevelBits) << (shift + kLevelBits);
            Tick floor = seg | (Tick(j) << shift);
            if (floor > max_ticks)
                return floor;  // beyond the limit: do not enter the segment
            base_ = floor;
            cascade(lvl, std::uint32_t(j));
            break;
        }
        if (lvl < kLevels)
            continue;  // cascaded one level; rescan from level 0

        // Wheel exhausted: migrate the next overflow super-segment.
        if (tick_heap_.empty())
            return kTickMax;
        Tick t0 = tick_heap_.front();
        constexpr int kSpanBits = kLevelBits * kLevels;
        Tick floor = t0 >> kSpanBits << kSpanBits;
        if (floor > max_ticks)
            return t0;  // exact: heap min is the next pending tick
        base_ = floor;
        while (!tick_heap_.empty() &&
               (tick_heap_.front() >> kSpanBits) == (t0 >> kSpanBits)) {
            Tick t = tick_heap_.front();
            std::pop_heap(tick_heap_.begin(), tick_heap_.end(),
                          std::greater<>{});
            tick_heap_.pop_back();
            TickIndex::Entry e = batches_.take(t);
            int lv = levelFor(t ^ base_);
            for (std::uint32_t s = e.head; s != kNil;) {
                std::uint32_t nxt = arena_[s].next;
                arena_[s].next = kNil;
                appendBucket(lv, (t >> (kLevelBits * lv)) & kBucketMask, s);
                s = nxt;
            }
        }
    }
}

bool
Engine::run(Tick max_ticks)
{
    // Watchdog countdown, rebased at every batch boundary. A local so it
    // lives in a callee-saved register across dispatches: the hot loop
    // pays one decrement-and-branch per event, no memory traffic
    // (events_processed_ alone cannot bound a batch — a zero-delay
    // wakeup cycle extends the *current* batch forever).
    std::uint64_t budget_left = budget_;
    while (true) {
        if (active_head_ == kNil) {
            draining_ = false;
            if (stop_requested_) [[unlikely]]
                return false;  // fault-diagnosed stop at a batch boundary
            Tick t = nextEventTick(max_ticks);
            if (t == kTickMax)
                return true;
            if (t > max_ticks) {
                // Clamp forward only: a limit in the past must not rewind
                // time (tick-limit contract in engine.hh).
                if (max_ticks > now_)
                    now_ = max_ticks;
                return false;
            }
            std::uint32_t bi = std::uint32_t(t & kBucketMask);
            Bucket batch = wheel_[0].b[bi];
            wheel_[0].b[bi] = Bucket{};
            wheel_[0].occupied[bi >> 6] &=
                ~(std::uint64_t(1) << (bi & 63));
            now_ = base_ = t;
            active_head_ = batch.head;
            active_tail_ = batch.tail;
            draining_ = true;
            budget_left = budget_;
        }
        // Watchdog: a batch that keeps extending itself through the
        // now-queue (a zero-delay wakeup cycle) would spin here forever
        // without advancing time.
        if (budget_left-- == 0) [[unlikely]] {
            watchdog_tripped_ = true;
            return false;
        }
        std::uint32_t cur = active_head_;
        --pending_;
        ++events_processed_;
        Slot &s = arena_[cur];
        if (s.kind == Kind::Coro) {
            // Fast path: nothing to copy or destroy, just resume.
            std::coroutine_handle<> h = s.u.coro;
            h.resume();
        } else if (s.kind == Kind::Ptr) {
            // Raw-callback path: two register loads, then call.
            void (*fn)(void *) = s.u.pair.fn;
            void *arg = s.u.pair.arg;
            fn(arg);
        } else {
            // The callback may schedule and grow the arena, invalidating
            // references into it; fire a stack copy of the POD slot.
            Slot local = s;
            local.invoke(local);
            if (local.kind == Kind::Heap)
                local.cleanup(local);
        }
        // Re-read after dispatch: the event may have extended its own
        // batch through the now-queue fast path. Only then may the slot
        // be threaded onto the free list (which reuses `next`).
        std::uint32_t nxt = arena_[cur].next;
        arena_[cur].next = free_head_;
        free_head_ = cur;
        active_head_ = nxt;
    }
}

bool
Engine::drainedClean() const
{
    for (const WaitableRec &w : waitables_)
        if (!w.quiet(w.obj))
            return false;
    return true;
}

std::string
Engine::drainDiagnosis() const
{
    std::string s;
    for (const WaitableRec &w : waitables_)
        if (!w.quiet(w.obj))
            s += w.describe(w.obj) + "\n";
    return s;
}

Engine::~Engine()
{
    // Pending heap-path callables own memory; coroutine frames are owned
    // by their Task wrappers, never by the engine.
    for (const Level &l : wheel_)
        for (const Bucket &b : l.b)
            releaseList(b.head);
    batches_.forEach(
        [this](const TickIndex::Entry &e) { releaseList(e.head); });
    releaseList(active_head_);  // non-kNil only if run() aborted mid-batch
}

void
Engine::releaseList(std::uint32_t head)
{
    for (std::uint32_t i = head; i != kNil; i = arena_[i].next) {
        Slot &s = arena_[i];
        if (s.kind == Kind::Heap)
            s.cleanup(s);
    }
}

} // namespace rsn::sim
