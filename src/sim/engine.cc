#include "sim/engine.hh"

#include "common/log.hh"

namespace rsn::sim {

void
Engine::schedule(Tick delay, std::function<void()> fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
Engine::scheduleAt(Tick when, std::function<void()> fn)
{
    rsn_assert(when >= now_, "scheduling into the past");
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void
Engine::resumeAt(Tick when, std::coroutine_handle<> h)
{
    scheduleAt(when, [h] { h.resume(); });
}

void
Engine::resumeAfter(Tick delay, std::coroutine_handle<> h)
{
    resumeAt(now_ + delay, h);
}

bool
Engine::run(Tick max_ticks)
{
    while (!queue_.empty()) {
        if (queue_.top().when > max_ticks) {
            now_ = max_ticks;
            return false;
        }
        // Move the event out before popping so the callback may schedule
        // further events without invalidating references.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++events_processed_;
        ev.fn();
    }
    return true;
}

} // namespace rsn::sim
