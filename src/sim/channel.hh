/**
 * @file
 * Bounded latency-insensitive channel connecting coroutines.
 *
 * A Channel<T> is a FIFO of fixed capacity. Senders block (suspend) while the
 * channel is full; receivers block while it is empty. This is the data-plane
 * primitive of the RSN abstraction: "communication is latency-insensitive,
 * meaning that the correctness of execution does not depend on timing, and
 * the FUs are stallable" (paper Sec. 3.1).
 *
 * Wakeups use a reservation discipline: when a send makes an item available,
 * exactly one waiting receiver is woken and that item is reserved for it, so
 * a later receiver arriving before the wakeup fires cannot steal it (and
 * symmetrically for freed slots and waiting senders). This keeps the channel
 * strictly FIFO and deterministic. Wakeups enqueue the waiter's coroutine
 * handle directly on the engine's now-queue (Engine::resumeNow) — no
 * lambda trampoline, no allocation.
 */

#ifndef RSN_SIM_CHANNEL_HH
#define RSN_SIM_CHANNEL_HH

#include <coroutine>
#include <string>
#include <utility>

#include "common/log.hh"
#include "sim/engine.hh"
#include "sim/ring.hh"

namespace rsn::sim {

template <typename T>
class Channel
{
  public:
    Channel(Engine &eng, std::size_t capacity, std::string name = "chan")
        : eng_(eng), cap_(capacity), name_(std::move(name))
    {
        rsn_assert(capacity > 0, "channel capacity must be positive");
        eng_.registerWaitable(this);
    }

    ~Channel() { eng_.unregisterWaitable(this); }

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** @{ Silent-deadlock detection (Engine::drainedClean): a drained
     *  engine must leave no coroutine parked on this channel. */
    bool
    waitQuiet() const
    {
        return send_waiters_.empty() && recv_waiters_.empty();
    }
    [[gnu::cold]] std::string
    describeBlocked() const
    {
        std::string s = "channel " + name_ + ":";
        if (!send_waiters_.empty())
            s += " " + std::to_string(send_waiters_.size()) +
                 " parked sender(s)";
        if (!recv_waiters_.empty())
            s += " " + std::to_string(recv_waiters_.size()) +
                 " parked receiver(s)";
        return s;
    }
    /** @} */

    const std::string &name() const { return name_; }
    std::size_t capacity() const { return cap_; }
    std::size_t size() const { return q_.size(); }
    bool empty() const { return q_.empty(); }

    /** Number of items ever pushed (stats). */
    std::uint64_t totalPushed() const { return total_pushed_; }

    /** True if a coroutine is currently blocked sending / receiving. */
    bool hasBlockedSender() const { return !send_waiters_.empty(); }
    bool hasBlockedReceiver() const { return !recv_waiters_.empty(); }

    /** Awaitable: suspend until the item can be enqueued, then enqueue. */
    auto send(T v) { return SendAwaiter{*this, std::move(v)}; }

    /** Awaitable: suspend until an item is available, then dequeue it. */
    auto recv() { return RecvAwaiter{*this}; }

    /**
     * Non-blocking push; only legal when no senders are waiting (used by
     * non-coroutine producers such as test drivers).
     *
     * @return false if the channel was full.
     */
    bool
    tryPush(T v)
    {
        rsn_assert(send_waiters_.empty(),
                   "tryPush would bypass blocked senders");
        if (q_.size() >= cap_)
            return false;
        pushNow(std::move(v));
        return true;
    }

    /** Non-blocking pop; only legal when no receivers are waiting. */
    bool
    tryPop(T &out)
    {
        rsn_assert(recv_waiters_.empty(),
                   "tryPop would bypass blocked receivers");
        if (available() == 0)
            return false;
        out = popNow();
        return true;
    }

  private:
    friend struct SendAwaiterFriend;

    /** Items present and not reserved for an already-woken receiver. */
    std::size_t available() const { return q_.size() - reserved_pops_; }
    /** Free slots not reserved for an already-woken sender. */
    std::size_t
    freeSlots() const
    {
        return cap_ - q_.size() - reserved_pushes_;
    }

    void
    pushNow(T v)
    {
        q_.push_back(std::move(v));
        ++total_pushed_;
        rsn_assert(q_.size() <= cap_, "channel overflow");
        wakeOneReceiver();
    }

    T
    popNow()
    {
        rsn_assert(!q_.empty(), "channel underflow");
        T v = std::move(q_.front());
        q_.pop_front();
        wakeOneSender();
        return v;
    }

    void
    wakeOneReceiver()
    {
        if (recv_waiters_.empty())
            return;
        auto h = recv_waiters_.pop_front();
        ++reserved_pops_;
        eng_.resumeNow(h);
    }

    void
    wakeOneSender()
    {
        if (send_waiters_.empty())
            return;
        auto h = send_waiters_.pop_front();
        ++reserved_pushes_;
        eng_.resumeNow(h);
    }

    struct SendAwaiter {
        Channel &ch;
        T v;
        bool was_suspended = false;

        bool await_ready() const
        {
            return ch.send_waiters_.empty() && ch.freeSlots() > 0;
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            was_suspended = true;
            ch.send_waiters_.push_back(h);
        }
        void await_resume()
        {
            if (was_suspended) {
                rsn_assert(ch.reserved_pushes_ > 0, "push wakeup imbalance");
                --ch.reserved_pushes_;
            }
            ch.pushNow(std::move(v));
        }
    };

    struct RecvAwaiter {
        Channel &ch;
        bool was_suspended = false;

        bool await_ready() const
        {
            return ch.recv_waiters_.empty() && ch.available() > 0;
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            was_suspended = true;
            ch.recv_waiters_.push_back(h);
        }
        T await_resume()
        {
            if (was_suspended) {
                rsn_assert(ch.reserved_pops_ > 0, "pop wakeup imbalance");
                --ch.reserved_pops_;
            }
            return ch.popNow();
        }
    };

    Engine &eng_;
    std::size_t cap_;
    std::string name_;
    Ring<T> q_;
    Ring<std::coroutine_handle<>> send_waiters_;
    Ring<std::coroutine_handle<>> recv_waiters_;
    std::size_t reserved_pops_ = 0;
    std::size_t reserved_pushes_ = 0;
    std::uint64_t total_pushed_ = 0;
};

} // namespace rsn::sim

#endif // RSN_SIM_CHANNEL_HH
