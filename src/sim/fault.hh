/**
 * @file
 * Deterministic, seeded fault injection (chaos layer).
 *
 * A FaultSpec describes *what can go wrong* — link stalls and chunk drops
 * on streams, transient transaction errors on the DRAM channels, payload
 * bit-flips on the functional data plane — as per-event probabilities
 * plus a tick window, retry bound, and backoff policy. A FaultInjector
 * turns the spec into a *schedule*: every decision is a pure function of
 * (seed, site-name hash, per-site sequence number), so the same seed on
 * the same program produces a bit-identical fault schedule, final tick,
 * and report, run after run. That determinism is what turns every
 * failure mode into a reproducible regression test (tests/sim/test_fault*,
 * tests/lib/test_chaos_e2e.cc).
 *
 * ## Recovery model (docs/robustness.md)
 *
 * Transient link/DRAM faults are retried with exponential backoff *in
 * simulated ticks*: the k-th retry waits backoff_base << k ticks, and the
 * whole retry burst is folded into link / channel occupancy, so recovery
 * is part of the timing model, not wall-clock behavior. A transfer that
 * fails more than max_retries times is a *hard fault*: the injector
 * records a diagnosis naming the site and asks the engine to stop at the
 * next batch boundary (Engine::requestStop), so the run — not the
 * process — ends, with a structured RunReport.
 *
 * ## Payload protection
 *
 * When checksums are on (forced on whenever flip_rate > 0), the DDR /
 * LPDDR movers stamp a checksum for every functional payload they load
 * (keyed by the pooled buffer pointer — the payload travels the stream
 * network by reference, so the pointer is the identity), and the Mem FUs
 * verify it at ingress. The checksum hashes the tile's *byte window*
 * (rows * cols * dtypeBytes), so typed tiles (sim/tile_pool.hh) are
 * protected end to end without assuming a float element size. Bit-flips are injected only into protected
 * payloads, immediately before verification: a flip is therefore always
 * *detected*, never silently computed with — the guarantee the chaos
 * tier pins is "correct outputs or a structured report", with no third
 * outcome.
 *
 * ## Threading contract (docs/datapath.md)
 *
 * A FaultInjector is **lane-owned**, exactly like the machine that
 * holds it: one injector per RsnMachine, one machine per sweep lane
 * (lib/sweep.hh). All mutable state — per-site sequence numbers, the
 * fault log, and the pointer-keyed protected-payload side table — is a
 * plain member, never shared, never locked. The pointer keys are
 * lane-unique because tile payloads come from the lane's thread-local
 * TilePool and tiles never cross lanes, so two lanes can never collide
 * on a key. Debug builds (and -DRSN_THREAD_CHECKS) assert that every
 * hook fires on the thread that constructed the injector, so an
 * accidental cross-lane call fails loudly instead of corrupting the
 * schedule.
 */

#ifndef RSN_SIM_FAULT_HH
#define RSN_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

/** Owner-thread asserts on the injector hooks: free in Release (NDEBUG
 *  compiles them out), on in Debug and whenever RSN_THREAD_CHECKS is
 *  defined (the TSan CI configuration forces it). */
#if !defined(NDEBUG) || defined(RSN_THREAD_CHECKS)
#define RSN_FAULT_OWNER_CHECKS 1
#else
#define RSN_FAULT_OWNER_CHECKS 0
#endif

namespace rsn::sim {

class Engine;
struct Chunk;

enum class FaultKind : std::uint8_t {
    LinkStall,         ///< Link held busy for extra ticks (recovered).
    LinkRetry,         ///< Chunk dropped, retransmitted (recovered).
    LinkDead,          ///< Retries exhausted: chunk lost (hard).
    DramRetry,         ///< Transaction error, retried (recovered).
    DramDead,          ///< Retries exhausted on the channel (hard).
    BitFlip,           ///< One payload bit flipped at Mem-FU ingress.
    ChecksumMismatch,  ///< Corruption detected by a tile checksum (hard).
};

inline constexpr int kNumFaultKinds = 7;

const char *faultKindName(FaultKind k);

/** One injected (or detected) fault, for the RunReport fault log. */
struct FaultRecord {
    FaultKind kind = FaultKind::LinkStall;
    Tick tick = 0;          ///< Simulated time of the decision.
    std::string site;       ///< Stream / channel / FU name.
    std::uint64_t seq = 0;  ///< Per-site decision index.
    std::string detail;     ///< Kind-specific specifics.

    std::string toString() const;
    bool operator==(const FaultRecord &) const = default;
};

/** Seeded fault plan: rates, window, and recovery policy. */
struct FaultSpec {
    std::uint64_t seed = 0;

    double link_stall_rate = 0;  ///< P(stall) per admitted transfer.
    Tick link_stall_max = 64;    ///< Stall duration drawn from [1, max].
    double link_drop_rate = 0;   ///< P(drop) per transfer *attempt*.
    double dram_rate = 0;        ///< P(transient) per DRAM access attempt.
    double flip_rate = 0;        ///< P(bit-flip) per protected ingress chunk.

    std::uint32_t max_retries = 4;  ///< Attempts beyond the first.
    Tick backoff_base = 32;         ///< Retry k backs off base << k ticks.

    Tick window_begin = 0;          ///< Faults fire only in
    Tick window_end = kTickMax;     ///< [window_begin, window_end).

    bool checksums = false;  ///< Protect payloads even without flips.

    /** Any fault source armed? (The hot-path hooks stay null when not.) */
    bool
    enabled() const
    {
        return link_stall_rate > 0 || link_drop_rate > 0 || dram_rate > 0 ||
               flip_rate > 0 || checksums;
    }

    /** Checksums are forced on whenever flips are possible. */
    bool checksumsOn() const { return checksums || flip_rate > 0; }

    Status validate() const;
    std::string toString() const;

    /**
     * Parse "key=value,key=value" (e.g. "seed=7,link_drop=0.01,dram=0.02")
     * or the preset name "chaos". Keys: seed, link_stall, stall_max,
     * link_drop, dram, flip, retries, backoff, window (begin:end),
     * checksums. On error, *status holds InvalidConfig and the returned
     * spec is default-initialized.
     */
    static FaultSpec parse(const std::string &text, Status *status);

    /** A moderate all-sources profile for smokes and CLI chaos runs. */
    static FaultSpec chaosPreset(std::uint64_t seed);

    bool operator==(const FaultSpec &) const = default;
};

/**
 * Per-run fault scheduler. One injector serves every site in a machine;
 * sites (streams, DRAM channels, FUs) register by name and consult the
 * injector on their hot paths through a single null-checked pointer.
 */
class FaultInjector
{
  public:
    using SiteId = std::uint32_t;

    FaultInjector(const FaultSpec &spec, Engine &eng);

    const FaultSpec &spec() const { return spec_; }
    bool checksums() const { return checksums_on_; }

    /** Register a fault site; decisions are keyed by the name's hash, so
     *  the schedule is independent of registration order. */
    SiteId registerSite(const std::string &name);
    const std::string &siteName(SiteId s) const { return sites_[s].name; }

    /** Outcome of admitting one transfer / access at a faulty site. */
    struct Outcome {
        Tick extra = 0;             ///< Extra occupancy (stall+retries).
        std::uint32_t retries = 0;  ///< Successful retransmissions.
        bool dead = false;          ///< Retries exhausted: hard fault.
    };

    // The per-event hooks are [[gnu::cold]]: they run only under chaos
    // runs (every caller gates on a null injector pointer first), and
    // marking them keeps their bodies from competing with the fault-free
    // hot path for the LTO inline budget.

    /** Link-layer decision for a transfer of @p xfer_ticks duration. */
    [[gnu::cold]] Outcome onLinkAdmit(SiteId s, Tick xfer_ticks);

    /** DRAM-layer decision for an access of @p service_ticks duration. */
    [[gnu::cold]] Outcome onDramAccess(SiteId s, Tick service_ticks);

    /** Producer side: remember the checksum of @p c's payload. */
    [[gnu::cold]] void stampChecksum(SiteId s, Chunk &c);

    /**
     * Consumer side: maybe flip one payload bit, then verify the stamped
     * checksum. A mismatch is a hard fault (detected corruption). No-op
     * for unprotected chunks.
     */
    [[gnu::cold]] void ingressCheck(SiteId s, Chunk &c);

    /** Backoff before retry attempt @p attempt (0-based), in ticks. */
    Tick
    backoff(std::uint32_t attempt) const
    {
        return spec_.backoff_base << (attempt < 20 ? attempt : 20);
    }

    /** @{ Fault log: capped detail records plus exact per-kind counts. */
    const std::vector<FaultRecord> &log() const { return log_; }
    std::uint64_t count(FaultKind k) const
    {
        return counts_[static_cast<int>(k)];
    }
    std::uint64_t totalInjected() const { return total_; }
    /** @} */

    /** First unrecoverable fault, or nullptr. Set => engine stop asked. */
    const FaultRecord *
    firstHardFault() const
    {
        return hard_faulted_ ? &hard_fault_ : nullptr;
    }
    bool hardFaulted() const { return hard_faulted_; }

    static constexpr std::size_t kMaxLogRecords = 64;

    /**
     * Rewind for another run on a rewound engine (RsnMachine::reset):
     * per-site sequence numbers, the fault log, and the protected-payload
     * table all clear, so the next run replays the identical schedule.
     * Registered sites survive — they are wiring, not run state.
     */
    void reset();

    /**
     * reset() plus a new seed: re-arm the injector for another run of the
     * same program under a *different* fault schedule. The serving
     * scheduler (serve/scheduler.cc) salts one chaos seed per request so
     * a cached lane machine can replay request after request without a
     * rebuild — only the seed differs; rates, window, and policy are
     * unchanged (so checksum arming and site wiring stay valid).
     */
    void reseed(std::uint64_t seed);

  private:
    struct Site {
        std::string name;
        std::uint64_t hash = 0;  ///< FNV-1a of name (order-independent).
        std::uint64_t seq = 0;   ///< Decisions made at this site.
    };

    bool inWindow(Tick t) const
    {
        return t >= spec_.window_begin && t < spec_.window_end;
    }

    /** Uniform [0,1) draw for (site, seq, salt) — pure and seeded. */
    double draw(const Site &site, std::uint64_t seq,
                std::uint64_t salt) const;
    std::uint64_t bits(const Site &site, std::uint64_t seq,
                       std::uint64_t salt) const;

    /** Shared retry ladder for link/DRAM transients. */
    [[gnu::cold]] Outcome retryOutcome(Site &site, std::uint64_t seq,
                                       double rate, Tick attempt_ticks,
                                       std::uint64_t salt,
                                       FaultKind transient, FaultKind dead);

    [[gnu::cold]] void record(FaultKind kind, const Site &site,
                              std::uint64_t seq, std::string detail);
    [[gnu::cold]] void hardFault(FaultKind kind, const Site &site,
                                 std::uint64_t seq, std::string detail);

    /** Lane-ownership guard (see the threading contract above). */
    void checkOwner(const char *op) const;

    FaultSpec spec_;
    Engine &eng_;
    bool checksums_on_;
    std::vector<Site> sites_;
    std::unordered_map<const void *, std::uint32_t> protected_;
    std::vector<FaultRecord> log_;
    std::uint64_t counts_[kNumFaultKinds] = {};
    std::uint64_t total_ = 0;
    FaultRecord hard_fault_;
    bool hard_faulted_ = false;
    std::thread::id owner_ = std::this_thread::get_id();
};

/** Deterministic FNV-1a checksum of a payload's byte window (never 0).
 *  Dtype-agnostic: callers pass the wire byte count (Chunk::bytes()). */
std::uint32_t payloadChecksum(const void *p, std::uint64_t bytes);

} // namespace rsn::sim

#endif // RSN_SIM_FAULT_HH
