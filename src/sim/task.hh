/**
 * @file
 * Coroutine task types used by FU kernels and decoders.
 *
 * Task / ValueTask<T> are *eagerly started* coroutines: calling the coroutine
 * function runs it until its first suspension point. They are awaitable, so a
 * parent coroutine can `co_await` a child kernel; awaiting a task that
 * already completed resumes immediately. Two eager tasks awaited in sequence
 * execute concurrently in simulated time — this is how FU kernels express the
 * paper's "load and send execute in parallel" (Fig. 7b).
 *
 * Lifetime rules: the Task object owns the coroutine frame and destroys it in
 * its destructor. Never destroy a Task whose coroutine might still be resumed
 * by the engine; the simulator guarantees this by destroying FUs (and their
 * tasks) only after Engine::run has returned.
 *
 * Completion hand-off uses symmetric transfer (FinalAwaiter returns the
 * parent's handle), so awaiting a child never round-trips through the
 * engine's event queue. When engine-timed resumption *is* wanted, pass
 * handle() to Engine::resumeAt/resumeNow directly — the engine stores raw
 * coroutine handles in POD event slots, so no wrapper lambda is needed.
 */

#ifndef RSN_SIM_TASK_HH
#define RSN_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace rsn::sim {

namespace detail {

/** Final awaiter that transfers control back to an awaiting parent. */
template <typename Promise>
struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

} // namespace detail

/** Eagerly-started coroutine returning nothing. See file comment. */
class [[nodiscard]] Task
{
  public:
    struct promise_type {
        std::coroutine_handle<> continuation;

        Task get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_never initial_suspend() noexcept { return {}; }
        detail::FinalAwaiter<promise_type> final_suspend() noexcept
        {
            return {};
        }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
    Task(Task &&o) noexcept : h_(std::exchange(o.h_, {})) {}
    Task &operator=(Task &&o) noexcept
    {
        if (this != &o) {
            reset();
            h_ = std::exchange(o.h_, {});
        }
        return *this;
    }
    ~Task() { reset(); }

    /** True when the coroutine ran to completion (or is empty). */
    bool done() const { return !h_ || h_.done(); }

    /**
     * The raw coroutine handle (null for an empty task). Lets callers
     * enqueue the suspended coroutine on the engine directly
     * (e.g. `eng.resumeNow(t.handle())`); ownership stays with the Task.
     */
    std::coroutine_handle<> handle() const noexcept { return h_; }

    /** Destroy the owned coroutine frame (must not be live in the engine). */
    void reset()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }

    /** Awaiting a Task suspends the parent until the task completes. */
    auto operator co_await() const noexcept
    {
        struct Awaiter {
            std::coroutine_handle<promise_type> h;
            bool await_ready() const noexcept { return !h || h.done(); }
            void await_suspend(std::coroutine_handle<> parent) noexcept
            {
                h.promise().continuation = parent;
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{h_};
    }

  private:
    std::coroutine_handle<promise_type> h_;
};

/** Eagerly-started coroutine producing a value of type T. */
template <typename T>
class [[nodiscard]] ValueTask
{
  public:
    struct promise_type {
        std::coroutine_handle<> continuation;
        T value{};

        ValueTask get_return_object()
        {
            return ValueTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_never initial_suspend() noexcept { return {}; }
        detail::FinalAwaiter<promise_type> final_suspend() noexcept
        {
            return {};
        }
        void return_value(T v) noexcept { value = std::move(v); }
        void unhandled_exception() { std::terminate(); }
    };

    ValueTask() = default;
    explicit ValueTask(std::coroutine_handle<promise_type> h) : h_(h) {}
    ValueTask(ValueTask &&o) noexcept : h_(std::exchange(o.h_, {})) {}
    ValueTask &operator=(ValueTask &&o) noexcept
    {
        if (this != &o) {
            reset();
            h_ = std::exchange(o.h_, {});
        }
        return *this;
    }
    ~ValueTask() { reset(); }

    bool done() const { return !h_ || h_.done(); }

    /** The raw coroutine handle (null for an empty task); see Task. */
    std::coroutine_handle<> handle() const noexcept { return h_; }

    void reset()
    {
        if (h_) {
            h_.destroy();
            h_ = {};
        }
    }

    auto operator co_await() const noexcept
    {
        struct Awaiter {
            std::coroutine_handle<promise_type> h;
            bool await_ready() const noexcept { return h.done(); }
            void await_suspend(std::coroutine_handle<> parent) noexcept
            {
                h.promise().continuation = parent;
            }
            T await_resume() noexcept { return std::move(h.promise().value); }
        };
        return Awaiter{h_};
    }

  private:
    std::coroutine_handle<promise_type> h_;
};

} // namespace rsn::sim

#endif // RSN_SIM_TASK_HH
