/**
 * @file
 * TickIndex: flat open-addressing map from tick to per-tick event batch.
 *
 * Supports the Engine's two-level event queue: one entry per distinct
 * pending tick, holding the head/tail slot indices of that tick's FIFO
 * batch. Linear probing with backward-shift deletion keeps lookups to one
 * probe chain without tombstones, and — crucially for the engine's
 * allocation-free dispatch invariant — the table only allocates when it
 * grows, so a steady-state simulation schedules and drains events without
 * touching the heap.
 */

#ifndef RSN_SIM_TICK_INDEX_HH
#define RSN_SIM_TICK_INDEX_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace rsn::sim {

class TickIndex
{
  public:
    struct Entry {
        Tick key = kTickMax;     ///< kTickMax marks an empty bucket.
        std::uint32_t head = 0;  ///< First slot of the tick's batch.
        std::uint32_t tail = 0;  ///< Last slot of the tick's batch.
    };

    TickIndex() : buckets_(kMinBuckets) {}

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /**
     * Find the entry for @p key, inserting an empty one if absent.
     *
     * @return the entry and whether it was inserted. The reference is
     *         valid only until the next findOrInsert (which may grow the
     *         table).
     */
    std::pair<Entry &, bool>
    findOrInsert(Tick key)
    {
        rsn_assert(key != kTickMax, "tick kTickMax is reserved");
        if ((count_ + 1) * 4 > buckets_.size() * 3)
            grow();
        std::size_t i = ideal(key);
        while (buckets_[i].key != kTickMax) {
            if (buckets_[i].key == key)
                return {buckets_[i], false};
            i = next(i);
        }
        buckets_[i].key = key;
        ++count_;
        return {buckets_[i], true};
    }

    /** Remove and return the entry for @p key (which must exist). */
    Entry
    take(Tick key)
    {
        std::size_t i = ideal(key);
        while (buckets_[i].key != key) {
            rsn_assert(buckets_[i].key != kTickMax, "tick not in index");
            i = next(i);
        }
        Entry out = buckets_[i];
        // Backward-shift deletion: slide displaced entries of the probe
        // chain up over the hole so lookups never need tombstones.
        std::size_t hole = i;
        for (std::size_t j = next(hole); buckets_[j].key != kTickMax;
             j = next(j)) {
            std::size_t home = ideal(buckets_[j].key);
            if (((j - home) & mask()) >= ((j - hole) & mask())) {
                buckets_[hole] = buckets_[j];
                hole = j;
            }
        }
        buckets_[hole].key = kTickMax;
        --count_;
        return out;
    }

    /** Visit every live entry (order unspecified). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Entry &e : buckets_)
            if (e.key != kTickMax)
                fn(e);
    }

  private:
    static constexpr std::size_t kMinBuckets = 16;  // power of two

    std::size_t mask() const { return buckets_.size() - 1; }
    std::size_t next(std::size_t i) const { return (i + 1) & mask(); }

    /** Fibonacci hashing: multiplicative spread of the tick bits. */
    std::size_t
    ideal(Tick key) const
    {
        return std::size_t((key * 0x9E3779B97F4A7C15ull) >> 32) & mask();
    }

    void
    grow()
    {
        std::vector<Entry> doubled(buckets_.size() * 2);
        doubled.swap(buckets_);
        for (const Entry &e : doubled) {  // `doubled` now holds the old table
            if (e.key == kTickMax)
                continue;
            std::size_t i = ideal(e.key);
            while (buckets_[i].key != kTickMax)
                i = next(i);
            buckets_[i] = e;
        }
    }

    std::vector<Entry> buckets_;
    std::size_t count_ = 0;
};

} // namespace rsn::sim

#endif // RSN_SIM_TICK_INDEX_HH
