/**
 * @file
 * Stream: a link-timed, bounded, latency-insensitive channel of Chunks.
 *
 * This is an edge of the RSN network (paper Sec. 3.1). On top of Channel
 * semantics (FIFO, back-pressure) it models *link occupancy*: a chunk of B
 * bytes occupies the link for ceil(B / width) ticks, and transfers serialize
 * on the link. A full downstream FIFO back-pressures the link: the transfer
 * does not start until a slot is reserved.
 *
 * ## Coroutine-free data plane
 *
 * The send path spawns no coroutine frames and performs no heap
 * allocations in steady state. `send()` returns a plain awaitable: the
 * sender's chunk enters an internal ring of pending transfers and the
 * stream itself drives link occupancy with engine events — one inline
 * (SBO) completion callback per chunk, scheduled at the transfer's end
 * tick. Completions deliver in link order, wake the receiver and the
 * sender through the engine's now-queue, and admit the next pending
 * sender synchronously when a FIFO slot frees. Slot admission is strictly
 * FIFO over send/post/trySend arrival order, which preserves the
 * reservation discipline the old coroutine implementation enforced with
 * waiter queues. `co_await send(c)` still resumes the sender at delivery
 * time, so FU kernel overlap semantics are unchanged.
 *
 * Producers that must not suspend have two entry points: `trySend()`
 * (succeeds only when a slot is free right now) and `post()`
 * (unconditionally enqueues, like a detached send). `flush()` awaits the
 * send side draining — the mesh FU uses post+flush to overlap one
 * broadcast chunk across all destination links.
 *
 * ## Lifetime
 *
 * In-flight transfers hold a raw `this` in their engine completion
 * event, so a Stream with a non-empty link (`inFlight() > 0`) must not
 * be destroyed while its engine may still dispatch — the same rule Task
 * imposes for coroutine frames. The machine guarantees this by
 * destroying streams only after Engine::run returned and never running
 * that engine again (events dropped at engine destruction are released,
 * not invoked).
 */

#ifndef RSN_SIM_STREAM_HH
#define RSN_SIM_STREAM_HH

#include <bit>
#include <cmath>
#include <coroutine>
#include <string>

#include "common/log.hh"
#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/fault.hh"
#include "sim/ring.hh"

namespace rsn::sim {

class Stream
{
  public:
    /**
     * @param eng the event engine
     * @param bytes_per_tick link width (bytes transferred per PL cycle)
     * @param depth_chunks FIFO capacity in chunks
     * @param name stream name for diagnostics
     */
    Stream(Engine &eng, double bytes_per_tick, std::size_t depth_chunks,
           std::string name)
        : eng_(eng), bytes_per_tick_(bytes_per_tick), cap_(depth_chunks),
          name_(std::move(name))
    {
        rsn_assert(bytes_per_tick > 0, "stream width must be positive");
        rsn_assert(depth_chunks > 0, "stream depth must be positive");
        // Every configured link width is a whole byte count; keep an
        // integer copy so transferTicks is exact ceil-division (the
        // double formula mis-rounds once bytes exceed 2^53). Power-of-two
        // widths additionally get a shift instead of a divide.
        if (bytes_per_tick == std::floor(bytes_per_tick) &&
            bytes_per_tick < 9.0e18) {
            bpt_int_ = static_cast<Bytes>(bytes_per_tick);
            if ((bpt_int_ & (bpt_int_ - 1)) == 0)
                bpt_shift_ = std::countr_zero(bpt_int_);
        }
        eng_.registerWaitable(this);
    }

    ~Stream() { eng_.unregisterWaitable(this); }

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /**
     * Arm link-layer fault injection for this stream (docs/robustness.md).
     * The hot path pays one null check when faults are off; when on,
     * admit() folds the injector's stalls and retransmissions into link
     * occupancy, and a transfer whose retries are exhausted is lost —
     * the chunk is destroyed and a waiting sender stays parked, which
     * the engine's drain diagnosis then names.
     */
    [[gnu::cold]] void
    attachFaultInjector(FaultInjector *fi)
    {
        fault_ = fi;
        fault_site_ = fi ? fi->registerSite("stream " + name_) : 0;
    }

    /** @{ Silent-deadlock detection (Engine::drainedClean). */
    bool
    waitQuiet() const
    {
        return pending_.empty() && recv_waiters_.empty() &&
               flush_waiters_.empty() && dead_sends_ == 0;
    }
    [[gnu::cold]] std::string
    describeBlocked() const
    {
        std::string s = "stream " + name_ + ":";
        if (!pending_.empty())
            s += " " + std::to_string(pending_.size()) +
                 " parked sender(s)";
        if (!recv_waiters_.empty())
            s += " " + std::to_string(recv_waiters_.size()) +
                 " parked receiver(s)";
        if (!flush_waiters_.empty())
            s += " " + std::to_string(flush_waiters_.size()) +
                 " parked flusher(s)";
        if (dead_sends_ > 0)
            s += " " + std::to_string(dead_sends_) +
                 " send(s) lost to a dead link";
        return s;
    }
    /** @} */

    const std::string &name() const { return name_; }
    double bytesPerTick() const { return bytes_per_tick_; }

    /** Total bytes delivered (stats). */
    Bytes bytesTransferred() const { return bytes_transferred_; }
    /** Total chunks delivered (stats). */
    std::uint64_t chunksTransferred() const { return chunks_transferred_; }
    /** Ticks the link spent busy transferring (stats). Includes injected
     *  stalls and retry/backoff occupancy when faults are armed. */
    Tick busyTicks() const { return busy_ticks_; }
    /** Injected-fault recovery stats: successful retransmissions and
     *  chunks lost to a dead link. */
    std::uint64_t linkRetries() const { return link_retries_; }
    std::uint64_t deadSends() const { return dead_sends_; }

    /** True if a chunk is waiting for a FIFO slot (back-pressure). */
    bool hasBlockedSender() const { return !pending_.empty(); }
    bool hasBlockedReceiver() const { return !recv_waiters_.empty(); }
    std::size_t queued() const { return q_.size(); }
    /** Chunks admitted to the link but not yet delivered. */
    std::size_t inFlight() const { return xfer_.size(); }

    /** Transfer duration in ticks for a chunk of @p b bytes (>= 1). */
    Tick
    transferTicks(Bytes b) const
    {
        if (bpt_int_ > 0) {
            Tick t = bpt_shift_ >= 0
                         ? (b + bpt_int_ - 1) >> bpt_shift_
                         : (b + bpt_int_ - 1) / bpt_int_;
            return t ? t : 1;
        }
        // Fractional link width: fall back to double ceil.
        auto t = static_cast<Tick>(
            std::ceil(static_cast<double>(b) / bytes_per_tick_));
        return t ? t : 1;
    }

    /**
     * Awaitable send: reserve a FIFO slot (FIFO-fair if full), occupy the
     * link for the transfer duration, then deliver. The awaiting
     * coroutine resumes at delivery time.
     */
    auto send(Chunk c) { return SendAwaiter{*this, std::move(c)}; }

    /**
     * Non-suspending send for producers that cannot block: succeeds only
     * when no sender is queued ahead and a FIFO slot is free right now.
     * The transfer then proceeds exactly as for send().
     *
     * @return false if the chunk was not accepted.
     */
    bool
    trySend(Chunk c)
    {
        if (!pending_.empty() || claimed() >= cap_)
            return false;
        admit(std::move(c), {});
        return true;
    }

    /**
     * Detached send: unconditionally enqueue (never suspends, never
     * fails). Pair with flush() to wait for delivery.
     */
    void
    post(Chunk c)
    {
        if (pending_.empty() && claimed() < cap_)
            admit(std::move(c), {});
        else
            pending_.push_back(Xfer{std::move(c), {}, 0});
    }

    /**
     * Awaitable: resume once the send side is fully drained (no chunk
     * pending a slot or occupying the link). With a single producer —
     * every stream is a point-to-point edge, so that is the normal case
     * — this means "everything I enqueued was delivered". A producer
     * that keeps enqueueing concurrently keeps pushing the drain point
     * out; flush() is not a per-chunk completion.
     */
    auto flush() { return FlushAwaiter{*this}; }

    /** Awaitable receive of the next chunk; blocks while empty. */
    auto recv() { return RecvAwaiter{*this, {}, {}, false}; }

    /**
     * Clear stats and link occupancy for a fresh run on a rewound
     * engine (RsnMachine::reset). Only legal when the stream is fully
     * drained — no queued chunks, no transfer in flight, no blocked
     * party — which a completed program run guarantees.
     */
    void
    reset()
    {
        rsn_assert(q_.empty() && pending_.empty() && xfer_.empty() &&
                       recv_waiters_.empty() && flush_waiters_.empty(),
                   "reset of non-drained stream %s", name_.c_str());
        link_free_ = 0;
        busy_ticks_ = 0;
        bytes_transferred_ = 0;
        chunks_transferred_ = 0;
        link_retries_ = 0;
        dead_sends_ = 0;
    }

  private:
    /** One send operation: payload, waiting sender, completion tick. */
    struct Xfer {
        Chunk c;
        std::coroutine_handle<> waiter;  ///< Null for post()/trySend().
        Tick end = 0;                    ///< Valid once admitted.
    };

    /** Slots claimed = delivered-and-queued + admitted to the link. */
    std::size_t claimed() const { return q_.size() + xfer_.size(); }

    /**
     * Cold path of admit(): consult the injector and fold the outcome
     * into @p dur. Returns false when the link is dead (the chunk must
     * be lost). Kept out of line so the chaos machinery never bloats the
     * fault-free admit() past the inliner's budget — with faults off the
     * hot path pays exactly one null check.
     */
    [[gnu::cold, gnu::noinline]] bool
    admitFaulted(Tick &dur)
    {
        FaultInjector::Outcome o = fault_->onLinkAdmit(fault_site_, dur);
        if (o.dead) {
            // Unrecoverable link fault: the chunk is lost and a
            // suspended sender is never resumed — the injector has
            // already recorded the diagnosis and asked the engine to
            // stop; waitQuiet() keeps the loss visible to the drain
            // diagnosis either way.
            ++dead_sends_;
            return false;
        }
        dur += o.extra;  // stalls + retransmissions + tick backoff
        link_retries_ += o.retries;
        return true;
    }

    /** Claim a slot and put @p c on the link behind earlier transfers. */
    void
    admit(Chunk &&c, std::coroutine_handle<> waiter)
    {
        Tick start = std::max(eng_.now(), link_free_);
        Tick dur = transferTicks(c.bytes());
        if (fault_) [[unlikely]]
            if (!admitFaulted(dur))
                return;  // dead link: the chunk dies here
        Tick end = start + dur;
        busy_ticks_ += dur;
        link_free_ = end;
        bool link_was_idle = xfer_.empty();
        xfer_.push_back(Xfer{std::move(c), waiter, end});
        if (link_was_idle)
            scheduleCompletion(end);
    }

    /** Admit pending senders while FIFO slots are free (FIFO order). */
    void
    pump()
    {
        while (!pending_.empty() && claimed() < cap_) {
            Xfer &p = pending_.front();
            Chunk c = std::move(p.c);
            std::coroutine_handle<> waiter = p.waiter;
            pending_.drop_front();
            admit(std::move(c), waiter);
        }
    }

    /** Raw engine callback firing at a transfer's end tick. */
    void
    scheduleCompletion(Tick when)
    {
        eng_.callAt(
            when,
            [](void *p) { static_cast<Stream *>(p)->onTransferDone(); },
            this);
    }

    /**
     * A transfer finished: free the link head, hand the chunk over, and
     * resume the parties. Receiver and sender continuations are resumed
     * *directly* (not via the engine now-queue): the completion event is
     * the only engine event on the per-chunk path, and all resumptions
     * happen at the same tick either way. The next completion is
     * scheduled before anyone resumes, so continuations observe a
     * consistent link pipeline.
     */
    void
    onTransferDone()
    {
        rsn_assert(!xfer_.empty(), "completion with no transfer in flight");
        rsn_assert(xfer_.front().end == eng_.now(), "completion mistimed");
        // Consume the head transfer in place (one Chunk move straight to
        // its destination) instead of moving the whole Xfer out.
        Xfer &head = xfer_.front();
        Chunk c = std::move(head.c);
        std::coroutine_handle<> sender = head.waiter;
        xfer_.drop_front();
        bytes_transferred_ += c.bytes();
        ++chunks_transferred_;
        if (!xfer_.empty())
            scheduleCompletion(xfer_.front().end);
        if (!recv_waiters_.empty()) {
            // Direct handoff: the chunk never touches the FIFO, so its
            // slot frees immediately — admit pending senders first to
            // keep claim accounting consistent, then resume.
            rsn_assert(q_.empty(), "receiver waiting on non-empty stream");
            RecvAwaiter *w = recv_waiters_.pop_front();
            w->got = std::move(c);
            w->has_got = true;
            pump();
            w->waiter.resume();
        } else {
            q_.push_back(std::move(c));
        }
        if (sender)
            sender.resume();
        if (xfer_.empty() && pending_.empty())
            while (!flush_waiters_.empty())
                eng_.resumeNow(flush_waiters_.pop_front());
    }

    struct SendAwaiter {
        Stream &s;
        Chunk c;

        /** Delivery is at least one tick away, so always suspend. */
        bool await_ready() const noexcept { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            if (s.pending_.empty() && s.claimed() < s.cap_)
                s.admit(std::move(c), h);
            else
                s.pending_.push_back(Xfer{std::move(c), h, 0});
        }
        void await_resume() const noexcept {}
    };

    struct FlushAwaiter {
        Stream &s;

        bool await_ready() const noexcept
        {
            return s.pending_.empty() && s.xfer_.empty();
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            s.flush_waiters_.push_back(h);
        }
        void await_resume() const noexcept {}
    };

    /**
     * Waiting receivers register the awaiter itself (it lives in the
     * suspended coroutine's frame, so the pointer is stable): delivery
     * moves the chunk straight into the frame and resumes — a waiting
     * receiver never round-trips through the FIFO or the event queue.
     * Consequence: whenever a receiver waits the FIFO is empty, so no
     * pop-reservation bookkeeping is needed.
     */
    struct RecvAwaiter {
        Stream &s;
        std::coroutine_handle<> waiter;
        Chunk got;
        bool has_got = false;

        bool await_ready() const
        {
            return s.recv_waiters_.empty() && !s.q_.empty();
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            waiter = h;
            s.recv_waiters_.push_back(this);
        }
        Chunk await_resume()
        {
            if (has_got)
                return std::move(got);
            rsn_assert(!s.q_.empty(), "stream underflow");
            Chunk c = std::move(s.q_.front());
            s.q_.pop_front();
            s.pump();
            return c;
        }
    };

    Engine &eng_;
    double bytes_per_tick_;
    Bytes bpt_int_ = 0;   ///< Integer link width (0 if fractional).
    int bpt_shift_ = -1;  ///< log2(width) when a power of two, else -1.
    std::size_t cap_;
    std::string name_;

    Ring<Chunk> q_;          ///< Delivered chunks awaiting recv().
    Ring<Xfer> pending_;     ///< Sends waiting for a FIFO slot.
    Ring<Xfer> xfer_;        ///< Admitted transfers, in link order.
    Ring<RecvAwaiter *> recv_waiters_;
    Ring<std::coroutine_handle<>> flush_waiters_;

    Tick link_free_ = 0;
    Tick busy_ticks_ = 0;
    Bytes bytes_transferred_ = 0;
    std::uint64_t chunks_transferred_ = 0;

    FaultInjector *fault_ = nullptr;  ///< Null unless chaos is armed.
    FaultInjector::SiteId fault_site_ = 0;
    std::uint64_t link_retries_ = 0;
    std::uint64_t dead_sends_ = 0;
};

} // namespace rsn::sim

#endif // RSN_SIM_STREAM_HH
