/**
 * @file
 * Stream: a link-timed, bounded, latency-insensitive channel of Chunks.
 *
 * This is an edge of the RSN network (paper Sec. 3.1). On top of Channel
 * semantics (FIFO, back-pressure) it models *link occupancy*: a chunk of B
 * bytes occupies the link for ceil(B / width) ticks, and transfers serialize
 * on the link. A full downstream FIFO back-pressures the link: the transfer
 * does not start until a slot is reserved. Like Channel, wakeups enqueue
 * the waiter's coroutine handle directly on the engine's now-queue.
 */

#ifndef RSN_SIM_STREAM_HH
#define RSN_SIM_STREAM_HH

#include <coroutine>
#include <string>

#include "common/log.hh"
#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/ring.hh"
#include "sim/task.hh"

namespace rsn::sim {

class Stream
{
  public:
    /**
     * @param eng the event engine
     * @param bytes_per_tick link width (bytes transferred per PL cycle)
     * @param depth_chunks FIFO capacity in chunks
     * @param name stream name for diagnostics
     */
    Stream(Engine &eng, double bytes_per_tick, std::size_t depth_chunks,
           std::string name)
        : eng_(eng), bytes_per_tick_(bytes_per_tick), cap_(depth_chunks),
          name_(std::move(name))
    {
        rsn_assert(bytes_per_tick > 0, "stream width must be positive");
        rsn_assert(depth_chunks > 0, "stream depth must be positive");
    }

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    const std::string &name() const { return name_; }
    double bytesPerTick() const { return bytes_per_tick_; }

    /** Total bytes delivered (stats). */
    Bytes bytesTransferred() const { return bytes_transferred_; }
    /** Total chunks delivered (stats). */
    std::uint64_t chunksTransferred() const { return chunks_transferred_; }
    /** Ticks the link spent busy transferring (stats). */
    Tick busyTicks() const { return busy_ticks_; }

    bool hasBlockedSender() const { return !send_waiters_.empty(); }
    bool hasBlockedReceiver() const { return !recv_waiters_.empty(); }
    std::size_t queued() const { return q_.size(); }

    /** Transfer duration in ticks for a chunk of @p b bytes (>= 1). */
    Tick
    transferTicks(Bytes b) const
    {
        auto t = static_cast<Tick>(
            (static_cast<double>(b) + bytes_per_tick_ - 1) /
            bytes_per_tick_);
        return t ? t : 1;
    }

    /**
     * Send a chunk: reserve a FIFO slot (blocking if full), occupy the link
     * for the transfer duration, then deliver.
     */
    Task
    send(Chunk c)
    {
        co_await SlotAwaiter{*this};
        Tick start = std::max(eng_.now(), link_free_);
        Tick end = start + transferTicks(c.bytes);
        busy_ticks_ += end - start;
        link_free_ = end;
        co_await eng_.delayUntil(end);
        deliver(std::move(c));
    }

    /** Receive the next chunk, blocking while the stream is empty. */
    ValueTask<Chunk>
    recv()
    {
        Chunk c = co_await RecvAwaiter{*this};
        co_return c;
    }

  private:
    /** Slots claimed = queued + reserved by in-flight transfers. */
    std::size_t claimed() const { return q_.size() + in_flight_; }

    void
    deliver(Chunk c)
    {
        rsn_assert(in_flight_ > 0, "deliver without reservation");
        --in_flight_;
        bytes_transferred_ += c.bytes;
        ++chunks_transferred_;
        q_.push_back(std::move(c));
        wakeOneReceiver();
    }

    void
    wakeOneReceiver()
    {
        if (recv_waiters_.empty())
            return;
        auto h = recv_waiters_.pop_front();
        ++reserved_pops_;
        eng_.resumeNow(h);
    }

    void
    wakeOneSender()
    {
        if (send_waiters_.empty())
            return;
        auto h = send_waiters_.pop_front();
        ++reserved_slots_;
        eng_.resumeNow(h);
    }

    /** Awaits a free FIFO slot and claims it (as in-flight). */
    struct SlotAwaiter {
        Stream &s;
        bool was_suspended = false;

        bool await_ready() const
        {
            return s.send_waiters_.empty() &&
                   s.claimed() + s.reserved_slots_ < s.cap_;
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            was_suspended = true;
            s.send_waiters_.push_back(h);
        }
        void await_resume()
        {
            if (was_suspended) {
                rsn_assert(s.reserved_slots_ > 0, "slot wakeup imbalance");
                --s.reserved_slots_;
            }
            ++s.in_flight_;
        }
    };

    struct RecvAwaiter {
        Stream &s;
        bool was_suspended = false;

        bool await_ready() const
        {
            return s.recv_waiters_.empty() &&
                   s.q_.size() > s.reserved_pops_;
        }
        void await_suspend(std::coroutine_handle<> h)
        {
            was_suspended = true;
            s.recv_waiters_.push_back(h);
        }
        Chunk await_resume()
        {
            if (was_suspended) {
                rsn_assert(s.reserved_pops_ > 0, "pop wakeup imbalance");
                --s.reserved_pops_;
            }
            rsn_assert(!s.q_.empty(), "stream underflow");
            Chunk c = std::move(s.q_.front());
            s.q_.pop_front();
            s.wakeOneSender();
            return c;
        }
    };

    Engine &eng_;
    double bytes_per_tick_;
    std::size_t cap_;
    std::string name_;

    Ring<Chunk> q_;
    Ring<std::coroutine_handle<>> send_waiters_;
    Ring<std::coroutine_handle<>> recv_waiters_;
    std::size_t in_flight_ = 0;
    std::size_t reserved_pops_ = 0;
    std::size_t reserved_slots_ = 0;

    Tick link_free_ = 0;
    Tick busy_ticks_ = 0;
    Bytes bytes_transferred_ = 0;
    std::uint64_t chunks_transferred_ = 0;
};

} // namespace rsn::sim

#endif // RSN_SIM_STREAM_HH
