#include "sim/tile_pool.hh"

#include <algorithm>
#include <new>

namespace rsn::sim {

float *
TileRef::ensureUnique(std::uint64_t elems)
{
    rsn_assert(h_ && elems > 0 && elems <= len_,
               "ensureUnique of %llu elems on a %llu-elem tile view",
               static_cast<unsigned long long>(elems),
               static_cast<unsigned long long>(h_ ? len_ : 0));
    if (h_->refs == 1)
        return h_->payload() + off_;
    TileRef copy = h_->pool->acquire(elems);
    std::copy_n(h_->payload() + off_, elems, copy.mutableData());
    // Narrow the fresh ref's window to exactly the copied elements: the
    // bucket's spare capacity is uninitialized storage the pre-COW
    // window could not reach either, so it must not become reachable.
    copy.len_ = static_cast<std::uint32_t>(elems);
    *this = std::move(copy);
    return h_->payload();
}

TilePool &
TilePool::instance()
{
    static TilePool pool;
    return pool;
}

TileRef
TilePool::acquire(std::uint64_t elems)
{
    rsn_assert(elems > 0, "empty tile");
    std::uint32_t bucket = bucketFor(elems);
    rsn_assert(bucket < kBuckets, "tile too large: %llu elems",
               static_cast<unsigned long long>(elems));
    ++acquires_;
    ++live_;
    if (detail::TileHdr *h = free_[bucket]) {
        free_[bucket] = h->next;
        h->next = nullptr;
        h->refs = 1;
        ++reuses_;
        return TileRef{h};
    }
    std::uint64_t cap = std::uint64_t(1) << (bucket + kMinElemsLog2);
    void *raw = ::operator new(sizeof(detail::TileHdr) +
                               cap * sizeof(float));
    auto *h = ::new (raw) detail::TileHdr{this, nullptr, cap, 1, bucket};
    ++buffers_allocated_;
    return TileRef{h};
}

void
TilePool::retire(detail::TileHdr *h)
{
    rsn_assert(h->pool == this, "tile retired to foreign pool");
    rsn_assert(live_ > 0, "pool live-count underflow");
    --live_;
    h->next = free_[h->bucket];
    free_[h->bucket] = h;
}

TilePool::~TilePool()
{
    // Live tiles (refs > 0) are owned by their TileRefs; only retired
    // buffers sit on the free lists. A TileRef must not outlive its pool.
    for (detail::TileHdr *&head : free_) {
        while (head) {
            detail::TileHdr *next = head->next;
            head->~TileHdr();
            ::operator delete(static_cast<void *>(head));
            head = next;
        }
    }
}

} // namespace rsn::sim
