#include "sim/tile_pool.hh"

#include <cstring>
#include <new>

namespace rsn::sim {

void *
TileRef::ensureUniqueRaw(std::uint64_t elems)
{
    rsn_assert(h_ && elems > 0 && elems <= len_,
               "ensureUnique of %llu elems on a %llu-elem tile view",
               static_cast<unsigned long long>(elems),
               static_cast<unsigned long long>(h_ ? len_ : 0));
    const std::uint32_t esize = h_->elemBytes();
    if (h_->refs == 1)
        return h_->payload() + std::uint64_t(off_) * esize;
    TileRef copy = h_->pool->acquire(elems, h_->dtype);
    std::memcpy(copy.mutableRaw(),
                h_->payload() + std::uint64_t(off_) * esize,
                elems * esize);
    // Narrow the fresh ref's window to exactly the copied elements: the
    // bucket's spare capacity is uninitialized storage the pre-COW
    // window could not reach either, so it must not become reachable.
    copy.len_ = static_cast<std::uint32_t>(elems);
    *this = std::move(copy);
    return h_->payload();
}

void
GatherTile::append(TileRef tile, std::uint64_t elems)
{
    rsn_assert(tile && elems > 0 && tile.capacity() >= elems,
               "gather segment smaller than its logical size");
    rsn_assert(count_ == 0 || tile.dtype() == dtype(),
               "gather of mixed dtypes (%s into %s) — one staged tile "
               "has one element type",
               dtypeName(tile.dtype()), dtypeName(dtype()));
    // Adjacent views of one buffer knit back into a single segment —
    // the send side slices a staged tile into row windows, so a
    // receiver that gathers them in order reassembles the original
    // tile as pure window arithmetic (no copy, no list growth). Only
    // merge exact windows: a whole-tile segment's bucket capacity may
    // exceed its logical size, and widening across that gap would
    // expose unrelated storage.
    if (count_ > 0 && elems == tile.capacity()) {
        Seg &last = segs_[count_ - 1];
        if (last.elems == last.tile.capacity() &&
            last.tile.tryExtend(tile)) {
            last.elems += elems;
            total_ += elems;
            return;
        }
    }
    if (count_ == kInlineSegments)
        materialize();
    segs_[count_].tile = std::move(tile);
    segs_[count_].elems = elems;
    ++count_;
    total_ += elems;
}

TileRef &
GatherTile::materialize()
{
    rsn_assert(count_ > 0, "materialize of empty gather");
    if (count_ == 1)
        return segs_[0].tile;
    const Dtype dt = dtype();
    const std::uint32_t esize = dtypeBytes(dt);
    TileRef whole = TilePool::instance().acquire(total_, dt);
    auto *dst = static_cast<std::byte *>(whole.mutableRaw());
    for (std::size_t i = 0; i < count_; ++i) {
        std::memcpy(dst, segs_[i].tile.raw(), segs_[i].elems * esize);
        dst += segs_[i].elems * esize;
        segs_[i].tile.release();
    }
    segs_[0].tile = std::move(whole);
    segs_[0].elems = total_;
    count_ = 1;
    return segs_[0].tile;
}

TileRef
GatherTile::window(std::uint64_t off, std::uint64_t len)
{
    rsn_assert(len > 0 && off + len <= total_,
               "gather window [%llu,+%llu) outside %llu elems",
               static_cast<unsigned long long>(off),
               static_cast<unsigned long long>(len),
               static_cast<unsigned long long>(total_));
    std::uint64_t seg_off = 0;
    for (std::size_t i = 0; i < count_; ++i) {
        if (off < seg_off + segs_[i].elems) {
            if (off + len <= seg_off + segs_[i].elems)
                return segs_[i].tile.slice(off - seg_off, len);
            break;  // straddles a boundary: need contiguity
        }
        seg_off += segs_[i].elems;
    }
    return materialize().slice(off, len);
}

TilePool &
TilePool::instance()
{
    // One pool per thread: a sweep-executor worker lane gets its own
    // pool the first time its machine touches a tile, so the pool (and
    // its plain-integer refcounts) never need locking. See the
    // threading contract in the header / docs/datapath.md.
    thread_local TilePool pool;
    return pool;
}

TileRef
TilePool::acquire(std::uint64_t elems, Dtype dtype)
{
    checkOwner("acquire");
    rsn_assert(elems > 0, "empty tile");
    rsn_assert(elems <= (std::uint64_t(1) << 31),
               "tile too large: %llu elems",
               static_cast<unsigned long long>(elems));
    const std::uint64_t bytes = elems * dtypeBytes(dtype);
    std::uint32_t bucket = bucketFor(bytes);
    rsn_assert(bucket < kBuckets, "tile too large: %llu bytes",
               static_cast<unsigned long long>(bytes));
    ++acquires_;
    ++live_;
    if (detail::TileHdr *h = free_[bucket]) {
        free_[bucket] = h->next;
        h->next = nullptr;
        h->refs = 1;
        h->dtype = dtype;  // storage is dtype-agnostic; restamp
        ++reuses_;
        free_bytes_ -= h->cap;
        return TileRef{h};
    }
    std::uint64_t cap = std::uint64_t(1) << (bucket + kMinBytesLog2);
    // Cache-line-aligned buffers: the header is 32 bytes, so payloads
    // land 32-byte aligned — which the SIMD GEMM packing panels rely on
    // (gemm_kernel.cc) and which keeps tile rows from straddling lines.
    void *raw = ::operator new(sizeof(detail::TileHdr) + cap,
                               std::align_val_t{64});
    auto *h = ::new (raw) detail::TileHdr{
        this, nullptr, cap, 1, static_cast<std::uint16_t>(bucket), dtype};
    ++buffers_allocated_;
    return TileRef{h};
}

void
TilePool::retire(detail::TileHdr *h)
{
    checkOwner("retire");
    rsn_assert(h->pool == this, "tile retired to foreign pool");
    rsn_assert(live_ > 0, "pool live-count underflow");
    --live_;
    h->next = free_[h->bucket];
    free_[h->bucket] = h;
    free_bytes_ += h->cap;
}

std::uint64_t
TilePool::trim()
{
    checkOwner("trim");
    std::uint64_t freed = 0;
    for (detail::TileHdr *&head : free_) {
        while (head) {
            detail::TileHdr *next = head->next;
            head->~TileHdr();
            ::operator delete(static_cast<void *>(head),
                              std::align_val_t{64});
            head = next;
            ++freed;
        }
    }
    buffers_freed_ += freed;
    free_bytes_ = 0;
    return freed;
}

TilePool::~TilePool()
{
    // Live tiles (refs > 0) are owned by their TileRefs; only retired
    // buffers sit on the free lists. A TileRef must not outlive its pool.
    trim();
}

} // namespace rsn::sim
