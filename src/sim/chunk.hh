/**
 * @file
 * Chunk: the unit of data carried on RSN streams.
 *
 * A chunk is a 2-D tile block (rows x cols elements of @c dtype —
 * common/dtype.hh). Timing-only runs leave @c data empty but still
 * carry the dtype tag, so wire time stays byte-true without payloads;
 * functional runs attach a pooled typed payload in row-major order
 * (sim/tile_pool.hh). The payload may be a sub-tile
 * *view* — Mem FUs publish row-slices of a staged tile as offset/length
 * windows aliased by refcount, never copies. Receivers must treat
 * payloads as immutable and take ownership (TileRef::ensureUnique,
 * copy-on-write) before transforming, since payloads are shared by
 * refcount when a mesh FU broadcasts one chunk to several destinations —
 * TileRef enforces this by gating plain writable access on unique
 * ownership. Ownership rules are spelled out in docs/datapath.md.
 */

#ifndef RSN_SIM_CHUNK_HH
#define RSN_SIM_CHUNK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/dtype.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "sim/tile_pool.hh"

namespace rsn::sim {

struct Chunk {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    /** Optional functional payload, row-major rows x cols (pooled). */
    TileRef data;
    /** Free-form tag for debugging / assertions (e.g. k-step index). */
    std::uint32_t tag = 0;
    /** Element type on the wire. Lives on the chunk — not derived from
     *  the tile — so timing-only runs (no payload) still get byte-true
     *  transfer time; makeTileChunk asserts the two agree. */
    Dtype dtype = Dtype::F32;

    std::uint64_t elems() const
    {
        return std::uint64_t(rows) * cols;
    }

    /**
     * Payload size on the wire: rows*cols*dtypeBytes(dtype). Derived
     * rather than stored — every producer computed exactly this, and
     * dropping the field keeps Chunk at 32 bytes (it moves by value
     * through the stream rings on the per-chunk fast path). This is
     * THE hook that makes 16-bit tiles halve link and DRAM time.
     */
    Bytes bytes() const { return Bytes(rows) * cols * dtypeBytes(dtype); }

    bool hasData() const { return static_cast<bool>(data); }

    /** Element access as a float, upconverting typed payloads
     *  (functional payloads only; debug / reference checks). */
    float
    at(std::uint32_t r, std::uint32_t c) const
    {
        rsn_assert(data && r < rows && c < cols, "chunk access out of range");
        const std::uint64_t i = std::uint64_t(r) * cols + c;
        switch (dtype) {
        case Dtype::Bf16:
            return bf16ToF32(data.data16()[i]);
        case Dtype::F16:
            return f16ToF32(data.data16()[i]);
        default:
            return data.data()[i];
        }
    }

    /** Copy the payload out as floats, upconverting typed payloads
     *  (tests / reference checks; allocates). */
    std::vector<float>
    toVector() const
    {
        rsn_assert(data, "no payload to copy");
        if (dtype == Dtype::F32)
            return std::vector<float>(data.data(), data.data() + elems());
        std::vector<float> out(elems());
        const std::uint16_t *p = data.data16();
        for (std::uint64_t i = 0; i < out.size(); ++i)
            out[i] = dtype == Dtype::Bf16 ? bf16ToF32(p[i]) : f16ToF32(p[i]);
        return out;
    }
};

static_assert(sizeof(Chunk) <= 32,
              "Chunk moves by value through stream rings — the dtype "
              "tag must fit the existing padding");

/** Make a timing-only chunk of rows x cols elements of @p dtype. */
inline Chunk
makeChunk(std::uint32_t rows, std::uint32_t cols, std::uint32_t tag = 0,
          Dtype dtype = Dtype::F32)
{
    return Chunk{rows, cols, TileRef{}, tag, dtype};
}

/** Make a functional chunk around an already-filled pooled tile; the
 *  chunk's dtype is the tile's. */
inline Chunk
makeTileChunk(std::uint32_t rows, std::uint32_t cols, TileRef tile,
              std::uint32_t tag = 0)
{
    rsn_assert(tile.capacity() >= std::uint64_t(rows) * cols,
               "tile too small for %ux%u chunk", rows, cols);
    const Dtype dtype = tile.dtype();
    return Chunk{rows, cols, std::move(tile), tag, dtype};
}

/** Make a functional chunk by copying @p values into a pooled tile. */
inline Chunk
makeDataChunk(std::uint32_t rows, std::uint32_t cols,
              const std::vector<float> &values, std::uint32_t tag = 0)
{
    rsn_assert(values.size() == std::size_t(rows) * cols,
               "payload size mismatch");
    TileRef tile = TilePool::instance().acquire(values.size());
    std::copy(values.begin(), values.end(), tile.mutableData());
    return makeTileChunk(rows, cols, std::move(tile), tag);
}

} // namespace rsn::sim

#endif // RSN_SIM_CHUNK_HH
