/**
 * @file
 * Chunk: the unit of data carried on RSN streams.
 *
 * A chunk is a 2-D tile block (rows x cols FP32 elements). Timing-only runs
 * leave @c data null; functional runs attach an FP32 payload in row-major
 * order. Receivers must treat payloads as immutable and allocate fresh
 * buffers for transformed data (copy-on-transform), since payloads are
 * shared when a mesh FU broadcasts one chunk to several destinations.
 */

#ifndef RSN_SIM_CHUNK_HH
#define RSN_SIM_CHUNK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace rsn::sim {

struct Chunk {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    /** Payload size on the wire; defaults to rows*cols*sizeof(float). */
    Bytes bytes = 0;
    /** Optional functional payload, row-major rows x cols. */
    std::shared_ptr<const std::vector<float>> data;
    /** Free-form tag for debugging / assertions (e.g. k-step index). */
    std::uint32_t tag = 0;

    std::uint64_t elems() const
    {
        return std::uint64_t(rows) * cols;
    }

    bool hasData() const { return data != nullptr; }

    /** Element access (functional payloads only). */
    float
    at(std::uint32_t r, std::uint32_t c) const
    {
        rsn_assert(data && r < rows && c < cols, "chunk access out of range");
        return (*data)[std::uint64_t(r) * cols + c];
    }
};

/** Make a timing-only chunk of rows x cols FP32 elements. */
inline Chunk
makeChunk(std::uint32_t rows, std::uint32_t cols, std::uint32_t tag = 0)
{
    return Chunk{rows, cols, Bytes(rows) * cols * sizeof(float), nullptr,
                 tag};
}

/** Make a functional chunk wrapping @p values (must be rows*cols floats). */
inline Chunk
makeDataChunk(std::uint32_t rows, std::uint32_t cols,
              std::vector<float> values, std::uint32_t tag = 0)
{
    rsn_assert(values.size() == std::size_t(rows) * cols,
               "payload size mismatch");
    return Chunk{rows, cols, Bytes(rows) * cols * sizeof(float),
                 std::make_shared<const std::vector<float>>(
                     std::move(values)),
                 tag};
}

} // namespace rsn::sim

#endif // RSN_SIM_CHUNK_HH
