/**
 * @file
 * Chunk: the unit of data carried on RSN streams.
 *
 * A chunk is a 2-D tile block (rows x cols FP32 elements). Timing-only runs
 * leave @c data empty; functional runs attach a pooled FP32 payload in
 * row-major order (sim/tile_pool.hh). The payload may be a sub-tile
 * *view* — Mem FUs publish row-slices of a staged tile as offset/length
 * windows aliased by refcount, never copies. Receivers must treat
 * payloads as immutable and take ownership (TileRef::ensureUnique,
 * copy-on-write) before transforming, since payloads are shared by
 * refcount when a mesh FU broadcasts one chunk to several destinations —
 * TileRef enforces this by gating plain writable access on unique
 * ownership. Ownership rules are spelled out in docs/datapath.md.
 */

#ifndef RSN_SIM_CHUNK_HH
#define RSN_SIM_CHUNK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/tile_pool.hh"

namespace rsn::sim {

struct Chunk {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    /** Optional functional payload, row-major rows x cols (pooled). */
    TileRef data;
    /** Free-form tag for debugging / assertions (e.g. k-step index). */
    std::uint32_t tag = 0;

    std::uint64_t elems() const
    {
        return std::uint64_t(rows) * cols;
    }

    /**
     * Payload size on the wire: always rows*cols*sizeof(float). Derived
     * rather than stored — every producer computed exactly this, and
     * dropping the field keeps Chunk at 32 bytes (it moves by value
     * through the stream rings on the per-chunk fast path).
     */
    Bytes bytes() const { return Bytes(rows) * cols * sizeof(float); }

    bool hasData() const { return static_cast<bool>(data); }

    /** Element access (functional payloads only). */
    float
    at(std::uint32_t r, std::uint32_t c) const
    {
        rsn_assert(data && r < rows && c < cols, "chunk access out of range");
        return data.data()[std::uint64_t(r) * cols + c];
    }

    /** Copy the payload out (tests / reference checks; allocates). */
    std::vector<float>
    toVector() const
    {
        rsn_assert(data, "no payload to copy");
        return std::vector<float>(data.data(), data.data() + elems());
    }
};

/** Make a timing-only chunk of rows x cols FP32 elements. */
inline Chunk
makeChunk(std::uint32_t rows, std::uint32_t cols, std::uint32_t tag = 0)
{
    return Chunk{rows, cols, TileRef{}, tag};
}

/** Make a functional chunk around an already-filled pooled tile. */
inline Chunk
makeTileChunk(std::uint32_t rows, std::uint32_t cols, TileRef tile,
              std::uint32_t tag = 0)
{
    rsn_assert(tile.capacity() >= std::uint64_t(rows) * cols,
               "tile too small for %ux%u chunk", rows, cols);
    return Chunk{rows, cols, std::move(tile), tag};
}

/** Make a functional chunk by copying @p values into a pooled tile. */
inline Chunk
makeDataChunk(std::uint32_t rows, std::uint32_t cols,
              const std::vector<float> &values, std::uint32_t tag = 0)
{
    rsn_assert(values.size() == std::size_t(rows) * cols,
               "payload size mismatch");
    TileRef tile = TilePool::instance().acquire(values.size());
    std::copy(values.begin(), values.end(), tile.mutableData());
    return makeTileChunk(rows, cols, std::move(tile), tag);
}

} // namespace rsn::sim

#endif // RSN_SIM_CHUNK_HH
