/**
 * @file
 * TilePool: recycled, refcounted typed tile buffers for Chunk payloads.
 *
 * Functional-mode chunks used to carry a fresh
 * `shared_ptr<const vector<float>>` per payload — one control-block
 * allocation plus one vector allocation per tile on the data plane. The
 * pool replaces both with size-bucketed buffers on intrusive free lists:
 * a producer acquires a tile (reusing a retired buffer of the same
 * bucket), fills it while it is still uniquely owned, and publishes it
 * inside a Chunk. Consumers share the tile by refcount (mesh broadcast
 * copies a Chunk, not the payload) and must treat it as immutable:
 * `TileRef::mutableData()` asserts unique ownership, which pins the
 * copy-on-transform rule at the API level. When the last reference drops,
 * the buffer returns to its bucket's free list — steady-state traffic
 * allocates nothing (pinned by tests/sim/test_stream_alloc.cc).
 *
 * ## Typed tiles (ISSUE 10)
 *
 * Tiles carry a Dtype tag (common/dtype.hh). Buffer capacity and the
 * free-list buckets are **byte**-based, so a retired FP32 buffer is
 * reusable as a bf16 tile of twice the elements and vice versa — the
 * pool is dtype-agnostic storage; only the header tag changes on
 * acquire. TileRef windows (offset/length) stay **element**-based:
 * slicing, COW, and tryExtend never need to know the element width
 * beyond converting to bytes at the copy sites. Typed access is
 * explicit — data()/mutableData() assert F32, data16()/mutableData16()
 * assert a 16-bit dtype, raw() is the untyped byte view (checksums,
 * fault injection) — so a dtype confusion fails loudly at the accessor
 * instead of silently reinterpreting payload bits.
 *
 * ## Views and copy-on-write
 *
 * A TileRef can also be a *view*: an offset/length window into another
 * ref's buffer, created with `slice()`. Views share the buffer's refcount
 * — slicing a row range out of a staged tile is a refcount bump, not an
 * `acquire`+copy — and are how the Mem FUs publish row-slices of a
 * buffered tile without touching the payload (see docs/datapath.md).
 * Writable access follows one rule everywhere: `mutableData()` demands
 * sole ownership (shared tiles are immutable, pinning broadcast
 * semantics), and `ensureUnique()` is the copy-on-write escape hatch —
 * in place when the caller is already the only owner, a copy into a
 * freshly acquired tile when anyone else can still read the buffer.
 *
 * ## Threading contract (docs/datapath.md "Threading contract")
 *
 * A pool — and every tile it owns — belongs to exactly one thread: the
 * *lane* that created it. One simulated machine runs entirely on one
 * thread, so refcounts stay plain integers and the pool free lists need
 * no locking even when N machines sweep in parallel (lib/sweep.hh):
 * each worker lane gets its own pool because `TilePool::instance()` is
 * **thread-local**, and tiles must never cross lanes. Debug builds
 * enforce the contract with an owning-thread check in acquire/retire,
 * so a leaked cross-lane tile fails loudly (rsn_panic naming the
 * contract) instead of silently corrupting a free list or racing a
 * refcount. Independent pools can still be created directly in tests —
 * they are owned by the constructing thread the same way.
 */

#ifndef RSN_SIM_TILE_POOL_HH
#define RSN_SIM_TILE_POOL_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/dtype.hh"
#include "common/log.hh"

/** Owning-thread checks on the tile pool: on in debug builds (the
 *  Release hot path stays branch-free), or force with
 *  -DRSN_THREAD_CHECKS (the TSan CI job does). */
#if !defined(NDEBUG) || defined(RSN_THREAD_CHECKS)
#define RSN_POOL_OWNER_CHECKS 1
#else
#define RSN_POOL_OWNER_CHECKS 0
#endif

namespace rsn::sim {

class TilePool;

namespace detail {

/** Header preceding each pooled buffer's payload storage. */
struct TileHdr {
    TilePool *pool;      ///< Owning pool (for release on last unref).
    TileHdr *next;       ///< Free-list link while retired.
    std::uint64_t cap;   ///< Byte capacity (the bucket size).
    /** Plain (non-atomic) refcount: a tile lives and dies on the one
     *  lane thread that owns its pool, so refs never race. Cross-lane
     *  sharing is a contract violation the pool's owning-thread check
     *  catches in debug builds. */
    std::uint32_t refs;
    /** Bucket index (uint16 keeps the header at 32 bytes now that a
     *  dtype tag shares the word; there are only ~26 buckets). */
    std::uint16_t bucket;
    /** Element type of the current tenant. Storage is dtype-agnostic:
     *  acquire() restamps this on every reuse. */
    Dtype dtype;
    std::uint8_t pad_ = 0;

    std::uint32_t elemBytes() const { return dtypeBytes(dtype); }
    /** Element capacity of the current tenant's dtype. */
    std::uint64_t elemCap() const { return cap / elemBytes(); }

    std::byte *payload() { return reinterpret_cast<std::byte *>(this + 1); }
    const std::byte *payload() const
    {
        return reinterpret_cast<const std::byte *>(this + 1);
    }
};

static_assert(sizeof(TileHdr) == 32,
              "payload must start 32-byte aligned (GEMM panels rely on "
              "it) and the header must not grow the per-tile overhead");

} // namespace detail

/**
 * Shared reference to a pooled tile, or an offset/length view into one.
 * Copy = refcount bump; destruction of the last reference (whole-tile
 * refs and views alike) retires the buffer to its pool's free list.
 */
class TileRef
{
  public:
    TileRef() = default;
    ~TileRef() { release(); }

    TileRef(const TileRef &o) : h_(o.h_), off_(o.off_), len_(o.len_)
    {
        if (h_)
            ++h_->refs;
    }
    TileRef(TileRef &&o) noexcept
        : h_(std::exchange(o.h_, nullptr)), off_(o.off_), len_(o.len_)
    {
    }

    TileRef &
    operator=(const TileRef &o)
    {
        if (this != &o) {
            release();
            h_ = o.h_;
            off_ = o.off_;
            len_ = o.len_;
            if (h_)
                ++h_->refs;
        }
        return *this;
    }
    TileRef &
    operator=(TileRef &&o) noexcept
    {
        if (this != &o) {
            release();
            h_ = std::exchange(o.h_, nullptr);
            off_ = o.off_;
            len_ = o.len_;
        }
        return *this;
    }

    explicit operator bool() const { return h_ != nullptr; }

    /** Element type of the underlying tile (F32 for an empty ref). */
    Dtype dtype() const { return h_ ? h_->dtype : Dtype::F32; }

    /** Read-only payload access (the only access for shared tiles).
     *  Asserts the tile is F32 — typed tiles use data16()/raw(). */
    const float *
    data() const
    {
        rsn_assert(h_, "deref of empty TileRef");
        rsn_assert(h_->dtype == Dtype::F32,
                   "float access to a %s tile", dtypeName(h_->dtype));
        return reinterpret_cast<const float *>(h_->payload()) + off_;
    }

    /** Read-only access to a 16-bit (bf16/f16) tile's payload. */
    const std::uint16_t *
    data16() const
    {
        rsn_assert(h_, "deref of empty TileRef");
        rsn_assert(h_->elemBytes() == 2,
                   "u16 access to a %s tile", dtypeName(h_->dtype));
        return reinterpret_cast<const std::uint16_t *>(h_->payload()) +
               off_;
    }

    /** Untyped byte view of this ref's window (checksums, bit-flip
     *  injection, byte copies). Valid for every dtype. */
    const void *
    raw() const
    {
        rsn_assert(h_, "deref of empty TileRef");
        return h_->payload() + std::uint64_t(off_) * h_->elemBytes();
    }

    /**
     * Writable payload access, legal only while this is the sole
     * reference — mutating a tile another consumer can still read would
     * break broadcast-payload immutability. A sole-owner *view* may
     * write through this too (nobody else can observe the buffer); use
     * ensureUnique() when shared ownership is possible. Asserts F32.
     */
    float *
    mutableData()
    {
        rsn_assert(h_ && h_->refs == 1,
                   "mutable access to a shared or empty tile");
        rsn_assert(h_->dtype == Dtype::F32,
                   "float access to a %s tile", dtypeName(h_->dtype));
        return reinterpret_cast<float *>(h_->payload()) + off_;
    }

    /** Writable access to a sole-owned 16-bit tile's payload. */
    std::uint16_t *
    mutableData16()
    {
        rsn_assert(h_ && h_->refs == 1,
                   "mutable access to a shared or empty tile");
        rsn_assert(h_->elemBytes() == 2,
                   "u16 access to a %s tile", dtypeName(h_->dtype));
        return reinterpret_cast<std::uint16_t *>(h_->payload()) + off_;
    }

    /** Writable untyped view of a sole-owned tile (any dtype). */
    void *
    mutableRaw()
    {
        rsn_assert(h_ && h_->refs == 1,
                   "mutable access to a shared or empty tile");
        return h_->payload() + std::uint64_t(off_) * h_->elemBytes();
    }

    /**
     * Copy-on-write access to this ref's first @p elems elements: in
     * place when this is already the sole reference, otherwise the
     * window is copied into a freshly acquired tile from the same pool
     * (the shared original stays untouched) and this ref re-seats onto
     * the copy, with its window narrowed to exactly @p elems — the new
     * bucket's spare capacity is uninitialized and stays unreachable.
     * Always returns writable storage of >= @p elems floats; elements
     * past @p elems of the old window remain reachable only on the
     * in-place path. Asserts F32 (ensureUniqueRaw serves any dtype).
     */
    float *
    ensureUnique(std::uint64_t elems)
    {
        rsn_assert(h_ && h_->dtype == Dtype::F32,
                   "float COW access to a %s tile",
                   dtypeName(h_ ? h_->dtype : Dtype::F32));
        return static_cast<float *>(ensureUniqueRaw(elems));
    }

    /** Dtype-agnostic copy-on-write: same contract as ensureUnique but
     *  over @p elems elements of the tile's own dtype, returned as an
     *  untyped pointer (the fault injector's bit-flip path and the
     *  typed Mem-FU transforms use this). */
    void *ensureUniqueRaw(std::uint64_t elems);

    /**
     * An offset/length view of this ref's window: shares (and bumps)
     * the buffer refcount, no copy. The view's data()/capacity() cover
     * exactly [off, off+len) of this ref.
     */
    TileRef
    slice(std::uint64_t off, std::uint64_t len) const
    {
        rsn_assert(h_ && len > 0 && off + len <= len_,
                   "slice [%llu,+%llu) outside tile view of %llu elems",
                   static_cast<unsigned long long>(off),
                   static_cast<unsigned long long>(len),
                   static_cast<unsigned long long>(len_));
        ++h_->refs;
        return TileRef{h_, off_ + static_cast<std::uint32_t>(off),
                       static_cast<std::uint32_t>(len)};
    }

    /** Elements reachable through this ref: the bucket capacity for a
     *  whole-tile ref (>= requested size), the window length for a view. */
    std::uint64_t capacity() const { return h_ ? len_ : 0; }

    /** True when this ref is an offset/length window rather than the
     *  whole underlying buffer. */
    bool
    isView() const
    {
        return h_ && (off_ != 0 || len_ != h_->elemCap());
    }

    /**
     * If @p next views the same buffer immediately after this ref's
     * window, widen this window to cover both and return true (the
     * caller then drops @p next; this ref's refcount alone keeps the
     * buffer alive). This is how GatherTile knits row-slices of one
     * staged tile back into a single contiguous segment.
     */
    bool
    tryExtend(const TileRef &next)
    {
        if (!h_ || next.h_ != h_ || off_ + len_ != next.off_)
            return false;
        len_ += next.len_;
        return true;
    }

    /** True when exactly one reference exists. */
    bool unique() const { return h_ && h_->refs == 1; }

    /** Drop this reference (no-op when empty). Forced inline: every
     *  chunk hand-off on the stream hot path drops a ref, and the LTO
     *  inline budget must not be allowed to out-line it (the retire()
     *  slow path stays an out-of-line call either way). */
    [[gnu::always_inline]] void release();

  private:
    friend class TilePool;
    explicit TileRef(detail::TileHdr *h)
        : h_(h), len_(h ? static_cast<std::uint32_t>(h->elemCap()) : 0)
    {
    }
    TileRef(detail::TileHdr *h, std::uint32_t off, std::uint32_t len)
        : h_(h), off_(off), len_(len)
    {
    }

    // 32-bit window fields keep a TileRef at 16 bytes (Chunks move
    // through stream rings by value); the largest bucket is 2^31
    // elements, so element offsets/lengths always fit.
    detail::TileHdr *h_ = nullptr;
    std::uint32_t off_ = 0;  ///< Window start (elements into payload).
    std::uint32_t len_ = 0;  ///< Window length in elements.
};

/**
 * A scatter/gather composition of pooled tile segments.
 *
 * MemC used to assemble a multi-chunk tile by copying every incoming
 * chunk payload into one pooled staging tile. A GatherTile instead
 * *adopts* each arriving payload as a segment — a refcount move, no
 * copy — and only materializes a contiguous buffer when a consumer
 * genuinely needs contiguity the segment list cannot serve:
 *
 *  - `window(off, len)` returns a refcount-bumped view when the range
 *    falls inside one segment (the common case: send-side row slicing
 *    matches receive-side chunking), and materializes first otherwise;
 *  - row-wise transforms (softmax/GELU/LayerNorm/scale-shift/residual)
 *    never need contiguity at all — they run per segment through
 *    `segmentMutable()`, which applies the usual copy-on-write rule
 *    (TileRef::ensureUnique) segment by segment;
 *  - the segment list is a fixed inline array: appending beyond its
 *    capacity first collapses the existing segments into one
 *    (materialize) rather than allocating list storage, so the gather
 *    path stays 0 allocs/tile in steady state.
 *
 * A single-segment GatherTile behaves exactly like the old adopted
 * TileRef (contiguous() is true, window() is a plain slice).
 */
class GatherTile
{
  public:
    /** Segment-list capacity; covers every recv_chunks codegen emits
     *  (one chunk per MME row-slice), with materialize as overflow. */
    static constexpr std::size_t kInlineSegments = 16;

    /** Drop every segment (releases the refs). */
    void
    clear()
    {
        for (std::size_t i = 0; i < count_; ++i)
            segs_[i].tile.release();
        count_ = 0;
        total_ = 0;
    }

    bool empty() const { return count_ == 0; }
    std::size_t segments() const { return count_; }
    /** Total logical elements across segments. */
    std::uint64_t elems() const { return total_; }
    /** True when the whole gather is one contiguous tile (or empty). */
    bool contiguous() const { return count_ <= 1; }

    /** Element type of the gathered segments (F32 when empty). All
     *  segments share one dtype — append() asserts it. */
    Dtype
    dtype() const
    {
        return count_ ? segs_[0].tile.dtype() : Dtype::F32;
    }

    /** Adopt @p tile as the next @p elems logical elements. Segments
     *  must agree on dtype (one staged tile has one element type). */
    void append(TileRef tile, std::uint64_t elems);

    const TileRef &
    segment(std::size_t i) const
    {
        rsn_assert(i < count_, "gather segment out of range");
        return segs_[i].tile;
    }

    std::uint64_t
    segmentElems(std::size_t i) const
    {
        rsn_assert(i < count_, "gather segment out of range");
        return segs_[i].elems;
    }

    /**
     * Writable access to segment @p i (copy-on-write when the segment
     * is still shared with its producer — TileRef::ensureUnique).
     * F32 gathers only; typed gathers go through segmentMutableRaw.
     */
    float *
    segmentMutable(std::size_t i)
    {
        rsn_assert(i < count_, "gather segment out of range");
        return segs_[i].tile.ensureUnique(segs_[i].elems);
    }

    /** Dtype-agnostic writable access to segment @p i (same COW rule). */
    void *
    segmentMutableRaw(std::size_t i)
    {
        rsn_assert(i < count_, "gather segment out of range");
        return segs_[i].tile.ensureUniqueRaw(segs_[i].elems);
    }

    /**
     * Collapse to a single contiguous tile covering all elements. A
     * refcount no-op when already contiguous; otherwise copies every
     * segment into one freshly acquired pool tile (the one legitimate
     * copy on the assembly path). Returns the contiguous ref.
     */
    TileRef &materialize();

    /**
     * A contiguous view of logical elements [off, off+len): a refcount
     * bump when the range lies inside one segment, else materializes
     * first. This is how the Mem FUs publish row-slices of staged data.
     */
    TileRef window(std::uint64_t off, std::uint64_t len);

  private:
    struct Seg {
        TileRef tile;
        std::uint64_t elems = 0;
    };

    std::array<Seg, kInlineSegments> segs_;
    std::uint32_t count_ = 0;
    std::uint64_t total_ = 0;
};

/** Size-bucketed free-list allocator of FP32 tiles; see file comment. */
class TilePool
{
  public:
    TilePool() : owner_(std::this_thread::get_id()) {}
    ~TilePool();
    TilePool(const TilePool &) = delete;
    TilePool &operator=(const TilePool &) = delete;

    /**
     * The calling thread's lane-owned pool (thread-local): the one
     * makeDataChunk and the FUs use. Every machine built and run on a
     * thread draws all its tiles from that thread's pool, which is what
     * keeps refcounts non-atomic under the parallel sweep executor.
     * RsnMachine's constructor touches this before any tile exists so
     * the pool outlives machine-holding objects on the same thread
     * (thread-local destruction runs in reverse construction order).
     */
    static TilePool &instance();

    /**
     * Acquire a tile of at least @p elems elements of @p dtype.
     * Contents are uninitialized; the caller fills via
     * TileRef::mutableData() (F32) / mutableData16() (bf16, f16).
     * Buckets are byte-based, so any retired buffer of a sufficient
     * byte capacity is reused regardless of its previous dtype.
     */
    TileRef acquire(std::uint64_t elems, Dtype dtype = Dtype::F32);

    /** @{ Stats (for tests and reports). */
    std::uint64_t buffersAllocated() const { return buffers_allocated_; }
    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t reuses() const { return reuses_; }
    std::uint64_t liveTiles() const { return live_; }
    std::uint64_t buffersFreed() const { return buffers_freed_; }
    /** Bytes currently parked on the free lists (payload only). */
    std::uint64_t freeBytes() const { return free_bytes_; }
    /** @} */

    /**
     * Arena reset: free every retired buffer back to the system and
     * return how many were released. Live tiles (refs > 0) are
     * untouched — they retire to the (now empty) free lists as usual.
     * This is the quarantine hook for long-running serving processes
     * (serve/scheduler.cc): one faulted run can balloon the pool with
     * oversized buckets its retry never needs again, and without a trim
     * that growth is carried for the life of the lane thread. Callers
     * on the steady-state path should NOT trim — the free lists are the
     * whole point of the pool; trim only at machine-rebuild boundaries.
     */
    std::uint64_t trim();

  private:
    friend class TileRef;

    /** Smallest bucket: 2^8 = 256 bytes (an 8x8 FP32 tile). */
    static constexpr std::uint32_t kMinBytesLog2 = 8;
    /** Largest bucket: 2^33 bytes (8 GiB); far above any tile. */
    static constexpr std::uint32_t kBuckets = 26;

    static std::uint32_t
    bucketFor(std::uint64_t bytes)
    {
        std::uint32_t log2 = std::bit_width(bytes - 1);
        return log2 <= kMinBytesLog2 ? 0 : log2 - kMinBytesLog2;
    }

    void retire(detail::TileHdr *h);

    /** Owning-thread check (debug builds): tiles must not cross lanes. */
    void
    checkOwner(const char *op) const
    {
#if RSN_POOL_OWNER_CHECKS
        rsn_assert(std::this_thread::get_id() == owner_,
                   "TilePool::%s from a foreign thread — tiles are "
                   "lane-owned and must not cross sweep lanes "
                   "(docs/datapath.md, threading contract)",
                   op);
#else
        (void)op;
#endif
    }

    /** The lane (thread) this pool and all its tiles belong to. */
    std::thread::id owner_;
    std::array<detail::TileHdr *, kBuckets> free_{};
    std::uint64_t buffers_allocated_ = 0;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
    std::uint64_t live_ = 0;
    std::uint64_t buffers_freed_ = 0;
    std::uint64_t free_bytes_ = 0;
};

inline void
TileRef::release()
{
    if (!h_)
        return;
    rsn_assert(h_->refs > 0, "tile refcount underflow");
    if (--h_->refs == 0)
        h_->pool->retire(h_);
    h_ = nullptr;
}

} // namespace rsn::sim

#endif // RSN_SIM_TILE_POOL_HH
