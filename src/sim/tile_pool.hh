/**
 * @file
 * TilePool: recycled, refcounted FP32 tile buffers for Chunk payloads.
 *
 * Functional-mode chunks used to carry a fresh
 * `shared_ptr<const vector<float>>` per payload — one control-block
 * allocation plus one vector allocation per tile on the data plane. The
 * pool replaces both with size-bucketed buffers on intrusive free lists:
 * a producer acquires a tile (reusing a retired buffer of the same
 * bucket), fills it while it is still uniquely owned, and publishes it
 * inside a Chunk. Consumers share the tile by refcount (mesh broadcast
 * copies a Chunk, not the payload) and must treat it as immutable:
 * `TileRef::mutableData()` asserts unique ownership, which pins the
 * copy-on-transform rule at the API level. When the last reference drops,
 * the buffer returns to its bucket's free list — steady-state traffic
 * allocates nothing (pinned by tests/sim/test_stream_alloc.cc).
 *
 * The simulator is single-threaded, so refcounts are plain integers and
 * the pool needs no locking. `TilePool::instance()` is the process-wide
 * pool every producer uses; independent pools can be created in tests.
 */

#ifndef RSN_SIM_TILE_POOL_HH
#define RSN_SIM_TILE_POOL_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/log.hh"

namespace rsn::sim {

class TilePool;

namespace detail {

/** Header preceding each pooled buffer's float storage. */
struct TileHdr {
    TilePool *pool;      ///< Owning pool (for release on last unref).
    TileHdr *next;       ///< Free-list link while retired.
    std::uint64_t cap;   ///< Element capacity (the bucket size).
    std::uint32_t refs;  ///< Plain refcount; the sim is single-threaded.
    std::uint32_t bucket;

    float *payload() { return reinterpret_cast<float *>(this + 1); }
    const float *payload() const
    {
        return reinterpret_cast<const float *>(this + 1);
    }
};

static_assert(sizeof(TileHdr) % alignof(float) == 0,
              "payload must start float-aligned");

} // namespace detail

/**
 * Shared reference to a pooled tile. Copy = refcount bump; destruction of
 * the last reference retires the buffer to its pool's free list.
 */
class TileRef
{
  public:
    TileRef() = default;
    ~TileRef() { release(); }

    TileRef(const TileRef &o) : h_(o.h_)
    {
        if (h_)
            ++h_->refs;
    }
    TileRef(TileRef &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}

    TileRef &
    operator=(const TileRef &o)
    {
        if (this != &o) {
            release();
            h_ = o.h_;
            if (h_)
                ++h_->refs;
        }
        return *this;
    }
    TileRef &
    operator=(TileRef &&o) noexcept
    {
        if (this != &o) {
            release();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }

    explicit operator bool() const { return h_ != nullptr; }

    /** Read-only payload access (the only access for shared tiles). */
    const float *
    data() const
    {
        rsn_assert(h_, "deref of empty TileRef");
        return h_->payload();
    }

    /**
     * Writable payload access, legal only while this is the sole
     * reference — mutating a tile another consumer can still read would
     * break broadcast-payload immutability.
     */
    float *
    mutableData()
    {
        rsn_assert(h_ && h_->refs == 1,
                   "mutable access to a shared or empty tile");
        return h_->payload();
    }

    /** Element capacity of the underlying bucket (>= requested size). */
    std::uint64_t capacity() const { return h_ ? h_->cap : 0; }

    /** True when exactly one reference exists. */
    bool unique() const { return h_ && h_->refs == 1; }

    /** Drop this reference (no-op when empty). */
    void release();

  private:
    friend class TilePool;
    explicit TileRef(detail::TileHdr *h) : h_(h) {}

    detail::TileHdr *h_ = nullptr;
};

/** Size-bucketed free-list allocator of FP32 tiles; see file comment. */
class TilePool
{
  public:
    TilePool() = default;
    ~TilePool();
    TilePool(const TilePool &) = delete;
    TilePool &operator=(const TilePool &) = delete;

    /** The process-wide pool used by makeDataChunk and the FUs. */
    static TilePool &instance();

    /**
     * Acquire a tile of at least @p elems floats. Contents are
     * uninitialized; the caller fills via TileRef::mutableData().
     */
    TileRef acquire(std::uint64_t elems);

    /** @{ Stats (for tests and reports). */
    std::uint64_t buffersAllocated() const { return buffers_allocated_; }
    std::uint64_t acquires() const { return acquires_; }
    std::uint64_t reuses() const { return reuses_; }
    std::uint64_t liveTiles() const { return live_; }
    /** @} */

  private:
    friend class TileRef;

    /** Smallest bucket: 2^6 = 64 elements (a 8x8 FP32 tile). */
    static constexpr std::uint32_t kMinElemsLog2 = 6;
    /** Largest bucket: 2^31 elements (8 GiB); far above any tile. */
    static constexpr std::uint32_t kBuckets = 26;

    static std::uint32_t
    bucketFor(std::uint64_t elems)
    {
        std::uint32_t log2 = std::bit_width(elems - 1);
        return log2 <= kMinElemsLog2 ? 0 : log2 - kMinElemsLog2;
    }

    void retire(detail::TileHdr *h);

    std::array<detail::TileHdr *, kBuckets> free_{};
    std::uint64_t buffers_allocated_ = 0;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
    std::uint64_t live_ = 0;
};

inline void
TileRef::release()
{
    if (!h_)
        return;
    rsn_assert(h_->refs > 0, "tile refcount underflow");
    if (--h_->refs == 0)
        h_->pool->retire(h_);
    h_ = nullptr;
}

} // namespace rsn::sim

#endif // RSN_SIM_TILE_POOL_HH
