#include "baseline/gpu.hh"

#include <algorithm>
#include <cmath>

namespace rsn::baseline {

std::vector<GpuSpec>
table10Gpus()
{
    std::vector<GpuSpec> v;
    v.push_back(GpuSpec{"T4", "FP32", 2018, 12, 8.1, 320, 545, 72, 42,
                        {67, 127, 258, 499}, 31});
    v.push_back(GpuSpec{"V100", "FP32", 2017, 12, 15.7, 900, 815, 292,
                        256, {29, 49, 93, 182}, 0});
    v.push_back(GpuSpec{"A100", "FP32", 2020, 7, 19.5, 1555, 826, 308,
                        268, {23, 40, 72, 137}, 34});
    v.push_back(GpuSpec{"A100-FP16", "FP16", 2020, 7, 312, 1555, 826,
                        392, 352, {8, 10, 15, 23}, 25});
    v.push_back(GpuSpec{"L4", "FP32", 2023, 5, 30.3, 300, 294, 72, 41,
                        {41, 83, 156, 307}, 12});
    return v;
}

double
GpuModel::computeEff(std::uint32_t rows) const
{
    // GEMM efficiency grows with the M dimension and saturates; FP32 on
    // CUDA cores tops out around 60% of datasheet peak, tensor-core FP16
    // somewhat lower relative to its much higher peak.
    double sat = spec_.precision == "FP16" ? 0.45 : 0.60;
    double half_point = 100.0;  // rows at which eff approaches sat
    return sat * rows / (rows + half_point);
}

double
GpuModel::bertLatencyMs(std::uint32_t seq, std::uint32_t batch) const
{
    const std::uint32_t rows = seq * batch;
    const double hidden = 1024, ff = 4096, heads = 16.0 * batch;
    const int layers = 24;

    // Per-encoder FLOPs.
    double mm_flops = 2.0 * rows * hidden * hidden * 4   // QKV + dense
                      + 2.0 * rows * hidden * ff * 2     // FF1 + FF2
                      + 4.0 * heads * seq * (hidden / 16) * seq;
    double peak = spec_.peak_tflops * 1e12 * computeEff(rows);

    // DRAM traffic per encoder: weights stream once per launch group
    // plus activations; GPUs re-read weights every kernel launch.
    double weight_bytes = (4 * hidden * hidden + 2 * hidden * ff) * 4.0;
    double act_bytes = (8.0 * rows * hidden + 2.0 * rows * ff +
                        2.0 * heads * seq * seq) *
                       4.0;
    double bw = spec_.bw_gbs * 1e9 * 0.70;

    double compute_s = mm_flops / peak;
    double mem_s = (weight_bytes + act_bytes) / bw;
    // Kernel-launch and attention small-kernel overhead per encoder.
    double overhead_s = 120e-6;
    return (std::max(compute_s, mem_s) + overhead_s) * layers * 1e3;
}

double
GpuModel::bertDramGb(std::uint32_t seq, std::uint32_t batch) const
{
    const std::uint32_t rows = seq * batch;
    const double hidden = 1024, ff = 4096, heads = 16.0 * batch;
    const int layers = 24;
    double weight_bytes = (4 * hidden * hidden + 2 * hidden * ff) * 4.0;
    double act_bytes = (8.0 * rows * hidden + 2.0 * rows * ff +
                        2.0 * heads * seq * seq) *
                       4.0;
    // Cache-miss amplification on activations + weight re-reads across
    // the many kernels of one encoder.
    double amplification = spec_.precision == "FP16" ? 2.0 : 2.6;
    return (weight_bytes + act_bytes) * amplification * layers / 1e9;
}

double
GpuModel::efficiencySeqPerJ(std::uint32_t seq, std::uint32_t batch,
                            bool dynamic) const
{
    double lat_s = bertLatencyMs(seq, batch) / 1e3;
    double power = dynamic ? spec_.dynamic_w : spec_.operating_w;
    double energy = lat_s * power;
    return batch / energy;
}

} // namespace rsn::baseline
