/**
 * @file
 * GPU roofline model for the Table 10 comparison (T4 / V100 / A100 / L4).
 *
 * The paper compares RSN-XNN against NVIDIA GPUs using published numbers;
 * this model reconstructs GPU BERT-Large latency/energy from datasheet
 * peaks with a batch-dependent efficiency curve, and embeds the paper's
 * measured values as reference columns so bench_table10 can print
 * model-vs-paper side by side.
 */

#ifndef RSN_BASELINE_GPU_HH
#define RSN_BASELINE_GPU_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rsn::baseline {

struct GpuSpec {
    std::string name;
    std::string precision = "FP32";
    int release_year = 0;
    int process_nm = 0;
    double peak_tflops = 0;
    double bw_gbs = 0;
    double die_mm2 = 0;
    double operating_w = 0;  ///< Measured at B=8 (paper Table 10).
    double dynamic_w = 0;
    /** Paper-reported latencies (ms) at B = 1, 2, 4, 8; 0 if absent. */
    double paper_latency_ms[4] = {0, 0, 0, 0};
    double paper_dram_gb = 0;  ///< Total DRAM traffic at B=8.
};

/** The GPUs of Table 10 with datasheet constants and paper values. */
std::vector<GpuSpec> table10Gpus();

class GpuModel
{
  public:
    explicit GpuModel(GpuSpec spec) : spec_(std::move(spec)) {}

    const GpuSpec &spec() const { return spec_; }

    /**
     * Modeled BERT-Large end-to-end latency (24 encoders) in ms for
     * sequence length @p seq and batch @p batch.
     */
    double bertLatencyMs(std::uint32_t seq, std::uint32_t batch) const;

    /** Modeled DRAM traffic for the same run, in GB. */
    double bertDramGb(std::uint32_t seq, std::uint32_t batch) const;

    /** Sequences per joule at batch @p batch (operating / dynamic). */
    double efficiencySeqPerJ(std::uint32_t seq, std::uint32_t batch,
                             bool dynamic) const;

  private:
    /** Compute-efficiency saturation with batch (FP32 GEMM on CUDA
     *  cores reaches ~60% of peak once the GEMMs are large). */
    double computeEff(std::uint32_t rows) const;

    GpuSpec spec_;
};

} // namespace rsn::baseline

#endif // RSN_BASELINE_GPU_HH
