#include "baseline/vector_overlay.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace rsn::baseline {

std::string
VInstr::toString() const
{
    switch (op) {
      case VOp::Load:
        return detail::formatv("LD v%d, %u", dst, elems);
      case VOp::Store:
        return detail::formatv("ST v%d, %u", src_a, elems);
      case VOp::Add:
        return detail::formatv("ADD v%d, v%d, v%d, %u", dst, src_a, src_b,
                               elems);
    }
    return "?";
}

VectorOverlay::VectorOverlay(VectorOverlayConfig cfg) : cfg_(cfg)
{
    rsn_assert(cfg.num_regs > 0, "need registers");
}

VectorRunResult
VectorOverlay::run(const std::vector<VInstr> &prog) const
{
    // reg_ready[r]: tick at which register r's value is available (RAW).
    // reg_free[r]: tick at which r's last reader is done (WAR) and its
    // last writer is done (WAW).
    std::vector<Tick> reg_ready(cfg_.num_regs, 0);
    std::vector<Tick> reg_free(cfg_.num_regs, 0);
    // Separate load / store / add units (the Fig. 6 baseline datapath),
    // so hazards — not structural conflicts — dominate.
    Tick load_busy = 0, store_busy = 0, alu_busy = 0;
    Tick issue_at = 0;

    VectorRunResult res;
    for (const auto &in : prog) {
        Tick ready = issue_at;
        Tick unit_free = in.op == VOp::Add    ? alu_busy
                         : in.op == VOp::Load ? load_busy
                                              : store_busy;
        ready = std::max(ready, unit_free);
        if (in.src_a >= 0)
            ready = std::max(ready, reg_ready[in.src_a]);
        if (in.src_b >= 0)
            ready = std::max(ready, reg_ready[in.src_b]);
        if (in.dst >= 0)
            ready = std::max(ready, reg_free[in.dst]);

        res.stall_cycles += ready - issue_at;

        double rate = (in.op == VOp::Add) ? cfg_.alu_elems_per_cycle
                                          : cfg_.mem_elems_per_cycle;
        Tick dur = static_cast<Tick>(std::ceil(in.elems / rate));
        Tick end = ready + dur;

        if (in.op == VOp::Add)
            alu_busy = end;
        else if (in.op == VOp::Load)
            load_busy = end;
        else
            store_busy = end;
        if (in.dst >= 0) {
            reg_ready[in.dst] = end;
            reg_free[in.dst] = end;
        }
        // Readers hold their sources until completion (WAR hazard).
        if (in.src_a >= 0)
            reg_free[in.src_a] = std::max(reg_free[in.src_a], end);
        if (in.src_b >= 0)
            reg_free[in.src_b] = std::max(reg_free[in.src_b], end);

        issue_at = ready + cfg_.issue_cycles;  // single-issue, in order
        res.cycles = std::max(res.cycles, end);
        ++res.instructions;
    }
    return res;
}

std::vector<VInstr>
fig6App1()
{
    // v2 holds the all-ones constant (pre-loaded, not counted — same as
    // the paper, which marks v2 read-only).
    return {
        {VOp::Load, 0, -1, -1, 100},   // LD v0 <- in[0..100)
        {VOp::Add, 2, 0, 1, 100},      // ADD v2 = v0 + v1(ones)
        {VOp::Store, -1, 2, -1, 100},  // ST v2 -> out
    };
}

std::vector<VInstr>
fig6App2()
{
    // Ranges: [0,100) add, [100,200) copy, [200,300) add. The copy reuses
    // v0/v2 and creates the WAR chains the paper highlights.
    return {
        {VOp::Load, 0, -1, -1, 100},  {VOp::Add, 2, 0, 1, 100},
        {VOp::Store, -1, 2, -1, 100},
        {VOp::Load, 0, -1, -1, 100},  {VOp::Store, -1, 0, -1, 100},
        {VOp::Load, 0, -1, -1, 100},  {VOp::Add, 2, 0, 1, 100},
        {VOp::Store, -1, 2, -1, 100},
    };
}

} // namespace rsn::baseline
