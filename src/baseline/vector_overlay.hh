/**
 * @file
 * Baseline overlay: the RISC-like vector ISA of paper Fig. 6.
 *
 * A von-Neumann-style DNN overlay in the style of Brainwave: a
 * single-threaded, in-order instruction stream over named vector
 * registers and load/add/store units. Instructions are architecturally
 * atomic, and hazards (RAW on sources, WAR/WAW on destinations) are
 * resolved by stalling — there is no register renaming, because renaming
 * large on-chip-buffer "registers" is too costly on FPGAs (Sec. 3.1).
 *
 * bench_fig6 runs the paper's two applications on this model and on the
 * RSN three-FU datapath to reproduce the stall behaviour comparison.
 */

#ifndef RSN_BASELINE_VECTOR_OVERLAY_HH
#define RSN_BASELINE_VECTOR_OVERLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace rsn::baseline {

/** Baseline opcodes. */
enum class VOp : std::uint8_t { Load, Store, Add };

/** One vector instruction (register indices; Add is v_dst = v_a + v_b). */
struct VInstr {
    VOp op;
    int dst = -1;   ///< Destination register (Load/Add) .
    int src_a = -1; ///< Source register (Store/Add).
    int src_b = -1; ///< Second source (Add).
    std::uint32_t elems = 0;

    std::string toString() const;
};

/** Timing/structure of the baseline datapath. */
struct VectorOverlayConfig {
    int num_regs = 3;
    /** Elements moved per cycle by the load/store unit. */
    double mem_elems_per_cycle = 4;
    /** Elements per cycle through the add unit. */
    double alu_elems_per_cycle = 8;
    /** Fixed issue/decode cost per instruction. */
    Tick issue_cycles = 1;
};

/** Result of executing a baseline program. */
struct VectorRunResult {
    Tick cycles = 0;
    Tick stall_cycles = 0;    ///< Cycles lost to RAW/WAR/WAW hazards.
    std::uint64_t instructions = 0;
};

/**
 * In-order execution model: each unit (memory, ALU) is a resource with a
 * busy-until time; an instruction issues when its sources are ready
 * (RAW), its destination is free (WAR/WAW), and its unit is idle.
 */
class VectorOverlay
{
  public:
    explicit VectorOverlay(VectorOverlayConfig cfg = {});

    /** Execute @p prog and report timing. */
    VectorRunResult run(const std::vector<VInstr> &prog) const;

  private:
    VectorOverlayConfig cfg_;
};

/** The paper's Application 1: out[0..100) = in[0..100) + 1. */
std::vector<VInstr> fig6App1();

/** Application 2: +1 / copy / +1 over three 100-element ranges. */
std::vector<VInstr> fig6App2();

} // namespace rsn::baseline

#endif // RSN_BASELINE_VECTOR_OVERLAY_HH
