#include "baseline/charm.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace rsn::baseline {

std::pair<double, double>
CharmModel::groupWork(const lib::Model &m) const
{
    const double large_flops = cfg_.large_engine_tiles *
                               cfg_.tile_gflops * 1e9 * cfg_.large_eff *
                               cfg_.layer_sched_eff;
    const double small_flops =
        cfg_.small_engine_tiles * cfg_.tile_gflops * 1e9 * cfg_.small_eff;
    const double bw = cfg_.ddr_gbps * 1e9;

    double large_s = 0, small_s = 0;
    for (const auto &seg : m.segments) {
        if (const auto *l = std::get_if<lib::LinearLayer>(&seg)) {
            double flops = 2.0 * l->m * l->k * l->n;
            // Layer-by-layer: inputs, weights, and outputs all cross the
            // single DDR channel.
            double bytes = (double(l->m) * l->k + double(l->k) * l->n +
                            double(l->m) * l->n) *
                           sizeof(float);
            double compute = flops / large_flops;
            double mem = bytes / bw;
            // Partial overlap of compute and memory only.
            large_s += std::max(compute, mem) +
                       (1.0 - cfg_.overlap) * std::min(compute, mem);
        } else if (const auto *a =
                       std::get_if<lib::AttentionBlock>(&seg)) {
            double flops = 4.0 * a->heads * a->seq * a->dhead * a->seq;
            // No layer pipelining: the score matrices spill off-chip and
            // come back (the paper's key criticism, Sec. 5.4).
            double scores = 2.0 * double(a->heads) * a->seq * a->seq *
                            sizeof(float);
            double qkv_ctx = 4.0 * double(a->heads) * a->seq * a->dhead *
                             sizeof(float);
            double compute = flops / small_flops;
            double mem = (scores + qkv_ctx) / bw;
            small_s += std::max(compute, mem) +
                       (1.0 - cfg_.overlap) * std::min(compute, mem);
        }
    }
    return {large_s, small_s};
}

CharmResult
CharmModel::run(const lib::Model &group_model, std::uint32_t batch) const
{
    auto [large_s, small_s] = groupWork(group_model);
    const double period = std::max(large_s, small_s);

    // Throughput comes from pipelining `pipeline_groups` interleaved
    // 6-batch groups across the two engines; a group's latency spans the
    // whole interleave window until enough groups are in flight.
    std::uint32_t groups =
        std::max<std::uint32_t>(1, (batch + cfg_.batch_group - 1) /
                                       cfg_.batch_group);
    double fill = std::min<double>(groups, cfg_.pipeline_groups);

    CharmResult r;
    r.latency_ms = (large_s + small_s + (fill - 1) * period) * 1e3;
    double steady = groups >= cfg_.pipeline_groups
                        ? period
                        : (large_s + small_s) / groups;
    r.throughput_tasks = cfg_.batch_group / steady;

    double bytes = 0;
    for (const auto &seg : group_model.segments) {
        if (const auto *l = std::get_if<lib::LinearLayer>(&seg))
            bytes += (double(l->m) * l->k + double(l->k) * l->n +
                      double(l->m) * l->n) *
                     sizeof(float);
        else if (const auto *a = std::get_if<lib::AttentionBlock>(&seg))
            bytes += (2.0 * a->heads * a->seq * a->seq +
                      4.0 * a->heads * a->seq * a->dhead) *
                     sizeof(float);
    }
    r.ddr_traffic_mb = bytes * groups / 1e6;
    return r;
}

double
CharmModel::squareGemmGflops(std::uint32_t n) const
{
    const double peak = (cfg_.large_engine_tiles +
                         cfg_.small_engine_tiles) *
                        cfg_.tile_gflops * 1e9 * cfg_.large_eff;
    const double bw = cfg_.ddr_gbps * 1e9;
    double flops = 2.0 * n * double(n) * n;
    // All three operands cross DDR; output-stationary reuse bounded by
    // CHARM's on-chip tiling (LHS re-streamed per column block of 1024).
    double reload = std::max(1.0, double(n) / 1024.0);
    double bytes = (2.0 * n * double(n) * reload + double(n) * n) *
                   sizeof(float);
    double compute = flops / peak;
    double mem = bytes / bw;
    double t = std::max(compute, mem) +
               (1.0 - cfg_.overlap) * std::min(compute, mem);
    return flops / t / 1e9;
}

} // namespace rsn::baseline
