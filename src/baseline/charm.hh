/**
 * @file
 * CHARM-style baseline model (Zhuang et al., FPGA'23) — the paper's
 * primary state-of-the-art comparison (Fig. 18, Tables 6b and 7).
 *
 * CHARM composes two fixed matrix-multiply engines on the VCK190: a large
 * one for big MMs and a small one for the attention MMs. It executes
 * layer by layer, spills attention intermediates off-chip (no layer
 * pipelining), uses only the DDR channel, and schedules at a 6-batch
 * granularity, interleaving four 6-batch groups to overlap the two
 * engines. This model reconstructs that behaviour analytically on the
 * same DRAM/AIE primitives as the RSN machine; its two efficiency
 * constants are calibrated against CHARM's published BERT numbers
 * (110 ms latency at B=6, throughput saturating near B=24) and are
 * reported in bench output as calibrated values.
 */

#ifndef RSN_BASELINE_CHARM_HH
#define RSN_BASELINE_CHARM_HH

#include <cstdint>

#include "fu/aie_model.hh"
#include "lib/model.hh"

namespace rsn::baseline {

struct CharmConfig {
    /** AIE tiles in the large / small engines. */
    int large_engine_tiles = 256;
    int small_engine_tiles = 128;
    /** Peak per-tile FP32 throughput (8 MACs/cycle at 1.25 GHz). */
    double tile_gflops = 20.0;
    /** Compute efficiency of the engines on their assigned layers
     *  (large engine near its square-GEMM efficiency; the small engine
     *  suffers the tiny attention MMs, Sec. 5.4). */
    double large_eff = 0.62;
    double small_eff = 0.053;
    /** Extra derating on layer-by-layer execution inside a group
     *  (tile transitions, engine idle while the other engine's layer of
     *  the same group runs). */
    double layer_sched_eff = 0.70;
    /** Achieved DDR bandwidth (CHARM uses only the DDR channel). */
    double ddr_gbps = 21.0;
    /** Fraction of DRAM time hidden under compute (no fine-grained
     *  load/store interleaving -> partial overlap only). */
    double overlap = 0.25;
    /** 6-batch scheduling granularity. */
    std::uint32_t batch_group = 6;
    /** Interleaved groups needed to overlap both engines fully. */
    std::uint32_t pipeline_groups = 4;
};

/** Per-run outputs. */
struct CharmResult {
    double latency_ms = 0;       ///< End-to-end latency for the batch.
    double throughput_tasks = 0; ///< Tasks (sequences) per second.
    double ddr_traffic_mb = 0;
};

class CharmModel
{
  public:
    explicit CharmModel(CharmConfig cfg = {}) : cfg_(cfg) {}

    const CharmConfig &config() const { return cfg_; }

    /**
     * Latency/throughput for running @p model at batch @p batch. The
     * model must be built for ONE batch group (the model's own batch);
     * @p batch rounds up to whole groups.
     */
    CharmResult run(const lib::Model &group_model,
                    std::uint32_t batch) const;

    /**
     * Square end-to-end GEMM throughput in GFLOPS (Table 6b conditions:
     * DDR only, one engine).
     */
    double squareGemmGflops(std::uint32_t n) const;

  private:
    /** Engine work seconds for one batch group (large, small). */
    std::pair<double, double> groupWork(const lib::Model &m) const;

    CharmConfig cfg_;
};

} // namespace rsn::baseline

#endif // RSN_BASELINE_CHARM_HH
