#include "fu/fu.hh"

#include "common/log.hh"
#include "sim/fault.hh"

namespace rsn::fu {

Fu::Fu(sim::Engine &eng, FuId id, std::size_t uop_depth)
    : eng_(eng), id_(id), name_(id.toString()),
      uop_q_(eng, uop_depth, name_ + ".uopq")
{
}

void
Fu::start()
{
    rsn_assert(!started_, "FU started twice");
    started_ = true;
    loop_ = mainLoop();
}

void
Fu::reset()
{
    rsn_assert(!started_ || halted_, "%s reset while still running",
               name_.c_str());
    rsn_assert(uop_q_.empty(), "%s reset with queued uOPs", name_.c_str());
    loop_ = {};
    stats_ = {};
    started_ = false;
    halted_ = false;
    in_kernel_ = false;
    resetKernelState();
}

void
Fu::addInput(FuId from, sim::Stream *s)
{
    rsn_assert(!hasInput(from), "duplicate input port");
    inputs_.emplace_back(from, s);
}

void
Fu::addOutput(FuId to, sim::Stream *s)
{
    rsn_assert(!hasOutput(to), "duplicate output port");
    outputs_.emplace_back(to, s);
}

sim::Stream &
Fu::in(FuId from)
{
    for (auto &[id, s] : inputs_)
        if (id == from)
            return *s;
    rsn_panic("%s has no input port from %s", name_.c_str(),
              from.toString().c_str());
}

sim::Stream &
Fu::out(FuId to)
{
    for (auto &[id, s] : outputs_)
        if (id == to)
            return *s;
    rsn_panic("%s has no output port to %s", name_.c_str(),
              to.toString().c_str());
}

bool
Fu::hasInput(FuId from) const
{
    for (auto &[id, s] : inputs_)
        if (id == from)
            return true;
    return false;
}

bool
Fu::hasOutput(FuId to) const
{
    for (auto &[id, s] : outputs_)
        if (id == to)
            return true;
    return false;
}

void
Fu::setFaultInjector(sim::FaultInjector *fi)
{
    fault_ = fi;
    fault_site_ = fi ? fi->registerSite("fu " + name_) : 0;
}

void
Fu::stampEgress(sim::Chunk &c)
{
    if (fault_) [[unlikely]]
        fault_->stampChecksum(fault_site_, c);
}

void
Fu::checkIngress(sim::Chunk &c)
{
    if (fault_) [[unlikely]]
        fault_->ingressCheck(fault_site_, c);
}

std::string
Fu::stateString() const
{
    if (halted_)
        return "halted";
    if (!in_kernel_)
        return "stalled on uOP queue";
    std::string s = "in kernel";
    for (const auto &[id, st] : inputs_)
        if (st->hasBlockedReceiver())
            s += ", blocked recv from " + id.toString();
    for (const auto &[id, st] : outputs_)
        if (st->hasBlockedSender())
            s += ", blocked send to " + id.toString();
    return s;
}

sim::Task
Fu::mainLoop()
{
    while (true) {
        isa::Uop u = co_await uop_q_.recv();
        if (std::holds_alternative<isa::HaltUop>(u))
            break;
        in_kernel_ = true;
        Tick t0 = eng_.now();
        co_await runKernel(u);
        stats_.busy_ticks += eng_.now() - t0;
        ++stats_.uops;
        in_kernel_ = false;
    }
    halted_ = true;
}

} // namespace rsn::fu
