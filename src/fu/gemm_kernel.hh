/**
 * @file
 * Blocked, vectorized FP32 GEMM microkernel for the MME's functional
 * path (acc += lhs @ rhs on row-major tiles).
 *
 * The MME used to compute tile products with a scalar i/k/j triple loop;
 * once the PR 3 datapath went zero-copy, that loop dominated functional
 * end-to-end time. This module replaces it with the classic three-piece
 * structure of a CPU GEMM:
 *
 *  - a **packing layer** that copies operands into cache-resident,
 *    alignment-guaranteed scratch panels (pooled tiles are 32-byte
 *    aligned): the LHS always, in MR-row-interleaved layout zero-padded
 *    to the block height, so the inner kernel reads one contiguous line
 *    per k step with no row-edge branches; the RHS only for the ragged
 *    n%NR column tail, zero-padded to NR — full blocks read the
 *    row-major operand directly, which measured faster than paying the
 *    pack memcpy on the L2-resident tile shapes the datapath moves.
 *    Panels live in pooled tiles owned by a GemmScratch that each MME
 *    FU reuses across reps/k_steps — steady state packs into the same
 *    two buffers forever, allocating nothing;
 *  - a **register-blocked inner kernel** computing an MR x NR output
 *    block with FMA accumulation. Four compiled-in variants behind one
 *    entry point: explicit AVX-512 (8x32) and AVX2+FMA (8x16, K
 *    unrolled 2-deep) and NEON (8x8) kernels when the build enables
 *    RSN_SIMD and the target supports them, and a portable
 *    restrict-qualified form (2x16) the compiler auto-vectorizes
 *    otherwise;
 *  - a **scalar reference kernel** (gemmRefAccumulate) kept as the
 *    semantic baseline: identical loop order to the pre-blocked MME, no
 *    reassociation. Tests pin the blocked/SIMD kernels against it over
 *    randomized shapes.
 *
 * ## FP tolerance policy
 *
 * The blocked kernels accumulate each output element in a register over
 * k and add the partial sum into acc once; the scalar reference adds
 * every product into acc directly. Both are exact-order FP32 chains but
 * *different* chains, so results may differ by O(k) ULPs (FMA also
 * contracts multiply-add rounding). Consumers must compare with a
 * tolerance, not bit-exactly: tests use |a-b| <= 1e-4 + 1e-4 * |b|
 * per element (ref_math-style allclose), generous for every shape the
 * datapath produces (k <= a few thousand). Simulated *timing* is
 * payload-independent, so kernel choice never changes tick counts.
 */

#ifndef RSN_FU_GEMM_KERNEL_HH
#define RSN_FU_GEMM_KERNEL_HH

#include <cstdint>

#include "sim/tile_pool.hh"

namespace rsn::fu {

/** Compiled-in microkernel variant: "avx512", "avx2-fma", "neon", or
 *  "portable". */
const char *gemmKernelName();

/**
 * Scalar reference kernel: acc(m x n) += lhs(m x k) @ rhs(k x n), all
 * row-major and dense. This is the pre-blocked MME loop (including its
 * skip of zero LHS elements, which never changes the result) and the
 * baseline the property tests compare the blocked kernels against.
 */
void gemmRefAccumulate(float *acc, const float *lhs, const float *rhs,
                       std::uint32_t m, std::uint32_t k, std::uint32_t n);

/**
 * Packing scratch for gemmAccumulate: two pooled tiles holding the LHS
 * and RHS panels. Owned per MME FU and reused across every chunk product
 * the FU ever computes — the panels only ever grow (to the largest
 * shape seen), so steady-state packing allocates nothing. release()
 * drops the tiles back to the pool (FU reset).
 */
class GemmScratch
{
  public:
    /** Writable LHS panel of at least @p elems floats (grows if needed). */
    float *
    lhsPanel(std::uint64_t elems)
    {
        return panel(lhs_, elems);
    }

    /** Writable RHS panel of at least @p elems floats (grows if needed). */
    float *
    rhsPanel(std::uint64_t elems)
    {
        return panel(rhs_, elems);
    }

    /** Return the panels to the pool (RsnMachine::reset / FU teardown). */
    void
    release()
    {
        lhs_.release();
        rhs_.release();
    }

  private:
    static float *
    panel(sim::TileRef &t, std::uint64_t elems)
    {
        if (t.capacity() < elems)
            t = sim::TilePool::instance().acquire(elems);
        return t.mutableData();
    }

    sim::TileRef lhs_;
    sim::TileRef rhs_;
};

/**
 * Blocked accumulating matrix product: acc(m x n) += lhs(m x k) @
 * rhs(k x n), row-major, packing through @p scratch. Any dimension may
 * be zero (no-op). See the file comment for the FP tolerance contract
 * relative to gemmRefAccumulate.
 */
void gemmAccumulate(GemmScratch &scratch, float *acc, const float *lhs,
                    const float *rhs, std::uint32_t m, std::uint32_t k,
                    std::uint32_t n);

} // namespace rsn::fu

#endif // RSN_FU_GEMM_KERNEL_HH
