/**
 * @file
 * FP32 GEMM entry points for the MME's functional path (acc += lhs @
 * rhs on row-major tiles), plus the packing scratch they share.
 *
 * The blocked, vectorized implementations live in the per-ISA kernel
 * TUs (src/fu/kernels/kernel_impl.inc) and are selected at runtime
 * through the kernel registry (fu/kernel_registry.hh): gemmAccumulate
 * below is a thin inline wrapper over the active KernelTable. The
 * classic three-piece structure — MR-interleaved LHS packing, a
 * register-blocked FMA microkernel per ISA (AVX-512 8x32, AVX2+FMA
 * 8x16, NEON 8x8, auto-vectorized portable 2x16), RHS packed only for
 * the ragged n%NR tail — is documented in the .inc.
 *
 * This TU keeps the **scalar reference kernel** (gemmRefAccumulate):
 * identical loop order to the pre-blocked MME, no reassociation. It is
 * the semantic baseline the property tests pin every table against,
 * and the `scalar` table's GEMM entry (the exact reference path).
 *
 * ## FP tolerance policy
 *
 * The blocked kernels accumulate each output element in a register over
 * k and add the partial sum into acc once; the scalar reference adds
 * every product into acc directly. Both are exact-order FP32 chains but
 * *different* chains, so results may differ by O(k) ULPs (FMA also
 * contracts multiply-add rounding). Consumers must compare with a
 * tolerance, not bit-exactly: tests use |a-b| <= 1e-4 + 1e-4 * |b|
 * per element (ref_math-style allclose), generous for every shape the
 * datapath produces (k <= a few thousand). Simulated *timing* is
 * payload-independent, so kernel choice never changes tick counts.
 */

#ifndef RSN_FU_GEMM_KERNEL_HH
#define RSN_FU_GEMM_KERNEL_HH

#include <cstdint>

#include "fu/kernel_registry.hh"
#include "sim/tile_pool.hh"

namespace rsn::fu {

/**
 * Scalar reference kernel: acc(m x n) += lhs(m x k) @ rhs(k x n), all
 * row-major and dense. This is the pre-blocked MME loop (including its
 * skip of zero LHS elements, which never changes the result) and the
 * baseline the property tests compare the blocked kernels against.
 */
void gemmRefAccumulate(float *acc, const float *lhs, const float *rhs,
                       std::uint32_t m, std::uint32_t k, std::uint32_t n);

/**
 * Packing scratch for gemmAccumulate: pooled tiles holding the LHS and
 * RHS panels, plus two *conversion* panels for the typed paths — the
 * bf16 GEMM upconverts its RHS into cvtRhsPanel, and the MME's
 * mixed-dtype fallback upconverts whole operands into cvtLhs/cvtRhs
 * before running the FP32 kernel (the pack panels can't double for
 * this: the FP32 implementation packs *into* them while reading the
 * converted operand). Owned per MME FU and reused across every chunk
 * product the FU ever computes — the panels only ever grow (to the
 * largest shape seen), so steady-state packing allocates nothing.
 * release() drops the tiles back to the pool (FU reset).
 */
class GemmScratch
{
  public:
    /** Writable LHS panel of at least @p elems floats (grows if needed). */
    float *
    lhsPanel(std::uint64_t elems)
    {
        return panel(lhs_, elems);
    }

    /** Writable RHS panel of at least @p elems floats (grows if needed). */
    float *
    rhsPanel(std::uint64_t elems)
    {
        return panel(rhs_, elems);
    }

    /** Writable FP32 upconversion panel for a typed LHS operand. */
    float *
    cvtLhsPanel(std::uint64_t elems)
    {
        return panel(cvt_lhs_, elems);
    }

    /** Writable FP32 upconversion panel for a typed RHS operand. */
    float *
    cvtRhsPanel(std::uint64_t elems)
    {
        return panel(cvt_rhs_, elems);
    }

    /** Return the panels to the pool (RsnMachine::reset / FU teardown). */
    void
    release()
    {
        lhs_.release();
        rhs_.release();
        cvt_lhs_.release();
        cvt_rhs_.release();
    }

  private:
    static float *
    panel(sim::TileRef &t, std::uint64_t elems)
    {
        if (t.capacity() < elems)
            t = sim::TilePool::instance().acquire(elems);
        return t.mutableData();
    }

    sim::TileRef lhs_;
    sim::TileRef rhs_;
    sim::TileRef cvt_lhs_;
    sim::TileRef cvt_rhs_;
};

/**
 * Accumulating matrix product through the active kernel table:
 * acc(m x n) += lhs(m x k) @ rhs(k x n), row-major, packing through
 * @p scratch. Any dimension may be zero (no-op). See the file comment
 * for the FP tolerance contract relative to gemmRefAccumulate.
 */
inline void
gemmAccumulate(GemmScratch &scratch, float *acc, const float *lhs,
               const float *rhs, std::uint32_t m, std::uint32_t k,
               std::uint32_t n)
{
    kernel::active().gemm_accumulate(scratch, acc, lhs, rhs, m, k, n);
}

} // namespace rsn::fu

#endif // RSN_FU_GEMM_KERNEL_HH
