/**
 * @file
 * Functional-unit base class (paper Sec. 3.1, Fig. 4).
 *
 * An FU comprises a uOP decoder (the bounded uOP queue fed by the
 * instruction decoder — the "third-level decoder"), input and output ports
 * (streams), and customized modules that transform and hold state. Each FU
 * maintains its own uOP sequence, executes one kernel at a time, fetches
 * the next uOP when a kernel completes, and stalls when none is available.
 */

#ifndef RSN_FU_FU_HH
#define RSN_FU_FU_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/uop.hh"
#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace rsn::sim {
class FaultInjector;
}

namespace rsn::fu {

/** Execution statistics every FU tracks. */
struct FuStats {
    std::uint64_t uops = 0;       ///< Kernels executed (excl. halt).
    Tick busy_ticks = 0;          ///< Ticks spent inside kernels.
    Bytes bytes_in = 0;           ///< Bytes received on input ports.
    Bytes bytes_out = 0;          ///< Bytes sent on output ports.
    std::uint64_t flops = 0;      ///< Arithmetic work performed.
};

class Fu
{
  public:
    /** Default uOP FIFO depth; depth 6 is deadlock-free per Sec. 3.3. */
    static constexpr std::size_t kDefaultUopDepth = 6;

    Fu(sim::Engine &eng, FuId id, std::size_t uop_depth = kDefaultUopDepth);
    virtual ~Fu() = default;

    Fu(const Fu &) = delete;
    Fu &operator=(const Fu &) = delete;

    FuId id() const { return id_; }
    const std::string &name() const { return name_; }
    sim::Engine &engine() { return eng_; }

    /** The uOP queue the instruction decoder pushes into. */
    sim::Channel<isa::Uop> &uopQueue() { return uop_q_; }

    /** Spawn the kernel main loop. Call once per run, before Engine::run. */
    void start();

    /**
     * Return the FU to its pre-start state so the owning machine can run
     * another program: destroys the finished kernel-loop frame, zeroes
     * stats, and drops subclass kernel state (staged tiles, ping-pong
     * phase). Only legal before start() or after the loop halted — a
     * suspended kernel must never be destroyed under a live engine.
     */
    void reset();

    /** True once a Halt uOP terminated the kernel loop. */
    bool halted() const { return halted_; }

    /** True while a kernel is executing (not stalled on the uOP queue). */
    bool inKernel() const { return in_kernel_; }

    const FuStats &stats() const { return stats_; }

    /** @{ Port wiring (done by the machine builder). */
    void addInput(FuId from, sim::Stream *s);
    void addOutput(FuId to, sim::Stream *s);
    sim::Stream &in(FuId from);
    sim::Stream &out(FuId to);
    bool hasInput(FuId from) const;
    bool hasOutput(FuId to) const;
    const std::vector<std::pair<FuId, sim::Stream *>> &inputs() const
    {
        return inputs_;
    }
    const std::vector<std::pair<FuId, sim::Stream *>> &outputs() const
    {
        return outputs_;
    }
    /** @} */

    /** Human-readable blocked/stall state for deadlock reports. */
    std::string stateString() const;

    /**
     * Arm payload-integrity fault injection (docs/robustness.md). Egress
     * chunks produced by DDR/LPDDR load kernels are checksummed; ingress
     * chunks consumed by Mem FUs are (maybe) bit-flipped and verified.
     */
    void setFaultInjector(sim::FaultInjector *fi);

  protected:
    /** Execute one kernel; implemented per FU type. */
    virtual sim::Task runKernel(const isa::Uop &uop) = 0;

    /** Subclass hook for reset(): drop state kernels carry across uOPs. */
    virtual void resetKernelState() {}

    /** @{ Stats helpers used by kernels. */
    void countIn(const sim::Chunk &c) { stats_.bytes_in += c.bytes(); }
    void countOut(const sim::Chunk &c) { stats_.bytes_out += c.bytes(); }
    void countFlops(std::uint64_t f) { stats_.flops += f; }
    /** @} */

    /** @{ Chaos hooks: no-ops unless a FaultInjector is attached. */
    void stampEgress(sim::Chunk &c);
    void checkIngress(sim::Chunk &c);
    /** @} */

    sim::Engine &eng_;

  private:
    sim::Task mainLoop();

    FuId id_;
    std::string name_;
    sim::Channel<isa::Uop> uop_q_;
    std::vector<std::pair<FuId, sim::Stream *>> inputs_;
    std::vector<std::pair<FuId, sim::Stream *>> outputs_;
    sim::Task loop_;
    FuStats stats_;
    sim::FaultInjector *fault_ = nullptr;  ///< Null unless chaos is armed.
    std::uint32_t fault_site_ = 0;
    bool started_ = false;
    bool halted_ = false;
    bool in_kernel_ = false;
};

} // namespace rsn::fu

#endif // RSN_FU_FU_HH
