#include "fu/mem_fus.hh"

#include <cmath>

#include "common/log.hh"
#include "fu/nonlinear.hh"

namespace rsn::fu {

std::vector<std::pair<std::uint32_t, std::uint32_t>>
sliceRows(std::uint32_t total, std::uint32_t slices)
{
    rsn_assert(slices > 0 && total > 0, "bad row slicing");
    // Fewer rows than requested slices: fall back to one row per slice.
    // Codegen applies the same clamp, so producer and consumer agree on
    // the piece count.
    slices = std::min(slices, total);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    std::uint32_t base = total / slices;
    std::uint32_t rem = total % slices;
    std::uint32_t off = 0;
    for (std::uint32_t i = 0; i < slices; ++i) {
        std::uint32_t ext = base + (i < rem ? 1 : 0);
        out.emplace_back(off, ext);
        off += ext;
    }
    return out;
}

namespace {

/** Copy a row-slice out of a tile buffer (functional runs only). */
sim::Chunk
sliceChunk(const TileBuffer &buf, std::uint32_t row_off,
           std::uint32_t rows, std::uint32_t tag)
{
    if (!buf.hasData())
        return sim::makeChunk(rows, buf.cols, tag);
    std::size_t n = std::size_t(rows) * buf.cols;
    sim::TileRef t = sim::TilePool::instance().acquire(n);
    std::copy_n(buf.data.begin() + std::size_t(row_off) * buf.cols, n,
                t.mutableData());
    return sim::makeTileChunk(rows, buf.cols, std::move(t), tag);
}

} // namespace

// ---------------------------------------------------------------- MemA --

MemAFu::MemAFu(sim::Engine &eng, FuId id, FuId mesh_dst)
    : Fu(eng, id), mesh_dst_(mesh_dst)
{
}

sim::Task
MemAFu::loadPart(const isa::MemAUop &u, TileBuffer &buf)
{
    sim::Chunk c = co_await in(u.src).recv();
    countIn(c);
    buf.rows = c.rows;
    buf.cols = c.cols;
    if (c.hasData())
        buf.data.assign(c.data.data(), c.data.data() + c.elems());
    else
        buf.data.clear();
}

sim::Task
MemAFu::sendPart(const isa::MemAUop &u, TileBuffer &buf)
{
    rsn_assert(buf.rows > 0, "%s sending before any load", name().c_str());
    sim::Stream &o = out(mesh_dst_);
    auto slices = sliceRows(buf.rows, u.slices);
    for (std::uint32_t i = 0; i < slices.size(); ++i) {
        sim::Chunk c = sliceChunk(buf, slices[i].first, slices[i].second,
                                  i);
        countOut(c);
        co_await o.send(std::move(c));
    }
}

sim::Task
MemAFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemAUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.load)
        recv_to_ping_ = !recv_to_ping_;

    // Load and send run in parallel when both are enabled (Fig. 7b).
    if (u.load && u.send) {
        sim::Task ld = loadPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await ld;
        co_await snd;
    } else if (u.load) {
        co_await loadPart(u, recv_buf);
    } else if (u.send) {
        co_await sendPart(u, send_buf);
    }
}

// ---------------------------------------------------------------- MemB --

MemBFu::MemBFu(sim::Engine &eng, FuId id, FuId mesh_dst)
    : Fu(eng, id), mesh_dst_(mesh_dst)
{
}

sim::Task
MemBFu::loadPart(const isa::MemBUop &u, TileBuffer &buf)
{
    sim::Chunk c = co_await in(u.src).recv();
    countIn(c);
    if (u.transpose) {
        buf.rows = c.cols;
        buf.cols = c.rows;
        if (c.hasData()) {
            buf.data.assign(c.elems(), 0.f);
            for (std::uint32_t i = 0; i < c.rows; ++i)
                for (std::uint32_t j = 0; j < c.cols; ++j)
                    buf.data[std::size_t(j) * c.rows + i] = c.at(i, j);
        } else {
            buf.data.clear();
        }
    } else {
        buf.rows = c.rows;
        buf.cols = c.cols;
        if (c.hasData())
            buf.data.assign(c.data.data(), c.data.data() + c.elems());
        else
            buf.data.clear();
    }
}

sim::Task
MemBFu::sendPart(const isa::MemBUop &u, TileBuffer &buf)
{
    (void)u;
    rsn_assert(buf.rows > 0, "%s sending before any load", name().c_str());
    sim::Chunk c = sliceChunk(buf, 0, buf.rows, 0);
    countOut(c);
    co_await out(mesh_dst_).send(std::move(c));
}

sim::Task
MemBFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemBUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.load)
        recv_to_ping_ = !recv_to_ping_;

    if (u.load && u.send) {
        sim::Task ld = loadPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await ld;
        co_await snd;
    } else if (u.load) {
        co_await loadPart(u, recv_buf);
    } else if (u.send) {
        co_await sendPart(u, send_buf);
    }
}

// ---------------------------------------------------------------- MemC --

MemCFu::MemCFu(sim::Engine &eng, FuId id, FuId mme_src, FuId ddr,
               double flops_per_tick)
    : Fu(eng, id), mme_src_(mme_src), ddr_(ddr),
      flops_per_tick_(flops_per_tick)
{
    rsn_assert(flops_per_tick > 0, "bad MemC rate");
}

sim::Task
MemCFu::recvPart(const isa::MemCUop &u, TileBuffer &buf)
{
    // Assemble the tile from the partner MME.
    buf.rows = 0;
    buf.cols = 0;
    buf.data.clear();
    std::uint32_t row_fill = 0;
    for (std::uint32_t i = 0; i < u.recv_chunks; ++i) {
        sim::Chunk c = co_await in(mme_src_).recv();
        countIn(c);
        if (i == 0) {
            buf.cols = c.cols;
            buf.rows = c.rows * u.recv_chunks;
            if (c.hasData())
                buf.data.assign(std::size_t(buf.rows) * buf.cols, 0.f);
        }
        if (c.hasData() && !buf.data.empty()) {
            std::copy_n(c.data.data(), c.elems(),
                        buf.data.begin() +
                            std::size_t(row_fill) * buf.cols);
        }
        row_fill += c.rows;
    }
    buf.rows = row_fill;
    if (!buf.data.empty())
        buf.data.resize(std::size_t(buf.rows) * buf.cols);

    double flops = 0;
    const double elems = double(buf.rows) * buf.cols;

    if (u.add_residual) {
        sim::Chunk res = co_await in(ddr_).recv();
        countIn(res);
        if (res.hasData() && !buf.data.empty())
            addInplace(buf.data, res.data.data(), res.elems());
        flops += elems * kResidualFlopsPerElem;
    }
    std::vector<float> gamma, beta;
    if (u.scale_shift) {
        // Gamma/beta arrive as a 2 x cols block from the LPDDR FU.
        sim::Chunk p = co_await in(FuId{FuType::Lpddr, 0}).recv();
        countIn(p);
        if (p.hasData()) {
            const float *pd = p.data.data();
            gamma.assign(pd, pd + p.cols);
            beta.assign(pd + p.cols, pd + 2 * p.cols);
        }
        flops += elems * kScaleShiftFlopsPerElem;
    }

    if (u.softmax) {
        if (!buf.data.empty())
            softmaxRows(buf.data, buf.rows, buf.cols);
        flops += elems * kSoftmaxFlopsPerElem;
    }
    if (u.gelu) {
        if (!buf.data.empty())
            geluInplace(buf.data);
        flops += elems * kGeluFlopsPerElem;
    }
    if (u.layernorm) {
        if (!buf.data.empty())
            layernormRows(buf.data, buf.rows, buf.cols);
        flops += elems * kLayernormFlopsPerElem;
    }
    if (u.scale_shift && !buf.data.empty() && !gamma.empty())
        scaleShiftRows(buf.data, buf.rows, buf.cols, gamma, beta);

    if (flops > 0) {
        countFlops(static_cast<std::uint64_t>(flops));
        co_await eng_.delay(
            static_cast<Tick>(std::ceil(flops / flops_per_tick_)));
    }
}

sim::Task
MemCFu::sendPart(const isa::MemCUop &u, TileBuffer &buf)
{
    rsn_assert(buf.rows > 0, "%s sending before any recv", name().c_str());
    if (u.store) {
        sim::Stream &o = out(ddr_);
        auto pieces = sliceRows(buf.rows, u.send_chunks);
        for (std::uint32_t i = 0; i < pieces.size(); ++i) {
            sim::Chunk c = sliceChunk(buf, pieces[i].first,
                                      pieces[i].second, i);
            countOut(c);
            co_await o.send(std::move(c));
        }
    }
    if (u.send_mme) {
        sim::Stream &o = out(u.send_dest);
        auto pieces = sliceRows(buf.rows, u.send_chunks);
        for (std::uint32_t i = 0; i < pieces.size(); ++i) {
            sim::Chunk c = sliceChunk(buf, pieces[i].first,
                                      pieces[i].second, i);
            countOut(c);
            co_await o.send(std::move(c));
        }
    }
}

sim::Task
MemCFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemCUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.recv)
        recv_to_ping_ = !recv_to_ping_;

    // RCEV (plus its fused operator) overlaps SEND of the previous tile
    // (paper Fig. 11).
    if (u.recv && (u.store || u.send_mme)) {
        sim::Task rc = recvPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await rc;
        co_await snd;
    } else if (u.recv) {
        co_await recvPart(u, recv_buf);
    } else if (u.store || u.send_mme) {
        co_await sendPart(u, send_buf);
    }
}

} // namespace rsn::fu
