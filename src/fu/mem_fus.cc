#include "fu/mem_fus.hh"

#include <cmath>

#include "common/log.hh"
#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"

namespace rsn::fu {

std::vector<std::pair<std::uint32_t, std::uint32_t>>
sliceRows(std::uint32_t total, std::uint32_t slices)
{
    rsn_assert(slices > 0 && total > 0, "bad row slicing");
    // Fewer rows than requested slices: fall back to one row per slice.
    // Codegen applies the same clamp, so producer and consumer agree on
    // the piece count.
    slices = std::min(slices, total);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    std::uint32_t base = total / slices;
    std::uint32_t rem = total % slices;
    std::uint32_t off = 0;
    for (std::uint32_t i = 0; i < slices; ++i) {
        std::uint32_t ext = base + (i < rem ? 1 : 0);
        out.emplace_back(off, ext);
        off += ext;
    }
    return out;
}

namespace {

/**
 * Publish a row-slice of a staged tile (functional runs only). This is a
 * refcount-aliased view of a staged segment — no acquire, no copy:
 * consumers read [row_off*cols, (row_off+rows)*cols) of the staged data
 * directly. Only a slice that straddles a gather-segment boundary
 * forces the buffer to materialize contiguously first
 * (sim::GatherTile::window).
 */
sim::Chunk
sliceChunk(TileBuffer &buf, std::uint32_t row_off, std::uint32_t rows,
           std::uint32_t tag)
{
    if (!buf.hasData())
        return sim::makeChunk(rows, buf.cols, tag, buf.dtype);
    return sim::makeTileChunk(
        rows, buf.cols,
        buf.tile.window(std::uint64_t(row_off) * buf.cols,
                        std::uint64_t(rows) * buf.cols),
        tag);
}

/**
 * MemC's typed emit: slice the staged tile and convert the slice to
 * @p out_dtype when it differs from the buffer's element type. The
 * conversion fills a fresh pooled tile (the staged slice may be shared
 * and stays immutable); matching dtypes keep the zero-copy window
 * path. Conversion is free in simulated time — in hardware it rides
 * the send pipeline the same way the fused operators do.
 */
sim::Chunk
sliceChunkAs(TileBuffer &buf, std::uint32_t row_off, std::uint32_t rows,
             std::uint32_t tag, Dtype out_dtype)
{
    if (!buf.hasData() || buf.dtype == out_dtype) {
        sim::Chunk c = sliceChunk(buf, row_off, rows, tag);
        c.dtype = out_dtype;
        return c;
    }
    const std::uint64_t elems = std::uint64_t(rows) * buf.cols;
    sim::TileRef window =
        buf.tile.window(std::uint64_t(row_off) * buf.cols, elems);
    sim::TileRef t = sim::TilePool::instance().acquire(elems, out_dtype);
    if (out_dtype == Dtype::F32) {
        kernel::active().convert_rows_to_f32(t.mutableData(),
                                             window.raw(), buf.dtype,
                                             elems);
    } else {
        rsn_assert(buf.dtype == Dtype::F32,
                   "typed-to-typed slice conversion unsupported");
        kernel::active().convert_rows_from_f32(t.mutableRaw(), out_dtype,
                                               window.data(), elems);
    }
    return sim::makeTileChunk(rows, buf.cols, std::move(t), tag);
}

/**
 * Upconvert a typed staged buffer to FP32 ahead of the fused operators
 * (accuracy policy: MemC's non-MM operators always compute in FP32 —
 * docs/datapath.md). Segment-by-segment into fresh pooled tiles, so
 * row granularity is preserved and steady state allocates nothing.
 */
void
upconvertBuffer(TileBuffer &buf)
{
    if (buf.dtype == Dtype::F32)
        return;
    if (buf.hasData()) {
        sim::GatherTile f32;
        for (std::size_t i = 0; i < buf.tile.segments(); ++i) {
            const std::uint64_t elems = buf.tile.segmentElems(i);
            sim::TileRef t = sim::TilePool::instance().acquire(elems);
            kernel::active().convert_rows_to_f32(
                t.mutableData(), buf.tile.segment(i).raw(), buf.dtype,
                elems);
            f32.append(std::move(t), elems);
        }
        buf.tile = std::move(f32);
    }
    buf.dtype = Dtype::F32;
}

/**
 * Run a row-wise transform over every staged segment: @p fn gets a
 * writable pointer (copy-on-write per segment), the segment's row
 * count, and its starting row. Segments always hold whole rows — MME
 * outputs and row-slices are row-granular — so row-wise operators never
 * need the buffer to be contiguous.
 */
template <typename Fn>
void
forEachOwnedSegment(TileBuffer &buf, Fn &&fn)
{
    std::uint32_t row_off = 0;
    for (std::size_t i = 0; i < buf.tile.segments(); ++i) {
        const std::uint64_t seg_elems = buf.tile.segmentElems(i);
        rsn_assert(buf.cols > 0 && seg_elems % buf.cols == 0,
                   "gather segment not row-granular");
        const auto seg_rows =
            static_cast<std::uint32_t>(seg_elems / buf.cols);
        fn(buf.tile.segmentMutable(i), seg_rows, row_off);
        row_off += seg_rows;
    }
}

} // namespace

// ---------------------------------------------------------------- MemA --

MemAFu::MemAFu(sim::Engine &eng, FuId id, FuId mesh_dst)
    : Fu(eng, id), mesh_dst_(mesh_dst)
{
}

sim::Task
MemAFu::loadPart(const isa::MemAUop &u, TileBuffer &buf)
{
    sim::Chunk c = co_await in(u.src).recv();
    countIn(c);
    checkIngress(c);
    buf.rows = c.rows;
    buf.cols = c.cols;
    buf.dtype = c.dtype;
    // Adopt the payload tile by reference: the DDR FU loaded it straight
    // from host memory into a pooled tile, so staging is a pointer move.
    buf.tile.clear();
    if (c.hasData())
        buf.tile.append(std::move(c.data), c.elems());
}

sim::Task
MemAFu::sendPart(const isa::MemAUop &u, TileBuffer &buf)
{
    rsn_assert(buf.rows > 0, "%s sending before any load", name().c_str());
    sim::Stream &o = out(mesh_dst_);
    auto slices = sliceRows(buf.rows, u.slices);
    for (std::uint32_t i = 0; i < slices.size(); ++i) {
        sim::Chunk c = sliceChunk(buf, slices[i].first, slices[i].second,
                                  i);
        countOut(c);
        co_await o.send(std::move(c));
    }
}

sim::Task
MemAFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemAUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.load)
        recv_to_ping_ = !recv_to_ping_;

    // Load and send run in parallel when both are enabled (Fig. 7b).
    if (u.load && u.send) {
        sim::Task ld = loadPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await ld;
        co_await snd;
    } else if (u.load) {
        co_await loadPart(u, recv_buf);
    } else if (u.send) {
        co_await sendPart(u, send_buf);
    }
}

void
MemAFu::resetKernelState()
{
    ping_ = {};
    pong_ = {};
    recv_to_ping_ = true;
}

// ---------------------------------------------------------------- MemB --

MemBFu::MemBFu(sim::Engine &eng, FuId id, FuId mesh_dst)
    : Fu(eng, id), mesh_dst_(mesh_dst)
{
}

sim::Task
MemBFu::loadPart(const isa::MemBUop &u, TileBuffer &buf)
{
    sim::Chunk c = co_await in(u.src).recv();
    countIn(c);
    checkIngress(c);
    buf.tile.clear();
    buf.dtype = c.dtype;
    if (u.transpose) {
        buf.rows = c.cols;
        buf.cols = c.rows;
        if (c.hasData()) {
            // Transposition is a transform: fill a fresh pooled tile
            // (the incoming chunk may be shared and stays immutable).
            sim::TileRef t =
                sim::TilePool::instance().acquire(c.elems(), c.dtype);
            // Layout conversion through the active kernel table; every
            // table's transpose (both widths) is bit-identical (pure
            // data movement), so the ISA choice cannot move payload
            // values here. 16-bit dtypes share the u16 ladder.
            if (c.dtype == Dtype::F32)
                kernel::active().transpose(t.mutableData(),
                                           c.data.data(), c.rows,
                                           c.cols);
            else
                kernel::active().transpose_u16(t.mutableData16(),
                                               c.data.data16(), c.rows,
                                               c.cols);
            buf.tile.append(std::move(t), c.elems());
        }
    } else {
        buf.rows = c.rows;
        buf.cols = c.cols;
        if (c.hasData())
            buf.tile.append(std::move(c.data), c.elems());
    }
}

sim::Task
MemBFu::sendPart(const isa::MemBUop &u, TileBuffer &buf)
{
    (void)u;
    rsn_assert(buf.rows > 0, "%s sending before any load", name().c_str());
    sim::Chunk c = sliceChunk(buf, 0, buf.rows, 0);
    countOut(c);
    co_await out(mesh_dst_).send(std::move(c));
}

sim::Task
MemBFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemBUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.load)
        recv_to_ping_ = !recv_to_ping_;

    if (u.load && u.send) {
        sim::Task ld = loadPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await ld;
        co_await snd;
    } else if (u.load) {
        co_await loadPart(u, recv_buf);
    } else if (u.send) {
        co_await sendPart(u, send_buf);
    }
}

void
MemBFu::resetKernelState()
{
    ping_ = {};
    pong_ = {};
    recv_to_ping_ = true;
}

// ---------------------------------------------------------------- MemC --

MemCFu::MemCFu(sim::Engine &eng, FuId id, FuId mme_src, FuId ddr,
               double flops_per_tick)
    : Fu(eng, id), mme_src_(mme_src), ddr_(ddr),
      flops_per_tick_(flops_per_tick)
{
    rsn_assert(flops_per_tick > 0, "bad MemC rate");
}

sim::Task
MemCFu::recvPart(const isa::MemCUop &u, TileBuffer &buf)
{
    // Assemble the tile from the partner MME as a gather view: every
    // chunk payload is adopted as a segment (a refcount move), never
    // copied into a staging tile. A contiguous buffer materializes only
    // if a later consumer needs a window that straddles segments.
    buf.rows = 0;
    buf.cols = 0;
    buf.tile.clear();
    buf.dtype = Dtype::F32;
    std::uint32_t row_fill = 0;
    for (std::uint32_t i = 0; i < u.recv_chunks; ++i) {
        sim::Chunk c = co_await in(mme_src_).recv();
        countIn(c);
        if (i == 0) {
            buf.cols = c.cols;
            buf.dtype = c.dtype;
        } else {
            rsn_assert(c.cols == buf.cols,
                       "%s assembly width mismatch: %u vs %u",
                       name().c_str(), c.cols, buf.cols);
            rsn_assert(c.dtype == buf.dtype,
                       "%s assembly dtype mismatch", name().c_str());
        }
        if (c.hasData())
            buf.tile.append(std::move(c.data), c.elems());
        row_fill += c.rows;
    }
    buf.rows = row_fill;

    // Accuracy policy: the fused non-MM operators always compute in
    // FP32. A typed staged tile is upconverted once, before the first
    // fused op; sendPart downconverts to the uOP's out_dtype on the way
    // out. Conversions are free in simulated time (they ride the same
    // pipeline as the operators themselves) — see docs/datapath.md.
    if (u.add_residual || u.softmax || u.gelu || u.layernorm ||
        u.scale_shift) {
        upconvertBuffer(buf);
    }

    double flops = 0;
    const double elems = double(buf.rows) * buf.cols;
    const std::uint64_t n = std::uint64_t(buf.rows) * buf.cols;

    // The fused operators are all row-wise (or element-wise), so they
    // run segment by segment — copy-on-write per segment when a
    // producer still shares it (TileRef::ensureUnique), in place in the
    // steady state where this MemC solely owns the MME's output tiles.
    // Softmax/GELU/LayerNorm go through the active kernel table
    // (fu/kernel_registry.hh): vectorized approximate kernels under the
    // probed default, the exact scalar reference when the `scalar`
    // table is selected. Residual add and scale-shift are called
    // directly — they have no approximate variant and are bit-identical
    // under every table (fu/nonlinear.cc).

    if (u.add_residual) {
        sim::Chunk res = co_await in(ddr_).recv();
        countIn(res);
        checkIngress(res);
        if (res.hasData() && buf.hasData()) {
            rsn_assert(res.elems() == n, "residual shape mismatch");
            // A typed residual (previous layer stored at activation
            // dtype) is upconverted through a scratch pool tile; the
            // add itself is FP32 like every fused operator.
            sim::TileRef res_f32;
            const float *rp;
            if (res.dtype == Dtype::F32) {
                rp = res.data.data();
            } else {
                res_f32 = sim::TilePool::instance().acquire(n);
                kernel::active().convert_rows_to_f32(
                    res_f32.mutableData(), res.data.raw(), res.dtype, n);
                rp = res_f32.data();
            }
            forEachOwnedSegment(
                buf, [&](float *p, std::uint32_t rows,
                         std::uint32_t row_off) {
                    addInplace(
                        p, rp + std::uint64_t(row_off) * buf.cols,
                        std::uint64_t(rows) * buf.cols);
                });
        }
        flops += elems * kResidualFlopsPerElem;
    }
    // Gamma/beta arrive as a 2 x cols block from the LPDDR FU; the chunk
    // is kept alive so the parameters are read in place, no copies.
    sim::Chunk params;
    if (u.scale_shift) {
        params = co_await in(FuId{FuType::Lpddr, 0}).recv();
        countIn(params);
        checkIngress(params);
        flops += elems * kScaleShiftFlopsPerElem;
    }

    if (u.softmax) {
        if (buf.hasData())
            forEachOwnedSegment(buf, [&](float *p, std::uint32_t rows,
                                         std::uint32_t) {
                kernel::active().softmax_rows(p, rows, buf.cols);
            });
        flops += elems * kSoftmaxFlopsPerElem;
    }
    if (u.gelu) {
        if (buf.hasData())
            forEachOwnedSegment(buf, [&](float *p, std::uint32_t rows,
                                         std::uint32_t) {
                kernel::active().gelu_inplace(
                    p, std::uint64_t(rows) * buf.cols);
            });
        flops += elems * kGeluFlopsPerElem;
    }
    if (u.layernorm) {
        if (buf.hasData())
            forEachOwnedSegment(buf, [&](float *p, std::uint32_t rows,
                                         std::uint32_t) {
                kernel::active().layernorm_rows(p, rows, buf.cols);
            });
        flops += elems * kLayernormFlopsPerElem;
    }
    if (u.scale_shift && buf.hasData() && params.hasData()) {
        // scaleShiftRows' raw-pointer form has no size to check against
        // (contract in fu/nonlinear.hh), so the zero-copy path validates
        // the in-place LPDDR chunk here: gamma is row 0 and beta row 1
        // of a 2 x cols block, and the adopted payload window must
        // actually hold both rows before the pointers are formed.
        rsn_assert(params.cols >= buf.cols,
                   "%s gamma/beta block narrower than tile (%u < %u)",
                   name().c_str(), params.cols, buf.cols);
        rsn_assert(params.rows >= 2,
                   "%s gamma/beta block needs 2 rows, got %u",
                   name().c_str(), params.rows);
        rsn_assert(params.dtype == Dtype::F32,
                   "%s gamma/beta must be FP32 (precision policy)",
                   name().c_str());
        rsn_assert(params.data.capacity() >=
                       2 * std::uint64_t(params.cols),
                   "%s gamma/beta payload window too short: %llu < %llu",
                   name().c_str(),
                   static_cast<unsigned long long>(
                       params.data.capacity()),
                   static_cast<unsigned long long>(
                       2 * std::uint64_t(params.cols)));
        const float *gamma = params.data.data();
        forEachOwnedSegment(buf, [&](float *p, std::uint32_t rows,
                                     std::uint32_t) {
            scaleShiftRows(p, rows, buf.cols, gamma,
                           gamma + params.cols);
        });
    }

    if (flops > 0) {
        countFlops(static_cast<std::uint64_t>(flops));
        co_await eng_.delay(
            static_cast<Tick>(std::ceil(flops / flops_per_tick_)));
    }
}

sim::Task
MemCFu::sendPart(const isa::MemCUop &u, TileBuffer &buf)
{
    rsn_assert(buf.rows > 0, "%s sending before any recv", name().c_str());
    if (u.store) {
        sim::Stream &o = out(ddr_);
        auto pieces = sliceRows(buf.rows, u.send_chunks);
        for (std::uint32_t i = 0; i < pieces.size(); ++i) {
            sim::Chunk c = sliceChunkAs(buf, pieces[i].first,
                                        pieces[i].second, i, u.out_dtype);
            countOut(c);
            co_await o.send(std::move(c));
        }
    }
    if (u.send_mme) {
        sim::Stream &o = out(u.send_dest);
        auto pieces = sliceRows(buf.rows, u.send_chunks);
        for (std::uint32_t i = 0; i < pieces.size(); ++i) {
            sim::Chunk c = sliceChunkAs(buf, pieces[i].first,
                                        pieces[i].second, i, u.out_dtype);
            countOut(c);
            co_await o.send(std::move(c));
        }
    }
}

sim::Task
MemCFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MemCUop>(uop);
    TileBuffer &recv_buf = recv_to_ping_ ? ping_ : pong_;
    TileBuffer &send_buf = recv_to_ping_ ? pong_ : ping_;
    if (u.recv)
        recv_to_ping_ = !recv_to_ping_;

    // RCEV (plus its fused operator) overlaps SEND of the previous tile
    // (paper Fig. 11).
    if (u.recv && (u.store || u.send_mme)) {
        sim::Task rc = recvPart(u, recv_buf);
        sim::Task snd = sendPart(u, send_buf);
        co_await rc;
        co_await snd;
    } else if (u.recv) {
        co_await recvPart(u, recv_buf);
    } else if (u.store || u.send_mme) {
        co_await sendPart(u, send_buf);
    }
}

void
MemCFu::resetKernelState()
{
    ping_ = {};
    pong_ = {};
    recv_to_ping_ = true;
}

} // namespace rsn::fu
