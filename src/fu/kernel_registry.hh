/**
 * @file
 * Runtime kernel dispatch: one binary for every microarch (ISSUE 7).
 *
 * Until this PR the payload kernels — the blocked GEMM microkernel
 * (fu/gemm_kernel.hh) and the vectorized nonlinear layer — were
 * compile-time selected by the `RSN_SIMD` CMake option plus whatever
 * `-march` the build carried, so a production deployment needed one
 * build directory per microarchitecture and the default artifact paid
 * ~3x over AVX-512 for identical math. This module replaces that with
 * startup selection from a single fat binary:
 *
 *  - every ISA variant compiles as its **own translation unit** under
 *    per-TU `-march` flags (src/fu/kernels/kernels_<isa>.cc, wired in
 *    CMakeLists.txt), so the default build contains them all and no
 *    vector instruction leaks into baseline-ISA code;
 *  - each variant exports one **KernelTable** of plain function
 *    pointers covering every runtime-dispatched payload operation:
 *    GEMM accumulate, softmax / GELU / LayerNorm, and tile transpose;
 *  - the **Registry** probes cpuid at startup — including the xgetbv
 *    check that the OS actually saves ymm/zmm state — and activates
 *    the best table the CPU supports, overridable with
 *    `RSN_ISA=avx512|avx2|neon|portable|scalar` or programmatically
 *    (rsn-sim `--isa`, ScopedIsaOverride in tests and benches).
 *
 * The `scalar` table is the **exact reference path**: the pre-blocked
 * scalar GEMM loop (fu::gemmRefAccumulate) and the exact libm
 * nonlinear kernels (fu/nonlinear.hh). It is what the golden numeric
 * tier runs and what property tests compare every other table against;
 * it is never auto-selected by the probe. This retires the old
 * separate nonlinear mode switch (`setNonlinearMode` /
 * `ScopedNonlinearMode` / `RSN_NONLINEAR`): exact-vs-simd is now just
 * scalar-vs-any-other-table through the same registry. The deprecated
 * `RSN_NONLINEAR` alias has been removed after two majors — setting it
 * is now a hard startup error pointing at `RSN_ISA`.
 *
 * ## Dispatch cost
 *
 * The table call replaces calls that were already out of line at
 * microkernel-block / whole-tile granularity (an indirect call per
 * gemmAccumulate / per fused-operator segment), so dispatch overhead
 * is noise. `active()` is one pointer load plus a never-taken null
 * branch; probe/selection code is `[[gnu::cold]]` so it cannot starve
 * the LTO inline budget of the hot paths (the PR 6 lesson).
 *
 * ## Numerics
 *
 * Table choice moves *payload values only*, never simulated time: the
 * golden tick counts are bit-exact under every table
 * (tests/lib/test_golden_e2e.cc). Transpose is pure data movement and
 * bit-identical across tables; GEMM and the nonlinear operators follow
 * the documented tolerance policy vs the scalar reference
 * (fu/gemm_kernel.hh, docs/datapath.md).
 */

#ifndef RSN_FU_KERNEL_REGISTRY_HH
#define RSN_FU_KERNEL_REGISTRY_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/dtype.hh"
#include "common/status.hh"

namespace rsn::fu {
class GemmScratch;
}

namespace rsn::kernel {

/** Kernel-table variants, worst to best. Which ones exist in a given
 *  binary depends on the target architecture (CMakeLists.txt); Scalar
 *  and Portable are always compiled in. */
enum class Isa : std::uint8_t {
    Scalar = 0,  ///< exact reference (scalar GEMM loop, libm nonlinear)
    Portable,    ///< auto-vectorized baseline-ISA kernels
    Neon,        ///< aarch64 NEON register kernels
    Avx2,        ///< x86 AVX2+FMA register kernels
    Avx512,      ///< x86 AVX-512F register kernels
};
inline constexpr std::size_t kNumIsas = 5;

/** Stable lowercase name: "scalar", "portable", "neon", "avx2",
 *  "avx512" (the RSN_ISA / --isa vocabulary). */
const char *isaName(Isa isa);

/** Parse an ISA name; nullopt for anything not in the vocabulary. */
std::optional<Isa> isaFromName(std::string_view name);

/**
 * One ISA variant's dispatch table: plain function pointers, filled in
 * by that variant's translation unit (src/fu/kernels/). All entries
 * are always non-null. Contracts match the functions they replace:
 * gemm_accumulate is fu/gemm_kernel.hh's blocked product (tolerance
 * policy there), the row-wise operators follow fu/nonlinear.hh
 * including the rows==0 / cols==0 no-op guards, and transpose writes
 * dst(cols x rows) = src(rows x cols)^T — pure data movement,
 * bit-identical across every table, dst must not alias src.
 */
struct KernelTable {
    Isa isa;
    const char *name;  ///< isaName(isa)
    /** True only for the scalar table: results are the exact reference
     *  semantics (golden numeric tier, property-test baseline). */
    bool exact;

    void (*gemm_accumulate)(fu::GemmScratch &scratch, float *acc,
                            const float *lhs, const float *rhs,
                            std::uint32_t m, std::uint32_t k,
                            std::uint32_t n);
    void (*softmax_rows)(float *tile, std::uint32_t rows,
                         std::uint32_t cols);
    void (*gelu_inplace)(float *tile, std::size_t n);
    void (*layernorm_rows)(float *tile, std::uint32_t rows,
                           std::uint32_t cols);
    void (*transpose)(float *dst, const float *src, std::uint32_t rows,
                      std::uint32_t cols);

    // --- typed-tile entries (ISSUE 10) -------------------------------
    //
    // The conversion routines are the dtype boundary of the datapath
    // (DDR/LPDDR convert-on-load/store, MemC's upconvert-before-fused-
    // ops pass, MME operand upconversion). Every table inlines the SAME
    // scalar bit manipulation from common/dtype.hh — only the loop
    // around it is per-ISA — so conversions are **bit-identical across
    // tables** (tests/fu/test_dtype_kernels.cc pins this), unlike the
    // tolerance-governed GEMM/nonlinear entries.

    /** dst[i] = toF32(src[i]) for @p n elements of @p src_dtype
     *  (F32 src is a plain copy; dst must not alias src). */
    void (*convert_rows_to_f32)(float *dst, const void *src,
                                Dtype src_dtype, std::uint64_t n);
    /** dst[i] = fromF32(src[i]) for @p n elements into @p dst_dtype
     *  (RNE rounding per common/dtype.hh; dst must not alias src). */
    void (*convert_rows_from_f32)(void *dst, Dtype dst_dtype,
                                  const float *src, std::uint64_t n);
    /**
     * BF16 GEMM, FP32 accumulation: acc(m x n, f32) += lhs(m x k, bf16)
     * @ rhs(k x n, bf16). Operands upconvert on the fly (the LHS pack
     * pass fuses the conversion; the RHS converts into a scratch
     * panel), products and sums stay FP32 end to end — the
     * accumulate-in-FP32 contract of docs/datapath.md. Tolerance vs
     * the scalar reference matches gemm_accumulate (same chains over
     * the upconverted values).
     */
    void (*gemm_accumulate_bf16)(fu::GemmScratch &scratch, float *acc,
                                 const std::uint16_t *lhs,
                                 const std::uint16_t *rhs,
                                 std::uint32_t m, std::uint32_t k,
                                 std::uint32_t n);
    /** 16-bit tile transpose (MemB on bf16/f16 tiles): same contract as
     *  transpose — pure data movement, bit-identical across tables. */
    void (*transpose_u16)(std::uint16_t *dst, const std::uint16_t *src,
                          std::uint32_t rows, std::uint32_t cols);
};

/**
 * What the startup probe saw. On x86 this is CPUID feature bits plus
 * the xgetbv(0) OS-state check — a CPU can support AVX-512 while the
 * OS (or a VM) does not save zmm state, in which case executing an
 * AVX-512 instruction faults, so os_zmm gates cpu_avx512f. Plain data
 * so tests can fabricate probes (probe mocking).
 */
struct CpuProbe {
    bool cpu_avx = false;      ///< CPUID.1:ECX.AVX
    bool cpu_fma = false;      ///< CPUID.1:ECX.FMA
    bool cpu_avx2 = false;     ///< CPUID.7:EBX.AVX2
    bool cpu_avx512f = false;  ///< CPUID.7:EBX.AVX512F
    bool os_ymm = false;       ///< XCR0 xmm+ymm state enabled
    bool os_zmm = false;       ///< XCR0 opmask+zmm state enabled
    bool neon = false;         ///< aarch64 baseline

    /** Can this CPU/OS execute the given variant? (Scalar/Portable:
     *  always.) Says nothing about what is compiled in. */
    bool supports(Isa isa) const;

    /** One-line summary for logs / RunReport, e.g.
     *  "avx=1 fma=1 avx2=1 avx512f=1 os_ymm=1 os_zmm=1". */
    std::string toString() const;
};

/** Probe the machine we are running on (cold; called once). */
[[gnu::cold]] CpuProbe probeCpu();

/**
 * Startup selection policy as a pure function, unit-testable without
 * the process-wide singleton: RSN_ISA selects by name, and any
 * unknown / not-compiled-in / unsupported-by-CPU request falls back to
 * the probed best with a warning. The retired RSN_NONLINEAR variable
 * (a PR 7 deprecation alias, two majors stale) is now a **hard
 * error**: if it is set at all, the process aborts with a message
 * pointing at RSN_ISA — a silent fallback would quietly change which
 * kernels a stale CI config runs. Pass null for unset variables.
 * @p compiled_in is the Isa set available in this binary, best first.
 */
struct StartupChoice {
    Isa isa;
    const char *source;   ///< "probe" or "env:RSN_ISA"
    std::string warning;  ///< empty, or why a request was ignored
};
StartupChoice resolveStartupIsa(const char *rsn_isa,
                                const char *rsn_nonlinear,
                                const CpuProbe &probe,
                                const std::vector<Isa> &compiled_in);

/** Best CPU-supported entry of @p compiled_in, never Scalar (the exact
 *  reference is opt-in only). Falls back to Portable. */
Isa chooseBest(const CpuProbe &probe, const std::vector<Isa> &compiled_in);

namespace detail {
/** Active-table pointer behind active(); set eagerly when the Registry
 *  first initializes, null only before that. Atomic so concurrent
 *  first use from sweep lanes is a clean race: every table is a
 *  constant-initialized const global, so a relaxed load of the pointer
 *  is enough — there is no table *content* to publish. */
extern std::atomic<const KernelTable *> g_active;
[[gnu::cold]] const KernelTable &activeSlow();
} // namespace detail

/**
 * The active dispatch table — the hot accessor the MME / Mem FUs call
 * through. One pointer load; the null branch is taken at most once per
 * thread (first touch before any explicit Registry use). Safe to call
 * from any sweep lane.
 */
inline const KernelTable &
active()
{
    const KernelTable *t =
        detail::g_active.load(std::memory_order_relaxed);
    if (t) [[likely]]
        return *t;
    return detail::activeSlow();
}

/**
 * Process-wide kernel selection.
 *
 * Threading contract (docs/datapath.md): `instance()` and `active()`
 * are safe for concurrent first use — the Meyers singleton serializes
 * construction and the g_active publish is atomic. Selection
 * (`select`, `ScopedIsaOverride`, the env overrides read at startup)
 * is **main-thread-only, with no sweep running**: a mid-sweep switch
 * would hand different lanes different kernel tables and break the
 * bit-identical --jobs guarantee. The sweep executor (lib/sweep.hh)
 * touches `instance()` before spawning lanes so workers never race
 * the startup probe.
 */
class Registry
{
  public:
    /** The singleton; first use probes cpuid and applies RSN_ISA
     *  (a set RSN_NONLINEAR is a hard startup error). */
    static Registry &instance();

    /** Currently selected table (same object active() dereferences). */
    const KernelTable &active() const { return *active_; }

    /** Compiled-in tables, best first (ends scalar). */
    const std::vector<const KernelTable *> &tables() const
    {
        return tables_;
    }

    /** Compiled-in table by name; null for unknown or not compiled in. */
    const KernelTable *find(std::string_view name) const;

    /**
     * Select by name (rsn-sim --isa). Strict, unlike the env fallback:
     * an unknown name, a variant this binary does not contain, or one
     * this CPU cannot execute returns InvalidConfig and leaves the
     * selection unchanged. @p source becomes selectionSource() on
     * success (the driver passes "cli:--isa").
     */
    [[gnu::cold]] Status select(std::string_view name,
                                const char *source = "override");

    /** Select a compiled-in table directly (ScopedIsaOverride). */
    [[gnu::cold]] void select(const KernelTable &table);

    /** True when @p isa is compiled in AND this CPU can execute it. */
    bool selectable(Isa isa) const;

    /** What the startup probe saw. */
    const CpuProbe &probe() const { return probe_; }

    /** How the active table was chosen: "probe", "env:RSN_ISA", or
     *  "override". */
    const char *selectionSource() const { return source_; }

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

  private:
    friend class ScopedIsaOverride;  // restores source_ on unwind

    [[gnu::cold]] Registry();

    std::vector<const KernelTable *> tables_;
    CpuProbe probe_;
    const KernelTable *active_ = nullptr;
    const char *source_ = "probe";
};

/**
 * RAII selection pin for tests and benches: selects @p isa (which must
 * be selectable — compiled in and CPU-supported; guard with
 * Registry::selectable() when iterating variants on unknown hardware)
 * and restores the previous table and selection source on destruction.
 */
class ScopedIsaOverride
{
  public:
    explicit ScopedIsaOverride(Isa isa);
    explicit ScopedIsaOverride(const KernelTable &table);
    ~ScopedIsaOverride();
    ScopedIsaOverride(const ScopedIsaOverride &) = delete;
    ScopedIsaOverride &operator=(const ScopedIsaOverride &) = delete;

  private:
    const KernelTable *prev_;
    const char *prev_source_;
};

} // namespace rsn::kernel

#endif // RSN_FU_KERNEL_REGISTRY_HH
