/**
 * @file
 * Exact-scalar reference table: the one KernelTable whose results are
 * the *reference semantics*, not an approximation. GEMM is the
 * pre-blocked scalar loop (fu::gemmRefAccumulate), the nonlinear
 * operators are the exact libm kernels (fu/nonlinear.hh — erf GELU,
 * libm exp softmax, double-accumulation LayerNorm), and transpose is
 * the naive scalar loop. Property tests compare every other table
 * against this one; the golden numeric tier runs it; the probe never
 * auto-selects it (RSN_ISA=scalar / --isa scalar / RSN_NONLINEAR=exact
 * opt in).
 *
 * This TU replaces the retired NonlinearMode::Exact runtime switch:
 * "exact mode" is now simply this table being active.
 */

#include <cstddef>
#include <cstdint>

#include "fu/gemm_kernel.hh"
#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"

namespace rsn::kernel::scalar {

namespace {

void
gemmAccumulateImpl(fu::GemmScratch &, float *acc, const float *lhs,
                   const float *rhs, std::uint32_t m, std::uint32_t k,
                   std::uint32_t n)
{
    fu::gemmRefAccumulate(acc, lhs, rhs, m, k, n);
}

void
softmaxRowsImpl(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    fu::softmaxRows(tile, rows, cols);
}

void
geluInplaceImpl(float *tile, std::size_t n)
{
    fu::geluInplace(tile, n);
}

void
layernormRowsImpl(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    fu::layernormRows(tile, rows, cols);
}

void
transposeImpl(float *dst, const float *src, std::uint32_t rows,
              std::uint32_t cols)
{
    for (std::uint32_t i = 0; i < rows; ++i)
        for (std::uint32_t j = 0; j < cols; ++j)
            dst[std::size_t(j) * rows + i] = src[std::size_t(i) * cols + j];
}

} // namespace

extern const KernelTable table;
const KernelTable table = {
    Isa::Scalar,
    "scalar",
    /*exact=*/true,
    &gemmAccumulateImpl,
    &softmaxRowsImpl,
    &geluInplaceImpl,
    &layernormRowsImpl,
    &transposeImpl,
};

} // namespace rsn::kernel::scalar
