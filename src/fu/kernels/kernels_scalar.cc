/**
 * @file
 * Exact-scalar reference table: the one KernelTable whose results are
 * the *reference semantics*, not an approximation. GEMM is the
 * pre-blocked scalar loop (fu::gemmRefAccumulate), the nonlinear
 * operators are the exact libm kernels (fu/nonlinear.hh — erf GELU,
 * libm exp softmax, double-accumulation LayerNorm), and transpose is
 * the naive scalar loop. Property tests compare every other table
 * against this one; the golden numeric tier runs it; the probe never
 * auto-selects it (RSN_ISA=scalar / --isa scalar opt in).
 *
 * This TU replaces the retired NonlinearMode::Exact runtime switch:
 * "exact mode" is now simply this table being active.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/dtype.hh"
#include "fu/gemm_kernel.hh"
#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"

namespace rsn::kernel::scalar {

namespace {

void
gemmAccumulateImpl(fu::GemmScratch &, float *acc, const float *lhs,
                   const float *rhs, std::uint32_t m, std::uint32_t k,
                   std::uint32_t n)
{
    fu::gemmRefAccumulate(acc, lhs, rhs, m, k, n);
}

void
softmaxRowsImpl(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    fu::softmaxRows(tile, rows, cols);
}

void
geluInplaceImpl(float *tile, std::size_t n)
{
    fu::geluInplace(tile, n);
}

void
layernormRowsImpl(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    fu::layernormRows(tile, rows, cols);
}

void
transposeImpl(float *dst, const float *src, std::uint32_t rows,
              std::uint32_t cols)
{
    for (std::uint32_t i = 0; i < rows; ++i)
        for (std::uint32_t j = 0; j < cols; ++j)
            dst[std::size_t(j) * rows + i] = src[std::size_t(i) * cols + j];
}

// Typed-tile reference entries (ISSUE 10): plain element loops over
// the shared converters in common/dtype.hh — the baseline the
// property tests compare every vectorized table's conversions against
// (which must match bit-exactly, not within tolerance).

void
convertRowsToF32Impl(float *dst, const void *src, Dtype src_dtype,
                     std::uint64_t n)
{
    switch (src_dtype) {
    case Dtype::Bf16:
        for (std::uint64_t i = 0; i < n; ++i)
            dst[i] = bf16ToF32(static_cast<const std::uint16_t *>(src)[i]);
        break;
    case Dtype::F16:
        for (std::uint64_t i = 0; i < n; ++i)
            dst[i] = f16ToF32(static_cast<const std::uint16_t *>(src)[i]);
        break;
    default:
        std::memcpy(dst, src, n * sizeof(float));
        break;
    }
}

void
convertRowsFromF32Impl(void *dst, Dtype dst_dtype, const float *src,
                       std::uint64_t n)
{
    switch (dst_dtype) {
    case Dtype::Bf16:
        for (std::uint64_t i = 0; i < n; ++i)
            static_cast<std::uint16_t *>(dst)[i] = f32ToBf16(src[i]);
        break;
    case Dtype::F16:
        for (std::uint64_t i = 0; i < n; ++i)
            static_cast<std::uint16_t *>(dst)[i] = f32ToF16(src[i]);
        break;
    default:
        std::memcpy(dst, src, n * sizeof(float));
        break;
    }
}

/** Reference bf16 GEMM: upconvert both operands into scratch panels,
 *  then the exact scalar FP32 loop — accumulate-in-FP32 by
 *  construction. */
void
gemmAccumulateBf16Impl(fu::GemmScratch &scratch, float *acc,
                       const std::uint16_t *lhs, const std::uint16_t *rhs,
                       std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    if (m == 0 || k == 0 || n == 0)
        return;
    float *lf = scratch.cvtLhsPanel(std::uint64_t(m) * k);
    float *rf = scratch.cvtRhsPanel(std::uint64_t(k) * n);
    convertRowsToF32Impl(lf, lhs, Dtype::Bf16, std::uint64_t(m) * k);
    convertRowsToF32Impl(rf, rhs, Dtype::Bf16, std::uint64_t(k) * n);
    fu::gemmRefAccumulate(acc, lf, rf, m, k, n);
}

void
transposeU16Impl(std::uint16_t *dst, const std::uint16_t *src,
                 std::uint32_t rows, std::uint32_t cols)
{
    for (std::uint32_t i = 0; i < rows; ++i)
        for (std::uint32_t j = 0; j < cols; ++j)
            dst[std::size_t(j) * rows + i] = src[std::size_t(i) * cols + j];
}

} // namespace

extern const KernelTable table;
const KernelTable table = {
    Isa::Scalar,
    "scalar",
    /*exact=*/true,
    &gemmAccumulateImpl,
    &softmaxRowsImpl,
    &geluInplaceImpl,
    &layernormRowsImpl,
    &transposeImpl,
    &convertRowsToF32Impl,
    &convertRowsFromF32Impl,
    &gemmAccumulateBf16Impl,
    &transposeU16Impl,
};

} // namespace rsn::kernel::scalar
