/**
 * @file
 * AVX-512F kernel table. Compiled with "-mavx512f -mavx2 -mfma" scoped
 * to this TU only (CMakeLists.txt) — the #error guard catches a build
 * that lost the per-source flags, which would otherwise quietly produce
 * a mislabelled table. Runtime safety is the Registry's job: this table
 * is only selectable when cpuid reports AVX-512F *and* xgetbv shows the
 * OS saving zmm state.
 */

#if !defined(__AVX512F__) || !defined(__AVX2__) || !defined(__FMA__)
#error "kernels_avx512.cc requires -mavx512f -mavx2 -mfma (per-TU flags)"
#endif

#define RSN_KERNEL_VARIANT_AVX512 1
#define RSN_KERNEL_NS avx512
#define RSN_KERNEL_ISA_ENUM ::rsn::kernel::Isa::Avx512
#define RSN_KERNEL_NAME_STR "avx512"
#include "fu/kernels/kernel_impl.inc"
