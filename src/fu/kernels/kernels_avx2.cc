/**
 * @file
 * AVX2+FMA kernel table. Compiled with "-mavx2 -mfma" scoped to this
 * TU only (CMakeLists.txt); selectable whenever cpuid reports AVX2 and
 * FMA with ymm state OS-enabled.
 */

#if !defined(__AVX2__) || !defined(__FMA__)
#error "kernels_avx2.cc requires -mavx2 -mfma (per-TU flags)"
#endif

#define RSN_KERNEL_VARIANT_AVX2 1
#define RSN_KERNEL_NS avx2
#define RSN_KERNEL_ISA_ENUM ::rsn::kernel::Isa::Avx2
#define RSN_KERNEL_NAME_STR "avx2"
#include "fu/kernels/kernel_impl.inc"
