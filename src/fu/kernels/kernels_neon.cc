/**
 * @file
 * NEON kernel table. NEON is baseline on aarch64, so this TU needs no
 * extra -march flags — it is simply only added to the build on ARM
 * targets (CMakeLists.txt).
 */

#ifndef __ARM_NEON
#error "kernels_neon.cc requires an ARM NEON target"
#endif

#define RSN_KERNEL_VARIANT_NEON 1
#define RSN_KERNEL_NS neon
#define RSN_KERNEL_ISA_ENUM ::rsn::kernel::Isa::Neon
#define RSN_KERNEL_NAME_STR "neon"
#include "fu/kernels/kernel_impl.inc"
