/**
 * @file
 * Portable kernel table: the auto-vectorizable forms of the same
 * algorithms, compiled with the build's baseline flags and no
 * intrinsics. Always compiled in, and the probe's fallback on CPUs
 * where no register variant is executable. Note the variant macro, not
 * the compiler's predefined macros, selects the implementation — under
 * a -march=native build this table still contains the portable code it
 * is named for.
 */

#define RSN_KERNEL_VARIANT_PORTABLE 1
#define RSN_KERNEL_NS portable
#define RSN_KERNEL_ISA_ENUM ::rsn::kernel::Isa::Portable
#define RSN_KERNEL_NAME_STR "portable"
#include "fu/kernels/kernel_impl.inc"
