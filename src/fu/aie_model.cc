#include "fu/aie_model.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace rsn::fu {

double
AieModel::chunkCycles(std::uint32_t m, std::uint32_t k,
                      std::uint32_t n) const
{
    rsn_assert(m > 0 && k > 0 && n > 0, "empty chunk");
    const std::uint32_t macro_m = p_.grid * p_.native_m;
    const std::uint32_t macro_k = p_.grid * p_.native_k;
    const std::uint32_t macro_n = p_.grid * p_.native_n;

    auto ceil_div = [](std::uint32_t a, std::uint32_t b) {
        return (a + b - 1) / b;
    };

    // Partial waves along M/N pay the full wave (idle lanes); partial K
    // shortens the per-tile accumulation loop.
    const std::uint32_t im = ceil_div(m, macro_m);
    const std::uint32_t in = ceil_div(n, macro_n);

    const double out_bytes = double(p_.native_m) * p_.native_n *
                             sizeof(float);
    const double overhead = p_.overhead_base +
                            out_bytes / p_.drain_bytes_per_cycle;

    double total = 0;
    for (std::uint32_t ik = 0; ik * macro_k < k; ++ik) {
        std::uint32_t ek = std::min<std::uint32_t>(macro_k,
                                                   k - ik * macro_k);
        // Cascade splits K over `grid` tiles.
        std::uint32_t per_tile_k = ceil_div(ek, p_.grid);
        double compute = double(p_.native_m) * per_tile_k * p_.native_n /
                         p_.macs_per_cycle;
        total += (compute + overhead) * im * in;
    }
    return total;
}

Tick
AieModel::chunkTicks(std::uint32_t m, std::uint32_t k,
                     std::uint32_t n) const
{
    double cycles = chunkCycles(m, k, n);
    double ticks = cycles * p_.pl_hz / p_.aie_hz;
    auto t = static_cast<Tick>(std::ceil(ticks));
    return t ? t : 1;
}

double
AieModel::steadyGflops(std::uint32_t m, std::uint32_t k, std::uint32_t n,
                       int mmes) const
{
    double cycles = chunkCycles(m, k, n);
    double flops = 2.0 * m * k * n;
    return flops / (cycles / p_.aie_hz) * mmes / 1e9;
}

} // namespace rsn::fu
