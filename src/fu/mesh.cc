#include "fu/mesh.hh"

#include "common/log.hh"

namespace rsn::fu {

MeshFu::MeshFu(sim::Engine &eng, FuId id) : Fu(eng, id) {}

sim::Task
MeshFu::broadcastKernel(const isa::MeshUop &u)
{
    sim::Stream &src = in(u.routes.front().src);
    for (std::uint32_t rep = 0; rep < u.repeats; ++rep) {
        sim::Chunk c = co_await src.recv();
        countIn(c);
        // Replicate to every destination and let the transfers overlap
        // (distinct output links). The copies share one pooled payload by
        // refcount; receivers get read-only views and must take
        // ownership (TileRef::ensureUnique, copy-on-write) to transform.
        for (const auto &r : u.routes) {
            sim::Chunk copy = c;
            countOut(copy);
            out(r.dst).post(std::move(copy));
        }
        // Next repeat may not start until every destination received its
        // copy — same barrier the per-send coroutines used to provide.
        for (const auto &r : u.routes)
            co_await out(r.dst).flush();
    }
}

sim::Task
MeshFu::routeKernel(std::vector<isa::MeshRoute> cycle,
                    std::uint32_t repeats)
{
    // One lane per source: consecutive chunks from that source rotate
    // through the lane's destinations in listed order (e.g. K to MME_l,
    // then V to MME_{3+l}).
    sim::Stream &src = in(cycle.front().src);
    for (std::uint32_t rep = 0; rep < repeats; ++rep) {
        for (const auto &r : cycle) {
            sim::Chunk c = co_await src.recv();
            countIn(c);
            countOut(c);
            co_await out(r.dst).send(std::move(c));
        }
    }
}

sim::Task
MeshFu::distributeKernel(const isa::MeshUop &u)
{
    // Deal consecutive chunks from one source across the routes in order
    // (the M-split of a tile: slice i -> MME_i).
    for (std::uint32_t rep = 0; rep < u.repeats; ++rep) {
        for (const auto &r : u.routes) {
            sim::Chunk c = co_await in(r.src).recv();
            countIn(c);
            countOut(c);
            co_await out(r.dst).send(std::move(c));
        }
    }
}

sim::Task
MeshFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MeshUop>(uop);
    rsn_assert(!u.routes.empty(), "mesh uOP with no routes");
    switch (u.mode) {
      case isa::MeshMode::Broadcast:
        co_await broadcastKernel(u);
        break;
      case isa::MeshMode::Distribute:
        co_await distributeKernel(u);
        break;
      case isa::MeshMode::Parallel: {
        // Group routes by source, preserving order: lanes with distinct
        // sources run concurrently; routes sharing a source form one
        // lane's destination cycle.
        std::vector<std::vector<isa::MeshRoute>> lanes_routes;
        for (const auto &r : u.routes) {
            bool found = false;
            for (auto &lane : lanes_routes) {
                if (lane.front().src == r.src) {
                    lane.push_back(r);
                    found = true;
                    break;
                }
            }
            if (!found)
                lanes_routes.push_back({r});
        }
        std::vector<sim::Task> lanes;
        lanes.reserve(lanes_routes.size());
        for (auto &lr : lanes_routes)
            lanes.push_back(routeKernel(std::move(lr), u.repeats));
        for (auto &t : lanes)
            co_await t;
        break;
      }
    }
}

} // namespace rsn::fu
