#include "fu/nonlinear_simd.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "fu/nonlinear.hh"

#if defined(RSN_SIMD) && defined(__AVX512F__)
#include <immintrin.h>
#define RSN_NL_AVX512 1
#define RSN_NL_VECTOR 1
#elif defined(RSN_SIMD) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define RSN_NL_AVX2 1
#define RSN_NL_VECTOR 1
#elif defined(RSN_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define RSN_NL_NEON 1
#define RSN_NL_VECTOR 1
#endif

namespace rsn::fu {

namespace {

// ------------------------------------------------------ scalar approx --
//
// The scalar forms of the approximations, used three ways: as the
// vector kernels' row tails (cols % W), as the whole portable build,
// and as the single source of truth for the constants. Branch-free on
// purpose — the portable loops below auto-vectorize.

/** Clamp bounds: exp(kExpLo) flushes toward 0 without denormal scaling
 *  (n >= -126); exp(kExpHi) = 1.67e38 stays finite (n <= 127). */
constexpr float kExpLo = -87.33654f;
constexpr float kExpHi = 88.02f;

/** log2(e) and the two-part ln2 split (Cephes). */
constexpr float kLog2e = 1.44269504089f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;

/** Degree-5 polynomial for exp(r) - 1 - r on |r| <= ln2/2 (Cephes). */
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

/** Magic constant: adding/subtracting 1.5 * 2^23 rounds |z| < 2^22 to
 *  the nearest integer (ties to even) without a branch or libm call. */
constexpr float kRoundMagic = 12582912.0f;

/** tanh-GELU argument: 2 * sqrt(2/pi) * (x + 0.044715 x^3)
 *  = x * (kGelu0 + kGelu1 * x^2). */
constexpr float kGelu0 = 1.5957691216057308f;
constexpr float kGelu1 = 0.07135481627613502f;

/** Polynomial exp core for a pre-clamped argument (see approxExpf).
 *  Kept clamp-free on purpose: GCC jump-threads a clamp fused with the
 *  polynomial into real branches (the clamped result is a constant it
 *  can fold), and "control flow in loop" kills auto-vectorization of
 *  the portable paths — so the clamp always runs as its own pass. */
inline float
approxExpNoClampf(float x)
{
    const float z = x * kLog2e;
    const float nf = (z + kRoundMagic) - kRoundMagic;  // round(z)
    const float r = (x - nf * kLn2Hi) - nf * kLn2Lo;
    float p = kExpP0;
    p = p * r + kExpP1;
    p = p * r + kExpP2;
    p = p * r + kExpP3;
    p = p * r + kExpP4;
    p = p * r + kExpP5;
    const float y = p * (r * r) + r + 1.0f;
    const auto n = static_cast<std::int32_t>(nf);
    return y * std::bit_cast<float>((n + 127) << 23);
}

/** Polynomial exp, relative error ~2e-7 over the clamped domain. */
inline float
approxExpf(float x)
{
    return approxExpNoClampf(std::min(std::max(x, kExpLo), kExpHi));
}

/** tanh-based GELU: x * sigmoid(2 sqrt(2/pi) (x + 0.044715 x^3)). */
inline float
approxGeluf(float x)
{
    const float t2 = x * (kGelu0 + kGelu1 * x * x);
    const float e = approxExpf(t2);
    return x * (e / (e + 1.0f));
}

#if RSN_NL_AVX512

constexpr std::uint32_t kW = 16;
using vf = __m512;

inline vf vload(const float *p) { return _mm512_loadu_ps(p); }
inline void vstore(float *p, vf v) { _mm512_storeu_ps(p, v); }
inline vf vset1(float x) { return _mm512_set1_ps(x); }
inline vf vadd(vf a, vf b) { return _mm512_add_ps(a, b); }
inline vf vsub(vf a, vf b) { return _mm512_sub_ps(a, b); }
inline vf vmul(vf a, vf b) { return _mm512_mul_ps(a, b); }
inline vf vdiv(vf a, vf b) { return _mm512_div_ps(a, b); }
inline vf vmax(vf a, vf b) { return _mm512_max_ps(a, b); }
inline vf vfma(vf a, vf b, vf c) { return _mm512_fmadd_ps(a, b, c); }
inline float vhadd(vf v) { return _mm512_reduce_add_ps(v); }
inline float vhmax(vf v) { return _mm512_reduce_max_ps(v); }

inline vf
vexp(vf x)
{
    x = _mm512_min_ps(_mm512_max_ps(x, vset1(kExpLo)), vset1(kExpHi));
    const vf z = vmul(x, vset1(kLog2e));
    const __m512i n = _mm512_cvtps_epi32(z);  // round-to-nearest-even
    const vf nf = _mm512_cvtepi32_ps(n);
    vf r = vfma(nf, vset1(-kLn2Hi), x);
    r = vfma(nf, vset1(-kLn2Lo), r);
    vf p = vset1(kExpP0);
    p = vfma(p, r, vset1(kExpP1));
    p = vfma(p, r, vset1(kExpP2));
    p = vfma(p, r, vset1(kExpP3));
    p = vfma(p, r, vset1(kExpP4));
    p = vfma(p, r, vset1(kExpP5));
    const vf y = vadd(vfma(p, vmul(r, r), r), vset1(1.0f));
    const __m512i e =
        _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)), 23);
    return vmul(y, _mm512_castsi512_ps(e));
}

#elif RSN_NL_AVX2

constexpr std::uint32_t kW = 8;
using vf = __m256;

inline vf vload(const float *p) { return _mm256_loadu_ps(p); }
inline void vstore(float *p, vf v) { _mm256_storeu_ps(p, v); }
inline vf vset1(float x) { return _mm256_set1_ps(x); }
inline vf vadd(vf a, vf b) { return _mm256_add_ps(a, b); }
inline vf vsub(vf a, vf b) { return _mm256_sub_ps(a, b); }
inline vf vmul(vf a, vf b) { return _mm256_mul_ps(a, b); }
inline vf vdiv(vf a, vf b) { return _mm256_div_ps(a, b); }
inline vf vmax(vf a, vf b) { return _mm256_max_ps(a, b); }
inline vf vfma(vf a, vf b, vf c) { return _mm256_fmadd_ps(a, b, c); }

inline float
vhadd(vf v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

inline float
vhmax(vf v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_max_ps(lo, hi);
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

inline vf
vexp(vf x)
{
    x = _mm256_min_ps(_mm256_max_ps(x, vset1(kExpLo)), vset1(kExpHi));
    const vf z = vmul(x, vset1(kLog2e));
    const __m256i n = _mm256_cvtps_epi32(z);  // round-to-nearest-even
    const vf nf = _mm256_cvtepi32_ps(n);
    vf r = vfma(nf, vset1(-kLn2Hi), x);
    r = vfma(nf, vset1(-kLn2Lo), r);
    vf p = vset1(kExpP0);
    p = vfma(p, r, vset1(kExpP1));
    p = vfma(p, r, vset1(kExpP2));
    p = vfma(p, r, vset1(kExpP3));
    p = vfma(p, r, vset1(kExpP4));
    p = vfma(p, r, vset1(kExpP5));
    const vf y = vadd(vfma(p, vmul(r, r), r), vset1(1.0f));
    const __m256i e =
        _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
    return vmul(y, _mm256_castsi256_ps(e));
}

#elif RSN_NL_NEON

constexpr std::uint32_t kW = 4;
using vf = float32x4_t;

inline vf vload(const float *p) { return vld1q_f32(p); }
inline void vstore(float *p, vf v) { vst1q_f32(p, v); }
inline vf vset1(float x) { return vdupq_n_f32(x); }
inline vf vadd(vf a, vf b) { return vaddq_f32(a, b); }
inline vf vsub(vf a, vf b) { return vsubq_f32(a, b); }
inline vf vmul(vf a, vf b) { return vmulq_f32(a, b); }
inline vf vdiv(vf a, vf b) { return vdivq_f32(a, b); }
inline vf vmax(vf a, vf b) { return vmaxq_f32(a, b); }
inline vf vfma(vf a, vf b, vf c) { return vfmaq_f32(c, a, b); }
inline float vhadd(vf v) { return vaddvq_f32(v); }
inline float vhmax(vf v) { return vmaxvq_f32(v); }

inline vf
vexp(vf x)
{
    x = vminq_f32(vmaxq_f32(x, vset1(kExpLo)), vset1(kExpHi));
    const vf z = vmul(x, vset1(kLog2e));
    const int32x4_t n = vcvtnq_s32_f32(z);  // round-to-nearest-even
    const vf nf = vcvtq_f32_s32(n);
    vf r = vfma(nf, vset1(-kLn2Hi), x);
    r = vfma(nf, vset1(-kLn2Lo), r);
    vf p = vset1(kExpP0);
    p = vfma(p, r, vset1(kExpP1));
    p = vfma(p, r, vset1(kExpP2));
    p = vfma(p, r, vset1(kExpP3));
    p = vfma(p, r, vset1(kExpP4));
    p = vfma(p, r, vset1(kExpP5));
    const vf y = vadd(vfma(p, vmul(r, r), r), vset1(1.0f));
    const int32x4_t e = vshlq_n_s32(vaddq_s32(n, vdupq_n_s32(127)), 23);
    return vmul(y, vreinterpretq_f32_s32(e));
}

#endif

#if RSN_NL_VECTOR

/** GELU on one register: x * e / (e + 1) with e = exp(2t(x)). */
inline vf
vgelu(vf x)
{
    const vf t2 = vmul(x, vfma(vmul(x, x), vset1(kGelu1), vset1(kGelu0)));
    const vf e = vexp(t2);
    return vmul(x, vdiv(e, vadd(e, vset1(1.0f))));
}

#endif

// ---------------------------------------------------- portable lanes --

#if !RSN_NL_VECTOR

/** Manual lane count for the portable reductions: accumulating into a
 *  small fixed array gives the compiler a reassociation-free pattern it
 *  can vectorize without -ffast-math. */
constexpr std::uint32_t kLanes = 8;

inline float
laneSum(const float *row, std::uint32_t n)
{
    float acc[kLanes] = {};
    std::uint32_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        for (std::uint32_t l = 0; l < kLanes; ++l)
            acc[l] += row[i + l];
    float s = 0.f;
    for (std::uint32_t l = 0; l < kLanes; ++l)
        s += acc[l];
    for (; i < n; ++i)
        s += row[i];
    return s;
}

/** Portable exp over a whole buffer: clamp pass then polynomial pass,
 *  both auto-vectorizable (see approxExpNoClampf on why they must stay
 *  separate loops). */
inline void
expBuffer(float *__restrict buf, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; ++i)
        buf[i] = std::min(std::max(buf[i], kExpLo), kExpHi);
    for (std::uint32_t i = 0; i < n; ++i)
        buf[i] = approxExpNoClampf(buf[i]);
}

#endif

} // namespace

// -------------------------------------------------- vectorized kernels --

void
softmaxRowsSimd(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    if (rows == 0 || cols == 0)
        return;
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
#if RSN_NL_VECTOR
        // Pass 1: row max.
        float mx;
        std::uint32_t i;
        if (cols >= kW) {
            vf vm = vload(row);
            for (i = kW; i + kW <= cols; i += kW)
                vm = vmax(vm, vload(row + i));
            mx = vhmax(vm);
        } else {
            mx = row[0];
            i = 1;
        }
        for (; i < cols; ++i)
            mx = std::max(mx, row[i]);
        // Pass 2: exp and sum.
        const vf vmx = vset1(mx);
        vf vs = vset1(0.f);
        for (i = 0; i + kW <= cols; i += kW) {
            const vf e = vexp(vsub(vload(row + i), vmx));
            vstore(row + i, e);
            vs = vadd(vs, e);
        }
        float sum = vhadd(vs);
        for (; i < cols; ++i) {
            const float e = approxExpf(row[i] - mx);
            row[i] = e;
            sum += e;
        }
        // Pass 3: scale.
        const vf vi = vset1(1.0f / sum);
        for (i = 0; i + kW <= cols; i += kW)
            vstore(row + i, vmul(vload(row + i), vi));
        const float inv = 1.0f / sum;
        for (; i < cols; ++i)
            row[i] *= inv;
#else
        float mx = row[0];
        for (std::uint32_t c = 1; c < cols; ++c)
            mx = std::max(mx, row[c]);
        // Shift in place, exp (clamp + polynomial passes), lane-sum,
        // scale — each loop stays auto-vectorizable on its own.
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] -= mx;
        expBuffer(row, cols);
        const float inv = 1.0f / laneSum(row, cols);
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] *= inv;
#endif
    }
}

void
geluInplaceSimd(float *tile, std::size_t n)
{
#if RSN_NL_VECTOR
    std::size_t i = 0;
    for (; i + kW <= n; i += kW)
        vstore(tile + i, vgelu(vload(tile + i)));
    for (; i < n; ++i)
        tile[i] = approxGeluf(tile[i]);
#else
    // Blocked so every piece auto-vectorizes: the tanh argument and
    // the final combine keep the original x in the tile while the
    // block scratch t carries 2t -> clamp -> exp.
    constexpr std::size_t kB = 16;
    std::size_t i = 0;
    for (; i + kB <= n; i += kB) {
        float t[kB];
        float *__restrict x = tile + i;
        for (std::size_t j = 0; j < kB; ++j)
            t[j] = x[j] * (kGelu0 + kGelu1 * x[j] * x[j]);
        for (std::size_t j = 0; j < kB; ++j)
            t[j] = std::min(std::max(t[j], kExpLo), kExpHi);
        for (std::size_t j = 0; j < kB; ++j)
            t[j] = approxExpNoClampf(t[j]);
        for (std::size_t j = 0; j < kB; ++j)
            x[j] = x[j] * (t[j] / (t[j] + 1.0f));
    }
    for (; i < n; ++i)
        tile[i] = approxGeluf(tile[i]);
#endif
}

void
layernormRowsSimd(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    if (rows == 0 || cols == 0)
        return;
    constexpr float eps = 1e-5f;
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
#if RSN_NL_VECTOR
        // Pass 1: rough mean m0 in float lanes.
        vf vs = vset1(0.f);
        std::uint32_t i;
        for (i = 0; i + kW <= cols; i += kW)
            vs = vadd(vs, vload(row + i));
        float s = vhadd(vs);
        for (; i < cols; ++i)
            s += row[i];
        const float m0 = s / float(cols);
        // Pass 2: centered sums. d = x - m0 is (nearly) exact — m0 sits
        // inside the row's range, so the subtraction cancels the large
        // common magnitude before any accumulation happens. The residual
        // mean sum(d)/n then *corrects* m0, and the variance about m0
        // collapses to the variance about the corrected mean.
        const vf vm0 = vset1(m0);
        vf vd = vset1(0.f), vd2 = vset1(0.f);
        for (i = 0; i + kW <= cols; i += kW) {
            const vf d = vsub(vload(row + i), vm0);
            vd = vadd(vd, d);
            vd2 = vfma(d, d, vd2);
        }
        float sd = vhadd(vd), sd2 = vhadd(vd2);
        for (; i < cols; ++i) {
            const float d = row[i] - m0;
            sd += d;
            sd2 += d * d;
        }
        const float c = sd / float(cols);
        float var = sd2 / float(cols) - c * c;
        var = std::max(var, 0.0f);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        // Subtract m0 and the correction c in two steps: x - m0 is
        // exact (Sterbenz), and c is O(spread), so no large-mean
        // precision is lost — folding them into one float shift would
        // round the mean to ~half an ulp of its magnitude.
        const vf vm0b = vset1(m0);
        const vf vc = vset1(c);
        const vf vinv = vset1(inv_std);
        for (i = 0; i + kW <= cols; i += kW)
            vstore(row + i,
                   vmul(vsub(vsub(vload(row + i), vm0b), vc), vinv));
        for (; i < cols; ++i)
            row[i] = ((row[i] - m0) - c) * inv_std;
#else
        const float m0 = laneSum(row, cols) / float(cols);
        float lane_d[kLanes] = {}, lane_d2[kLanes] = {};
        std::uint32_t i = 0;
        for (; i + kLanes <= cols; i += kLanes) {
            for (std::uint32_t l = 0; l < kLanes; ++l) {
                const float d = row[i + l] - m0;
                lane_d[l] += d;
                lane_d2[l] += d * d;
            }
        }
        float sd = 0.f, sd2 = 0.f;
        for (std::uint32_t l = 0; l < kLanes; ++l) {
            sd += lane_d[l];
            sd2 += lane_d2[l];
        }
        for (; i < cols; ++i) {
            const float d = row[i] - m0;
            sd += d;
            sd2 += d * d;
        }
        const float c = sd / float(cols);
        float var = sd2 / float(cols) - c * c;
        var = std::max(var, 0.0f);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        // Two-step subtraction, same reasoning as the vector path.
        for (std::uint32_t j = 0; j < cols; ++j)
            row[j] = ((row[j] - m0) - c) * inv_std;
#endif
    }
}

// ------------------------------------------------------ mode dispatch --

namespace {

NonlinearMode
initialMode()
{
    if (const char *e = std::getenv("RSN_NONLINEAR")) {
        if (std::strcmp(e, "exact") == 0)
            return NonlinearMode::Exact;
        if (std::strcmp(e, "simd") != 0)
            rsn_warn("unknown RSN_NONLINEAR value '%s' (want "
                     "\"exact\" or \"simd\"), using simd",
                     e);
    }
    return NonlinearMode::Simd;
}

/** Process-wide mode. Functional runs are single-threaded (one engine
 *  drives every FU), so a plain global is enough. */
NonlinearMode &
modeRef()
{
    static NonlinearMode m = initialMode();
    return m;
}

} // namespace

NonlinearMode
nonlinearMode()
{
    return modeRef();
}

void
setNonlinearMode(NonlinearMode m)
{
    modeRef() = m;
}

const char *
nonlinearSimdKernelName()
{
#if RSN_NL_AVX512
    return "avx512";
#elif RSN_NL_AVX2
    return "avx2-fma";
#elif RSN_NL_NEON
    return "neon";
#else
    return "portable";
#endif
}

const char *
nonlinearModeName()
{
    return nonlinearMode() == NonlinearMode::Exact
               ? "exact"
               : nonlinearSimdKernelName();
}

void
softmaxRowsDispatch(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    if (nonlinearMode() == NonlinearMode::Exact)
        softmaxRows(tile, rows, cols);
    else
        softmaxRowsSimd(tile, rows, cols);
}

void
geluInplaceDispatch(float *tile, std::size_t n)
{
    if (nonlinearMode() == NonlinearMode::Exact)
        geluInplace(tile, n);
    else
        geluInplaceSimd(tile, n);
}

void
layernormRowsDispatch(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    if (nonlinearMode() == NonlinearMode::Exact)
        layernormRows(tile, rows, cols);
    else
        layernormRowsSimd(tile, rows, cols);
}

// scaleShiftRowsDispatch / addInplaceDispatch live in nonlinear.cc:
// they are mode-independent, and defining them in this TU would let
// LTO re-inline the affine loops under this file's wider ISA flags
// (FMA contraction), silently breaking their bit-identity across
// modes.

} // namespace rsn::fu
