/**
 * @file
 * Mesh FUs: the circuit-switched routers of the stream network.
 *
 * MeshA fans LHS data from MemA/MemC FUs into the MMEs; MeshB does the
 * same for RHS data from MemB/MemC FUs. A mesh uOP configures either a
 * broadcast (one source replicated to every destination — single-MM
 * mapping) or a set of pairwise routes that forward concurrently
 * (pipelined mapping). Meshes hold no data and perform no arithmetic
 * (Fig. 16: 0 TFLOPS, 0 MB); their cost is pure link occupancy.
 */

#ifndef RSN_FU_MESH_HH
#define RSN_FU_MESH_HH

#include "fu/fu.hh"

namespace rsn::fu {

class MeshFu : public Fu
{
  public:
    MeshFu(sim::Engine &eng, FuId id);

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;

  private:
    sim::Task broadcastKernel(const isa::MeshUop &u);
    sim::Task distributeKernel(const isa::MeshUop &u);
    sim::Task routeKernel(std::vector<isa::MeshRoute> cycle,
                          std::uint32_t repeats);
};

} // namespace rsn::fu

#endif // RSN_FU_MESH_HH
