/**
 * @file
 * Off-chip mover FUs.
 *
 * DdrFu routes feature maps between the DDR channel and on-chip FUs in
 * *program order* — the uOP sequence is the load/store interleaving
 * (paper Sec. 4.4, Fig. 12). LpddrFu loads read-only weights, bias, and
 * LayerNorm parameters from the LPDDR channel.
 */

#ifndef RSN_FU_DDR_FUS_HH
#define RSN_FU_DDR_FUS_HH

#include "fu/fu.hh"
#include "mem/dram.hh"
#include "mem/hostmem.hh"
#include "mem/layout.hh"

namespace rsn::fu {

/** Compute the burst count of a block access under a layout. */
std::uint32_t blockBursts(std::uint32_t rows, std::uint32_t cols,
                          std::uint32_t pitch, mem::LayoutKind kind);

class DdrFu : public Fu
{
  public:
    DdrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
          mem::HostMemory &host, mem::LayoutKind layout);

    mem::DramChannel &channel() { return chan_; }

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;

  private:
    mem::DramChannel &chan_;
    mem::HostMemory &host_;
    mem::LayoutKind layout_;
};

class LpddrFu : public Fu
{
  public:
    LpddrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
            mem::HostMemory &host, mem::LayoutKind layout);

    mem::DramChannel &channel() { return chan_; }

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;

  private:
    mem::DramChannel &chan_;
    mem::HostMemory &host_;
    mem::LayoutKind layout_;
};

} // namespace rsn::fu

#endif // RSN_FU_DDR_FUS_HH
