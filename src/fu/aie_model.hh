/**
 * @file
 * Analytical-empirical timing model of one MME (a virtualized AIE group).
 *
 * An MME is a 4x4x4 group of 64 AIE tiles (paper Fig. 17): 4-way splits of
 * the M and N dimensions and a 4-deep cascade along K, sharing LHS/RHS
 * streams 4x and chaining outputs so the group fits the PL<->AIE stream
 * budget. Each AIE tile runs a native (nm x nk x nn) FP32 kernel at
 * 8 MACs/cycle (1.25 GHz).
 *
 * Per macro-iteration cost = nm*nk*nn/8 compute cycles + a fixed kernel
 * overhead + an output-drain term proportional to the per-tile output
 * bytes. The two overhead constants are calibrated so the model reproduces
 * the paper's measured single-GEMM throughputs (Table 6a) to <1%:
 * 6.78 TFLOPS for 32x32x32, 6.31 for 32x32x16, 6.10 for 32x16x32.
 */

#ifndef RSN_FU_AIE_MODEL_HH
#define RSN_FU_AIE_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace rsn::fu {

struct AieModelParams {
    int grid = 4;              ///< Tiles per dimension (grid^3 per MME).
    int native_m = 32;         ///< Per-tile kernel M.
    int native_k = 32;         ///< Per-tile kernel K.
    int native_n = 32;         ///< Per-tile kernel N.
    double macs_per_cycle = 8; ///< FP32 MACs per tile per AIE cycle.
    double overhead_base = 350;     ///< Fixed cycles per macro-iteration.
    double drain_bytes_per_cycle = 21.33;  ///< Output drain rate.
    double aie_hz = 1.25e9;
    double pl_hz = 260e6;

    bool operator==(const AieModelParams &) const = default;
};

class AieModel
{
  public:
    explicit AieModel(AieModelParams p = {}) : p_(p) {}

    const AieModelParams &params() const { return p_; }

    /** AIE tiles used by one MME. */
    int tilesPerMme() const { return p_.grid * p_.grid * p_.grid; }

    /** Peak FP32 throughput of one MME in FLOPS. */
    double peakFlopsPerMme() const
    {
        return tilesPerMme() * p_.macs_per_cycle * 2.0 * p_.aie_hz;
    }

    /**
     * AIE cycles for one MME to process an (m x k x n) chunk pair,
     * including partial-wave rounding along M/N and shortened accumulation
     * along K.
     */
    double chunkCycles(std::uint32_t m, std::uint32_t k,
                       std::uint32_t n) const;

    /** PL ticks for the same chunk (cycles scaled by clock ratio). */
    Tick chunkTicks(std::uint32_t m, std::uint32_t k,
                    std::uint32_t n) const;

    /**
     * Steady-state throughput in GFLOPS for a group of @p mmes engines
     * processing a large (m x k x n) matrix multiply with no memory
     * bottleneck (Table 6a conditions).
     */
    double steadyGflops(std::uint32_t m, std::uint32_t k, std::uint32_t n,
                        int mmes) const;

  private:
    AieModelParams p_;
};

} // namespace rsn::fu

#endif // RSN_FU_AIE_MODEL_HH
