/**
 * @file
 * MME FU: matrix-multiply engine, a virtualized group of 64 AIE tiles.
 *
 * Receives LHS chunks from MeshA, RHS chunks from MeshB, and sends results
 * to its fixed MemC partner (paper Fig. 10: "each MME consistently
 * communicates with the same MemC"). Timing comes from the AieModel;
 * functional runs compute the actual FP32 tile product.
 */

#ifndef RSN_FU_MME_HH
#define RSN_FU_MME_HH

#include "fu/aie_model.hh"
#include "fu/fu.hh"
#include "fu/gemm_kernel.hh"

namespace rsn::fu {

class MmeFu : public Fu
{
  public:
    MmeFu(sim::Engine &eng, FuId id, AieModel model, FuId lhs_src,
          FuId rhs_src, FuId out_dst);

    const AieModel &model() const { return model_; }

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;
    void resetKernelState() override;

  private:
    AieModel model_;
    FuId lhs_src_;
    FuId rhs_src_;
    FuId out_dst_;
    /** Packing panels for the blocked GEMM microkernel, reused across
     *  every chunk product this FU computes (allocated from TilePool). */
    GemmScratch scratch_;
};

} // namespace rsn::fu

#endif // RSN_FU_MME_HH
