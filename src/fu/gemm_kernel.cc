#include "fu/gemm_kernel.hh"

namespace rsn::fu {

void
gemmRefAccumulate(float *acc, const float *lhs, const float *rhs,
                  std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < m; ++i) {
        const float *lrow = lhs + std::size_t(i) * k;
        float *dst = acc + std::size_t(i) * n;
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            const float av = lrow[kk];
            if (av == 0.f)
                continue;
            const float *rrow = rhs + std::size_t(kk) * n;
            for (std::uint32_t j = 0; j < n; ++j)
                dst[j] += av * rrow[j];
        }
    }
}

} // namespace rsn::fu
