#include "fu/gemm_kernel.hh"

#include <algorithm>

#if defined(RSN_SIMD) && defined(__AVX512F__)
#include <immintrin.h>
#define RSN_GEMM_AVX512 1
#elif defined(RSN_SIMD) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define RSN_GEMM_AVX2 1
#elif defined(RSN_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define RSN_GEMM_NEON 1
#endif

namespace rsn::fu {

namespace {

// Register block sizes, tuned on the shapes the datapath actually
// produces (M = row-slices of 16..64, K/N = 16..512): AVX2 8x16 — 16
// accumulator ymm with a 2-deep K unroll measures ~60 GFLOPS on those
// shapes vs ~36 for the textbook 6x16, because mesh row-slices are
// multiples of 8, so MR=8 wastes no edge work. AVX-512 widens the same
// 8-row block to 32 columns (16 zmm accumulators, ~90 GFLOPS). NEON
// 8x8 is the same shape over 16 q-register accumulators. The portable
// kernel keeps the accumulator tile at 2x16 — small enough that -O3
// auto-vectorization holds it in registers even on bare SSE2 (4x16 and
// up spill and end up slower than the scalar loop).
#if RSN_GEMM_AVX512
constexpr std::uint32_t kMr = 8;
constexpr std::uint32_t kNr = 32;
#elif RSN_GEMM_AVX2
constexpr std::uint32_t kMr = 8;
constexpr std::uint32_t kNr = 16;
#elif RSN_GEMM_NEON
constexpr std::uint32_t kMr = 8;
constexpr std::uint32_t kNr = 8;
#else
constexpr std::uint32_t kMr = 2;
constexpr std::uint32_t kNr = 16;
#endif

/**
 * Pack lhs(m x k) into MR-interleaved panels: panel element
 * [ib][kk * kMr + ir] = lhs[(ib*kMr + ir) * k + kk], rows beyond m
 * zero-padded. The microkernel then reads kMr consecutive LHS values
 * per k step — one cache line instead of kMr strided streams — and
 * needs no row-edge branches. The panel is reused across all n/kNr
 * column blocks, so packing cost amortizes kNr-fold and more.
 */
void
packLhs(float *panel, const float *lhs, std::uint32_t m, std::uint32_t k)
{
    for (std::uint32_t i0 = 0; i0 < m; i0 += kMr) {
        const std::uint32_t mr = std::min(kMr, m - i0);
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            std::uint32_t ir = 0;
            for (; ir < mr; ++ir)
                panel[kk * kMr + ir] =
                    lhs[std::size_t(i0 + ir) * k + kk];
            for (; ir < kMr; ++ir)
                panel[kk * kMr + ir] = 0.f;
        }
        panel += std::size_t(kMr) * k;
    }
}

/**
 * Pack the rightmost n%kNr columns of rhs(k x n) into a zero-padded
 * k x kNr panel. Full-width column blocks are *not* packed: RHS rows
 * are already contiguous, and on the tile sizes the datapath moves
 * (L2-resident) measuring showed direct strided reads beat paying the
 * pack memcpy per call — the panel's reuse factor along M is too small
 * to amortize it. The tail panel keeps the inner kernel branch-free on
 * ragged widths instead of falling off a scalar cliff.
 */
void
packRhsTail(float *panel, const float *rhs, std::uint32_t k,
            std::uint32_t n, std::uint32_t j0)
{
    const std::uint32_t nr = n - j0;
    for (std::uint32_t kk = 0; kk < k; ++kk) {
        const float *src = rhs + std::size_t(kk) * n + j0;
        float *dst = panel + std::size_t(kk) * kNr;
        std::uint32_t j = 0;
        for (; j < nr; ++j)
            dst[j] = src[j];
        for (; j < kNr; ++j)
            dst[j] = 0.f;
    }
}

#if RSN_GEMM_AVX512

/**
 * 8x32 AVX-512 microkernel: LHS from a packed panel, RHS read with
 * row stride @p rstride (the operand itself for full blocks, the
 * zero-padded tail panel with rstride == kNr otherwise). Adds the
 * partial product into acc for the valid mr x nr window.
 */
void
microKernel(const float *lp, const float *rp, std::uint32_t rstride,
            std::uint32_t k, float *acc, std::uint32_t ldc,
            std::uint32_t mr, std::uint32_t nr)
{
    __m512 c[kMr][2];
    for (std::uint32_t ir = 0; ir < kMr; ++ir) {
        c[ir][0] = _mm512_setzero_ps();
        c[ir][1] = _mm512_setzero_ps();
    }
    std::uint32_t kk = 0;
    for (; kk + 2 <= k; kk += 2) {
        const __m512 b0 = _mm512_loadu_ps(rp);
        const __m512 b1 = _mm512_loadu_ps(rp + 16);
        const __m512 d0 = _mm512_loadu_ps(rp + rstride);
        const __m512 d1 = _mm512_loadu_ps(rp + rstride + 16);
        rp += 2 * std::size_t(rstride);
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const __m512 a0 = _mm512_set1_ps(lp[ir]);
            c[ir][0] = _mm512_fmadd_ps(a0, b0, c[ir][0]);
            c[ir][1] = _mm512_fmadd_ps(a0, b1, c[ir][1]);
            const __m512 a1 = _mm512_set1_ps(lp[kMr + ir]);
            c[ir][0] = _mm512_fmadd_ps(a1, d0, c[ir][0]);
            c[ir][1] = _mm512_fmadd_ps(a1, d1, c[ir][1]);
        }
        lp += 2 * kMr;
    }
    for (; kk < k; ++kk) {
        const __m512 b0 = _mm512_loadu_ps(rp);
        const __m512 b1 = _mm512_loadu_ps(rp + 16);
        rp += rstride;
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const __m512 a = _mm512_set1_ps(lp[ir]);
            c[ir][0] = _mm512_fmadd_ps(a, b0, c[ir][0]);
            c[ir][1] = _mm512_fmadd_ps(a, b1, c[ir][1]);
        }
        lp += kMr;
    }
    if (nr == kNr) {
        for (std::uint32_t ir = 0; ir < mr; ++ir) {
            float *row = acc + std::size_t(ir) * ldc;
            _mm512_storeu_ps(
                row, _mm512_add_ps(_mm512_loadu_ps(row), c[ir][0]));
            _mm512_storeu_ps(
                row + 16,
                _mm512_add_ps(_mm512_loadu_ps(row + 16), c[ir][1]));
        }
    } else {
        alignas(64) float t[kMr][kNr];
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            _mm512_store_ps(t[ir], c[ir][0]);
            _mm512_store_ps(t[ir] + 16, c[ir][1]);
        }
        for (std::uint32_t ir = 0; ir < mr; ++ir)
            for (std::uint32_t j = 0; j < nr; ++j)
                acc[std::size_t(ir) * ldc + j] += t[ir][j];
    }
}

#elif RSN_GEMM_AVX2

/**
 * 8x16 AVX2+FMA microkernel: LHS from a packed panel, RHS read with
 * row stride @p rstride (the operand itself for full blocks, the
 * zero-padded tail panel with rstride == kNr otherwise). Adds the
 * partial product into acc for the valid mr x nr window.
 */
void
microKernel(const float *lp, const float *rp, std::uint32_t rstride,
            std::uint32_t k, float *acc, std::uint32_t ldc,
            std::uint32_t mr, std::uint32_t nr)
{
    __m256 c[kMr][2];
    for (std::uint32_t ir = 0; ir < kMr; ++ir) {
        c[ir][0] = _mm256_setzero_ps();
        c[ir][1] = _mm256_setzero_ps();
    }
    std::uint32_t kk = 0;
    for (; kk + 2 <= k; kk += 2) {
        const __m256 b0 = _mm256_loadu_ps(rp);
        const __m256 b1 = _mm256_loadu_ps(rp + 8);
        const __m256 d0 = _mm256_loadu_ps(rp + rstride);
        const __m256 d1 = _mm256_loadu_ps(rp + rstride + 8);
        rp += 2 * std::size_t(rstride);
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const __m256 a0 = _mm256_broadcast_ss(lp + ir);
            c[ir][0] = _mm256_fmadd_ps(a0, b0, c[ir][0]);
            c[ir][1] = _mm256_fmadd_ps(a0, b1, c[ir][1]);
            const __m256 a1 = _mm256_broadcast_ss(lp + kMr + ir);
            c[ir][0] = _mm256_fmadd_ps(a1, d0, c[ir][0]);
            c[ir][1] = _mm256_fmadd_ps(a1, d1, c[ir][1]);
        }
        lp += 2 * kMr;
    }
    for (; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(rp);
        const __m256 b1 = _mm256_loadu_ps(rp + 8);
        rp += rstride;
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const __m256 a = _mm256_broadcast_ss(lp + ir);
            c[ir][0] = _mm256_fmadd_ps(a, b0, c[ir][0]);
            c[ir][1] = _mm256_fmadd_ps(a, b1, c[ir][1]);
        }
        lp += kMr;
    }
    if (nr == kNr) {
        for (std::uint32_t ir = 0; ir < mr; ++ir) {
            float *row = acc + std::size_t(ir) * ldc;
            _mm256_storeu_ps(
                row, _mm256_add_ps(_mm256_loadu_ps(row), c[ir][0]));
            _mm256_storeu_ps(
                row + 8,
                _mm256_add_ps(_mm256_loadu_ps(row + 8), c[ir][1]));
        }
    } else {
        alignas(32) float t[kMr][kNr];
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            _mm256_store_ps(t[ir], c[ir][0]);
            _mm256_store_ps(t[ir] + 8, c[ir][1]);
        }
        for (std::uint32_t ir = 0; ir < mr; ++ir)
            for (std::uint32_t j = 0; j < nr; ++j)
                acc[std::size_t(ir) * ldc + j] += t[ir][j];
    }
}

#elif RSN_GEMM_NEON

/** 8x8 NEON microkernel; same contract as the AVX2 variant. */
void
microKernel(const float *lp, const float *rp, std::uint32_t rstride,
            std::uint32_t k, float *acc, std::uint32_t ldc,
            std::uint32_t mr, std::uint32_t nr)
{
    float32x4_t c[kMr][2];
    for (std::uint32_t ir = 0; ir < kMr; ++ir) {
        c[ir][0] = vdupq_n_f32(0.f);
        c[ir][1] = vdupq_n_f32(0.f);
    }
    for (std::uint32_t kk = 0; kk < k; ++kk) {
        const float32x4_t b0 = vld1q_f32(rp);
        const float32x4_t b1 = vld1q_f32(rp + 4);
        rp += rstride;
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const float32x4_t a = vdupq_n_f32(lp[ir]);
            c[ir][0] = vfmaq_f32(c[ir][0], a, b0);
            c[ir][1] = vfmaq_f32(c[ir][1], a, b1);
        }
        lp += kMr;
    }
    if (nr == kNr) {
        for (std::uint32_t ir = 0; ir < mr; ++ir) {
            float *row = acc + std::size_t(ir) * ldc;
            vst1q_f32(row, vaddq_f32(vld1q_f32(row), c[ir][0]));
            vst1q_f32(row + 4, vaddq_f32(vld1q_f32(row + 4), c[ir][1]));
        }
    } else {
        alignas(16) float t[kMr][kNr];
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            vst1q_f32(t[ir], c[ir][0]);
            vst1q_f32(t[ir] + 4, c[ir][1]);
        }
        for (std::uint32_t ir = 0; ir < mr; ++ir)
            for (std::uint32_t j = 0; j < nr; ++j)
                acc[std::size_t(ir) * ldc + j] += t[ir][j];
    }
}

#else

/**
 * Portable 2x16 microkernel: restrict-qualified accumulator-array form
 * the compiler auto-vectorizes. Same contract as the SIMD variants.
 */
void
microKernel(const float *__restrict lp, const float *__restrict rp,
            std::uint32_t rstride, std::uint32_t k, float *__restrict acc,
            std::uint32_t ldc, std::uint32_t mr, std::uint32_t nr)
{
    float c[kMr][kNr] = {};
    for (std::uint32_t kk = 0; kk < k; ++kk) {
        for (std::uint32_t ir = 0; ir < kMr; ++ir) {
            const float a = lp[ir];
            for (std::uint32_t j = 0; j < kNr; ++j)
                c[ir][j] += a * rp[j];
        }
        rp += rstride;
        lp += kMr;
    }
    if (nr == kNr) {
        for (std::uint32_t ir = 0; ir < mr; ++ir) {
            float *__restrict row = acc + std::size_t(ir) * ldc;
            for (std::uint32_t j = 0; j < kNr; ++j)
                row[j] += c[ir][j];
        }
    } else {
        for (std::uint32_t ir = 0; ir < mr; ++ir)
            for (std::uint32_t j = 0; j < nr; ++j)
                acc[std::size_t(ir) * ldc + j] += c[ir][j];
    }
}

#endif

} // namespace

const char *
gemmKernelName()
{
#if RSN_GEMM_AVX512
    return "avx512";
#elif RSN_GEMM_AVX2
    return "avx2-fma";
#elif RSN_GEMM_NEON
    return "neon";
#else
    return "portable";
#endif
}

void
gemmRefAccumulate(float *acc, const float *lhs, const float *rhs,
                  std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < m; ++i) {
        const float *lrow = lhs + std::size_t(i) * k;
        float *dst = acc + std::size_t(i) * n;
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            const float av = lrow[kk];
            if (av == 0.f)
                continue;
            const float *rrow = rhs + std::size_t(kk) * n;
            for (std::uint32_t j = 0; j < n; ++j)
                dst[j] += av * rrow[j];
        }
    }
}

void
gemmAccumulate(GemmScratch &scratch, float *acc, const float *lhs,
               const float *rhs, std::uint32_t m, std::uint32_t k,
               std::uint32_t n)
{
    if (m == 0 || k == 0 || n == 0)
        return;

    const std::uint32_t mb = (m + kMr - 1) / kMr;
    float *lpanel = scratch.lhsPanel(std::uint64_t(mb) * kMr * k);
    packLhs(lpanel, lhs, m, k);

    // Full-width column blocks read RHS directly (see packRhsTail).
    const std::uint32_t n_full = n - n % kNr;
    for (std::uint32_t j0 = 0; j0 < n_full; j0 += kNr) {
        for (std::uint32_t ib = 0; ib < mb; ++ib) {
            const std::uint32_t i0 = ib * kMr;
            microKernel(lpanel + std::size_t(ib) * kMr * k, rhs + j0, n,
                        k, acc + std::size_t(i0) * n + j0, n,
                        std::min(kMr, m - i0), kNr);
        }
    }
    if (n_full < n) {
        float *rpanel = scratch.rhsPanel(std::uint64_t(kNr) * k);
        packRhsTail(rpanel, rhs, k, n, n_full);
        for (std::uint32_t ib = 0; ib < mb; ++ib) {
            const std::uint32_t i0 = ib * kMr;
            microKernel(lpanel + std::size_t(ib) * kMr * k, rpanel, kNr,
                        k, acc + std::size_t(i0) * n + n_full, n,
                        std::min(kMr, m - i0), n - n_full);
        }
    }
}

} // namespace rsn::fu
