/**
 * @file
 * Vectorized nonlinear operator layer for the MemC fused-operator path
 * (ISSUE 5), sitting beside the exact scalar kernels in fu/nonlinear.hh.
 *
 * After the MME moved to the blocked SIMD microkernel (PR 4), MemC's
 * fused operators — `std::erf` GELU and `std::exp` softmax above all —
 * became the dominant cost of a functional run. This layer provides
 * approximate, register-vectorized replacements:
 *
 *  - a **polynomial `exp`** (Cephes-style: round-to-nearest power-of-two
 *    decomposition, degree-5 polynomial on the reduced argument,
 *    exponent reassembled by integer bit arithmetic). Relative error
 *    ~2e-7 over the clamped domain [-87.34, 88.02];
 *  - a **tanh-based GELU**: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715
 *    x^3))), evaluated as x * sigmoid(2t) with one polynomial exp and
 *    one divide. The *formula itself* deviates from the exact erf GELU
 *    by at most ~4.8e-4 (at |x| ~ 2.7) — this is the same approximation
 *    BERT-class models train with;
 *  - a **fused row-wise softmax**: max, exp, sum, and scale run as
 *    consecutive vector passes while the row is cache-resident, instead
 *    of one libm call per element;
 *  - a **shifted two-pass LayerNorm** (Welford-style): a rough vector
 *    mean first, then sums of (x - m0) and (x - m0)^2 — exact-by-
 *    Sterbenz deltas, so large-mean rows lose no precision — then one
 *    normalize pass.
 *
 * Like the GEMM microkernel, the explicit AVX-512 / AVX2+FMA / NEON
 * register kernels compile in behind the RSN_SIMD CMake option (scoped
 * to this translation unit); every other build gets a portable
 * auto-vectorizable form of the same algorithms. The exact scalar path
 * (fu/nonlinear.hh) is never removed: it is the property-tested
 * reference (tests/fu/test_nonlinear_simd.cc) and stays selectable at
 * runtime — the golden end-to-end tier keeps running it.
 *
 * ## Runtime selection
 *
 * MemC dispatches through the *Dispatch entry points below, which
 * consult a process-wide mode: NonlinearMode::Simd (the default) runs
 * the vectorized kernels, NonlinearMode::Exact the scalar ones. The
 * environment variable RSN_NONLINEAR=exact|simd picks the initial mode
 * (driver runs, benches); tests pin it with ScopedNonlinearMode.
 * Scale-shift and residual-add are element-wise affine ops that
 * auto-vectorize as-is; they are **bit-identical in both modes** so a
 * mode flip only ever moves softmax/GELU/LayerNorm results.
 *
 * ## Accuracy / tolerance policy (vs the exact scalar reference)
 *
 * | operator   | per-element tolerance `|a-b| <= atol + rtol*|b|`    |
 * |------------|-----------------------------------------------------|
 * | softmax    | atol 1e-5, rtol 1e-5 (poly-exp error, ~2e-7 rel)    |
 * | GELU       | atol 1e-3, rtol 1e-3 (tanh formula, <= ~4.8e-4 abs) |
 * | layernorm  | atol 1e-4, rtol 1e-4 (float lane accumulation)      |
 * | scale-shift / residual | bit-identical                           |
 *
 * Simulated timing is payload-independent, so the mode never moves a
 * tick: the golden tick counts are identical under every kernel
 * variant and both modes (tests/lib/test_golden_e2e.cc). End-to-end
 * functional outputs under Simd mode hold the golden tier's
 * allclose(4e-3, 4e-3) against ref_math. Full policy in
 * docs/datapath.md.
 */

#ifndef RSN_FU_NONLINEAR_SIMD_HH
#define RSN_FU_NONLINEAR_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace rsn::fu {

/** Which nonlinear kernels the MemC dispatch runs. */
enum class NonlinearMode {
    Exact,  ///< fu/nonlinear.hh scalar kernels (libm erf/exp, double LN)
    Simd,   ///< this layer's vectorized approximate kernels (default)
};

/** Current process-wide mode (initially from RSN_NONLINEAR, else Simd). */
NonlinearMode nonlinearMode();

/** Select the mode for subsequent *Dispatch calls. */
void setNonlinearMode(NonlinearMode m);

/** "exact", or the compiled-in SIMD variant name when mode is Simd. */
const char *nonlinearModeName();

/** Compiled-in vector variant: "avx512", "avx2-fma", "neon", or
 *  "portable" (same RSN_SIMD/ISA selection as the GEMM microkernel). */
const char *nonlinearSimdKernelName();

/** RAII mode pin for tests/benches: restores the previous mode. */
class ScopedNonlinearMode
{
  public:
    explicit ScopedNonlinearMode(NonlinearMode m) : prev_(nonlinearMode())
    {
        setNonlinearMode(m);
    }
    ~ScopedNonlinearMode() { setNonlinearMode(prev_); }
    ScopedNonlinearMode(const ScopedNonlinearMode &) = delete;
    ScopedNonlinearMode &operator=(const ScopedNonlinearMode &) = delete;

  private:
    NonlinearMode prev_;
};

/** @{ Vectorized kernels (approximate; tolerance table above). Shapes
 *  follow the scalar contracts in fu/nonlinear.hh, including the
 *  degenerate-shape guards: rows == 0 or cols == 0 is a no-op. */
void softmaxRowsSimd(float *tile, std::uint32_t rows, std::uint32_t cols);
void geluInplaceSimd(float *tile, std::size_t n);
void layernormRowsSimd(float *tile, std::uint32_t rows,
                       std::uint32_t cols);
/** @} */

/** @{ Runtime-dispatched entry points (the MemC fused-operator path).
 *  Same contracts — and the same raw-pointer preconditions — as the
 *  scalar kernels in fu/nonlinear.hh. */
void softmaxRowsDispatch(float *tile, std::uint32_t rows,
                         std::uint32_t cols);
void geluInplaceDispatch(float *tile, std::size_t n);
void layernormRowsDispatch(float *tile, std::uint32_t rows,
                           std::uint32_t cols);
/** @p gamma / @p beta must point at >= cols readable floats each (see
 *  scaleShiftRows in fu/nonlinear.hh). Bit-identical in both modes. */
void scaleShiftRowsDispatch(float *tile, std::uint32_t rows,
                            std::uint32_t cols, const float *gamma,
                            const float *beta);
/** @p other must point at >= n readable floats. Bit-identical in both
 *  modes. */
void addInplaceDispatch(float *tile, const float *other, std::size_t n);
/** @} */

} // namespace rsn::fu

#endif // RSN_FU_NONLINEAR_SIMD_HH
