/**
 * @file
 * Scratchpad FUs: MemA (LHS), MemB (RHS), MemC (output).
 *
 * All three are ping-pong buffered so a kernel can load one buffer while
 * sending the other (paper Fig. 7b / Fig. 11). MemB additionally supports
 * input transposition (attention K^T) and bias forwarding; MemC hosts the
 * fused non-MM operators (Softmax, GELU, LayerNorm, scale & shift,
 * residual add) and can re-inject results into the network as the next
 * layer's operand (dynamic pipeline chaining).
 *
 * Staging is zero-copy: a TileBuffer holds a sim::GatherTile of pooled
 * tile segments, loads adopt the incoming chunk's tile by reference
 * (multi-chunk assembly appends segments instead of copying payloads),
 * and row-slices leave as offset/length views aliasing the staged
 * segments (sim/tile_pool.hh). MemC, the only writer, fuses its
 * operators segment by segment under the usual copy-on-write rule
 * (TileRef::ensureUnique); a contiguous tile is materialized only when
 * a published slice straddles a segment boundary. Ownership rules are
 * documented in docs/datapath.md.
 */

#ifndef RSN_FU_MEM_FUS_HH
#define RSN_FU_MEM_FUS_HH

#include <vector>

#include "fu/fu.hh"

namespace rsn::fu {

/** One side of a ping-pong buffer pair. */
struct TileBuffer {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    sim::GatherTile tile;  ///< Empty in timing-only runs.
    /** Element type of the staged tile. Tracked on the buffer (not just
     *  the gather) so timing-only runs slice byte-true chunks. */
    Dtype dtype = Dtype::F32;

    bool hasData() const { return !tile.empty(); }
};

/** LHS scratchpad. Sends row-slices of the buffered tile toward MeshA. */
class MemAFu : public Fu
{
  public:
    MemAFu(sim::Engine &eng, FuId id, FuId mesh_dst);

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;
    void resetKernelState() override;

  private:
    sim::Task loadPart(const isa::MemAUop &u, TileBuffer &buf);
    sim::Task sendPart(const isa::MemAUop &u, TileBuffer &buf);

    FuId mesh_dst_;
    TileBuffer ping_, pong_;
    bool recv_to_ping_ = true;
};

/** RHS scratchpad. Broadcasts the buffered tile toward MeshB. */
class MemBFu : public Fu
{
  public:
    MemBFu(sim::Engine &eng, FuId id, FuId mesh_dst);

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;
    void resetKernelState() override;

  private:
    sim::Task loadPart(const isa::MemBUop &u, TileBuffer &buf);
    sim::Task sendPart(const isa::MemBUop &u, TileBuffer &buf);

    FuId mesh_dst_;
    TileBuffer ping_, pong_;
    bool recv_to_ping_ = true;
};

/** Output scratchpad with fused non-MM operators. */
class MemCFu : public Fu
{
  public:
    /**
     * @param mme_src the partner MME feeding this MemC
     * @param ddr the DDR FU this MemC stores through
     * @param flops_per_tick non-MM processing rate (Fig. 16: 0.072
     *        TFLOPS at 260 MHz = ~277 FLOP/tick)
     */
    MemCFu(sim::Engine &eng, FuId id, FuId mme_src, FuId ddr,
           double flops_per_tick);

  protected:
    sim::Task runKernel(const isa::Uop &uop) override;
    void resetKernelState() override;

  private:
    sim::Task recvPart(const isa::MemCUop &u, TileBuffer &buf);
    sim::Task sendPart(const isa::MemCUop &u, TileBuffer &buf);

    FuId mme_src_;
    FuId ddr_;
    double flops_per_tick_;
    TileBuffer ping_, pong_;
    bool recv_to_ping_ = true;
};

/** Split @p total rows into @p slices near-equal extents (first gets
 *  the remainder); returns (offset, extent) pairs. */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
sliceRows(std::uint32_t total, std::uint32_t slices);

} // namespace rsn::fu

#endif // RSN_FU_MEM_FUS_HH
