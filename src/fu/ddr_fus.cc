#include "fu/ddr_fus.hh"

#include "common/log.hh"

namespace rsn::fu {

std::uint32_t
blockBursts(std::uint32_t rows, std::uint32_t cols, std::uint32_t pitch,
            mem::LayoutKind kind)
{
    if (kind == mem::LayoutKind::Blocked) {
        mem::BlockedLayout bl;
        return ((rows + bl.block_rows - 1) / bl.block_rows) *
               ((cols + bl.block_cols - 1) / bl.block_cols);
    }
    // Row-major: contiguous when the block spans full rows.
    return (pitch == cols) ? 1 : rows;
}

// ----------------------------------------------------------------- DDR --

DdrFu::DdrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
             mem::HostMemory &host, mem::LayoutKind layout)
    : Fu(eng, id), chan_(chan), host_(host), layout_(layout)
{
}

sim::Task
DdrFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::DdrUop>(uop);
    rsn_assert(u.load != u.store,
               "DDR uOP must be exactly one of load/store");

    for (std::uint32_t i = 0; i < u.stride_count; ++i) {
        Addr addr = u.addr + std::uint64_t(i) * u.stride_offset;
        if (u.load) {
            mem::DramRequest req{mem::Dir::Read,
                                 Bytes(u.rows) * u.cols * sizeof(float),
                                 blockBursts(u.rows, u.cols, u.pitch,
                                             layout_)};
            co_await chan_.access(req);
            sim::Chunk c;
            if (host_.functional()) {
                // Load straight into a pooled tile: no vector, no
                // intermediate copy — readBlockInto takes the strided
                // memcpy fast path (one block copy when pitch == cols).
                auto t = sim::TilePool::instance().acquire(
                    std::uint64_t(u.rows) * u.cols);
                host_.readBlockInto(addr, u.pitch, u.rows, u.cols,
                                    t.mutableData());
                c = sim::makeTileChunk(u.rows, u.cols, std::move(t), i);
            } else {
                c = sim::makeChunk(u.rows, u.cols, i);
            }
            stampEgress(c);
            countOut(c);
            co_await out(u.dest).send(std::move(c));
        } else {
            sim::Chunk c = co_await in(u.src).recv();
            countIn(c);
            mem::DramRequest req{mem::Dir::Write, c.bytes(),
                                 blockBursts(c.rows, c.cols, u.pitch,
                                             layout_)};
            co_await chan_.access(req);
            if (c.hasData())
                host_.writeBlock(addr, u.pitch, c.rows, c.cols,
                                 c.data.data(), c.elems());
        }
    }
}

// --------------------------------------------------------------- LPDDR --

LpddrFu::LpddrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
                 mem::HostMemory &host, mem::LayoutKind layout)
    : Fu(eng, id), chan_(chan), host_(host), layout_(layout)
{
}

sim::Task
LpddrFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::LpddrUop>(uop);
    for (std::uint32_t i = 0; i < u.stride_count; ++i) {
        Addr addr = u.addr + std::uint64_t(i) * u.stride_offset;
        mem::DramRequest req{mem::Dir::Read,
                             Bytes(u.rows) * u.cols * sizeof(float),
                             blockBursts(u.rows, u.cols, u.pitch,
                                         layout_)};
        co_await chan_.access(req);
        sim::Chunk c;
        if (host_.functional()) {
            auto t = sim::TilePool::instance().acquire(
                std::uint64_t(u.rows) * u.cols);
            host_.readBlockInto(addr, u.pitch, u.rows, u.cols,
                                t.mutableData());
            c = sim::makeTileChunk(u.rows, u.cols, std::move(t), i);
        } else {
            c = sim::makeChunk(u.rows, u.cols, i);
        }
        stampEgress(c);
        countOut(c);
        co_await out(u.dest).send(std::move(c));
    }
}

} // namespace rsn::fu
