#include "fu/ddr_fus.hh"

#include "common/log.hh"
#include "fu/kernel_registry.hh"

namespace rsn::fu {

namespace {

/**
 * Functional load at the DRAM boundary: host memory is FP32 truth; a
 * typed load models tensors stored pre-quantized off-chip, so the
 * downconversion is free in time (it happens at DRAM-write time in
 * hardware) and only the typed bytes cross the channel. Reads the
 * block into a scratch FP32 tile, then converts into a fresh typed
 * tile. Both tiles come from the pool, so steady state allocates
 * nothing (pinned by tests/fu/test_mem_fus_alloc.cc).
 */
sim::TileRef
loadTypedBlock(mem::HostMemory &host, Addr addr, std::uint32_t pitch,
               std::uint32_t rows, std::uint32_t cols, Dtype dtype)
{
    const std::uint64_t elems = std::uint64_t(rows) * cols;
    auto &pool = sim::TilePool::instance();
    if (dtype == Dtype::F32) {
        auto t = pool.acquire(elems);
        host.readBlockInto(addr, pitch, rows, cols, t.mutableData());
        return t;
    }
    auto f32 = pool.acquire(elems);
    host.readBlockInto(addr, pitch, rows, cols, f32.mutableData());
    auto typed = pool.acquire(elems, dtype);
    kernel::active().convert_rows_from_f32(typed.mutableRaw(), dtype,
                                           f32.data(), elems);
    return typed;
}

} // namespace

std::uint32_t
blockBursts(std::uint32_t rows, std::uint32_t cols, std::uint32_t pitch,
            mem::LayoutKind kind)
{
    if (kind == mem::LayoutKind::Blocked) {
        mem::BlockedLayout bl;
        return ((rows + bl.block_rows - 1) / bl.block_rows) *
               ((cols + bl.block_cols - 1) / bl.block_cols);
    }
    // Row-major: contiguous when the block spans full rows.
    return (pitch == cols) ? 1 : rows;
}

// ----------------------------------------------------------------- DDR --

DdrFu::DdrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
             mem::HostMemory &host, mem::LayoutKind layout)
    : Fu(eng, id), chan_(chan), host_(host), layout_(layout)
{
}

sim::Task
DdrFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::DdrUop>(uop);
    rsn_assert(u.load != u.store,
               "DDR uOP must be exactly one of load/store");

    for (std::uint32_t i = 0; i < u.stride_count; ++i) {
        Addr addr = u.addr + std::uint64_t(i) * u.stride_offset;
        if (u.load) {
            mem::DramRequest req{mem::Dir::Read,
                                 Bytes(u.rows) * u.cols *
                                     dtypeBytes(u.dtype),
                                 blockBursts(u.rows, u.cols, u.pitch,
                                             layout_)};
            co_await chan_.access(req);
            sim::Chunk c;
            if (host_.functional()) {
                // F32 loads go straight into a pooled tile (strided
                // memcpy fast path); typed loads convert at the DRAM
                // boundary (see loadTypedBlock).
                c = sim::makeTileChunk(
                    u.rows, u.cols,
                    loadTypedBlock(host_, addr, u.pitch, u.rows, u.cols,
                                   u.dtype),
                    i);
            } else {
                c = sim::makeChunk(u.rows, u.cols, i, u.dtype);
            }
            stampEgress(c);
            countOut(c);
            co_await out(u.dest).send(std::move(c));
        } else {
            sim::Chunk c = co_await in(u.src).recv();
            countIn(c);
            mem::DramRequest req{mem::Dir::Write, c.bytes(),
                                 blockBursts(c.rows, c.cols, u.pitch,
                                             layout_)};
            co_await chan_.access(req);
            if (c.hasData()) {
                if (c.dtype == Dtype::F32) {
                    host_.writeBlock(addr, u.pitch, c.rows, c.cols,
                                     c.data.data(), c.elems());
                } else {
                    // Host truth stays FP32: upconvert through a
                    // scratch pool tile before the write-back. DRAM
                    // traffic above is the typed byte count.
                    auto f32 =
                        sim::TilePool::instance().acquire(c.elems());
                    kernel::active().convert_rows_to_f32(
                        f32.mutableData(), c.data.raw(), c.dtype,
                        c.elems());
                    host_.writeBlock(addr, u.pitch, c.rows, c.cols,
                                     f32.data(), c.elems());
                }
            }
        }
    }
}

// --------------------------------------------------------------- LPDDR --

LpddrFu::LpddrFu(sim::Engine &eng, FuId id, mem::DramChannel &chan,
                 mem::HostMemory &host, mem::LayoutKind layout)
    : Fu(eng, id), chan_(chan), host_(host), layout_(layout)
{
}

sim::Task
LpddrFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::LpddrUop>(uop);
    for (std::uint32_t i = 0; i < u.stride_count; ++i) {
        Addr addr = u.addr + std::uint64_t(i) * u.stride_offset;
        rsn_assert(!u.load_bias || u.dtype == Dtype::F32,
                   "bias / LN-parameter loads must stay FP32");
        mem::DramRequest req{mem::Dir::Read,
                             Bytes(u.rows) * u.cols * dtypeBytes(u.dtype),
                             blockBursts(u.rows, u.cols, u.pitch,
                                         layout_)};
        co_await chan_.access(req);
        sim::Chunk c;
        if (host_.functional()) {
            c = sim::makeTileChunk(
                u.rows, u.cols,
                loadTypedBlock(host_, addr, u.pitch, u.rows, u.cols,
                               u.dtype),
                i);
        } else {
            c = sim::makeChunk(u.rows, u.cols, i, u.dtype);
        }
        stampEgress(c);
        countOut(c);
        co_await out(u.dest).send(std::move(c));
    }
}

} // namespace rsn::fu
