#include "fu/mme.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace rsn::fu {

MmeFu::MmeFu(sim::Engine &eng, FuId id, AieModel model, FuId lhs_src,
             FuId rhs_src, FuId out_dst)
    : Fu(eng, id), model_(model), lhs_src_(lhs_src), rhs_src_(rhs_src),
      out_dst_(out_dst)
{
}

sim::Task
MmeFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MmeUop>(uop);
    sim::Stream &lhs_in = in(lhs_src_);
    sim::Stream &rhs_in = in(rhs_src_);
    sim::Stream &out_s = out(out_dst_);

    for (std::uint32_t rep = 0; rep < u.reps; ++rep) {
        // Bias (if any) arrives ahead of the RHS tiles on the RHS stream.
        sim::Chunk bias;
        if (u.add_bias) {
            bias = co_await rhs_in.recv();
            countIn(bias);
        }

        std::uint32_t out_rows = 0, out_cols = 0;
        // Output-stationary accumulator: a pooled tile, uniquely owned
        // until it is published inside the outgoing chunk.
        sim::TileRef acc;
        for (std::uint32_t ks = 0; ks < u.k_steps; ++ks) {
            sim::Chunk lhs = co_await lhs_in.recv();
            sim::Chunk rhs = co_await rhs_in.recv();
            countIn(lhs);
            countIn(rhs);
            rsn_assert(lhs.cols == rhs.rows,
                       "MME chunk K mismatch: %u vs %u", lhs.cols,
                       rhs.rows);
            out_rows = lhs.rows;
            out_cols = rhs.cols;

            co_await eng_.delay(
                model_.chunkTicks(lhs.rows, lhs.cols, rhs.cols));
            countFlops(2ull * lhs.rows * lhs.cols * rhs.cols);

            if (getenv("RSN_DEBUG_MME")) {
                std::printf("[%s] rep=%u ks=%u lhs=%ux%u(%s %.4f %.4f) "
                            "rhs=%ux%u(%s %.4f %.4f)\n",
                            name().c_str(), rep, ks, lhs.rows, lhs.cols,
                            lhs.hasData() ? "d" : "-",
                            lhs.hasData() ? lhs.at(0, 0) : 0.f,
                            lhs.hasData() ? lhs.at(1 % lhs.rows, 0) : 0.f,
                            rhs.rows, rhs.cols, rhs.hasData() ? "d" : "-",
                            rhs.hasData() ? rhs.at(0, 0) : 0.f,
                            rhs.hasData() ? rhs.at(1 % rhs.rows, 0) : 0.f);
            }
            if (lhs.hasData() && rhs.hasData()) {
                std::size_t out_elems = std::size_t(out_rows) * out_cols;
                if (!acc) {
                    acc = sim::TilePool::instance().acquire(out_elems);
                    std::fill_n(acc.mutableData(), out_elems, 0.f);
                }
                // Accumulating tile product (output-stationary) through
                // the blocked microkernel (fu/gemm_kernel.hh). The
                // operands are often refcount-aliased views of a Mem FU's
                // staging tile; the kernel packs them into this FU's
                // scratch panels, so views need no special handling.
                gemmAccumulate(scratch_, acc.mutableData(),
                               lhs.data.data(), rhs.data.data(), lhs.rows,
                               lhs.cols, rhs.cols);
            }

            if (!u.accum_k) {
                // Emit a partial product per k-step instead of reducing.
                sim::Chunk partial;
                if (acc) {
                    partial = sim::makeTileChunk(out_rows, out_cols,
                                                 std::move(acc), ks);
                } else {
                    partial = sim::makeChunk(out_rows, out_cols, ks);
                }
                countOut(partial);
                co_await out_s.send(std::move(partial));
            }
        }

        if (u.accum_k) {
            sim::Chunk result;
            if (acc) {
                if (bias.hasData()) {
                    rsn_assert(bias.cols == out_cols, "bias width");
                    float *accp = acc.mutableData();
                    const float *bp = bias.data.data();
                    for (std::uint32_t i = 0; i < out_rows; ++i)
                        for (std::uint32_t j = 0; j < out_cols; ++j)
                            accp[std::size_t(i) * out_cols + j] += bp[j];
                    countFlops(std::uint64_t(out_rows) * out_cols);
                }
                result = sim::makeTileChunk(out_rows, out_cols,
                                            std::move(acc), rep);
            } else {
                result = sim::makeChunk(out_rows, out_cols, rep);
            }
            countOut(result);
            co_await out_s.send(std::move(result));
        }
    }
}

void
MmeFu::resetKernelState()
{
    scratch_.release();
}

} // namespace rsn::fu
