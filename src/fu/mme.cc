#include "fu/mme.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace rsn::fu {

namespace {

/**
 * Publish the FP32 accumulator at the uOP's output dtype: a refcount
 * move for F32, otherwise a downconversion into a fresh pooled tile
 * (free in simulated time — it happens on the drain path that
 * chunkTicks already covers). The accumulator itself always stays FP32
 * across the whole k loop.
 */
sim::TileRef
emitAccumulator(sim::TileRef acc, std::uint64_t elems, Dtype out_dtype)
{
    if (out_dtype == Dtype::F32)
        return acc;
    sim::TileRef t = sim::TilePool::instance().acquire(elems, out_dtype);
    kernel::active().convert_rows_from_f32(t.mutableRaw(), out_dtype,
                                           acc.data(), elems);
    return t;
}

/**
 * Typed-operand tile product: acc(m x n) += lhs(m x k) @ rhs(k x n),
 * accumulating in FP32 whatever the operand dtypes. Both-bf16 hits the
 * fused bf16 microkernel (packs and converts in one pass); any other
 * typed combination upconverts whole operands into the scratch
 * conversion panels and runs the FP32 kernel.
 */
void
gemmAccumulateTyped(GemmScratch &scratch, float *acc,
                    const sim::Chunk &lhs, const sim::Chunk &rhs,
                    std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    if (lhs.dtype == Dtype::F32 && rhs.dtype == Dtype::F32) {
        gemmAccumulate(scratch, acc, lhs.data.data(), rhs.data.data(), m,
                       k, n);
        return;
    }
    if (lhs.dtype == Dtype::Bf16 && rhs.dtype == Dtype::Bf16) {
        kernel::active().gemm_accumulate_bf16(scratch, acc,
                                              lhs.data.data16(),
                                              rhs.data.data16(), m, k, n);
        return;
    }
    const float *lp;
    if (lhs.dtype == Dtype::F32) {
        lp = lhs.data.data();
    } else {
        float *panel = scratch.cvtLhsPanel(std::uint64_t(m) * k);
        kernel::active().convert_rows_to_f32(panel, lhs.data.raw(),
                                             lhs.dtype,
                                             std::uint64_t(m) * k);
        lp = panel;
    }
    const float *rp;
    if (rhs.dtype == Dtype::F32) {
        rp = rhs.data.data();
    } else {
        float *panel = scratch.cvtRhsPanel(std::uint64_t(k) * n);
        kernel::active().convert_rows_to_f32(panel, rhs.data.raw(),
                                             rhs.dtype,
                                             std::uint64_t(k) * n);
        rp = panel;
    }
    gemmAccumulate(scratch, acc, lp, rp, m, k, n);
}

} // namespace

MmeFu::MmeFu(sim::Engine &eng, FuId id, AieModel model, FuId lhs_src,
             FuId rhs_src, FuId out_dst)
    : Fu(eng, id), model_(model), lhs_src_(lhs_src), rhs_src_(rhs_src),
      out_dst_(out_dst)
{
}

sim::Task
MmeFu::runKernel(const isa::Uop &uop)
{
    const auto &u = std::get<isa::MmeUop>(uop);
    sim::Stream &lhs_in = in(lhs_src_);
    sim::Stream &rhs_in = in(rhs_src_);
    sim::Stream &out_s = out(out_dst_);

    for (std::uint32_t rep = 0; rep < u.reps; ++rep) {
        // Bias (if any) arrives ahead of the RHS tiles on the RHS stream.
        sim::Chunk bias;
        if (u.add_bias) {
            bias = co_await rhs_in.recv();
            countIn(bias);
        }

        std::uint32_t out_rows = 0, out_cols = 0;
        // Output-stationary accumulator: a pooled tile, uniquely owned
        // until it is published inside the outgoing chunk.
        sim::TileRef acc;
        for (std::uint32_t ks = 0; ks < u.k_steps; ++ks) {
            sim::Chunk lhs = co_await lhs_in.recv();
            sim::Chunk rhs = co_await rhs_in.recv();
            countIn(lhs);
            countIn(rhs);
            rsn_assert(lhs.cols == rhs.rows,
                       "MME chunk K mismatch: %u vs %u", lhs.cols,
                       rhs.rows);
            out_rows = lhs.rows;
            out_cols = rhs.cols;

            co_await eng_.delay(
                model_.chunkTicks(lhs.rows, lhs.cols, rhs.cols));
            countFlops(2ull * lhs.rows * lhs.cols * rhs.cols);

            if (getenv("RSN_DEBUG_MME")) {
                std::printf("[%s] rep=%u ks=%u lhs=%ux%u(%s %.4f %.4f) "
                            "rhs=%ux%u(%s %.4f %.4f)\n",
                            name().c_str(), rep, ks, lhs.rows, lhs.cols,
                            lhs.hasData() ? "d" : "-",
                            lhs.hasData() ? lhs.at(0, 0) : 0.f,
                            lhs.hasData() ? lhs.at(1 % lhs.rows, 0) : 0.f,
                            rhs.rows, rhs.cols, rhs.hasData() ? "d" : "-",
                            rhs.hasData() ? rhs.at(0, 0) : 0.f,
                            rhs.hasData() ? rhs.at(1 % rhs.rows, 0) : 0.f);
            }
            if (lhs.hasData() && rhs.hasData()) {
                std::size_t out_elems = std::size_t(out_rows) * out_cols;
                if (!acc) {
                    acc = sim::TilePool::instance().acquire(out_elems);
                    std::fill_n(acc.mutableData(), out_elems, 0.f);
                }
                // Accumulating tile product (output-stationary) through
                // the blocked microkernel (fu/gemm_kernel.hh). The
                // operands are often refcount-aliased views of a Mem FU's
                // staging tile; the kernel packs them into this FU's
                // scratch panels, so views need no special handling.
                // Typed operands accumulate in FP32 (gemmAccumulateTyped).
                gemmAccumulateTyped(scratch_, acc.mutableData(), lhs,
                                    rhs, lhs.rows, lhs.cols, rhs.cols);
            }

            if (!u.accum_k) {
                // Emit a partial product per k-step instead of reducing.
                sim::Chunk partial;
                if (acc) {
                    const std::uint64_t out_elems =
                        std::uint64_t(out_rows) * out_cols;
                    partial = sim::makeTileChunk(
                        out_rows, out_cols,
                        emitAccumulator(std::move(acc), out_elems,
                                        u.out_dtype),
                        ks);
                } else {
                    partial = sim::makeChunk(out_rows, out_cols, ks,
                                             u.out_dtype);
                }
                countOut(partial);
                co_await out_s.send(std::move(partial));
            }
        }

        if (u.accum_k) {
            sim::Chunk result;
            if (acc) {
                if (bias.hasData()) {
                    rsn_assert(bias.cols == out_cols, "bias width");
                    rsn_assert(bias.dtype == Dtype::F32,
                               "bias must be FP32 (precision policy)");
                    float *accp = acc.mutableData();
                    const float *bp = bias.data.data();
                    for (std::uint32_t i = 0; i < out_rows; ++i)
                        for (std::uint32_t j = 0; j < out_cols; ++j)
                            accp[std::size_t(i) * out_cols + j] += bp[j];
                    countFlops(std::uint64_t(out_rows) * out_cols);
                }
                const std::uint64_t out_elems =
                    std::uint64_t(out_rows) * out_cols;
                result = sim::makeTileChunk(
                    out_rows, out_cols,
                    emitAccumulator(std::move(acc), out_elems,
                                    u.out_dtype),
                    rep);
            } else {
                result = sim::makeChunk(out_rows, out_cols, rep,
                                        u.out_dtype);
            }
            countOut(result);
            co_await out_s.send(std::move(result));
        }
    }
}

void
MmeFu::resetKernelState()
{
    scratch_.release();
}

} // namespace rsn::fu
