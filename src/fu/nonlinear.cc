#include "fu/nonlinear.hh"

#include <cmath>

#include "common/log.hh"

namespace rsn::fu {

void
softmaxRows(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    // Degenerate shapes are no-ops — without the cols guard the max
    // seed below would read row[0] of a zero-width row.
    if (rows == 0 || cols == 0)
        return;
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        float mx = row[0];
        for (std::uint32_t c = 1; c < cols; ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.f;
        for (std::uint32_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        float inv = 1.0f / sum;
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] *= inv;
    }
}

void
softmaxRows(std::vector<float> &tile, std::uint32_t rows,
            std::uint32_t cols)
{
    rsn_assert(tile.size() == std::size_t(rows) * cols, "tile shape");
    softmaxRows(tile.data(), rows, cols);
}

void
geluInplace(float *tile, std::size_t n)
{
    constexpr float inv_sqrt2 = 0.70710678118654752f;
    for (std::size_t i = 0; i < n; ++i)
        tile[i] = 0.5f * tile[i] *
                  (1.0f + std::erf(tile[i] * inv_sqrt2));
}

void
geluInplace(std::vector<float> &tile)
{
    geluInplace(tile.data(), tile.size());
}

void
layernormRows(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    if (rows == 0 || cols == 0)
        return;
    constexpr float eps = 1e-5f;
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        // Two-pass mean/variance. The old single-pass E[x^2] - E[x]^2
        // form cancels catastrophically for rows with a large common
        // mean (both terms grow like mean^2 while their difference stays
        // O(spread^2)) and can even go negative; summing (x - mean)^2
        // about the computed mean is immune to that.
        double sum = 0;
        for (std::uint32_t c = 0; c < cols; ++c)
            sum += row[c];
        const double mean = sum / cols;
        double acc = 0;
        for (std::uint32_t c = 0; c < cols; ++c) {
            const double d = row[c] - mean;
            acc += d * d;
        }
        const double var = acc / cols;
        // Normalize in double: rounding the mean to float first would
        // shift large-mean rows by up to half a float ulp of the mean
        // (~5e-4 at 1e4), which is exactly the precision this bugfix
        // is about.
        const double inv_std = 1.0 / std::sqrt(var + double(eps));
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] = float((row[c] - mean) * inv_std);
    }
}

void
layernormRows(std::vector<float> &tile, std::uint32_t rows,
              std::uint32_t cols)
{
    rsn_assert(tile.size() == std::size_t(rows) * cols, "tile shape");
    layernormRows(tile.data(), rows, cols);
}

void
scaleShiftRows(float *tile, std::uint32_t rows, std::uint32_t cols,
               const float *gamma, const float *beta)
{
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] = row[c] * gamma[c] + beta[c];
    }
}

void
scaleShiftRows(std::vector<float> &tile, std::uint32_t rows,
               std::uint32_t cols, const std::vector<float> &gamma,
               const std::vector<float> &beta)
{
    rsn_assert(gamma.size() >= cols && beta.size() >= cols,
               "scale/shift params too small");
    scaleShiftRows(tile.data(), rows, cols, gamma.data(), beta.data());
}

void
addInplace(float *tile, const float *other, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        tile[i] += other[i];
}

void
addInplace(std::vector<float> &tile, const std::vector<float> &other)
{
    rsn_assert(tile.size() == other.size(), "residual shape mismatch");
    addInplace(tile.data(), other.data(), other.size());
}

void
addInplace(std::vector<float> &tile, const float *other, std::size_t n)
{
    rsn_assert(tile.size() == n, "residual shape mismatch");
    addInplace(tile.data(), other, n);
}

// Scale-shift and residual add are deliberately NOT in the kernel
// dispatch table: they are element-wise affine ops with no approximate
// variant, and keeping their only definition in this baseline-ISA TU
// guarantees bit-identical results under every selected table — a
// table flip only ever moves GEMM/softmax/GELU/LayerNorm values.

} // namespace rsn::fu
