#include "fu/nonlinear.hh"

#include <cmath>

#include "common/log.hh"

namespace rsn::fu {

void
softmaxRows(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        float mx = row[0];
        for (std::uint32_t c = 1; c < cols; ++c)
            mx = std::max(mx, row[c]);
        float sum = 0.f;
        for (std::uint32_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        float inv = 1.0f / sum;
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] *= inv;
    }
}

void
softmaxRows(std::vector<float> &tile, std::uint32_t rows,
            std::uint32_t cols)
{
    rsn_assert(tile.size() == std::size_t(rows) * cols, "tile shape");
    softmaxRows(tile.data(), rows, cols);
}

void
geluInplace(float *tile, std::size_t n)
{
    constexpr float inv_sqrt2 = 0.70710678118654752f;
    for (std::size_t i = 0; i < n; ++i)
        tile[i] = 0.5f * tile[i] *
                  (1.0f + std::erf(tile[i] * inv_sqrt2));
}

void
geluInplace(std::vector<float> &tile)
{
    geluInplace(tile.data(), tile.size());
}

void
layernormRows(float *tile, std::uint32_t rows, std::uint32_t cols)
{
    constexpr float eps = 1e-5f;
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        // Single-pass mean/variance (streaming-friendly form).
        double sum = 0, sumsq = 0;
        for (std::uint32_t c = 0; c < cols; ++c) {
            sum += row[c];
            sumsq += double(row[c]) * row[c];
        }
        double mean = sum / cols;
        double var = sumsq / cols - mean * mean;
        float inv_std = 1.0f / std::sqrt(float(var) + eps);
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] = (row[c] - float(mean)) * inv_std;
    }
}

void
layernormRows(std::vector<float> &tile, std::uint32_t rows,
              std::uint32_t cols)
{
    rsn_assert(tile.size() == std::size_t(rows) * cols, "tile shape");
    layernormRows(tile.data(), rows, cols);
}

void
scaleShiftRows(float *tile, std::uint32_t rows, std::uint32_t cols,
               const float *gamma, const float *beta)
{
    for (std::uint32_t r = 0; r < rows; ++r) {
        float *row = tile + std::size_t(r) * cols;
        for (std::uint32_t c = 0; c < cols; ++c)
            row[c] = row[c] * gamma[c] + beta[c];
    }
}

void
scaleShiftRows(std::vector<float> &tile, std::uint32_t rows,
               std::uint32_t cols, const std::vector<float> &gamma,
               const std::vector<float> &beta)
{
    rsn_assert(gamma.size() >= cols && beta.size() >= cols,
               "scale/shift params too small");
    scaleShiftRows(tile.data(), rows, cols, gamma.data(), beta.data());
}

void
addInplace(float *tile, const float *other, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        tile[i] += other[i];
}

void
addInplace(std::vector<float> &tile, const std::vector<float> &other)
{
    rsn_assert(tile.size() == other.size(), "residual shape mismatch");
    addInplace(tile.data(), other.data(), other.size());
}

void
addInplace(std::vector<float> &tile, const float *other, std::size_t n)
{
    rsn_assert(tile.size() == n, "residual shape mismatch");
    addInplace(tile.data(), other, n);
}

} // namespace rsn::fu
