/**
 * @file
 * Non-MM operators executed inside MemC FUs (paper Table 2): Softmax,
 * GELU, LayerNorm (mean/variance/normalization), scale & shift, and
 * residual add. These are the streaming implementations used by the
 * datapath; tests validate them against the independent naive versions in
 * src/ref.
 *
 * The raw-pointer forms are the datapath entry points — MemC applies them
 * in place to a pooled staging tile (sim/tile_pool.hh) with no vector
 * scratch. The std::vector overloads are convenience wrappers for tests
 * and reference checks.
 *
 * These are the **exact** kernels (libm erf/exp, double-precision
 * LayerNorm accumulation): the semantic reference for the vectorized
 * approximate variants in the per-ISA kernel tables
 * (fu/kernel_registry.hh), and the nonlinear entries of the `scalar`
 * table MemC runs when the exact path is selected. Degenerate shapes
 * (rows == 0 or cols == 0) are no-ops for every row-wise operator.
 */

#ifndef RSN_FU_NONLINEAR_HH
#define RSN_FU_NONLINEAR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsn::fu {

/** Numerically-stable row-wise softmax over a rows x cols tile. */
void softmaxRows(float *tile, std::uint32_t rows, std::uint32_t cols);
void softmaxRows(std::vector<float> &tile, std::uint32_t rows,
                 std::uint32_t cols);

/** Exact (erf-based) GELU applied element-wise to @p n values. */
void geluInplace(float *tile, std::size_t n);
void geluInplace(std::vector<float> &tile);

/**
 * Row-wise LayerNorm: normalize each row to zero mean / unit variance
 * (eps = 1e-5). Scale & shift is applied separately so the ISA flags
 * compose the way Table 2 lists them.
 */
void layernormRows(float *tile, std::uint32_t rows, std::uint32_t cols);
void layernormRows(std::vector<float> &tile, std::uint32_t rows,
                   std::uint32_t cols);

/**
 * Apply gamma/beta per column: tile[r][c] = tile[r][c]*gamma[c]+beta[c].
 *
 * **Precondition (raw-pointer form):** @p gamma and @p beta must each
 * point at >= @p cols readable floats; the first @p cols of each are
 * used. The function itself cannot check this — unlike the vector
 * overload there is no size to assert against — so every caller owns
 * the contract. The zero-copy MemC path reads both in place from the
 * 2 x cols LPDDR parameter chunk (gamma = row 0, beta = row 1) and
 * asserts the chunk's shape and payload length at the call site
 * (fu/mem_fus.cc) before forming the pointers.
 */
void scaleShiftRows(float *tile, std::uint32_t rows, std::uint32_t cols,
                    const float *gamma, const float *beta);
void scaleShiftRows(std::vector<float> &tile, std::uint32_t rows,
                    std::uint32_t cols, const std::vector<float> &gamma,
                    const std::vector<float> &beta);

/** tile[i] += other[i] for i in [0, n) (element-wise residual add). */
void addInplace(float *tile, const float *other, std::size_t n);
void addInplace(std::vector<float> &tile, const std::vector<float> &other);
void addInplace(std::vector<float> &tile, const float *other,
                std::size_t n);

/** @{ FLOP-per-element costs used for MemC timing and the power model. */
inline constexpr double kSoftmaxFlopsPerElem = 5.0;
inline constexpr double kGeluFlopsPerElem = 8.0;
inline constexpr double kLayernormFlopsPerElem = 8.0;
inline constexpr double kScaleShiftFlopsPerElem = 2.0;
inline constexpr double kResidualFlopsPerElem = 1.0;
/** @} */

} // namespace rsn::fu

#endif // RSN_FU_NONLINEAR_HH
