#include "fu/kernel_registry.hh"

#include <cstdlib>

#include "common/log.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define RSN_PROBE_X86 1
#endif

namespace rsn::kernel {

// Per-variant tables, each defined in its own -march-scoped TU
// (src/fu/kernels/). Which ones exist in this binary is decided by
// CMakeLists.txt, which defines the matching RSN_KERNEL_HAVE_* macros
// for this file only.
namespace scalar {
extern const KernelTable table;
}
namespace portable {
extern const KernelTable table;
}
#ifdef RSN_KERNEL_HAVE_NEON
namespace neon {
extern const KernelTable table;
}
#endif
#ifdef RSN_KERNEL_HAVE_AVX2
namespace avx2 {
extern const KernelTable table;
}
#endif
#ifdef RSN_KERNEL_HAVE_AVX512
namespace avx512 {
extern const KernelTable table;
}
#endif

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar: return "scalar";
      case Isa::Portable: return "portable";
      case Isa::Neon: return "neon";
      case Isa::Avx2: return "avx2";
      case Isa::Avx512: return "avx512";
    }
    return "unknown";
}

std::optional<Isa>
isaFromName(std::string_view name)
{
    if (name == "scalar")
        return Isa::Scalar;
    if (name == "portable")
        return Isa::Portable;
    if (name == "neon")
        return Isa::Neon;
    if (name == "avx2")
        return Isa::Avx2;
    if (name == "avx512")
        return Isa::Avx512;
    return std::nullopt;
}

bool
CpuProbe::supports(Isa isa) const
{
    switch (isa) {
      case Isa::Scalar:
      case Isa::Portable:
        return true;
      case Isa::Neon:
        return neon;
      case Isa::Avx2:
        return cpu_avx2 && cpu_fma && os_ymm;
      case Isa::Avx512:
        return cpu_avx512f && os_ymm && os_zmm;
    }
    return false;
}

std::string
CpuProbe::toString() const
{
#ifdef __ARM_NEON
    return std::string("neon=") + (neon ? "1" : "0");
#else
    std::string s;
    const auto bit = [&s](const char *name, bool v) {
        if (!s.empty())
            s += ' ';
        s += name;
        s += v ? "=1" : "=0";
    };
    bit("avx", cpu_avx);
    bit("fma", cpu_fma);
    bit("avx2", cpu_avx2);
    bit("avx512f", cpu_avx512f);
    bit("os_ymm", os_ymm);
    bit("os_zmm", os_zmm);
    return s;
#endif
}

namespace {

#ifdef RSN_PROBE_X86
/** xgetbv(0) without requiring -mxsave on this TU: the raw opcode is
 *  fine because we only execute it after cpuid reports OSXSAVE. */
[[gnu::cold]] std::uint64_t
xgetbv0()
{
    std::uint32_t eax, edx;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                     : "=a"(eax), "=d"(edx)
                     : "c"(0));
    return (std::uint64_t(edx) << 32) | eax;
}
#endif

} // namespace

CpuProbe
probeCpu()
{
    CpuProbe p;
#ifdef RSN_PROBE_X86
    unsigned eax, ebx, ecx, edx;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        constexpr unsigned kFma = 1u << 12;
        constexpr unsigned kOsxsave = 1u << 27;
        constexpr unsigned kAvx = 1u << 28;
        p.cpu_fma = ecx & kFma;
        p.cpu_avx = ecx & kAvx;
        if (ecx & kOsxsave) {
            const std::uint64_t xcr0 = xgetbv0();
            // ymm needs x87+sse+avx state (bits 0..2); zmm additionally
            // opmask+zmm_hi256+hi16_zmm (bits 5..7).
            p.os_ymm = (xcr0 & 0x6) == 0x6;
            p.os_zmm = p.os_ymm && (xcr0 & 0xe0) == 0xe0;
        }
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        constexpr unsigned kAvx2 = 1u << 5;
        constexpr unsigned kAvx512f = 1u << 16;
        p.cpu_avx2 = ebx & kAvx2;
        p.cpu_avx512f = ebx & kAvx512f;
    }
#endif
#ifdef __ARM_NEON
    p.neon = true;
#endif
    return p;
}

Isa
chooseBest(const CpuProbe &probe, const std::vector<Isa> &compiled_in)
{
    for (Isa isa : compiled_in) {
        if (isa == Isa::Scalar)
            continue;  // exact reference is opt-in only
        if (probe.supports(isa))
            return isa;
    }
    return Isa::Portable;
}

namespace {

bool
contains(const std::vector<Isa> &compiled_in, Isa isa)
{
    for (Isa have : compiled_in)
        if (have == isa)
            return true;
    return false;
}

} // namespace

StartupChoice
resolveStartupIsa(const char *rsn_isa, const char *rsn_nonlinear,
                  const CpuProbe &probe,
                  const std::vector<Isa> &compiled_in)
{
    const Isa best = chooseBest(probe, compiled_in);

    // The RSN_NONLINEAR alias was deprecated when the kernel registry
    // replaced NonlinearMode and has been removed after two majors.
    // Refusing to run beats silently ignoring it: a sweep that still
    // exports it would otherwise run the wrong table without a trace.
    if (rsn_nonlinear && *rsn_nonlinear) {
        rsn_fatal("RSN_NONLINEAR has been removed; set RSN_ISA "
                  "(RSN_ISA=scalar for the exact reference kernels, "
                  "avx512|avx2|neon|portable otherwise)");
    }

    if (rsn_isa && *rsn_isa) {
        const std::optional<Isa> want = isaFromName(rsn_isa);
        std::string why;
        if (!want) {
            why = "unknown RSN_ISA value '" + std::string(rsn_isa) +
                  "' (want avx512|avx2|neon|portable|scalar)";
        } else if (!contains(compiled_in, *want)) {
            why = "RSN_ISA=" + std::string(rsn_isa) +
                  " is not compiled into this binary";
        } else if (!probe.supports(*want)) {
            why = "RSN_ISA=" + std::string(rsn_isa) +
                  " is not executable on this CPU (" + probe.toString() +
                  ")";
        } else {
            return {*want, "env:RSN_ISA", {}};
        }
        return {best, "probe",
                why + "; falling back to " + isaName(best)};
    }

    return {best, "probe", {}};
}

Registry::Registry()
{
    // Best-first, scalar last, mirroring chooseBest's preference order.
#ifdef RSN_KERNEL_HAVE_AVX512
    tables_.push_back(&avx512::table);
#endif
#ifdef RSN_KERNEL_HAVE_AVX2
    tables_.push_back(&avx2::table);
#endif
#ifdef RSN_KERNEL_HAVE_NEON
    tables_.push_back(&neon::table);
#endif
    tables_.push_back(&portable::table);
    tables_.push_back(&scalar::table);

    probe_ = probeCpu();

    std::vector<Isa> compiled_in;
    for (const KernelTable *t : tables_)
        compiled_in.push_back(t->isa);

    const StartupChoice choice =
        resolveStartupIsa(std::getenv("RSN_ISA"),
                          std::getenv("RSN_NONLINEAR"), probe_,
                          compiled_in);
    // Once-guarded: the warning text covers RSN_ISA fallbacks, and the
    // ctor itself runs once, but rsn_warn_once also keeps re-exec'd
    // registries in tests from nagging per sweep lane if this ever
    // becomes re-entrant.
    if (!choice.warning.empty())
        rsn_warn_once("%s", choice.warning.c_str());

    for (const KernelTable *t : tables_)
        if (t->isa == choice.isa)
            active_ = t;
    rsn_assert(active_ != nullptr, "startup ISA %s not in table list",
               isaName(choice.isa));
    source_ = choice.source;
    detail::g_active.store(active_, std::memory_order_relaxed);
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

const KernelTable *
Registry::find(std::string_view name) const
{
    for (const KernelTable *t : tables_)
        if (name == t->name)
            return t;
    return nullptr;
}

Status
Registry::select(std::string_view name, const char *source)
{
    const KernelTable *t = find(name);
    if (!t) {
        std::string known;
        for (const KernelTable *have : tables_) {
            if (!known.empty())
                known += "|";
            known += have->name;
        }
        return Status::error(StatusCode::InvalidConfig,
                             "unknown or not-compiled-in ISA '" +
                                 std::string(name) + "' (have: " + known +
                                 ")");
    }
    if (!probe_.supports(t->isa)) {
        return Status::error(StatusCode::InvalidConfig,
                             "ISA '" + std::string(name) +
                                 "' is not executable on this CPU (" +
                                 probe_.toString() + ")");
    }
    select(*t);
    source_ = source;
    return Status::success();
}

void
Registry::select(const KernelTable &table)
{
    active_ = &table;
    source_ = "override";
    detail::g_active.store(active_, std::memory_order_relaxed);
}

bool
Registry::selectable(Isa isa) const
{
    if (!probe_.supports(isa))
        return false;
    for (const KernelTable *t : tables_)
        if (t->isa == isa)
            return true;
    return false;
}

namespace detail {

std::atomic<const KernelTable *> g_active{nullptr};

const KernelTable &
activeSlow()
{
    // Safe under concurrent first use: the Meyers singleton serializes
    // the ctor, and every later caller sees the published pointer.
    Registry::instance();  // ctor publishes g_active
    return *g_active.load(std::memory_order_relaxed);
}

} // namespace detail

ScopedIsaOverride::ScopedIsaOverride(Isa isa)
{
    Registry &r = Registry::instance();
    prev_ = &r.active();
    prev_source_ = r.selectionSource();
    const KernelTable *t = nullptr;
    for (const KernelTable *have : r.tables())
        if (have->isa == isa)
            t = have;
    rsn_assert(t != nullptr && r.probe().supports(isa),
               "ScopedIsaOverride: %s is not selectable here",
               isaName(isa));
    r.select(*t);
}

ScopedIsaOverride::ScopedIsaOverride(const KernelTable &table)
{
    Registry &r = Registry::instance();
    prev_ = &r.active();
    prev_source_ = r.selectionSource();
    r.select(table);
}

ScopedIsaOverride::~ScopedIsaOverride()
{
    Registry &r = Registry::instance();
    r.select(*prev_);
    r.source_ = prev_source_;
}

} // namespace rsn::kernel
