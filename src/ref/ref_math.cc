#include "ref/ref_math.hh"

#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace rsn::ref {

Matrix
randomMatrix(std::uint32_t rows, std::uint32_t cols, std::uint32_t seed,
             float scale)
{
    Matrix m(rows, cols);
    // xorshift32; seed 0 would be a fixed point, nudge it.
    std::uint32_t s = seed ? seed : 0x9e3779b9u;
    for (auto &v : m.data) {
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        // Map to [-scale, scale).
        v = (float(s) / 4294967296.0f * 2.0f - 1.0f) * scale;
    }
    return m;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    rsn_assert(a.cols == b.rows, "matmul shape mismatch");
    Matrix c(a.rows, b.cols);
    for (std::uint32_t i = 0; i < a.rows; ++i) {
        for (std::uint32_t k = 0; k < a.cols; ++k) {
            float av = a.at(i, k);
            if (av == 0.f)
                continue;
            for (std::uint32_t j = 0; j < b.cols; ++j)
                c.at(i, j) += av * b.at(k, j);
        }
    }
    return c;
}

Matrix
matmulBt(const Matrix &a, const Matrix &b)
{
    rsn_assert(a.cols == b.cols, "matmulBt shape mismatch");
    Matrix c(a.rows, b.rows);
    for (std::uint32_t i = 0; i < a.rows; ++i)
        for (std::uint32_t j = 0; j < b.rows; ++j) {
            float acc = 0.f;
            for (std::uint32_t k = 0; k < a.cols; ++k)
                acc += a.at(i, k) * b.at(j, k);
            c.at(i, j) = acc;
        }
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols, a.rows);
    for (std::uint32_t i = 0; i < a.rows; ++i)
        for (std::uint32_t j = 0; j < a.cols; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Matrix
addBias(const Matrix &a, const std::vector<float> &bias)
{
    rsn_assert(bias.size() >= a.cols, "bias too small");
    Matrix c = a;
    for (std::uint32_t i = 0; i < a.rows; ++i)
        for (std::uint32_t j = 0; j < a.cols; ++j)
            c.at(i, j) += bias[j];
    return c;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    rsn_assert(a.rows == b.rows && a.cols == b.cols, "add shape mismatch");
    Matrix c = a;
    for (std::size_t i = 0; i < c.data.size(); ++i)
        c.data[i] += b.data[i];
    return c;
}

Matrix
softmax(const Matrix &a)
{
    Matrix c = a;
    for (std::uint32_t i = 0; i < a.rows; ++i) {
        float mx = -INFINITY;
        for (std::uint32_t j = 0; j < a.cols; ++j)
            mx = std::max(mx, c.at(i, j));
        double sum = 0;
        for (std::uint32_t j = 0; j < a.cols; ++j)
            sum += std::exp(double(c.at(i, j)) - mx);
        for (std::uint32_t j = 0; j < a.cols; ++j)
            c.at(i, j) = float(std::exp(double(c.at(i, j)) - mx) / sum);
    }
    return c;
}

Matrix
gelu(const Matrix &a)
{
    Matrix c = a;
    for (auto &x : c.data) {
        double v = x;
        x = float(0.5 * v * (1.0 + std::erf(v / std::sqrt(2.0))));
    }
    return c;
}

Matrix
layernorm(const Matrix &a, const std::vector<float> &gamma,
          const std::vector<float> &beta)
{
    rsn_assert(gamma.size() >= a.cols && beta.size() >= a.cols,
               "layernorm params too small");
    Matrix c(a.rows, a.cols);
    for (std::uint32_t i = 0; i < a.rows; ++i) {
        double mean = 0;
        for (std::uint32_t j = 0; j < a.cols; ++j)
            mean += a.at(i, j);
        mean /= a.cols;
        double var = 0;
        for (std::uint32_t j = 0; j < a.cols; ++j) {
            double d = a.at(i, j) - mean;
            var += d * d;
        }
        var /= a.cols;
        double inv = 1.0 / std::sqrt(var + 1e-5);
        for (std::uint32_t j = 0; j < a.cols; ++j)
            c.at(i, j) = float((a.at(i, j) - mean) * inv * gamma[j] +
                               beta[j]);
    }
    return c;
}

bool
allclose(const Matrix &a, const Matrix &b, float rtol, float atol,
         std::string *why)
{
    if (a.rows != b.rows || a.cols != b.cols) {
        if (why)
            *why = "shape mismatch";
        return false;
    }
    for (std::size_t i = 0; i < a.data.size(); ++i) {
        float x = a.data[i], y = b.data[i];
        float tol = atol + rtol * std::abs(y);
        if (std::abs(x - y) > tol || std::isnan(x) != std::isnan(y)) {
            if (why) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "elem %zu: %g vs %g (tol %g)", i, x, y, tol);
                *why = buf;
            }
            return false;
        }
    }
    return true;
}

float
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    rsn_assert(a.data.size() == b.data.size(), "shape mismatch");
    float mx = 0.f;
    for (std::size_t i = 0; i < a.data.size(); ++i)
        mx = std::max(mx, std::abs(a.data[i] - b.data[i]));
    return mx;
}

} // namespace rsn::ref
