/**
 * @file
 * Reference FP32 implementations used to validate the streamed datapath.
 *
 * These are deliberately independent of the FU implementations (different
 * loop structures, no shared helpers) so a bug in the datapath math cannot
 * hide behind a shared subroutine. They play the role of the paper's
 * python_gold reference outputs (Artifact Appendix A.6).
 */

#ifndef RSN_REF_REF_MATH_HH
#define RSN_REF_REF_MATH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rsn::ref {

/** Row-major matrix with shape bookkeeping. */
struct Matrix {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<float> data;

    Matrix() = default;
    Matrix(std::uint32_t r, std::uint32_t c)
        : rows(r), cols(c), data(std::size_t(r) * c, 0.f)
    {}
    /** Wrap a raw row-major payload (e.g. a pooled chunk tile). */
    Matrix(std::uint32_t r, std::uint32_t c, const float *src)
        : rows(r), cols(c), data(src, src + std::size_t(r) * c)
    {}

    float &at(std::uint32_t r, std::uint32_t c)
    {
        return data[std::size_t(r) * cols + c];
    }
    float at(std::uint32_t r, std::uint32_t c) const
    {
        return data[std::size_t(r) * cols + c];
    }
};

/** Deterministic pseudo-random matrix in [-scale, scale] (xorshift). */
Matrix randomMatrix(std::uint32_t rows, std::uint32_t cols,
                    std::uint32_t seed, float scale = 1.0f);

/** C = A * B. */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. */
Matrix matmulBt(const Matrix &a, const Matrix &b);

/** Transpose. */
Matrix transpose(const Matrix &a);

/** Add a row vector (bias) to every row. */
Matrix addBias(const Matrix &a, const std::vector<float> &bias);

/** Element-wise sum. */
Matrix add(const Matrix &a, const Matrix &b);

/** Row-wise softmax. */
Matrix softmax(const Matrix &a);

/** Element-wise exact GELU. */
Matrix gelu(const Matrix &a);

/** Row-wise LayerNorm with gamma/beta (eps = 1e-5). */
Matrix layernorm(const Matrix &a, const std::vector<float> &gamma,
                 const std::vector<float> &beta);

/**
 * Compare matrices with combined absolute/relative tolerance.
 * @return true when all elements agree; fills @p why on mismatch.
 */
bool allclose(const Matrix &a, const Matrix &b, float rtol, float atol,
              std::string *why = nullptr);

/** Max absolute element difference. */
float maxAbsDiff(const Matrix &a, const Matrix &b);

} // namespace rsn::ref

#endif // RSN_REF_REF_MATH_HH
