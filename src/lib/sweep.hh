/**
 * @file
 * Deterministic parallel sweep executor (ROADMAP item 1(a)).
 *
 * The single-machine hot path is mined out — payload math is ~0.8 ms of
 * a 0.92 ms BERT-Large run — so the next throughput lever is running N
 * independent RsnMachines at once: every fig/table sweep and the
 * rsn-sim batch mode is a list of *independent* (config, model) points,
 * which is embarrassingly parallel as long as nothing is shared. This
 * module is the "nothing is shared" part made explicit.
 *
 * ## Lane model — no work stealing, no shared mutable state
 *
 * A SweepExecutor owns a fixed set of worker threads. Each worker owns
 * one **SweepLane**: its own cached RsnMachine (reused via reset()
 * across equal-config points, rebuilt on a config change or after a
 * non-resettable run), and — by construction on its own thread — its
 * own thread-local TilePool (sim/tile_pool.hh), its own GemmScratch
 * (machine-owned, inside each MME FU), and its own FaultInjector
 * (machine-owned). Workers pull job indices from one shared atomic
 * counter; that counter is the *only* cross-thread state on the sweep
 * path. Results land in a caller-sized vector slot keyed by job index,
 * so output order is independent of scheduling.
 *
 * ## Determinism — bit-identical to --jobs 1
 *
 * A simulation's outcome is a pure function of (config, model, schedule
 * options, seed): the engine is event-driven with no wall-clock inputs,
 * the fault schedule is a pure hash of (seed, site, sequence), and
 * reset() rewinds a machine to the pristine state a fresh build would
 * have. Which lane runs which job therefore cannot change any result —
 * tick counts and functional outputs are bit-identical for every jobs
 * value, which tests/lib/test_sweep.cc pins.
 *
 * ## Threading contract (docs/datapath.md)
 *
 * - Tiles never cross lanes: each lane's pool is thread-local and
 *   debug builds assert ownership on acquire/retire.
 * - Job callbacks must not touch process-wide selection (kernel
 *   Registry::select, ScopedIsaOverride, setenv, setLogLevel): those
 *   are main-thread-only, with no sweep running. The executor touches
 *   Registry::instance() before spawning so lanes never race the
 *   startup probe.
 * - Logging (rsn_warn / rsn_inform) is safe from lanes (mutex-backed).
 */

#ifndef RSN_LIB_SWEEP_HH
#define RSN_LIB_SWEEP_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/machine.hh"
#include "lib/runner.hh"
#include "lib/schedule.hh"

namespace rsn::lib {

/**
 * One worker's private execution context: a cached machine plus reuse
 * stats. Constructed on the thread that will run its jobs (so the
 * machine's tile pool is that thread's pool) and never shared.
 */
class SweepLane
{
  public:
    explicit SweepLane(std::size_t index) : index_(index) {}

    SweepLane(const SweepLane &) = delete;
    SweepLane &operator=(const SweepLane &) = delete;

    /** Which lane this is: [0, jobs). Stable across the sweep. */
    std::size_t index() const { return index_; }

    /**
     * A pristine machine for @p cfg: the cached instance reset when the
     * config is unchanged and the previous run completed, a fresh build
     * otherwise. Identical semantics to a cold build — reset() rewinds
     * clock, stats, and host memory — so caching is invisible to
     * results.
     */
    core::RsnMachine &machine(const core::MachineConfig &cfg);

    /**
     * Drop the cached machine and trim this thread's TilePool free
     * lists back to the system. The circuit breaker calls this when it
     * quarantines a lane slot (serve/scheduler.cc): the next machine()
     * call is guaranteed a cold rebuild, and the dead machine's pooled
     * buffers cannot accumulate across quarantine cycles. Returns the
     * number of pooled buffers released.
     */
    std::uint64_t discard();

    /** @{ Reuse accounting (bench labels, tests). */
    std::size_t machinesBuilt() const { return built_; }
    std::size_t machinesReused() const { return reused_; }
    /** @} */

  private:
    std::size_t index_;
    core::MachineConfig cfg_;
    std::unique_ptr<core::RsnMachine> mach_;
    std::size_t built_ = 0;
    std::size_t reused_ = 0;
};

/**
 * Fixed-width deterministic sweep executor. jobs == 1 runs every job
 * inline on the calling thread (no pool, no atomics on the result
 * path); jobs > 1 spawns min(jobs, count) workers per forEach call.
 * Threads are per-call rather than pooled: a sweep point simulates for
 * milliseconds to seconds, so thread start-up is noise, and per-call
 * workers let each lane's machine be built *and destroyed* on its own
 * thread — which the thread-local TilePool ownership contract requires.
 */
class SweepExecutor
{
  public:
    explicit SweepExecutor(unsigned jobs = 1) : jobs_(jobs ? jobs : 1) {}

    unsigned jobs() const { return jobs_; }

    /** What `--jobs 0` / `RSN_JOBS=0` means: every hardware thread. */
    static unsigned defaultJobs();

    /**
     * Resolve a user-facing jobs request: 0 means defaultJobs(),
     * anything else is taken as-is (clamped to >= 1).
     */
    static unsigned resolveJobs(long requested);

    using Job = std::function<void(SweepLane &, std::size_t)>;

    /**
     * Run fn(lane, i) for every i in [0, count), spread across lanes.
     * Blocks until all jobs finish. If a job throws, remaining jobs are
     * abandoned (in-flight ones finish), workers drain, and the first
     * exception rethrows on the calling thread.
     */
    void forEach(std::size_t count, const Job &fn) const;

    /**
     * forEach with a pre-sized result vector: out[i] = fn(lane, i).
     * Output order is job order, independent of scheduling. R must be
     * default-constructible and (for jobs > 1) move-assignable.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t count, Fn &&fn) const
    {
        std::vector<R> out(count);
        forEach(count, [&](SweepLane &lane, std::size_t i) {
            out[i] = fn(lane, i);
        });
        return out;
    }

  private:
    unsigned jobs_;
};

/** One (config, model) sweep point for runSweep. */
struct SweepPoint {
    core::MachineConfig cfg;
    Model model;
    ScheduleOptions opts;
    std::uint32_t seed = 2025;
};

/**
 * Checked-run convenience over the executor: compile and execute every
 * point through lib::runModelChecked on its lane's machine. Results are
 * in point order. This is the rsn-sim --sweep-batch / chaos-sweep path;
 * the bench binaries use bench_util.hh's runOnLane instead (they want
 * timing aggregates, not functional verification).
 */
std::vector<CheckedRun> runSweep(const SweepExecutor &ex,
                                 const std::vector<SweepPoint> &points);

} // namespace rsn::lib

#endif // RSN_LIB_SWEEP_HH
