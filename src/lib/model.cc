#include "lib/model.hh"

#include "common/log.hh"

namespace rsn::lib {

std::uint64_t
LinearLayer::flops() const
{
    std::uint64_t f = 2ull * m * k * n;
    if (bias)
        f += std::uint64_t(m) * n;
    if (gelu)
        f += 8ull * m * n;
    if (layernorm)
        f += 10ull * m * n;
    if (residual)
        f += std::uint64_t(m) * n;
    return f;
}

std::uint64_t
AttentionBlock::flops() const
{
    // MM1 + softmax + MM2 per head.
    std::uint64_t mm = 2ull * seq * dhead * seq;
    std::uint64_t sm = 5ull * seq * seq;
    return heads * (2 * mm + sm);
}

std::uint64_t
Model::totalFlops() const
{
    std::uint64_t f = 0;
    for (const auto &s : segments)
        std::visit([&](const auto &v) { f += v.flops(); }, s);
    return f;
}

Bytes
Model::minTrafficBytes() const
{
    Bytes b = Bytes(input_rows) * input_cols * sizeof(float);
    for (const auto &s : segments) {
        if (const auto *l = std::get_if<LinearLayer>(&s)) {
            b += Bytes(l->k) * l->n * sizeof(float);  // weights
            b += Bytes(l->m) * l->n * sizeof(float);  // output
        } else if (const auto *a = std::get_if<AttentionBlock>(&s)) {
            b += Bytes(a->heads) * a->seq * a->dhead * sizeof(float);
        }
    }
    return b;
}

namespace {

/** Shared encoder-stack builder. */
Model
encoderStack(std::string name, std::uint32_t batch, std::uint32_t seq,
             std::uint32_t hidden, std::uint32_t heads, std::uint32_t ff,
             bool fuse_qkv, std::uint32_t layers)
{
    rsn_assert(hidden % heads == 0, "hidden must divide into heads");
    Model m;
    m.name = std::move(name);
    const std::uint32_t rows = batch * seq;
    m.input_rows = rows;
    m.input_cols = hidden;
    const std::uint32_t dhead = hidden / heads;

    std::string x = "input";
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::string p = "L" + std::to_string(l) + ".";
        AttentionBlock attn;
        attn.name = p + "attention";
        attn.heads = batch * heads;
        attn.heads_per_batch = heads;
        attn.seq = seq;
        attn.dhead = dhead;
        attn.out_name = p + "attn_out";

        if (fuse_qkv) {
            // One fused GEMM; Q/K/V are column ranges of its output
            // ("mathematically fused", the simplified type-C mapping).
            LinearLayer qkv;
            qkv.name = p + "qkv";
            qkv.m = rows;
            qkv.k = hidden;
            qkv.n = 3 * hidden;
            qkv.bias = true;
            qkv.in_src = x;
            qkv.out_name = p + "qkv_out";
            m.segments.emplace_back(qkv);
            attn.q_src = attn.k_src = attn.v_src = p + "qkv_out";
            attn.q_col_off = 0;
            attn.k_col_off = hidden;
            attn.v_col_off = 2 * hidden;
        } else {
            const char *names[3] = {"query", "key", "value"};
            for (int i = 0; i < 3; ++i) {
                LinearLayer lin;
                lin.name = p + names[i];
                lin.m = rows;
                lin.k = hidden;
                lin.n = hidden;
                lin.bias = true;
                lin.in_src = x;
                lin.out_name = p + names[i] + "_out";
                m.segments.emplace_back(lin);
            }
            attn.q_src = p + "query_out";
            attn.k_src = p + "key_out";
            attn.v_src = p + "value_out";
        }
        m.segments.emplace_back(attn);

        LinearLayer dense;
        dense.name = p + "dense";
        dense.m = rows;
        dense.k = hidden;
        dense.n = hidden;
        dense.bias = true;
        dense.residual = true;
        dense.residual_src = x;
        dense.layernorm = true;
        dense.in_src = p + "attn_out";
        dense.out_name = p + "dense_out";
        m.segments.emplace_back(dense);

        LinearLayer ff1;
        ff1.name = p + "ff1";
        ff1.m = rows;
        ff1.k = hidden;
        ff1.n = ff;
        ff1.bias = true;
        ff1.gelu = true;
        ff1.in_src = p + "dense_out";
        ff1.out_name = p + "ff1_out";
        m.segments.emplace_back(ff1);

        LinearLayer ff2;
        ff2.name = p + "ff2";
        ff2.m = rows;
        ff2.k = ff;
        ff2.n = hidden;
        ff2.bias = true;
        ff2.residual = true;
        ff2.residual_src = p + "dense_out";
        ff2.layernorm = true;
        ff2.in_src = p + "ff1_out";
        ff2.out_name = p + "encoder_out";
        m.segments.emplace_back(ff2);

        x = p + "encoder_out";
    }
    return m;
}

} // namespace

Model
bertLargeEncoder(std::uint32_t batch, std::uint32_t seq, bool fuse_qkv,
                 std::uint32_t layers)
{
    return encoderStack("BERT-Large", batch, seq, 1024, 16, 4096,
                        fuse_qkv, layers);
}

Model
vitEncoder(std::uint32_t batch, bool fuse_qkv, std::uint32_t layers)
{
    // 197 tokens (196 patches + CLS), rounded to 208 for head slicing.
    return encoderStack("ViT", batch, 208, 768, 12, 3072, fuse_qkv,
                        layers);
}

Model
ncf(std::uint32_t batch)
{
    // Neural collaborative filtering tower: wide concat embedding (2048)
    // funneled through dense layers, per CHARM's NCF configuration.
    Model m;
    m.name = "NCF";
    m.input_rows = batch * 1024;  // batch of user-item interaction rows
    m.input_cols = 2048;
    std::string x = "input";
    const std::uint32_t dims[4] = {2048, 1024, 512, 256};
    for (int i = 0; i < 3; ++i) {
        LinearLayer l;
        l.name = "fc" + std::to_string(i);
        l.m = m.input_rows;
        l.k = dims[i];
        l.n = dims[i + 1];
        l.bias = true;
        l.gelu = true;  // stands in for ReLU; same fusion path
        l.in_src = x;
        l.out_name = "fc" + std::to_string(i) + "_out";
        m.segments.emplace_back(l);
        x = l.out_name;
    }
    return m;
}

Model
mlp(std::uint32_t batch)
{
    // The large-MLP benchmark: a stack of square 4096 layers.
    Model m;
    m.name = "MLP";
    m.input_rows = batch * 512;
    m.input_cols = 4096;
    std::string x = "input";
    for (int i = 0; i < 5; ++i) {
        LinearLayer l;
        l.name = "mlp" + std::to_string(i);
        l.m = m.input_rows;
        l.k = 4096;
        l.n = 4096;
        l.bias = true;
        l.gelu = i < 4;
        l.in_src = x;
        l.out_name = "mlp" + std::to_string(i) + "_out";
        m.segments.emplace_back(l);
        x = l.out_name;
    }
    return m;
}

Model
tinyEncoder(std::uint32_t batch, std::uint32_t seq, std::uint32_t hidden,
            std::uint32_t heads, std::uint32_t ff, bool fuse_qkv)
{
    return encoderStack("tiny-encoder", batch, seq, hidden, heads, ff,
                        fuse_qkv, 1);
}

} // namespace rsn::lib
