#include "lib/segmenter.hh"

#include <algorithm>

#include "common/log.hh"

namespace rsn::lib {

std::string
ModelPlan::toString() const
{
    std::string s;
    for (const auto &seg : segments) {
        s += detail::formatv(
            "%-18s %-18s %s  %6.2f GFLOP  %7.2f MB  est %7.3f ms",
            seg.name.c_str(), mappingName(seg.mapping),
            seg.compute_bound ? "compute-bound" : "memory-bound ",
            seg.flops / 1e9, seg.operand_bytes / 1e6, seg.est_ms);
        if (!seg.fused_ops.empty()) {
            s += "  fused:";
            for (const auto &op : seg.fused_ops)
                s += " " + op;
        }
        s += "\n";
    }
    s += detail::formatv("total estimate: %.3f ms\n", total_est_ms);
    return s;
}

ModelPlan
Segmenter::plan(const Model &model) const
{
    ModelPlan out;
    for (const auto &segment : model.segments) {
        SegmentPlan p;
        if (const auto *l = std::get_if<LinearLayer>(&segment)) {
            p.name = l->name;
            p.flops = 2ull * l->m * l->k * l->n;
            p.operand_bytes = (Bytes(l->m) * l->k + Bytes(l->k) * l->n +
                               Bytes(l->m) * l->n) *
                              sizeof(float);
            if (l->residual)
                p.operand_bytes += Bytes(l->m) * l->n * sizeof(float);
            p.compute_bound =
                linearIsComputeBound(l->m, l->k, l->n, budget_);
            // Large MMs run alone with all FUs fused on the same layer
            // (type A with mathematically-fused heads).
            p.mapping = MappingType::LayerByLayer;
            if (l->bias)
                p.fused_ops.push_back("bias");
            if (l->gelu)
                p.fused_ops.push_back("gelu");
            if (l->residual)
                p.fused_ops.push_back("residual");
            if (l->layernorm)
                p.fused_ops.push_back("layernorm");
            double compute_s = double(p.flops) /
                               (budget_.peak_tflops * 1e12);
            double mem_s = double(p.operand_bytes) /
                           (budget_.bw_gbs * 1e9);
            p.est_ms = std::max(compute_s, mem_s) * 1e3;

            out.required.ddr_to_mem_a = true;
            out.required.lpddr_to_mem_b = true;
            out.required.memc_to_ddr = true;
            if (l->residual)
                out.required.ddr_to_mem_c = true;
            if (l->layernorm)
                out.required.lpddr_to_mem_c = true;
        } else if (const auto *a =
                       std::get_if<AttentionBlock>(&segment)) {
            p.name = a->name;
            p.flops = 4ull * a->heads * a->seq * a->dhead * a->seq;
            p.operand_bytes = 4ull * a->heads * a->seq * a->dhead *
                              sizeof(float);
            p.compute_bound = false;
            p.intermediate_bytes =
                pipelineIntermediateBytes(a->seq, a->seq);
            AttentionWorkload w{a->heads, a->seq, a->dhead};
            // Pipeline only when the per-head intermediate fits on chip
            // (Sec. 4.3's capacity argument).
            p.mapping = p.intermediate_bytes <= onchip_capacity_
                            ? bestMapping(w, budget_)
                            : MappingType::LayerByLayer;
            p.est_ms =
                estimateMapping(p.mapping, w, budget_).final_ms;
            p.fused_ops.push_back("softmax");

            out.required.ddr_to_mem_a = true;
            out.required.ddr_to_mem_b = true;  // K/V are feature maps
            out.required.memc_to_ddr = true;
            if (p.mapping == MappingType::Pipeline)
                out.required.memc_to_mesh = true;
        }
        out.total_est_ms += p.est_ms;
        out.segments.push_back(std::move(p));
    }
    return out;
}

std::vector<std::string>
Segmenter::missingEdges(const ModelPlan &plan, const net::Topology &topo)
{
    std::vector<std::string> missing;
    auto need = [&](bool required, FuId src, FuId dst,
                    const char *what) {
        if (required && !topo.hasEdge(src, dst))
            missing.push_back(what);
    };
    const auto &r = plan.required;
    need(r.ddr_to_mem_a, {FuType::Ddr, 0}, {FuType::MemA, 0},
         "DDR->MemA");
    need(r.ddr_to_mem_b, {FuType::Ddr, 0}, {FuType::MemB, 0},
         "DDR->MemB");
    need(r.ddr_to_mem_c, {FuType::Ddr, 0}, {FuType::MemC, 0},
         "DDR->MemC");
    need(r.lpddr_to_mem_b, {FuType::Lpddr, 0}, {FuType::MemB, 0},
         "LPDDR->MemB");
    need(r.lpddr_to_mem_c, {FuType::Lpddr, 0}, {FuType::MemC, 0},
         "LPDDR->MemC");
    need(r.memc_to_mesh, {FuType::MemC, 0}, {FuType::MeshA, 0},
         "MemC->MeshA");
    need(r.memc_to_ddr, {FuType::MemC, 0}, {FuType::Ddr, 0},
         "MemC->DDR");
    return missing;
}

} // namespace rsn::lib
