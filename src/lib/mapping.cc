#include "lib/mapping.hh"

#include <algorithm>

namespace rsn::lib {

const char *
mappingName(MappingType t)
{
    switch (t) {
      case MappingType::LayerByLayer: return "A layer-by-layer";
      case MappingType::TaskByTask: return "B task-by-task";
      case MappingType::TaskParallel: return "C task-parallel";
      case MappingType::Pipeline: return "D pipeline";
    }
    return "?";
}

MappingEstimate
estimateMapping(MappingType t, const AttentionWorkload &w,
                const PlatformBudget &p)
{
    MappingEstimate e;
    e.type = t;

    const double S = w.seq, D = w.dhead, T = w.tasks;
    const double fp = sizeof(float);
    const double qkv_bytes = 3.0 * T * S * D * fp;   // Q, K, V in
    const double ctx_bytes = T * S * D * fp;         // context out
    const double scores_bytes = T * S * S * fp;      // intermediate
    const double flops = 4.0 * T * S * D * S;        // MM1 + MM2

    // Off-chip feature-map traffic per mapping type. A/B/C spill the
    // score matrices and read them back; D keeps them on chip.
    double traffic;
    bool keeps_scores_onchip = t == MappingType::Pipeline;
    if (keeps_scores_onchip)
        traffic = qkv_bytes + ctx_bytes;
    else
        traffic = qkv_bytes + ctx_bytes + 2.0 * scores_bytes;

    // Transfer granularity: A moves the fused-task tensors in large
    // blocks; B/C move one small task at a time and pay per-task DRAM
    // turnaround; D overlaps the per-task transfers across parallel
    // heads.
    double turnaround = 0;
    if (t == MappingType::TaskByTask || t == MappingType::TaskParallel)
        turnaround = T * p.per_task_overhead * 2;  // both MMs
    else if (t == MappingType::Pipeline)
        turnaround = 0;  // prolog/epilog overlap across heads

    e.inf_flops_ms = (traffic / (p.bw_gbs * 1e9) + turnaround) * 1e3;

    // AIE utilization: one small MM at a time cannot fill the array
    // (K = 64 limits unrolling); spatial mappings reach ~96%.
    bool spatial = t == MappingType::TaskParallel ||
                   t == MappingType::Pipeline;
    e.aie_util = spatial ? 0.96 : 0.64;

    e.inf_bw_ms = flops / (p.peak_tflops * 1e12 * e.aie_util) * 1e3;
    e.final_ms = std::max(e.inf_flops_ms, e.inf_bw_ms);
    e.traffic_mb = traffic / 1e6;
    return e;
}

MappingType
bestMapping(const AttentionWorkload &w, const PlatformBudget &p)
{
    MappingType best = MappingType::LayerByLayer;
    double best_ms = estimateMapping(best, w, p).final_ms;
    for (MappingType t : {MappingType::TaskByTask,
                          MappingType::TaskParallel,
                          MappingType::Pipeline}) {
        double ms = estimateMapping(t, w, p).final_ms;
        if (ms < best_ms) {
            best_ms = ms;
            best = t;
        }
    }
    return best;
}

bool
linearIsComputeBound(std::uint64_t m, std::uint64_t k, std::uint64_t n,
                     const PlatformBudget &p)
{
    double flops = 2.0 * m * k * n;
    double bytes = (double(m) * k + double(k) * n + double(m) * n) *
                   sizeof(float);
    double compute_s = flops / (p.peak_tflops * 1e12);
    double mem_s = bytes / (p.bw_gbs * 1e9);
    return compute_s >= mem_s;
}

std::uint64_t
pipelineIntermediateBytes(std::uint64_t m, std::uint64_t n)
{
    return m * n * sizeof(float);
}

} // namespace rsn::lib
