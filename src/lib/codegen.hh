/**
 * @file
 * RSN instruction generation: model IR -> RSN program (the RSNlib
 * backend, paper Sec. 4.5).
 *
 * For each segment the generator picks a datapath mapping:
 *  - LinearLayer: single-MM mapping on all six MMEs. Output-stationary
 *    768x1024 tiles, 128-deep K steps; LHS tiles stream DDR -> MemA0 ->
 *    MeshA (M-split across MMEs); RHS tiles stream LPDDR -> MemB0 ->
 *    MeshB (broadcast); results collect in the MemC partners and drain
 *    back through the DDR FU.
 *  - AttentionBlock (pipelined): three head lanes; lane l runs MM1 on
 *    MME_l, fuses Softmax in MemC_l, re-injects the probabilities through
 *    MeshA into MME_{3+l} for MM2 — the dynamic chain of pipelined FUs.
 *  - AttentionBlock (sequential): two passes with the score matrices
 *    spilled to DDR (the type-A baseline).
 *
 * DDR load/store interleaving is explicit: store pieces are queued and
 * drained into the load gaps of the next output tile (Sec. 4.4, Fig. 12).
 * Finally, the raw uOP stream is packed into RSN packets using
 * window/reuse compression (Sec. 3.3), which is what Fig. 9 measures.
 */

#ifndef RSN_LIB_CODEGEN_HH
#define RSN_LIB_CODEGEN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "isa/packet.hh"
#include "lib/model.hh"
#include "lib/schedule.hh"

namespace rsn::lib {

/** A tensor placed in the simulated off-chip address space. */
struct TensorInfo {
    std::string name;
    Addr addr = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    bool is_weight = false;  ///< Lives behind the LPDDR channel.
};

/** The compiled artifact: program + tensor map + work accounting. */
struct CompiledModel {
    isa::RsnProgram program;
    std::vector<TensorInfo> tensors;
    std::uint64_t mm_flops = 0;  ///< GEMM FLOPs (for TFLOPS metrics).

    const TensorInfo &tensor(const std::string &name) const;
    bool hasTensor(const std::string &name) const;
};

class ProgramBuilder
{
  public:
    ProgramBuilder(core::RsnMachine &machine, ScheduleOptions opts);

    /**
     * Allocate the model's tensors in the machine's host memory and
     * generate its RSN program.
     */
    CompiledModel compile(const Model &model);

    const ScheduleOptions &options() const { return opts_; }

  private:
    struct Entry {
        FuType op;
        std::uint8_t mask;
        isa::Uop uop;
    };

    /** @{ Raw-stream emission. */
    void emit(FuType op, std::uint8_t mask, isa::Uop u);
    void emitDdrLoad(isa::DdrUop u, std::uint32_t drain);
    void queueDdrStore(isa::DdrUop u);
    void flushStores();
    /** @} */

    /** @{ Tensor table. */
    TensorInfo declareTensor(const std::string &name, std::uint32_t rows,
                             std::uint32_t cols, bool weight);
    TensorInfo tensor(const std::string &name) const;
    /** @} */

    /** @{ Per-segment generators. */
    void genLinear(const LinearLayer &l);
    void genAttention(const AttentionBlock &a);
    void genAttentionPipelined(const AttentionBlock &a);
    void genAttentionSequential(const AttentionBlock &a);
    /** @} */

    /** A uOP sequence destined for the FU instances in @c mask. */
    struct UopStream {
        std::uint8_t mask;
        std::vector<isa::Uop> uops;
    };

    /**
     * Build the prolog / steady / epilog uOP pattern for a ping-pong
     * scratchpad processing @p chunks chunks: with double buffering this
     * is [load(0)] [loadSend(j)]x(chunks-1) [send]; without it,
     * alternating [load(j)][send] pairs. @p load_uop may vary by chunk
     * index (e.g. MemB's K-transpose / V alternation).
     */
    std::vector<isa::Uop>
    buildPingPong(const std::function<isa::Uop(std::uint64_t)> &load_uop,
                  const std::function<isa::Uop(std::uint64_t)> &both_uop,
                  isa::Uop send_uop, std::uint64_t chunks) const;

    /** Convenience: a ping-pong pattern with chunk-independent uOPs. */
    UopStream pingPongStream(std::uint8_t mask, isa::Uop first,
                             isa::Uop both, isa::Uop second,
                             std::uint64_t chunks) const;

    /**
     * Emit several same-FU-type streams round-robin in blocks of at most
     * @p block uOPs. Blocks must stay below the per-FU uOP FIFO depth:
     * delivering one group's whole stream before the next would fill the
     * first group's queues, stall the shared second-level decoder, and
     * starve the sibling FUs — the deadlock scenario of Sec. 3.3.
     */
    void emitInterleaved(FuType op, std::vector<UopStream> streams,
                         std::size_t block = 0);  // 0 = auto from FIFO

    /** Pack the raw stream into packets with window/reuse compression. */
    isa::RsnProgram pack() const;

    /** Mark the start of a segment's entries. */
    void beginSegment();

    /**
     * Reorder the just-generated segment so control and data-movement
     * entries interleave in bounded per-type blocks. Fetching a long run
     * of one FU type's packets while another type's data supplier has no
     * instructions yet is exactly the fetch-stall deadlock of Sec. 3.3;
     * interleaving in program order keeps every type's FIFO fed. Within
     * one FU type the entry order is preserved.
     */
    void endSegment();

    core::RsnMachine &mach_;
    ScheduleOptions opts_;
    std::vector<Entry> entries_;
    std::deque<isa::DdrUop> pending_stores_;
    /** Store pieces held back until their producing tile has computed. */
    std::size_t store_lag_ = 0;
    std::vector<TensorInfo> tensors_;
    std::uint64_t mm_flops_ = 0;
    std::size_t segment_start_ = 0;
};

/** Convenience: compile @p model onto @p machine with @p opts. */
CompiledModel compileModel(core::RsnMachine &machine, const Model &model,
                           ScheduleOptions opts);

} // namespace rsn::lib

#endif // RSN_LIB_CODEGEN_HH
