#include "lib/codegen.hh"

#include <algorithm>
#include <array>
#include <map>

#include "common/log.hh"
#include "fu/mem_fus.hh"

namespace rsn::lib {

namespace {

FuId
mme(int i)
{
    return {FuType::Mme, static_cast<std::uint8_t>(i)};
}
FuId
memA(int i)
{
    return {FuType::MemA, static_cast<std::uint8_t>(i)};
}
FuId
memB(int i)
{
    return {FuType::MemB, static_cast<std::uint8_t>(i)};
}
FuId
memC(int i)
{
    return {FuType::MemC, static_cast<std::uint8_t>(i)};
}

constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kMeshB{FuType::MeshB, 0};
constexpr FuId kDdr{FuType::Ddr, 0};
constexpr FuId kLpddr{FuType::Lpddr, 0};

std::uint32_t
ceilDiv(std::uint32_t a, std::uint32_t b)
{
    return (a + b - 1) / b;
}

} // namespace

const TensorInfo &
CompiledModel::tensor(const std::string &name) const
{
    for (const auto &t : tensors)
        if (t.name == name)
            return t;
    rsn_fatal("unknown tensor '%s'", name.c_str());
}

bool
CompiledModel::hasTensor(const std::string &name) const
{
    for (const auto &t : tensors)
        if (t.name == name)
            return true;
    return false;
}

ProgramBuilder::ProgramBuilder(core::RsnMachine &machine,
                               ScheduleOptions opts)
    : mach_(machine), opts_(opts)
{
    rsn_assert(opts.store_split >= 1, "store_split must be >= 1");
}

void
ProgramBuilder::emit(FuType op, std::uint8_t mask, isa::Uop u)
{
    rsn_assert(mask != 0, "empty mask");
    rsn_assert(isa::uopMatchesFuType(u, op), "uop/op mismatch");
    entries_.push_back(Entry{op, mask, std::move(u)});
}

namespace {

/** Byte span a DDR block uOP touches (bounding range). */
std::pair<Addr, Addr>
blockSpan(const isa::DdrUop &u)
{
    Addr end = u.addr +
               (Addr(u.rows ? u.rows - 1 : 0) * u.pitch + u.cols) *
                   sizeof(float);
    return {u.addr, end};
}

bool
spansOverlap(std::pair<Addr, Addr> a, std::pair<Addr, Addr> b)
{
    return a.first < b.second && b.first < a.second;
}

} // namespace

void
ProgramBuilder::emitDdrLoad(isa::DdrUop u, std::uint32_t drain)
{
    u.load = true;
    u.store = false;
    // True data dependencies override overlap: any pending store whose
    // range intersects this load must land first (DDR executes in
    // program order, so ordering the uOPs is sufficient). Queue order is
    // preserved, so everything up to the last conflicting piece drains.
    auto load_span = blockSpan(u);
    std::size_t drain_to = 0;
    for (std::size_t i = 0; i < pending_stores_.size(); ++i)
        if (spansOverlap(load_span, blockSpan(pending_stores_[i])))
            drain_to = i + 1;
    for (std::size_t i = 0; i < drain_to; ++i) {
        emit(FuType::Ddr, 1, pending_stores_.front());
        pending_stores_.pop_front();
    }
    emit(FuType::Ddr, 1, u);
    if (!opts_.interleave_load_store)
        return;
    // Drain queued store pieces into this load's gap (Sec. 4.4) — but
    // keep `store_lag_` pieces pending: a tile's results only exist once
    // its compute finishes, one tile behind the load front. Draining too
    // eagerly would block the in-order DDR FU on data that is not ready
    // yet and serialize the pipeline.
    for (std::uint32_t i = 0;
         i < drain && pending_stores_.size() > store_lag_; ++i) {
        emit(FuType::Ddr, 1, pending_stores_.front());
        pending_stores_.pop_front();
    }
}

void
ProgramBuilder::queueDdrStore(isa::DdrUop u)
{
    u.load = false;
    u.store = true;
    if (opts_.interleave_load_store) {
        pending_stores_.push_back(std::move(u));
    } else {
        emit(FuType::Ddr, 1, std::move(u));
    }
}

void
ProgramBuilder::flushStores()
{
    while (!pending_stores_.empty()) {
        emit(FuType::Ddr, 1, pending_stores_.front());
        pending_stores_.pop_front();
    }
}

TensorInfo
ProgramBuilder::declareTensor(const std::string &name, std::uint32_t rows,
                              std::uint32_t cols, bool weight)
{
    for (auto &t : tensors_) {
        if (t.name == name) {
            rsn_assert(t.rows == rows && t.cols == cols,
                       "tensor '%s' redeclared with new shape",
                       name.c_str());
            return t;
        }
    }
    TensorInfo t;
    t.name = name;
    t.rows = rows;
    t.cols = cols;
    t.is_weight = weight;
    t.addr = mach_.host().alloc(std::uint64_t(rows) * cols, name);
    tensors_.push_back(t);
    return t;
}

TensorInfo
ProgramBuilder::tensor(const std::string &name) const
{
    for (const auto &t : tensors_)
        if (t.name == name)
            return t;
    rsn_fatal("tensor '%s' used before declaration", name.c_str());
}

std::vector<isa::Uop>
ProgramBuilder::buildPingPong(
    const std::function<isa::Uop(std::uint64_t)> &load_uop,
    const std::function<isa::Uop(std::uint64_t)> &both_uop,
    isa::Uop send_uop, std::uint64_t chunks) const
{
    std::vector<isa::Uop> out;
    if (chunks == 0)
        return out;
    if (opts_.double_buffer && chunks > 1) {
        out.push_back(load_uop(0));
        for (std::uint64_t i = 1; i < chunks; ++i)
            out.push_back(both_uop(i));
        out.push_back(send_uop);
    } else {
        for (std::uint64_t i = 0; i < chunks; ++i) {
            out.push_back(load_uop(i));
            out.push_back(send_uop);
        }
    }
    return out;
}

ProgramBuilder::UopStream
ProgramBuilder::pingPongStream(std::uint8_t mask, isa::Uop first,
                               isa::Uop both, isa::Uop second,
                               std::uint64_t chunks) const
{
    return UopStream{
        mask, buildPingPong([&](std::uint64_t) { return first; },
                            [&](std::uint64_t) { return both; },
                            std::move(second), chunks)};
}

void
ProgramBuilder::emitInterleaved(FuType op, std::vector<UopStream> streams,
                                std::size_t block)
{
    // Auto block size: stay below the per-FU uOP FIFO so one stream's
    // block never wedges the shared second-level decoder.
    if (block == 0)
        block = std::max<std::size_t>(
            1, std::min<std::size_t>(4,
                                     mach_.config().uop_fifo_depth - 1));
    rsn_assert(block < std::max<std::size_t>(
                   2, mach_.config().uop_fifo_depth),
               "interleave block must fit the uOP FIFO");
    std::vector<std::size_t> pos(streams.size(), 0);
    bool more = true;
    while (more) {
        more = false;
        for (std::size_t s = 0; s < streams.size(); ++s) {
            std::size_t n = std::min(block,
                                     streams[s].uops.size() - pos[s]);
            for (std::size_t i = 0; i < n; ++i)
                emit(op, streams[s].mask, streams[s].uops[pos[s] + i]);
            pos[s] += n;
            if (pos[s] < streams[s].uops.size())
                more = true;
        }
    }
}

void
ProgramBuilder::beginSegment()
{
    segment_start_ = entries_.size();
}

void
ProgramBuilder::endSegment()
{
    // Partition the segment's entries per FU type (order preserved).
    std::array<std::vector<Entry>, kNumFuTypes> lanes;
    for (std::size_t i = segment_start_; i < entries_.size(); ++i)
        lanes[static_cast<int>(entries_[i].op)].push_back(
            std::move(entries_[i]));
    entries_.resize(segment_start_);

    // MME and mesh control is a handful of long-running uOPs (reps /
    // repeats cover the whole segment): they must reach their FUs before
    // any data flows, so they lead the segment.
    for (FuType t : {FuType::Mme, FuType::MeshA, FuType::MeshB}) {
        auto &lane = lanes[static_cast<int>(t)];
        for (auto &e : lane)
            entries_.push_back(std::move(e));
        lane.clear();
    }

    // Pace every other type's stream proportionally so control uOPs
    // arrive in lockstep with the data movement they direct. Instruction
    // consumption is data-paced: emitting one type's stream faster than
    // its data flows would pile unconsumed packets into its FIFO and
    // eventually stall the shared fetch unit ahead of the DDR packets the
    // whole pipeline depends on.
    auto cap_for = [&](FuType t) -> std::size_t {
        return (t == FuType::Ddr || t == FuType::Lpddr) ? 8 : 4;
    };
    std::size_t rounds = 1;
    for (int t = 0; t < kNumFuTypes; ++t) {
        std::size_t need = (lanes[t].size() + cap_for(FuType(t)) - 1) /
                           cap_for(FuType(t));
        rounds = std::max(rounds, need);
    }
    // Bresenham pacing: after round r, exactly floor((r+1) * len / rounds)
    // entries of each type have been emitted, so no stream runs ahead of
    // the others by more than one entry per round.
    std::array<std::size_t, kNumFuTypes> pos{};
    for (std::size_t r = 0; r < rounds; ++r) {
        for (int t = 0; t < kNumFuTypes; ++t) {
            auto &lane = lanes[t];
            std::size_t target = (r + 1) * lane.size() / rounds;
            while (pos[t] < target)
                entries_.push_back(std::move(lane[pos[t]++]));
        }
    }
    for (int t = 0; t < kNumFuTypes; ++t)
        rsn_assert(pos[t] == lanes[t].size(), "pacing left entries behind");
}

// -------------------------------------------------------------- Linear --

void
ProgramBuilder::genLinear(const LinearLayer &l)
{
    const auto &cfg = mach_.config();
    const int n_mme = cfg.num_mme;
    // Precision policy (core/config.hh): weights and activations may be
    // typed; bias and LN gamma/beta always load as FP32. Host tensors
    // stay FP32 truth — the DDR/LPDDR FUs convert at the boundary.
    const Dtype act = cfg.precision.linear_activations;
    const Dtype wgt = cfg.precision.linear_weights;

    const TensorInfo in_t = tensor(l.in_src.empty() ? "input" : l.in_src);
    rsn_assert(in_t.rows >= l.m && in_t.cols == l.k,
               "linear '%s': input shape mismatch", l.name.c_str());
    const TensorInfo w_t = declareTensor("W." + l.name, l.k, l.n, true);
    TensorInfo b_t, ln_t, res_t;
    if (l.bias)
        b_t = declareTensor("b." + l.name, 1, l.n, true);
    if (l.layernorm)
        ln_t = declareTensor("ln." + l.name, 2, l.n, true);
    if (l.residual)
        res_t = tensor(l.residual_src);
    const TensorInfo out_t = declareTensor(l.out_name, l.m, l.n, false);

    const std::uint32_t TM = std::min(opts_.out_tile_m, l.m);
    const std::uint32_t TN = std::min(opts_.out_tile_n, l.n);
    const std::uint32_t KS = std::min(opts_.k_step, l.k);
    rsn_assert(TM >= std::uint32_t(n_mme),
               "linear '%s': m too small for the M-split", l.name.c_str());
    if (l.layernorm)
        rsn_assert(TN == l.n, "LayerNorm needs full-width output tiles");

    const std::uint32_t m_tiles = ceilDiv(l.m, TM);
    const std::uint32_t n_tiles = ceilDiv(l.n, TN);
    const std::uint32_t k_steps = ceilDiv(l.k, KS);
    const std::uint32_t tiles = m_tiles * n_tiles;

    mm_flops_ += 2ull * l.m * l.k * l.n;

    // --- Control plane for the on-chip FUs (few compressed packets). ---
    isa::MmeUop mu;
    mu.reps = tiles;
    mu.k_steps = k_steps;
    mu.tile_m = TM;
    mu.tile_k = KS;
    mu.tile_n = TN;
    mu.add_bias = l.bias;
    mu.accum_k = true;
    mu.out_dtype = act;
    emit(FuType::Mme, std::uint8_t((1u << n_mme) - 1), mu);

    const std::uint64_t lhs_chunks = std::uint64_t(tiles) * k_steps;
    isa::MemAUop al;
    al.rows = TM;
    al.cols = KS;
    al.slices = static_cast<std::uint8_t>(n_mme);
    al.src = kDdr;
    al.load = true;
    isa::MemAUop ab = al;
    ab.send = true;
    isa::MemAUop as;
    as.rows = TM;
    as.cols = KS;
    as.slices = al.slices;
    as.send = true;
    emitInterleaved(
        FuType::MemA,
        {UopStream{0x1, buildPingPong([&](std::uint64_t) {
                                          return isa::Uop{al};
                                      },
                                      [&](std::uint64_t) {
                                          return isa::Uop{ab};
                                      },
                                      isa::Uop{as}, lhs_chunks)}});

    const std::uint64_t rhs_chunks =
        std::uint64_t(tiles) * (k_steps + (l.bias ? 1 : 0));
    isa::MemBUop bl;
    bl.rows = KS;
    bl.cols = TN;
    bl.src = kLpddr;
    bl.load = true;
    isa::MemBUop bb = bl;
    bb.send = true;
    isa::MemBUop bs;
    bs.rows = KS;
    bs.cols = TN;
    bs.send = true;
    emitInterleaved(
        FuType::MemB,
        {UopStream{0x1, buildPingPong([&](std::uint64_t) {
                                          return isa::Uop{bl};
                                      },
                                      [&](std::uint64_t) {
                                          return isa::Uop{bb};
                                      },
                                      isa::Uop{bs}, rhs_chunks)}});

    isa::MeshUop ma;
    ma.repeats = static_cast<std::uint32_t>(lhs_chunks);
    ma.mode = isa::MeshMode::Distribute;
    for (int i = 0; i < n_mme; ++i)
        ma.routes.push_back({memA(0), mme(i)});
    emit(FuType::MeshA, 0x1, ma);

    isa::MeshUop mb;
    mb.repeats = static_cast<std::uint32_t>(rhs_chunks);
    mb.mode = isa::MeshMode::Broadcast;
    for (int i = 0; i < n_mme; ++i)
        mb.routes.push_back({memB(0), mme(i)});
    emit(FuType::MeshB, 0x1, mb);

    isa::MemCUop cr;
    cr.rows = TM / n_mme;
    cr.cols = TN;
    cr.recv_chunks = 1;
    cr.send_chunks = static_cast<std::uint16_t>(opts_.store_split);
    cr.recv = true;
    cr.gelu = l.gelu;
    cr.layernorm = l.layernorm;
    cr.scale_shift = l.layernorm;
    cr.add_residual = l.residual;
    cr.out_dtype = act;
    isa::MemCUop cb = cr;
    cb.store = true;
    isa::MemCUop cs = cb;
    cs.recv = false;
    cs.gelu = false;
    cs.layernorm = false;
    cs.scale_shift = false;
    cs.add_residual = false;
    emitInterleaved(FuType::MemC,
                    {pingPongStream(std::uint8_t((1u << n_mme) - 1), cr,
                                    cb, cs, tiles)});

    // --- Off-chip movement: the fine-grained DDR/LPDDR order. ---
    const std::uint32_t pieces_per_tile = n_mme * opts_.store_split;
    const std::uint32_t loads_per_tile =
        k_steps + (l.residual ? n_mme : 0);
    const std::uint32_t drain =
        std::max<std::uint32_t>(1, ceilDiv(pieces_per_tile,
                                           loads_per_tile));
    store_lag_ = pieces_per_tile;

    for (std::uint32_t nt = 0; nt < n_tiles; ++nt) {
        const std::uint32_t n0 = nt * TN;
        const std::uint32_t tn = std::min(TN, l.n - n0);
        for (std::uint32_t mt = 0; mt < m_tiles; ++mt) {
            const std::uint32_t m0 = mt * TM;
            const std::uint32_t tm = std::min(TM, l.m - m0);

            if (l.bias) {
                isa::LpddrUop lb;
                lb.addr = b_t.addr + Addr(n0) * sizeof(float);
                lb.rows = 1;
                lb.cols = tn;
                lb.pitch = l.n;
                lb.dest = memB(0);
                lb.load_bias = true;
                emit(FuType::Lpddr, 0x1, lb);
            }
            for (std::uint32_t ks = 0; ks < k_steps; ++ks) {
                const std::uint32_t k0 = ks * KS;
                const std::uint32_t kk = std::min(KS, l.k - k0);

                isa::LpddrUop lw;
                lw.addr = w_t.addr +
                          (Addr(k0) * l.n + n0) * sizeof(float);
                lw.rows = kk;
                lw.cols = tn;
                lw.pitch = l.n;
                lw.dest = memB(0);
                lw.dtype = wgt;
                emit(FuType::Lpddr, 0x1, lw);

                isa::DdrUop dl;
                dl.addr = in_t.addr +
                          (Addr(m0) * l.k + k0) * sizeof(float);
                dl.rows = tm;
                dl.cols = kk;
                dl.pitch = l.k;
                dl.dest = memA(0);
                dl.dtype = act;
                emitDdrLoad(dl, drain);
            }

            auto slices = fu::sliceRows(tm, n_mme);
            if (l.residual) {
                for (int i = 0; i < n_mme; ++i) {
                    isa::DdrUop dr;
                    dr.addr = res_t.addr +
                              (Addr(m0 + slices[i].first) * l.n + n0) *
                                  sizeof(float);
                    dr.rows = slices[i].second;
                    dr.cols = tn;
                    dr.pitch = l.n;
                    dr.dest = memC(i);
                    dr.dtype = act;
                    emitDdrLoad(dr, drain);
                }
            }
            if (l.layernorm) {
                for (int i = 0; i < n_mme; ++i) {
                    isa::LpddrUop lp;
                    lp.addr = ln_t.addr + Addr(n0) * sizeof(float);
                    lp.rows = 2;
                    lp.cols = tn;
                    lp.pitch = l.n;
                    lp.dest = memC(i);
                    lp.load_bias = true;
                    emit(FuType::Lpddr, 0x1, lp);
                }
            }

            for (int i = 0; i < n_mme; ++i) {
                auto pieces =
                    fu::sliceRows(slices[i].second, opts_.store_split);
                for (const auto &[poff, prows] : pieces) {
                    isa::DdrUop ds;
                    ds.addr =
                        out_t.addr +
                        (Addr(m0 + slices[i].first + poff) * l.n + n0) *
                            sizeof(float);
                    ds.rows = prows;
                    ds.cols = tn;
                    ds.pitch = l.n;
                    ds.src = memC(i);
                    // Stores take their byte count from the arriving
                    // chunk; the tag is stamped for stride-merge
                    // uniformity and tracing.
                    ds.dtype = act;
                    queueDdrStore(ds);
                }
            }
        }
    }
}

// ----------------------------------------------------------- Attention --

void
ProgramBuilder::genAttention(const AttentionBlock &a)
{
    mm_flops_ += 4ull * a.heads * a.seq * a.dhead * a.seq;
    if (opts_.pipeline_attention)
        genAttentionPipelined(a);
    else
        genAttentionSequential(a);
}

namespace {

/** Heads handled by lane l when @p heads round-robin over @p lanes. */
std::uint32_t
laneCount(std::uint32_t heads, std::uint32_t lanes, std::uint32_t l)
{
    if (l >= lanes)
        return 0;
    return heads / lanes + (l < heads % lanes ? 1 : 0);
}

/** Lane masks grouped by identical head counts. */
std::map<std::uint32_t, std::uint8_t>
lanesByCount(std::uint32_t heads, std::uint32_t lanes,
             std::uint32_t shift = 0)
{
    std::map<std::uint32_t, std::uint8_t> groups;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        std::uint32_t c = laneCount(heads, lanes, l);
        if (c > 0)
            groups[c] |= std::uint8_t(1u << (l + shift));
    }
    return groups;
}

} // namespace

void
ProgramBuilder::genAttentionPipelined(const AttentionBlock &a)
{
    const std::uint32_t S = a.seq;
    const std::uint32_t D = a.dhead;
    const std::uint32_t H = a.heads;
    const std::uint32_t lanes = std::min<std::uint32_t>(3, H);
    const std::uint32_t batch = H / a.heads_per_batch;

    const TensorInfo q_t = tensor(a.q_src);
    const TensorInfo k_t = tensor(a.k_src);
    const TensorInfo v_t = tensor(a.v_src);
    const TensorInfo out_t = declareTensor(
        a.out_name, batch * S, a.heads_per_batch * D, false);
    // Q/K/V, score and context tiles all carry the attention
    // activation dtype; softmax itself runs in FP32 inside MemC.
    const Dtype act = mach_.config().precision.attention_activations;

    // MME and MemC control, per group of lanes with equal head counts.
    // Streams for one FU type are emitted interleaved so no sibling FU
    // starves behind a full uOP FIFO (Sec. 3.3).
    std::vector<UopStream> mema_streams, memb_streams, memc_streams;
    for (const auto &[count, mask] : lanesByCount(H, lanes)) {
        isa::MmeUop m1;
        m1.reps = static_cast<std::uint16_t>(count);
        m1.k_steps = 1;
        m1.tile_m = S;
        m1.tile_k = D;
        m1.tile_n = S;
        m1.out_dtype = act;
        emit(FuType::Mme, mask, m1);

        isa::MmeUop m2;
        m2.reps = static_cast<std::uint16_t>(count);
        m2.k_steps = 1;
        m2.tile_m = S;
        m2.tile_k = S;
        m2.tile_n = D;
        m2.out_dtype = act;
        emit(FuType::Mme, std::uint8_t(mask << 3), m2);

        // MemA: one Q tile per head.
        isa::MemAUop al;
        al.rows = S;
        al.cols = D;
        al.slices = 1;
        al.src = kDdr;
        al.load = true;
        isa::MemAUop ab = al;
        ab.send = true;
        isa::MemAUop as;
        as.rows = S;
        as.cols = D;
        as.slices = 1;
        as.send = true;
        mema_streams.push_back(pingPongStream(mask, al, ab, as, count));

        // MemB: K (transposed) then V per head -> alternating pattern.
        isa::MemBUop kload;
        kload.rows = S;
        kload.cols = D;
        kload.src = kDdr;
        kload.load = true;
        kload.transpose = true;
        isa::MemBUop vload = kload;
        vload.transpose = false;
        isa::MemBUop send_only;
        send_only.rows = S;
        send_only.cols = D;
        send_only.send = true;
        auto kv_load = [&](std::uint64_t c) -> isa::Uop {
            return c % 2 == 0 ? kload : vload;
        };
        auto kv_both = [&](std::uint64_t c) -> isa::Uop {
            isa::MemBUop u = (c % 2 == 0) ? kload : vload;
            u.send = true;
            return u;
        };
        memb_streams.push_back(UopStream{
            mask, buildPingPong(kv_load, kv_both, isa::Uop{send_only},
                                2ull * count)});

        // MemC lane-0 group: softmax and re-injection into MeshA.
        isa::MemCUop c1r;
        c1r.rows = S;
        c1r.cols = S;
        c1r.recv_chunks = 1;
        c1r.send_chunks = 1;
        c1r.recv = true;
        c1r.softmax = true;
        c1r.out_dtype = act;
        isa::MemCUop c1b = c1r;
        c1b.send_mme = true;
        c1b.send_dest = kMeshA;
        isa::MemCUop c1s = c1b;
        c1s.recv = false;
        c1s.softmax = false;
        memc_streams.push_back(pingPongStream(mask, c1r, c1b, c1s,
                                              count));

        // MemC lane-3 group: context tiles draining to DDR.
        isa::MemCUop c2r;
        c2r.rows = S;
        c2r.cols = D;
        c2r.recv_chunks = 1;
        c2r.send_chunks = 1;
        c2r.recv = true;
        c2r.out_dtype = act;
        isa::MemCUop c2b = c2r;
        c2b.store = true;
        isa::MemCUop c2s = c2b;
        c2s.recv = false;
        memc_streams.push_back(pingPongStream(std::uint8_t(mask << 3),
                                              c2r, c2b, c2s, count));
    }
    emitInterleaved(FuType::MemA, std::move(mema_streams));
    emitInterleaved(FuType::MemB, std::move(memb_streams));
    emitInterleaved(FuType::MemC, std::move(memc_streams));

    // Meshes: one Parallel uop with per-lane route cycles; lanes with an
    // extra head get one more pass.
    const std::uint32_t base = H / lanes;
    const std::uint32_t rem = H % lanes;
    auto emit_mesh = [&](std::uint32_t upto_lane, std::uint32_t repeats) {
        isa::MeshUop ma;
        ma.repeats = repeats;
        ma.mode = isa::MeshMode::Parallel;
        isa::MeshUop mb = ma;
        for (std::uint32_t l = 0; l < upto_lane; ++l) {
            ma.routes.push_back({memA(l), mme(l)});           // Q
            ma.routes.push_back({memC(l), mme(3 + l)});       // probs
            mb.routes.push_back({memB(l), mme(l)});           // K^T
            mb.routes.push_back({memB(l), mme(3 + l)});       // V
        }
        emit(FuType::MeshA, 0x1, ma);
        emit(FuType::MeshB, 0x1, mb);
    };
    if (base > 0)
        emit_mesh(lanes, base);
    if (rem > 0)
        emit_mesh(rem, 1);

    // Off-chip movement per head, in head order. Context stores lag the
    // load front by a pipeline depth of two heads per lane.
    store_lag_ = 2 * lanes;
    for (std::uint32_t h = 0; h < H; ++h) {
        const std::uint32_t lane = h % lanes;
        const std::uint32_t b = h / a.heads_per_batch;
        const std::uint32_t j = h % a.heads_per_batch;

        auto head_block = [&](const TensorInfo &t, std::uint32_t col_off) {
            return t.addr +
                   (Addr(b) * S * t.cols + col_off + Addr(j) * D) *
                       sizeof(float);
        };

        isa::DdrUop q;
        q.addr = head_block(q_t, a.q_col_off);
        q.rows = S;
        q.cols = D;
        q.pitch = q_t.cols;
        q.dest = memA(lane);
        q.dtype = act;
        emitDdrLoad(q, 1);

        isa::DdrUop kk;
        kk.addr = head_block(k_t, a.k_col_off);
        kk.rows = S;
        kk.cols = D;
        kk.pitch = k_t.cols;
        kk.dest = memB(lane);
        kk.dtype = act;
        emitDdrLoad(kk, 1);

        isa::DdrUop v;
        v.addr = head_block(v_t, a.v_col_off);
        v.rows = S;
        v.cols = D;
        v.pitch = v_t.cols;
        v.dest = memB(lane);
        v.dtype = act;
        emitDdrLoad(v, 1);

        isa::DdrUop ctx;
        ctx.addr = out_t.addr +
                   (Addr(b) * S * out_t.cols + Addr(j) * D) *
                       sizeof(float);
        ctx.rows = S;
        ctx.cols = D;
        ctx.pitch = out_t.cols;
        ctx.src = memC(3 + lane);
        ctx.dtype = act;
        queueDdrStore(ctx);
    }
}

void
ProgramBuilder::genAttentionSequential(const AttentionBlock &a)
{
    const std::uint32_t S = a.seq;
    const std::uint32_t D = a.dhead;
    const std::uint32_t H = a.heads;
    const std::uint32_t lanes = std::min<std::uint32_t>(6, H);
    const std::uint32_t batch = H / a.heads_per_batch;
    const std::uint32_t n_mem = 3;
    const std::uint32_t score_split = 4;

    const TensorInfo &q_t = tensor(a.q_src);
    const TensorInfo &k_t = tensor(a.k_src);
    const TensorInfo &v_t = tensor(a.v_src);
    const TensorInfo sc_t =
        declareTensor("scores." + a.name, H * S, S, false);
    const TensorInfo out_t = declareTensor(
        a.out_name, batch * S, a.heads_per_batch * D, false);
    const Dtype act = mach_.config().precision.attention_activations;

    auto head_block = [&](const TensorInfo &t, std::uint32_t col_off,
                          std::uint32_t h) {
        const std::uint32_t b = h / a.heads_per_batch;
        const std::uint32_t j = h % a.heads_per_batch;
        return t.addr +
               (Addr(b) * S * t.cols + col_off + Addr(j) * D) *
                   sizeof(float);
    };

    // Mesh routes shared by both passes: MemA_i feeds MME_i and MME_{i+3}
    // alternately; same for MemB.
    auto emit_meshes = [&](std::uint32_t upto_lane,
                           std::uint32_t repeats) {
        isa::MeshUop ma;
        ma.repeats = repeats;
        ma.mode = isa::MeshMode::Parallel;
        isa::MeshUop mb = ma;
        for (std::uint32_t l = 0; l < upto_lane; ++l) {
            ma.routes.push_back({memA(l % n_mem), mme(l)});
            mb.routes.push_back({memB(l % n_mem), mme(l)});
        }
        // Reorder so routes sharing a source are adjacent in lane order.
        std::stable_sort(ma.routes.begin(), ma.routes.end(),
                         [](const isa::MeshRoute &x,
                            const isa::MeshRoute &y) {
                             return x.src.index < y.src.index;
                         });
        std::stable_sort(mb.routes.begin(), mb.routes.end(),
                         [](const isa::MeshRoute &x,
                            const isa::MeshRoute &y) {
                             return x.src.index < y.src.index;
                         });
        emit(FuType::MeshA, 0x1, ma);
        emit(FuType::MeshB, 0x1, mb);
    };

    auto gen_pass = [&](bool first_pass) {
        std::vector<UopStream> mema_streams, memb_streams, memc_streams;
        // MME control.
        for (const auto &[count, mask] : lanesByCount(H, lanes)) {
            isa::MmeUop mm;
            mm.reps = static_cast<std::uint16_t>(count);
            mm.k_steps = 1;
            mm.tile_m = S;
            mm.tile_k = first_pass ? D : S;
            mm.tile_n = first_pass ? S : D;
            mm.out_dtype = act;
            emit(FuType::Mme, mask, mm);
        }
        // MemA/MemB: chunk counts per scratchpad instance (a scratchpad
        // serves lanes l and l+3).
        for (std::uint32_t i = 0; i < n_mem; ++i) {
            std::uint32_t cnt = laneCount(H, lanes, i) +
                                (lanes > 3 ? laneCount(H, lanes, i + 3)
                                           : 0);
            if (cnt == 0)
                continue;
            isa::MemAUop al;
            al.rows = S;
            al.cols = first_pass ? D : S;
            al.slices = 1;
            al.src = kDdr;
            al.load = true;
            isa::MemAUop ab = al;
            ab.send = true;
            isa::MemAUop as = al;
            as.load = false;
            as.send = true;
            mema_streams.push_back(pingPongStream(
                std::uint8_t(1u << i), al, ab, as, cnt));

            isa::MemBUop bl;
            bl.rows = S;
            bl.cols = D;
            bl.src = kDdr;
            bl.load = true;
            bl.transpose = first_pass;
            isa::MemBUop bb = bl;
            bb.send = true;
            isa::MemBUop bs;
            bs.rows = S;
            bs.cols = D;
            bs.send = true;
            memb_streams.push_back(pingPongStream(
                std::uint8_t(1u << i), bl, bb, bs, cnt));
        }
        // MemC: per lane.
        for (const auto &[count, mask] : lanesByCount(H, lanes)) {
            isa::MemCUop cr;
            cr.rows = S;
            cr.cols = first_pass ? S : D;
            cr.recv_chunks = 1;
            cr.send_chunks = static_cast<std::uint16_t>(
                first_pass ? score_split : 1);
            cr.recv = true;
            cr.softmax = first_pass;
            cr.out_dtype = act;
            isa::MemCUop cb = cr;
            cb.store = true;
            isa::MemCUop cs = cb;
            cs.recv = false;
            cs.softmax = false;
            memc_streams.push_back(pingPongStream(mask, cr, cb, cs,
                                                  count));
        }
        emitInterleaved(FuType::MemA, std::move(mema_streams));
        emitInterleaved(FuType::MemB, std::move(memb_streams));
        emitInterleaved(FuType::MemC, std::move(memc_streams));
        const std::uint32_t base = H / lanes;
        const std::uint32_t rem = H % lanes;
        if (base > 0)
            emit_meshes(lanes, base);
        if (rem > 0)
            emit_meshes(rem, 1);

        // DDR traffic in head order.
        store_lag_ = lanes * (first_pass ? score_split : 1);
        for (std::uint32_t h = 0; h < H; ++h) {
            const std::uint32_t lane = h % lanes;
            if (first_pass) {
                isa::DdrUop q;
                q.addr = head_block(q_t, a.q_col_off, h);
                q.rows = S;
                q.cols = D;
                q.pitch = q_t.cols;
                q.dest = memA(lane % n_mem);
                q.dtype = act;
                emitDdrLoad(q, 2);

                isa::DdrUop kk;
                kk.addr = head_block(k_t, a.k_col_off, h);
                kk.rows = S;
                kk.cols = D;
                kk.pitch = k_t.cols;
                kk.dest = memB(lane % n_mem);
                kk.dtype = act;
                emitDdrLoad(kk, 2);

                auto pieces = fu::sliceRows(S, score_split);
                for (const auto &[poff, prows] : pieces) {
                    isa::DdrUop ds;
                    ds.addr = sc_t.addr +
                              (Addr(h) * S + poff) * S * sizeof(float);
                    ds.rows = prows;
                    ds.cols = S;
                    ds.pitch = S;
                    ds.src = memC(lane);
                    ds.dtype = act;
                    queueDdrStore(ds);
                }
            } else {
                isa::DdrUop sc;
                sc.addr = sc_t.addr + Addr(h) * S * S * sizeof(float);
                sc.rows = S;
                sc.cols = S;
                sc.pitch = S;
                sc.dest = memA(lane % n_mem);
                sc.dtype = act;
                emitDdrLoad(sc, 1);

                isa::DdrUop v;
                v.addr = head_block(v_t, a.v_col_off, h);
                v.rows = S;
                v.cols = D;
                v.pitch = v_t.cols;
                v.dest = memB(lane % n_mem);
                v.dtype = act;
                emitDdrLoad(v, 1);

                isa::DdrUop ctx;
                ctx.addr = out_t.addr +
                           (Addr(h / a.heads_per_batch) * S * out_t.cols +
                            Addr(h % a.heads_per_batch) * D) *
                               sizeof(float);
                ctx.rows = S;
                ctx.cols = D;
                ctx.pitch = out_t.cols;
                ctx.src = memC(lane);
                ctx.dtype = act;
                queueDdrStore(ctx);
            }
        }
    };

    gen_pass(true);
    // All score tiles must land in DDR before the second pass reads them.
    flushStores();
    // The two passes have different control/data ratios; pace each one
    // separately.
    endSegment();
    beginSegment();
    gen_pass(false);
}

// ---------------------------------------------------------------- Pack --

namespace {

/**
 * Merge runs of consecutive single-block DDR/LPDDR uOPs whose addresses
 * advance by a constant delta into one strided mOP — the second-level
 * decoder unrolls them back (Sec. 3.3's "stride size and stride count"
 * customization). This is where the off-chip FUs get their (modest)
 * Fig. 9 compression.
 */
template <typename T>
bool
tryMergeStride(isa::Uop &acc_uop, const isa::Uop &next)
{
    auto *acc = std::get_if<T>(&acc_uop);
    const auto *nxt = std::get_if<T>(&next);
    if (!acc || !nxt || nxt->stride_count != 1)
        return false;
    // Geometry and flow must match exactly (only addr may differ).
    T a = *acc, b = *nxt;
    a.addr = b.addr = 0;
    a.stride_count = b.stride_count = 1;
    a.stride_offset = b.stride_offset = 0;
    if (!(a == b))
        return false;
    if (acc->stride_count == 1) {
        if (nxt->addr <= acc->addr ||
            nxt->addr - acc->addr > 0xffffffffull)
            return false;
        acc->stride_offset =
            static_cast<std::uint32_t>(nxt->addr - acc->addr);
        acc->stride_count = 2;
        return true;
    }
    Addr expected = acc->addr +
                    Addr(acc->stride_count) * acc->stride_offset;
    if (nxt->addr != expected || acc->stride_count >= 0xfff0)
        return false;
    ++acc->stride_count;
    return true;
}

} // namespace

isa::RsnProgram
ProgramBuilder::pack() const
{
    // Stride-merge pre-pass over the raw stream.
    std::vector<Entry> merged;
    merged.reserve(entries_.size());
    for (const Entry &e : entries_) {
        if (!merged.empty() && merged.back().op == e.op &&
            merged.back().mask == e.mask) {
            if (e.op == FuType::Ddr &&
                tryMergeStride<isa::DdrUop>(merged.back().uop, e.uop))
                continue;
            if (e.op == FuType::Lpddr &&
                tryMergeStride<isa::LpddrUop>(merged.back().uop, e.uop))
                continue;
        }
        merged.push_back(e);
    }
    const auto &entries_ref = merged;

    isa::RsnProgram prog;
    const std::size_t n = entries_ref.size();
    std::size_t i = 0;

    auto same = [&](std::size_t x, std::size_t y) {
        return entries_ref[x].op == entries_ref[y].op &&
               entries_ref[x].mask == entries_ref[y].mask &&
               entries_ref[x].uop == entries_ref[y].uop;
    };

    while (i < n) {
        // Find the repeating window (period p, r repetitions) that covers
        // the most entries, bounded by the header's field widths.
        std::size_t best_p = 1, best_r = 1;
        const std::size_t max_p = std::min<std::size_t>(8, n - i);
        for (std::size_t p = 1; p <= max_p; ++p) {
            bool uniform = true;
            for (std::size_t j = 0; j < p && uniform; ++j)
                uniform = entries_ref[i + j].op == entries_ref[i].op &&
                          entries_ref[i + j].mask == entries_ref[i].mask;
            if (!uniform)
                break;
            std::size_t r = 1;
            while (r < isa::kMaxReuse && i + (r + 1) * p <= n) {
                bool match = true;
                for (std::size_t j = 0; j < p && match; ++j)
                    match = same(i + j, i + r * p + j);
                if (!match)
                    break;
                ++r;
            }
            if (r >= 2 && p * r > best_p * best_r) {
                best_p = p;
                best_r = r;
            }
        }

        isa::RsnPacket pkt;
        pkt.opcode = entries_ref[i].op;
        pkt.mask = entries_ref[i].mask;
        if (best_r >= 2) {
            pkt.reuse = static_cast<std::uint16_t>(best_r);
            for (std::size_t j = 0; j < best_p; ++j)
                pkt.mops.push_back(entries_ref[i + j].uop);
            i += best_p * best_r;
        } else {
            // Non-repeating run: batch consecutive same-op/mask uops.
            pkt.reuse = 1;
            while (i < n && entries_ref[i].op == pkt.opcode &&
                   entries_ref[i].mask == pkt.mask &&
                   pkt.mops.size() < isa::kMaxWindow) {
                // Stop if a compressible repetition starts here.
                if (!pkt.mops.empty() && i + 1 < n && same(i, i + 1))
                    break;
                pkt.mops.push_back(entries_ref[i].uop);
                ++i;
            }
        }
        prog.append(std::move(pkt));
    }

    std::array<int, kNumFuTypes> counts{};
    counts[static_cast<int>(FuType::Mme)] = mach_.config().num_mme;
    counts[static_cast<int>(FuType::MemA)] = mach_.config().num_mem_a;
    counts[static_cast<int>(FuType::MemB)] = mach_.config().num_mem_b;
    counts[static_cast<int>(FuType::MemC)] = mach_.config().num_mem_c;
    counts[static_cast<int>(FuType::MeshA)] = 1;
    counts[static_cast<int>(FuType::MeshB)] = 1;
    counts[static_cast<int>(FuType::Ddr)] = 1;
    counts[static_cast<int>(FuType::Lpddr)] = 1;
    prog.appendHalts(counts);
    prog.validate();
    return prog;
}

CompiledModel
ProgramBuilder::compile(const Model &model)
{
    rsn_assert(entries_.empty(), "ProgramBuilder::compile is single-use");
    declareTensor("input", model.input_rows, model.input_cols, false);

    for (const auto &seg : model.segments) {
        beginSegment();
        if (const auto *l = std::get_if<LinearLayer>(&seg))
            genLinear(*l);
        else if (const auto *a = std::get_if<AttentionBlock>(&seg))
            genAttention(*a);
        if (!opts_.overlap_prolog_epilog)
            flushStores();
        endSegment();
    }
    beginSegment();
    flushStores();
    endSegment();

    CompiledModel out;
    out.program = pack();
    out.tensors = tensors_;
    out.mm_flops = mm_flops_;
    return out;
}

CompiledModel
compileModel(core::RsnMachine &machine, const Model &model,
             ScheduleOptions opts)
{
    ProgramBuilder b(machine, opts);
    return b.compile(model);
}

} // namespace rsn::lib
