/**
 * @file
 * Inter-layer mapping types and the first-order latency estimator used
 * during model segmentation (paper Fig. 3, Table 3, Sec. 4.2/4.3).
 *
 * Types: A layer-by-layer, B task-by-task, C task-parallel, D pipeline.
 * The estimator applies the roofline formula per mapping type to the
 * BERT attention pair (MM1 = Key x Query, MM2 = scores x Value) and is
 * what the datapath-generation process uses to decide that attention
 * segments pipeline (type D) while large feed-forward MMs run one at a
 * time (type A with fused heads).
 */

#ifndef RSN_LIB_MAPPING_HH
#define RSN_LIB_MAPPING_HH

#include <cstdint>
#include <string>

namespace rsn::lib {

enum class MappingType : std::uint8_t {
    LayerByLayer,  ///< A: all FUs on one (fused) layer at a time.
    TaskByTask,    ///< B: all FUs on one task's layers sequentially.
    TaskParallel,  ///< C: independent tasks spatially in parallel.
    Pipeline,      ///< D: dependent layers spatially pipelined.
};

const char *mappingName(MappingType t);

/** Attention-pair workload (Table 3's MM1/MM2). */
struct AttentionWorkload {
    std::uint32_t tasks = 96;   ///< Independent heads (batch included).
    std::uint32_t seq = 512;
    std::uint32_t dhead = 64;
};

/** Platform budget for the estimate. */
struct PlatformBudget {
    double peak_tflops = 8.0;
    double bw_gbs = 57.6;       ///< Combined DDR + LPDDR.
    /** Per-task DRAM turnaround cost (s) modeling small transfers. */
    double per_task_overhead = 80e-6;
};

/** Table 3 row. */
struct MappingEstimate {
    MappingType type;
    double inf_flops_ms = 0;   ///< Latency with infinite compute.
    double aie_util = 0;       ///< Fraction of AIE tiles kept busy.
    double inf_bw_ms = 0;      ///< Latency with infinite bandwidth.
    double final_ms = 0;       ///< max of the two.
    double traffic_mb = 0;     ///< Off-chip feature-map traffic.
};

/** Estimate one mapping type for the attention pair. */
MappingEstimate estimateMapping(MappingType t, const AttentionWorkload &w,
                                const PlatformBudget &p);

/** The mapping type with the lowest final latency. */
MappingType bestMapping(const AttentionWorkload &w,
                        const PlatformBudget &p);

/**
 * Segmentation decision for a linear layer (Sec. 4.2): memory-bound
 * layers group into pipelines; compute-bound layers run one at a time.
 * @return true when the layer is compute-bound under the budget.
 */
bool linearIsComputeBound(std::uint64_t m, std::uint64_t k,
                          std::uint64_t n, const PlatformBudget &p);

/** On-chip bytes needed to pipeline two layers with an m x n
 *  intermediate; compared against capacity in segmentation. */
std::uint64_t pipelineIntermediateBytes(std::uint64_t m, std::uint64_t n);

} // namespace rsn::lib

#endif // RSN_LIB_MAPPING_HH
