/**
 * @file
 * Run support: tensor initialization, reference evaluation, and result
 * extraction for compiled models.
 *
 * This plays the role of the paper's python_gold flow (Artifact Appendix):
 * deterministic input/weight data goes into the simulated off-chip memory,
 * the datapath computes through the stream network, and outputs are
 * validated segment by segment against the independent reference.
 */

#ifndef RSN_LIB_RUNNER_HH
#define RSN_LIB_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "ref/ref_math.hh"

namespace rsn::lib {

/**
 * Fill the model's input and weight tensors with seeded pseudo-random
 * data (activations start zeroed). No-op on timing-only machines.
 */
void initTensors(core::RsnMachine &mach, const CompiledModel &compiled,
                 std::uint32_t seed, float scale = 0.5f);

/** Read a tensor out of simulated off-chip memory as a matrix. */
ref::Matrix readTensor(core::RsnMachine &mach,
                       const CompiledModel &compiled,
                       const std::string &name);

/**
 * Reference evaluation: replay the model on the host-memory contents with
 * the naive implementations, returning every produced activation tensor
 * by name (including per-segment intermediates).
 */
std::map<std::string, ref::Matrix>
referenceForward(core::RsnMachine &mach, const Model &model,
                 const CompiledModel &compiled);

/** Outcome of runModelChecked: run classification plus output check. */
struct CheckedRun {
    core::RunReport report;
    bool functional = false;   ///< Machine carried FP32 payloads.
    /** All produced tensors matched the reference (functional runs that
     *  completed; vacuously true otherwise). */
    bool outputs_ok = true;
    std::vector<std::string> mismatched;  ///< Tensors that diverged.

    /** Completed with verified outputs (or a timing-only completion). */
    bool ok() const { return report.ok() && outputs_ok; }
};

/**
 * The full checked execution flow in one call: seed tensors, capture the
 * FP32 reference, run through the structured RunReport channel, and —
 * when the run completes on a functional machine — compare every
 * produced tensor against the reference. Never throws on a diagnosed
 * fault / deadlock / timeout; those come back classified in the report.
 * This is the path rsn-sim and the chaos tier drive.
 */
CheckedRun runModelChecked(core::RsnMachine &mach, const Model &model,
                           const CompiledModel &compiled,
                           std::uint32_t seed = 2025, float rtol = 2e-3f,
                           float atol = 2e-3f,
                           Tick max_ticks =
                               core::RsnMachine::kDefaultMaxTicks);

} // namespace rsn::lib

#endif // RSN_LIB_RUNNER_HH
