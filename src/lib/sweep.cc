#include "lib/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "fu/kernel_registry.hh"
#include "lib/codegen.hh"
#include "sim/tile_pool.hh"

namespace rsn::lib {

core::RsnMachine &
SweepLane::machine(const core::MachineConfig &cfg)
{
    if (mach_ && mach_->resettable() &&
        cfg_.equalsIgnoringFaultSeed(cfg)) {
        // Same datapath, same fault sources — at most the fault *seed*
        // differs (the serving scheduler salts one chaos seed per
        // request). reset() rewinds, setFaultSeed re-arms the injector;
        // both are identical in outcome to a cold build.
        mach_->reset();
        if (cfg_.fault.seed != cfg.fault.seed) {
            mach_->setFaultSeed(cfg.fault.seed);
            cfg_.fault.seed = cfg.fault.seed;
        }
        ++reused_;
    } else {
        // Config changed, first use, or the previous run did not
        // complete (a deadlocked/timed-out machine holds suspended
        // kernel frames and cannot be reset — rebuild instead).
        mach_ = std::make_unique<core::RsnMachine>(cfg_ = cfg);
        ++built_;
    }
    return *mach_;
}

std::uint64_t
SweepLane::discard()
{
    mach_.reset();
    // A quarantine rebuild is the one moment pool growth can leak
    // across requests: the dead machine's tiles have just retired to
    // this thread's free lists, and the replacement machine re-acquires
    // from scratch. Trim returns that storage to the system so a
    // long-serving process's footprint stays bounded by its *live*
    // fleet, not its fault history (pool-stat test in
    // tests/sim/test_tile_pool.cc).
    return sim::TilePool::instance().trim();
}

unsigned
SweepExecutor::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
SweepExecutor::resolveJobs(long requested)
{
    if (requested == 0)
        return defaultJobs();
    return requested < 1 ? 1u : static_cast<unsigned>(requested);
}

void
SweepExecutor::forEach(std::size_t count, const Job &fn) const
{
    if (count == 0)
        return;

    // Force registry construction (cpuid probe + env resolution) before
    // any lane can touch it: selection is main-thread state, lanes only
    // ever read the published table.
    kernel::Registry::instance();

    const std::size_t lanes =
        std::min<std::size_t>(jobs_, count);
    if (lanes <= 1) {
        // Inline: no threads, the lane (and its machine, and the tile
        // pool it uses) lives on the calling thread. This is the
        // reference execution the parallel path must match bit-for-bit.
        SweepLane lane(0);
        for (std::size_t i = 0; i < count; ++i)
            fn(lane, i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto worker = [&](std::size_t lane_idx) {
        // The lane is constructed *and destroyed* on this thread, so
        // its machine's tiles retire into this thread's pool — the
        // TilePool ownership contract.
        SweepLane lane(lane_idx);
        while (!abort.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            try {
                fn(lane, i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                abort.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        threads.emplace_back(worker, l);
    for (std::thread &t : threads)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<CheckedRun>
runSweep(const SweepExecutor &ex, const std::vector<SweepPoint> &points)
{
    return ex.map<CheckedRun>(
        points.size(), [&](SweepLane &lane, std::size_t i) {
            const SweepPoint &p = points[i];
            core::RsnMachine &mach = lane.machine(p.cfg);
            const CompiledModel compiled =
                compileModel(mach, p.model, p.opts);
            return runModelChecked(mach, p.model, compiled, p.seed);
        });
}

} // namespace rsn::lib
