/**
 * @file
 * Schedule options: the optimization knobs the paper evaluates.
 *
 * Table 9 compares four operating points; these map onto the flags below:
 *  - "No Optimize":   everything off (atomic layer-at-a-time overlay style)
 *  - "BW Optimized":  interleave_load_store + double_buffer
 *  - "Multi MMs together": + fuse_qkv (done at model build time)
 *  - "Final":         + pipeline_attention + overlap_prolog_epilog
 */

#ifndef RSN_LIB_SCHEDULE_HH
#define RSN_LIB_SCHEDULE_HH

#include <cstdint>

namespace rsn::lib {

struct ScheduleOptions {
    /** Explicitly interleave DDR stores into load gaps (Sec. 4.4). */
    bool interleave_load_store = true;
    /** Run attention MM1 -> softmax -> MM2 on-chip (type-D mapping). */
    bool pipeline_attention = true;
    /** Overlap one segment's epilog with the next one's prolog. */
    bool overlap_prolog_epilog = true;
    /** Ping-pong scratchpads: load/recv in parallel with send/store. */
    bool double_buffer = true;

    /** Out-stationary tiling (Sec. 5.3): 768 x 1024 output tiles,
     *  K accumulated in 128-deep steps. */
    std::uint32_t out_tile_m = 768;
    std::uint32_t out_tile_n = 1024;
    std::uint32_t k_step = 128;

    /** Store pieces per MemC slab (drained one per load gap). */
    std::uint32_t store_split = 2;

    static ScheduleOptions
    optimized()
    {
        return {};
    }

    /** The baseline-overlay operating point of Table 9 / Sec. 5.5. */
    static ScheduleOptions
    noOptimize()
    {
        ScheduleOptions o;
        o.interleave_load_store = false;
        o.pipeline_attention = false;
        o.overlap_prolog_epilog = false;
        o.double_buffer = false;
        o.store_split = 1;
        return o;
    }

    /** Fine-grained bandwidth mapping only. */
    static ScheduleOptions
    bwOptimized()
    {
        ScheduleOptions o;
        o.pipeline_attention = false;
        o.overlap_prolog_epilog = false;
        return o;
    }
};

} // namespace rsn::lib

#endif // RSN_LIB_SCHEDULE_HH
