#include "lib/runner.hh"

#include "common/log.hh"

namespace rsn::lib {

void
initTensors(core::RsnMachine &mach, const CompiledModel &compiled,
            std::uint32_t seed, float scale)
{
    if (!mach.host().functional())
        return;
    std::uint32_t salt = 1;
    for (const auto &t : compiled.tensors) {
        if (t.name == "input" || t.is_weight) {
            ref::Matrix m = ref::randomMatrix(t.rows, t.cols,
                                              seed + salt, scale);
            mach.host().fillRegion(t.addr, m.data.data(), m.data.size());
        }
        ++salt;
    }
}

ref::Matrix
readTensor(core::RsnMachine &mach, const CompiledModel &compiled,
           const std::string &name)
{
    const TensorInfo &t = compiled.tensor(name);
    ref::Matrix m(t.rows, t.cols);
    m.data = mach.host().readRegion(t.addr);
    rsn_assert(m.data.size() == std::size_t(t.rows) * t.cols,
               "tensor read shape mismatch");
    return m;
}

namespace {

/** Extract a column range [off, off+w) of a matrix. */
ref::Matrix
colRange(const ref::Matrix &m, std::uint32_t off, std::uint32_t w)
{
    ref::Matrix out(m.rows, w);
    for (std::uint32_t i = 0; i < m.rows; ++i)
        for (std::uint32_t j = 0; j < w; ++j)
            out.at(i, j) = m.at(i, off + j);
    return out;
}

/** Extract a row range. */
ref::Matrix
rowRange(const ref::Matrix &m, std::uint32_t off, std::uint32_t h)
{
    ref::Matrix out(h, m.cols);
    for (std::uint32_t i = 0; i < h; ++i)
        for (std::uint32_t j = 0; j < m.cols; ++j)
            out.at(i, j) = m.at(off + i, j);
    return out;
}

void
placeBlock(ref::Matrix &dst, const ref::Matrix &block, std::uint32_t r0,
           std::uint32_t c0)
{
    for (std::uint32_t i = 0; i < block.rows; ++i)
        for (std::uint32_t j = 0; j < block.cols; ++j)
            dst.at(r0 + i, c0 + j) = block.at(i, j);
}

} // namespace

std::map<std::string, ref::Matrix>
referenceForward(core::RsnMachine &mach, const Model &model,
                 const CompiledModel &compiled)
{
    std::map<std::string, ref::Matrix> acts;
    acts["input"] = readTensor(mach, compiled, "input");

    for (const auto &seg : model.segments) {
        if (const auto *l = std::get_if<LinearLayer>(&seg)) {
            const ref::Matrix &in =
                acts.at(l->in_src.empty() ? "input" : l->in_src);
            ref::Matrix w = readTensor(mach, compiled, "W." + l->name);
            ref::Matrix out = ref::matmul(in, w);
            if (l->bias) {
                ref::Matrix b = readTensor(mach, compiled,
                                           "b." + l->name);
                out = ref::addBias(out, b.data);
            }
            // Epilogue order matches MemC: residual, gelu, layernorm.
            if (l->residual)
                out = ref::add(out, acts.at(l->residual_src));
            if (l->gelu)
                out = ref::gelu(out);
            if (l->layernorm) {
                ref::Matrix ln = readTensor(mach, compiled,
                                            "ln." + l->name);
                std::vector<float> gamma(ln.data.begin(),
                                         ln.data.begin() + ln.cols);
                std::vector<float> beta(ln.data.begin() + ln.cols,
                                        ln.data.begin() + 2 * ln.cols);
                out = ref::layernorm(out, gamma, beta);
            }
            acts[l->out_name] = std::move(out);
        } else if (const auto *a = std::get_if<AttentionBlock>(&seg)) {
            const std::uint32_t batch = a->heads / a->heads_per_batch;
            ref::Matrix out(batch * a->seq, a->heads_per_batch * a->dhead);
            const ref::Matrix &q_all = acts.at(a->q_src);
            const ref::Matrix &k_all = acts.at(a->k_src);
            const ref::Matrix &v_all = acts.at(a->v_src);
            for (std::uint32_t h = 0; h < a->heads; ++h) {
                const std::uint32_t b = h / a->heads_per_batch;
                const std::uint32_t j = h % a->heads_per_batch;
                ref::Matrix q = colRange(
                    rowRange(q_all, b * a->seq, a->seq),
                    a->q_col_off + j * a->dhead, a->dhead);
                ref::Matrix k = colRange(
                    rowRange(k_all, b * a->seq, a->seq),
                    a->k_col_off + j * a->dhead, a->dhead);
                ref::Matrix v = colRange(
                    rowRange(v_all, b * a->seq, a->seq),
                    a->v_col_off + j * a->dhead, a->dhead);
                ref::Matrix probs = ref::softmax(ref::matmulBt(q, k));
                ref::Matrix ctx = ref::matmul(probs, v);
                placeBlock(out, ctx, b * a->seq, j * a->dhead);
            }
            acts[a->out_name] = std::move(out);
        }
    }
    return acts;
}

CheckedRun
runModelChecked(core::RsnMachine &mach, const Model &model,
                const CompiledModel &compiled, std::uint32_t seed,
                float rtol, float atol, Tick max_ticks)
{
    CheckedRun cr;
    cr.functional = mach.host().functional();

    std::map<std::string, ref::Matrix> refs;
    if (cr.functional) {
        initTensors(mach, compiled, seed);
        refs = referenceForward(mach, model, compiled);
    }

    cr.report = mach.runChecked(compiled.program, max_ticks);

    if (cr.functional && cr.report.ok()) {
        for (const auto &[name, expect] : refs) {
            if (name == "input" || !compiled.hasTensor(name))
                continue;
            ref::Matrix got = readTensor(mach, compiled, name);
            if (!ref::allclose(got, expect, rtol, atol)) {
                cr.outputs_ok = false;
                cr.mismatched.push_back(name);
            }
        }
    }
    return cr;
}

} // namespace rsn::lib
