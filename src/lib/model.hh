/**
 * @file
 * RSNlib model IR: the operator-level description RSN programs are
 * generated from (paper Sec. 4.5, Fig. 13).
 *
 * A model is an ordered list of segments. Linear segments are GEMMs with
 * fused non-MM epilogues (bias, GELU, residual add, LayerNorm); attention
 * segments are the per-head MM1 -> Softmax -> MM2 chains. This mirrors the
 * RSNlib operator set (rsn.linear / rsn.matmul / rsn.softmax /
 * rsn.layernorm / rsn.gelu) after the library's template matching has
 * grouped operators into backend patterns.
 */

#ifndef RSN_LIB_MODEL_HH
#define RSN_LIB_MODEL_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hh"

namespace rsn::lib {

/**
 * One GEMM layer: out = epilogue(in x W + b).
 * @c m includes the batch dimension (m = batch x seq for transformers).
 */
struct LinearLayer {
    std::string name;
    std::uint32_t m = 0;
    std::uint32_t k = 0;
    std::uint32_t n = 0;
    bool bias = false;
    bool gelu = false;
    bool layernorm = false;    ///< Mean/var/norm + scale&shift epilogue.
    bool residual = false;     ///< Add @c residual_src before LayerNorm.
    std::string in_src;        ///< Input tensor ("" = previous output).
    std::string residual_src;  ///< Residual tensor name.
    std::string out_name;      ///< Output tensor name.

    std::uint64_t flops() const;
};

/**
 * Multi-head attention: per head, scores = Q x K^T, P = softmax(scores),
 * ctx = P x V. @c heads includes the batch (heads = batch x num_heads).
 */
struct AttentionBlock {
    std::string name;
    std::uint32_t heads = 0;
    std::uint32_t heads_per_batch = 0;  ///< For Q/K/V block addressing.
    std::uint32_t seq = 0;
    std::uint32_t dhead = 0;
    /** Q/K/V source tensors; equal names with offsets = fused QKV. */
    std::string q_src, k_src, v_src;
    std::uint32_t q_col_off = 0, k_col_off = 0, v_col_off = 0;
    std::string out_name;

    std::uint64_t flops() const;
};

using Segment = std::variant<LinearLayer, AttentionBlock>;

/** A whole model plus its I/O tensor declarations. */
struct Model {
    std::string name;
    std::uint32_t input_rows = 0;   ///< Input feature map (m x k0).
    std::uint32_t input_cols = 0;
    std::vector<Segment> segments;

    std::uint64_t totalFlops() const;
    /** Minimum off-chip traffic: input + weights + output bytes. */
    Bytes minTrafficBytes() const;
};

/** @{ Model builders matching the paper's evaluated workloads. */

/** BERT-Large encoder layer(s): hidden 1024, 16 heads, FF 4096. */
Model bertLargeEncoder(std::uint32_t batch, std::uint32_t seq,
                       bool fuse_qkv, std::uint32_t layers = 1);

/** ViT-Base-like encoder: hidden 768, 12 heads, FF 3072, 197 tokens. */
Model vitEncoder(std::uint32_t batch, bool fuse_qkv,
                 std::uint32_t layers = 1);

/** NCF-style MLP tower (wide embedding MLP, no attention). */
Model ncf(std::uint32_t batch);

/** Plain MLP benchmark (large dense stack). */
Model mlp(std::uint32_t batch);

/** Scaled-down encoder for functional end-to-end validation. */
Model tinyEncoder(std::uint32_t batch, std::uint32_t seq,
                  std::uint32_t hidden, std::uint32_t heads,
                  std::uint32_t ff, bool fuse_qkv);
/** @} */

} // namespace rsn::lib

#endif // RSN_LIB_MODEL_HH
