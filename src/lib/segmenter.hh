/**
 * @file
 * The datapath-generation decision process of paper Sec. 4.2, made
 * explicit and testable. Three stages:
 *
 *  1. Model segmentation — compute-bound layers run alone; memory-bound
 *     dependent layers group into pipelines (subject to the on-chip
 *     capacity needed by their intermediate).
 *  2. Single-segment analysis — per segment: buffer sizes, mapping type
 *     (via the Table 3 estimator), operand traffic, pipeline fusion of
 *     non-MM operators.
 *  3. Collective datapath construction — the "union" of every segment's
 *     stream requirements, minimizing edges; this is checked against the
 *     RSN-XNN topology the machine actually builds.
 */

#ifndef RSN_LIB_SEGMENTER_HH
#define RSN_LIB_SEGMENTER_HH

#include <string>
#include <vector>

#include "lib/mapping.hh"
#include "lib/model.hh"
#include "net/topology.hh"

namespace rsn::lib {

/** Analysis result for one model segment. */
struct SegmentPlan {
    std::string name;
    MappingType mapping = MappingType::LayerByLayer;
    bool compute_bound = false;
    std::uint64_t flops = 0;
    Bytes operand_bytes = 0;        ///< Off-chip traffic lower bound.
    Bytes intermediate_bytes = 0;   ///< On-chip bytes if pipelined.
    double est_ms = 0;              ///< First-order latency estimate.
    std::vector<std::string> fused_ops;  ///< Non-MM ops fused in.
};

/** Stream-edge classes a segment requires from the datapath. */
struct DatapathRequirements {
    bool ddr_to_mem_a = false;   ///< LHS feature maps.
    bool ddr_to_mem_b = false;   ///< K/V feature maps (attention).
    bool ddr_to_mem_c = false;   ///< Residual tiles.
    bool lpddr_to_mem_b = false; ///< Weights / bias.
    bool lpddr_to_mem_c = false; ///< LayerNorm parameters.
    bool memc_to_mesh = false;   ///< Dynamic chaining (pipelining).
    bool memc_to_ddr = false;    ///< Store path.
};

/** Whole-model plan. */
struct ModelPlan {
    std::vector<SegmentPlan> segments;
    DatapathRequirements required;  ///< Union over segments.
    double total_est_ms = 0;

    std::string toString() const;
};

class Segmenter
{
  public:
    Segmenter(PlatformBudget budget, Bytes onchip_capacity = 12u << 20)
        : budget_(budget), onchip_capacity_(onchip_capacity)
    {
    }

    /** Stages 1 + 2: analyze every segment and pick mappings. */
    ModelPlan plan(const Model &model) const;

    /**
     * Stage 3: verify @p topo provides every edge class the plan needs
     * (the union-datapath check). Returns the missing edge classes.
     */
    static std::vector<std::string>
    missingEdges(const ModelPlan &plan, const net::Topology &topo);

  private:
    PlatformBudget budget_;
    Bytes onchip_capacity_;
};

} // namespace rsn::lib

#endif // RSN_LIB_SEGMENTER_HH
