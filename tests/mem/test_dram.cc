#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::mem::Dir;
using rsn::mem::DramChannel;
using rsn::mem::DramConfig;
using rsn::mem::DramRequest;
using rsn::sim::Engine;
using rsn::sim::Task;

DramConfig
testCfg()
{
    DramConfig cfg;
    cfg.read_gbps = 21.0;
    cfg.write_gbps = 23.5;
    cfg.per_burst_overhead = 16;
    return cfg;
}

TEST(Dram, ServiceTimeMatchesBandwidth)
{
    Engine e;
    DramChannel ch(e, testCfg());
    // 21 GB/s at 260 MHz = ~80.77 B/tick. 1 MiB read ~= 12982 ticks + 16.
    DramRequest req{Dir::Read, 1 << 20, 1};
    Tick t = ch.serviceTicks(req);
    EXPECT_NEAR(static_cast<double>(t), (1 << 20) / 80.769 + 16, 3.0);
}

TEST(Dram, WritesAreFasterThanReadsPerPaperRates)
{
    Engine e;
    DramChannel ch(e, testCfg());
    DramRequest rd{Dir::Read, 1 << 20, 1};
    DramRequest wr{Dir::Write, 1 << 20, 1};
    EXPECT_LT(ch.serviceTicks(wr), ch.serviceTicks(rd));
}

TEST(Dram, BurstsAddOverhead)
{
    Engine e;
    DramChannel ch(e, testCfg());
    DramRequest contiguous{Dir::Read, 65536, 1};
    DramRequest strided{Dir::Read, 65536, 128};
    EXPECT_EQ(ch.serviceTicks(strided) - ch.serviceTicks(contiguous),
              Tick(127) * 16);
}

Task
doAccess(DramChannel &ch, DramRequest req, Tick &done_at, Engine &e)
{
    co_await ch.access(req);
    done_at = e.now();
}

TEST(Dram, RequestsSerializeInArrivalOrder)
{
    Engine e;
    DramChannel ch(e, testCfg());
    Tick t1 = 0, t2 = 0;
    DramRequest req{Dir::Read, 80770, 1};  // ~1000 ticks + 16
    Task a = doAccess(ch, req, t1, e);
    Task b = doAccess(ch, req, t2, e);
    e.run();
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(t2, 2 * t1);  // back-to-back service, same duration
    EXPECT_EQ(ch.requests(), 2u);
}

TEST(Dram, StatsTrackBothDirections)
{
    Engine e;
    DramChannel ch(e, testCfg());
    Tick t1 = 0, t2 = 0;
    Task a = doAccess(ch, {Dir::Read, 1000, 1}, t1, e);
    Task b = doAccess(ch, {Dir::Write, 2000, 1}, t2, e);
    e.run();
    EXPECT_EQ(ch.bytesRead(), 1000u);
    EXPECT_EQ(ch.bytesWritten(), 2000u);
    EXPECT_GT(ch.busyTicks(), 0u);
}

TEST(Dram, ScaleBandwidthShortensService)
{
    Engine e;
    DramChannel ch(e, testCfg());
    DramRequest req{Dir::Read, 1 << 20, 1};
    Tick base = ch.serviceTicks(req);
    ch.scaleBandwidth(2.0);
    Tick faster = ch.serviceTicks(req);
    // Transfer halves; the burst overhead does not scale.
    EXPECT_NEAR(static_cast<double>(faster - 16),
                static_cast<double>(base - 16) / 2, 2.0);
}

TEST(Dram, UtilizationIsBusyFraction)
{
    Engine e;
    DramChannel ch(e, testCfg());
    Tick t1 = 0;
    Task a = doAccess(ch, {Dir::Read, 80770, 1}, t1, e);
    e.run();
    EXPECT_NEAR(ch.utilization(e.now() * 2), 0.5, 0.01);
    EXPECT_NEAR(ch.utilization(e.now()), 1.0, 0.01);
}

} // namespace
