#include <gtest/gtest.h>

#include <numeric>

#include "mem/hostmem.hh"

namespace {

using rsn::Addr;
using rsn::mem::HostMemory;

TEST(HostMem, AllocReturnsAlignedDisjointRegions)
{
    HostMemory m(false);
    Addr a = m.alloc(100, "a");
    Addr b = m.alloc(200, "b");
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100 * 4);
    EXPECT_TRUE(m.contains(a));
    EXPECT_TRUE(m.contains(b));
    EXPECT_EQ(m.regionName(a), "a");
    EXPECT_EQ(m.regionName(b + 4), "b");
}

TEST(HostMem, UnmappedAddressIsNotContained)
{
    HostMemory m(false);
    Addr a = m.alloc(16, "a");
    EXPECT_FALSE(m.contains(a + 16 * 4));
    EXPECT_FALSE(m.contains(0));
}

TEST(HostMem, TimingModeReadsReturnEmpty)
{
    HostMemory m(false);
    Addr a = m.alloc(64, "a");
    EXPECT_TRUE(m.readBlock(a, 8, 4, 4).empty());
}

TEST(HostMem, FunctionalWriteThenReadRoundTrips)
{
    HostMemory m(true);
    Addr a = m.alloc(64, "t");  // 8x8 matrix
    std::vector<float> block = {1, 2, 3, 4, 5, 6};  // 2 rows x 3 cols
    // Write at row 2, col 1 of an 8-wide matrix: addr + (2*8+1)*4.
    Addr at = a + (2 * 8 + 1) * 4;
    m.writeBlock(at, 8, 2, 3, block);
    auto back = m.readBlock(at, 8, 2, 3);
    EXPECT_EQ(back, block);
    // Neighbouring elements stay zero.
    auto row = m.readBlock(a + 2 * 8 * 4, 8, 1, 8);
    EXPECT_FLOAT_EQ(row[0], 0.f);
    EXPECT_FLOAT_EQ(row[1], 1.f);
    EXPECT_FLOAT_EQ(row[4], 0.f);
}

TEST(HostMem, FillAndReadRegion)
{
    HostMemory m(true);
    Addr a = m.alloc(16, "r");
    std::vector<float> vals(16);
    std::iota(vals.begin(), vals.end(), 0.f);
    m.fillRegion(a, vals);
    EXPECT_EQ(m.readRegion(a), vals);
}

TEST(HostMem, PitchedReadSkipsBetweenRows)
{
    HostMemory m(true);
    Addr a = m.alloc(32, "p");  // 4x8
    std::vector<float> all(32);
    std::iota(all.begin(), all.end(), 0.f);
    m.fillRegion(a, all);
    auto col01 = m.readBlock(a, 8, 4, 2);
    EXPECT_EQ(col01, (std::vector<float>{0, 1, 8, 9, 16, 17, 24, 25}));
}

TEST(HostMem, AllocatedBytesAccumulates)
{
    HostMemory m(false);
    m.alloc(16, "x");
    auto before = m.allocatedBytes();
    m.alloc(16, "y");
    EXPECT_GT(m.allocatedBytes(), before);
}

} // namespace
