#include <gtest/gtest.h>

#include <numeric>

#include "mem/hostmem.hh"

namespace {

using rsn::Addr;
using rsn::mem::HostMemory;

TEST(HostMem, AllocReturnsAlignedDisjointRegions)
{
    HostMemory m(false);
    Addr a = m.alloc(100, "a");
    Addr b = m.alloc(200, "b");
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100 * 4);
    EXPECT_TRUE(m.contains(a));
    EXPECT_TRUE(m.contains(b));
    EXPECT_EQ(m.regionName(a), "a");
    EXPECT_EQ(m.regionName(b + 4), "b");
}

TEST(HostMem, UnmappedAddressIsNotContained)
{
    HostMemory m(false);
    Addr a = m.alloc(16, "a");
    EXPECT_FALSE(m.contains(a + 16 * 4));
    EXPECT_FALSE(m.contains(0));
}

TEST(HostMem, TimingModeReadsReturnEmpty)
{
    HostMemory m(false);
    Addr a = m.alloc(64, "a");
    EXPECT_TRUE(m.readBlock(a, 8, 4, 4).empty());
}

TEST(HostMem, FunctionalWriteThenReadRoundTrips)
{
    HostMemory m(true);
    Addr a = m.alloc(64, "t");  // 8x8 matrix
    std::vector<float> block = {1, 2, 3, 4, 5, 6};  // 2 rows x 3 cols
    // Write at row 2, col 1 of an 8-wide matrix: addr + (2*8+1)*4.
    Addr at = a + (2 * 8 + 1) * 4;
    m.writeBlock(at, 8, 2, 3, block);
    auto back = m.readBlock(at, 8, 2, 3);
    EXPECT_EQ(back, block);
    // Neighbouring elements stay zero.
    auto row = m.readBlock(a + 2 * 8 * 4, 8, 1, 8);
    EXPECT_FLOAT_EQ(row[0], 0.f);
    EXPECT_FLOAT_EQ(row[1], 1.f);
    EXPECT_FLOAT_EQ(row[4], 0.f);
}

TEST(HostMem, FillAndReadRegion)
{
    HostMemory m(true);
    Addr a = m.alloc(16, "r");
    std::vector<float> vals(16);
    std::iota(vals.begin(), vals.end(), 0.f);
    m.fillRegion(a, vals);
    EXPECT_EQ(m.readRegion(a), vals);
}

TEST(HostMem, PitchedReadSkipsBetweenRows)
{
    HostMemory m(true);
    Addr a = m.alloc(32, "p");  // 4x8
    std::vector<float> all(32);
    std::iota(all.begin(), all.end(), 0.f);
    m.fillRegion(a, all);
    auto col01 = m.readBlock(a, 8, 4, 2);
    EXPECT_EQ(col01, (std::vector<float>{0, 1, 8, 9, 16, 17, 24, 25}));
}

TEST(HostMem, StridedAndContiguousRoundTripsAgree)
{
    // The fast path (ISSUE 5): pitch == cols collapses to one block
    // memcpy, strided windows to one memcpy per row. Both must move
    // exactly the same elements as the old element-wise loops — write
    // a strided window, read it back strided and embedded in full
    // rows, and check the gap columns were never touched.
    HostMemory m(true);
    const std::uint32_t kRows = 6, kCols = 5, kPitch = 12;
    Addr base = m.alloc(kRows * kPitch, "mat");
    std::vector<float> backdrop(kRows * kPitch);
    std::iota(backdrop.begin(), backdrop.end(), 100.f);
    m.fillRegion(base, backdrop);

    std::vector<float> block(kRows * kCols);
    std::iota(block.begin(), block.end(), 0.f);
    Addr at = base + 2 * sizeof(float);  // column offset 2
    m.writeBlock(at, kPitch, kRows, kCols, block);

    // Strided read-back returns the block exactly.
    EXPECT_EQ(m.readBlock(at, kPitch, kRows, kCols), block);
    // readBlockInto agrees with readBlock.
    std::vector<float> into(kRows * kCols, -1.f);
    m.readBlockInto(at, kPitch, kRows, kCols, into.data());
    EXPECT_EQ(into, block);

    // Gap columns kept their backdrop values.
    auto whole = m.readRegion(base);
    for (std::uint32_t r = 0; r < kRows; ++r)
        for (std::uint32_t c = 0; c < kPitch; ++c) {
            const std::size_t i = std::size_t(r) * kPitch + c;
            if (c >= 2 && c < 2 + kCols)
                EXPECT_FLOAT_EQ(whole[i], block[r * kCols + (c - 2)]);
            else
                EXPECT_FLOAT_EQ(whole[i], backdrop[i]) << r << "," << c;
        }

    // Dense round trip (pitch == cols): the single-block-memcpy path.
    Addr dense = m.alloc(kRows * kCols, "dense");
    m.writeBlock(dense, kCols, kRows, kCols, block);
    EXPECT_EQ(m.readBlock(dense, kCols, kRows, kCols), block);
}

TEST(HostMem, ZeroSizedBlocksAreNoOps)
{
    // rows == 0 / cols == 0 must not compute a bounds window (the
    // rows - 1 term would underflow) or touch memory.
    HostMemory m(true);
    Addr a = m.alloc(16, "z");
    std::vector<float> vals(16, 7.f);
    m.fillRegion(a, vals);
    m.writeBlock(a, 4, 0, 4, nullptr, 0);
    m.writeBlock(a, 4, 4, 0, nullptr, 0);
    float sentinel = -1.f;
    m.readBlockInto(a, 4, 0, 4, &sentinel);
    m.readBlockInto(a, 4, 4, 0, &sentinel);
    EXPECT_FLOAT_EQ(sentinel, -1.f);
    EXPECT_EQ(m.readRegion(a), vals);
}

TEST(HostMem, AllocatedBytesAccumulates)
{
    HostMemory m(false);
    m.alloc(16, "x");
    auto before = m.allocatedBytes();
    m.alloc(16, "y");
    EXPECT_GT(m.allocatedBytes(), before);
}

} // namespace
