#include <gtest/gtest.h>

#include "mem/layout.hh"

namespace {

using rsn::mem::BlockedLayout;
using rsn::mem::burstsFor;
using rsn::mem::LayoutKind;
using rsn::mem::TileAccess;
using rsn::mem::tileBytes;

TEST(Layout, FullWidthRowMajorIsOneBurst)
{
    TileAccess a{1024, 512, 0, 0, 128, 512};
    EXPECT_EQ(burstsFor(a, LayoutKind::RowMajor), 1u);
}

TEST(Layout, PartialRowMajorPaysPerRow)
{
    TileAccess a{1024, 1024, 0, 0, 768, 128};
    EXPECT_EQ(burstsFor(a, LayoutKind::RowMajor), 768u);
}

TEST(Layout, BlockedTilePaysPerBlock)
{
    // 768x128 tile over 128x64 blocks: 6 x 2 = 12 blocks.
    TileAccess a{3072, 1024, 0, 0, 768, 128};
    EXPECT_EQ(burstsFor(a, LayoutKind::Blocked), 12u);
}

TEST(Layout, BlockedUnalignedTileTouchesExtraBlocks)
{
    // Offset by half a block in each dimension: spans one extra block row
    // and column.
    TileAccess a{3072, 1024, 64, 32, 768, 128};
    EXPECT_EQ(burstsFor(a, LayoutKind::Blocked), 7u * 3u);
}

TEST(Layout, BlockedBeatsRowMajorForPaperTiles)
{
    // The paper's out-stationary LHS tile (768x128 of a 3072x1024 matrix).
    TileAccess a{3072, 1024, 0, 0, 768, 128};
    EXPECT_LT(burstsFor(a, LayoutKind::Blocked),
              burstsFor(a, LayoutKind::RowMajor));
}

TEST(Layout, EmptyTileHasNoBursts)
{
    TileAccess a{1024, 1024, 0, 0, 0, 0};
    EXPECT_EQ(burstsFor(a, LayoutKind::RowMajor), 0u);
    EXPECT_EQ(burstsFor(a, LayoutKind::Blocked), 0u);
}

TEST(Layout, TileBytesCountsFp32)
{
    TileAccess a{1024, 1024, 0, 0, 768, 128};
    EXPECT_EQ(tileBytes(a), 768u * 128u * 4u);
}

TEST(Layout, CustomBlockShape)
{
    BlockedLayout bl{32, 32};
    TileAccess a{256, 256, 0, 0, 64, 64};
    EXPECT_EQ(burstsFor(a, LayoutKind::Blocked, bl), 4u);
}

class LayoutProperty : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(LayoutProperty, BlockedNeverWorseThanPerElementAndCoversTile)
{
    auto [rows, cols] = GetParam();
    TileAccess a{4096, 4096, 128, 64, std::uint32_t(rows),
                 std::uint32_t(cols)};
    auto blocked = burstsFor(a, LayoutKind::Blocked);
    // Sanity bounds: at least 1 burst, at most one per element.
    EXPECT_GE(blocked, 1u);
    EXPECT_LE(blocked, std::uint32_t(rows) * cols);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayoutProperty,
                         ::testing::Combine(::testing::Values(1, 17, 128,
                                                              768),
                                            ::testing::Values(1, 63, 64,
                                                              1024)));

} // namespace
