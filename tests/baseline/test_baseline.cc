#include <gtest/gtest.h>

#include "baseline/charm.hh"
#include "baseline/gpu.hh"
#include "baseline/vector_overlay.hh"
#include "lib/model.hh"

namespace {

using namespace rsn;
using namespace rsn::baseline;

// ------------------------------------------------------ vector overlay --

TEST(VectorOverlay, App1HasNoAvoidableStalls)
{
    VectorOverlay ov;
    auto r = ov.run(fig6App1());
    EXPECT_EQ(r.instructions, 3u);
    // LD(25) -> ADD(13 after LD) -> ST(25): pure dependency chain.
    EXPECT_GT(r.stall_cycles, 0u);  // RAW waits only
}

TEST(VectorOverlay, App2WarHazardsSerialize)
{
    VectorOverlay ov;
    auto app1 = ov.run(fig6App1());
    auto app2 = ov.run(fig6App2());
    // App2 moves 3x the data; WAR hazards on v0 keep it from
    // pipelining and pile up far more stall cycles than App1.
    EXPECT_GT(app2.cycles, app1.cycles * 2);
    EXPECT_GT(app2.stall_cycles, app1.stall_cycles * 2);
}

TEST(VectorOverlay, MoreRegistersEnableRenamingEffect)
{
    // With explicit extra registers a compiler could avoid WAR stalls;
    // verify the model honours register indices by rewriting App2 to
    // use distinct registers (the "extra load register" the paper
    // mentions as a costly fix).
    std::vector<VInstr> renamed = {
        {VOp::Load, 0, -1, -1, 100},  {VOp::Add, 2, 0, 1, 100},
        {VOp::Store, -1, 2, -1, 100},
        {VOp::Load, 3, -1, -1, 100},  {VOp::Store, -1, 3, -1, 100},
        {VOp::Load, 4, -1, -1, 100},  {VOp::Add, 5, 4, 1, 100},
        {VOp::Store, -1, 5, -1, 100},
    };
    VectorOverlayConfig cfg;
    cfg.num_regs = 6;
    VectorOverlay big(cfg);
    auto with_war = big.run(fig6App2());
    auto without_war = big.run(renamed);
    EXPECT_LT(without_war.cycles, with_war.cycles);
}

TEST(VectorOverlay, InstrToStringIsReadable)
{
    EXPECT_EQ(fig6App1()[0].toString(), "LD v0, 100");
    EXPECT_NE(fig6App1()[1].toString().find("ADD"), std::string::npos);
}

// -------------------------------------------------------------- CHARM --

TEST(Charm, CalibrationMatchesPublishedBertAnchors)
{
    CharmModel charm;
    auto group = lib::bertLargeEncoder(6, 512, false, 1);
    auto at6 = charm.run(group, 6);
    // Paper: best latency 110 ms at B=6.
    EXPECT_NEAR(at6.latency_ms, 110.0, 25.0);
    auto at24 = charm.run(group, 24);
    // Paper: throughput saturates near 102.7 tasks/s at B=24.
    EXPECT_NEAR(at24.throughput_tasks, 102.7, 20.0);
}

TEST(Charm, ThroughputImprovesWithInterleavedGroups)
{
    CharmModel charm;
    auto group = lib::bertLargeEncoder(6, 512, false, 1);
    auto small = charm.run(group, 6);
    auto big = charm.run(group, 24);
    EXPECT_GT(big.throughput_tasks, small.throughput_tasks);
    EXPECT_GT(big.latency_ms, small.latency_ms);
}

TEST(Charm, ScoresSpillDominatesDdrTraffic)
{
    CharmModel charm;
    auto group = lib::bertLargeEncoder(6, 512, false, 1);
    auto r = charm.run(group, 6);
    // 96 heads x 512x512 scores x 2 (store + load) ~ 200 MB plus
    // activations/weights.
    EXPECT_GT(r.ddr_traffic_mb, 250.0);
}

TEST(Charm, SquareGemmMatchesPublishedBand)
{
    CharmModel charm;
    EXPECT_NEAR(charm.squareGemmGflops(1024), 1103.0, 1600.0);
    EXPECT_NEAR(charm.squareGemmGflops(3072), 2850.0, 700.0);
    EXPECT_NEAR(charm.squareGemmGflops(6144), 3278.0, 700.0);
    // Monotonic in problem size until DDR-bound.
    EXPECT_LT(charm.squareGemmGflops(1024),
              charm.squareGemmGflops(3072));
}

// ---------------------------------------------------------------- GPU --

TEST(Gpu, Table10RowsPresent)
{
    auto gpus = table10Gpus();
    ASSERT_GE(gpus.size(), 5u);
    EXPECT_EQ(gpus[0].name, "T4");
    EXPECT_DOUBLE_EQ(gpus[0].peak_tflops, 8.1);
}

TEST(Gpu, LatencyScalesWithBatch)
{
    GpuModel t4(table10Gpus()[0]);
    double b1 = t4.bertLatencyMs(384, 1);
    double b8 = t4.bertLatencyMs(384, 8);
    EXPECT_GT(b8, b1 * 3);   // sublinear at small batch...
    EXPECT_LT(b8, b1 * 10);  // ...but bounded.
}

TEST(Gpu, ModelLandsNearPaperLatencies)
{
    for (const auto &spec : table10Gpus()) {
        GpuModel gpu(spec);
        double model_b8 = gpu.bertLatencyMs(384, 8);
        double paper_b8 = spec.paper_latency_ms[3];
        // Within 3x either way — it is a roofline, not a measurement
        // (the L4 in particular throttles FP32 under its 72 W cap).
        EXPECT_GT(model_b8, paper_b8 / 3) << spec.name;
        EXPECT_LT(model_b8, paper_b8 * 3) << spec.name;
    }
}

TEST(Gpu, FasterGpuIsFaster)
{
    auto gpus = table10Gpus();
    GpuModel t4(gpus[0]), a100(gpus[2]);
    EXPECT_LT(a100.bertLatencyMs(384, 8), t4.bertLatencyMs(384, 8));
}

TEST(Gpu, DramTrafficExceedsRsnXnn)
{
    // Paper: T4 moves 31 GB vs RSN-XNN's 12 GB (2.6x).
    GpuModel t4(table10Gpus()[0]);
    EXPECT_GT(t4.bertDramGb(384, 8), 20.0);
}

TEST(Gpu, DynamicEfficiencyExceedsOperating)
{
    GpuModel l4(table10Gpus()[4]);
    EXPECT_GT(l4.efficiencySeqPerJ(384, 8, true),
              l4.efficiencySeqPerJ(384, 8, false));
}

} // namespace
