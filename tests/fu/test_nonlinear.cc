#include <gtest/gtest.h>

#include <cmath>

#include "fu/nonlinear.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;

TEST(Softmax, MatchesReferenceOnRandomTiles)
{
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
        auto m = ref::randomMatrix(16, 32, seed, 4.0f);
        auto tile = m.data;
        fu::softmaxRows(tile, 16, 32);
        auto expect = ref::softmax(m);
        for (std::size_t i = 0; i < tile.size(); ++i)
            EXPECT_NEAR(tile[i], expect.data[i], 1e-6);
    }
}

TEST(Softmax, RowsSumToOne)
{
    auto m = ref::randomMatrix(8, 64, 3, 10.0f);
    auto tile = m.data;
    fu::softmaxRows(tile, 8, 64);
    for (int r = 0; r < 8; ++r) {
        double sum = 0;
        for (int c = 0; c < 64; ++c)
            sum += tile[r * 64 + c];
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Softmax, StableForLargeLogits)
{
    // Without max subtraction exp(500) overflows to inf.
    std::vector<float> tile = {500.f, 499.f, 0.f, -500.f};
    fu::softmaxRows(tile, 1, 4);
    EXPECT_FALSE(std::isnan(tile[0]));
    EXPECT_GT(tile[0], tile[1]);
    EXPECT_NEAR(tile[0] + tile[1] + tile[2] + tile[3], 1.0f, 1e-5);
}

TEST(Softmax, UniformInputGivesUniformOutput)
{
    std::vector<float> tile(8, 3.25f);
    fu::softmaxRows(tile, 1, 8);
    for (float v : tile)
        EXPECT_NEAR(v, 0.125f, 1e-6);
}

TEST(Softmax, DegenerateShapesAreNoOps)
{
    // Regression (ISSUE 5): softmaxRows used to seed the row max from
    // row[0] before checking cols, reading out of bounds for
    // zero-width rows. Degenerate shapes must be no-ops.
    fu::softmaxRows(nullptr, 0, 8);
    fu::softmaxRows(nullptr, 8, 0);
    std::vector<float> sentinel = {3.f, 4.f};
    fu::softmaxRows(sentinel.data(), 0, 2);
    fu::softmaxRows(sentinel.data(), 2, 0);
    EXPECT_FLOAT_EQ(sentinel[0], 3.f);
    EXPECT_FLOAT_EQ(sentinel[1], 4.f);
}

TEST(Gelu, MatchesReference)
{
    auto m = ref::randomMatrix(8, 8, 17, 3.0f);
    auto tile = m.data;
    fu::geluInplace(tile);
    auto expect = ref::gelu(m);
    for (std::size_t i = 0; i < tile.size(); ++i)
        EXPECT_NEAR(tile[i], expect.data[i], 1e-5);
}

TEST(Gelu, KnownValues)
{
    std::vector<float> tile = {0.f, 1.f, -1.f, 10.f, -10.f};
    fu::geluInplace(tile);
    EXPECT_FLOAT_EQ(tile[0], 0.f);
    EXPECT_NEAR(tile[1], 0.8413447f, 1e-5);
    EXPECT_NEAR(tile[2], -0.1586553f, 1e-5);
    EXPECT_NEAR(tile[3], 10.f, 1e-4);   // saturates to identity
    EXPECT_NEAR(tile[4], 0.f, 1e-4);    // saturates to zero
}

TEST(Layernorm, ZeroMeanUnitVariance)
{
    auto m = ref::randomMatrix(4, 128, 5, 7.0f);
    auto tile = m.data;
    fu::layernormRows(tile, 4, 128);
    for (int r = 0; r < 4; ++r) {
        double mean = 0, var = 0;
        for (int c = 0; c < 128; ++c)
            mean += tile[r * 128 + c];
        mean /= 128;
        for (int c = 0; c < 128; ++c) {
            double d = tile[r * 128 + c] - mean;
            var += d * d;
        }
        var /= 128;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Layernorm, WithScaleShiftMatchesReference)
{
    auto m = ref::randomMatrix(4, 16, 21, 2.0f);
    std::vector<float> gamma(16), beta(16);
    for (int i = 0; i < 16; ++i) {
        gamma[i] = 0.5f + 0.1f * i;
        beta[i] = -0.3f + 0.05f * i;
    }
    auto tile = m.data;
    fu::layernormRows(tile, 4, 16);
    fu::scaleShiftRows(tile, 4, 16, gamma, beta);
    auto expect = ref::layernorm(m, gamma, beta);
    for (std::size_t i = 0; i < tile.size(); ++i)
        EXPECT_NEAR(tile[i], expect.data[i], 1e-4);
}

TEST(Layernorm, ConstantRowDoesNotBlowUp)
{
    std::vector<float> tile(16, 2.5f);
    fu::layernormRows(tile, 1, 16);
    for (float v : tile)
        EXPECT_NEAR(v, 0.f, 1e-2);  // eps prevents divide-by-zero
}

TEST(Layernorm, LargeMeanRowsMatchReference)
{
    // Regression (ISSUE 5): the old single-pass E[x^2] - E[x]^2
    // variance cancels catastrophically when the row mean dwarfs the
    // spread — for mean ~1e6 rows it went negative/garbage. The
    // two-pass form must agree with ref_math (itself two-pass) to
    // normal tolerance, and large constant rows must normalize to
    // exactly zero deviation.
    std::uint32_t rows = 3, cols = 128;
    std::vector<float> gamma(cols, 1.f), beta(cols, 0.f);
    for (float mean : {1e4f, 1e6f}) {
        ref::Matrix m(rows, cols);
        std::uint32_t s = 1;
        for (auto &x : m.data) {
            s = s * 1664525u + 1013904223u;  // LCG noise in [-1, 1)
            x = mean + (float(s >> 8) / float(1u << 23) - 1.0f);
        }
        auto tile = m.data;
        fu::layernormRows(tile, rows, cols);
        auto expect = ref::layernorm(m, gamma, beta);
        for (std::size_t i = 0; i < tile.size(); ++i) {
            ASSERT_TRUE(std::isfinite(tile[i])) << "mean " << mean;
            ASSERT_NEAR(tile[i], expect.data[i], 1e-4)
                << "mean " << mean << " elem " << i;
        }
    }
    // All-constant large row: variance is exactly zero, outputs too.
    std::vector<float> flat(64, 1e4f);
    fu::layernormRows(flat, 1, 64);
    for (float v : flat)
        EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Layernorm, DegenerateShapesAreNoOps)
{
    fu::layernormRows(nullptr, 0, 8);
    fu::layernormRows(nullptr, 8, 0);
}

TEST(AddInplace, ElementwiseSum)
{
    std::vector<float> a = {1, 2, 3};
    std::vector<float> b = {10, 20, 30};
    fu::addInplace(a, b);
    EXPECT_FLOAT_EQ(a[0], 11.f);
    EXPECT_FLOAT_EQ(a[2], 33.f);
}

TEST(RefMath, MatmulBtEqualsMatmulWithTranspose)
{
    auto a = ref::randomMatrix(5, 7, 1);
    auto b = ref::randomMatrix(9, 7, 2);
    auto viaT = ref::matmul(a, ref::transpose(b));
    auto direct = ref::matmulBt(a, b);
    EXPECT_TRUE(ref::allclose(direct, viaT, 1e-5f, 1e-6f));
}

TEST(RefMath, RandomMatrixIsDeterministicPerSeed)
{
    auto a = ref::randomMatrix(4, 4, 42);
    auto b = ref::randomMatrix(4, 4, 42);
    auto c = ref::randomMatrix(4, 4, 43);
    EXPECT_EQ(a.data, b.data);
    EXPECT_NE(a.data, c.data);
}

TEST(RefMath, AllcloseDetectsMismatch)
{
    ref::Matrix a(2, 2), b(2, 2);
    a.data = {1, 2, 3, 4};
    b.data = {1, 2, 3, 4.5f};
    std::string why;
    EXPECT_FALSE(ref::allclose(a, b, 1e-3f, 1e-3f, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_NEAR(ref::maxAbsDiff(a, b), 0.5f, 1e-6);
}

} // namespace
