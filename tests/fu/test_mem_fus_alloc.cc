/**
 * @file
 * Counting-allocator and pool-traffic verification of the zero-copy
 * Mem FU staging path (ISSUE 3), mirroring tests/sim/test_stream_alloc.cc
 * one level up: after warmup, the steady-state per-tile path through the
 * scratchpad FUs — load (adopt the pooled payload), slice (refcount-
 * aliased views), send, receive-and-assemble, fuse in place — performs
 * **zero heap allocations per tile**. Pool statistics additionally pin
 * the zero-*copy* properties: loads adopt instead of acquiring, slices
 * alias instead of copying.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/dtype.hh"
#include "fu/mem_fus.hh"
#include "fu_harness.hh"
#include "sim/tile_pool.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// Aligned-allocation overloads: TilePool allocates its buffers with
// ::operator new(size, std::align_val_t{64}) (cache-line-aligned
// tiles), which does NOT route through the plain overload above — it
// must be intercepted separately or pooled-buffer traffic becomes
// invisible to the counter and the alloc-free pins go blind.
void *
operator new(std::size_t n, std::align_val_t al)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, std::size_t(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    operator delete(p, std::align_val_t{1});
}

void
operator delete[](void *p, std::align_val_t al) noexcept
{
    operator delete(p, al);
}

void
operator delete[](void *p, std::size_t, std::align_val_t al) noexcept
{
    operator delete(p, al);
}


namespace {

using namespace rsn;
using rsn::test::FuHarness;

constexpr FuId kDdr{FuType::Ddr, 0};
constexpr FuId kLpddr{FuType::Lpddr, 0};
constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kMeshB{FuType::MeshB, 0};

std::uint64_t
news()
{
    return g_news.load(std::memory_order_relaxed);
}

/** Acquire-fill-publish one rows x cols tile into @p s (the DDR FU's
 *  producer pattern: the load lands straight in a pooled tile). */
sim::Task
feedTile(sim::Stream &s, std::uint32_t rows, std::uint32_t cols)
{
    sim::TileRef t =
        sim::TilePool::instance().acquire(std::uint64_t(rows) * cols);
    float *d = t.mutableData();
    for (std::uint64_t i = 0; i < std::uint64_t(rows) * cols; ++i)
        d[i] = float(i % 97) * 0.25f;
    co_await s.send(sim::makeTileChunk(rows, cols, std::move(t)));
}

/** Drain @p n chunks without storing them (no vector growth). */
sim::Task
drainChunks(sim::Stream &s, int n, double &sink)
{
    for (int i = 0; i < n; ++i) {
        sim::Chunk c = co_await s.recv();
        if (c.hasData())
            sink += c.data.data()[0];
        sink += double(c.bytes());
    }
}

/** Step the engine until @p s has delivered @p target chunks. */
void
runUntilTransferred(sim::Engine &eng, sim::Stream &s,
                    std::uint64_t target)
{
    while (s.chunksTransferred() < target && !eng.idle())
        eng.run(eng.now() + 32);
    ASSERT_GE(s.chunksTransferred(), target) << "pipeline stalled";
}

/**
 * The full staging pipeline: a pooled tile is loaded into MemA, leaves
 * as 128 row-slice views toward "the mesh", is assembled and
 * softmax-fused by MemC (wired to receive MemA's output the way it
 * receives its partner MME's), and stored as 64 slices toward DDR.
 * Two steady-state windows are measured: mid slice/send/recv/assemble,
 * and mid store. Both must be allocation-free.
 */
TEST(MemStagingAlloc, LoadSliceSendRecvFuseStoreIsAllocationFree)
{
    constexpr std::uint32_t kRows = 256, kCols = 64;
    FuHarness h;
    fu::MemAFu ma(h.eng, {FuType::MemA, 0}, kMeshA);
    fu::MemCFu mc(h.eng, {FuType::MemC, 0}, /*mme_src=*/kMeshA,
                  /*ddr=*/kDdr, 277.0);
    sim::Stream &feed = h.input(ma, kDdr, 4096.0, 4);
    sim::Stream &link = h.output(ma, kMeshA, 256.0, 4);
    mc.addInput(kMeshA, &link);
    sim::Stream &store = h.output(mc, kDdr, 256.0, 4);

    isa::MemAUop a_load;
    a_load.rows = kRows;
    a_load.cols = kCols;
    a_load.src = kDdr;
    a_load.load = true;
    isa::MemAUop a_send;
    a_send.rows = kRows;
    a_send.cols = kCols;
    a_send.slices = 128;
    a_send.send = true;

    isa::MemCUop c_recv;
    c_recv.recv = true;
    c_recv.recv_chunks = 128;
    c_recv.softmax = true;
    isa::MemCUop c_store;
    c_store.store = true;
    c_store.send_chunks = 64;

    sim::Task prog_a = h.program(ma, {a_load, a_send});
    sim::Task prog_c = h.program(mc, {c_recv, c_store});
    sim::Task feeder = feedTile(feed, kRows, kCols);
    double sink = 0;
    sim::Task drain = drainChunks(store, 64, sink);
    ma.start();
    mc.start();

    std::uint64_t pool_buffers_before =
        sim::TilePool::instance().buffersAllocated();

    // Window 1: the slice -> send -> recv -> assemble loop. Warmup (FU
    // kernel frames, stream rings, MemC's staging-tile acquire) is over
    // once a handful of slices crossed the link.
    runUntilTransferred(h.eng, link, 16);
    std::uint64_t before = news();
    runUntilTransferred(h.eng, link, 112);
    EXPECT_EQ(news(), before)
        << "slice/send/recv/assemble path allocated per tile";

    // Window 2: the store path — row-slice views of the fused tile
    // leaving toward DDR. The store kernel's frames are part of its
    // warmup; mid-store must be allocation-free.
    runUntilTransferred(h.eng, store, 8);
    before = news();
    runUntilTransferred(h.eng, store, 56);
    EXPECT_EQ(news(), before) << "store path allocated per tile";

    ASSERT_TRUE(h.run());
    EXPECT_EQ(link.chunksTransferred(), 128u);
    EXPECT_EQ(store.chunksTransferred(), 64u);
    EXPECT_GT(sink, 0.0);
    EXPECT_TRUE(prog_a.done() && prog_c.done());

    // Pool growth across the whole run: the feeder's input tile plus
    // MemC's one staging tile — slicing 128 + 64 chunks added nothing.
    EXPECT_LE(sim::TilePool::instance().buffersAllocated() -
                  pool_buffers_before,
              2u);
}

/**
 * MemB's per-tile work is one whole-tile send per kernel, so frames
 * dominate an operator-new count; the zero-copy property is pinned via
 * pool statistics instead: across N tiles, only the producer acquires —
 * loads adopt the payload and sends alias it, so pool acquires do not
 * scale with MemB's work (the old staging code paid one acquire+copy
 * per send on top).
 */
TEST(MemStagingAlloc, MemBLoadAdoptsAndSendAliasesWithoutPoolTraffic)
{
    constexpr int kTiles = 8;
    FuHarness h;
    fu::MemBFu mb(h.eng, {FuType::MemB, 0}, kMeshB);
    sim::Stream &feed = h.input(mb, kLpddr, 1024.0, 2);
    sim::Stream &out = h.output(mb, kMeshB, 1024.0, 2);

    std::vector<isa::Uop> uops;
    for (int i = 0; i < kTiles; ++i) {
        isa::MemBUop load;
        load.rows = 32;
        load.cols = 32;
        load.src = kLpddr;
        load.load = true;
        uops.emplace_back(load);
        isa::MemBUop send;
        send.send = true;
        uops.emplace_back(send);
    }
    sim::Task prog = h.program(mb, std::move(uops));

    std::vector<sim::Chunk> feed_chunks;
    for (int i = 0; i < kTiles; ++i)
        feed_chunks.push_back(
            sim::makeDataChunk(32, 32, rsn::test::iotaData(32, 32), i));
    sim::Task feeder = h.feedChunks(feed, std::move(feed_chunks));
    double sink = 0;
    sim::Task drain = drainChunks(out, kTiles, sink);

    // All producer-side acquires (makeDataChunk above) already happened;
    // from here on the pool must see no traffic at all.
    std::uint64_t acquires_before = sim::TilePool::instance().acquires();
    mb.start();
    ASSERT_TRUE(h.run());
    EXPECT_TRUE(prog.done());
    EXPECT_EQ(out.chunksTransferred(), std::uint64_t(kTiles));
    // MemB did zero pool traffic for kTiles load->send round trips:
    // loads adopted the fed tiles, sends aliased them (the old staging
    // code paid one acquire+copy per send on top of the copy-in).
    EXPECT_EQ(sim::TilePool::instance().acquires() - acquires_before, 0u);
}

/**
 * Multi-chunk MemC assembly is a gather view (ISSUE 4): each arriving
 * chunk payload is adopted as a segment — no staging tile, no copy, no
 * pool traffic — and the fused operator runs per segment in place
 * (sole-owner tiles). The store slices fall inside single segments, so
 * nothing ever materializes: the stored bytes live in the very buffers
 * the producer filled.
 */
TEST(MemStagingAlloc, MultiChunkGatherAssemblyIsZeroCopyAndAllocFree)
{
    constexpr std::uint32_t kChunks = 8, kRows = 16, kCols = 32;
    FuHarness h;
    fu::MemCFu mc(h.eng, {FuType::MemC, 0}, /*mme_src=*/kMeshA,
                  /*ddr=*/kDdr, 277.0);
    sim::Stream &feed = h.input(mc, kMeshA, 4096.0, 8);
    sim::Stream &store = h.output(mc, kDdr, 4096.0, 8);

    isa::MemCUop recv;
    recv.recv = true;
    recv.recv_chunks = kChunks;
    recv.softmax = true;  // fused per segment, in place
    isa::MemCUop st;
    st.store = true;
    st.send_chunks = kChunks;  // slices match segments exactly
    sim::Task prog = h.program(mc, {recv, st});

    // Distinct producer tiles (the MME pattern: one fresh output tile
    // per chunk, released at publish — MemC becomes the sole owner).
    std::vector<sim::Chunk> to_feed;
    std::vector<const float *> fed;
    for (std::uint32_t i = 0; i < kChunks; ++i) {
        sim::TileRef t =
            sim::TilePool::instance().acquire(kRows * kCols);
        fed.push_back(t.data());
        float *d = t.mutableData();
        for (std::uint32_t e = 0; e < kRows * kCols; ++e)
            d[e] = float(e % 13) * 0.5f;
        to_feed.push_back(sim::makeTileChunk(kRows, kCols, std::move(t),
                                             i));
    }
    sim::Task feeder = h.feedChunks(feed, std::move(to_feed));
    std::vector<sim::Chunk> got;
    got.reserve(kChunks);
    sim::Task col = h.collect(store, kChunks, got);

    const std::uint64_t acquires_before =
        sim::TilePool::instance().acquires();
    const std::uint64_t news_before = news();
    mc.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), std::size_t(kChunks));
    // Assembly + fuse + store did zero pool traffic: the gather adopted
    // every payload, softmax ran in place on each sole-owner segment,
    // and the store slices alias the producers' buffers directly.
    EXPECT_EQ(sim::TilePool::instance().acquires() - acquires_before,
              0u);
    for (std::uint32_t i = 0; i < kChunks; ++i)
        EXPECT_EQ(got[i].data.data(), fed[i])
            << "store chunk " << i << " is not the producer's buffer";
    // The whole pipeline allocates only warmup state (kernel coroutine
    // frames, stream/channel ring growth) — nothing that scales with
    // the kChunks tiles that flowed through. The bound is the measured
    // warmup cost with headroom that would still catch 1 alloc/tile.
    EXPECT_LE(news() - news_before, 16u);
    // Softmax actually ran: each row sums to ~1.
    double row0 = 0;
    for (std::uint32_t c = 0; c < kCols; ++c)
        row0 += got[0].at(0, c);
    EXPECT_NEAR(row0, 1.0, 1e-4);
}

/**
 * The typed-tile variant of the full staging pipeline (ISSUE 10): a
 * bf16 tile is loaded, sliced (byte-window views — still zero-copy),
 * assembled by MemC, upconverted once for the fused softmax (the
 * accumulate-in-FP32 contract), and stored back as bf16 slices. Every
 * conversion temporary is a pooled tile, so after one full tile has
 * warmed the pool's buckets, a second identical tile must flow through
 * load -> slice -> send -> recv -> upconvert -> fuse -> downconvert ->
 * store with **zero heap allocations**.
 */
TEST(MemStagingAlloc, TypedLoadSliceFuseStorePipelineIsAllocFreeWarm)
{
    constexpr std::uint32_t kRows = 256, kCols = 64;
    constexpr std::uint64_t kElems = std::uint64_t(kRows) * kCols;
    FuHarness h;
    fu::MemAFu ma(h.eng, {FuType::MemA, 0}, kMeshA);
    fu::MemCFu mc(h.eng, {FuType::MemC, 0}, /*mme_src=*/kMeshA,
                  /*ddr=*/kDdr, 277.0);
    sim::Stream &feed = h.input(ma, kDdr, 4096.0, 4);
    sim::Stream &link = h.output(ma, kMeshA, 256.0, 4);
    mc.addInput(kMeshA, &link);
    sim::Stream &store = h.output(mc, kDdr, 256.0, 4);

    isa::MemAUop a_load;
    a_load.rows = kRows;
    a_load.cols = kCols;
    a_load.src = kDdr;
    a_load.load = true;
    isa::MemAUop a_send;
    a_send.rows = kRows;
    a_send.cols = kCols;
    a_send.slices = 128;
    a_send.send = true;

    isa::MemCUop c_recv;
    c_recv.recv = true;
    c_recv.recv_chunks = 128;
    c_recv.softmax = true;  // forces the FP32 upconvert pass
    isa::MemCUop c_store;
    c_store.store = true;
    c_store.send_chunks = 64;
    c_store.out_dtype = Dtype::Bf16;  // downconvert on the way out

    sim::Task prog_a = h.program(ma, {a_load, a_send});
    sim::Task prog_c = h.program(mc, {c_recv, c_store});

    std::vector<sim::Chunk> to_feed;
    {
        sim::TileRef t =
            sim::TilePool::instance().acquire(kElems, Dtype::Bf16);
        auto *d = static_cast<std::uint16_t *>(t.mutableRaw());
        for (std::uint64_t i = 0; i < kElems; ++i)
            d[i] = rsn::f32ToBf16(float(i % 97) * 0.25f);
        to_feed.push_back(
            sim::makeTileChunk(kRows, kCols, std::move(t)));
    }
    sim::Task feeder = h.feedChunks(feed, std::move(to_feed));

    // Drain inline (no chunk retention: held refs would pin the
    // conversion tiles on the pool's live side), checking the stored
    // chunks really are byte-true bf16.
    std::uint64_t stored_bytes = 0;
    int wrong_dtype = 0;
    double sink = 0;
    auto drain = [&](int n) -> sim::Task {
        for (int i = 0; i < n; ++i) {
            sim::Chunk c = co_await store.recv();
            if (c.dtype != Dtype::Bf16)
                ++wrong_dtype;
            stored_bytes += c.bytes();
            if (c.hasData())
                sink += c.at(0, 0);  // upconverting read
        }
    };
    sim::Task dr = drain(64);
    ma.start();
    mc.start();

    // Window 1: bf16 slice -> send -> recv -> assemble. The slices are
    // byte-window views of the loaded tile and the gather knits them
    // back into one segment (tryExtend is dtype-agnostic), so the warm
    // loop is as allocation-free as the FP32 pipeline's.
    runUntilTransferred(h.eng, link, 16);
    std::uint64_t before = news();
    runUntilTransferred(h.eng, link, 112);
    EXPECT_EQ(news(), before)
        << "typed slice/send/recv/assemble path allocated per tile";

    // Between the windows: the one FP32 upconvert pass for the fused
    // softmax (a single pool acquire — the gather is one segment).
    // Window 2: the store path, where every slice downconverts to bf16
    // through a pooled conversion tile. The first few slices warm that
    // bucket (in-flight depth); mid-store must then reuse, not allocate.
    runUntilTransferred(h.eng, store, 8);
    before = news();
    runUntilTransferred(h.eng, store, 56);
    EXPECT_EQ(news(), before)
        << "typed downconverting store path allocated per tile";

    ASSERT_TRUE(h.run());
    EXPECT_TRUE(prog_a.done() && prog_c.done());
    EXPECT_EQ(store.chunksTransferred(), 64u);
    EXPECT_EQ(wrong_dtype, 0) << "store emitted a non-bf16 chunk";
    // Byte-true wire accounting: 256x64 elements x 2 bytes.
    EXPECT_EQ(stored_bytes, kElems * 2);
    EXPECT_GT(sink, 0.0);  // softmax output, all finite positives
}

/**
 * A single-chunk MemC receive adopts the producer's tile outright: the
 * bytes the store emits live in the very buffer the producer filled
 * (full zero-copy through MemC when no operator fuses).
 */
TEST(MemStagingAlloc, MemCSingleChunkAdoptionIsZeroCopyEndToEnd)
{
    FuHarness h;
    fu::MemCFu mc(h.eng, {FuType::MemC, 0}, /*mme_src=*/kMeshA,
                  /*ddr=*/kDdr, 277.0);
    sim::Stream &feed = h.input(mc, kMeshA, 1024.0, 2);
    sim::Stream &store = h.output(mc, kDdr, 1024.0, 2);

    isa::MemCUop recv;
    recv.recv = true;
    recv.recv_chunks = 1;
    isa::MemCUop st;
    st.store = true;
    st.send_chunks = 2;
    sim::Task prog = h.program(mc, {recv, st});

    sim::TileRef t = sim::TilePool::instance().acquire(16 * 8);
    const float *fed_payload = t.data();
    float *d = t.mutableData();
    for (int i = 0; i < 16 * 8; ++i)
        d[i] = float(i);
    std::vector<sim::Chunk> to_feed;
    to_feed.push_back(sim::makeTileChunk(16, 8, std::move(t)));
    sim::Task feeder = h.feedChunks(feed, std::move(to_feed));

    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(store, 2, got);
    std::uint64_t acquires_before = sim::TilePool::instance().acquires();
    mc.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), 2u);
    // The store slices alias the producer's buffer directly.
    EXPECT_EQ(got[0].data.data(), fed_payload);
    EXPECT_EQ(got[1].data.data(), fed_payload + 8 * 8);
    EXPECT_FLOAT_EQ(got[1].at(0, 0), 64.f);
    // And MemC acquired nothing on the way.
    EXPECT_EQ(sim::TilePool::instance().acquires() - acquires_before, 0u);
}

} // namespace
