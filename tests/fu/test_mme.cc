#include <gtest/gtest.h>

#include "fu/mme.hh"
#include "ref/ref_math.hh"
#include "fu_harness.hh"

namespace {

using namespace rsn;
using rsn::test::FuHarness;

constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kMeshB{FuType::MeshB, 0};
constexpr FuId kMemC{FuType::MemC, 0};

sim::Chunk
matChunk(const ref::Matrix &m, std::uint32_t tag = 0)
{
    return sim::makeDataChunk(m.rows, m.cols, m.data, tag);
}

struct MmeRig {
    FuHarness h;
    fu::MmeFu mme;
    sim::Stream &lhs;
    sim::Stream &rhs;
    sim::Stream &out;

    explicit MmeRig(fu::AieModelParams p = {})
        : mme(h.eng, FuId{FuType::Mme, 0}, fu::AieModel(p), kMeshA,
              kMeshB, kMemC),
          lhs(h.input(mme, kMeshA)), rhs(h.input(mme, kMeshB)),
          out(h.output(mme, kMemC))
    {
    }
};

TEST(AieModel, MatchesPaperThroughputFor32x32x32)
{
    fu::AieModel m;
    EXPECT_NEAR(m.steadyGflops(3072, 3072, 3072, 6), 6785.0, 70.0);
}

TEST(AieModel, MatchesPaperThroughputForAlternateTiles)
{
    fu::AieModelParams p;
    p.native_n = 16;
    EXPECT_NEAR(fu::AieModel(p).steadyGflops(3072, 3072, 3072, 6),
                6306.0, 70.0);
    fu::AieModelParams q;
    q.native_k = 16;
    EXPECT_NEAR(fu::AieModel(q).steadyGflops(3072, 3072, 3072, 6),
                6095.6, 70.0);
}

TEST(AieModel, PeakPerMmeIsTwentyGflopsPerTile)
{
    fu::AieModel m;
    EXPECT_EQ(m.tilesPerMme(), 64);
    EXPECT_NEAR(m.peakFlopsPerMme(), 64 * 20e9, 1e6);
}

TEST(AieModel, ShorterKReducesChunkCycles)
{
    fu::AieModel m;
    EXPECT_LT(m.chunkCycles(128, 64, 1024), m.chunkCycles(128, 128, 1024));
}

TEST(AieModel, PartialWavesRoundUp)
{
    fu::AieModel m;
    // 129 rows needs two waves of 128; costs the same as 256.
    EXPECT_EQ(m.chunkCycles(129, 128, 128), m.chunkCycles(256, 128, 128));
}

TEST(AieModel, TicksScaleWithClockRatio)
{
    fu::AieModel m;
    double cycles = m.chunkCycles(128, 128, 128);
    Tick t = m.chunkTicks(128, 128, 128);
    EXPECT_NEAR(double(t), cycles * 260.0 / 1250.0, 1.5);
}

TEST(MmeFu, ComputesSingleTileProduct)
{
    MmeRig r;
    auto a = ref::randomMatrix(8, 6, 1);
    auto b = ref::randomMatrix(6, 10, 2);
    isa::MmeUop u;
    u.reps = 1;
    u.k_steps = 1;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs, {matChunk(a)});
    sim::Task fr = r.h.feedChunks(r.rhs, {matChunk(b)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 1, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_TRUE(r.mme.halted());
    ASSERT_EQ(got.size(), 1u);
    auto expect = ref::matmul(a, b);
    ref::Matrix gm(8, 10, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-5f, 1e-6f));
}

TEST(MmeFu, AccumulatesAlongK)
{
    MmeRig r;
    auto a1 = ref::randomMatrix(4, 8, 3);
    auto a2 = ref::randomMatrix(4, 8, 4);
    auto b1 = ref::randomMatrix(8, 5, 5);
    auto b2 = ref::randomMatrix(8, 5, 6);
    isa::MmeUop u;
    u.reps = 1;
    u.k_steps = 2;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs, {matChunk(a1), matChunk(a2)});
    sim::Task fr = r.h.feedChunks(r.rhs, {matChunk(b1), matChunk(b2)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 1, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 1u);
    auto expect = ref::add(ref::matmul(a1, b1), ref::matmul(a2, b2));
    ref::Matrix gm(4, 5, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-5f, 1e-6f));
}

TEST(MmeFu, AddsBiasChunkBeforeTiles)
{
    MmeRig r;
    auto a = ref::randomMatrix(4, 4, 7);
    auto b = ref::randomMatrix(4, 6, 8);
    auto bias = ref::randomMatrix(1, 6, 9);
    isa::MmeUop u;
    u.reps = 1;
    u.k_steps = 1;
    u.add_bias = true;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs, {matChunk(a)});
    // Bias arrives ahead of the RHS tile on the RHS stream.
    sim::Task fr = r.h.feedChunks(r.rhs, {matChunk(bias), matChunk(b)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 1, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 1u);
    auto expect = ref::addBias(ref::matmul(a, b), bias.data);
    ref::Matrix gm(4, 6, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-5f, 1e-6f));
}

TEST(MmeFu, EmitsPartialProductsWhenNotAccumulating)
{
    MmeRig r;
    auto a = ref::randomMatrix(4, 4, 1);
    auto b = ref::randomMatrix(4, 4, 2);
    isa::MmeUop u;
    u.reps = 1;
    u.k_steps = 2;
    u.accum_k = false;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs, {matChunk(a), matChunk(a)});
    sim::Task fr = r.h.feedChunks(r.rhs, {matChunk(b), matChunk(b)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 2, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 2u);  // one partial per k-step
}

TEST(MmeFu, MultipleRepsProcessIndependentTiles)
{
    MmeRig r;
    auto a = ref::randomMatrix(4, 4, 11);
    auto b = ref::randomMatrix(4, 4, 12);
    isa::MmeUop u;
    u.reps = 3;
    u.k_steps = 1;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs,
                                  {matChunk(a), matChunk(a), matChunk(a)});
    sim::Task fr = r.h.feedChunks(r.rhs,
                                  {matChunk(b), matChunk(b), matChunk(b)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 3, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    EXPECT_EQ(got.size(), 3u);
    EXPECT_EQ(r.mme.stats().uops, 1u);  // one uOP drove all three tiles
    EXPECT_EQ(r.mme.stats().flops, 3ull * 2 * 4 * 4 * 4);
}

TEST(MmeFu, ComputeTimeMatchesModel)
{
    MmeRig r;
    isa::MmeUop u;
    u.reps = 1;
    u.k_steps = 1;
    sim::Task prog = r.h.program(r.mme, {u});
    sim::Task fl = r.h.feedChunks(r.lhs, {sim::makeChunk(128, 128)});
    sim::Task fr = r.h.feedChunks(r.rhs, {sim::makeChunk(128, 1024)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.out, 1, got);
    r.mme.start();
    ASSERT_TRUE(r.h.run());
    fu::AieModel model;
    // Completion >= compute ticks (plus stream transfer time).
    EXPECT_GE(r.h.eng.now(), model.chunkTicks(128, 128, 1024));
}

} // namespace
