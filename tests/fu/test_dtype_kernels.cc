/**
 * @file
 * Property tests for the typed-tile kernel entries (ISSUE 10).
 *
 * Three contracts, per docs/datapath.md "Typed tiles & precision
 * policy":
 *
 *  1. The scalar converters in common/dtype.hh are *correct*: f32 ->
 *     bf16/f16 is round-to-nearest-even (verified against the two
 *     neighboring representable values), upconversion is exact
 *     (verified by exhaustive round-trip over all 65536 16-bit
 *     patterns), and inf/NaN/subnormals behave per IEEE.
 *  2. The convert_rows_* / transpose_u16 table entries are
 *     **bit-identical across every CPU-supported kernel table** — they
 *     all inline the same bit manipulation, only the loop is per-ISA.
 *  3. gemm_accumulate_bf16 matches the scalar reference (upconvert
 *     exactly, accumulate in FP32) within the documented GEMM tolerance
 *     (fu/gemm_kernel.hh): |a-b| <= 1e-4 + 1e-4 * |b| per element.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/dtype.hh"
#include "fu/gemm_kernel.hh"
#include "fu/kernel_registry.hh"

namespace {

using rsn::Dtype;
using rsn::bf16ToF32;
using rsn::dtypeBytes;
using rsn::dtypeFromName;
using rsn::dtypeName;
using rsn::f16ToF32;
using rsn::f32ToBf16;
using rsn::f32ToF16;
namespace kernel = rsn::kernel;

/** Every kernel table this binary contains AND this CPU can run. */
std::vector<const kernel::KernelTable *>
runnableTables()
{
    auto &reg = kernel::Registry::instance();
    std::vector<const kernel::KernelTable *> out;
    for (const auto *t : reg.tables())
        if (reg.selectable(t->isa))
            out.push_back(t);
    return out;
}

bool
isNan16(std::uint16_t x, std::uint32_t exp_mask, std::uint32_t mant_mask)
{
    return (x & exp_mask) == exp_mask && (x & mant_mask);
}

// ------------------------------------------------------- vocabulary --

TEST(Dtype, NamesRoundTripAndBytesMatch)
{
    for (Dtype d : {Dtype::F32, Dtype::Bf16, Dtype::F16, Dtype::I8}) {
        auto back = dtypeFromName(dtypeName(d));
        ASSERT_TRUE(back.has_value()) << dtypeName(d);
        EXPECT_EQ(*back, d);
    }
    EXPECT_EQ(dtypeBytes(Dtype::F32), 4u);
    EXPECT_EQ(dtypeBytes(Dtype::Bf16), 2u);
    EXPECT_EQ(dtypeBytes(Dtype::F16), 2u);
    EXPECT_EQ(dtypeBytes(Dtype::I8), 1u);
    EXPECT_FALSE(dtypeFromName("fp16").has_value());
    EXPECT_FALSE(dtypeFromName("BF16").has_value());  // lowercase only
}

// --------------------------------------------- scalar converter laws --

TEST(DtypeConvert, UpconversionIsExactForEveryBf16Pattern)
{
    // bf16 is a prefix of f32, so bf16 -> f32 -> bf16 must be the
    // identity on every non-NaN pattern (NaN round-trips to *a* NaN).
    for (std::uint32_t p = 0; p <= 0xffffu; ++p) {
        const auto x = static_cast<std::uint16_t>(p);
        const float f = bf16ToF32(x);
        const std::uint16_t back = f32ToBf16(f);
        if (isNan16(x, 0x7f80u, 0x007fu)) {
            EXPECT_TRUE(isNan16(back, 0x7f80u, 0x007fu)) << std::hex << p;
        } else {
            EXPECT_EQ(back, x) << std::hex << p;
        }
    }
}

TEST(DtypeConvert, UpconversionIsExactForEveryF16Pattern)
{
    // Includes all 2048 subnormals and both signed zeros / infinities.
    for (std::uint32_t p = 0; p <= 0xffffu; ++p) {
        const auto x = static_cast<std::uint16_t>(p);
        const float f = f16ToF32(x);
        const std::uint16_t back = f32ToF16(f);
        if (isNan16(x, 0x7c00u, 0x03ffu)) {
            EXPECT_TRUE(std::isnan(f)) << std::hex << p;
            EXPECT_TRUE(isNan16(back, 0x7c00u, 0x03ffu)) << std::hex << p;
        } else {
            EXPECT_EQ(back, x) << std::hex << p;
        }
    }
}

/** Next/previous representable 16-bit value along the real line, in the
 *  sign-magnitude ordering both bf16 and f16 share with f32. */
std::uint16_t
step16(std::uint16_t x, bool up)
{
    const bool neg = x & 0x8000u;
    std::uint16_t mag = x & 0x7fffu;
    if (neg == up) {  // toward zero
        if (mag == 0)
            return up ? 0x0001u : 0x8001u;  // crosses zero
        --mag;
    } else {
        ++mag;
    }
    return static_cast<std::uint16_t>((neg ? 0x8000u : 0u) | mag);
}

/** RNE law: the conversion of finite x must be one of the two
 *  representable neighbors, strictly closer than the other one (or the
 *  even of the two on an exact tie). @p to/from convert to and from the
 *  16-bit format; @p is_nan tests NaN patterns. */
template <typename To, typename From, typename IsNan>
void
checkNearestEven(float x, To to, From from, IsNan is_nan)
{
    const std::uint16_t y = to(x);
    if (is_nan(y))
        return;  // overflow-to-inf is checked separately
    const double fy = from(y);
    if (std::isinf(fy))
        return;
    const double d = std::abs(double(x) - fy);
    for (bool up : {false, true}) {
        const std::uint16_t n = step16(y, up);
        if (is_nan(n))
            continue;
        const double fn = from(n);
        if (std::isinf(fn))
            continue;
        const double dn = std::abs(double(x) - fn);
        EXPECT_LE(d, dn) << x << " -> " << std::hex << y
                         << " but neighbor " << n << " is closer";
        if (d == dn) {  // exact tie: mantissa LSB must be even
            EXPECT_EQ(y & 1u, 0u) << x << " tie broke to odd " << std::hex
                                  << y;
        }
    }
}

TEST(DtypeConvert, Bf16RoundsToNearestEven)
{
    // Hand-picked ties: 1 + 2^-8 is exactly halfway between bf16(1.0)
    // (even) and its successor (odd) — RNE keeps 1.0. 1 + 3*2^-8 is
    // halfway with the *even* side above.
    EXPECT_EQ(f32ToBf16(1.0f + 0x1.0p-8f), f32ToBf16(1.0f));
    EXPECT_EQ(f32ToBf16(1.0f + 0x3.0p-8f), f32ToBf16(1.0f + 0x4.0p-8f));

    std::mt19937 rng(7);
    std::uniform_real_distribution<float> uni(-4.0f, 4.0f);
    std::uniform_int_distribution<std::uint32_t> anybits(0, 0xffffffffu);
    auto is_nan = [](std::uint16_t v) { return isNan16(v, 0x7f80u, 0x007fu); };
    for (int i = 0; i < 20000; ++i) {
        float x;
        if (i % 4 == 0) {  // whole-range bit patterns, skip NaN/inf
            std::uint32_t b = anybits(rng);
            std::memcpy(&x, &b, sizeof(x));
            if (!std::isfinite(x))
                continue;
        } else {
            x = uni(rng);
        }
        checkNearestEven(x, f32ToBf16, bf16ToF32, is_nan);
    }
}

TEST(DtypeConvert, F16RoundsToNearestEvenIncludingSubnormals)
{
    std::mt19937 rng(11);
    std::uniform_real_distribution<float> uni(-65504.0f, 65504.0f);
    std::uniform_real_distribution<float> tiny(-1e-4f, 1e-4f);  // subnormal band
    auto is_nan = [](std::uint16_t v) { return isNan16(v, 0x7c00u, 0x03ffu); };
    for (int i = 0; i < 20000; ++i) {
        const float x = (i % 3 == 0) ? tiny(rng) : uni(rng);
        checkNearestEven(x, f32ToF16, f16ToF32, is_nan);
    }
}

TEST(DtypeConvert, SpecialsSurviveBothDownconversions)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();

    EXPECT_EQ(bf16ToF32(f32ToBf16(inf)), inf);
    EXPECT_EQ(bf16ToF32(f32ToBf16(-inf)), -inf);
    EXPECT_TRUE(std::isnan(bf16ToF32(f32ToBf16(nan))));
    EXPECT_EQ(f16ToF32(f32ToF16(inf)), inf);
    EXPECT_EQ(f16ToF32(f32ToF16(-inf)), -inf);
    EXPECT_TRUE(std::isnan(f16ToF32(f32ToF16(nan))));

    // Signaling-ish NaN payloads must stay NaN, never become inf.
    const std::uint32_t snan_bits = 0x7f800001u;
    float snan;
    std::memcpy(&snan, &snan_bits, sizeof(snan));
    EXPECT_TRUE(std::isnan(bf16ToF32(f32ToBf16(snan))));
    EXPECT_TRUE(std::isnan(f16ToF32(f32ToF16(snan))));

    // Signed zero is preserved bit-exactly.
    EXPECT_EQ(f32ToBf16(-0.0f), 0x8000u);
    EXPECT_EQ(f32ToF16(-0.0f), 0x8000u);

    // f16 overflow threshold: 65504 is the max finite, 65520 rounds up.
    EXPECT_EQ(f16ToF32(f32ToF16(65504.0f)), 65504.0f);
    EXPECT_EQ(f16ToF32(f32ToF16(65520.0f)), inf);
    // Below half the smallest f16 subnormal: flushes to (signed) zero.
    EXPECT_EQ(f32ToF16(2.0e-8f), 0x0000u);
    EXPECT_EQ(f32ToF16(-2.0e-8f), 0x8000u);
}

// -------------------------------- table entries, cross-ISA identity --

/** Random float payload with a sprinkling of specials. */
std::vector<float>
randomPayload(std::uint64_t n, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> uni(-100.0f, 100.0f);
    std::vector<float> v(n);
    for (auto &x : v)
        x = uni(rng);
    if (n >= 8) {
        v[1] = 0.0f;
        v[2] = -0.0f;
        v[3] = std::numeric_limits<float>::infinity();
        v[4] = -std::numeric_limits<float>::infinity();
        v[5] = std::numeric_limits<float>::quiet_NaN();
        v[6] = 6.0e-8f;   // f16 subnormal range
        v[7] = 70000.0f;  // f16 overflow range
    }
    return v;
}

TEST(DtypeKernels, ConvertRowsBitIdenticalAcrossTables)
{
    const auto tables = runnableTables();
    const auto *scalar = kernel::Registry::instance().find("scalar");
    ASSERT_NE(scalar, nullptr);

    for (std::uint64_t n : {std::uint64_t(1), std::uint64_t(7),
                            std::uint64_t(64), std::uint64_t(1000)}) {
        const auto src = randomPayload(n, 17 + std::uint32_t(n));
        for (Dtype d : {Dtype::F32, Dtype::Bf16, Dtype::F16}) {
            // Down: f32 -> d, reference from the scalar table.
            std::vector<std::uint8_t> ref_dn(n * dtypeBytes(d));
            scalar->convert_rows_from_f32(ref_dn.data(), d, src.data(), n);
            // Up: d -> f32 on the scalar-produced typed bytes.
            std::vector<float> ref_up(n);
            scalar->convert_rows_to_f32(ref_up.data(), ref_dn.data(), d, n);

            for (const auto *t : tables) {
                std::vector<std::uint8_t> dn(n * dtypeBytes(d), 0xAA);
                t->convert_rows_from_f32(dn.data(), d, src.data(), n);
                EXPECT_EQ(std::memcmp(dn.data(), ref_dn.data(), dn.size()),
                          0)
                    << t->name << " from_f32 " << dtypeName(d) << " n=" << n;

                std::vector<float> up(n, -1.0f);
                t->convert_rows_to_f32(up.data(), ref_dn.data(), d, n);
                EXPECT_EQ(std::memcmp(up.data(), ref_up.data(),
                                      n * sizeof(float)),
                          0)
                    << t->name << " to_f32 " << dtypeName(d) << " n=" << n;
            }
        }
    }
}

TEST(DtypeKernels, TransposeU16BitIdenticalAcrossTables)
{
    const auto tables = runnableTables();
    const auto *scalar = kernel::Registry::instance().find("scalar");
    ASSERT_NE(scalar, nullptr);

    std::mt19937 rng(23);
    std::uniform_int_distribution<std::uint32_t> bits(0, 0xffffu);
    for (auto [rows, cols] : {std::pair<std::uint32_t, std::uint32_t>{1, 1},
                              {3, 5}, {32, 32}, {17, 64}, {128, 9}}) {
        std::vector<std::uint16_t> src(std::size_t(rows) * cols);
        for (auto &x : src)
            x = static_cast<std::uint16_t>(bits(rng));
        std::vector<std::uint16_t> ref(src.size());
        scalar->transpose_u16(ref.data(), src.data(), rows, cols);
        // The scalar transpose is trivially checkable in place.
        for (std::uint32_t r = 0; r < rows; ++r)
            for (std::uint32_t c = 0; c < cols; ++c)
                ASSERT_EQ(ref[std::size_t(c) * rows + r],
                          src[std::size_t(r) * cols + c]);
        for (const auto *t : tables) {
            std::vector<std::uint16_t> dst(src.size(), 0xBEEF);
            t->transpose_u16(dst.data(), src.data(), rows, cols);
            EXPECT_EQ(dst, ref) << t->name << " " << rows << "x" << cols;
        }
    }
}

// ------------------------------------------- bf16 GEMM vs reference --

TEST(DtypeKernels, GemmAccumulateBf16MatchesScalarReference)
{
    const auto tables = runnableTables();
    std::mt19937 rng(31);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);

    for (auto [m, k, n] :
         {std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>{1, 1, 1},
          {8, 32, 16}, {13, 70, 29}, {32, 128, 64}}) {
        // bf16 operands, generated once, shared by every table.
        std::vector<std::uint16_t> lhs(std::size_t(m) * k);
        std::vector<std::uint16_t> rhs(std::size_t(k) * n);
        for (auto &x : lhs)
            x = f32ToBf16(uni(rng));
        for (auto &x : rhs)
            x = f32ToBf16(uni(rng));

        // Reference: upconvert exactly, run the scalar FP32 reference.
        std::vector<float> lhs32(lhs.size()), rhs32(rhs.size());
        for (std::size_t i = 0; i < lhs.size(); ++i)
            lhs32[i] = bf16ToF32(lhs[i]);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            rhs32[i] = bf16ToF32(rhs[i]);
        std::vector<float> ref(std::size_t(m) * n, 0.5f);
        rsn::fu::gemmRefAccumulate(ref.data(), lhs32.data(), rhs32.data(),
                                   m, k, n);

        for (const auto *t : tables) {
            rsn::fu::GemmScratch scratch;
            std::vector<float> acc(ref.size(), 0.5f);  // accumulates on top
            t->gemm_accumulate_bf16(scratch, acc.data(), lhs.data(),
                                    rhs.data(), m, k, n);
            for (std::size_t i = 0; i < acc.size(); ++i) {
                EXPECT_LE(std::abs(acc[i] - ref[i]),
                          1e-4 + 1e-4 * std::abs(ref[i]))
                    << t->name << " (" << m << "," << k << "," << n
                    << ") elem " << i;
            }
            scratch.release();
        }
    }
}

} // namespace
