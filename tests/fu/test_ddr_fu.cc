#include <gtest/gtest.h>

#include "fu/ddr_fus.hh"
#include "fu_harness.hh"

namespace {

using namespace rsn;
using rsn::test::FuHarness;
using rsn::test::iotaData;

constexpr FuId kDdr{FuType::Ddr, 0};
constexpr FuId kLpddr{FuType::Lpddr, 0};
FuId
memA(int i)
{
    return {FuType::MemA, std::uint8_t(i)};
}
FuId
memC(int i)
{
    return {FuType::MemC, std::uint8_t(i)};
}

struct DdrRig {
    FuHarness h;
    mem::HostMemory host{true};
    mem::DramChannel chan{h.eng, mem::DramConfig{}};
    fu::DdrFu fu{h.eng, kDdr, chan, host, mem::LayoutKind::Blocked};
};

TEST(BlockBursts, RowMajorFullWidthIsOne)
{
    EXPECT_EQ(fu::blockBursts(128, 64, 64, mem::LayoutKind::RowMajor),
              1u);
    EXPECT_EQ(fu::blockBursts(128, 64, 1024, mem::LayoutKind::RowMajor),
              128u);
}

TEST(BlockBursts, BlockedCountsTouchedBlocks)
{
    EXPECT_EQ(fu::blockBursts(768, 128, 1024, mem::LayoutKind::Blocked),
              6u * 2u);
    EXPECT_EQ(fu::blockBursts(1, 1, 1024, mem::LayoutKind::Blocked), 1u);
}

TEST(DdrFu, LoadReadsBlockAndStreamsIt)
{
    DdrRig r;
    Addr base = r.host.alloc(64, "t");  // 8x8
    r.host.fillRegion(base, iotaData(8, 8));
    sim::Stream &out = r.h.output(r.fu, memA(0));

    isa::DdrUop u;
    u.load = true;
    u.dest = memA(0);
    u.addr = base + (2 * 8 + 1) * 4;  // row 2, col 1
    u.rows = 3;
    u.cols = 4;
    u.pitch = 8;
    sim::Task prog = r.h.program(r.fu, {u});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(out, 1, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rows, 3u);
    EXPECT_FLOAT_EQ(got[0].at(0, 0), 17.f);  // elem (2,1) of iota
    EXPECT_FLOAT_EQ(got[0].at(2, 3), 36.f);  // elem (4,4)
    EXPECT_EQ(r.chan.bytesRead(), 3u * 4 * 4);
}

TEST(DdrFu, StoreWritesChunkToHostMemory)
{
    DdrRig r;
    Addr base = r.host.alloc(64, "out");
    sim::Stream &in = r.h.input(r.fu, memC(0));

    isa::DdrUop u;
    u.store = true;
    u.src = memC(0);
    u.addr = base + 8 * 4;  // row 1 of an 8-wide matrix
    u.rows = 2;
    u.cols = 8;
    u.pitch = 8;
    sim::Task prog = r.h.program(r.fu, {u});
    sim::Task feed = r.h.feedChunks(
        in, {sim::makeDataChunk(2, 8, iotaData(2, 8, 2.0f))});
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    auto back = r.host.readBlock(base + 8 * 4, 8, 2, 8);
    EXPECT_FLOAT_EQ(back[0], 0.f);
    EXPECT_FLOAT_EQ(back[15], 30.f);
    EXPECT_EQ(r.chan.bytesWritten(), 2u * 8 * 4);
}

TEST(DdrFu, StridedUopTouchesMultipleBlocks)
{
    DdrRig r;
    Addr base = r.host.alloc(256, "t");  // 16x16
    r.host.fillRegion(base, iotaData(16, 16));
    sim::Stream &out = r.h.output(r.fu, memA(0), 256.0, 8);

    // stride_count = 4 blocks of 4x16, advancing 4 rows each.
    isa::DdrUop u;
    u.load = true;
    u.dest = memA(0);
    u.addr = base;
    u.rows = 4;
    u.cols = 16;
    u.pitch = 16;
    u.stride_count = 4;
    u.stride_offset = 4 * 16 * 4;
    sim::Task prog = r.h.program(r.fu, {u});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(out, 4, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 4u);
    EXPECT_FLOAT_EQ(got[3].at(0, 0), 192.f);  // row 12 start
}

TEST(DdrFu, LoadAndStoreInOneUopPanics)
{
    DdrRig r;
    isa::DdrUop u;
    u.load = true;
    u.store = true;
    sim::Task prog = r.h.program(r.fu, {u});
    EXPECT_DEATH(
        {
            r.fu.start();
            r.h.run();
        },
        "assertion failed");
}

TEST(DdrFu, UopOrderDeterminesChannelOrder)
{
    // Two loads then one store execute in program order on the channel.
    DdrRig r;
    Addr in_base = r.host.alloc(64, "in");
    Addr out_base = r.host.alloc(64, "out");
    r.host.fillRegion(in_base, iotaData(8, 8));
    sim::Stream &out = r.h.output(r.fu, memA(0), 256.0, 8);
    sim::Stream &in = r.h.input(r.fu, memC(0));

    isa::DdrUop ld;
    ld.load = true;
    ld.dest = memA(0);
    ld.addr = in_base;
    ld.rows = 4;
    ld.cols = 8;
    ld.pitch = 8;
    isa::DdrUop ld2 = ld;
    ld2.addr = in_base + 4 * 8 * 4;
    isa::DdrUop st;
    st.store = true;
    st.src = memC(0);
    st.addr = out_base;
    st.rows = 8;
    st.cols = 8;
    st.pitch = 8;

    sim::Task prog = r.h.program(r.fu, {ld, ld2, st});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(out, 2, got);
    sim::Task feed = r.h.feedChunks(
        in, {sim::makeDataChunk(8, 8, iotaData(8, 8))});
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    EXPECT_EQ(r.chan.requests(), 3u);
    EXPECT_EQ(r.chan.bytesRead(), 2u * 4 * 8 * 4);
    EXPECT_EQ(r.chan.bytesWritten(), 64u * 4);
}

TEST(LpddrFu, LoadsWeightBlocks)
{
    FuHarness h;
    mem::HostMemory host{true};
    mem::DramChannel chan{h.eng, mem::DramConfig{"LPDDR", 20.5, 20.5}};
    fu::LpddrFu fu{h.eng, kLpddr, chan, host, mem::LayoutKind::Blocked};
    Addr base = host.alloc(64, "W");
    host.fillRegion(base, iotaData(8, 8));
    sim::Stream &out = h.output(fu, {FuType::MemB, 0});

    isa::LpddrUop u;
    u.dest = {FuType::MemB, 0};
    u.addr = base;
    u.rows = 8;
    u.cols = 8;
    u.pitch = 8;
    sim::Task prog = h.program(fu, {u});
    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(out, 1, got);
    fu.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), 1u);
    EXPECT_FLOAT_EQ(got[0].at(7, 7), 63.f);
    EXPECT_EQ(chan.bytesRead(), 64u * 4);
}

} // namespace
