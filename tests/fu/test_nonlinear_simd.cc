/**
 * @file
 * Property tests for the vectorized nonlinear operators and the tile
 * transpose across every runtime kernel table (ISSUE 5, re-targeted at
 * the dispatch registry in ISSUE 7), mirroring the GEMM microkernel
 * suite (test_gemm_kernel.cc).
 *
 * One binary now carries every variant — AVX-512, AVX2+FMA, NEON, the
 * portable auto-vectorized form, and the exact scalar reference
 * (fu/kernel_registry.hh). Each vectorized table is pinned against the
 * exact scalar kernels (fu/nonlinear.hh) over randomized shapes,
 * including single-element rows and widths that are not multiples of
 * any vector width, with the documented tolerances:
 *
 *   softmax    |a-b| <= 1e-5 + 1e-5*|b|   (polynomial exp, ~2e-7 rel)
 *   GELU       |a-b| <= 1e-3 + 1e-3*|b|   (tanh formula, <= ~4.8e-4)
 *   layernorm  |a-b| <= 1e-4 + 1e-4*|b|   (float lane accumulation)
 *   transpose                              bit-identical across tables
 *   scale-shift / residual add             bit-identical (not in the
 *                                          table at all: fu/nonlinear)
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;

constexpr float kSoftmaxTol = 1e-5f;
constexpr float kGeluTol = 1e-3f;
constexpr float kLayernormTol = 1e-4f;

/** Every compiled-in table this CPU can execute, the exact scalar
 *  reference included (it must trivially agree with itself). */
std::vector<const kernel::KernelTable *>
selectableTables()
{
    std::vector<const kernel::KernelTable *> out;
    for (const auto *t : kernel::Registry::instance().tables())
        if (kernel::Registry::instance().selectable(t->isa))
            out.push_back(t);
    return out;
}

std::vector<float>
randomVec(std::size_t n, std::mt19937 &rng, float scale = 4.0f)
{
    std::uniform_real_distribution<float> dist(-scale, scale);
    std::vector<float> v(n);
    for (auto &x : v)
        x = dist(rng);
    return v;
}

void
expectClose(const std::vector<float> &got, const std::vector<float> &ref,
            float tol, const char *what, const char *table,
            std::uint32_t rows, std::uint32_t cols)
{
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_LE(std::abs(got[i] - ref[i]),
                  tol + tol * std::abs(ref[i]))
            << what << " " << rows << "x" << cols << " elem " << i
            << " (" << table << " kernel): " << got[i] << " vs "
            << ref[i];
}

/** Shapes that hit every vector-width edge: 1-element rows, widths
 *  around 4/8/16 (NEON/AVX2/AVX-512 lanes), and non-multiples. */
const std::pair<std::uint32_t, std::uint32_t> kEdgeShapes[] = {
    {1, 1},  {1, 2},   {3, 1},   {2, 3},   {1, 4},   {2, 5},
    {1, 7},  {4, 8},   {3, 9},   {5, 15},  {2, 16},  {7, 17},
    {1, 31}, {4, 33},  {8, 64},  {3, 100}, {6, 127}, {2, 129},
    {1, 255}, {2, 257},
};

TEST(NonlinearKernels, EveryTableReportsAKnownVariant)
{
    auto tables = selectableTables();
    ASSERT_GE(tables.size(), 2u);  // portable + scalar at minimum
    for (const auto *t : tables) {
        const std::string name = t->name;
        EXPECT_TRUE(name == "portable" || name == "avx2" ||
                    name == "avx512" || name == "neon" ||
                    name == "scalar")
            << name;
        EXPECT_EQ(name, kernel::isaName(t->isa));
        EXPECT_EQ(t->exact, t->isa == kernel::Isa::Scalar);
    }
}

TEST(NonlinearKernels, SoftmaxMatchesExactOverRandomizedShapes)
{
    for (const auto *t : selectableTables()) {
        std::mt19937 rng(11);
        for (auto [rows, cols] : kEdgeShapes) {
            auto exact = randomVec(std::size_t(rows) * cols, rng);
            auto got = exact;
            fu::softmaxRows(exact.data(), rows, cols);
            t->softmax_rows(got.data(), rows, cols);
            expectClose(got, exact, kSoftmaxTol, "softmax", t->name,
                        rows, cols);
            // Rows still sum to one.
            for (std::uint32_t r = 0; r < rows; ++r) {
                double sum = 0;
                for (std::uint32_t c = 0; c < cols; ++c)
                    sum += got[std::size_t(r) * cols + c];
                EXPECT_NEAR(sum, 1.0, 1e-5);
            }
        }
    }
}

TEST(NonlinearKernels, SoftmaxStableForLargeLogits)
{
    // The polynomial exp clamps instead of overflowing/underflowing.
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        std::vector<float> tile = {500.f, 499.f, 0.f, -500.f};
        t->softmax_rows(tile.data(), 1, 4);
        for (float v : tile) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.f);
        }
        EXPECT_GT(tile[0], tile[1]);
        EXPECT_NEAR(tile[0] + tile[1] + tile[2] + tile[3], 1.0f, 1e-5);
    }
}

TEST(NonlinearKernels, SoftmaxSingleColumnIsOne)
{
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        std::vector<float> tile = {42.f, -3.f, 0.f};
        t->softmax_rows(tile.data(), 3, 1);
        for (float v : tile)
            EXPECT_FLOAT_EQ(v, 1.0f);
    }
}

TEST(NonlinearKernels, GeluMatchesExactWithinFormulaTolerance)
{
    for (const auto *t : selectableTables()) {
        std::mt19937 rng(13);
        for (auto [rows, cols] : kEdgeShapes) {
            auto exact = randomVec(std::size_t(rows) * cols, rng, 6.0f);
            auto got = exact;
            fu::geluInplace(exact.data(), exact.size());
            t->gelu_inplace(got.data(), got.size());
            expectClose(got, exact, kGeluTol, "gelu", t->name, rows,
                        cols);
        }
    }
}

TEST(NonlinearKernels, GeluSaturatesLikeTheExactKernel)
{
    // Identity for large positive x, zero for large negative x — and
    // finite everywhere (the exp clamp must not produce inf).
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        std::vector<float> tile = {10.f,   -10.f,   50.f,
                                   -50.f,  1000.f,  -1000.f};
        t->gelu_inplace(tile.data(), tile.size());
        EXPECT_NEAR(tile[0], 10.f, 1e-4);
        EXPECT_NEAR(tile[1], 0.f, 1e-4);
        EXPECT_NEAR(tile[2], 50.f, 1e-4);
        EXPECT_NEAR(tile[3], 0.f, 1e-4);
        for (float v : tile)
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(NonlinearKernels, LayernormMatchesExactOverRandomizedShapes)
{
    for (const auto *t : selectableTables()) {
        std::mt19937 rng(17);
        for (auto [rows, cols] : kEdgeShapes) {
            auto exact = randomVec(std::size_t(rows) * cols, rng, 7.0f);
            auto got = exact;
            fu::layernormRows(exact.data(), rows, cols);
            t->layernorm_rows(got.data(), rows, cols);
            expectClose(got, exact, kLayernormTol, "layernorm", t->name,
                        rows, cols);
        }
    }
}

TEST(NonlinearKernels, LayernormSurvivesLargeMeanRows)
{
    // The shifted two-pass form must not cancel catastrophically when
    // a row's common mean dwarfs its spread (the failure mode the
    // scalar single-pass variance had).
    for (const auto *t : selectableTables()) {
        std::mt19937 rng(19);
        std::uniform_real_distribution<float> noise(-1.f, 1.f);
        for (float mean : {1e4f, 1e6f}) {
            const std::uint32_t rows = 4, cols = 200;
            std::vector<float> tile(std::size_t(rows) * cols);
            for (auto &x : tile)
                x = mean + noise(rng);
            auto exact = tile;
            fu::layernormRows(exact.data(), rows, cols);
            t->layernorm_rows(tile.data(), rows, cols);
            expectClose(tile, exact, kLayernormTol,
                        "layernorm-large-mean", t->name, rows, cols);
            for (float v : tile)
                EXPECT_TRUE(std::isfinite(v));
        }
    }
}

TEST(NonlinearKernels, LayernormConstantRowIsZero)
{
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        std::vector<float> tile(37, 2.5f);
        t->layernorm_rows(tile.data(), 1, 37);
        for (float v : tile)
            EXPECT_NEAR(v, 0.f, 1e-2);  // eps floor, no divide-by-zero
    }
}

TEST(NonlinearKernels, DegenerateShapesAreNoOps)
{
    // rows == 0 / cols == 0 must not touch (or read) anything — the
    // same guards the scalar kernels gained (ISSUE 5 regression) —
    // under every table.
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        t->softmax_rows(nullptr, 0, 16);
        t->softmax_rows(nullptr, 16, 0);
        t->layernorm_rows(nullptr, 0, 16);
        t->layernorm_rows(nullptr, 16, 0);
        t->gelu_inplace(nullptr, 0);
        t->transpose(nullptr, nullptr, 0, 16);
        t->transpose(nullptr, nullptr, 16, 0);
        std::vector<float> sentinel = {1.f, 2.f};
        t->softmax_rows(sentinel.data(), 0, 2);
        t->layernorm_rows(sentinel.data(), 0, 2);
        EXPECT_FLOAT_EQ(sentinel[0], 1.f);
        EXPECT_FLOAT_EQ(sentinel[1], 2.f);
    }
}

// ----------------------------------------------------------- transpose --

/** Naive transpose as the independent reference (the scalar table uses
 *  the same loop shape, but written here separately on purpose). */
std::vector<float>
naiveTranspose(const std::vector<float> &src, std::uint32_t rows,
               std::uint32_t cols)
{
    std::vector<float> dst(src.size());
    for (std::uint32_t r = 0; r < rows; ++r)
        for (std::uint32_t c = 0; c < cols; ++c)
            dst[std::size_t(c) * rows + r] = src[std::size_t(r) * cols + c];
    return dst;
}

TEST(NonlinearKernels, TransposeIsBitIdenticalAcrossAllTables)
{
    // Transpose is pure data movement: every table must produce the
    // same bits (MemB's weight-transpose feeds golden checksums, which
    // may never move with the ISA).
    std::mt19937 rng(37);
    // Shapes around the 8x8 (AVX) / 4x4 (NEON) / 32x32 (portable)
    // block sizes, plus ragged edges and degenerate vectors.
    const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
        {1, 1},  {1, 9},  {9, 1},  {3, 5},   {4, 4},   {7, 8},
        {8, 8},  {8, 9},  {9, 8},  {15, 17}, {16, 16}, {31, 33},
        {32, 32}, {33, 31}, {64, 48}, {40, 100},
    };
    for (auto [rows, cols] : shapes) {
        auto src = randomVec(std::size_t(rows) * cols, rng);
        auto want = naiveTranspose(src, rows, cols);
        for (const auto *t : selectableTables()) {
            SCOPED_TRACE(std::string(t->name) + " " +
                         std::to_string(rows) + "x" +
                         std::to_string(cols));
            std::vector<float> dst(src.size(), -1e30f);
            t->transpose(dst.data(), src.data(), rows, cols);
            EXPECT_EQ(dst, want);
        }
    }
}

// ----------------------------------- out-of-table affine ops stay put --

TEST(NonlinearKernels, ScaleShiftAndResidualAreTableIndependent)
{
    // scaleShiftRows / addInplace are deliberately NOT in the dispatch
    // table (fu/nonlinear.cc): plain affine arithmetic is bit-identical
    // under every ISA, so MemC calls them directly. Pin that they do
    // not react to the active table (golden checksums rely on this).
    std::mt19937 rng(29);
    const std::uint32_t rows = 5, cols = 23;
    auto base = randomVec(std::size_t(rows) * cols, rng);
    auto gamma = randomVec(cols, rng), beta = randomVec(cols, rng);
    auto other = randomVec(base.size(), rng);

    std::vector<float> want_ss, want_add;
    bool first = true;
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        auto got = base;
        fu::scaleShiftRows(got.data(), rows, cols, gamma.data(),
                           beta.data());
        auto sum = base;
        fu::addInplace(sum.data(), other.data(), sum.size());
        if (first) {
            want_ss = got;
            want_add = sum;
            first = false;
        } else {
            EXPECT_EQ(got, want_ss);
            EXPECT_EQ(sum, want_add);
        }
    }
}

TEST(NonlinearKernels, SoftmaxCrossChecksAgainstRefMath)
{
    // Independent reference (different loop structure than both fu
    // kernels): every table's softmax must land on ref_math too.
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        auto m = ref::randomMatrix(16, 48, 41, 5.0f);
        auto tile = m.data;
        t->softmax_rows(tile.data(), 16, 48);
        auto expect = ref::softmax(m);
        ref::Matrix got(16, 48, tile.data());
        std::string why;
        EXPECT_TRUE(
            ref::allclose(got, expect, kSoftmaxTol, kSoftmaxTol, &why))
            << why;
    }
}

} // namespace
