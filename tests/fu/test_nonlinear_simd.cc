/**
 * @file
 * Property tests for the vectorized nonlinear operator layer (ISSUE 5),
 * mirroring the GEMM microkernel suite (test_gemm_kernel.cc).
 *
 * Whatever variant is compiled in — AVX-512, AVX2+FMA, NEON, or the
 * portable auto-vectorized form — every vectorized kernel is pinned
 * against the exact scalar reference (fu/nonlinear.hh) over randomized
 * shapes, including single-element rows and widths that are not
 * multiples of any vector width, with the tolerances documented in
 * fu/nonlinear_simd.hh:
 *
 *   softmax    |a-b| <= 1e-5 + 1e-5*|b|   (polynomial exp, ~2e-7 rel)
 *   GELU       |a-b| <= 1e-3 + 1e-3*|b|   (tanh formula, <= ~4.8e-4)
 *   layernorm  |a-b| <= 1e-4 + 1e-4*|b|   (float lane accumulation)
 *   scale-shift / residual add             bit-identical across modes
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "fu/nonlinear.hh"
#include "fu/nonlinear_simd.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;

constexpr float kSoftmaxTol = 1e-5f;
constexpr float kGeluTol = 1e-3f;
constexpr float kLayernormTol = 1e-4f;

std::vector<float>
randomVec(std::size_t n, std::mt19937 &rng, float scale = 4.0f)
{
    std::uniform_real_distribution<float> dist(-scale, scale);
    std::vector<float> v(n);
    for (auto &x : v)
        x = dist(rng);
    return v;
}

void
expectClose(const std::vector<float> &simd, const std::vector<float> &ref,
            float tol, const char *what, std::uint32_t rows,
            std::uint32_t cols)
{
    ASSERT_EQ(simd.size(), ref.size());
    for (std::size_t i = 0; i < simd.size(); ++i)
        ASSERT_LE(std::abs(simd[i] - ref[i]),
                  tol + tol * std::abs(ref[i]))
            << what << " " << rows << "x" << cols << " elem " << i
            << " (" << fu::nonlinearSimdKernelName()
            << " kernel): " << simd[i] << " vs " << ref[i];
}

/** Shapes that hit every vector-width edge: 1-element rows, widths
 *  around 4/8/16 (NEON/AVX2/AVX-512 lanes), and non-multiples. */
const std::pair<std::uint32_t, std::uint32_t> kEdgeShapes[] = {
    {1, 1},  {1, 2},   {3, 1},   {2, 3},   {1, 4},   {2, 5},
    {1, 7},  {4, 8},   {3, 9},   {5, 15},  {2, 16},  {7, 17},
    {1, 31}, {4, 33},  {8, 64},  {3, 100}, {6, 127}, {2, 129},
    {1, 255}, {2, 257},
};

TEST(NonlinearSimd, ReportsACompiledVariant)
{
    const std::string name = fu::nonlinearSimdKernelName();
    EXPECT_TRUE(name == "portable" || name == "avx2-fma" ||
                name == "avx512" || name == "neon")
        << name;
}

TEST(NonlinearSimd, SoftmaxMatchesExactOverRandomizedShapes)
{
    std::mt19937 rng(11);
    for (auto [rows, cols] : kEdgeShapes) {
        auto exact = randomVec(std::size_t(rows) * cols, rng);
        auto simd = exact;
        fu::softmaxRows(exact.data(), rows, cols);
        fu::softmaxRowsSimd(simd.data(), rows, cols);
        expectClose(simd, exact, kSoftmaxTol, "softmax", rows, cols);
        // Rows still sum to one.
        for (std::uint32_t r = 0; r < rows; ++r) {
            double sum = 0;
            for (std::uint32_t c = 0; c < cols; ++c)
                sum += simd[std::size_t(r) * cols + c];
            EXPECT_NEAR(sum, 1.0, 1e-5);
        }
    }
}

TEST(NonlinearSimd, SoftmaxStableForLargeLogits)
{
    // The polynomial exp clamps instead of overflowing/underflowing.
    std::vector<float> tile = {500.f, 499.f, 0.f, -500.f};
    fu::softmaxRowsSimd(tile.data(), 1, 4);
    for (float v : tile) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.f);
    }
    EXPECT_GT(tile[0], tile[1]);
    EXPECT_NEAR(tile[0] + tile[1] + tile[2] + tile[3], 1.0f, 1e-5);
}

TEST(NonlinearSimd, SoftmaxSingleColumnIsOne)
{
    std::vector<float> tile = {42.f, -3.f, 0.f};
    fu::softmaxRowsSimd(tile.data(), 3, 1);
    for (float v : tile)
        EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(NonlinearSimd, GeluMatchesExactWithinFormulaTolerance)
{
    std::mt19937 rng(13);
    for (auto [rows, cols] : kEdgeShapes) {
        auto exact = randomVec(std::size_t(rows) * cols, rng, 6.0f);
        auto simd = exact;
        fu::geluInplace(exact.data(), exact.size());
        fu::geluInplaceSimd(simd.data(), simd.size());
        expectClose(simd, exact, kGeluTol, "gelu", rows, cols);
    }
}

TEST(NonlinearSimd, GeluSaturatesLikeTheExactKernel)
{
    // Identity for large positive x, zero for large negative x — and
    // finite everywhere (the exp clamp must not produce inf).
    std::vector<float> tile = {10.f, -10.f, 50.f, -50.f, 1000.f, -1000.f};
    fu::geluInplaceSimd(tile.data(), tile.size());
    EXPECT_NEAR(tile[0], 10.f, 1e-4);
    EXPECT_NEAR(tile[1], 0.f, 1e-4);
    EXPECT_NEAR(tile[2], 50.f, 1e-4);
    EXPECT_NEAR(tile[3], 0.f, 1e-4);
    for (float v : tile)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(NonlinearSimd, LayernormMatchesExactOverRandomizedShapes)
{
    std::mt19937 rng(17);
    for (auto [rows, cols] : kEdgeShapes) {
        auto exact = randomVec(std::size_t(rows) * cols, rng, 7.0f);
        auto simd = exact;
        fu::layernormRows(exact.data(), rows, cols);
        fu::layernormRowsSimd(simd.data(), rows, cols);
        expectClose(simd, exact, kLayernormTol, "layernorm", rows, cols);
    }
}

TEST(NonlinearSimd, LayernormSurvivesLargeMeanRows)
{
    // The shifted two-pass form must not cancel catastrophically when
    // a row's common mean dwarfs its spread (the failure mode the
    // scalar single-pass variance had).
    std::mt19937 rng(19);
    std::uniform_real_distribution<float> noise(-1.f, 1.f);
    for (float mean : {1e4f, 1e6f}) {
        const std::uint32_t rows = 4, cols = 200;
        std::vector<float> tile(std::size_t(rows) * cols);
        for (auto &x : tile)
            x = mean + noise(rng);
        auto exact = tile;
        fu::layernormRows(exact.data(), rows, cols);
        fu::layernormRowsSimd(tile.data(), rows, cols);
        expectClose(tile, exact, kLayernormTol, "layernorm-large-mean",
                    rows, cols);
        for (float v : tile)
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(NonlinearSimd, LayernormConstantRowIsZero)
{
    std::vector<float> tile(37, 2.5f);
    fu::layernormRowsSimd(tile.data(), 1, 37);
    for (float v : tile)
        EXPECT_NEAR(v, 0.f, 1e-2);  // eps floor prevents divide-by-zero
}

TEST(NonlinearSimd, DegenerateShapesAreNoOps)
{
    // rows == 0 / cols == 0 must not touch (or read) anything — the
    // same guards the scalar kernels gained (ISSUE 5 regression).
    fu::softmaxRowsSimd(nullptr, 0, 16);
    fu::softmaxRowsSimd(nullptr, 16, 0);
    fu::layernormRowsSimd(nullptr, 0, 16);
    fu::layernormRowsSimd(nullptr, 16, 0);
    fu::geluInplaceSimd(nullptr, 0);
    std::vector<float> sentinel = {1.f, 2.f};
    fu::softmaxRowsSimd(sentinel.data(), 0, 2);
    fu::layernormRowsSimd(sentinel.data(), 0, 2);
    EXPECT_FLOAT_EQ(sentinel[0], 1.f);
    EXPECT_FLOAT_EQ(sentinel[1], 2.f);
}

TEST(NonlinearSimd, DispatchFollowsTheRuntimeMode)
{
    std::mt19937 rng(23);
    auto base = randomVec(64, rng);
    auto want_exact = base, want_simd = base;
    fu::geluInplace(want_exact.data(), want_exact.size());
    fu::geluInplaceSimd(want_simd.data(), want_simd.size());

    auto got = base;
    {
        fu::ScopedNonlinearMode m(fu::NonlinearMode::Exact);
        EXPECT_STREQ(fu::nonlinearModeName(), "exact");
        fu::geluInplaceDispatch(got.data(), got.size());
        EXPECT_EQ(got, want_exact);
    }
    got = base;
    {
        fu::ScopedNonlinearMode m(fu::NonlinearMode::Simd);
        EXPECT_STREQ(fu::nonlinearModeName(),
                     fu::nonlinearSimdKernelName());
        fu::geluInplaceDispatch(got.data(), got.size());
        EXPECT_EQ(got, want_simd);
    }
}

TEST(NonlinearSimd, ScopedModeRestoresThePreviousMode)
{
    const fu::NonlinearMode before = fu::nonlinearMode();
    {
        fu::ScopedNonlinearMode m(fu::NonlinearMode::Exact);
        EXPECT_EQ(fu::nonlinearMode(), fu::NonlinearMode::Exact);
        {
            fu::ScopedNonlinearMode n(fu::NonlinearMode::Simd);
            EXPECT_EQ(fu::nonlinearMode(), fu::NonlinearMode::Simd);
        }
        EXPECT_EQ(fu::nonlinearMode(), fu::NonlinearMode::Exact);
    }
    EXPECT_EQ(fu::nonlinearMode(), before);
}

TEST(NonlinearSimd, ScaleShiftAndResidualAreBitIdenticalAcrossModes)
{
    // The affine ops must never drift between modes: a mode flip may
    // only move softmax/GELU/LayerNorm results (golden checksums rely
    // on this).
    std::mt19937 rng(29);
    const std::uint32_t rows = 5, cols = 23;
    auto base = randomVec(std::size_t(rows) * cols, rng);
    auto gamma = randomVec(cols, rng), beta = randomVec(cols, rng);
    auto other = randomVec(base.size(), rng);

    for (auto mode : {fu::NonlinearMode::Exact, fu::NonlinearMode::Simd}) {
        fu::ScopedNonlinearMode m(mode);
        auto got = base;
        fu::scaleShiftRowsDispatch(got.data(), rows, cols, gamma.data(),
                                   beta.data());
        auto want = base;
        fu::scaleShiftRows(want.data(), rows, cols, gamma.data(),
                           beta.data());
        EXPECT_EQ(got, want);

        got = base;
        fu::addInplaceDispatch(got.data(), other.data(), got.size());
        want = base;
        fu::addInplace(want.data(), other.data(), want.size());
        EXPECT_EQ(got, want);
    }
}

TEST(NonlinearSimd, SoftmaxCrossChecksAgainstRefMath)
{
    // Independent reference (different loop structure than both fu
    // kernels): the vectorized softmax must land on ref_math too.
    auto m = ref::randomMatrix(16, 48, 41, 5.0f);
    auto tile = m.data;
    fu::softmaxRowsSimd(tile.data(), 16, 48);
    auto expect = ref::softmax(m);
    ref::Matrix got(16, 48, tile.data());
    std::string why;
    EXPECT_TRUE(ref::allclose(got, expect, kSoftmaxTol, kSoftmaxTol, &why))
        << why;
}

} // namespace
