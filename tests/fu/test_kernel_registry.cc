/**
 * @file
 * Unit tests for the runtime kernel dispatch registry (ISSUE 7):
 * name vocabulary, cpuid-probe gating with fabricated probes (probe
 * mocking — CpuProbe is plain data on purpose), the pure startup
 * selection policy resolveStartupIsa (RSN_ISA with lenient fallback on
 * bad values; the removed RSN_NONLINEAR alias hard-errors), the strict
 * Registry::select used by rsn-sim --isa (unknown-name rejection), and
 * the ScopedIsaOverride RAII contract. The per-kernel numerics live in
 * test_gemm_kernel.cc / test_nonlinear_simd.cc; the end-to-end golden
 * loop in tests/lib/test_golden_e2e.cc.
 */

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "fu/gemm_kernel.hh"
#include "fu/kernel_registry.hh"
#include "fu/nonlinear.hh"

namespace {

using namespace rsn;
using kernel::CpuProbe;
using kernel::Isa;

/** An AVX-512 workstation with full OS state support. */
CpuProbe
fullAvx512Probe()
{
    CpuProbe p;
    p.cpu_avx = p.cpu_fma = p.cpu_avx2 = p.cpu_avx512f = true;
    p.os_ymm = p.os_zmm = true;
    return p;
}

/** The x86 fat binary's table set, best first (CMakeLists.txt). */
std::vector<Isa>
x86CompiledIn()
{
    return {Isa::Avx512, Isa::Avx2, Isa::Portable, Isa::Scalar};
}

// ---------------------------------------------------------- vocabulary --

TEST(KernelRegistry, IsaNamesRoundTrip)
{
    for (Isa isa : {Isa::Scalar, Isa::Portable, Isa::Neon, Isa::Avx2,
                    Isa::Avx512}) {
        auto back = kernel::isaFromName(kernel::isaName(isa));
        ASSERT_TRUE(back.has_value()) << kernel::isaName(isa);
        EXPECT_EQ(*back, isa);
    }
}

TEST(KernelRegistry, UnknownNamesAreRejected)
{
    EXPECT_FALSE(kernel::isaFromName("").has_value());
    EXPECT_FALSE(kernel::isaFromName("mips").has_value());
    EXPECT_FALSE(kernel::isaFromName("AVX512").has_value());  // lowercase only
    EXPECT_FALSE(kernel::isaFromName("avx2-fma").has_value());  // old name
    EXPECT_FALSE(kernel::isaFromName("exact").has_value());  // RSN_NONLINEAR
}

// ------------------------------------------------------- probe gating --

TEST(KernelRegistry, ScalarAndPortableNeedNoCpuFeatures)
{
    CpuProbe none;  // nothing supported at all
    EXPECT_TRUE(none.supports(Isa::Scalar));
    EXPECT_TRUE(none.supports(Isa::Portable));
    EXPECT_FALSE(none.supports(Isa::Neon));
    EXPECT_FALSE(none.supports(Isa::Avx2));
    EXPECT_FALSE(none.supports(Isa::Avx512));
}

TEST(KernelRegistry, Avx2NeedsFmaAndOsYmmState)
{
    CpuProbe p = fullAvx512Probe();
    EXPECT_TRUE(p.supports(Isa::Avx2));
    // A CPU with AVX2 but no FMA (or masked by the hypervisor) must not
    // get the FMA-built kernels.
    p.cpu_fma = false;
    EXPECT_FALSE(p.supports(Isa::Avx2));
    // OS not saving ymm state (XCR0): executing AVX faults even though
    // CPUID advertises it.
    p = fullAvx512Probe();
    p.os_ymm = false;
    EXPECT_FALSE(p.supports(Isa::Avx2));
}

TEST(KernelRegistry, Avx512NeedsOsZmmState)
{
    // The classic VM / old-kernel case: CPUID says AVX512F but XCR0
    // lacks opmask/zmm state, so zmm instructions would #UD.
    CpuProbe p = fullAvx512Probe();
    EXPECT_TRUE(p.supports(Isa::Avx512));
    p.os_zmm = false;
    EXPECT_FALSE(p.supports(Isa::Avx512));
    EXPECT_TRUE(p.supports(Isa::Avx2)) << "ymm state is still fine";
}

TEST(KernelRegistry, ProbeToStringNamesEveryGate)
{
    const std::string s = fullAvx512Probe().toString();
    EXPECT_NE(s.find("avx512f=1"), std::string::npos) << s;
    EXPECT_NE(s.find("os_zmm=1"), std::string::npos) << s;
}

// --------------------------------------------------------- chooseBest --

TEST(KernelRegistry, ChooseBestPicksFirstSupportedTable)
{
    EXPECT_EQ(kernel::chooseBest(fullAvx512Probe(), x86CompiledIn()),
              Isa::Avx512);
    CpuProbe no_zmm = fullAvx512Probe();
    no_zmm.os_zmm = false;
    EXPECT_EQ(kernel::chooseBest(no_zmm, x86CompiledIn()), Isa::Avx2);
    CpuProbe none;
    EXPECT_EQ(kernel::chooseBest(none, x86CompiledIn()), Isa::Portable);
}

TEST(KernelRegistry, ChooseBestNeverPicksScalar)
{
    // Even when scalar is the only compiled-in entry besides portable,
    // the exact reference is opt-in only.
    CpuProbe none;
    EXPECT_EQ(kernel::chooseBest(none, {Isa::Scalar, Isa::Portable}),
              Isa::Portable);
    EXPECT_EQ(kernel::chooseBest(none, {Isa::Scalar}), Isa::Portable);
}

// --------------------------------------------- startup policy (env) ----

TEST(KernelRegistry, StartupDefaultsToProbe)
{
    auto c = kernel::resolveStartupIsa(nullptr, nullptr,
                                       fullAvx512Probe(),
                                       x86CompiledIn());
    EXPECT_EQ(c.isa, Isa::Avx512);
    EXPECT_STREQ(c.source, "probe");
    EXPECT_TRUE(c.warning.empty()) << c.warning;
}

TEST(KernelRegistry, RsnIsaSelectsAnyCompiledInTable)
{
    for (Isa want : x86CompiledIn()) {
        auto c = kernel::resolveStartupIsa(kernel::isaName(want), nullptr,
                                           fullAvx512Probe(),
                                           x86CompiledIn());
        EXPECT_EQ(c.isa, want);
        EXPECT_STREQ(c.source, "env:RSN_ISA");
        EXPECT_TRUE(c.warning.empty()) << c.warning;
    }
}

TEST(KernelRegistry, UnknownRsnIsaFallsBackToProbeWithWarning)
{
    auto c = kernel::resolveStartupIsa("bogus", nullptr,
                                       fullAvx512Probe(),
                                       x86CompiledIn());
    EXPECT_EQ(c.isa, Isa::Avx512);
    EXPECT_STREQ(c.source, "probe");
    EXPECT_NE(c.warning.find("bogus"), std::string::npos) << c.warning;
}

TEST(KernelRegistry, NotCompiledInRsnIsaFallsBackWithWarning)
{
    // neon is a real name but not in the x86 binary.
    auto c = kernel::resolveStartupIsa("neon", nullptr,
                                       fullAvx512Probe(),
                                       x86CompiledIn());
    EXPECT_EQ(c.isa, Isa::Avx512);
    EXPECT_STREQ(c.source, "probe");
    EXPECT_FALSE(c.warning.empty());
}

TEST(KernelRegistry, CpuUnsupportedRsnIsaFallsBackWithWarning)
{
    CpuProbe no_zmm = fullAvx512Probe();
    no_zmm.os_zmm = false;
    auto c = kernel::resolveStartupIsa("avx512", nullptr, no_zmm,
                                       x86CompiledIn());
    EXPECT_EQ(c.isa, Isa::Avx2) << "fall back to the probed best";
    EXPECT_STREQ(c.source, "probe");
    EXPECT_NE(c.warning.find("avx512"), std::string::npos) << c.warning;
}

TEST(KernelRegistry, RemovedRsnNonlinearIsAHardError)
{
    // The RSN_NONLINEAR deprecation alias is gone (two majors stale).
    // Any non-empty value — even ones the alias used to accept, and even
    // with a valid RSN_ISA alongside — is now a fatal config error whose
    // message points the user at RSN_ISA. Refusing to run beats silently
    // ignoring a variable that used to select kernel tables.
    for (const char *stale : {"exact", "simd", "fast"}) {
        try {
            kernel::resolveStartupIsa(nullptr, stale, fullAvx512Probe(),
                                      x86CompiledIn());
            FAIL() << "RSN_NONLINEAR=" << stale << " did not hard-error";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("RSN_ISA"),
                      std::string::npos)
                << e.what();
        }
    }
    // RSN_ISA being set too does not excuse the stale variable.
    EXPECT_THROW(kernel::resolveStartupIsa("portable", "exact",
                                           fullAvx512Probe(),
                                           x86CompiledIn()),
                 std::runtime_error);
    // An empty value is treated as unset, matching RSN_ISA's behavior.
    auto c = kernel::resolveStartupIsa(nullptr, "", fullAvx512Probe(),
                                       x86CompiledIn());
    EXPECT_EQ(c.isa, Isa::Avx512);
    EXPECT_STREQ(c.source, "probe");
}

// ------------------------------------------- the live Registry object --

TEST(KernelRegistry, TablesEndWithScalarAndContainPortable)
{
    auto &reg = kernel::Registry::instance();
    ASSERT_GE(reg.tables().size(), 2u);
    EXPECT_EQ(reg.tables().back()->isa, Isa::Scalar);
    EXPECT_NE(reg.find("portable"), nullptr);
    EXPECT_NE(reg.find("scalar"), nullptr);
    EXPECT_EQ(reg.find("avx2-fma"), nullptr) << "old name must be gone";
    // Scalar and Portable are selectable on any CPU.
    EXPECT_TRUE(reg.selectable(Isa::Scalar));
    EXPECT_TRUE(reg.selectable(Isa::Portable));
}

TEST(KernelRegistry, StrictSelectRejectsUnknownNames)
{
    auto &reg = kernel::Registry::instance();
    const kernel::KernelTable &before = reg.active();
    for (const char *bad : {"", "mips", "AVX512", "avx2-fma"}) {
        Status st = reg.select(bad, "cli:--isa");
        EXPECT_FALSE(st.ok()) << bad;
        EXPECT_EQ(&reg.active(), &before)
            << "failed select must leave the selection unchanged";
    }
    // The error names the valid vocabulary so the CLI message is
    // actionable.
    Status st = reg.select("mips");
    EXPECT_NE(st.toString().find("portable"), std::string::npos)
        << st.toString();
}

TEST(KernelRegistry, StrictSelectByNameSwitchesTheActiveTable)
{
    auto &reg = kernel::Registry::instance();
    const kernel::KernelTable &before = reg.active();
    const std::string before_name = before.name;
    const char *before_source = reg.selectionSource();

    ASSERT_TRUE(reg.select("scalar", "cli:--isa").ok());
    EXPECT_STREQ(reg.active().name, "scalar");
    EXPECT_STREQ(reg.selectionSource(), "cli:--isa");
    EXPECT_EQ(&kernel::active(), &reg.active())
        << "hot accessor must track the registry";

    // Restore for the rest of the process.
    ASSERT_TRUE(reg.select(before_name, before_source).ok());
    EXPECT_EQ(&reg.active(), &before);
}

TEST(KernelRegistry, ScopedOverrideRestoresTableAndSource)
{
    auto &reg = kernel::Registry::instance();
    const kernel::KernelTable &before = reg.active();
    const std::string before_source = reg.selectionSource();
    {
        kernel::ScopedIsaOverride pin(Isa::Scalar);
        EXPECT_STREQ(reg.active().name, "scalar");
        EXPECT_STREQ(reg.selectionSource(), "override");
        {
            kernel::ScopedIsaOverride nested(Isa::Portable);
            EXPECT_STREQ(reg.active().name, "portable");
        }
        EXPECT_STREQ(reg.active().name, "scalar") << "nesting unwinds";
    }
    EXPECT_EQ(&reg.active(), &before);
    EXPECT_EQ(reg.selectionSource(), before_source);
}

// ------------------------------------------- scalar table exactness ----

TEST(KernelRegistry, ScalarTableIsBitExactAgainstTheReferenceKernels)
{
    // The scalar table is not an approximation of the reference — it
    // IS the reference, routed through the table. Bit-exact, not
    // tolerance-compared.
    const kernel::KernelTable *scalar =
        kernel::Registry::instance().find("scalar");
    ASSERT_NE(scalar, nullptr);
    EXPECT_TRUE(scalar->exact);

    std::mt19937 rng(71);
    std::uniform_real_distribution<float> dist(-3.f, 3.f);
    const std::uint32_t m = 13, k = 21, n = 17;
    std::vector<float> lhs(m * k), rhs(k * n), acc(m * n);
    for (auto *v : {&lhs, &rhs, &acc})
        for (auto &x : *v)
            x = dist(rng);

    auto want = acc;
    fu::gemmRefAccumulate(want.data(), lhs.data(), rhs.data(), m, k, n);
    auto got = acc;
    fu::GemmScratch scratch;
    scalar->gemm_accumulate(scratch, got.data(), lhs.data(), rhs.data(),
                            m, k, n);
    scratch.release();
    EXPECT_EQ(got, want);

    std::vector<float> tile(5 * 19);
    for (auto &x : tile)
        x = dist(rng);
    auto a = tile, b = tile;
    fu::softmaxRows(a.data(), 5, 19);
    scalar->softmax_rows(b.data(), 5, 19);
    EXPECT_EQ(a, b);
    a = b = tile;
    fu::geluInplace(a.data(), a.size());
    scalar->gelu_inplace(b.data(), b.size());
    EXPECT_EQ(a, b);
    a = b = tile;
    fu::layernormRows(a.data(), 5, 19);
    scalar->layernorm_rows(b.data(), 5, 19);
    EXPECT_EQ(a, b);
}

} // namespace
