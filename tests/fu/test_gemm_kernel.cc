/**
 * @file
 * Property tests for the blocked GEMM microkernel variants (ISSUE 4,
 * re-targeted at the runtime dispatch tables in ISSUE 7).
 *
 * The MME's functional math runs through whichever kernel table the
 * Registry selected — AVX-512, AVX2+FMA, NEON, or the portable
 * auto-vectorized variant, all compiled into this one binary
 * (fu/kernel_registry.hh). These tests iterate every table the CPU can
 * execute, pin it under ScopedIsaOverride so the call goes through the
 * production dispatch path (fu::gemmAccumulate -> kernel::active()),
 * and compare against the scalar reference kernel over randomized and
 * adversarial shapes.
 *
 * Tolerance policy (documented in gemm_kernel.hh and docs/datapath.md):
 * the blocked kernels accumulate in registers and add the partial sum
 * into acc once, while the reference adds every product directly, and
 * FMA contracts the multiply-add rounding — so results are compared
 * with |a-b| <= kAtol + kRtol * |b| per element, never bit-exactly.
 * The scalar table is the reference itself and must match bit-exactly;
 * the loop below checks it at tolerance like the rest, and the
 * registry suite (test_kernel_registry.cc) covers its exactness.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "fu/gemm_kernel.hh"
#include "fu/kernel_registry.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;

/** The documented comparison tolerance for reassociated FP32 GEMM. */
constexpr float kRtol = 1e-4f;
constexpr float kAtol = 1e-4f;

/** Every compiled-in table this CPU can execute (scalar included: the
 *  reference trivially matches itself, and running it through the same
 *  harness checks the dispatch plumbing). */
std::vector<const kernel::KernelTable *>
selectableTables()
{
    std::vector<const kernel::KernelTable *> out;
    for (const auto *t : kernel::Registry::instance().tables())
        if (kernel::Registry::instance().selectable(t->isa))
            out.push_back(t);
    return out;
}

std::vector<float>
randomVec(std::size_t n, std::mt19937 &rng)
{
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    std::vector<float> v(n);
    for (auto &x : v)
        x = dist(rng);
    return v;
}

/** acc += lhs @ rhs through the active table and the scalar reference;
 *  EXPECT element agreement. Called with a table already pinned. */
void
checkShape(std::uint32_t m, std::uint32_t k, std::uint32_t n,
           std::mt19937 &rng)
{
    fu::GemmScratch scratch;
    auto lhs = randomVec(std::size_t(m) * k, rng);
    auto rhs = randomVec(std::size_t(k) * n, rng);
    // Start both accumulators from the same nonzero state so the
    // "+=" contract (not "=") is exercised.
    auto acc_ref = randomVec(std::size_t(m) * n, rng);
    auto acc_blk = acc_ref;

    fu::gemmRefAccumulate(acc_ref.data(), lhs.data(), rhs.data(), m, k,
                          n);
    fu::gemmAccumulate(scratch, acc_blk.data(), lhs.data(), rhs.data(),
                       m, k, n);

    for (std::size_t i = 0; i < acc_ref.size(); ++i) {
        const float a = acc_blk[i], b = acc_ref[i];
        ASSERT_LE(std::abs(a - b), kAtol + kRtol * std::abs(b))
            << "shape " << m << "x" << k << "x" << n << " elem " << i
            << " (" << kernel::active().name << " kernel): " << a
            << " vs " << b;
    }
    scratch.release();
}

TEST(GemmKernel, RegistryReportsKnownVariants)
{
    auto tables = selectableTables();
    ASSERT_GE(tables.size(), 2u);  // portable + scalar at minimum
    for (const auto *t : tables) {
        const std::string name = t->name;
        EXPECT_TRUE(name == "portable" || name == "avx2" ||
                    name == "avx512" || name == "neon" ||
                    name == "scalar")
            << name;
    }
}

TEST(GemmKernel, DatapathShapesMatchScalarReference)
{
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        std::mt19937 rng(2024);
        // The shapes the tiny/BERT encoders actually produce:
        // row-slices of 16..64 against K/N up to a few hundred.
        checkShape(32, 128, 128, rng);
        checkShape(32, 128, 384, rng);
        checkShape(16, 64, 32, rng);
        checkShape(16, 32, 64, rng);
        checkShape(64, 256, 128, rng);
    }
}

TEST(GemmKernel, EdgeShapes)
{
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        std::mt19937 rng(7);
        // K = 0 is a no-op (acc must be untouched).
        {
            fu::GemmScratch scratch;
            std::vector<float> acc = randomVec(12, rng), saved = acc;
            std::vector<float> dummy(1, 1.f);
            fu::gemmAccumulate(scratch, acc.data(), dummy.data(),
                               dummy.data(), 3, 0, 4);
            EXPECT_EQ(acc, saved);
            fu::gemmAccumulate(scratch, acc.data(), dummy.data(),
                               dummy.data(), 0, 1, 4);
            fu::gemmAccumulate(scratch, acc.data(), dummy.data(),
                               dummy.data(), 3, 1, 0);
            EXPECT_EQ(acc, saved);
        }
        // Single row / single column / single K — degenerate but legal.
        checkShape(1, 1, 1, rng);
        checkShape(1, 7, 33, rng);
        checkShape(9, 1, 17, rng);
        checkShape(5, 13, 1, rng);
    }
}

TEST(GemmKernel, RandomizedShapesIncludingBlockEdges)
{
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        std::mt19937 rng(99);
        std::uniform_int_distribution<std::uint32_t> dim(1, 70);
        for (int i = 0; i < 30; ++i)
            checkShape(dim(rng), dim(rng), dim(rng), rng);
        // Deliberate non-multiples of every block size in use (2/8
        // rows, 8/16/32 cols) plus exact multiples, same scratch
        // reused.
        for (std::uint32_t m : {1u, 7u, 8u, 9u, 15u, 16u, 17u})
            for (std::uint32_t n : {1u, 15u, 16u, 17u, 31u, 32u, 33u})
                checkShape(m, 19, n, rng);
    }
}

TEST(GemmKernel, ScratchReusesItsPanelsAcrossCalls)
{
    fu::GemmScratch scratch;
    std::mt19937 rng(5);
    const std::uint64_t before = sim::TilePool::instance().acquires();
    {
        auto lhs = randomVec(64 * 64, rng);
        auto rhs = randomVec(64 * 72, rng);
        std::vector<float> acc(64 * 72, 0.f);
        // Panels grow on the first (largest) call — N = 72 exercises
        // the ragged-tail RHS panel too — then every smaller call packs
        // into the same buffers: no further pool traffic.
        fu::gemmAccumulate(scratch, acc.data(), lhs.data(), rhs.data(),
                           64, 64, 72);
        const std::uint64_t grown = sim::TilePool::instance().acquires();
        for (std::uint32_t s = 8; s <= 64; s += 8)
            fu::gemmAccumulate(scratch, acc.data(), lhs.data(),
                               rhs.data(), s, s, s);
        EXPECT_EQ(sim::TilePool::instance().acquires(), grown)
            << "scratch panels re-acquired on shrinking shapes";
        EXPECT_GE(grown, before);
    }
    scratch.release();
}

TEST(GemmKernel, MatchesRefMathMatmul)
{
    // Independent cross-check against src/ref (different loop structure
    // than both kernels): C = A @ B with zero-initialized accumulator,
    // under every table.
    for (const auto *t : selectableTables()) {
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        fu::GemmScratch scratch;
        auto a = ref::randomMatrix(48, 96, 11);
        auto b = ref::randomMatrix(96, 80, 12);
        auto want = ref::matmul(a, b);
        ref::Matrix got(48, 80);
        fu::gemmAccumulate(scratch, got.data.data(), a.data.data(),
                           b.data.data(), 48, 96, 80);
        std::string why;
        EXPECT_TRUE(ref::allclose(got, want, kRtol, kAtol, &why)) << why;
        scratch.release();
    }
}

} // namespace
