#include <gtest/gtest.h>

#include "fu/kernel_registry.hh"
#include "fu/mem_fus.hh"
#include "ref/ref_math.hh"
#include "fu_harness.hh"

namespace {

using namespace rsn;
using rsn::test::FuHarness;
using rsn::test::iotaData;

constexpr FuId kDdr{FuType::Ddr, 0};
constexpr FuId kLpddr{FuType::Lpddr, 0};
constexpr FuId kMeshA{FuType::MeshA, 0};
constexpr FuId kMeshB{FuType::MeshB, 0};
constexpr FuId kMme{FuType::Mme, 0};

TEST(SliceRows, EvenSplit)
{
    auto s = fu::sliceRows(12, 3);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], (std::pair<std::uint32_t, std::uint32_t>{0, 4}));
    EXPECT_EQ(s[2], (std::pair<std::uint32_t, std::uint32_t>{8, 4}));
}

TEST(SliceRows, RemainderGoesToFirstSlices)
{
    auto s = fu::sliceRows(14, 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].second, 4u);
    EXPECT_EQ(s[1].second, 4u);
    EXPECT_EQ(s[2].second, 3u);
    EXPECT_EQ(s[3].second, 3u);
    // Offsets tile the range exactly.
    EXPECT_EQ(s[3].first + s[3].second, 14u);
}

TEST(SliceRows, ClampsWhenFewerRowsThanSlices)
{
    auto s = fu::sliceRows(2, 6);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].second, 1u);
    EXPECT_EQ(s[1].second, 1u);
}

class SliceRowsProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SliceRowsProperty, CoversRangeExactlyOnce)
{
    auto [total, slices] = GetParam();
    auto s = fu::sliceRows(total, slices);
    std::uint32_t pos = 0;
    for (auto [off, ext] : s) {
        EXPECT_EQ(off, pos);
        EXPECT_GT(ext, 0u);
        pos += ext;
    }
    EXPECT_EQ(pos, std::uint32_t(total));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SliceRowsProperty,
                         ::testing::Combine(::testing::Values(1, 7, 48,
                                                              768, 1023),
                                            ::testing::Values(1, 2, 3, 6,
                                                              8)));

// ---------------------------------------------------------------- MemA --

TEST(MemAFu, LoadThenSendSlicesTile)
{
    FuHarness h;
    fu::MemAFu fu(h.eng, {FuType::MemA, 0}, kMeshA);
    sim::Stream &in = h.input(fu, kDdr);
    sim::Stream &out = h.output(fu, kMeshA, 256.0, 8);

    isa::MemAUop load;
    load.rows = 12;
    load.cols = 4;
    load.slices = 3;
    load.src = kDdr;
    load.load = true;
    isa::MemAUop send = load;
    send.load = false;
    send.send = true;

    sim::Task prog = h.program(fu, {load, send});
    sim::Task feed = h.feedChunks(
        in, {sim::makeDataChunk(12, 4, iotaData(12, 4))});
    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(out, 3, got);
    fu.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(got[i].rows, 4u);
        EXPECT_EQ(got[i].cols, 4u);
        // Slice i starts at element 16*i.
        EXPECT_FLOAT_EQ(got[i].at(0, 0), 16.0f * i);
    }
}

TEST(MemAFu, PingPongKeepsPreviousTileWhileLoading)
{
    FuHarness h;
    fu::MemAFu fu(h.eng, {FuType::MemA, 0}, kMeshA);
    sim::Stream &in = h.input(fu, kDdr);
    sim::Stream &out = h.output(fu, kMeshA, 256.0, 8);

    isa::MemAUop load;
    load.rows = 2;
    load.cols = 2;
    load.slices = 1;
    load.src = kDdr;
    load.load = true;
    isa::MemAUop both = load;
    both.send = true;
    isa::MemAUop send;
    send.rows = 2;
    send.cols = 2;
    send.slices = 1;
    send.send = true;

    // Two tiles: [load t0][load t1 & send t0][send t1].
    sim::Task prog = h.program(fu, {load, both, send});
    sim::Task feed = h.feedChunks(
        in, {sim::makeDataChunk(2, 2, {1, 2, 3, 4}),
             sim::makeDataChunk(2, 2, {5, 6, 7, 8})});
    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(out, 2, got);
    fu.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), 2u);
    EXPECT_FLOAT_EQ(got[0].at(0, 0), 1.f);  // first tile sent intact
    EXPECT_FLOAT_EQ(got[1].at(0, 0), 5.f);  // then the second
}

TEST(MemAFu, SendBeforeLoadPanics)
{
    FuHarness h;
    fu::MemAFu fu(h.eng, {FuType::MemA, 0}, kMeshA);
    h.input(fu, kDdr);
    h.output(fu, kMeshA);
    isa::MemAUop send;
    send.rows = 2;
    send.cols = 2;
    send.slices = 1;
    send.send = true;
    sim::Task prog = h.program(fu, {send});
    EXPECT_DEATH(
        {
            fu.start();
            h.run();
        },
        "assertion failed");
}

// ---------------------------------------------------------------- MemB --

TEST(MemBFu, TransposesLoadedTile)
{
    FuHarness h;
    fu::MemBFu fu(h.eng, {FuType::MemB, 0}, kMeshB);
    sim::Stream &in = h.input(fu, kDdr);
    sim::Stream &out = h.output(fu, kMeshB);

    isa::MemBUop load;
    load.rows = 2;
    load.cols = 3;
    load.src = kDdr;
    load.load = true;
    load.transpose = true;
    isa::MemBUop send;
    send.send = true;

    sim::Task prog = h.program(fu, {load, send});
    sim::Task feed = h.feedChunks(
        in, {sim::makeDataChunk(2, 3, {1, 2, 3, 4, 5, 6})});
    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(out, 1, got);
    fu.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].rows, 3u);
    EXPECT_EQ(got[0].cols, 2u);
    EXPECT_FLOAT_EQ(got[0].at(0, 1), 4.f);
    EXPECT_FLOAT_EQ(got[0].at(2, 0), 3.f);
}

TEST(MemBFu, PassThroughWithoutTranspose)
{
    FuHarness h;
    fu::MemBFu fu(h.eng, {FuType::MemB, 1}, kMeshB);
    sim::Stream &in = h.input(fu, kLpddr);
    sim::Stream &out = h.output(fu, kMeshB);

    isa::MemBUop load;
    load.rows = 3;
    load.cols = 2;
    load.src = kLpddr;
    load.load = true;
    isa::MemBUop send;
    send.send = true;
    sim::Task prog = h.program(fu, {load, send});
    sim::Task feed = h.feedChunks(
        in, {sim::makeDataChunk(3, 2, iotaData(3, 2))});
    std::vector<sim::Chunk> got;
    sim::Task col = h.collect(out, 1, got);
    fu.start();
    ASSERT_TRUE(h.run());
    ASSERT_EQ(got[0].rows, 3u);
    EXPECT_FLOAT_EQ(got[0].at(2, 1), 5.f);
}

// ---------------------------------------------------------------- MemC --

struct MemCRig {
    FuHarness h;
    fu::MemCFu fu;
    sim::Stream &from_mme;
    sim::Stream &from_ddr;
    sim::Stream &from_lpddr;
    sim::Stream &to_ddr;
    sim::Stream &to_mesha;

    MemCRig()
        : fu(h.eng, {FuType::MemC, 0}, kMme, kDdr, 277.0),
          from_mme(h.input(fu, kMme)), from_ddr(h.input(fu, kDdr)),
          from_lpddr(h.input(fu, kLpddr)), to_ddr(h.output(fu, kDdr)),
          to_mesha(h.output(fu, kMeshA))
    {
    }
};

TEST(MemCFu, RecvThenStoreSplitsIntoPieces)
{
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 4;
    recv.cols = 4;
    recv.recv_chunks = 1;
    recv.send_chunks = 2;
    recv.recv = true;
    isa::MemCUop store = recv;
    store.recv = false;
    store.store = true;
    sim::Task prog = r.h.program(r.fu, {recv, store});
    sim::Task feed = r.h.feedChunks(
        r.from_mme, {sim::makeDataChunk(4, 4, iotaData(4, 4))});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.to_ddr, 2, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].rows, 2u);
    EXPECT_FLOAT_EQ(got[1].at(0, 0), 8.f);  // second piece starts row 2
}

TEST(MemCFu, SoftmaxAppliedOnRecv)
{
    // Pin the exact scalar kernel table: this test validates the MemC
    // *plumbing* against ref_math at tight tolerance; the vectorized
    // tables' accuracy has its own property suite
    // (test_nonlinear_simd.cc).
    kernel::ScopedIsaOverride exact(kernel::Isa::Scalar);
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 2;
    recv.cols = 4;
    recv.recv = true;
    recv.softmax = true;
    isa::MemCUop send = recv;
    send.recv = false;
    send.softmax = false;
    send.send_mme = true;
    send.send_dest = kMeshA;
    sim::Task prog = r.h.program(r.fu, {recv, send});
    auto m = ref::randomMatrix(2, 4, 5, 3.0f);
    sim::Task feed = r.h.feedChunks(
        r.from_mme, {sim::makeDataChunk(2, 4, m.data)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.to_mesha, 1, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    auto expect = ref::softmax(m);
    ref::Matrix gm(2, 4, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-5f, 1e-6f));
    // Rows sum to one.
    EXPECT_NEAR(gm.at(0, 0) + gm.at(0, 1) + gm.at(0, 2) + gm.at(0, 3),
                1.0f, 1e-5);
}

TEST(MemCFu, ResidualAddAndLayerNormWithParams)
{
    kernel::ScopedIsaOverride exact(kernel::Isa::Scalar);
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 2;
    recv.cols = 4;
    recv.recv = true;
    recv.add_residual = true;
    recv.layernorm = true;
    recv.scale_shift = true;
    isa::MemCUop store = recv;
    store.recv = false;
    store.add_residual = false;
    store.layernorm = false;
    store.scale_shift = false;
    store.store = true;
    sim::Task prog = r.h.program(r.fu, {recv, store});

    auto x = ref::randomMatrix(2, 4, 1);
    auto res = ref::randomMatrix(2, 4, 2);
    std::vector<float> params = {1.5f, 0.5f, 2.0f, 1.0f,   // gamma
                                 0.1f, -0.2f, 0.3f, 0.0f}; // beta
    sim::Task f1 = r.h.feedChunks(r.from_mme,
                                  {sim::makeDataChunk(2, 4, x.data)});
    sim::Task f2 = r.h.feedChunks(r.from_ddr,
                                  {sim::makeDataChunk(2, 4, res.data)});
    sim::Task f3 = r.h.feedChunks(r.from_lpddr,
                                  {sim::makeDataChunk(2, 4, params)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.to_ddr, 1, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());

    std::vector<float> gamma(params.begin(), params.begin() + 4);
    std::vector<float> beta(params.begin() + 4, params.end());
    auto expect = ref::layernorm(ref::add(x, res), gamma, beta);
    ref::Matrix gm(2, 4, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-4f, 1e-5f));
}

TEST(MemCFu, GeluMatchesReference)
{
    kernel::ScopedIsaOverride exact(kernel::Isa::Scalar);
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 3;
    recv.cols = 3;
    recv.recv = true;
    recv.gelu = true;
    isa::MemCUop store = recv;
    store.recv = false;
    store.gelu = false;
    store.store = true;
    sim::Task prog = r.h.program(r.fu, {recv, store});
    auto x = ref::randomMatrix(3, 3, 9, 2.0f);
    sim::Task feed = r.h.feedChunks(r.from_mme,
                                    {sim::makeDataChunk(3, 3, x.data)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.to_ddr, 1, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    ref::Matrix gm(3, 3, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, ref::gelu(x), 1e-5f, 1e-6f));
}

TEST(MemCFu, SimdKernelsRunPerGatherSegment)
{
    // The vectorized dispatch must run over every adopted gather
    // segment exactly like the exact kernels do: assemble a tile from
    // two chunks (two segments) and fuse softmax under the probed-best
    // vectorized table, then compare against ref_math at the documented
    // softmax tolerance (fu/kernel_registry.hh). chooseBest never
    // returns scalar, so this really exercises an approximate kernel.
    auto &reg = kernel::Registry::instance();
    std::vector<kernel::Isa> compiled_in;
    for (const auto *t : reg.tables())
        compiled_in.push_back(t->isa);
    kernel::ScopedIsaOverride simd(
        kernel::chooseBest(reg.probe(), compiled_in));
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 4;
    recv.cols = 16;
    recv.recv = true;
    recv.recv_chunks = 2;
    recv.softmax = true;
    isa::MemCUop send = recv;
    send.recv = false;
    send.softmax = false;
    send.send_mme = true;
    send.send_dest = kMeshA;
    sim::Task prog = r.h.program(r.fu, {recv, send});
    auto m = ref::randomMatrix(4, 16, 31, 4.0f);
    std::vector<float> top(m.data.begin(), m.data.begin() + 2 * 16);
    std::vector<float> bot(m.data.begin() + 2 * 16, m.data.end());
    sim::Task feed = r.h.feedChunks(
        r.from_mme, {sim::makeDataChunk(2, 16, top),
                     sim::makeDataChunk(2, 16, bot)});
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(r.to_mesha, 1, got);
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    auto expect = ref::softmax(m);
    ref::Matrix gm(4, 16, got[0].data.data());
    EXPECT_TRUE(ref::allclose(gm, expect, 1e-5f, 1e-5f));
}

TEST(MemCFu, NonMmComputeTakesTime)
{
    // Softmax on a large tile must consume time at the configured rate.
    MemCRig r;
    isa::MemCUop recv;
    recv.rows = 64;
    recv.cols = 64;
    recv.recv = true;
    recv.softmax = true;
    sim::Task prog = r.h.program(r.fu, {recv});
    sim::Task feed = r.h.feedChunks(r.from_mme,
                                    {sim::makeChunk(64, 64)});
    r.fu.start();
    ASSERT_TRUE(r.h.run());
    // 64*64*5 flops at 277 flops/tick ~ 74 ticks minimum.
    EXPECT_GE(r.h.eng.now(), 70u);
}

} // namespace
