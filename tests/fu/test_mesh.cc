#include <gtest/gtest.h>

#include <stdexcept>

#include "fu/mesh.hh"
#include "fu_harness.hh"

namespace {

using namespace rsn;
using rsn::test::FuHarness;

FuId
memA(int i)
{
    return {FuType::MemA, std::uint8_t(i)};
}
FuId
memC(int i)
{
    return {FuType::MemC, std::uint8_t(i)};
}
FuId
mme(int i)
{
    return {FuType::Mme, std::uint8_t(i)};
}

struct MeshRig {
    FuHarness h;
    fu::MeshFu mesh{h.eng, FuId{FuType::MeshA, 0}};
};

TEST(MeshFu, BroadcastReplicatesToAllDestinations)
{
    MeshRig r;
    sim::Stream &in = r.h.input(r.mesh, memA(0));
    std::vector<sim::Stream *> outs;
    for (int i = 0; i < 3; ++i)
        outs.push_back(&r.h.output(r.mesh, mme(i)));

    isa::MeshUop u;
    u.repeats = 2;
    u.mode = isa::MeshMode::Broadcast;
    for (int i = 0; i < 3; ++i)
        u.routes.push_back({memA(0), mme(i)});
    sim::Task prog = r.h.program(r.mesh, {u});
    sim::Task feed = r.h.feedChunks(
        in, {sim::makeChunk(2, 2, 100), sim::makeChunk(2, 2, 200)});
    std::vector<std::vector<sim::Chunk>> got(3);
    std::vector<sim::Task> cols;
    for (int i = 0; i < 3; ++i)
        cols.push_back(r.h.collect(*outs[i], 2, got[i]));
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(got[i].size(), 2u);
        EXPECT_EQ(got[i][0].tag, 100u);
        EXPECT_EQ(got[i][1].tag, 200u);
    }
}

TEST(MeshFu, BroadcastSharesOneImmutablePooledPayload)
{
    // Broadcast must not copy the payload per destination: every
    // receiver sees the *same* pooled tile by refcount, and the tile is
    // no longer uniquely owned, so mutation (copy-on-transform
    // violations) is structurally impossible.
    MeshRig r;
    sim::Stream &in = r.h.input(r.mesh, memA(0));
    std::vector<sim::Stream *> outs;
    for (int i = 0; i < 3; ++i)
        outs.push_back(&r.h.output(r.mesh, mme(i)));

    isa::MeshUop u;
    u.repeats = 1;
    u.mode = isa::MeshMode::Broadcast;
    for (int i = 0; i < 3; ++i)
        u.routes.push_back({memA(0), mme(i)});
    sim::Task prog = r.h.program(r.mesh, {u});
    sim::Task feed = r.h.feedChunks(
        in, {sim::makeDataChunk(2, 2, {1.f, 2.f, 3.f, 4.f}, 9)});
    std::vector<std::vector<sim::Chunk>> got(3);
    std::vector<sim::Task> cols;
    for (int i = 0; i < 3; ++i)
        cols.push_back(r.h.collect(*outs[i], 1, got[i]));
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    ASSERT_TRUE(got[0][0].hasData());
    const float *payload = got[0][0].data.data();
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(got[i].size(), 1u);
        ASSERT_TRUE(got[i][0].hasData());
        EXPECT_EQ(got[i][0].data.data(), payload)
            << "destination " << i << " got a private copy";
        EXPECT_FALSE(got[i][0].data.unique());
        EXPECT_FLOAT_EQ(got[i][0].at(1, 1), 4.f);
    }
    // Shared payloads reject writable access (immutability after
    // pooling).
    EXPECT_THROW((void)got[0][0].data.mutableData(), std::logic_error);
}

TEST(MeshFu, DistributeDealsRoundRobin)
{
    MeshRig r;
    sim::Stream &in = r.h.input(r.mesh, memA(0));
    std::vector<sim::Stream *> outs;
    for (int i = 0; i < 3; ++i)
        outs.push_back(&r.h.output(r.mesh, mme(i)));

    isa::MeshUop u;
    u.repeats = 2;
    u.mode = isa::MeshMode::Distribute;
    for (int i = 0; i < 3; ++i)
        u.routes.push_back({memA(0), mme(i)});
    sim::Task prog = r.h.program(r.mesh, {u});
    std::vector<sim::Chunk> chunks;
    for (std::uint32_t t = 0; t < 6; ++t)
        chunks.push_back(sim::makeChunk(1, 1, t));
    sim::Task feed = r.h.feedChunks(in, std::move(chunks));
    std::vector<std::vector<sim::Chunk>> got(3);
    std::vector<sim::Task> cols;
    for (int i = 0; i < 3; ++i)
        cols.push_back(r.h.collect(*outs[i], 2, got[i]));
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    // Chunk t goes to destination t % 3, in order.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(got[i][0].tag, std::uint32_t(i));
        EXPECT_EQ(got[i][1].tag, std::uint32_t(i + 3));
    }
}

TEST(MeshFu, ParallelIndependentRoutesOverlap)
{
    MeshRig r;
    sim::Stream &in0 = r.h.input(r.mesh, memA(0), 64.0);
    sim::Stream &in1 = r.h.input(r.mesh, memA(1), 64.0);
    sim::Stream &out0 = r.h.output(r.mesh, mme(0), 64.0);
    sim::Stream &out1 = r.h.output(r.mesh, mme(1), 64.0);

    isa::MeshUop u;
    u.repeats = 4;
    u.mode = isa::MeshMode::Parallel;
    u.routes.push_back({memA(0), mme(0)});
    u.routes.push_back({memA(1), mme(1)});
    sim::Task prog = r.h.program(r.mesh, {u});
    std::vector<sim::Chunk> c0, c1;
    for (int t = 0; t < 4; ++t) {
        c0.push_back(sim::makeChunk(16, 16, t));
        c1.push_back(sim::makeChunk(16, 16, 10 + t));
    }
    sim::Task f0 = r.h.feedChunks(in0, std::move(c0));
    sim::Task f1 = r.h.feedChunks(in1, std::move(c1));
    std::vector<sim::Chunk> g0, g1;
    sim::Task col0 = r.h.collect(out0, 4, g0);
    sim::Task col1 = r.h.collect(out1, 4, g1);
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    // Both lanes saw their own chunks in order.
    EXPECT_EQ(g0[3].tag, 3u);
    EXPECT_EQ(g1[3].tag, 13u);
    // Lanes overlapped: total time ~ one lane's serial time, not two.
    // One chunk = 1 KiB at 64 B/t = 16 ticks in + 16 out; 4 chunks ~128+.
    EXPECT_LT(r.h.eng.now(), 2u * 4u * 40u);
}

TEST(MeshFu, ParallelSharedSourceCyclesDestinations)
{
    // Routes sharing a source alternate deterministically: K to MME_l,
    // V to MME_{3+l} (the attention pattern).
    MeshRig r;
    sim::Stream &in = r.h.input(r.mesh, memA(0));
    sim::Stream &out0 = r.h.output(r.mesh, mme(0));
    sim::Stream &out3 = r.h.output(r.mesh, mme(3));

    isa::MeshUop u;
    u.repeats = 2;
    u.mode = isa::MeshMode::Parallel;
    u.routes.push_back({memA(0), mme(0)});
    u.routes.push_back({memA(0), mme(3)});
    sim::Task prog = r.h.program(r.mesh, {u});
    std::vector<sim::Chunk> chunks;
    for (std::uint32_t t = 0; t < 4; ++t)
        chunks.push_back(sim::makeChunk(1, 1, t));
    sim::Task feed = r.h.feedChunks(in, std::move(chunks));
    std::vector<sim::Chunk> g0, g3;
    sim::Task col0 = r.h.collect(out0, 2, g0);
    sim::Task col3 = r.h.collect(out3, 2, g3);
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    EXPECT_EQ(g0[0].tag, 0u);
    EXPECT_EQ(g3[0].tag, 1u);
    EXPECT_EQ(g0[1].tag, 2u);
    EXPECT_EQ(g3[1].tag, 3u);
}

TEST(MeshFu, EmptyRoutesPanics)
{
    MeshRig r;
    isa::MeshUop u;
    u.repeats = 1;
    sim::Task prog = r.h.program(r.mesh, {u});
    EXPECT_DEATH(
        {
            r.mesh.start();
            r.h.run();
        },
        "assertion failed");
}

TEST(MeshFu, CountsBytesRouted)
{
    MeshRig r;
    sim::Stream &in = r.h.input(r.mesh, memA(0));
    sim::Stream &out = r.h.output(r.mesh, mme(0));
    isa::MeshUop u;
    u.repeats = 3;
    u.mode = isa::MeshMode::Distribute;
    u.routes.push_back({memA(0), mme(0)});
    sim::Task prog = r.h.program(r.mesh, {u});
    std::vector<sim::Chunk> chunks;
    for (int t = 0; t < 3; ++t)
        chunks.push_back(sim::makeChunk(8, 8));
    sim::Task feed = r.h.feedChunks(in, std::move(chunks));
    std::vector<sim::Chunk> got;
    sim::Task col = r.h.collect(out, 3, got);
    r.mesh.start();
    ASSERT_TRUE(r.h.run());
    EXPECT_EQ(r.mesh.stats().bytes_in, 3u * 8 * 8 * 4);
    EXPECT_EQ(r.mesh.stats().bytes_out, 3u * 8 * 8 * 4);
}

} // namespace
