/**
 * @file
 * Harness for unit-testing FU kernels in isolation: builds an engine,
 * wires streams around a single FU, and provides driver coroutines for
 * feeding chunks / uOPs and collecting outputs.
 */

#ifndef RSN_TESTS_FU_HARNESS_HH
#define RSN_TESTS_FU_HARNESS_HH

#include <memory>
#include <vector>

#include "fu/fu.hh"
#include "isa/uop.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace rsn::test {

class FuHarness
{
  public:
    sim::Engine eng;

    /** Create a stream and register it as @p fu's input from @p from. */
    sim::Stream &
    input(fu::Fu &fu, FuId from, double width = 256.0,
          std::size_t depth = 2)
    {
        streams_.push_back(std::make_unique<sim::Stream>(
            eng, width, depth, from.toString() + "->" +
                                   fu.id().toString()));
        fu.addInput(from, streams_.back().get());
        return *streams_.back();
    }

    /** Create a stream and register it as @p fu's output toward @p to. */
    sim::Stream &
    output(fu::Fu &fu, FuId to, double width = 256.0,
           std::size_t depth = 2)
    {
        streams_.push_back(std::make_unique<sim::Stream>(
            eng, width, depth, fu.id().toString() + "->" +
                                   to.toString()));
        fu.addOutput(to, streams_.back().get());
        return *streams_.back();
    }

    /** Push uOPs followed by a halt; returns the driver task. */
    sim::Task
    program(fu::Fu &fu, std::vector<isa::Uop> uops)
    {
        uops.emplace_back(isa::HaltUop{});
        return feed(fu, std::move(uops));
    }

    /** Feed chunks into a stream. */
    sim::Task
    feedChunks(sim::Stream &s, std::vector<sim::Chunk> chunks)
    {
        for (auto &c : chunks)
            co_await s.send(std::move(c));
    }

    /** Collect @p n chunks from a stream into @p out. */
    sim::Task
    collect(sim::Stream &s, std::size_t n, std::vector<sim::Chunk> &out)
    {
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(co_await s.recv());
    }

    /** Run to quiescence; returns true if the engine drained. */
    bool run(Tick max = kTickMax) { return eng.run(max); }

  private:
    sim::Task
    feed(fu::Fu &fu, std::vector<isa::Uop> uops)
    {
        for (auto &u : uops)
            co_await fu.uopQueue().send(std::move(u));
    }

    std::vector<std::unique_ptr<sim::Stream>> streams_;
};

/** Row-major test payload [0, rows*cols). */
inline std::vector<float>
iotaData(std::uint32_t rows, std::uint32_t cols, float scale = 1.0f)
{
    std::vector<float> v(std::size_t(rows) * cols);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = float(i) * scale;
    return v;
}

} // namespace rsn::test

#endif // RSN_TESTS_FU_HARNESS_HH
