#include <gtest/gtest.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;
using rsn::core::MachineConfig;
using rsn::core::RsnMachine;
using rsn::lib::compileModel;
using rsn::lib::ScheduleOptions;
namespace refm = rsn::ref;

lib::Model
linModel(std::uint32_t m, std::uint32_t k, std::uint32_t n)
{
    lib::Model mod;
    mod.name = "lin";
    mod.input_rows = m;
    mod.input_cols = k;
    lib::LinearLayer l;
    l.name = "fc";
    l.m = m;
    l.k = k;
    l.n = n;
    l.bias = true;
    l.in_src = "input";
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

/** Property: functional GEMM through the datapath == reference. */
class GemmShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(GemmShapeProperty, DatapathMatchesReference)
{
    auto [m, k, n] = GetParam();
    RsnMachine mach(MachineConfig::vck190(true));
    auto model = linModel(m, k, n);
    auto compiled = compileModel(mach, model,
                                 ScheduleOptions::optimized());
    lib::initTensors(mach, compiled, 1000 + m + k + n);
    auto refs = lib::referenceForward(mach, model, compiled);
    auto r = mach.run(compiled.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    auto got = lib::readTensor(mach, compiled, "out");
    std::string why;
    EXPECT_TRUE(refm::allclose(got, refs.at("out"), 1e-3f, 1e-3f, &why))
        << why;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeProperty,
    ::testing::Values(std::tuple{6, 1, 1}, std::tuple{7, 3, 5},
                      std::tuple{13, 17, 19}, std::tuple{48, 48, 48},
                      std::tuple{96, 32, 64}, std::tuple{100, 20, 60},
                      std::tuple{64, 256, 32}, std::tuple{32, 8, 200}));

/** Property: attention through the datapath == reference, over shapes. */
class AttentionShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>>
{};

TEST_P(AttentionShapeProperty, DatapathMatchesReference)
{
    auto [batch, seq, heads, pipelined] = GetParam();
    RsnMachine mach(MachineConfig::vck190(true));
    auto model = lib::tinyEncoder(batch, seq, heads * 8, heads, 32,
                                  true);
    auto opts = pipelined ? ScheduleOptions::optimized()
                          : ScheduleOptions::noOptimize();
    auto compiled = compileModel(mach, model, opts);
    lib::initTensors(mach, compiled, 77 + batch + seq);
    auto refs = lib::referenceForward(mach, model, compiled);
    auto r = mach.run(compiled.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    auto got = lib::readTensor(mach, compiled, "L0.attn_out");
    std::string why;
    EXPECT_TRUE(refm::allclose(got, refs.at("L0.attn_out"), 2e-3f, 2e-3f,
                               &why))
        << why;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AttentionShapeProperty,
    ::testing::Values(std::tuple{1, 16, 1, true},
                      std::tuple{1, 16, 2, true},
                      std::tuple{1, 24, 3, true},
                      std::tuple{2, 16, 4, true},
                      std::tuple{1, 16, 5, true},  // heads % lanes != 0
                      std::tuple{1, 16, 4, false},
                      std::tuple{2, 12, 3, false},
                      std::tuple{1, 16, 7, false}));

TEST(TimingProperties, LatencyMonotonicInBandwidth)
{
    double prev = 1e18;
    for (double f : {0.5, 1.0, 2.0, 4.0}) {
        auto cfg = MachineConfig::vck190();
        cfg.ddr.read_gbps *= f;
        cfg.ddr.write_gbps *= f;
        cfg.lpddr.read_gbps *= f;
        RsnMachine mach(cfg);
        auto c = compileModel(mach, lib::bertLargeEncoder(2, 256, true,
                                                          1),
                              ScheduleOptions::optimized());
        auto r = mach.run(c.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        EXPECT_LE(r.ticks, prev);
        prev = r.ticks;
    }
}

TEST(TimingProperties, LatencyMonotonicInBatch)
{
    Tick prev = 0;
    for (std::uint32_t b : {1u, 2u, 4u}) {
        RsnMachine mach(MachineConfig::vck190());
        auto c = compileModel(mach, lib::bertLargeEncoder(b, 256, true,
                                                          1),
                              ScheduleOptions::optimized());
        auto r = mach.run(c.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        EXPECT_GT(r.ticks, prev);
        prev = r.ticks;
    }
}

TEST(TimingProperties, PipelinedAttentionNotSlowerThanSequential)
{
    for (std::uint32_t seq : {128u, 256u}) {
        RsnMachine m1(MachineConfig::vck190());
        auto c1 = compileModel(m1, lib::bertLargeEncoder(2, seq, true,
                                                         1),
                               ScheduleOptions::optimized());
        auto r1 = m1.run(c1.program);
        RsnMachine m2(MachineConfig::vck190());
        auto c2 = compileModel(m2, lib::bertLargeEncoder(2, seq, true,
                                                         1),
                               ScheduleOptions::bwOptimized());
        auto r2 = m2.run(c2.program);
        ASSERT_TRUE(r1.completed && r2.completed);
        // 10% slack: at small sequence lengths the pipelined mapping's
        // per-head mesh traffic can offset part of its traffic savings.
        EXPECT_LE(double(r1.ticks), double(r2.ticks) * 1.10);
    }
}

TEST(TimingProperties, DeterministicAcrossRuns)
{
    Tick first = 0;
    for (int trial = 0; trial < 3; ++trial) {
        RsnMachine mach(MachineConfig::vck190());
        auto c = compileModel(mach, lib::bertLargeEncoder(2, 256, true,
                                                          1),
                              ScheduleOptions::optimized());
        auto r = mach.run(c.program);
        ASSERT_TRUE(r.completed);
        if (trial == 0)
            first = r.ticks;
        else
            EXPECT_EQ(r.ticks, first);
    }
}

TEST(TimingProperties, ComputeAndTrafficInvariantAcrossSchedules)
{
    // Optimizations change *when* data moves, not *what* computes:
    // FLOPs are identical; pipelining reduces DDR traffic.
    RsnMachine m1(MachineConfig::vck190());
    auto c1 = compileModel(m1, lib::bertLargeEncoder(1, 256, true, 1),
                           ScheduleOptions::optimized());
    auto r1 = m1.run(c1.program);
    RsnMachine m2(MachineConfig::vck190());
    auto c2 = compileModel(m2, lib::bertLargeEncoder(1, 256, true, 1),
                           ScheduleOptions::noOptimize());
    auto r2 = m2.run(c2.program);
    ASSERT_TRUE(r1.completed && r2.completed);
    EXPECT_EQ(m1.totalFlops(), m2.totalFlops());
    EXPECT_LT(m1.ddrChannel().bytesWritten(),
              m2.ddrChannel().bytesWritten());
}

TEST(TimingProperties, InfiniteBandwidthApproachesComputeBound)
{
    auto cfg = MachineConfig::vck190();
    cfg.ddr.read_gbps *= 1000;
    cfg.ddr.write_gbps *= 1000;
    cfg.lpddr.read_gbps *= 1000;
    RsnMachine mach(cfg);
    auto model = lib::bertLargeEncoder(4, 512, true, 1);
    auto c = compileModel(mach, model, ScheduleOptions::optimized());
    auto r = mach.run(c.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    // Achieved TFLOPS should close in on the 6.8 TFLOPS GEMM ceiling.
    EXPECT_GT(mach.achievedTflops(r), 4.5);
}

TEST(TimingProperties, BusyTicksNeverExceedRunLength)
{
    RsnMachine mach(MachineConfig::vck190());
    auto c = compileModel(mach, lib::bertLargeEncoder(1, 128, true, 1),
                          ScheduleOptions::optimized());
    auto r = mach.run(c.program);
    ASSERT_TRUE(r.completed);
    for (const auto &f : mach.fus())
        EXPECT_LE(f->stats().busy_ticks, r.ticks) << f->name();
    EXPECT_LE(mach.ddrChannel().busyTicks(), r.ticks);
}

} // namespace
