#include <gtest/gtest.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"

namespace {

using namespace rsn;
using core::MachineConfig;
using core::RsnMachine;

/**
 * Deadlock detection and diagnosis (paper Sec. 3.3): a quiesced machine
 * with blocked FUs must be reported as deadlocked — with an actionable
 * stall report — never as completed, and never hang.
 */

TEST(Deadlock, ShallowPacketFifoDeadlocksAndIsDiagnosed)
{
    auto cfg = MachineConfig::vck190();
    cfg.fetch_fifo_depth = 4;  // below the threshold for this shape
    RsnMachine mach(cfg);
    auto c = lib::compileModel(mach, lib::bertLargeEncoder(2, 128, true,
                                                           1),
                               lib::ScheduleOptions::bwOptimized());
    auto r = mach.run(c.program);
    ASSERT_FALSE(r.completed);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_FALSE(r.timed_out);
    // The diagnosis names the stalled fetch unit and blocked FUs.
    EXPECT_NE(r.diagnosis.find("fetch"), std::string::npos);
    EXPECT_NE(r.diagnosis.find("blocked"), std::string::npos);
}

TEST(Deadlock, DefaultDepthsCompleteTheSameProgram)
{
    RsnMachine mach(MachineConfig::vck190());
    auto c = lib::compileModel(mach, lib::bertLargeEncoder(2, 128, true,
                                                           1),
                               lib::ScheduleOptions::bwOptimized());
    auto r = mach.run(c.program);
    EXPECT_TRUE(r.completed) << r.diagnosis;
    EXPECT_TRUE(r.diagnosis.empty());
}

TEST(Deadlock, TruncatedProgramReportsUnhaltedFus)
{
    // A program that never halts the FUs quiesces with every FU parked
    // on its uOP queue: detected as a deadlock, not completion.
    RsnMachine mach(MachineConfig::vck190());
    isa::RsnProgram prog;
    isa::RsnPacket p;
    p.opcode = FuType::MeshA;
    p.mask = 1;
    isa::MeshUop mu;
    mu.repeats = 1;
    mu.mode = isa::MeshMode::Distribute;
    mu.routes.push_back({{FuType::MemA, 0}, {FuType::Mme, 0}});
    p.mops.emplace_back(mu);
    prog.append(p);
    auto r = mach.run(prog);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_NE(r.diagnosis.find("MeshA"), std::string::npos);
}

TEST(Deadlock, TickLimitReportsTimeoutNotDeadlock)
{
    RsnMachine mach(MachineConfig::vck190());
    auto c = lib::compileModel(mach, lib::bertLargeEncoder(1, 128, true,
                                                           1),
                               lib::ScheduleOptions::optimized());
    auto r = mach.run(c.program, /*max_ticks=*/1000);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Deadlock, EmptyProgramWithHaltsCompletesImmediately)
{
    RsnMachine mach(MachineConfig::vck190());
    isa::RsnProgram prog;
    std::array<int, kNumFuTypes> counts{};
    counts[int(FuType::Mme)] = 6;
    counts[int(FuType::MemA)] = 3;
    counts[int(FuType::MemB)] = 3;
    counts[int(FuType::MemC)] = 6;
    counts[int(FuType::MeshA)] = 1;
    counts[int(FuType::MeshB)] = 1;
    counts[int(FuType::Ddr)] = 1;
    counts[int(FuType::Lpddr)] = 1;
    prog.appendHalts(counts);
    auto r = mach.run(prog);
    EXPECT_TRUE(r.completed) << r.diagnosis;
}

TEST(Deadlock, MachineRunIsSingleUse)
{
    RsnMachine mach(MachineConfig::vck190());
    isa::RsnProgram prog;
    std::array<int, kNumFuTypes> counts{};
    counts[int(FuType::Ddr)] = 1;
    prog.appendHalts(counts);
    // First run only halts DDR: other FUs never halt -> deadlock state.
    auto r = mach.run(prog);
    EXPECT_FALSE(r.completed);
    EXPECT_THROW((void)mach.run(prog), std::logic_error);
}

} // namespace
