#include <gtest/gtest.h>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

namespace {

using rsn::core::MachineConfig;
using rsn::core::RsnMachine;
using rsn::core::RunResult;
using rsn::lib::compileModel;
using rsn::lib::LinearLayer;
using rsn::lib::Model;
using rsn::lib::ScheduleOptions;
namespace ref = rsn::ref;

Model
singleLinear(std::uint32_t m, std::uint32_t k, std::uint32_t n, bool bias,
             bool gelu = false, bool layernorm = false,
             bool residual = false)
{
    Model mod;
    mod.name = "single-linear";
    mod.input_rows = m;
    mod.input_cols = k;
    LinearLayer l;
    l.name = "fc";
    l.m = m;
    l.k = k;
    l.n = n;
    l.bias = bias;
    l.gelu = gelu;
    l.layernorm = layernorm;
    l.residual = residual;
    l.in_src = "input";
    if (residual)
        l.residual_src = "input";  // requires n == k
    l.out_name = "out";
    mod.segments.emplace_back(l);
    return mod;
}

/** Compile + init + run + functional-check one model. */
RunResult
runFunctional(const Model &model, ScheduleOptions opts,
              float rtol = 1e-3f, float atol = 1e-3f)
{
    RsnMachine mach(MachineConfig::vck190(/*functional=*/true));
    auto compiled = compileModel(mach, model, opts);
    rsn::lib::initTensors(mach, compiled, 42);
    auto refs = rsn::lib::referenceForward(mach, model, compiled);
    RunResult r = mach.run(compiled.program);
    EXPECT_TRUE(r.completed) << r.diagnosis;
    for (const auto &[name, expect] : refs) {
        if (name == "input" || !compiled.hasTensor(name))
            continue;
        auto got = rsn::lib::readTensor(mach, compiled, name);
        std::string why;
        EXPECT_TRUE(ref::allclose(got, expect, rtol, atol, &why))
            << "tensor " << name << ": " << why;
    }
    return r;
}

TEST(MachineFunctional, PlainGemmMatchesReference)
{
    runFunctional(singleLinear(48, 32, 40, false),
                  ScheduleOptions::optimized());
}

TEST(MachineFunctional, GemmWithBias)
{
    runFunctional(singleLinear(48, 32, 40, true),
                  ScheduleOptions::optimized());
}

TEST(MachineFunctional, GemmWithGelu)
{
    runFunctional(singleLinear(24, 16, 16, true, true),
                  ScheduleOptions::optimized());
}

TEST(MachineFunctional, GemmWithResidualAndLayerNorm)
{
    runFunctional(singleLinear(24, 16, 16, true, false, true, true),
                  ScheduleOptions::optimized());
}

TEST(MachineFunctional, GemmNoOptimizeSchedule)
{
    runFunctional(singleLinear(48, 32, 40, true),
                  ScheduleOptions::noOptimize());
}

TEST(MachineFunctional, GemmMultiTileK)
{
    // Forces several K accumulation steps (k > k_step).
    auto opts = ScheduleOptions::optimized();
    opts.k_step = 16;
    runFunctional(singleLinear(24, 64, 24, true), opts);
}

TEST(MachineFunctional, GemmMultiTileMN)
{
    // Forces multiple output tiles in both M and N.
    auto opts = ScheduleOptions::optimized();
    opts.out_tile_m = 16;
    opts.out_tile_n = 16;
    opts.k_step = 16;
    runFunctional(singleLinear(40, 32, 40, true), opts);
}

TEST(MachineFunctional, TinyEncoderOptimized)
{
    auto model = rsn::lib::tinyEncoder(1, 24, 32, 4, 64, true);
    runFunctional(model, ScheduleOptions::optimized(), 2e-3f, 2e-3f);
}

TEST(MachineFunctional, TinyEncoderNoOptimize)
{
    auto model = rsn::lib::tinyEncoder(1, 24, 32, 4, 64, false);
    runFunctional(model, ScheduleOptions::noOptimize(), 2e-3f, 2e-3f);
}

TEST(MachineFunctional, TinyEncoderBatch2)
{
    auto model = rsn::lib::tinyEncoder(2, 16, 32, 4, 48, true);
    runFunctional(model, ScheduleOptions::optimized(), 2e-3f, 2e-3f);
}

TEST(MachineTiming, OptimizedFasterThanNoOptimize)
{
    auto model = rsn::lib::bertLargeEncoder(1, 128, false, 1);
    RsnMachine m1(MachineConfig::vck190());
    auto c1 = compileModel(m1, model, ScheduleOptions::noOptimize());
    auto r1 = m1.run(c1.program);
    ASSERT_TRUE(r1.completed) << r1.diagnosis;

    RsnMachine m2(MachineConfig::vck190());
    auto model2 = rsn::lib::bertLargeEncoder(1, 128, true, 1);
    auto c2 = compileModel(m2, model2, ScheduleOptions::optimized());
    auto r2 = m2.run(c2.program);
    ASSERT_TRUE(r2.completed) << r2.diagnosis;

    EXPECT_LT(r2.ticks, r1.ticks);
}

} // namespace
