#include <gtest/gtest.h>

#include "core/area.hh"
#include "core/machine.hh"
#include "core/power.hh"
#include "core/report.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"

namespace {

using namespace rsn;
using core::MachineConfig;
using core::RsnMachine;

struct PowerFixture : public ::testing::Test {
    void
    SetUp() override
    {
        mach = std::make_unique<RsnMachine>(MachineConfig::vck190());
        auto c = lib::compileModel(*mach,
                                   lib::bertLargeEncoder(2, 512, true, 1),
                                   lib::ScheduleOptions::optimized());
        run = mach->run(c.program);
        ASSERT_TRUE(run.completed) << run.diagnosis;
    }

    std::unique_ptr<RsnMachine> mach;
    core::RunResult run;
};

TEST_F(PowerFixture, AieDominatesLikeTable4)
{
    core::PowerModel power;
    auto rows = power.breakdown(*mach, run);
    ASSERT_FALSE(rows.empty());
    // Sorted descending: AIE first with ~60%+ share, MemC second.
    EXPECT_EQ(rows[0].component, "AIE");
    EXPECT_GT(rows[0].percent, 50.0);
    EXPECT_EQ(rows[1].component, "MemC");
    EXPECT_GT(rows[1].percent, 10.0);
}

TEST_F(PowerFixture, DecoderPowerIsNegligible)
{
    core::PowerModel power;
    for (const auto &r : power.breakdown(*mach, run)) {
        if (r.component == "Decoder")
            EXPECT_LT(r.percent, 1.0);  // paper: 0.08%
    }
}

TEST_F(PowerFixture, OperatingExceedsDynamic)
{
    core::PowerModel power;
    double dyn = power.dynamicWatts(*mach, run);
    double op = power.operatingWatts(*mach, run);
    EXPECT_GT(dyn, 0.0);
    EXPECT_GT(op, dyn);
    // Board-level band of Table 10 (45.5 W operating / 18.2 dynamic).
    EXPECT_LT(op, 80.0);
    EXPECT_GT(op, 25.0);
}

TEST_F(PowerFixture, EnergyConsistentWithPowerAndTime)
{
    core::PowerModel power;
    double e = power.energyJ(*mach, run, /*dynamic=*/true);
    EXPECT_NEAR(e, power.dynamicWatts(*mach, run) * run.ms / 1e3,
                1e-9);
}

TEST(PowerModel, IdleMachineDrawsNoDynamicPower)
{
    RsnMachine mach(MachineConfig::vck190());
    core::RunResult r;
    r.ticks = 1000000;
    r.ms = ticksToMs(r.ticks);
    core::PowerModel power;
    EXPECT_NEAR(power.dynamicWatts(mach, r), 0.0, 1e-6);
}

TEST(AreaModel, DecoderFootprintMatchesPaperBand)
{
    auto a = core::AreaModel::decoderArea(MachineConfig::vck190());
    // Paper: 11.7k LUT, 8.6k FF, 5 DSP, 4 BRAM (~3% of LUTs).
    EXPECT_NEAR(double(a.lut), 11700.0, 2500.0);
    EXPECT_NEAR(double(a.ff), 8600.0, 2500.0);
    EXPECT_LE(a.dsp, 8u);
    EXPECT_LE(a.bram, 8u);
    double pct = core::AreaModel::decoderLutPercent(
        MachineConfig::vck190());
    EXPECT_GT(pct, 1.0);
    EXPECT_LT(pct, 5.0);
}

TEST(AreaModel, AreaGrowsWithDatapathSize)
{
    auto small = MachineConfig::vck190();
    auto big = MachineConfig::vck190();
    big.num_mme = 8;
    big.num_mem_c = 8;
    big.num_mem_a = 6;
    EXPECT_GT(core::AreaModel::decoderArea(big).lut,
              core::AreaModel::decoderArea(small).lut);
}

TEST(Report, TablePrintsAllCells)
{
    core::Table t("test table");
    t.header({"a", "b"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    // Smoke: printing must not crash, and helpers format correctly.
    t.print();
    EXPECT_EQ(core::Table::num(1.2345, 2), "1.23");
    EXPECT_EQ(core::Table::pct(12.345, 1), "12.3%");
}

} // namespace
