#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/tracer.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/segmenter.hh"

namespace {

using namespace rsn;

TEST(Tracer, RecordsKernelSlicesDuringARun)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    core::Tracer tracer(mach, /*period=*/64);
    auto c = lib::compileModel(mach, lib::bertLargeEncoder(1, 128, true,
                                                           1),
                               lib::ScheduleOptions::optimized());
    auto r = mach.run(c.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    EXPECT_GT(tracer.samples(), 100u);
    ASSERT_FALSE(tracer.slices().empty());
    // Slices are well-formed and bounded by the run.
    for (const auto &s : tracer.slices()) {
        EXPECT_LE(s.begin, s.end);
        EXPECT_LE(s.end, r.ticks);
        EXPECT_FALSE(s.track.empty());
    }
    // Every MME shows activity.
    for (int i = 0; i < 6; ++i) {
        std::string name = "MME" + std::to_string(i);
        bool found = false;
        for (const auto &s : tracer.slices())
            found |= s.track == name;
        EXPECT_TRUE(found) << name;
    }
}

TEST(Tracer, ChromeJsonIsStructurallySound)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    core::Tracer tracer(mach, 64);
    auto c = lib::compileModel(mach, lib::bertLargeEncoder(1, 128, true,
                                                           1),
                               lib::ScheduleOptions::optimized());
    (void)mach.run(c.program);
    std::string json = tracer.toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Balanced braces (rough structural check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Segmenter, ClassifiesBertSegmentsLikeThePaper)
{
    lib::Segmenter seg(lib::PlatformBudget{});
    auto plan = seg.plan(lib::bertLargeEncoder(6, 512, true, 1));
    ASSERT_EQ(plan.segments.size(), 5u);
    // QKV / dense / FF are compute-bound single-MM segments.
    EXPECT_TRUE(plan.segments[0].compute_bound);
    EXPECT_TRUE(plan.segments[3].compute_bound);
    // Attention is memory-bound and picks the pipeline mapping.
    EXPECT_FALSE(plan.segments[1].compute_bound);
    EXPECT_EQ(plan.segments[1].mapping, lib::MappingType::Pipeline);
    EXPECT_GT(plan.total_est_ms, 5.0);
    EXPECT_LT(plan.total_est_ms, 40.0);
}

TEST(Segmenter, PipelineRequiresOnChipCapacity)
{
    // With a tiny on-chip budget, attention cannot pipeline.
    lib::Segmenter seg(lib::PlatformBudget{}, /*capacity=*/64 << 10);
    auto plan = seg.plan(lib::bertLargeEncoder(6, 512, true, 1));
    EXPECT_NE(plan.segments[1].mapping, lib::MappingType::Pipeline);
}

TEST(Segmenter, UnionRequirementsMatchRsnXnnTopology)
{
    // Stage 3 (Sec. 4.2): the machine's "union datapath" must provide
    // every edge class any segment of any evaluated model needs.
    lib::Segmenter seg(lib::PlatformBudget{});
    auto topo = core::buildRsnXnnTopology(core::MachineConfig::vck190());
    for (auto model : {lib::bertLargeEncoder(6, 512, true, 1),
                       lib::vitEncoder(6, false, 1), lib::ncf(6),
                       lib::mlp(6)}) {
        auto plan = seg.plan(model);
        auto missing = lib::Segmenter::missingEdges(plan, topo);
        EXPECT_TRUE(missing.empty())
            << model.name << " missing " << missing.size() << " edges";
    }
}

TEST(Segmenter, LayerNormNeedsLpddrToMemC)
{
    lib::Segmenter seg(lib::PlatformBudget{});
    auto plan = seg.plan(lib::bertLargeEncoder(1, 128, true, 1));
    EXPECT_TRUE(plan.required.lpddr_to_mem_c);
    EXPECT_TRUE(plan.required.ddr_to_mem_c);  // residuals
    EXPECT_TRUE(plan.required.memc_to_mesh);  // attention pipeline

    auto mlp_plan = seg.plan(lib::ncf(1));
    EXPECT_FALSE(mlp_plan.required.memc_to_mesh);
    EXPECT_FALSE(mlp_plan.required.ddr_to_mem_b);
}

TEST(Segmenter, PlanToStringListsEverySegment)
{
    lib::Segmenter seg(lib::PlatformBudget{});
    auto plan = seg.plan(lib::bertLargeEncoder(1, 128, true, 1));
    std::string s = plan.toString();
    EXPECT_NE(s.find("L0.qkv"), std::string::npos);
    EXPECT_NE(s.find("pipeline"), std::string::npos);
    EXPECT_NE(s.find("total estimate"), std::string::npos);
}

} // namespace
