/**
 * @file
 * MachineConfig::validate() negative tier (ISSUE 6): structural config
 * errors that used to surface as mid-run asserts (or not at all) are
 * rejected up front with StatusCode::InvalidConfig, and building a
 * machine from a bad config throws a catchable std::runtime_error
 * instead of tearing the process down.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/config.hh"
#include "core/machine.hh"

namespace {

using namespace rsn;

core::MachineConfig
good()
{
    return core::MachineConfig::vck190();
}

void
expectInvalid(const core::MachineConfig &cfg, const char *what)
{
    Status s = cfg.validate();
    EXPECT_FALSE(s.ok()) << what;
    EXPECT_EQ(s.code, StatusCode::InvalidConfig) << what;
    EXPECT_FALSE(s.message.empty()) << what;
}

TEST(ConfigValidate, DefaultAndVck190AreValid)
{
    EXPECT_TRUE(core::MachineConfig{}.validate().ok());
    Status s = good().validate();
    EXPECT_TRUE(s.ok()) << s.toString();
    EXPECT_TRUE(good().validate());  // explicit operator bool
}

TEST(ConfigValidate, RejectsZeroOrOverflowingFuCounts)
{
    auto cfg = good();
    cfg.num_mme = 0;
    expectInvalid(cfg, "zero MMEs");

    cfg = good();
    cfg.num_mem_a = -1;
    expectInvalid(cfg, "negative MemA count");

    cfg = good();
    cfg.num_mme = 300;  // FuId packs the index into 8 bits
    cfg.num_mem_c = 300;
    expectInvalid(cfg, "FuId overflow");

    cfg = good();
    cfg.num_mem_c = cfg.num_mme + 1;
    expectInvalid(cfg, "MME/MemC partner mismatch");
}

TEST(ConfigValidate, RejectsNonPositiveRatesAndWidths)
{
    auto cfg = good();
    cfg.ddr.read_gbps = 0;
    expectInvalid(cfg, "zero DDR bandwidth");

    cfg = good();
    cfg.lpddr.write_gbps = -1.0;
    expectInvalid(cfg, "negative LPDDR bandwidth");

    cfg = good();
    cfg.widths.mesha_to_mme = 0;
    expectInvalid(cfg, "zero stream width");

    cfg = good();
    cfg.widths.memc_to_ddr =
        std::numeric_limits<double>::infinity();
    expectInvalid(cfg, "infinite stream width");

    cfg = good();
    cfg.memc_flops_per_tick = 0;
    expectInvalid(cfg, "zero MemC rate");

    cfg = good();
    cfg.clocks.plHz = 0;
    expectInvalid(cfg, "zero PL clock");
}

TEST(ConfigValidate, RejectsZeroDepthsAndBudgets)
{
    auto cfg = good();
    cfg.stream_depth = 0;
    expectInvalid(cfg, "zero stream depth");

    cfg = good();
    cfg.uop_fifo_depth = 0;
    expectInvalid(cfg, "zero uOP FIFO depth");

    cfg = good();
    cfg.fetch_fifo_depth = 0;
    expectInvalid(cfg, "zero fetch FIFO depth");

    cfg = good();
    cfg.decoder_ticks_per_uop = 0;
    expectInvalid(cfg, "zero decoder cost");

    cfg = good();
    cfg.watchdog_events_per_tick = 0;
    expectInvalid(cfg, "zero watchdog budget");
}

TEST(ConfigValidate, PrecisionPolicyRejectsUnimplementedDtypes)
{
    // I8 is reserved enum space (no quantization parameters in the
    // datapath yet): validate() must refuse it up front, naming the
    // field, rather than tripping a kernel assert mid-run.
    auto cfg = good();
    cfg.precision.linear_weights = Dtype::I8;
    expectInvalid(cfg, "i8 weights");
    Status s = cfg.validate();
    EXPECT_NE(s.message.find("linear_weights"), std::string::npos)
        << s.message;

    cfg = good();
    cfg.precision.attention_activations = Dtype::I8;
    expectInvalid(cfg, "i8 attention activations");

    // Every combination of the implemented dtypes passes.
    for (Dtype w : {Dtype::F32, Dtype::Bf16, Dtype::F16})
        for (Dtype a : {Dtype::F32, Dtype::Bf16, Dtype::F16}) {
            cfg = good();
            cfg.precision.linear_weights = w;
            cfg.precision.linear_activations = a;
            cfg.precision.attention_activations = a;
            EXPECT_TRUE(cfg.validate().ok())
                << dtypeName(w) << "/" << dtypeName(a);
        }
}

TEST(ConfigValidate, PropagatesFaultSpecErrors)
{
    auto cfg = good();
    cfg.fault.dram_rate = 2.0;
    expectInvalid(cfg, "bad fault rate");

    cfg = good();
    cfg.fault = sim::FaultSpec::chaosPreset(9);
    Status s = cfg.validate();
    EXPECT_TRUE(s.ok()) << s.toString();
}

TEST(ConfigValidate, MachineConstructionFromBadConfigThrows)
{
    // The error is catchable (std::runtime_error via rsn_fatal), fires
    // before any datapath is built, and names the offending field.
    auto cfg = good();
    cfg.widths.mme_to_memc = 0;
    try {
        core::RsnMachine mach(cfg);
        FAIL() << "bad config built a machine";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("mme_to_memc"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidate, MachineConstructionFromGoodConfigDoesNotThrow)
{
    EXPECT_NO_THROW({ core::RsnMachine mach(good()); });
}

} // namespace
