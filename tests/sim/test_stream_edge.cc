/**
 * @file
 * Stream edge cases the coroutine-free rewrite must preserve: FIFO
 * serialization across many senders, minimum transfer durations,
 * busy-tick accounting under back-pressure, trySend/post/flush
 * semantics, and exact integer transfer timing for huge chunks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace {

using rsn::Bytes;
using rsn::Tick;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::Stream;
using rsn::sim::Task;

Task
sendOne(Stream &s, std::uint32_t tag)
{
    co_await s.send(makeChunk(16, 16, tag));
}

Task
recvChunks(Stream &s, int n, std::vector<Chunk> &out)
{
    for (int i = 0; i < n; ++i)
        out.push_back(co_await s.recv());
}

TEST(StreamEdge, ManySendersOneLinkSerializeInArrivalOrder)
{
    Engine e;
    Stream s(e, 64.0, 2, "many");
    std::vector<Task> senders;
    for (std::uint32_t i = 0; i < 8; ++i)
        senders.push_back(sendOne(s, i));
    std::vector<Chunk> got;
    Task rcv = recvChunks(s, 8, got);
    ASSERT_TRUE(e.run());
    // 16x16 floats = 1024 B = 16 ticks each; 8 transfers serialize.
    EXPECT_EQ(e.now(), 8u * 16u);
    EXPECT_EQ(s.busyTicks(), 8u * 16u);
    ASSERT_EQ(got.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i].tag, i) << "send order not FIFO at " << i;
    for (auto &t : senders)
        EXPECT_TRUE(t.done());
}

TEST(StreamEdge, ZeroByteChunkStillTakesOneTick)
{
    Engine e;
    Stream s(e, 64.0, 2, "zero");
    EXPECT_EQ(s.transferTicks(0), 1u);
    auto snd = [&]() -> Task {
        co_await s.send(Chunk{0, 0, {}, 42});
    }();
    std::vector<Chunk> got;
    Task rcv = recvChunks(s, 1, got);
    ASSERT_TRUE(e.run());
    EXPECT_EQ(e.now(), 1u);
    EXPECT_EQ(s.busyTicks(), 1u);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].tag, 42u);
    EXPECT_EQ(s.bytesTransferred(), Bytes(0));
}

TEST(StreamEdge, SubWidthChunkRoundsUpToOneTick)
{
    Engine e;
    Stream s(e, 4096.0, 2, "tiny");
    EXPECT_EQ(s.transferTicks(1), 1u);
    EXPECT_EQ(s.transferTicks(4096), 1u);
    EXPECT_EQ(s.transferTicks(4097), 2u);
}

TEST(StreamEdge, BusyTicksCountTransfersNotBackPressureStalls)
{
    // Depth-1 FIFO; the consumer only starts popping at tick 1000. The
    // link is stalled (not busy) from tick 64 until the pop admits the
    // second transfer, so busyTicks must be exactly 2 x 64.
    Engine e;
    Stream s(e, 64.0, 1, "bp");
    auto producer = [](Stream &st) -> Task {
        co_await st.send(makeChunk(32, 32, 0));  // 4096 B = 64 ticks
        co_await st.send(makeChunk(32, 32, 1));
    };
    auto consumer = [](Engine &eng, Stream &st,
                       std::vector<Tick> &at) -> Task {
        co_await eng.delay(1000);
        (void)co_await st.recv();
        at.push_back(eng.now());
        (void)co_await st.recv();
        at.push_back(eng.now());
    };
    std::vector<Tick> pop_at;
    Task snd = producer(s);
    Task rcv = consumer(e, s, pop_at);
    ASSERT_TRUE(e.run());
    EXPECT_EQ(s.busyTicks(), 128u);
    ASSERT_EQ(pop_at.size(), 2u);
    EXPECT_EQ(pop_at[0], 1000u);
    EXPECT_EQ(pop_at[1], 1064u);  // admitted at 1000, 64-tick transfer
    EXPECT_EQ(e.now(), 1064u);
}

TEST(StreamEdge, TrySendHonorsCapacityAndQueuedSenders)
{
    Engine e;
    Stream s(e, 4096.0, 2, "try");
    EXPECT_TRUE(s.trySend(makeChunk(1, 1, 0)));
    EXPECT_TRUE(s.trySend(makeChunk(1, 1, 1)));
    EXPECT_FALSE(s.trySend(makeChunk(1, 1, 2))) << "FIFO is full";
    // A blocked coroutine sender queues behind the full FIFO; trySend
    // must not jump that queue even after slots free up.
    Task blocked = sendOne(s, 3);
    EXPECT_TRUE(s.hasBlockedSender());
    std::vector<Chunk> got;
    Task rcv = recvChunks(s, 3, got);
    ASSERT_TRUE(e.run());
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].tag, 0u);
    EXPECT_EQ(got[1].tag, 1u);
    EXPECT_EQ(got[2].tag, 3u);
    EXPECT_TRUE(blocked.done());
    // Drained: trySend succeeds again.
    EXPECT_TRUE(s.trySend(makeChunk(1, 1, 4)));
}

TEST(StreamEdge, PostAndFlushDeliverEverythingInOrder)
{
    Engine e;
    Stream s(e, 4096.0, 2, "post");
    Tick flushed_at = 0;
    auto producer = [](Stream &st, Tick &done_at) -> Task {
        for (std::uint32_t i = 0; i < 5; ++i)
            st.post(makeChunk(32, 32, i));  // 1 tick each, depth 2
        co_await st.flush();
        done_at = st.busyTicks();
    };
    std::vector<Chunk> got;
    Task prod = producer(s, flushed_at);
    Task rcv = recvChunks(s, 5, got);
    ASSERT_TRUE(e.run());
    EXPECT_TRUE(prod.done());
    ASSERT_EQ(got.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(got[i].tag, i);
    // flush() resumed only after all five transfers finished.
    EXPECT_EQ(flushed_at, 5u);
    EXPECT_EQ(s.chunksTransferred(), 5u);
}

TEST(StreamEdge, FlushOnDrainedStreamDoesNotSuspend)
{
    Engine e;
    Stream s(e, 64.0, 2, "noop-flush");
    bool done = false;
    auto t = [&]() -> Task {
        co_await s.flush();
        done = true;
    }();
    EXPECT_TRUE(done) << "flush of an idle stream must complete eagerly";
    ASSERT_TRUE(e.run());
}

TEST(StreamEdge, TransferTicksIsExactIntegerCeilDivision)
{
    Engine e;
    // Regression: the seed computed ticks in double arithmetic, which
    // mis-rounds once bytes exceed 2^53 (FP53 mantissa). The link
    // scheduler must use integer ceil-division.
    {
        Stream s(e, 1.0, 1, "w1");
        Bytes b = (Bytes(1) << 53) + 1;  // not representable in double
        EXPECT_EQ(s.transferTicks(b), b);
    }
    {
        Stream s(e, 64.0, 1, "w64");
        Bytes b = (Bytes(1) << 53) + 64;
        // Exact: (2^53 + 64) / 64 = 2^47 + 1. The double formula rounds
        // (2^53 + 127) up to 2^53 + 128 and lands one tick high.
        EXPECT_EQ(s.transferTicks(b), (Tick(1) << 47) + 1);
    }
    {
        Stream s(e, 127.0, 1, "w127");  // non-power-of-two width
        Bytes b = (Bytes(1) << 53) + 127;
        Bytes expect = ((Bytes(1) << 53) + 127 + 126) / 127;
        EXPECT_EQ(s.transferTicks(b), expect);
        EXPECT_EQ(s.transferTicks(127), 1u);
        EXPECT_EQ(s.transferTicks(128), 2u);
    }
}

} // namespace
