/**
 * @file
 * GatherTile semantics (ISSUE 4): scatter/gather composition of pooled
 * tile segments, lazy materialization, adjacent-view knitting, and the
 * per-segment copy-on-write rule.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/tile_pool.hh"

namespace {

using rsn::sim::GatherTile;
using rsn::sim::TilePool;
using rsn::sim::TileRef;

TileRef
filledTile(std::uint64_t elems, float base)
{
    TileRef t = TilePool::instance().acquire(elems);
    float *d = t.mutableData();
    for (std::uint64_t i = 0; i < elems; ++i)
        d[i] = base + float(i);
    return t;
}

TEST(GatherTile, AdoptsSegmentsWithoutCopying)
{
    GatherTile g;
    EXPECT_TRUE(g.empty());
    TileRef a = filledTile(64, 0.f);
    const float *pa = a.data();
    g.append(std::move(a), 64);
    TileRef b = filledTile(128, 1000.f);
    const float *pb = b.data();
    g.append(std::move(b), 100);  // logical size below bucket capacity
    EXPECT_EQ(g.segments(), 2u);
    EXPECT_EQ(g.elems(), 164u);
    EXPECT_FALSE(g.contiguous());
    // The segments are the very buffers the producers filled.
    EXPECT_EQ(g.segment(0).data(), pa);
    EXPECT_EQ(g.segment(1).data(), pb);
    g.clear();
    EXPECT_TRUE(g.empty());
}

TEST(GatherTile, WindowInsideOneSegmentIsAView)
{
    GatherTile g;
    g.append(filledTile(64, 0.f), 64);
    g.append(filledTile(64, 100.f), 64);
    const std::uint64_t acquires = TilePool::instance().acquires();
    TileRef w = g.window(70, 32);  // inside segment 1: [6, 38)
    EXPECT_EQ(TilePool::instance().acquires(), acquires) << "view copied";
    EXPECT_EQ(w.data(), g.segment(1).data() + 6);
    EXPECT_FLOAT_EQ(w.data()[0], 106.f);
    EXPECT_EQ(g.segments(), 2u) << "in-segment window must not collapse";
}

TEST(GatherTile, WindowAcrossSegmentsMaterializes)
{
    GatherTile g;
    g.append(filledTile(64, 0.f), 64);
    g.append(filledTile(64, 1000.f), 64);
    TileRef w = g.window(60, 8);  // straddles the boundary
    EXPECT_TRUE(g.contiguous()) << "straddling window must materialize";
    EXPECT_EQ(g.elems(), 128u);
    // The window sees the concatenation, in order.
    EXPECT_FLOAT_EQ(w.data()[0], 60.f);
    EXPECT_FLOAT_EQ(w.data()[3], 63.f);
    EXPECT_FLOAT_EQ(w.data()[4], 1000.f);
    // And materialization preserved every element.
    TileRef &whole = g.materialize();
    for (int i = 0; i < 64; ++i) {
        EXPECT_FLOAT_EQ(whole.data()[i], float(i));
        EXPECT_FLOAT_EQ(whole.data()[64 + i], 1000.f + float(i));
    }
}

TEST(GatherTile, AdjacentViewsKnitBackIntoOneSegment)
{
    // The Mem FU round trip: a producer stages one tile, publishes row
    // slices, and a consumer gathers them in order — the gather must
    // reassemble the original tile as window arithmetic, not segments.
    TileRef staged = filledTile(256, 0.f);
    GatherTile g;
    const std::uint64_t acquires = TilePool::instance().acquires();
    for (int i = 0; i < 8; ++i)
        g.append(staged.slice(i * 32, 32), 32);
    EXPECT_EQ(g.segments(), 1u);
    EXPECT_TRUE(g.contiguous());
    EXPECT_EQ(g.elems(), 256u);
    EXPECT_EQ(g.segment(0).data(), staged.data());
    EXPECT_EQ(TilePool::instance().acquires(), acquires);
    // Non-adjacent (gap) views must stay separate segments.
    GatherTile h;
    h.append(staged.slice(0, 32), 32);
    h.append(staged.slice(64, 32), 32);
    EXPECT_EQ(h.segments(), 2u);
    // Out-of-order adjacency must not merge either.
    GatherTile r;
    r.append(staged.slice(32, 32), 32);
    r.append(staged.slice(0, 32), 32);
    EXPECT_EQ(r.segments(), 2u);
}

TEST(GatherTile, OverflowingTheSegmentListCollapsesFirst)
{
    GatherTile g;
    std::vector<const float *> bufs;
    for (std::size_t i = 0; i < GatherTile::kInlineSegments + 3; ++i) {
        TileRef t = filledTile(64, float(1000 * i));
        bufs.push_back(t.data());
        g.append(std::move(t), 64);
    }
    EXPECT_LE(g.segments(), GatherTile::kInlineSegments);
    EXPECT_EQ(g.elems(), 64u * (GatherTile::kInlineSegments + 3));
    TileRef &whole = g.materialize();
    for (std::size_t i = 0; i < GatherTile::kInlineSegments + 3; ++i)
        EXPECT_FLOAT_EQ(whole.data()[i * 64], float(1000 * i))
            << "segment " << i << " lost across overflow collapse";
    (void)bufs;
}

TEST(GatherTile, SegmentMutableCopiesOnlySharedSegments)
{
    // Sole-owner segment: in-place (the steady state — MemC adopted the
    // MME's tile and the MME dropped its ref).
    GatherTile g;
    g.append(filledTile(64, 0.f), 64);
    const float *before = g.segment(0).data();
    float *p = g.segmentMutable(0);
    EXPECT_EQ(p, before) << "sole-owner segment must mutate in place";

    // Shared segment: the producer still aliases the buffer, so the
    // gather must copy-on-write and the original stays untouched.
    TileRef staged = filledTile(64, 0.f);
    GatherTile s;
    s.append(staged.slice(0, 64), 64);
    float *q = s.segmentMutable(0);
    EXPECT_NE(q, staged.data()) << "shared segment mutated in place";
    q[0] = -1.f;
    EXPECT_FLOAT_EQ(staged.data()[0], 0.f) << "broadcast immutability";
}

} // namespace
