#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/task.hh"

namespace {

using rsn::sim::Engine;
using rsn::sim::Task;
using rsn::sim::ValueTask;

Task
delayTwice(Engine &e, int &stage)
{
    stage = 1;
    co_await e.delay(10);
    stage = 2;
    co_await e.delay(10);
    stage = 3;
}

TEST(Task, EagerStartRunsToFirstSuspension)
{
    Engine e;
    int stage = 0;
    Task t = delayTwice(e, stage);
    EXPECT_EQ(stage, 1);  // ran until first co_await before returning
    EXPECT_FALSE(t.done());
    e.run();
    EXPECT_EQ(stage, 3);
    EXPECT_TRUE(t.done());
}

TEST(Task, ZeroDelayDoesNotSuspend)
{
    Engine e;
    int stage = 0;
    auto body = [](Engine &eng, int &s) -> Task {
        co_await eng.delay(0);
        s = 1;
    };
    Task t = body(e, stage);
    EXPECT_EQ(stage, 1);
    EXPECT_TRUE(t.done());
}

ValueTask<int>
produceAfter(Engine &e, rsn::Tick d, int v)
{
    co_await e.delay(d);
    co_return v;
}

Task
consume(Engine &e, int &out)
{
    out = co_await produceAfter(e, 25, 99);
}

TEST(Task, ValueTaskDeliversValueToAwaiter)
{
    Engine e;
    int out = 0;
    Task t = consume(e, out);
    EXPECT_EQ(out, 0);
    e.run();
    EXPECT_EQ(out, 99);
    EXPECT_TRUE(t.done());
    EXPECT_EQ(e.now(), 25u);
}

TEST(Task, AwaitingCompletedTaskResumesImmediately)
{
    Engine e;
    int out = 0;
    auto parent = [](Engine &eng, int &o) -> Task {
        // Child completes synchronously (no suspension).
        ValueTask<int> child = produceAfter(eng, 0, 7);
        EXPECT_TRUE(child.done());
        o = co_await child;
    };
    Task t = parent(e, out);
    EXPECT_EQ(out, 7);
    EXPECT_TRUE(t.done());
}

TEST(Task, TwoEagerTasksOverlapInSimulatedTime)
{
    Engine e;
    rsn::Tick end_a = 0, end_b = 0, end_both = 0;
    auto piece = [](Engine &eng, rsn::Tick d, rsn::Tick &end) -> Task {
        co_await eng.delay(d);
        end = eng.now();
    };
    auto parent = [&](Engine &eng) -> Task {
        // Start both pieces, then await both: the paper's parallel
        // load/send inside one FU kernel (Fig. 7b).
        Task a = piece(eng, 100, end_a);
        Task b = piece(eng, 60, end_b);
        co_await a;
        co_await b;
        end_both = eng.now();
    };
    Task t = parent(e);
    e.run();
    EXPECT_EQ(end_a, 100u);
    EXPECT_EQ(end_b, 60u);
    EXPECT_EQ(end_both, 100u);  // max, not sum: they overlapped
    EXPECT_TRUE(t.done());
}

TEST(Task, MoveTransfersOwnership)
{
    Engine e;
    int stage = 0;
    Task t1 = delayTwice(e, stage);
    Task t2 = std::move(t1);
    EXPECT_TRUE(t1.done());  // moved-from is empty == done
    EXPECT_FALSE(t2.done());
    e.run();
    EXPECT_TRUE(t2.done());
    EXPECT_EQ(stage, 3);
}

} // namespace
