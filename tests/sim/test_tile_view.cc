/**
 * @file
 * Property tests for TileRef offset/length views and copy-on-write —
 * the zero-copy staging primitives the Mem FUs publish row-slices with
 * (ISSUE 3). Randomized row-offset/length slicing is compared
 * element-for-element against the copy-based slicing it replaced, and
 * the ownership edge cases are pinned: a slice of a broadcast-shared
 * tile must COW, a uniquely-owned tile must mutate in place.
 */

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "sim/chunk.hh"
#include "sim/tile_pool.hh"

namespace {

using rsn::sim::Chunk;
using rsn::sim::makeTileChunk;
using rsn::sim::TilePool;
using rsn::sim::TileRef;

/** Acquire a rows x cols tile filled from @p rng. */
TileRef
randomTile(TilePool &pool, std::uint32_t rows, std::uint32_t cols,
           std::mt19937 &rng)
{
    TileRef t = pool.acquire(std::uint64_t(rows) * cols);
    std::uniform_real_distribution<float> dist(-4.f, 4.f);
    float *d = t.mutableData();
    for (std::uint64_t i = 0; i < std::uint64_t(rows) * cols; ++i)
        d[i] = dist(rng);
    return t;
}

/** The pre-view slicing: acquire a fresh tile and copy the row range. */
TileRef
copySlice(TilePool &pool, const TileRef &src, std::uint32_t row_off,
          std::uint32_t rows, std::uint32_t cols)
{
    std::uint64_t n = std::uint64_t(rows) * cols;
    TileRef t = pool.acquire(n);
    std::copy_n(src.data() + std::uint64_t(row_off) * cols, n,
                t.mutableData());
    return t;
}

TEST(TileView, RandomizedSlicesMatchCopyBasedSlicing)
{
    TilePool pool;
    std::mt19937 rng(20260728);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint32_t rows = 1 + rng() % 64;
        std::uint32_t cols = 1 + rng() % 48;
        TileRef tile = randomTile(pool, rows, cols, rng);
        std::uint32_t row_off = rng() % rows;
        std::uint32_t ext = 1 + rng() % (rows - row_off);

        TileRef view = tile.slice(std::uint64_t(row_off) * cols,
                                  std::uint64_t(ext) * cols);
        TileRef copy = copySlice(pool, tile, row_off, ext, cols);

        ASSERT_EQ(view.capacity(), std::uint64_t(ext) * cols);
        for (std::uint64_t i = 0; i < std::uint64_t(ext) * cols; ++i)
            ASSERT_EQ(view.data()[i], copy.data()[i])
                << "trial " << trial << " elem " << i;
        // The view aliases the parent storage; the copy does not.
        EXPECT_EQ(view.data(), tile.data() +
                                   std::uint64_t(row_off) * cols);
        EXPECT_NE(copy.data(), view.data());
    }
    EXPECT_EQ(pool.liveTiles(), 0u);
}

TEST(TileView, ChunkOverViewIndexesLikeChunkOverCopy)
{
    TilePool pool;
    std::mt19937 rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint32_t rows = 2 + rng() % 32;
        std::uint32_t cols = 1 + rng() % 32;
        TileRef tile = randomTile(pool, rows, cols, rng);
        std::uint32_t row_off = rng() % (rows - 1);
        std::uint32_t ext = 1 + rng() % (rows - row_off);

        Chunk via_view = makeTileChunk(
            ext, cols,
            tile.slice(std::uint64_t(row_off) * cols,
                       std::uint64_t(ext) * cols));
        Chunk via_copy = makeTileChunk(
            ext, cols, copySlice(pool, tile, row_off, ext, cols));
        for (std::uint32_t r = 0; r < ext; ++r)
            for (std::uint32_t c = 0; c < cols; ++c)
                ASSERT_EQ(via_view.at(r, c), via_copy.at(r, c));
    }
}

TEST(TileView, ViewsShareTheBufferRefcount)
{
    TilePool pool;
    TileRef tile = pool.acquire(64 * 8);
    std::fill_n(tile.mutableData(), 64 * 8, 1.f);
    EXPECT_TRUE(tile.unique());

    TileRef v1 = tile.slice(0, 64);
    TileRef v2 = tile.slice(64, 128);
    TileRef nested = v2.slice(32, 64);  // window into a window
    EXPECT_FALSE(tile.unique());
    EXPECT_TRUE(v1.isView());
    EXPECT_FALSE(tile.isView());
    // One buffer, four refs: no extra pool traffic for slicing.
    EXPECT_EQ(pool.liveTiles(), 1u);
    EXPECT_EQ(pool.buffersAllocated(), 1u);
    EXPECT_EQ(nested.data(), tile.data() + 64 + 32);

    // The buffer stays alive while any view does, even after the
    // whole-tile ref dies...
    const float *raw = tile.data();
    tile.release();
    EXPECT_EQ(pool.liveTiles(), 1u);
    EXPECT_EQ(v1.data(), raw);
    v1.release();
    v2.release();
    EXPECT_EQ(pool.liveTiles(), 1u);  // nested still holds it
    nested.release();
    // ...and retires to the free list only when the last window dies.
    EXPECT_EQ(pool.liveTiles(), 0u);
    EXPECT_EQ(pool.acquire(64 * 8).data(), raw);
    EXPECT_EQ(pool.buffersAllocated(), 1u);
}

TEST(TileView, UniqueTileMutatesInPlace)
{
    TilePool pool;
    TileRef tile = pool.acquire(256);
    std::fill_n(tile.mutableData(), 256, 2.f);
    const float *before = tile.data();
    float *d = tile.ensureUnique(256);
    EXPECT_EQ(d, before);  // sole owner: no copy
    EXPECT_EQ(pool.buffersAllocated(), 1u);
    d[0] = 9.f;
    EXPECT_EQ(tile.data()[0], 9.f);
}

TEST(TileView, SharedTileCopiesOnWrite)
{
    TilePool pool;
    TileRef tile = pool.acquire(128);
    float *d = tile.mutableData();
    for (int i = 0; i < 128; ++i)
        d[i] = float(i);

    // Broadcast: a second consumer holds the same payload.
    TileRef other = tile;
    float *w = tile.ensureUnique(128);
    EXPECT_NE(w, other.data());      // re-seated onto a fresh buffer
    EXPECT_TRUE(tile.unique());
    EXPECT_TRUE(other.unique());     // the original is theirs alone now
    for (int i = 0; i < 128; ++i)
        ASSERT_EQ(w[i], float(i));   // window was copied
    w[5] = -1.f;
    EXPECT_EQ(other.data()[5], 5.f); // the shared original is untouched
}

TEST(TileView, SliceOfSharedTileCopiesOnWriteAndPreservesParent)
{
    TilePool pool;
    std::mt19937 rng(99);
    TileRef tile = randomTile(pool, 16, 8, rng);
    std::vector<float> orig(tile.data(), tile.data() + 16 * 8);

    // A mid-tile row window, parent still alive (broadcast-shared).
    TileRef view = tile.slice(4 * 8, 6 * 8);
    float *w = view.ensureUnique(6 * 8);
    EXPECT_NE(w, orig.data());
    // The re-seated ref covers exactly the copied elements — the fresh
    // bucket's uninitialized spare capacity stays unreachable.
    EXPECT_EQ(view.capacity(), std::uint64_t(6 * 8));
    EXPECT_THROW((void)view.slice(0, 6 * 8 + 1), std::logic_error);
    for (int i = 0; i < 6 * 8; ++i)
        ASSERT_EQ(w[i], orig[4 * 8 + i]);
    std::fill_n(w, 6 * 8, 0.f);
    for (int i = 0; i < 16 * 8; ++i)
        ASSERT_EQ(tile.data()[i], orig[i]) << "parent mutated at " << i;
}

TEST(TileView, SoleOwnerViewMutatesInPlace)
{
    TilePool pool;
    TileRef tile = pool.acquire(64);
    std::fill_n(tile.mutableData(), 64, 3.f);
    TileRef view = tile.slice(16, 32);
    tile.release();
    // The window is the only reference left: writing in place is safe
    // and ensureUnique must not copy.
    EXPECT_TRUE(view.unique());
    const float *before = view.data();
    EXPECT_EQ(view.ensureUnique(32), before);
    EXPECT_EQ(pool.buffersAllocated(), 1u);
}

TEST(TileView, MutableAccessToSharedViewPanics)
{
    TilePool pool;
    TileRef tile = pool.acquire(64);
    std::fill_n(tile.mutableData(), 64, 0.f);
    TileRef view = tile.slice(0, 32);
    EXPECT_THROW((void)view.mutableData(), std::logic_error);
    EXPECT_THROW((void)tile.mutableData(), std::logic_error);
}

TEST(TileView, SliceBoundsAreChecked)
{
    TilePool pool;
    TileRef tile = pool.acquire(64);
    std::fill_n(tile.mutableData(), 64, 0.f);
    TileRef view = tile.slice(8, 16);
    // Views bound-check against their own window, not the buffer.
    EXPECT_THROW((void)view.slice(8, 16), std::logic_error);
    EXPECT_THROW((void)tile.slice(0, 65), std::logic_error);
    // A chunk over a too-small window is rejected by capacity checking.
    TileRef small = tile.slice(0, 16);
    EXPECT_THROW((void)makeTileChunk(8, 8, std::move(small)),
                 std::logic_error);
}

} // namespace
