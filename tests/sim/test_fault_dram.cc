/**
 * @file
 * DRAM-channel fault injection (ISSUE 6): transient transaction errors
 * retry with tick-domain backoff on the channel, exhausted retries are a
 * hard fault that stops the run (the access itself still completes so
 * the calling kernel stays well-formed), and the whole schedule is a
 * pure function of the seed.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/engine.hh"
#include "sim/fault.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::mem::Dir;
using rsn::mem::DramChannel;
using rsn::mem::DramConfig;
using rsn::mem::DramRequest;
using rsn::sim::Engine;
using rsn::sim::FaultInjector;
using rsn::sim::FaultKind;
using rsn::sim::FaultSpec;
using rsn::sim::Task;

Task
doAccess(DramChannel &ch, DramRequest req, Tick &done_at, Engine &e)
{
    co_await ch.access(req);
    done_at = e.now();
}

TEST(FaultDram, ZeroRateLeavesServiceUntouched)
{
    Engine e;
    FaultSpec spec;
    spec.checksums = true;  // enabled, but no DRAM faults armed
    FaultInjector fi(spec, e);
    DramChannel ch(e, DramConfig{});
    ch.attachFaultInjector(&fi);
    DramRequest req{Dir::Read, 80770, 1};
    Tick plain = ch.serviceTicks(req);
    Tick done = 0;
    Task a = doAccess(ch, req, done, e);
    EXPECT_TRUE(e.run());
    EXPECT_EQ(done, plain);
    EXPECT_EQ(ch.retries(), 0u);
}

TEST(FaultDram, CertainFailureBurnsRetriesAndStopsTheRun)
{
    Engine e;
    FaultSpec spec;
    spec.dram_rate = 1.0;
    spec.max_retries = 3;
    spec.backoff_base = 8;
    FaultInjector fi(spec, e);
    DramChannel ch(e, DramConfig{});
    ch.attachFaultInjector(&fi);
    DramRequest req{Dir::Read, 8077, 1};  // ~100 ticks + 16 overhead
    Tick done = 0;
    Task a = doAccess(ch, req, done, e);
    // The stop lands at the batch boundary before the completion wake
    // dispatches: the run ends un-drained with the kernel still parked
    // mid-await (torn down safely at scope exit), never resumed into a
    // faulted world.
    EXPECT_FALSE(e.run());
    EXPECT_FALSE(a.done());
    // The channel accounted the burned attempts even though the access
    // never delivered: base service plus backoff 8, 16, 32 ticks.
    EXPECT_EQ(ch.retries(), 3u);
    // The injector diagnosed a hard fault and asked for the stop.
    EXPECT_TRUE(fi.hardFaulted());
    ASSERT_NE(fi.firstHardFault(), nullptr);
    EXPECT_EQ(fi.firstHardFault()->kind, FaultKind::DramDead);
    EXPECT_TRUE(e.stopRequested());
    EXPECT_EQ(fi.count(FaultKind::DramDead), 1u);
}

TEST(FaultDram, TransientRetriesOccupyTheChannel)
{
    // With a generous retry budget every access succeeds, but later
    // arrivals queue behind the retry bursts of earlier ones.
    Engine e;
    FaultSpec spec;
    spec.seed = 12;
    spec.dram_rate = 0.5;
    spec.max_retries = 30;
    spec.backoff_base = 4;
    FaultInjector fi(spec, e);
    DramChannel ch(e, DramConfig{});
    ch.attachFaultInjector(&fi);
    DramRequest req{Dir::Read, 80770, 1};
    Tick base = ch.serviceTicks(req);
    Tick t[8] = {};
    {
        Task a = doAccess(ch, req, t[0], e);
        Task b = doAccess(ch, req, t[1], e);
        Task c = doAccess(ch, req, t[2], e);
        Task d = doAccess(ch, req, t[3], e);
        EXPECT_TRUE(e.run());
    }
    EXPECT_FALSE(fi.hardFaulted());
    EXPECT_GT(ch.retries(), 0u);
    // Completion order is arrival order, and at least one access paid
    // more than the fault-free service time.
    EXPECT_LT(t[0], t[1]);
    EXPECT_LT(t[1], t[2]);
    EXPECT_LT(t[2], t[3]);
    EXPECT_GT(t[3], 4 * base);
}

TEST(FaultDram, SameSeedReproducesCompletionTicks)
{
    auto lastTick = [](std::uint64_t seed) {
        Engine e;
        FaultSpec spec;
        spec.seed = seed;
        spec.dram_rate = 0.4;
        spec.max_retries = 30;
        FaultInjector fi(spec, e);
        DramChannel ch(e, DramConfig{});
        ch.attachFaultInjector(&fi);
        Tick t = 0;
        DramRequest req{Dir::Read, 40385, 1};
        Task a = doAccess(ch, req, t, e);
        Task b = doAccess(ch, req, t, e);
        Task c = doAccess(ch, req, t, e);
        EXPECT_TRUE(e.run());
        return t;
    };
    EXPECT_EQ(lastTick(21), lastTick(21));
}

} // namespace
