#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/chunk.hh"
#include "sim/tile_pool.hh"

namespace {

using rsn::sim::Chunk;
using rsn::sim::makeDataChunk;
using rsn::sim::makeTileChunk;
using rsn::sim::TilePool;
using rsn::sim::TileRef;

TEST(TilePool, AcquireGivesUniqueWritableTile)
{
    TilePool pool;
    TileRef t = pool.acquire(100);
    ASSERT_TRUE(t);
    EXPECT_TRUE(t.unique());
    EXPECT_GE(t.capacity(), 100u);
    float *d = t.mutableData();
    for (int i = 0; i < 100; ++i)
        d[i] = float(i);
    EXPECT_FLOAT_EQ(t.data()[99], 99.f);
    EXPECT_EQ(pool.liveTiles(), 1u);
}

TEST(TilePool, BucketsRoundUpToPowersOfTwo)
{
    TilePool pool;
    EXPECT_EQ(pool.acquire(1).capacity(), 64u);
    EXPECT_EQ(pool.acquire(64).capacity(), 64u);
    EXPECT_EQ(pool.acquire(65).capacity(), 128u);
    EXPECT_EQ(pool.acquire(1024).capacity(), 1024u);
    EXPECT_EQ(pool.acquire(1025).capacity(), 2048u);
}

TEST(TilePool, CopySharesAndLastReleaseRecycles)
{
    TilePool pool;
    const float *raw = nullptr;
    {
        TileRef a = pool.acquire(256);
        raw = a.data();
        TileRef b = a;
        EXPECT_FALSE(a.unique());
        EXPECT_FALSE(b.unique());
        EXPECT_EQ(a.data(), b.data());
        EXPECT_EQ(pool.liveTiles(), 1u);  // one buffer, two refs
    }
    EXPECT_EQ(pool.liveTiles(), 0u);
    EXPECT_EQ(pool.buffersAllocated(), 1u);
    // Same bucket: the retired buffer is reused, not reallocated.
    TileRef c = pool.acquire(200);
    EXPECT_EQ(c.data(), raw);
    EXPECT_EQ(pool.buffersAllocated(), 1u);
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(TilePool, MoveTransfersOwnershipWithoutRefTraffic)
{
    TilePool pool;
    TileRef a = pool.acquire(64);
    TileRef b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(b.unique());
    EXPECT_EQ(pool.liveTiles(), 1u);
}

TEST(TilePool, MutableAccessToSharedTilePanics)
{
    TilePool pool;
    TileRef a = pool.acquire(64);
    TileRef b = a;
    EXPECT_THROW((void)a.mutableData(), std::logic_error);
}

TEST(TilePool, ChunkCopySharesPayloadByRefcount)
{
    Chunk c = makeDataChunk(2, 2, {1.f, 2.f, 3.f, 4.f}, 7);
    Chunk d = c;
    EXPECT_EQ(c.data.data(), d.data.data());
    EXPECT_FALSE(c.data.unique());
    EXPECT_FLOAT_EQ(d.at(1, 1), 4.f);
    EXPECT_EQ(d.toVector(), (std::vector<float>{1.f, 2.f, 3.f, 4.f}));
}

TEST(TilePool, TrimReleasesRetiredBuffersAndResetsFreeBytes)
{
    TilePool pool;
    // Park three buffers of two sizes on the free lists.
    {
        TileRef a = pool.acquire(64);
        TileRef b = pool.acquire(64);
        TileRef c = pool.acquire(1024);
        (void)a;
        (void)b;
        (void)c;
    }
    EXPECT_EQ(pool.liveTiles(), 0u);
    EXPECT_EQ(pool.freeBytes(), (64 + 64 + 1024) * sizeof(float));
    EXPECT_EQ(pool.buffersFreed(), 0u);

    // Arena reset: everything retired goes back to the system.
    EXPECT_EQ(pool.trim(), 3u);
    EXPECT_EQ(pool.freeBytes(), 0u);
    EXPECT_EQ(pool.buffersFreed(), 3u);

    // The pool keeps working after a trim — but the next acquire is a
    // fresh allocation, not a free-list hit.
    const std::uint64_t reuses_before = pool.reuses();
    TileRef d = pool.acquire(64);
    EXPECT_TRUE(d);
    EXPECT_EQ(pool.reuses(), reuses_before);
    EXPECT_EQ(pool.buffersAllocated(), 4u);

    // Live tiles are untouched by trim (only free lists drain).
    EXPECT_EQ(pool.trim(), 0u);
    EXPECT_FLOAT_EQ(*d.mutableData() = 1.5f, 1.5f);
}

TEST(TilePool, FreeBytesTracksRetireAndReuse)
{
    TilePool pool;
    {
        TileRef a = pool.acquire(64);
        (void)a;
    }
    const std::uint64_t parked = pool.freeBytes();
    EXPECT_EQ(parked, 64 * sizeof(float));
    // A free-list hit takes the buffer off the parked account.
    TileRef b = pool.acquire(64);
    EXPECT_EQ(pool.freeBytes(), 0u);
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(TilePool, MakeTileChunkValidatesCapacity)
{
    TilePool pool;
    TileRef t = pool.acquire(64);
    Chunk c = makeTileChunk(8, 8, std::move(t), 3);
    EXPECT_EQ(c.elems(), 64u);
    EXPECT_EQ(c.tag, 3u);
    TileRef small = pool.acquire(64);
    EXPECT_THROW((void)makeTileChunk(32, 32, std::move(small), 0),
                 std::logic_error);
}

} // namespace
