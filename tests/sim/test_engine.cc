#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"

namespace {

using rsn::Tick;
using rsn::sim::Engine;

TEST(Engine, StartsAtTickZeroAndIdle)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_TRUE(e.idle());
    EXPECT_TRUE(e.run());
}

TEST(Engine, EventsRunInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&] { order.push_back(3); });
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(e.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTickEventsRunInScheduleOrder)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        e.schedule(7, [&order, i] { order.push_back(i); });
    EXPECT_TRUE(e.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleMoreEvents)
{
    Engine e;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            e.schedule(5, chain);
    };
    e.schedule(0, chain);
    EXPECT_TRUE(e.run());
    EXPECT_EQ(count, 10);
    EXPECT_EQ(e.now(), 45u);
}

TEST(Engine, RunStopsAtTickLimit)
{
    Engine e;
    bool late = false;
    e.schedule(100, [&] { late = true; });
    EXPECT_FALSE(e.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(e.now(), 50u);
    // Continuing past the limit executes the event.
    EXPECT_TRUE(e.run(200));
    EXPECT_TRUE(late);
}

TEST(Engine, ZeroDelayRunsAtCurrentTick)
{
    Engine e;
    Tick seen = 12345;
    e.schedule(42, [&] { e.schedule(0, [&] { seen = e.now(); }); });
    EXPECT_TRUE(e.run());
    EXPECT_EQ(seen, 42u);
}

TEST(Engine, EventCountIsTracked)
{
    Engine e;
    for (int i = 0; i < 17; ++i)
        e.schedule(i, [] {});
    e.run();
    EXPECT_EQ(e.eventsProcessed(), 17u);
}

TEST(Engine, TickLimitInPastDoesNotRewindTime)
{
    Engine e;
    bool fired = false;
    e.schedule(100, [&] { fired = true; });
    EXPECT_FALSE(e.run(50));
    EXPECT_EQ(e.now(), 50u);
    // A limit below the current time must not move now() backwards.
    EXPECT_FALSE(e.run(30));
    EXPECT_EQ(e.now(), 50u);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(e.run());
    EXPECT_EQ(e.now(), 100u);
    EXPECT_TRUE(fired);
}

TEST(Engine, SameTickEventScheduledDuringDispatchRunsAfterQueued)
{
    Engine e;
    std::vector<int> order;
    e.schedule(5, [&] {
        order.push_back(1);
        e.schedule(0, [&] { order.push_back(3); });  // behind event 2
    });
    e.schedule(5, [&] { order.push_back(2); });
    EXPECT_TRUE(e.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, TicksAcrossAllWheelLevelsRunInOrder)
{
    // One event per timing-wheel level plus the overflow heap (see the
    // two-level queue description in engine.hh).
    Engine e;
    std::vector<Tick> fired;
    const Tick far = (Tick(1) << 33) + 7;
    for (Tick t : {far, Tick(20'000'000), Tick(70'000), Tick(300), Tick(3)})
        e.scheduleAt(t, [&fired, &e] { fired.push_back(e.now()); });
    EXPECT_TRUE(e.run());
    EXPECT_EQ(fired, (std::vector<Tick>{3, 300, 70'000, 20'000'000, far}));
    EXPECT_EQ(e.now(), far);
}

TEST(Engine, PendingEventsTracksQueueDepth)
{
    Engine e;
    EXPECT_EQ(e.pendingEvents(), 0u);
    for (int i = 0; i < 5; ++i)
        e.schedule(10, [] {});
    EXPECT_EQ(e.pendingEvents(), 5u);
    EXPECT_TRUE(e.run());
    EXPECT_EQ(e.pendingEvents(), 0u);
    EXPECT_TRUE(e.idle());
}

} // namespace
