/**
 * @file
 * Counting-allocator verification of the stream data plane's
 * allocation-free invariant (see the file comment in sim/stream.hh):
 * after warmup, the steady-state per-chunk path — send awaitable, link
 * scheduler completion events, receiver handoff, and *pooled functional
 * payloads* — performs zero heap allocations. This extends the engine's
 * invariant (tests/sim/test_engine_alloc.cc) across the whole
 * chunk-transfer path, pinning the ISSUE 2 acceptance criterion of
 * 0 allocs/chunk.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"
#include "sim/tile_pool.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

// Aligned-allocation overloads: TilePool allocates its buffers with
// ::operator new(size, std::align_val_t{64}) (cache-line-aligned
// tiles), which does NOT route through the plain overload above — it
// must be intercepted separately or pooled-buffer traffic becomes
// invisible to the counter and the alloc-free pins go blind.
void *
operator new(std::size_t n, std::align_val_t al)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, std::size_t(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    operator delete(p, std::align_val_t{1});
}

void
operator delete[](void *p, std::align_val_t al) noexcept
{
    operator delete(p, al);
}

void
operator delete[](void *p, std::size_t, std::align_val_t al) noexcept
{
    operator delete(p, al);
}


namespace {

using rsn::Tick;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::makeTileChunk;
using rsn::sim::Stream;
using rsn::sim::Task;
using rsn::sim::TilePool;
using rsn::sim::TileRef;

std::uint64_t
news()
{
    return g_news.load(std::memory_order_relaxed);
}

Task
sendTimingChunks(Stream &s, int n)
{
    for (int i = 0; i < n; ++i)
        co_await s.send(makeChunk(32, 32, i));
}

Task
sendPooledChunks(Stream &s, int n)
{
    for (int i = 0; i < n; ++i) {
        // Acquire-fill-publish, the producer pattern of every FU: after
        // warmup the pool hands back the tile the receiver just retired.
        TileRef t = TilePool::instance().acquire(32 * 32);
        float *d = t.mutableData();
        for (int j = 0; j < 32 * 32; ++j)
            d[j] = float(i + j);
        co_await s.send(makeTileChunk(32, 32, std::move(t), i));
    }
}

Task
recvChunks(Stream &s, int n, double &sink)
{
    for (int i = 0; i < n; ++i) {
        Chunk c = co_await s.recv();
        if (c.hasData())
            sink += c.at(0, 0);
        sink += double(c.bytes());
        // Chunk (and its TileRef) dies here: the tile retires to the
        // pool's free list, ready for the sender's next acquire.
    }
}

TEST(StreamAlloc, TimingOnlyChunkTransferIsAllocationFree)
{
    Engine e;
    Stream s(e, 64.0, 4, "alloc-timing");
    double sink = 0;
    Task snd = sendTimingChunks(s, 2000);
    Task rcv = recvChunks(s, 2000, sink);
    // Warmup: engine arena, stream rings, and coroutine frames all
    // reach steady state within the first few transfers (64 ticks each).
    e.run(2000);
    std::uint64_t before = news();
    e.run(100000);
    EXPECT_EQ(news(), before) << "timing-only stream path allocated";
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
    EXPECT_EQ(s.chunksTransferred(), 2000u);
}

TEST(StreamAlloc, PooledPayloadTransferIsAllocationFree)
{
    Engine e;
    Stream s(e, 64.0, 4, "alloc-pooled");
    double sink = 0;
    Task snd = sendPooledChunks(s, 2000);
    Task rcv = recvChunks(s, 2000, sink);
    e.run(2000);
    std::uint64_t before = news();
    e.run(100000);
    EXPECT_EQ(news(), before)
        << "pooled-payload stream path allocated per chunk";
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
    EXPECT_EQ(s.chunksTransferred(), 2000u);
    EXPECT_GT(sink, 0.0);
}

TEST(StreamAlloc, BackPressuredPathIsAllocationFree)
{
    // Depth-1 FIFO keeps a sender permanently queued in pending_: the
    // admit-on-pop path must also be allocation-free.
    Engine e;
    Stream s(e, 4096.0, 1, "alloc-bp");
    double sink = 0;
    Task snd = sendTimingChunks(s, 4000);
    Task rcv = recvChunks(s, 4000, sink);
    e.run(500);
    std::uint64_t before = news();
    e.run(3000);
    EXPECT_EQ(news(), before) << "back-pressured stream path allocated";
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
}

Task
flushForever(Stream &s, int reps, int fanout)
{
    for (int i = 0; i < reps; ++i) {
        TileRef t = TilePool::instance().acquire(64);
        t.mutableData()[0] = float(i);
        Chunk c = makeTileChunk(8, 8, std::move(t), i);
        for (int j = 0; j < fanout; ++j)
            s.post(c);  // copies share the payload by refcount
        co_await s.flush();
    }
}

TEST(StreamAlloc, PostFlushBroadcastPatternIsAllocationFree)
{
    Engine e;
    Stream s(e, 64.0, 2, "alloc-bcast");
    double sink = 0;
    Task snd = flushForever(s, 1000, 3);
    Task rcv = recvChunks(s, 3000, sink);
    e.run(800);
    std::uint64_t before = news();
    e.run(8000);
    EXPECT_EQ(news(), before) << "post+flush path allocated";
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
}

} // namespace
