/**
 * @file
 * Determinism stress test for the two-level (timing wheel) event engine.
 *
 * Replays identical seeded scripts — interleaving inline callbacks,
 * heap-path callbacks (captures too large for the inline slot), coroutine
 * resumes across all wheel levels and the overflow heap, same-tick bursts,
 * and zero-delay chains — on both the production Engine and a reference
 * engine that reproduces the seed implementation (single priority queue
 * ordered by (tick, sequence)). The observable execution order must match
 * bit-for-bit.
 */

#include <gtest/gtest.h>

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <vector>

#include "sim/engine.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::sim::Engine;
using rsn::sim::Task;

/**
 * The seed engine, verbatim semantics: one heap-allocating priority queue
 * of (tick, sequence, std::function) events, FIFO within a tick.
 */
class RefEngine
{
  public:
    Tick now() const { return now_; }

    void
    schedule(Tick delay, std::function<void()> fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    void
    scheduleAt(Tick when, std::function<void()> fn)
    {
        queue_.push(Event{when, next_seq_++, std::move(fn)});
    }

    void
    resumeAt(Tick when, std::coroutine_handle<> h)
    {
        scheduleAt(when, [h] { h.resume(); });
    }

    bool
    run(Tick max_ticks = rsn::kTickMax)
    {
        while (!queue_.empty()) {
            if (queue_.top().when > max_ticks) {
                // Seed semantics *except* the rewind bug: the production
                // engine's contract (never move now() backwards) is what
                // the scripts below rely on.
                if (max_ticks > now_)
                    now_ = max_ticks;
                return false;
            }
            Event ev = queue_.top();
            queue_.pop();
            now_ = ev.when;
            ev.fn();
        }
        return true;
    }

  private:
    struct Event {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
        bool operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
};

/** Engine-generic delay awaitable (Engine::delay is Engine-specific). */
template <typename E>
struct DelayOn {
    E &e;
    Tick when;
    bool await_ready() const noexcept { return when <= e.now(); }
    void await_suspend(std::coroutine_handle<> h) { e.resumeAt(when, h); }
    void await_resume() const noexcept {}
};

/** Suspends unconditionally; the driver resumes via Task::handle(). */
struct Park {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
};

/** Coroutine actor: logs, then hops through engine-timed delays. */
template <typename E>
Task
actor(E &e, std::vector<int> &log, unsigned seed, int id)
{
    std::mt19937 rng(seed);
    for (int i = 0; i < 6; ++i) {
        log.push_back(id + i);
        co_await DelayOn<E>{e, e.now() + rng() % 7};
    }
}

/** Parked coroutine, resumed explicitly through the engine. */
Task
parked(std::vector<int> &log, int tag)
{
    co_await Park{};
    log.push_back(tag);
}

template <typename E>
std::vector<int>
runScript(unsigned seed)
{
    E e;
    std::vector<int> log;
    std::mt19937 rng(seed);
    std::vector<Task> tasks;

    for (int op = 0; op < 400; ++op) {
        int tag = 100000 + op * 10;
        switch (rng() % 6) {
        case 0: {  // small inline callback, near tick
            Tick d = rng() % 60;
            e.schedule(d, [&log, tag] { log.push_back(tag); });
            break;
        }
        case 1: {  // heap-path callback (capture exceeds the inline slot)
            std::array<char, 100> pad{};
            pad[0] = char(op);
            Tick d = rng() % 300000;  // spans several wheel levels
            e.schedule(d, [&log, tag, pad] { log.push_back(tag + pad[0]); });
            break;
        }
        case 2: {  // same-tick burst
            Tick d = rng() % 40;
            for (int k = 0; k < 8; ++k)
                e.schedule(d, [&log, tag, k] { log.push_back(tag + k); });
            break;
        }
        case 3: {  // coroutine actor with its own timed hops
            tasks.push_back(actor(e, log, seed ^ op, tag));
            break;
        }
        case 4: {  // parked coroutine resumed via raw handle
            tasks.push_back(parked(log, tag));
            Tick d = rng() % 4 == 0 ? (Tick(1) << 33) + rng() % 100  // overflow
                                    : rng() % 70000;
            e.resumeAt(e.now() + d, tasks.back().handle());
            break;
        }
        case 5: {  // zero-delay chain scheduled from inside an event
            Tick d = rng() % 25;
            e.schedule(d, [&e, &log, tag] {
                log.push_back(tag);
                e.schedule(0, [&log, tag] { log.push_back(tag + 1); });
            });
            break;
        }
        }
    }

    // Staged runs with increasing limits, then drain.
    EXPECT_FALSE(e.run(50));
    EXPECT_EQ(e.now(), 50u);
    e.run(100000);
    EXPECT_TRUE(e.run());
    return log;
}

TEST(EngineStress, MatchesReferenceEngineOrder)
{
    for (unsigned seed : {1u, 7u, 42u, 1234u, 987654u}) {
        std::vector<int> got = runScript<Engine>(seed);
        std::vector<int> want = runScript<RefEngine>(seed);
        ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
        ASSERT_EQ(got, want) << "seed " << seed;
    }
}

} // namespace
