#include <gtest/gtest.h>

#include <vector>

#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace {

using rsn::Bytes;
using rsn::Tick;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::makeDataChunk;
using rsn::sim::Stream;
using rsn::sim::Task;

Task
sendChunks(Stream &s, int n, std::uint32_t rows, std::uint32_t cols)
{
    for (int i = 0; i < n; ++i)
        co_await s.send(makeChunk(rows, cols, i));
}

Task
recvChunks(Stream &s, int n, std::vector<Chunk> &out)
{
    for (int i = 0; i < n; ++i)
        out.push_back(co_await s.recv());
}

TEST(Stream, TransferTicksRoundsUpAndIsAtLeastOne)
{
    Engine e;
    Stream s(e, 64.0, 4, "s");
    EXPECT_EQ(s.transferTicks(1), 1u);
    EXPECT_EQ(s.transferTicks(64), 1u);
    EXPECT_EQ(s.transferTicks(65), 2u);
    EXPECT_EQ(s.transferTicks(640), 10u);
}

TEST(Stream, SingleTransferTakesLinkTime)
{
    Engine e;
    Stream s(e, 64.0, 4, "s");
    std::vector<Chunk> got;
    // 32x32 floats = 4096 B = 64 ticks at 64 B/tick.
    Task snd = sendChunks(s, 1, 32, 32);
    Task rcv = recvChunks(s, 1, got);
    e.run();
    EXPECT_TRUE(snd.done() && rcv.done());
    EXPECT_EQ(e.now(), 64u);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].bytes(), Bytes(4096));
    EXPECT_EQ(s.bytesTransferred(), Bytes(4096));
    EXPECT_EQ(s.busyTicks(), 64u);
}

TEST(Stream, BackToBackTransfersSerializeOnTheLink)
{
    Engine e;
    Stream s(e, 64.0, 8, "s");
    std::vector<Chunk> got;
    Task snd = sendChunks(s, 4, 32, 32);  // 4 x 64 ticks
    Task rcv = recvChunks(s, 4, got);
    e.run();
    EXPECT_EQ(e.now(), 256u);
    EXPECT_EQ(s.chunksTransferred(), 4u);
    // Chunk tags arrive in order.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(got[i].tag, std::uint32_t(i));
}

TEST(Stream, FullFifoBackPressuresTheLink)
{
    // Depth-1 FIFO and a consumer that only pops at tick 1000: the second
    // transfer cannot even start until the first is drained.
    Engine e;
    Stream s(e, 4096.0, 1, "s");
    auto consumer = [](Engine &eng, Stream &st, std::vector<Tick> &at)
        -> Task {
        co_await eng.delay(1000);
        (void)co_await st.recv();
        at.push_back(eng.now());
        (void)co_await st.recv();
        at.push_back(eng.now());
    };
    std::vector<Tick> pop_at;
    Task snd = sendChunks(s, 2, 32, 32);  // each chunk = 1 tick of link
    Task rcv = consumer(e, s, pop_at);
    e.run();
    EXPECT_TRUE(snd.done() && rcv.done());
    ASSERT_EQ(pop_at.size(), 2u);
    EXPECT_EQ(pop_at[0], 1000u);
    // Second chunk transferred only after the first pop freed the slot.
    EXPECT_GE(pop_at[1], 1001u);
}

TEST(Stream, LinkBandwidthBoundsThroughput)
{
    // 100 chunks of 1 KiB over a 16 B/tick link: >= 6400 ticks.
    Engine e;
    Stream s(e, 16.0, 4, "s");
    std::vector<Chunk> got;
    Task snd = sendChunks(s, 100, 16, 16);
    Task rcv = recvChunks(s, 100, got);
    e.run();
    EXPECT_GE(e.now(), 6400u);
    EXPECT_EQ(s.bytesTransferred(), Bytes(100) * 1024);
}

TEST(Stream, FunctionalPayloadSurvivesTransfer)
{
    Engine e;
    Stream s(e, 64.0, 2, "s");
    std::vector<float> vals = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f};
    auto snd = [&]() -> Task {
        co_await s.send(makeDataChunk(2, 3, vals));
    }();
    std::vector<Chunk> got;
    Task rcv = recvChunks(s, 1, got);
    e.run();
    ASSERT_EQ(got.size(), 1u);
    ASSERT_TRUE(got[0].hasData());
    EXPECT_FLOAT_EQ(got[0].at(0, 0), 1.f);
    EXPECT_FLOAT_EQ(got[0].at(1, 2), 6.f);
}

TEST(Stream, ConcurrentStreamsDoNotInterfere)
{
    // Two parallel streams each carry a chunk; total time = max not sum.
    Engine e;
    Stream s1(e, 64.0, 2, "s1");
    Stream s2(e, 32.0, 2, "s2");
    std::vector<Chunk> g1, g2;
    Task a = sendChunks(s1, 1, 32, 32);  // 64 ticks
    Task b = sendChunks(s2, 1, 32, 32);  // 128 ticks
    Task ra = recvChunks(s1, 1, g1);
    Task rb = recvChunks(s2, 1, g2);
    e.run();
    EXPECT_EQ(e.now(), 128u);
}

} // namespace
