#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::sim::Channel;
using rsn::sim::Engine;
using rsn::sim::Task;

TEST(Channel, TryPushPopRoundTrip)
{
    Engine e;
    Channel<int> ch(e, 2);
    EXPECT_TRUE(ch.tryPush(1));
    EXPECT_TRUE(ch.tryPush(2));
    EXPECT_FALSE(ch.tryPush(3));  // full
    int v = 0;
    EXPECT_TRUE(ch.tryPop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ch.tryPop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(ch.tryPop(v));  // empty
}

Task
sendN(Engine &e, Channel<int> &ch, int n, Tick gap)
{
    for (int i = 0; i < n; ++i) {
        co_await ch.send(i);
        if (gap)
            co_await e.delay(gap);
    }
}

Task
recvN(Engine &e, Channel<int> &ch, int n, Tick gap, std::vector<int> &out)
{
    for (int i = 0; i < n; ++i) {
        out.push_back(co_await ch.recv());
        if (gap)
            co_await e.delay(gap);
    }
}

TEST(Channel, FifoOrderPreserved)
{
    Engine e;
    Channel<int> ch(e, 3);
    std::vector<int> got;
    Task s = sendN(e, ch, 10, 0);
    Task r = recvN(e, ch, 10, 0, got);
    e.run();
    EXPECT_TRUE(s.done());
    EXPECT_TRUE(r.done());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Channel, SenderBlocksWhenFull)
{
    Engine e;
    Channel<int> ch(e, 1);
    std::vector<int> got;
    Task s = sendN(e, ch, 5, 0);
    // No receiver yet: sender must be parked after filling capacity 1.
    e.run();
    EXPECT_FALSE(s.done());
    EXPECT_TRUE(ch.hasBlockedSender());
    Task r = recvN(e, ch, 5, 0, got);
    e.run();
    EXPECT_TRUE(s.done());
    EXPECT_TRUE(r.done());
    EXPECT_EQ(got.size(), 5u);
}

TEST(Channel, ReceiverBlocksWhenEmpty)
{
    Engine e;
    Channel<int> ch(e, 4);
    std::vector<int> got;
    Task r = recvN(e, ch, 3, 0, got);
    e.run();
    EXPECT_FALSE(r.done());
    EXPECT_TRUE(ch.hasBlockedReceiver());
    Task s = sendN(e, ch, 3, 0);
    e.run();
    EXPECT_TRUE(r.done());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Channel, SlowConsumerThrottlesProducer)
{
    // Producer wants to send every tick; consumer pops every 10 ticks.
    // With capacity 2 the producer ends up rate-matched to the consumer.
    Engine e;
    Channel<int> ch(e, 2);
    std::vector<int> got;
    Task s = sendN(e, ch, 8, 1);
    Task r = recvN(e, ch, 8, 10, got);
    e.run();
    EXPECT_TRUE(s.done());
    EXPECT_TRUE(r.done());
    // Completion is dominated by the consumer: 8 pops, 10 ticks apart.
    EXPECT_GE(e.now(), 70u);
    EXPECT_EQ(got.size(), 8u);
}

TEST(Channel, TwoReceiversShareItemsWithoutLossOrDuplication)
{
    Engine e;
    Channel<int> ch(e, 2);
    std::vector<int> a, b;
    Task r1 = recvN(e, ch, 5, 0, a);
    Task r2 = recvN(e, ch, 5, 0, b);
    Task s = sendN(e, ch, 10, 0);
    e.run();
    EXPECT_TRUE(r1.done() && r2.done() && s.done());
    std::vector<int> all = a;
    all.insert(all.end(), b.begin(), b.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Channel, CountsTotalPushed)
{
    Engine e;
    Channel<int> ch(e, 8);
    std::vector<int> got;
    Task s = sendN(e, ch, 6, 0);
    Task r = recvN(e, ch, 6, 0, got);
    e.run();
    EXPECT_EQ(ch.totalPushed(), 6u);
}

TEST(Channel, DeadlockLeavesEngineIdleWithWaiters)
{
    // A receiver with no producer: the run quiesces but the coroutine is
    // parked — the machine-level deadlock detector keys off this state.
    Engine e;
    Channel<int> ch(e, 1);
    std::vector<int> got;
    Task r = recvN(e, ch, 1, 0, got);
    EXPECT_TRUE(e.run());
    EXPECT_FALSE(r.done());
    EXPECT_TRUE(ch.hasBlockedReceiver());
}

} // namespace
