/**
 * @file
 * Run-loop watchdog and silent-deadlock detection (ISSUE 6).
 *
 * The regression this tier exists for: Engine::run() returning true
 * (queue drained) while coroutines are still parked on a channel or
 * stream used to read as a *clean* completion — a silent deadlock. The
 * Waitable registry now makes that state observable (drainedClean /
 * drainDiagnosis), the per-tick event budget turns zero-delay wakeup
 * cycles into a diagnosed livelock, and requestStop ends a run at a
 * batch boundary without tearing suspended kernels.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::sim::Channel;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::makeChunk;
using rsn::sim::Stream;
using rsn::sim::Task;

Task
recvOne(Channel<int> &ch, int &out)
{
    out = co_await ch.recv();
}

TEST(Watchdog, DrainWithParkedReceiverIsNotClean)
{
    // The satellite-1 regression: a receiver on a channel nobody feeds.
    // run() still returns true (nothing left to dispatch), but the drain
    // is not clean and the diagnosis names the primitive.
    Engine e;
    Channel<int> ch(e, 2, "orphan");
    int got = -1;
    Task rcv = recvOne(ch, got);
    EXPECT_TRUE(e.run());
    EXPECT_FALSE(rcv.done());
    EXPECT_EQ(got, -1);
    EXPECT_FALSE(e.drainedClean());
    std::string d = e.drainDiagnosis();
    EXPECT_NE(d.find("channel orphan"), std::string::npos) << d;
    EXPECT_NE(d.find("parked receiver"), std::string::npos) << d;
}

Task
sendMany(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.send(i);
}

TEST(Watchdog, DrainWithParkedSenderIsNotClean)
{
    Engine e;
    Channel<int> ch(e, 1, "full");
    Task snd = sendMany(ch, 3);  // capacity 1, nobody receives
    EXPECT_TRUE(e.run());
    EXPECT_FALSE(snd.done());
    EXPECT_FALSE(e.drainedClean());
    std::string d = e.drainDiagnosis();
    EXPECT_NE(d.find("channel full"), std::string::npos) << d;
    EXPECT_NE(d.find("parked sender"), std::string::npos) << d;
}

Task
recvChunk(Stream &s, std::vector<Chunk> &out)
{
    out.push_back(co_await s.recv());
}

TEST(Watchdog, StreamWaitersShowUpInTheDrainDiagnosis)
{
    Engine e;
    Stream s(e, 64.0, 2, "starved");
    std::vector<Chunk> got;
    Task rcv = recvChunk(s, got);
    EXPECT_TRUE(e.run());
    EXPECT_FALSE(rcv.done());
    EXPECT_FALSE(e.drainedClean());
    EXPECT_NE(e.drainDiagnosis().find("stream starved"),
              std::string::npos);
}

TEST(Watchdog, CleanCompletionIsClean)
{
    Engine e;
    Channel<int> ch(e, 2, "ok");
    int got = -1;
    Task rcv = recvOne(ch, got);
    Task snd = sendMany(ch, 1);
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(rcv.done() && snd.done());
    EXPECT_EQ(got, 0);
    EXPECT_TRUE(e.drainedClean());
    EXPECT_TRUE(e.drainDiagnosis().empty());
}

/** Self-rescheduling zero-delay callback: a classic livelock. */
struct Spinner {
    Engine &e;
    std::uint64_t fired = 0;
    static void
    fire(void *p)
    {
        auto *s = static_cast<Spinner *>(p);
        ++s->fired;
        s->e.callAt(s->e.now(), &Spinner::fire, s);
    }
};

TEST(Watchdog, EventBudgetTurnsLivelockIntoDiagnosedStop)
{
    Engine e;
    e.setEventsPerTickBudget(10'000);
    Spinner sp{e};
    e.callAt(0, &Spinner::fire, &sp);
    EXPECT_FALSE(e.run());  // did not drain: the watchdog cut it short
    EXPECT_TRUE(e.watchdogTripped());
    EXPECT_EQ(e.now(), 0u) << "livelock never advanced time";
    EXPECT_GE(sp.fired, 9'000u);
    EXPECT_LE(sp.fired, 11'000u) << "budget did not bound the spin";
}

TEST(Watchdog, BudgetDoesNotTripAcrossTicks)
{
    // Many events spread over many ticks must never trip a per-tick
    // budget: the counter rebases at every batch boundary.
    Engine e;
    e.setEventsPerTickBudget(10);
    struct Hopper {
        Engine &e;
        std::uint64_t fired = 0;
        static void
        fire(void *p)
        {
            auto *h = static_cast<Hopper *>(p);
            if (++h->fired < 1000)
                h->e.callAt(h->e.now() + 1, &Hopper::fire, h);
        }
    } h{e};
    e.callAt(0, &Hopper::fire, &h);
    EXPECT_TRUE(e.run());
    EXPECT_FALSE(e.watchdogTripped());
    EXPECT_EQ(h.fired, 1000u);
}

TEST(Watchdog, RequestStopEndsTheRunAtABatchBoundary)
{
    Engine e;
    struct Stopper {
        Engine &e;
        std::uint64_t fired = 0;
        static void
        fire(void *p)
        {
            auto *s = static_cast<Stopper *>(p);
            ++s->fired;
            if (s->fired == 3)
                s->e.requestStop();
            s->e.callAt(s->e.now() + 10, &Stopper::fire, s);
        }
    } s{e};
    e.callAt(0, &Stopper::fire, &s);
    EXPECT_FALSE(e.run(1'000'000));
    EXPECT_TRUE(e.stopRequested());
    // The event at the stop tick still dispatched (stop honors batch
    // granularity); its +10 successor did not.
    EXPECT_EQ(s.fired, 3u);
    EXPECT_EQ(e.now(), 20u);
}

TEST(Watchdog, ResetClearsStopAndWatchdogState)
{
    Engine e;
    e.requestStop();
    EXPECT_FALSE(e.run());
    EXPECT_TRUE(e.stopRequested());
    e.reset();
    EXPECT_FALSE(e.stopRequested());
    EXPECT_FALSE(e.watchdogTripped());
    EXPECT_TRUE(e.run());
}

} // namespace
