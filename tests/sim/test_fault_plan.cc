/**
 * @file
 * FaultSpec / FaultInjector unit tier (ISSUE 6): spec parsing and
 * validation, and the core determinism contract — every decision is a
 * pure function of (seed, site name, sequence), so the same seed yields
 * a bit-identical schedule regardless of when or where it runs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/fault.hh"

namespace {

using rsn::Status;
using rsn::StatusCode;
using rsn::Tick;
using rsn::kTickMax;
using rsn::sim::Engine;
using rsn::sim::FaultInjector;
using rsn::sim::FaultKind;
using rsn::sim::FaultSpec;

TEST(FaultSpec, DefaultIsDisabledAndValid)
{
    FaultSpec f;
    EXPECT_FALSE(f.enabled());
    EXPECT_FALSE(f.checksumsOn());
    EXPECT_TRUE(f.validate().ok());
}

TEST(FaultSpec, FlipRateForcesChecksums)
{
    FaultSpec f;
    f.flip_rate = 0.5;
    EXPECT_TRUE(f.enabled());
    EXPECT_TRUE(f.checksumsOn());
    EXPECT_FALSE(f.checksums);  // the explicit flag stays as set
}

TEST(FaultSpec, ValidateRejectsBadValues)
{
    auto expectInvalid = [](FaultSpec f) {
        Status s = f.validate();
        EXPECT_FALSE(s.ok());
        EXPECT_EQ(s.code, StatusCode::InvalidConfig);
    };
    FaultSpec f;
    f.link_drop_rate = 1.5;
    expectInvalid(f);
    f = {};
    f.dram_rate = -0.1;
    expectInvalid(f);
    f = {};
    f.link_stall_rate = 0.5;
    f.link_stall_max = 0;
    expectInvalid(f);
    f = {};
    f.max_retries = 31;
    expectInvalid(f);
    f = {};
    f.window_begin = 100;
    f.window_end = 50;
    expectInvalid(f);
}

TEST(FaultSpec, ParseRoundTripsKeyValues)
{
    Status st;
    FaultSpec f = FaultSpec::parse(
        "seed=7,link_drop=0.25,dram=0.5,retries=3,backoff=16,"
        "window=100:200,checksums=1",
        &st);
    ASSERT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(f.seed, 7u);
    EXPECT_DOUBLE_EQ(f.link_drop_rate, 0.25);
    EXPECT_DOUBLE_EQ(f.dram_rate, 0.5);
    EXPECT_EQ(f.max_retries, 3u);
    EXPECT_EQ(f.backoff_base, Tick(16));
    EXPECT_EQ(f.window_begin, Tick(100));
    EXPECT_EQ(f.window_end, Tick(200));
    EXPECT_TRUE(f.checksums);

    // toString -> parse is stable.
    FaultSpec again = FaultSpec::parse(f.toString(), &st);
    ASSERT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(again, f);
}

TEST(FaultSpec, ParseAcceptsChaosPreset)
{
    Status st;
    FaultSpec f = FaultSpec::parse("chaos", &st);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(f, FaultSpec::chaosPreset(0));
    EXPECT_TRUE(f.enabled());
}

TEST(FaultSpec, ParseRejectsGarbage)
{
    for (const char *bad : {"nope", "link_drop", "link_drop=x",
                            "window=5", "dram=1.5", "unknown_key=1"}) {
        Status st;
        FaultSpec f = FaultSpec::parse(bad, &st);
        EXPECT_FALSE(st.ok()) << bad;
        EXPECT_EQ(st.code, StatusCode::InvalidConfig) << bad;
        EXPECT_EQ(f, FaultSpec{}) << bad;  // default on error
    }
}

/** Record the full decision sequence an injector makes for a site. */
std::vector<FaultInjector::Outcome>
linkSchedule(const FaultSpec &spec, const std::string &site, int n)
{
    Engine eng;
    FaultInjector fi(spec, eng);
    auto s = fi.registerSite(site);
    std::vector<FaultInjector::Outcome> out;
    for (int i = 0; i < n; ++i)
        out.push_back(fi.onLinkAdmit(s, 10));
    return out;
}

TEST(FaultInjector, SameSeedSameSiteSameSchedule)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.link_stall_rate = 0.3;
    spec.link_drop_rate = 0.2;
    spec.max_retries = 30;  // effectively never dead
    auto a = linkSchedule(spec, "stream x", 200);
    auto b = linkSchedule(spec, "stream x", 200);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].extra, b[i].extra) << i;
        EXPECT_EQ(a[i].retries, b[i].retries) << i;
        EXPECT_EQ(a[i].dead, b[i].dead) << i;
    }
}

TEST(FaultInjector, DifferentSeedOrSiteChangesTheSchedule)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.link_stall_rate = 0.3;
    spec.link_drop_rate = 0.2;
    spec.max_retries = 30;
    auto base = linkSchedule(spec, "stream x", 200);

    FaultSpec other = spec;
    other.seed = 43;
    auto reseeded = linkSchedule(other, "stream x", 200);
    auto renamed = linkSchedule(spec, "stream y", 200);

    auto differs = [&](const std::vector<FaultInjector::Outcome> &o) {
        for (std::size_t i = 0; i < base.size(); ++i)
            if (base[i].extra != o[i].extra ||
                base[i].retries != o[i].retries)
                return true;
        return false;
    };
    EXPECT_TRUE(differs(reseeded));
    EXPECT_TRUE(differs(renamed));
}

TEST(FaultInjector, ScheduleIndependentOfRegistrationOrder)
{
    // Decisions key off the site-name hash, not the SiteId — registering
    // sites in a different order must not move a single fault.
    FaultSpec spec;
    spec.seed = 9;
    spec.link_stall_rate = 0.5;
    Engine e1, e2;
    FaultInjector a(spec, e1), b(spec, e2);
    auto a_x = a.registerSite("x");
    a.registerSite("y");
    b.registerSite("y");
    auto b_x = b.registerSite("x");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.onLinkAdmit(a_x, 10).extra,
                  b.onLinkAdmit(b_x, 10).extra)
            << i;
}

TEST(FaultInjector, WindowMasksButDoesNotShiftDecisions)
{
    // The sequence number advances on every call whether or not the
    // window is open, so opening the window later must not change the
    // decisions made inside it.
    FaultSpec open;
    open.seed = 5;
    open.link_stall_rate = 0.5;
    FaultSpec gated = open;
    gated.window_begin = kTickMax;  // closed at tick 0 (engine never runs)

    Engine e1, e2;
    FaultInjector fi_open(open, e1), fi_gated(gated, e2);
    auto s1 = fi_open.registerSite("s");
    auto s2 = fi_gated.registerSite("s");
    for (int i = 0; i < 50; ++i) {
        auto o = fi_open.onLinkAdmit(s1, 10);
        auto g = fi_gated.onLinkAdmit(s2, 10);
        (void)o;
        EXPECT_EQ(g.extra, Tick(0)) << "closed window injected a fault";
    }
    EXPECT_EQ(fi_gated.totalInjected(), 0u);
    EXPECT_GT(fi_open.totalInjected(), 0u);
}

TEST(FaultInjector, CertainDropBecomesHardFaultAndStopsEngine)
{
    FaultSpec spec;
    spec.link_drop_rate = 1.0;  // every attempt fails
    spec.max_retries = 3;
    spec.backoff_base = 4;
    Engine eng;
    FaultInjector fi(spec, eng);
    auto s = fi.registerSite("stream dead");
    auto o = fi.onLinkAdmit(s, 10);
    EXPECT_TRUE(o.dead);
    EXPECT_EQ(o.retries, 3u);
    // Occupancy of the failed attempts: 3 x (10 ticks + backoff 4,8,16).
    EXPECT_EQ(o.extra, Tick(3 * 10 + 4 + 8 + 16));
    EXPECT_TRUE(fi.hardFaulted());
    ASSERT_NE(fi.firstHardFault(), nullptr);
    EXPECT_EQ(fi.firstHardFault()->kind, FaultKind::LinkDead);
    EXPECT_EQ(fi.firstHardFault()->site, "stream dead");
    EXPECT_TRUE(eng.stopRequested());
    EXPECT_EQ(fi.count(FaultKind::LinkDead), 1u);
}

TEST(FaultInjector, LogIsCappedButCountsAreExact)
{
    FaultSpec spec;
    spec.link_stall_rate = 1.0;
    spec.link_stall_max = 1;
    Engine eng;
    FaultInjector fi(spec, eng);
    auto s = fi.registerSite("s");
    const int n = 3 * int(FaultInjector::kMaxLogRecords);
    for (int i = 0; i < n; ++i)
        fi.onLinkAdmit(s, 10);
    EXPECT_EQ(fi.log().size(), FaultInjector::kMaxLogRecords);
    EXPECT_EQ(fi.count(FaultKind::LinkStall), std::uint64_t(n));
    EXPECT_EQ(fi.totalInjected(), std::uint64_t(n));
}

TEST(FaultInjector, ResetReplaysTheIdenticalSchedule)
{
    FaultSpec spec;
    spec.seed = 11;
    spec.link_stall_rate = 0.4;
    Engine eng;
    FaultInjector fi(spec, eng);
    auto s = fi.registerSite("s");
    std::vector<Tick> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(fi.onLinkAdmit(s, 10).extra);
    fi.reset();
    EXPECT_EQ(fi.totalInjected(), 0u);
    EXPECT_TRUE(fi.log().empty());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(fi.onLinkAdmit(s, 10).extra, first[i]) << i;
}

TEST(FaultInjector, PayloadChecksumDetectsASingleFlippedBit)
{
    std::vector<float> v(256, 1.25f);
    const std::uint64_t nbytes = v.size() * sizeof(float);
    auto base = rsn::sim::payloadChecksum(v.data(), nbytes);
    // Flip one mantissa bit of one element.
    std::uint32_t bits;
    std::memcpy(&bits, &v[100], sizeof(bits));
    bits ^= 1u << 3;
    std::memcpy(&v[100], &bits, sizeof(bits));
    EXPECT_NE(rsn::sim::payloadChecksum(v.data(), nbytes), base);
}

} // namespace
