/**
 * @file
 * Stream-level fault injection (ISSUE 6): injected stalls and
 * retransmissions extend link occupancy deterministically; a dead link
 * loses the chunk, parks the sender forever, and surfaces through the
 * engine's silent-deadlock diagnosis instead of hanging or aborting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/chunk.hh"
#include "sim/engine.hh"
#include "sim/fault.hh"
#include "sim/stream.hh"
#include "sim/task.hh"

namespace {

using rsn::Tick;
using rsn::sim::Chunk;
using rsn::sim::Engine;
using rsn::sim::FaultInjector;
using rsn::sim::FaultKind;
using rsn::sim::FaultSpec;
using rsn::sim::makeChunk;
using rsn::sim::Stream;
using rsn::sim::Task;

Task
sendChunks(Stream &s, int n, std::uint32_t rows, std::uint32_t cols)
{
    for (int i = 0; i < n; ++i)
        co_await s.send(makeChunk(rows, cols, i));
}

Task
recvChunks(Stream &s, int n, std::vector<Chunk> &out)
{
    for (int i = 0; i < n; ++i)
        out.push_back(co_await s.recv());
}

TEST(FaultStream, CertainUnitStallDelaysDeliveryByExactlyOneTick)
{
    FaultSpec spec;
    spec.link_stall_rate = 1.0;
    spec.link_stall_max = 1;  // stall length is always 1 tick
    Engine e;
    FaultInjector fi(spec, e);
    Stream s(e, 64.0, 4, "s");
    s.attachFaultInjector(&fi);
    std::vector<Chunk> got;
    // 32x32 floats = 4096 B = 64 ticks at 64 B/tick, +1 injected stall.
    Task snd = sendChunks(s, 1, 32, 32);
    Task rcv = recvChunks(s, 1, got);
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
    EXPECT_EQ(e.now(), 65u);
    EXPECT_EQ(s.busyTicks(), 65u);
    EXPECT_EQ(fi.count(FaultKind::LinkStall), 1u);
}

TEST(FaultStream, ZeroRatesLeaveTimingUntouched)
{
    // An attached injector whose spec only enables checksums must not
    // move a tick on the link.
    FaultSpec spec;
    spec.checksums = true;
    Engine e;
    FaultInjector fi(spec, e);
    Stream s(e, 64.0, 8, "s");
    s.attachFaultInjector(&fi);
    std::vector<Chunk> got;
    Task snd = sendChunks(s, 4, 32, 32);
    Task rcv = recvChunks(s, 4, got);
    EXPECT_TRUE(e.run());
    EXPECT_EQ(e.now(), 256u);  // 4 x 64 ticks, as without an injector
    EXPECT_EQ(fi.totalInjected(), 0u);
}

TEST(FaultStream, DeadLinkLosesChunkParksSenderAndDiagnoses)
{
    FaultSpec spec;
    spec.link_drop_rate = 1.0;
    spec.max_retries = 2;
    Engine e;
    FaultInjector fi(spec, e);
    Stream s(e, 64.0, 4, "dead");
    s.attachFaultInjector(&fi);
    std::vector<Chunk> got;
    Task snd = sendChunks(s, 1, 8, 8);
    Task rcv = recvChunks(s, 1, got);

    // The hard fault requests a stop; with nothing else scheduled the
    // queue drains, but both coroutines are parked forever.
    e.run();
    EXPECT_FALSE(snd.done());
    EXPECT_FALSE(rcv.done());
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(s.deadSends(), 1u);
    EXPECT_TRUE(fi.hardFaulted());
    ASSERT_NE(fi.firstHardFault(), nullptr);
    EXPECT_EQ(fi.firstHardFault()->kind, FaultKind::LinkDead);
    EXPECT_TRUE(e.stopRequested());

    // The drain diagnosis names the stuck endpoints.
    EXPECT_FALSE(e.drainedClean());
    std::string d = e.drainDiagnosis();
    EXPECT_NE(d.find("stream dead"), std::string::npos) << d;
    EXPECT_NE(d.find("lost to a dead link"), std::string::npos) << d;
    EXPECT_NE(d.find("parked receiver"), std::string::npos) << d;
}

TEST(FaultStream, RecoveredRetriesDeliverEverythingInOrder)
{
    // Drops with a generous retry budget: every chunk is eventually
    // delivered, in order, with the retry burst folded into occupancy.
    FaultSpec spec;
    spec.seed = 3;
    spec.link_drop_rate = 0.4;
    spec.max_retries = 30;
    spec.backoff_base = 2;
    Engine e;
    FaultInjector fi(spec, e);
    Stream s(e, 64.0, 2, "retry");
    s.attachFaultInjector(&fi);
    std::vector<Chunk> got;
    Task snd = sendChunks(s, 16, 8, 8);
    Task rcv = recvChunks(s, 16, got);
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(snd.done() && rcv.done());
    ASSERT_EQ(got.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(got[i].tag, std::uint32_t(i));
    EXPECT_GT(s.linkRetries(), 0u);
    EXPECT_EQ(s.deadSends(), 0u);
    EXPECT_FALSE(fi.hardFaulted());
    EXPECT_TRUE(e.drainedClean());
}

TEST(FaultStream, SameSeedReproducesTheFinalTickExactly)
{
    auto finalTick = [](std::uint64_t seed) {
        FaultSpec spec;
        spec.seed = seed;
        spec.link_stall_rate = 0.3;
        spec.link_stall_max = 16;
        spec.link_drop_rate = 0.2;
        spec.max_retries = 30;
        Engine e;
        FaultInjector fi(spec, e);
        Stream s(e, 64.0, 2, "repro");
        s.attachFaultInjector(&fi);
        std::vector<Chunk> got;
        Task snd = sendChunks(s, 32, 16, 16);
        Task rcv = recvChunks(s, 32, got);
        EXPECT_TRUE(e.run());
        return e.now();
    };
    Tick a = finalTick(77), b = finalTick(77), c = finalTick(78);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c) << "different seeds produced identical schedules "
                       "(suspicious for a 32-transfer run)";
}

} // namespace
