/**
 * @file
 * Counting-allocator verification of the engine's allocation-free
 * dispatch invariant (see the file comment in sim/engine.hh): after
 * warmup, coroutine resumption and inline-callback dispatch must perform
 * zero heap allocations, and channel traffic must be O(1) allocations
 * regardless of item count. Also checks that undispatched heap-path
 * callables are released on engine destruction.
 *
 * The whole test binary replaces global operator new/delete with counting
 * versions; tests only compare counter deltas around regions where no
 * gtest machinery runs.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    g_deletes.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    operator delete(p);
}

void
operator delete[](void *p) noexcept
{
    operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    operator delete(p);
}

// Aligned-allocation overloads: TilePool allocates its buffers with
// ::operator new(size, std::align_val_t{64}) (cache-line-aligned
// tiles), which does NOT route through the plain overload above — it
// must be intercepted separately or pooled-buffer traffic becomes
// invisible to the counter and the alloc-free pins go blind.
void *
operator new(std::size_t n, std::align_val_t al)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, std::size_t(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    g_deletes.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    operator delete(p, std::align_val_t{1});
}

void
operator delete[](void *p, std::align_val_t al) noexcept
{
    operator delete(p, al);
}

void
operator delete[](void *p, std::size_t, std::align_val_t al) noexcept
{
    operator delete(p, al);
}


namespace {

using rsn::Tick;
using rsn::sim::Channel;
using rsn::sim::Engine;
using rsn::sim::Task;

std::uint64_t
news()
{
    return g_news.load(std::memory_order_relaxed);
}

Task
delayLoop(Engine &e, int n)
{
    for (int i = 0; i < n; ++i)
        co_await e.delay(1);
}

TEST(EngineAlloc, CoroutineResumeDispatchIsAllocationFree)
{
    Engine e;
    Task t = delayLoop(e, 20000);
    e.run(1000);  // warmup: grows arena/wheel bookkeeping once
    std::uint64_t before = news();
    e.run(15000);  // ~14000 coroutine resume events
    EXPECT_EQ(news(), before) << "coroutine dispatch path allocated";
    EXPECT_TRUE(e.run());
    EXPECT_TRUE(t.done());
}

struct Chain {
    Engine *e;
    int *remaining;
    void
    operator()() const
    {
        if (--*remaining > 0)
            e->schedule(1, *this);
    }
};
static_assert(sizeof(Chain) <= Engine::kInlineFnSize);

TEST(EngineAlloc, InlineCallbackDispatchIsAllocationFree)
{
    Engine e;
    int remaining = 20000;
    e.schedule(1, Chain{&e, &remaining});
    e.run(1000);  // warmup
    std::uint64_t before = news();
    e.run(15000);
    EXPECT_EQ(news(), before) << "inline callback path allocated";
    EXPECT_TRUE(e.run());
    EXPECT_EQ(remaining, 0);
}

Task
pingSender(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.send(i);
}

Task
pingReceiver(Channel<int> &ch, int n, long &sum)
{
    for (int i = 0; i < n; ++i)
        sum += co_await ch.recv();
}

TEST(EngineAlloc, ChannelTrafficAllocatesO1NotPerItem)
{
    std::uint64_t before = news();
    long sum = 0;
    {
        Engine e;
        Channel<int> ch(e, 2);
        Task s = pingSender(ch, 10000);
        Task r = pingReceiver(ch, 10000, sum);
        EXPECT_TRUE(e.run());
    }
    // 2 coroutine frames + ring/arena warmup growth; far below one
    // allocation per item (the seed engine did one std::function event
    // per wakeup through a node-based priority queue).
    EXPECT_LE(news() - before, 64u);
    EXPECT_EQ(sum, 10000L * 9999 / 2);
}

TEST(EngineAlloc, UndispatchedHeapCallablesReleasedOnDestruction)
{
    std::uint64_t nb = news();
    std::uint64_t db = g_deletes.load(std::memory_order_relaxed);
    {
        Engine e;
        std::array<char, 200> big{};  // forces the heap fallback path
        for (int i = 0; i < 16; ++i)
            e.schedule(5 + i % 3, [big] { (void)big; });
        // Destroyed with all 16 events still pending.
    }
    EXPECT_EQ(news() - nb, g_deletes.load(std::memory_order_relaxed) - db)
        << "engine destruction leaked pending heap callables";
}

} // namespace
