/**
 * @file
 * Golden-trace end-to-end regression tier (ISSUE 3).
 *
 * Datapath refactors — like the zero-copy TileRef staging this PR
 * introduced — must not change what the simulator computes or when. This
 * tier pins both:
 *
 *  - the *trace*: the BERT-Large 1st-encoder configuration (S=512, B=6,
 *    fused QKV, optimized schedule — the paper's headline workload) must
 *    complete in exactly kBertLargeGoldenTicks. Any scheduling,
 *    datapath, or timing-model change shows up here first and must be
 *    accounted for deliberately (update the constant in the same PR
 *    that justifies it);
 *  - the *numerics*: a functional reduced-encoder run must match the
 *    independent naive reference (src/ref/ref_math) tensor by tensor,
 *    and the output checksum must agree with the reference checksum —
 *    so a refactor cannot silently compute something else;
 *  - the *separation*: functional payload carriage must not perturb
 *    timing — the same program ticks identically with and without data;
 *  - the *dispatch* (ISSUE 7): one binary carries every kernel table
 *    (fu/kernel_registry.hh), and the golden run must hold under each
 *    of them — tick counts bit-exact (kernel choice may never move
 *    simulated time), payload outputs within the documented tolerance.
 *    On top of the in-binary loop below, ctest re-runs this whole
 *    binary under RSN_ISA=<each value> (CMakeLists.txt) to cover the
 *    env startup path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <variant>

#include "core/machine.hh"
#include "fu/kernel_registry.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "ref/ref_math.hh"

namespace {

using namespace rsn;

/** BERT-Large 1st encoder, S=512, B=6, fused QKV, optimized schedule. */
constexpr Tick kBertLargeGoldenTicks = 5947426;

/** Reduced encoder (B=2, S=32, H=64, 4 heads, FF=128), same golden
 *  discipline at functional-run scale. */
constexpr Tick kTinyEncoderGoldenTicks = 11084;

/** Deterministic double-precision checksum of a matrix. */
double
checksum(const ref::Matrix &m)
{
    double sum = 0;
    for (float v : m.data)
        sum += double(v);
    return sum;
}

lib::Model
tinyModel()
{
    return lib::tinyEncoder(/*batch=*/2, /*seq=*/32, /*hidden=*/64,
                            /*heads=*/4, /*ff=*/128, /*fuse_qkv=*/true);
}

/** Output tensor name of the model's last segment. */
std::string
finalOutput(const lib::Model &model)
{
    return std::visit([](const auto &seg) { return seg.out_name; },
                      model.segments.back());
}

TEST(GoldenTrace, BertLargeEncoderTickCountIsPinned)
{
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto model = lib::bertLargeEncoder(/*batch=*/6, /*seq=*/512,
                                       /*fuse_qkv=*/true);
    auto compiled = lib::compileModel(mach, model,
                                      lib::ScheduleOptions::optimized());
    auto r = mach.run(compiled.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    EXPECT_EQ(r.ticks, kBertLargeGoldenTicks)
        << "BERT-Large end-to-end latency changed. If this PR "
           "deliberately changes scheduling or the timing model, update "
           "kBertLargeGoldenTicks (and ROADMAP.md) with the why; "
           "otherwise this is a regression.";
}

TEST(GoldenTrace, FunctionalOutputsMatchReferenceAndChecksum)
{
    // The golden numeric tier always runs the exact scalar kernel table
    // — the vectorized tables are approximate and have their own golden
    // loop below at the documented tolerance.
    kernel::ScopedIsaOverride exact(kernel::Isa::Scalar);
    core::RsnMachine mach(core::MachineConfig::vck190(/*functional=*/true));
    auto model = tinyModel();
    auto compiled = lib::compileModel(mach, model,
                                      lib::ScheduleOptions::optimized());
    lib::initTensors(mach, compiled, /*seed=*/123);
    auto expected = lib::referenceForward(mach, model, compiled);
    auto r = mach.run(compiled.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    EXPECT_EQ(r.ticks, kTinyEncoderGoldenTicks);

    // Every intermediate the datapath produced must match the naive
    // reference implementation.
    std::size_t compared = 0;
    for (const auto &[name, expect] : expected) {
        if (name == "input" || !compiled.hasTensor(name))
            continue;
        auto got = lib::readTensor(mach, compiled, name);
        std::string why;
        EXPECT_TRUE(ref::allclose(got, expect, 2e-3f, 2e-3f, &why))
            << name << ": " << why;
        ++compared;
    }
    EXPECT_GE(compared, 5u) << "golden comparison went vacuous";

    // And the headline numeric: the output checksum agrees with the
    // reference checksum (guards against a comparison bug masking a
    // wholesale numeric change).
    const std::string out_name = finalOutput(model);
    ASSERT_TRUE(compiled.hasTensor(out_name));
    double got_sum = checksum(lib::readTensor(mach, compiled, out_name));
    double ref_sum = checksum(expected.at(out_name));
    EXPECT_NEAR(got_sum, ref_sum,
                1e-3 * std::max(1.0, std::abs(ref_sum)));
    EXPECT_TRUE(std::isfinite(got_sum));
}

TEST(GoldenTrace, FunctionalOutputsUnderEveryKernelTable)
{
    // The golden run under every vectorized table this binary compiled
    // in and this CPU can execute — the one-binary-all-ISAs contract
    // (ISSUE 7). Simulated time must be bit-identical under each (a
    // kernel table may never move a tick), and the functional outputs
    // must stay within the end-to-end tolerance the approximation
    // policy documents (fu/kernel_registry.hh, docs/datapath.md).
    auto &reg = kernel::Registry::instance();
    std::size_t tables_run = 0;
    for (const auto *t : reg.tables()) {
        if (t->exact || !reg.selectable(t->isa))
            continue;  // scalar is the previous test's baseline
        SCOPED_TRACE(t->name);
        kernel::ScopedIsaOverride pin(*t);
        core::RsnMachine mach(
            core::MachineConfig::vck190(/*functional=*/true));
        auto model = tinyModel();
        auto compiled = lib::compileModel(
            mach, model, lib::ScheduleOptions::optimized());
        lib::initTensors(mach, compiled, /*seed=*/123);
        auto expected = lib::referenceForward(mach, model, compiled);
        auto r = mach.run(compiled.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        EXPECT_EQ(r.ticks, kTinyEncoderGoldenTicks)
            << "kernel table " << t->name << " changed simulated time";

        std::size_t compared = 0;
        for (const auto &[name, expect] : expected) {
            if (name == "input" || !compiled.hasTensor(name))
                continue;
            auto got = lib::readTensor(mach, compiled, name);
            std::string why;
            EXPECT_TRUE(ref::allclose(got, expect, 4e-3f, 4e-3f, &why))
                << name << " (" << t->name << " kernels): " << why;
            ++compared;
        }
        EXPECT_GE(compared, 5u) << "golden comparison went vacuous";
        ++tables_run;
    }
    EXPECT_GE(tables_run, 1u) << "no vectorized table was selectable";
}

/** Reduced encoder again, all-bf16 precision policy (ISSUE 10). Wire
 *  and DRAM traffic halve, so the pinned latency must sit strictly
 *  below the FP32 pin. Measured once and pinned like the FP32 ticks. */
constexpr Tick kTinyEncoderBf16GoldenTicks = 8489;

TEST(GoldenTrace, MixedPrecisionBf16TickCountAndNumerics)
{
    // The typed-tile datapath under the per-op precision policy
    // (core/config.hh): bf16 weights and activations end to end, FP32
    // accumulation and FP32 bias/LayerNorm parameters per the
    // accumulate-in-FP32 contract (docs/datapath.md). Two pins:
    //
    //  - *time*: 16-bit chunks genuinely halve link and DRAM byte
    //    counts, so the end-to-end latency must be strictly below the
    //    FP32 golden run of the identical program — and exactly
    //    kTinyEncoderBf16GoldenTicks, same discipline as FP32;
    //  - *values*: outputs stay allclose to the FP32 reference under
    //    the documented bf16 tolerance (docs/datapath.md: 8-bit
    //    mantissa, ~0.4% per rounding, O(sqrt(k)) growth through the
    //    FP32-accumulated GEMMs — 5e-2 covers every tensor the tiny
    //    encoder produces with margin).
    //
    // No ScopedIsaOverride: the ctest sweep re-runs this test under
    // RSN_ISA x {f32,bf16} (CMakeLists.txt), so it must hold under
    // every table. Ticks may not depend on the table at all.
    core::MachineConfig cfg = core::MachineConfig::vck190(true);
    cfg.precision.linear_weights = Dtype::Bf16;
    cfg.precision.linear_activations = Dtype::Bf16;
    cfg.precision.attention_activations = Dtype::Bf16;
    core::RsnMachine mach(cfg);
    auto model = tinyModel();
    auto compiled = lib::compileModel(mach, model,
                                      lib::ScheduleOptions::optimized());
    lib::initTensors(mach, compiled, /*seed=*/123);
    auto expected = lib::referenceForward(mach, model, compiled);
    auto r = mach.run(compiled.program);
    ASSERT_TRUE(r.completed) << r.diagnosis;
    EXPECT_LT(r.ticks, kTinyEncoderGoldenTicks)
        << "bf16 tiles must beat FP32 end to end (half the wire bytes)";
    EXPECT_EQ(r.ticks, kTinyEncoderBf16GoldenTicks)
        << "bf16 end-to-end latency changed. If this PR deliberately "
           "changes scheduling, the timing model, or the precision "
           "policy's conversion sites, update kTinyEncoderBf16GoldenTicks "
           "with the why; otherwise this is a regression.";

    std::size_t compared = 0;
    for (const auto &[name, expect] : expected) {
        if (name == "input" || !compiled.hasTensor(name))
            continue;
        auto got = lib::readTensor(mach, compiled, name);
        std::string why;
        EXPECT_TRUE(ref::allclose(got, expect, 5e-2f, 5e-2f, &why))
            << name << " (bf16 datapath): " << why;
        ++compared;
    }
    EXPECT_GE(compared, 5u) << "golden comparison went vacuous";

    const std::string out_name = finalOutput(model);
    ASSERT_TRUE(compiled.hasTensor(out_name));
    double got_sum = checksum(lib::readTensor(mach, compiled, out_name));
    double ref_sum = checksum(expected.at(out_name));
    EXPECT_TRUE(std::isfinite(got_sum));
    EXPECT_NEAR(got_sum, ref_sum,
                5e-2 * std::max(1.0, std::abs(ref_sum)));
}

TEST(GoldenTrace, MixedPrecisionPayloadsDoNotPerturbTiming)
{
    // The functional/timing separation holds for typed tiles too: a
    // bf16 run ticks identically with and without payload carriage
    // (chunk dtype — and therefore wire bytes — is stamped on the
    // chunk itself, never derived from the presence of data).
    Tick ticks[2] = {0, 0};
    for (bool functional : {false, true}) {
        core::MachineConfig cfg = core::MachineConfig::vck190(functional);
        cfg.precision.linear_weights = Dtype::Bf16;
        cfg.precision.linear_activations = Dtype::Bf16;
        cfg.precision.attention_activations = Dtype::Bf16;
        core::RsnMachine mach(cfg);
        auto model = tinyModel();
        auto compiled = lib::compileModel(
            mach, model, lib::ScheduleOptions::optimized());
        if (functional)
            lib::initTensors(mach, compiled, 123);
        auto r = mach.run(compiled.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        ticks[functional] = r.ticks;
    }
    EXPECT_EQ(ticks[0], ticks[1])
        << "carrying bf16 payloads changed simulated time";
    EXPECT_EQ(ticks[0], kTinyEncoderBf16GoldenTicks);
}

TEST(GoldenTrace, FunctionalPayloadsDoNotPerturbTiming)
{
    Tick ticks[2] = {0, 0};
    for (bool functional : {false, true}) {
        core::RsnMachine mach(core::MachineConfig::vck190(functional));
        auto model = tinyModel();
        auto compiled = lib::compileModel(
            mach, model, lib::ScheduleOptions::optimized());
        if (functional)
            lib::initTensors(mach, compiled, 123);
        auto r = mach.run(compiled.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        ticks[functional] = r.ticks;
    }
    EXPECT_EQ(ticks[0], ticks[1])
        << "carrying FP32 payloads changed simulated time";
}

TEST(GoldenTrace, ResetMachineReproducesTheGoldenTrace)
{
    // The bench context reuses one machine across data points
    // (bench/bench_util.hh); a reset machine must retrace exactly.
    core::RsnMachine mach(core::MachineConfig::vck190());
    auto model = lib::bertLargeEncoder(6, 512, true);
    Tick first = 0;
    for (int i = 0; i < 2; ++i) {
        if (i)
            mach.reset();
        auto compiled = lib::compileModel(
            mach, model, lib::ScheduleOptions::optimized());
        auto r = mach.run(compiled.program);
        ASSERT_TRUE(r.completed) << r.diagnosis;
        if (i)
            EXPECT_EQ(r.ticks, first) << "reset machine diverged";
        else
            first = r.ticks;
    }
    EXPECT_EQ(first, kBertLargeGoldenTicks);
}

} // namespace
