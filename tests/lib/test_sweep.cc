/**
 * @file
 * Parallel sweep executor tier (lib/sweep.hh).
 *
 * The executor's whole contract is "parallelism changes wall-clock
 * time and nothing else": for any jobs value, every sweep point must
 * produce bit-identical tick counts, functional output checksums, and
 * fault diagnoses to the sequential jobs=1 run, with results in point
 * order. These tests pin that contract on a mixed config set (machine
 * reuse, machine rebuild, golden configs) and on chaos-seed sweeps
 * where each lane arms its own FaultInjector. The binary is also run
 * under the TSan CI configuration (RSN_SANITIZE=thread), which turns
 * on the lane-ownership asserts exercised here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/machine.hh"
#include "lib/codegen.hh"
#include "lib/model.hh"
#include "lib/runner.hh"
#include "lib/sweep.hh"
#include "ref/ref_math.hh"
#include "sim/tile_pool.hh"

namespace {

using namespace rsn;

/** Keep in sync with tests/lib/test_golden_e2e.cc. */
constexpr Tick kTinyEncoderGoldenTicks = 11084;

lib::Model
tinyModel()
{
    return lib::tinyEncoder(/*batch=*/2, /*seq=*/32, /*hidden=*/64,
                            /*heads=*/4, /*ff=*/128, /*fuse_qkv=*/true);
}

std::string
finalOutput(const lib::Model &model)
{
    return std::visit([](const auto &seg) { return seg.out_name; },
                      model.segments.back());
}

/** Everything a sweep point can observably produce, for bit-identity
 *  comparison across jobs values. */
struct PointResult {
    Tick ticks = 0;
    StatusCode code = StatusCode::Ok;
    std::string message;
    bool outputs_ok = false;
    double output_checksum = 0;
    std::uint64_t faults_injected = 0;

    bool operator==(const PointResult &) const = default;
};

/** Run @p points at @p jobs lanes, capturing the full observable
 *  outcome of each (including a checksum of the final output tensor on
 *  completed functional runs). */
std::vector<PointResult>
sweepResults(const std::vector<lib::SweepPoint> &points, unsigned jobs)
{
    const lib::SweepExecutor ex(jobs);
    return ex.map<PointResult>(
        points.size(), [&](lib::SweepLane &lane, std::size_t i) {
            const lib::SweepPoint &p = points[i];
            core::RsnMachine &mach = lane.machine(p.cfg);
            auto compiled = lib::compileModel(mach, p.model, p.opts);
            auto cr = lib::runModelChecked(mach, p.model, compiled,
                                           p.seed);
            PointResult out;
            out.ticks = cr.report.result.ticks;
            out.code = cr.report.status.code;
            out.message = cr.report.status.message;
            out.outputs_ok = cr.outputs_ok;
            out.faults_injected = cr.report.faults_injected;
            if (cr.report.ok() && cr.functional) {
                auto m = lib::readTensor(mach, compiled,
                                         finalOutput(p.model));
                for (float v : m.data)
                    out.output_checksum += double(v);
            }
            return out;
        });
}

/** Mixed sweep: equal-config points (lane reuse), a config change mid-
 *  list (lane rebuild), and the golden tiny config. All functional so
 *  output checksums participate in the comparison. */
std::vector<lib::SweepPoint>
mixedPoints()
{
    std::vector<lib::SweepPoint> points;
    const auto cfg = core::MachineConfig::vck190(/*functional=*/true);
    // Golden config twice, non-adjacent, so at jobs=1 the lane must
    // reuse across an intervening rebuild and still be bit-identical.
    points.push_back({cfg, tinyModel(),
                      lib::ScheduleOptions::optimized(), 2025});
    points.push_back({cfg,
                      lib::tinyEncoder(1, 32, 64, 4, 128, true),
                      lib::ScheduleOptions::bwOptimized(), 7});
    auto rowmajor = cfg;
    rowmajor.offchip_layout = mem::LayoutKind::RowMajor;
    points.push_back({rowmajor, tinyModel(),
                      lib::ScheduleOptions::optimized(), 2025});
    points.push_back({cfg, tinyModel(),
                      lib::ScheduleOptions::optimized(), 2025});
    points.push_back({cfg,
                      lib::tinyEncoder(2, 32, 64, 4, 128, false),
                      lib::ScheduleOptions::noOptimize(), 2025});
    return points;
}

TEST(SweepExecutor, ParallelIsBitIdenticalToSequential)
{
    const auto points = mixedPoints();
    const auto seq = sweepResults(points, 1);
    const auto par = sweepResults(points, 4);

    ASSERT_EQ(seq.size(), points.size());
    ASSERT_EQ(par.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(seq[i], par[i]) << "point " << i
                                  << " diverged between jobs=1 and "
                                     "jobs=4";
        EXPECT_EQ(seq[i].code, StatusCode::Ok);
        EXPECT_TRUE(seq[i].outputs_ok);
    }
    // The golden config's tick count holds inside a sweep, on any lane.
    EXPECT_EQ(seq[0].ticks, kTinyEncoderGoldenTicks);
    EXPECT_EQ(par[0].ticks, kTinyEncoderGoldenTicks);
    EXPECT_EQ(par[3].ticks, kTinyEncoderGoldenTicks);
    // Identical points on (possibly) different lanes: identical output.
    EXPECT_EQ(par[0], par[3]);
}

TEST(SweepExecutor, ChaosSweepDiagnosesIdenticallyAtAnyJobs)
{
    // Each lane arms its own FaultInjector (machine-owned); the fault
    // schedule is a pure function of the seed, so per-point diagnoses
    // — including which runs hard-fault and their exact messages —
    // must not depend on the jobs value.
    std::vector<lib::SweepPoint> points;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto cfg = core::MachineConfig::vck190(/*functional=*/true);
        cfg.fault = sim::FaultSpec::chaosPreset(seed);
        points.push_back({cfg, tinyModel(),
                          lib::ScheduleOptions::optimized(), 2025});
    }
    const auto seq = sweepResults(points, 1);
    const auto par = sweepResults(points, 4);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(seq[i], par[i])
            << "chaos seed " << (i + 1)
            << " diagnosed differently under jobs=4";
}

TEST(SweepLaneTest, ReusesMachineAcrossEqualConfigsOnly)
{
    lib::SweepLane lane(3);
    EXPECT_EQ(lane.index(), 3u);
    const auto cfg = core::MachineConfig::vck190();
    core::RsnMachine &first = lane.machine(cfg);
    auto compiled = lib::compileModel(first, tinyModel(),
                                      lib::ScheduleOptions::optimized());
    ASSERT_TRUE(first.run(compiled.program).completed);

    // Equal config after a completed run: same machine, reset.
    core::RsnMachine &second = lane.machine(cfg);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(lane.machinesBuilt(), 1u);
    EXPECT_EQ(lane.machinesReused(), 1u);

    // Config change: rebuild.
    auto functional = core::MachineConfig::vck190(/*functional=*/true);
    lane.machine(functional);
    EXPECT_EQ(lane.machinesBuilt(), 2u);
    EXPECT_EQ(lane.machinesReused(), 1u);
}

TEST(SweepLaneTest, FaultSeedOnlyChangeReusesViaReseed)
{
    // The serving scheduler salts one chaos seed per dispatch, so a
    // config that differs from the cached one *only* in fault.seed must
    // take the reset()+setFaultSeed path, not a rebuild — and the
    // reseeded machine must behave exactly like a cold build with that
    // seed (the fault schedule is a pure function of the spec).
    auto cfg = core::MachineConfig::vck190(/*functional=*/true);
    cfg.fault = sim::FaultSpec::chaosPreset(/*seed=*/11);

    auto runOnce = [&](core::RsnMachine &mach) {
        auto compiled = lib::compileModel(
            mach, tinyModel(), lib::ScheduleOptions::optimized());
        return lib::runModelChecked(mach, tinyModel(), compiled, 2025);
    };

    lib::SweepLane lane(0);
    auto first = runOnce(lane.machine(cfg));

    auto reseeded = cfg;
    reseeded.fault.seed = 12;
    // Completed run + fault-seed-only change: reuse, with the injector
    // re-armed under the new seed.
    if (first.report.ok()) {
        core::RsnMachine &m = lane.machine(reseeded);
        EXPECT_EQ(lane.machinesReused(), 1u);
        EXPECT_EQ(m.config().fault.seed, 12u);
        auto warm = runOnce(m);

        lib::SweepLane cold_lane(1);
        auto cold = runOnce(cold_lane.machine(reseeded));
        EXPECT_EQ(warm.report.result.ticks, cold.report.result.ticks);
        EXPECT_EQ(warm.report.status.code, cold.report.status.code);
        EXPECT_EQ(warm.report.faults_injected, cold.report.faults_injected);
    } else {
        // The seed-11 run hard-faulted: non-resettable, so the lane
        // must rebuild even for the seed-only change.
        lane.machine(reseeded);
        EXPECT_EQ(lane.machinesBuilt(), 2u);
    }
    // A rate change is never a reuse, whatever the seed.
    auto harsher = reseeded;
    harsher.fault.link_drop_rate = 0.5;
    const auto built_before = lane.machinesBuilt();
    lane.machine(harsher);
    EXPECT_EQ(lane.machinesBuilt(), built_before + 1);
}

TEST(SweepLaneTest, DiscardForcesRebuildAndTrimsPool)
{
    const auto cfg = core::MachineConfig::vck190(/*functional=*/true);
    lib::SweepLane lane(0);
    core::RsnMachine &first = lane.machine(cfg);
    auto compiled = lib::compileModel(first, tinyModel(),
                                      lib::ScheduleOptions::optimized());
    lib::initTensors(first, compiled, 2025);
    ASSERT_TRUE(first.run(compiled.program).completed);

    // Quarantine: the cached machine dies and its pooled buffers are
    // returned to the system (the breaker's anti-leak hook).
    const std::uint64_t freed_before =
        sim::TilePool::instance().buffersFreed();
    lane.discard();
    EXPECT_GT(sim::TilePool::instance().buffersFreed(), freed_before);
    EXPECT_EQ(sim::TilePool::instance().freeBytes(), 0u);

    // Equal config after a discard still rebuilds.
    lane.machine(cfg);
    EXPECT_EQ(lane.machinesBuilt(), 2u);
}

TEST(SweepExecutor, HandlesEmptyAndUndersizedSweeps)
{
    const lib::SweepExecutor ex(8);
    int calls = 0;
    ex.forEach(0, [&](lib::SweepLane &, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    // Fewer points than lanes: every index runs exactly once and the
    // results land in point order.
    auto out = ex.map<std::size_t>(
        2, [](lib::SweepLane &, std::size_t i) { return i + 100; });
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 100u);
    EXPECT_EQ(out[1], 101u);
}

TEST(SweepExecutor, FirstExceptionPropagatesToCaller)
{
    const lib::SweepExecutor ex(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        ex.forEach(16,
                   [&](lib::SweepLane &, std::size_t i) {
                       ran.fetch_add(1);
                       if (i == 3)
                           throw std::runtime_error("point 3 exploded");
                   }),
        std::runtime_error);
    // Remaining jobs were abandoned after the failure, not all 16 run.
    EXPECT_GE(ran.load(), 1);
}

TEST(SweepExecutor, JobsResolutionHonorsZeroAsAllCores)
{
    EXPECT_EQ(lib::SweepExecutor::resolveJobs(1), 1u);
    EXPECT_EQ(lib::SweepExecutor::resolveJobs(6), 6u);
    EXPECT_EQ(lib::SweepExecutor::resolveJobs(-2), 1u);
    EXPECT_EQ(lib::SweepExecutor::resolveJobs(0),
              lib::SweepExecutor::defaultJobs());
    EXPECT_GE(lib::SweepExecutor::defaultJobs(), 1u);
}

TEST(TilePoolOwnership, CrossLaneAcquireFailsLoudly)
{
#if RSN_POOL_OWNER_CHECKS
    // Tiles are lane-owned: touching this thread's pool from another
    // thread must die on the owner assert (which throws, so the
    // violation is observable in-process) instead of corrupting the
    // free list.
    sim::TilePool &home = sim::TilePool::instance();
    bool threw = false;
    std::thread foreign([&] {
        try {
            home.acquire(64);
        } catch (const std::logic_error &) {
            threw = true;
        }
    });
    foreign.join();
    EXPECT_TRUE(threw)
        << "foreign-thread acquire did not trip the owner check";
#else
    GTEST_SKIP() << "owner checks compiled out (NDEBUG without "
                    "RSN_THREAD_CHECKS)";
#endif
}

} // namespace
